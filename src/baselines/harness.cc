#include "src/baselines/harness.h"

#include <algorithm>
#include <cstdio>

namespace resest {

double ActualUsage(const ExecutedQuery& query, Resource resource) {
  return resource == Resource::kCpu
             ? query.plan.TotalActualCpu()
             : static_cast<double>(query.plan.TotalActualIo());
}

std::unique_ptr<QueryEstimator> TrainTechnique(
    const std::string& technique, const std::vector<ExecutedQuery>& train,
    FeatureMode mode) {
  if (technique == "OPT") return OptBaseline::Train(train);
  if (technique == "[8]") return AkdereEstimator::Train(train, mode);
  if (technique == "LINEAR") {
    return OperatorMlEstimator::Train(train, MlTechnique::kLinear, mode);
  }
  if (technique == "MART") {
    return OperatorMlEstimator::Train(train, MlTechnique::kMart, mode);
  }
  if (technique == "REGTREE") {
    return OperatorMlEstimator::Train(train, MlTechnique::kRegTree, mode);
  }
  if (technique == "SVM(PK)") {
    return OperatorMlEstimator::Train(train, MlTechnique::kSvrPoly, mode);
  }
  if (technique == "SVM(NPK)") {
    return OperatorMlEstimator::Train(train, MlTechnique::kSvrNormalizedPoly, mode);
  }
  if (technique == "SVM(RBF)") {
    return OperatorMlEstimator::Train(train, MlTechnique::kSvrRbf, mode);
  }
  if (technique == "SVM(Puk)") {
    return OperatorMlEstimator::Train(train, MlTechnique::kSvrPuk, mode);
  }
  TrainOptions options;
  options.mode = mode;
  if (technique == "SCALING") return ScalingEstimator::Train(train, options);
  if (technique == "SCALING-nonorm") {
    options.normalize_dependents = false;
    return ScalingEstimator::Train(train, options);
  }
  if (technique == "SCALING-1f") {
    options.max_scale_features = 1;
    return ScalingEstimator::Train(train, options);
  }
  return nullptr;
}

TechniqueScore ScoreEstimator(const QueryEstimator& estimator,
                              const std::vector<ExecutedQuery>& test,
                              Resource resource) {
  TechniqueScore score;
  score.technique = estimator.Name();
  std::vector<double> estimates, actuals;
  estimates.reserve(test.size());
  actuals.reserve(test.size());
  // Floor the estimate: the paper's L1 metric divides by the estimate, and
  // an I/O estimate below one page is not meaningful.
  const double floor = resource == Resource::kIo ? 1.0 : 0.01;
  for (const auto& eq : test) {
    estimates.push_back(std::max(floor, estimator.Estimate(eq, resource)));
    actuals.push_back(ActualUsage(eq, resource));
  }
  score.l1_error = L1RelativeError(estimates, actuals);
  score.buckets = ComputeRatioBuckets(estimates, actuals);
  return score;
}

std::vector<TechniqueScore> EvaluateTechniques(
    const std::vector<std::string>& techniques,
    const std::vector<ExecutedQuery>& train,
    const std::vector<ExecutedQuery>& test, Resource resource,
    FeatureMode mode) {
  std::vector<TechniqueScore> scores;
  for (const auto& name : techniques) {
    const auto estimator = TrainTechnique(name, train, mode);
    if (estimator == nullptr) continue;
    scores.push_back(ScoreEstimator(*estimator, test, resource));
  }
  return scores;
}

void PrintScoreTable(const std::string& title,
                     const std::vector<TechniqueScore>& scores) {
  std::printf("\n%s\n", title.c_str());
  std::printf("%-16s %8s %10s %14s %8s\n", "Technique", "L1 Err", "R<=1.5",
              "R in [1.5,2]", "R>2");
  for (const auto& s : scores) {
    std::printf("%-16s %8.2f %9.2f%% %13.2f%% %7.2f%%\n", s.technique.c_str(),
                s.l1_error, 100.0 * s.buckets.le_1_5, 100.0 * s.buckets.in_1_5_2,
                100.0 * s.buckets.gt_2);
  }
}

}  // namespace resest
