// The competing techniques of the paper's evaluation (Section 7):
//   OPT      — optimizer estimate x per-operator adjustment factor
//   [8]      — Akdere et al. operator-level linear models with bottom-up
//              propagation of cumulative estimates
//   LINEAR   — per-operator linear regression on this paper's features
//   MART     — per-operator MART without scaling
//   SVM(k)   — per-operator epsilon-SVR with kernel k
//   REGTREE  — boosted piecewise-linear trees (transform-regression-like)
//   SCALING  — this paper's combined models with model selection
// All implement a common query-level interface used by the benchmarks.
#ifndef RESEST_BASELINES_QUERY_ESTIMATOR_H_
#define RESEST_BASELINES_QUERY_ESTIMATOR_H_

#include <array>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/core/estimator.h"
#include "src/core/features.h"
#include "src/ml/linear_model.h"
#include "src/ml/mart.h"
#include "src/ml/svr.h"
#include "src/workload/runner.h"

namespace resest {

/// Query-level resource estimator interface.
class QueryEstimator {
 public:
  virtual ~QueryEstimator() = default;
  virtual double Estimate(const ExecutedQuery& query, Resource resource) const = 0;
  virtual std::string Name() const = 0;
};

/// OPT: optimizer cost estimate multiplied by a per-operator-type adjustment
/// factor alpha_R fit on the training data by least squares (Section 7,
/// competitor 1). Always uses optimizer-estimated inputs.
class OptBaseline : public QueryEstimator {
 public:
  static std::unique_ptr<OptBaseline> Train(
      const std::vector<ExecutedQuery>& workload);
  double Estimate(const ExecutedQuery& query, Resource resource) const override;
  std::string Name() const override { return "OPT"; }

 private:
  // alpha_[op][resource]
  std::array<std::array<double, kNumResources>, kNumOpTypes> alpha_{};
};

/// Statistical techniques available for the per-operator baseline wrapper.
enum class MlTechnique {
  kLinear,
  kMart,
  kRegTree,
  kSvrPoly,
  kSvrNormalizedPoly,
  kSvrRbf,
  kSvrPuk,
};

/// Generic per-operator baseline: one regressor per (operator type,
/// resource) trained on this paper's feature set; the query estimate is the
/// sum of per-operator predictions.
class OperatorMlEstimator : public QueryEstimator {
 public:
  static std::unique_ptr<OperatorMlEstimator> Train(
      const std::vector<ExecutedQuery>& workload, MlTechnique technique,
      FeatureMode mode);
  double Estimate(const ExecutedQuery& query, Resource resource) const override;
  std::string Name() const override { return name_; }

 private:
  std::string name_;
  FeatureMode mode_ = FeatureMode::kExact;
  // regressors_[op][resource]; null when too little training data.
  std::array<std::array<std::unique_ptr<Regressor>, kNumResources>, kNumOpTypes>
      regressors_;
  std::array<std::array<std::vector<FeatureId>, kNumResources>, kNumOpTypes>
      inputs_;
  std::array<std::array<double, kNumResources>, kNumOpTypes> fallback_{};
};

/// The operator-level model of Akdere et al. [8]: linear regression per
/// operator on cardinality features, with bottom-up propagation of the
/// cumulative estimate (each model sees its children's cumulative estimates).
class AkdereEstimator : public QueryEstimator {
 public:
  static std::unique_ptr<AkdereEstimator> Train(
      const std::vector<ExecutedQuery>& workload, FeatureMode mode);
  double Estimate(const ExecutedQuery& query, Resource resource) const override;
  std::string Name() const override { return "[8]"; }

 private:
  double EstimateNode(const PlanNode& node, const Database& db,
                      Resource resource) const;
  static std::vector<double> NodeFeatures(const PlanNode& node,
                                          FeatureMode mode,
                                          double children_cumulative);

  FeatureMode mode_ = FeatureMode::kExact;
  std::array<std::array<std::unique_ptr<LinearModel>, kNumResources>, kNumOpTypes>
      models_;
  std::array<std::array<double, kNumResources>, kNumOpTypes> fallback_{};
};

/// SCALING: this paper's technique, wrapping core::ResourceEstimator.
class ScalingEstimator : public QueryEstimator {
 public:
  static std::unique_ptr<ScalingEstimator> Train(
      const std::vector<ExecutedQuery>& workload, const TrainOptions& options);
  double Estimate(const ExecutedQuery& query, Resource resource) const override;
  std::string Name() const override { return "SCALING"; }
  const ResourceEstimator& core() const { return core_; }

 private:
  ResourceEstimator core_;
};

}  // namespace resest

#endif  // RESEST_BASELINES_QUERY_ESTIMATOR_H_
