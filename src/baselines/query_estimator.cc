#include "src/baselines/query_estimator.h"

#include <algorithm>
#include <cmath>
#include <functional>

namespace resest {

namespace {

template <typename Fn>
void VisitWithParent(const PlanNode* node, const PlanNode* parent, Fn&& fn) {
  fn(node, parent);
  for (const auto& c : node->children) VisitWithParent(c.get(), node, fn);
}

double NodeActual(const PlanNode& node, Resource r) {
  return r == Resource::kCpu ? node.actual.cpu
                             : static_cast<double>(node.actual.logical_io);
}

double NodeOptCost(const PlanNode& node, Resource r) {
  return r == Resource::kCpu ? node.est.cpu_cost : node.est.io_cost;
}

}  // namespace

// --- OPT ----------------------------------------------------------------

std::unique_ptr<OptBaseline> OptBaseline::Train(
    const std::vector<ExecutedQuery>& workload) {
  auto est = std::make_unique<OptBaseline>();
  // Least squares alpha per (operator, resource):
  // alpha = sum(cost * actual) / sum(cost^2).
  std::array<std::array<double, kNumResources>, kNumOpTypes> num{}, den{};
  for (const auto& eq : workload) {
    if (!eq.plan.root) continue;
    eq.plan.root->Visit([&](const PlanNode* n) {
      const size_t op = static_cast<size_t>(n->type);
      for (int r = 0; r < kNumResources; ++r) {
        const double cost = NodeOptCost(*n, static_cast<Resource>(r));
        const double actual = NodeActual(*n, static_cast<Resource>(r));
        num[op][static_cast<size_t>(r)] += cost * actual;
        den[op][static_cast<size_t>(r)] += cost * cost;
      }
    });
  }
  for (size_t op = 0; op < kNumOpTypes; ++op) {
    for (size_t r = 0; r < kNumResources; ++r) {
      est->alpha_[op][r] = den[op][r] > 0 ? num[op][r] / den[op][r] : 0.0;
    }
  }
  return est;
}

double OptBaseline::Estimate(const ExecutedQuery& query, Resource resource) const {
  double total = 0.0;
  if (!query.plan.root) return 0.0;
  query.plan.root->Visit([&](const PlanNode* n) {
    total += alpha_[static_cast<size_t>(n->type)][static_cast<size_t>(resource)] *
             NodeOptCost(*n, resource);
  });
  return std::max(0.0, total);
}

// --- Generic per-operator ML baselines ------------------------------------

namespace {

std::unique_ptr<Regressor> MakeRegressor(MlTechnique t, uint64_t seed) {
  switch (t) {
    case MlTechnique::kLinear:
      return std::make_unique<LinearModel>();
    case MlTechnique::kMart: {
      MartParams p;
      p.num_trees = 300;
      p.seed = seed;
      return std::make_unique<Mart>(p);
    }
    case MlTechnique::kRegTree: {
      MartParams p;
      p.num_trees = 300;
      p.linear_leaves = true;
      p.seed = seed;
      return std::make_unique<Mart>(p);
    }
    case MlTechnique::kSvrPoly:
    case MlTechnique::kSvrNormalizedPoly:
    case MlTechnique::kSvrRbf:
    case MlTechnique::kSvrPuk: {
      SvrParams p;
      p.kernel = t == MlTechnique::kSvrPoly ? KernelType::kPoly
                 : t == MlTechnique::kSvrNormalizedPoly
                     ? KernelType::kNormalizedPoly
                 : t == MlTechnique::kSvrRbf ? KernelType::kRbf
                                             : KernelType::kPuk;
      p.seed = seed;
      return std::make_unique<Svr>(p);
    }
  }
  return nullptr;
}

void FitRegressor(Regressor* r, const Dataset& d) {
  if (auto* m = dynamic_cast<Mart*>(r)) {
    m->Fit(d);
  } else if (auto* lm = dynamic_cast<LinearModel*>(r)) {
    lm->Fit(d);
  } else if (auto* svr = dynamic_cast<Svr*>(r)) {
    svr->Fit(d);
  }
}

std::string TechniqueName(MlTechnique t) {
  switch (t) {
    case MlTechnique::kLinear: return "LINEAR";
    case MlTechnique::kMart: return "MART";
    case MlTechnique::kRegTree: return "REGTREE";
    case MlTechnique::kSvrPoly: return "SVM(PK)";
    case MlTechnique::kSvrNormalizedPoly: return "SVM(NPK)";
    case MlTechnique::kSvrRbf: return "SVM(RBF)";
    case MlTechnique::kSvrPuk: return "SVM(Puk)";
  }
  return "?";
}

}  // namespace

std::unique_ptr<OperatorMlEstimator> OperatorMlEstimator::Train(
    const std::vector<ExecutedQuery>& workload, MlTechnique technique,
    FeatureMode mode) {
  auto est = std::make_unique<OperatorMlEstimator>();
  est->name_ = TechniqueName(technique);
  est->mode_ = mode;

  std::array<std::vector<FeatureVector>, kNumOpTypes> rows;
  std::array<std::array<std::vector<double>, kNumResources>, kNumOpTypes> targets;
  for (const auto& eq : workload) {
    if (!eq.plan.root || eq.database == nullptr) continue;
    VisitWithParent(eq.plan.root.get(), nullptr,
                    [&](const PlanNode* node, const PlanNode* parent) {
                      const size_t op = static_cast<size_t>(node->type);
                      rows[op].push_back(
                          ExtractFeatures(*node, parent, *eq.database, mode));
                      targets[op][0].push_back(node->actual.cpu);
                      targets[op][1].push_back(
                          static_cast<double>(node->actual.logical_io));
                    });
  }

  for (size_t op = 0; op < kNumOpTypes; ++op) {
    const auto& feats = OperatorFeatures(static_cast<OpType>(op));
    for (size_t r = 0; r < kNumResources; ++r) {
      const auto& y = targets[op][r];
      double mean = 0.0;
      for (double v : y) mean += v;
      est->fallback_[op][r] = y.empty() ? 0.0 : mean / static_cast<double>(y.size());
      if (rows[op].size() < 12) continue;
      Dataset d;
      d.x.reserve(rows[op].size());
      d.y = y;
      for (const auto& fv : rows[op]) {
        std::vector<double> xr;
        xr.reserve(feats.size());
        for (FeatureId f : feats) xr.push_back(fv[static_cast<size_t>(f)]);
        d.x.push_back(std::move(xr));
      }
      auto reg = MakeRegressor(technique, 100 + op * 2 + r);
      FitRegressor(reg.get(), d);
      est->regressors_[op][r] = std::move(reg);
      est->inputs_[op][r] = feats;
    }
  }
  return est;
}

double OperatorMlEstimator::Estimate(const ExecutedQuery& query,
                                     Resource resource) const {
  double total = 0.0;
  if (!query.plan.root || query.database == nullptr) return 0.0;
  VisitWithParent(
      query.plan.root.get(), nullptr,
      [&](const PlanNode* node, const PlanNode* parent) {
        const size_t op = static_cast<size_t>(node->type);
        const size_t r = static_cast<size_t>(resource);
        const auto& reg = regressors_[op][r];
        if (reg == nullptr) {
          total += fallback_[op][r];
          return;
        }
        const FeatureVector fv =
            ExtractFeatures(*node, parent, *query.database, mode_);
        std::vector<double> xr;
        xr.reserve(inputs_[op][r].size());
        for (FeatureId f : inputs_[op][r]) xr.push_back(fv[static_cast<size_t>(f)]);
        total += std::max(0.0, reg->Predict(xr));
      });
  return total;
}

// --- Akdere et al. [8] ------------------------------------------------------

std::vector<double> AkdereEstimator::NodeFeatures(const PlanNode& node,
                                                  FeatureMode mode,
                                                  double children_cumulative) {
  const bool exact = (mode == FeatureMode::kExact);
  const double rows_out = exact ? static_cast<double>(node.actual.rows_out)
                                : node.est.rows_out;
  const double in0 = exact ? static_cast<double>(node.actual.rows_in[0])
                           : node.est.rows_in[0];
  const double in1 = exact ? static_cast<double>(node.actual.rows_in[1])
                           : node.est.rows_in[1];
  // [8] models operators through cardinalities only (no widths, no catalog
  // features), plus the propagated cumulative estimate of the children.
  return {rows_out, in0, in1, children_cumulative};
}

std::unique_ptr<AkdereEstimator> AkdereEstimator::Train(
    const std::vector<ExecutedQuery>& workload, FeatureMode mode) {
  auto est = std::make_unique<AkdereEstimator>();
  est->mode_ = mode;

  // Targets are *cumulative* subtree resources; child cumulative actuals are
  // inputs during training (at inference the model's own child estimates are
  // propagated instead).
  std::array<std::array<Dataset, kNumResources>, kNumOpTypes> data;
  for (const auto& eq : workload) {
    if (!eq.plan.root) continue;
    // Compute cumulative actuals bottom-up.
    std::map<const PlanNode*, std::array<double, kNumResources>> cumulative;
    std::function<void(const PlanNode*)> compute = [&](const PlanNode* n) {
      std::array<double, kNumResources> total{};
      for (const auto& c : n->children) {
        compute(c.get());
        for (int r = 0; r < kNumResources; ++r) {
          total[static_cast<size_t>(r)] +=
              cumulative[c.get()][static_cast<size_t>(r)];
        }
      }
      for (int r = 0; r < kNumResources; ++r) {
        total[static_cast<size_t>(r)] +=
            NodeActual(*n, static_cast<Resource>(r));
      }
      cumulative[n] = total;
    };
    compute(eq.plan.root.get());

    eq.plan.root->Visit([&](const PlanNode* n) {
      const size_t op = static_cast<size_t>(n->type);
      for (int r = 0; r < kNumResources; ++r) {
        double children_cum = 0.0;
        for (const auto& c : n->children) {
          children_cum += cumulative[c.get()][static_cast<size_t>(r)];
        }
        // Target the operator's own contribution (cumulative minus
        // children); the children's cumulative estimate stays visible as an
        // input, mirroring [8]'s bottom-up propagation without letting a
        // >1 coefficient on it compound multiplicatively up deep plans.
        data[op][static_cast<size_t>(r)].Add(
            NodeFeatures(*n, mode, children_cum),
            cumulative[n][static_cast<size_t>(r)] - children_cum);
      }
    });
  }

  for (size_t op = 0; op < kNumOpTypes; ++op) {
    for (size_t r = 0; r < kNumResources; ++r) {
      const Dataset& d = data[op][r];
      double mean = 0.0;
      for (double v : d.y) mean += v;
      est->fallback_[op][r] =
          d.y.empty() ? 0.0 : mean / static_cast<double>(d.y.size());
      if (d.NumRows() < 12) continue;
      auto lm = std::make_unique<LinearModel>();
      lm->Fit(d);
      est->models_[op][r] = std::move(lm);
    }
  }
  return est;
}

double AkdereEstimator::EstimateNode(const PlanNode& node, const Database& db,
                                     Resource resource) const {
  double children_cum = 0.0;
  for (const auto& c : node.children) {
    children_cum += EstimateNode(*c, db, resource);
  }
  const size_t op = static_cast<size_t>(node.type);
  const size_t r = static_cast<size_t>(resource);
  if (models_[op][r] == nullptr) return children_cum + fallback_[op][r];
  const double local =
      models_[op][r]->Predict(NodeFeatures(node, mode_, children_cum));
  // A cumulative estimate can never be below the children's.
  return children_cum + std::max(0.0, local);
}

double AkdereEstimator::Estimate(const ExecutedQuery& query,
                                 Resource resource) const {
  if (!query.plan.root || query.database == nullptr) return 0.0;
  return EstimateNode(*query.plan.root, *query.database, resource);
}

// --- SCALING -----------------------------------------------------------------

std::unique_ptr<ScalingEstimator> ScalingEstimator::Train(
    const std::vector<ExecutedQuery>& workload, const TrainOptions& options) {
  auto est = std::make_unique<ScalingEstimator>();
  est->core_ = ResourceEstimator::Train(workload, options);
  return est;
}

double ScalingEstimator::Estimate(const ExecutedQuery& query,
                                  Resource resource) const {
  if (!query.plan.root || query.database == nullptr) return 0.0;
  return core_.EstimateQuery(query.plan, *query.database, resource);
}

}  // namespace resest
