// The evaluation harness shared by the table benchmarks: trains a set of
// techniques on one workload, evaluates them on another, and reports the
// paper's two error metrics (L1 relative error and ratio-error buckets).
#ifndef RESEST_BASELINES_HARNESS_H_
#define RESEST_BASELINES_HARNESS_H_

#include <memory>
#include <string>
#include <vector>

#include "src/baselines/query_estimator.h"
#include "src/common/stats.h"

namespace resest {

/// One row of a paper-style results table.
struct TechniqueScore {
  std::string technique;
  double l1_error = 0.0;
  RatioBuckets buckets;
};

/// Technique identifiers understood by the harness.
///   "OPT", "[8]", "LINEAR", "MART", "REGTREE", "SVM(PK)", "SVM(NPK)",
///   "SVM(RBF)", "SVM(Puk)", "SCALING", and ablations
///   "SCALING-nonorm" (no dependent-feature normalization) and
///   "SCALING-1f" (at most one scale feature).
std::unique_ptr<QueryEstimator> TrainTechnique(
    const std::string& technique, const std::vector<ExecutedQuery>& train,
    FeatureMode mode);

/// Trains each technique and scores it on the test queries for `resource`.
std::vector<TechniqueScore> EvaluateTechniques(
    const std::vector<std::string>& techniques,
    const std::vector<ExecutedQuery>& train,
    const std::vector<ExecutedQuery>& test, Resource resource,
    FeatureMode mode);

/// Scores one trained estimator on the test queries.
TechniqueScore ScoreEstimator(const QueryEstimator& estimator,
                              const std::vector<ExecutedQuery>& test,
                              Resource resource);

/// Prints a table in the paper's layout:
///   Technique | L1 Err | R<=1.5 | R in [1.5,2] | R>2.
void PrintScoreTable(const std::string& title,
                     const std::vector<TechniqueScore>& scores);

/// Actual resource usage of an executed query.
double ActualUsage(const ExecutedQuery& query, Resource resource);

}  // namespace resest

#endif  // RESEST_BASELINES_HARNESS_H_
