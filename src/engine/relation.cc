#include "src/engine/relation.h"

namespace resest {

int Relation::FindColumn(const std::string& name) const {
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i].name == name) return static_cast<int>(i);
  }
  // Fall back to suffix match on the unqualified part.
  int found = -1;
  for (size_t i = 0; i < columns.size(); ++i) {
    const std::string& full = columns[i].name;
    const size_t dot = full.rfind('.');
    if (dot != std::string::npos && full.compare(dot + 1, std::string::npos, name) == 0) {
      if (found >= 0) return -1;  // ambiguous
      found = static_cast<int>(i);
    }
  }
  return found;
}

void Relation::AppendRow(const Relation& src, int64_t row) {
  for (size_t c = 0; c < columns.size(); ++c) {
    columns[c].data.push_back(src.columns[c].data[static_cast<size_t>(row)]);
  }
}

void Relation::Reserve(int64_t rows) {
  for (auto& c : columns) c.data.reserve(static_cast<size_t>(rows));
}

}  // namespace resest
