// The execution engine: runs physical plans over a Database, producing both
// query results and measured per-operator resource consumption.
//
// This is the substrate standing in for SQL Server in the paper's experiments:
// training data is obtained by executing queries here and reading back each
// operator's OperatorStats.
#ifndef RESEST_ENGINE_EXECUTOR_H_
#define RESEST_ENGINE_EXECUTOR_H_

#include <cstdint>

#include "src/common/rng.h"
#include "src/engine/plan.h"
#include "src/engine/relation.h"
#include "src/storage/catalog.h"

namespace resest {

/// Executes plans and charges simulated resource consumption to each node.
class Executor {
 public:
  /// @param db    Database to execute against.
  /// @param seed  Seed of the measurement-noise stream.
  explicit Executor(const Database* db, uint64_t seed = 7);

  /// Executes the plan; fills node->actual on every operator and returns the
  /// root's output relation.
  Relation Execute(Plan* plan);

  /// Executes a single subtree (used by tests).
  Relation ExecuteNode(PlanNode* node);

 private:
  Relation ExecTableScan(PlanNode* node);
  Relation ExecIndexSeek(PlanNode* node);
  Relation ExecFilter(PlanNode* node);
  Relation ExecSort(PlanNode* node);
  Relation ExecTop(PlanNode* node);
  Relation ExecHashJoin(PlanNode* node);
  Relation ExecMergeJoin(PlanNode* node);
  Relation ExecNestedLoopJoin(PlanNode* node);
  Relation ExecIndexNestedLoopJoin(PlanNode* node);
  Relation ExecHashAggregate(PlanNode* node);
  Relation ExecStreamAggregate(PlanNode* node);
  Relation ExecComputeScalar(PlanNode* node);

  /// Records input-side stats for child i.
  static void NoteInput(PlanNode* node, int i, const Relation& input);
  /// Records output stats and applies CPU measurement noise.
  void FinishNode(PlanNode* node, const Relation& output, double cpu,
                  int64_t logical_io);

  const Database* db_;
  Rng noise_;
};

}  // namespace resest

#endif  // RESEST_ENGINE_EXECUTOR_H_
