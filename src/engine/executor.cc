#include "src/engine/executor.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_map>

#include "src/engine/cost_constants.h"

namespace resest {

namespace {

// Mixes a value into a 64-bit hash (splitmix64 finalizer).
uint64_t MixHash(uint64_t h, Value v) {
  uint64_t z = h ^ (static_cast<uint64_t>(v) + 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

// Number of simulated pages occupied by `bytes`.
int64_t BytesToPages(int64_t bytes) {
  return std::max<int64_t>(1, (bytes + kPageSize - 1) / kPageSize);
}

// Resolves a predicate column against a base table; throws on bad plans.
int ResolveBaseColumn(const Table& table, const std::string& name) {
  int c = table.FindColumn(name);
  if (c < 0) {
    // Accept qualified "table.col" names as well.
    const size_t dot = name.rfind('.');
    if (dot != std::string::npos) c = table.FindColumn(name.substr(dot + 1));
  }
  if (c < 0) {
    throw std::runtime_error("unknown column '" + name + "' in table " +
                             table.name());
  }
  return c;
}

int ResolveRelColumn(const Relation& rel, const std::string& name) {
  const int c = rel.FindColumn(name);
  if (c < 0) throw std::runtime_error("unknown column '" + name + "' in relation");
  return c;
}

}  // namespace

Executor::Executor(const Database* db, uint64_t seed) : db_(db), noise_(seed) {}

Relation Executor::Execute(Plan* plan) { return ExecuteNode(plan->root.get()); }

Relation Executor::ExecuteNode(PlanNode* node) {
  switch (node->type) {
    case OpType::kTableScan: return ExecTableScan(node);
    case OpType::kIndexSeek: return ExecIndexSeek(node);
    case OpType::kFilter: return ExecFilter(node);
    case OpType::kSort: return ExecSort(node);
    case OpType::kTop: return ExecTop(node);
    case OpType::kHashJoin: return ExecHashJoin(node);
    case OpType::kMergeJoin: return ExecMergeJoin(node);
    case OpType::kNestedLoopJoin: return ExecNestedLoopJoin(node);
    case OpType::kIndexNestedLoopJoin: return ExecIndexNestedLoopJoin(node);
    case OpType::kHashAggregate: return ExecHashAggregate(node);
    case OpType::kStreamAggregate: return ExecStreamAggregate(node);
    case OpType::kComputeScalar: return ExecComputeScalar(node);
  }
  throw std::runtime_error("unknown operator type");
}

void Executor::NoteInput(PlanNode* node, int i, const Relation& input) {
  node->actual.rows_in[i] = input.rows();
  node->actual.bytes_in[i] = static_cast<double>(input.bytes());
}

void Executor::FinishNode(PlanNode* node, const Relation& output, double cpu,
                          int64_t logical_io) {
  node->actual.cpu = cpu * noise_.LogNormalFactor(cost::kCpuNoiseSigma);
  node->actual.logical_io = logical_io;
  node->actual.rows_out = output.rows();
  node->actual.bytes_out = static_cast<double>(output.bytes());
  node->actual.executed = true;
}

// --- Scans -----------------------------------------------------------------

Relation Executor::ExecTableScan(PlanNode* node) {
  const Table* table = db_->FindTable(node->table);
  if (table == nullptr) throw std::runtime_error("unknown table " + node->table);

  // Resolve projection (empty = all columns) and predicates.
  std::vector<int> out_cols;
  if (node->output_columns.empty()) {
    for (size_t i = 0; i < table->column_count(); ++i)
      out_cols.push_back(static_cast<int>(i));
  } else {
    for (const auto& n : node->output_columns)
      out_cols.push_back(ResolveBaseColumn(*table, n));
  }
  std::vector<std::pair<int, const Predicate*>> preds;
  for (const auto& p : node->predicates)
    preds.emplace_back(ResolveBaseColumn(*table, p.column), &p);

  Relation out;
  for (int c : out_cols) {
    const Column& col = table->column(static_cast<size_t>(c));
    out.columns.push_back(
        {node->table + "." + col.def.name, col.def.width_bytes, {}});
  }

  const int64_t rows = table->row_count();
  std::vector<int64_t> selected;
  selected.reserve(static_cast<size_t>(rows) / 4 + 1);
  for (int64_t r = 0; r < rows; ++r) {
    bool ok = true;
    for (const auto& [c, p] : preds) {
      if (!p->Matches(table->column(static_cast<size_t>(c)).data[static_cast<size_t>(r)])) {
        ok = false;
        break;
      }
    }
    if (ok) selected.push_back(r);
  }
  out.Reserve(static_cast<int64_t>(selected.size()));
  for (size_t oc = 0; oc < out_cols.size(); ++oc) {
    const auto& src = table->column(static_cast<size_t>(out_cols[oc])).data;
    auto& dst = out.columns[oc].data;
    for (int64_t r : selected) dst.push_back(src[static_cast<size_t>(r)]);
  }

  // Resource accounting: every data page is requested once; per-row decode
  // cost depends on row width (cache behaviour), qualifying rows pay copy-out.
  const int64_t pages = table->data_pages();
  const double wide = cost::WideRowFactor(table->row_width());
  double cpu = static_cast<double>(pages) * cost::kPageOverhead;
  cpu += static_cast<double>(rows) *
         (cost::kRowDecode * wide +
          cost::kPredicateEval * static_cast<double>(preds.size()));
  cpu += static_cast<double>(selected.size()) *
         (cost::kColumnCopy * static_cast<double>(out_cols.size()) +
          cost::kByteCopy * static_cast<double>(out.row_width()));
  FinishNode(node, out, cpu, pages);
  return out;
}

Relation Executor::ExecIndexSeek(PlanNode* node) {
  const Table* table = db_->FindTable(node->table);
  if (table == nullptr) throw std::runtime_error("unknown table " + node->table);
  const int key_col = ResolveBaseColumn(*table, node->seek_column);
  const Index* index = table->IndexOn(key_col);
  if (index == nullptr) {
    throw std::runtime_error("no index on " + node->table + "." + node->seek_column);
  }

  // Split predicates into the seek range (on the key) and residuals.
  Value lo = INT64_MIN, hi = INT64_MAX;
  std::vector<std::pair<int, const Predicate*>> residual;
  for (const auto& p : node->predicates) {
    const int c = ResolveBaseColumn(*table, p.column);
    if (c == key_col) {
      switch (p.op) {
        case Predicate::Op::kEq: lo = std::max(lo, p.lo); hi = std::min(hi, p.lo); break;
        case Predicate::Op::kLe: hi = std::min(hi, p.hi); break;
        case Predicate::Op::kGe: lo = std::max(lo, p.lo); break;
        case Predicate::Op::kBetween: lo = std::max(lo, p.lo); hi = std::min(hi, p.hi); break;
      }
    } else {
      residual.emplace_back(c, &p);
    }
  }

  const auto& entries = index->entries();
  auto first = std::lower_bound(entries.begin(), entries.end(),
                                std::make_pair(lo, INT64_MIN));
  auto last = std::upper_bound(entries.begin(), entries.end(),
                               std::make_pair(hi, INT64_MAX));
  const int64_t matches = static_cast<int64_t>(last - first);

  std::vector<int> out_cols;
  if (node->output_columns.empty()) {
    for (size_t i = 0; i < table->column_count(); ++i)
      out_cols.push_back(static_cast<int>(i));
  } else {
    for (const auto& n : node->output_columns)
      out_cols.push_back(ResolveBaseColumn(*table, n));
  }
  Relation out;
  for (int c : out_cols) {
    const Column& col = table->column(static_cast<size_t>(c));
    out.columns.push_back(
        {node->table + "." + col.def.name, col.def.width_bytes, {}});
  }
  out.Reserve(matches);

  int64_t kept = 0;
  for (auto it = first; it != last; ++it) {
    const int64_t row = it->second;
    bool ok = true;
    for (const auto& [c, p] : residual) {
      if (!p->Matches(table->column(static_cast<size_t>(c)).data[static_cast<size_t>(row)])) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    ++kept;
    for (size_t oc = 0; oc < out_cols.size(); ++oc) {
      out.columns[oc].data.push_back(
          table->column(static_cast<size_t>(out_cols[oc])).data[static_cast<size_t>(row)]);
    }
  }

  // I/O: root-to-leaf traversal, the touched leaf range, and (for secondary
  // indexes) one bookmark lookup per qualifying entry.
  int64_t io = index->depth() - 1;
  if (matches > 0) {
    const int64_t first_leaf = index->LeafPageOf(first - entries.begin());
    const int64_t last_leaf = index->LeafPageOf(last - entries.begin() - 1);
    io += last_leaf - first_leaf + 1;
    if (!index->clustered()) io += matches;
  } else {
    io += 1;  // the leaf where the key would be
  }

  double cpu = static_cast<double>(index->depth()) *
               (cost::kSeekLevel +
                cost::kCompare * std::log2(static_cast<double>(kIndexFanout)));
  cpu += static_cast<double>(matches) *
         (cost::kSeekLeafRow +
          cost::kPredicateEval * static_cast<double>(residual.size()));
  if (!index->clustered()) cpu += static_cast<double>(matches) * cost::kRidLookup;
  cpu += static_cast<double>(kept) *
         (cost::kColumnCopy * static_cast<double>(out_cols.size()) +
          cost::kByteCopy * static_cast<double>(out.row_width()));
  FinishNode(node, out, cpu, io);
  return out;
}

// --- Tuple-at-a-time operators ----------------------------------------------

Relation Executor::ExecFilter(PlanNode* node) {
  Relation in = ExecuteNode(node->child(0));
  NoteInput(node, 0, in);

  std::vector<std::pair<int, const Predicate*>> preds;
  for (const auto& p : node->predicates)
    preds.emplace_back(ResolveRelColumn(in, p.column), &p);

  Relation out;
  for (const auto& c : in.columns) out.columns.push_back({c.name, c.width_bytes, {}});
  const int64_t rows = in.rows();
  for (int64_t r = 0; r < rows; ++r) {
    bool ok = true;
    for (const auto& [c, p] : preds) {
      if (!p->Matches(in.columns[static_cast<size_t>(c)].data[static_cast<size_t>(r)])) {
        ok = false;
        break;
      }
    }
    if (ok) out.AppendRow(in, r);
  }

  double cpu = static_cast<double>(rows) * cost::kPredicateEval *
               static_cast<double>(std::max<size_t>(1, preds.size()));
  cpu += static_cast<double>(out.rows()) *
         (cost::kColumnCopy * static_cast<double>(out.columns.size()));
  FinishNode(node, out, cpu, 0);
  return out;
}

Relation Executor::ExecSort(PlanNode* node) {
  Relation in = ExecuteNode(node->child(0));
  NoteInput(node, 0, in);

  std::vector<int> keys;
  for (const auto& k : node->sort_columns) keys.push_back(ResolveRelColumn(in, k));

  const int64_t rows = in.rows();
  std::vector<int64_t> order(static_cast<size_t>(rows));
  for (int64_t i = 0; i < rows; ++i) order[static_cast<size_t>(i)] = i;

  int64_t comparisons = 0;
  std::sort(order.begin(), order.end(), [&](int64_t a, int64_t b) {
    ++comparisons;
    for (int k : keys) {
      const auto& col = in.columns[static_cast<size_t>(k)].data;
      if (col[static_cast<size_t>(a)] != col[static_cast<size_t>(b)])
        return col[static_cast<size_t>(a)] < col[static_cast<size_t>(b)];
    }
    return a < b;
  });

  Relation out;
  for (const auto& c : in.columns) out.columns.push_back({c.name, c.width_bytes, {}});
  out.Reserve(rows);
  for (int64_t r : order) out.AppendRow(in, r);

  const double per_cmp =
      cost::kCompare + cost::kComparePerColumn * static_cast<double>(keys.size());
  double cpu = static_cast<double>(comparisons) * per_cmp;
  cpu += static_cast<double>(rows) *
         (cost::kSortMove + cost::kSortMovePerByte * static_cast<double>(in.row_width()));

  // External sort: inputs beyond the memory budget are written out in runs and
  // merged in multiple passes — resource use "jumps" with the pass count, a
  // discontinuity the paper calls out (Section 4, Properties of MART).
  int64_t io = 0;
  const int64_t bytes = in.bytes();
  if (bytes > cost::kSortMemoryBytes) {
    int64_t runs = (bytes + cost::kSortMemoryBytes - 1) / cost::kSortMemoryBytes;
    int passes = 0;
    while (runs > 1) {
      runs = (runs + cost::kMergeFanin - 1) / cost::kMergeFanin;
      ++passes;
    }
    const int64_t pages = BytesToPages(bytes);
    io += 2 * pages * passes;
    cpu += static_cast<double>(rows) * cost::kSpillRowCost * passes;
    cpu += static_cast<double>(rows) *
           std::log2(static_cast<double>(cost::kMergeFanin)) * per_cmp *
           static_cast<double>(passes);
  }
  FinishNode(node, out, cpu, io);
  return out;
}

Relation Executor::ExecTop(PlanNode* node) {
  Relation in = ExecuteNode(node->child(0));
  NoteInput(node, 0, in);

  Relation out;
  for (const auto& c : in.columns) out.columns.push_back({c.name, c.width_bytes, {}});
  const int64_t n = std::min<int64_t>(node->limit, in.rows());
  out.Reserve(n);
  for (int64_t r = 0; r < n; ++r) out.AppendRow(in, r);

  const double cpu = static_cast<double>(in.rows()) * cost::kTopRow +
                     static_cast<double>(n) * cost::kColumnCopy *
                         static_cast<double>(out.columns.size());
  FinishNode(node, out, cpu, 0);
  return out;
}

// --- Joins -------------------------------------------------------------------

Relation Executor::ExecHashJoin(PlanNode* node) {
  Relation probe = ExecuteNode(node->child(0));
  NoteInput(node, 0, probe);
  Relation build = ExecuteNode(node->child(1));
  NoteInput(node, 1, build);

  const int pk = ResolveRelColumn(probe, node->left_key);
  const int bk = ResolveRelColumn(build, node->right_key);

  std::unordered_map<Value, std::vector<int64_t>> ht;
  ht.reserve(static_cast<size_t>(build.rows()));
  for (int64_t r = 0; r < build.rows(); ++r) {
    ht[build.columns[static_cast<size_t>(bk)].data[static_cast<size_t>(r)]].push_back(r);
  }

  Relation out;
  for (const auto& c : probe.columns) out.columns.push_back({c.name, c.width_bytes, {}});
  for (const auto& c : build.columns) out.columns.push_back({c.name, c.width_bytes, {}});

  int64_t chain_steps = 0;
  for (int64_t r = 0; r < probe.rows(); ++r) {
    const Value key = probe.columns[static_cast<size_t>(pk)].data[static_cast<size_t>(r)];
    auto it = ht.find(key);
    if (it == ht.end()) continue;
    chain_steps += static_cast<int64_t>(it->second.size());
    for (int64_t br : it->second) {
      size_t c = 0;
      for (; c < probe.columns.size(); ++c)
        out.columns[c].data.push_back(probe.columns[c].data[static_cast<size_t>(r)]);
      for (size_t bc = 0; bc < build.columns.size(); ++bc)
        out.columns[c + bc].data.push_back(build.columns[bc].data[static_cast<size_t>(br)]);
    }
  }

  const double hash_cost = cost::kHashOp + cost::kHashPerColumn;  // 1 key column
  const double cache = cost::HashSizeFactor(build.rows());
  double cpu = static_cast<double>(build.rows()) *
               (hash_cost + cost::kHashInsert + cost::kHashResizeRow);
  cpu += static_cast<double>(probe.rows()) *
         (hash_cost + cost::kHashProbe * cache);
  cpu += static_cast<double>(chain_steps) * cost::kHashChainStep * cache;
  cpu += static_cast<double>(out.rows()) *
         (cost::kOutputRow + cost::kByteCopy * static_cast<double>(out.row_width()));

  // Grace-style spill when the build side exceeds the memory budget: one
  // partition pass over both inputs.
  int64_t io = 0;
  if (build.bytes() > cost::kHashMemoryBytes) {
    io += 2 * (BytesToPages(build.bytes()) + BytesToPages(probe.bytes()));
    cpu += static_cast<double>(build.rows() + probe.rows()) * cost::kSpillPartitionRow;
  }
  FinishNode(node, out, cpu, io);
  return out;
}

Relation Executor::ExecMergeJoin(PlanNode* node) {
  Relation left = ExecuteNode(node->child(0));
  NoteInput(node, 0, left);
  Relation right = ExecuteNode(node->child(1));
  NoteInput(node, 1, right);

  const int lk = ResolveRelColumn(left, node->left_key);
  const int rk = ResolveRelColumn(right, node->right_key);
  const auto& lv = left.columns[static_cast<size_t>(lk)].data;
  const auto& rv = right.columns[static_cast<size_t>(rk)].data;

  Relation out;
  for (const auto& c : left.columns) out.columns.push_back({c.name, c.width_bytes, {}});
  for (const auto& c : right.columns) out.columns.push_back({c.name, c.width_bytes, {}});

  int64_t steps = 0;
  int64_t i = 0, j = 0;
  while (i < left.rows() && j < right.rows()) {
    ++steps;
    if (lv[static_cast<size_t>(i)] < rv[static_cast<size_t>(j)]) {
      ++i;
    } else if (lv[static_cast<size_t>(i)] > rv[static_cast<size_t>(j)]) {
      ++j;
    } else {
      // Cross-product of the equal-key groups.
      const Value key = lv[static_cast<size_t>(i)];
      int64_t i_end = i, j_end = j;
      while (i_end < left.rows() && lv[static_cast<size_t>(i_end)] == key) ++i_end;
      while (j_end < right.rows() && rv[static_cast<size_t>(j_end)] == key) ++j_end;
      for (int64_t a = i; a < i_end; ++a) {
        for (int64_t b = j; b < j_end; ++b) {
          size_t c = 0;
          for (; c < left.columns.size(); ++c)
            out.columns[c].data.push_back(left.columns[c].data[static_cast<size_t>(a)]);
          for (size_t bc = 0; bc < right.columns.size(); ++bc)
            out.columns[c + bc].data.push_back(right.columns[bc].data[static_cast<size_t>(b)]);
        }
      }
      steps += (i_end - i) + (j_end - j);
      i = i_end;
      j = j_end;
    }
  }

  double cpu = static_cast<double>(steps) * cost::kCompare * 2.0;
  cpu += static_cast<double>(left.rows() + right.rows()) * cost::kRowDecode;
  cpu += static_cast<double>(out.rows()) *
         (cost::kOutputRow + cost::kByteCopy * static_cast<double>(out.row_width()));
  FinishNode(node, out, cpu, 0);
  return out;
}

Relation Executor::ExecNestedLoopJoin(PlanNode* node) {
  Relation outer = ExecuteNode(node->child(0));
  NoteInput(node, 0, outer);
  Relation inner = ExecuteNode(node->child(1));
  NoteInput(node, 1, inner);

  const int ok = ResolveRelColumn(outer, node->left_key);
  const int ik = ResolveRelColumn(inner, node->right_key);

  Relation out;
  for (const auto& c : outer.columns) out.columns.push_back({c.name, c.width_bytes, {}});
  for (const auto& c : inner.columns) out.columns.push_back({c.name, c.width_bytes, {}});

  for (int64_t a = 0; a < outer.rows(); ++a) {
    const Value key = outer.columns[static_cast<size_t>(ok)].data[static_cast<size_t>(a)];
    for (int64_t b = 0; b < inner.rows(); ++b) {
      if (inner.columns[static_cast<size_t>(ik)].data[static_cast<size_t>(b)] != key) continue;
      size_t c = 0;
      for (; c < outer.columns.size(); ++c)
        out.columns[c].data.push_back(outer.columns[c].data[static_cast<size_t>(a)]);
      for (size_t bc = 0; bc < inner.columns.size(); ++bc)
        out.columns[c + bc].data.push_back(inner.columns[bc].data[static_cast<size_t>(b)]);
    }
  }

  double cpu = static_cast<double>(outer.rows()) * static_cast<double>(inner.rows()) *
               cost::kNestedLoopInnerRow;
  cpu += static_cast<double>(out.rows()) *
         (cost::kOutputRow + cost::kByteCopy * static_cast<double>(out.row_width()));
  FinishNode(node, out, cpu, 0);
  return out;
}

Relation Executor::ExecIndexNestedLoopJoin(PlanNode* node) {
  Relation outer = ExecuteNode(node->child(0));
  NoteInput(node, 0, outer);

  const Table* inner = db_->FindTable(node->inner_table);
  if (inner == nullptr) throw std::runtime_error("unknown table " + node->inner_table);
  const int inner_col = ResolveBaseColumn(*inner, node->inner_key);
  const Index* index = inner->IndexOn(inner_col);
  if (index == nullptr) {
    throw std::runtime_error("no index on " + node->inner_table + "." + node->inner_key);
  }
  const int ok = ResolveRelColumn(outer, node->left_key);
  NoteInput(node, 1, outer);  // placeholder; corrected below with seek volume
  node->actual.rows_in[1] = inner->row_count();
  node->actual.bytes_in[1] =
      static_cast<double>(inner->row_count() * inner->row_width());

  std::vector<int> inner_out;
  if (node->inner_output_columns.empty()) {
    for (size_t i = 0; i < inner->column_count(); ++i)
      inner_out.push_back(static_cast<int>(i));
  } else {
    for (const auto& n : node->inner_output_columns)
      inner_out.push_back(ResolveBaseColumn(*inner, n));
  }

  Relation out;
  for (const auto& c : outer.columns) out.columns.push_back({c.name, c.width_bytes, {}});
  for (int c : inner_out) {
    const Column& col = inner->column(static_cast<size_t>(c));
    out.columns.push_back(
        {node->inner_table + "." + col.def.name, col.def.width_bytes, {}});
  }

  // Batch-sort optimization (paper Section 1): sort the outer rows on the
  // join key so the inner index is probed with increasing keys. This costs
  // extra CPU but localizes page references — one of the query-processing
  // refinements hand-built optimizer cost models tend to miss.
  const int64_t n_outer = outer.rows();
  std::vector<int64_t> order(static_cast<size_t>(n_outer));
  for (int64_t i = 0; i < n_outer; ++i) order[static_cast<size_t>(i)] = i;
  int64_t batch_comparisons = 0;
  std::sort(order.begin(), order.end(), [&](int64_t a, int64_t b) {
    ++batch_comparisons;
    return outer.columns[static_cast<size_t>(ok)].data[static_cast<size_t>(a)] <
           outer.columns[static_cast<size_t>(ok)].data[static_cast<size_t>(b)];
  });

  int64_t matches = 0;
  int64_t io = 0;
  const auto& entries = index->entries();
  for (int64_t oi : order) {
    const Value key = outer.columns[static_cast<size_t>(ok)].data[static_cast<size_t>(oi)];
    auto first = std::lower_bound(entries.begin(), entries.end(),
                                  std::make_pair(key, INT64_MIN));
    auto last = std::upper_bound(entries.begin(), entries.end(),
                                 std::make_pair(key, INT64_MAX));
    const int64_t m = static_cast<int64_t>(last - first);
    // Every probe traverses root..leaf (logical reads count cache hits too).
    io += index->depth();
    if (!index->clustered()) io += m;
    matches += m;
    for (auto it = first; it != last; ++it) {
      const int64_t row = it->second;
      size_t c = 0;
      for (; c < outer.columns.size(); ++c)
        out.columns[c].data.push_back(outer.columns[c].data[static_cast<size_t>(oi)]);
      for (size_t ic = 0; ic < inner_out.size(); ++ic) {
        out.columns[c + ic].data.push_back(
            inner->column(static_cast<size_t>(inner_out[ic])).data[static_cast<size_t>(row)]);
      }
    }
  }

  double cpu = static_cast<double>(batch_comparisons) * cost::kBatchSortCompare;
  cpu += static_cast<double>(n_outer) *
         (static_cast<double>(index->depth()) *
          (cost::kSeekLevel + cost::kCompare * std::log2(static_cast<double>(kIndexFanout))));
  cpu += static_cast<double>(matches) * cost::kSeekLeafRow;
  if (!index->clustered()) cpu += static_cast<double>(matches) * cost::kRidLookup;
  cpu += static_cast<double>(out.rows()) *
         (cost::kOutputRow + cost::kByteCopy * static_cast<double>(out.row_width()));
  FinishNode(node, out, cpu, io);
  return out;
}

// --- Aggregation --------------------------------------------------------------

Relation Executor::ExecHashAggregate(PlanNode* node) {
  Relation in = ExecuteNode(node->child(0));
  NoteInput(node, 0, in);

  std::vector<int> keys;
  for (const auto& k : node->group_columns) keys.push_back(ResolveRelColumn(in, k));
  const int agg_src = keys.empty() ? 0 : keys[0];

  struct Group {
    int64_t first_row;
    int64_t count;
    Value sum;
  };
  std::unordered_map<uint64_t, Group> groups;
  groups.reserve(1024);

  const int64_t rows = in.rows();
  int64_t chain_steps = 0;
  for (int64_t r = 0; r < rows; ++r) {
    uint64_t h = 0x12345;
    for (int k : keys) h = MixHash(h, in.columns[static_cast<size_t>(k)].data[static_cast<size_t>(r)]);
    auto [it, inserted] = groups.try_emplace(h, Group{r, 0, 0});
    if (!inserted) ++chain_steps;
    ++it->second.count;
    it->second.sum += in.columns[static_cast<size_t>(agg_src)].data[static_cast<size_t>(r)];
  }

  Relation out;
  for (int k : keys) {
    out.columns.push_back({in.columns[static_cast<size_t>(k)].name,
                           in.columns[static_cast<size_t>(k)].width_bytes, {}});
  }
  for (int a = 0; a < node->num_aggregates; ++a) {
    out.columns.push_back({"agg" + std::to_string(a), 8, {}});
  }
  out.Reserve(static_cast<int64_t>(groups.size()));
  for (const auto& [h, g] : groups) {
    (void)h;
    for (size_t k = 0; k < keys.size(); ++k) {
      out.columns[k].data.push_back(
          in.columns[static_cast<size_t>(keys[k])].data[static_cast<size_t>(g.first_row)]);
    }
    for (int a = 0; a < node->num_aggregates; ++a) {
      out.columns[keys.size() + static_cast<size_t>(a)].data.push_back(
          a % 2 == 0 ? g.sum : g.count);
    }
  }

  const double hash_cost =
      cost::kHashOp +
      cost::kHashPerColumn * static_cast<double>(std::max<size_t>(1, keys.size()));
  const double cache = cost::HashSizeFactor(static_cast<int64_t>(groups.size()));
  double cpu = static_cast<double>(rows) *
               (hash_cost + cost::kHashProbe * cache +
                cost::kAggUpdate * static_cast<double>(node->num_aggregates));
  cpu += static_cast<double>(chain_steps) * cost::kHashChainStep * cache;
  cpu += static_cast<double>(groups.size()) *
         (cost::kHashInsert + cost::kHashResizeRow +
          cost::kGroupFinalize * static_cast<double>(node->num_aggregates));

  int64_t io = 0;
  const int64_t state_bytes =
      static_cast<int64_t>(groups.size()) * (in.row_width() + 16);
  if (state_bytes > cost::kHashMemoryBytes) {
    io += 2 * BytesToPages(in.bytes());
    cpu += static_cast<double>(rows) * cost::kSpillPartitionRow;
  }
  FinishNode(node, out, cpu, io);
  return out;
}

Relation Executor::ExecStreamAggregate(PlanNode* node) {
  Relation in = ExecuteNode(node->child(0));
  NoteInput(node, 0, in);

  std::vector<int> keys;
  for (const auto& k : node->group_columns) keys.push_back(ResolveRelColumn(in, k));
  const int agg_src = keys.empty() ? 0 : keys[0];

  Relation out;
  for (int k : keys) {
    out.columns.push_back({in.columns[static_cast<size_t>(k)].name,
                           in.columns[static_cast<size_t>(k)].width_bytes, {}});
  }
  for (int a = 0; a < node->num_aggregates; ++a) {
    out.columns.push_back({"agg" + std::to_string(a), 8, {}});
  }

  const int64_t rows = in.rows();
  int64_t group_start = 0;
  Value sum = 0;
  auto same_group = [&](int64_t a, int64_t b) {
    for (int k : keys) {
      const auto& col = in.columns[static_cast<size_t>(k)].data;
      if (col[static_cast<size_t>(a)] != col[static_cast<size_t>(b)]) return false;
    }
    return true;
  };
  auto emit = [&](int64_t start, int64_t end) {
    for (size_t k = 0; k < keys.size(); ++k) {
      out.columns[k].data.push_back(
          in.columns[static_cast<size_t>(keys[k])].data[static_cast<size_t>(start)]);
    }
    for (int a = 0; a < node->num_aggregates; ++a) {
      out.columns[keys.size() + static_cast<size_t>(a)].data.push_back(
          a % 2 == 0 ? sum : end - start);
    }
  };
  for (int64_t r = 0; r < rows; ++r) {
    if (r > 0 && !same_group(r - 1, r)) {
      emit(group_start, r);
      group_start = r;
      sum = 0;
    }
    sum += in.columns[static_cast<size_t>(agg_src)].data[static_cast<size_t>(r)];
  }
  if (rows > 0) emit(group_start, rows);

  double cpu = static_cast<double>(rows) *
               (cost::kCompare * static_cast<double>(std::max<size_t>(1, keys.size())) +
                cost::kAggUpdate * static_cast<double>(node->num_aggregates));
  cpu += static_cast<double>(out.rows()) * cost::kGroupFinalize *
         static_cast<double>(node->num_aggregates);
  FinishNode(node, out, cpu, 0);
  return out;
}

Relation Executor::ExecComputeScalar(PlanNode* node) {
  Relation in = ExecuteNode(node->child(0));
  NoteInput(node, 0, in);

  Relation out = in;
  for (int e = 0; e < node->num_expressions; ++e) {
    RelColumn col{"expr" + std::to_string(e), 8, {}};
    col.data.reserve(static_cast<size_t>(in.rows()));
    const auto& src = in.columns.empty() ? std::vector<Value>{} : in.columns[0].data;
    for (int64_t r = 0; r < in.rows(); ++r) {
      col.data.push_back(src.empty() ? 0 : src[static_cast<size_t>(r)] * 2 + e);
    }
    out.columns.push_back(std::move(col));
  }

  const double cpu = static_cast<double>(in.rows()) * cost::kScalarExpr *
                     static_cast<double>(node->num_expressions);
  FinishNode(node, out, cpu, 0);
  return out;
}

}  // namespace resest
