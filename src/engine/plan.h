// Physical execution plan IR.
//
// Plans are trees of PlanNode. The optimizer annotates nodes with estimated
// cardinalities and costs; the executor fills in actual cardinalities and the
// measured resource consumption. The feature extractor (src/core) reads both.
#ifndef RESEST_ENGINE_PLAN_H_
#define RESEST_ENGINE_PLAN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/storage/table.h"

namespace resest {

/// Physical operator types. Mirrors the operator set the paper trains
/// per-operator models for (Figure 5: Scan, Seek, Filter, Sort, Hash
/// Join/Aggregate, Merge Join, Nested Loop variants, ...).
enum class OpType {
  kTableScan,
  kIndexSeek,
  kFilter,
  kSort,
  kTop,
  kHashJoin,
  kMergeJoin,
  kNestedLoopJoin,        ///< Naive inner-materialized nested loops.
  kIndexNestedLoopJoin,   ///< Inner side is an index lookup per outer row.
  kHashAggregate,
  kStreamAggregate,
  kComputeScalar,
};

/// Number of distinct operator types (for per-operator model arrays).
inline constexpr int kNumOpTypes = 12;

const char* OpTypeName(OpType t);

/// Inverse of OpTypeName. True (and sets *out) iff `name` is the exact
/// name of some operator type.
bool ParseOpType(const std::string& name, OpType* out);

/// Comparison predicate on a (qualified or unqualified) column name.
struct Predicate {
  enum class Op { kEq, kLe, kGe, kBetween };
  std::string column;
  Op op = Op::kEq;
  Value lo = 0;  ///< kEq/kGe/kBetween lower bound.
  Value hi = 0;  ///< kLe/kBetween upper bound.

  bool Matches(Value v) const {
    switch (op) {
      case Op::kEq: return v == lo;
      case Op::kLe: return v <= hi;
      case Op::kGe: return v >= lo;
      case Op::kBetween: return v >= lo && v <= hi;
    }
    return false;
  }
};

/// Actual, measured execution statistics of one operator.
struct OperatorStats {
  double cpu = 0.0;          ///< Simulated CPU time (pseudo-ms).
  int64_t logical_io = 0;    ///< Logical page requests.
  int64_t rows_out = 0;
  int64_t rows_in[2] = {0, 0};
  double bytes_out = 0.0;
  double bytes_in[2] = {0.0, 0.0};
  bool executed = false;
};

/// Optimizer annotations on one operator.
struct OptimizerEstimates {
  double rows_out = 0.0;
  double rows_in[2] = {0.0, 0.0};
  double bytes_out = 0.0;
  double bytes_in[2] = {0.0, 0.0};
  double cpu_cost = 0.0;    ///< Optimizer cost-model CPU component.
  double io_cost = 0.0;     ///< Optimizer cost-model I/O component.
  double total_cost = 0.0;  ///< Cumulative (subtree) cost.
};

/// A node in a physical plan tree.
struct PlanNode {
  OpType type = OpType::kTableScan;
  std::vector<std::unique_ptr<PlanNode>> children;

  // --- Scan/Seek ---
  std::string table;                       ///< Base table name.
  std::vector<std::string> output_columns; ///< Projected base columns.
  std::vector<Predicate> predicates;       ///< Pushed-down / residual filters.
  std::string seek_column;                 ///< Seek key column (kIndexSeek).

  // --- Sort ---
  std::vector<std::string> sort_columns;

  // --- Joins ---
  std::string left_key;    ///< Join key from child 0 / outer side.
  std::string right_key;   ///< Join key from child 1 / inner side.
  std::string inner_table; ///< kIndexNestedLoopJoin: inner base table.
  std::string inner_key;   ///< kIndexNestedLoopJoin: indexed inner column.
  std::vector<std::string> inner_output_columns;  ///< INLJ inner projection.

  // --- Aggregation ---
  std::vector<std::string> group_columns;
  int num_aggregates = 1;

  // --- ComputeScalar / Top ---
  int num_expressions = 1;
  int64_t limit = 0;

  OptimizerEstimates est;
  OperatorStats actual;

  PlanNode* child(size_t i) const { return children[i].get(); }
  size_t num_children() const { return children.size(); }

  /// Pre-order traversal over the subtree rooted here.
  template <typename Fn>
  void Visit(Fn&& fn) {
    fn(this);
    for (auto& c : children) c->Visit(fn);
  }
  template <typename Fn>
  void Visit(Fn&& fn) const {
    fn(this);
    for (const auto& c : children) c->Visit(fn);
  }

  /// True if this operator is blocking (materializes its input before
  /// producing output) — the boundary used for pipeline decomposition.
  bool IsBlocking() const {
    return type == OpType::kSort || type == OpType::kHashAggregate;
  }
};

/// A query's physical plan plus query-level totals.
struct Plan {
  std::unique_ptr<PlanNode> root;
  std::string database;

  /// Sum of per-operator actual CPU over the whole plan.
  double TotalActualCpu() const;
  /// Sum of per-operator logical I/O over the whole plan.
  int64_t TotalActualIo() const;
  /// Number of operators in the plan.
  int NumOperators() const;
  /// Human-readable indented plan (EXPLAIN-style).
  std::string ToString() const;
};

/// A pipeline: a maximal set of concurrently executing operators (paper §5.2).
/// Blocking operators terminate a pipeline; their input subtrees form earlier
/// pipelines. The hash-join build side is likewise a separate pipeline.
struct Pipeline {
  std::vector<const PlanNode*> nodes;
  double TotalCpu() const;
  int64_t TotalIo() const;
};

/// Decomposes a plan into pipelines (used by the scheduling example and the
/// pipeline-granularity estimation API).
std::vector<Pipeline> DecomposePipelines(const Plan& plan);

}  // namespace resest

#endif  // RESEST_ENGINE_PLAN_H_
