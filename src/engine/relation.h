// Materialized intermediate results flowing between physical operators.
#ifndef RESEST_ENGINE_RELATION_H_
#define RESEST_ENGINE_RELATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/storage/table.h"

namespace resest {

/// One column of an intermediate result. Names are qualified
/// ("table.column") so joins can carry both sides' attributes.
struct RelColumn {
  std::string name;
  int width_bytes = 8;
  std::vector<Value> data;
};

/// A fully materialized intermediate relation.
struct Relation {
  std::vector<RelColumn> columns;

  int64_t rows() const {
    return columns.empty() ? 0 : static_cast<int64_t>(columns[0].data.size());
  }
  int64_t row_width() const {
    int64_t w = 0;
    for (const auto& c : columns) w += c.width_bytes;
    return w;
  }
  int64_t bytes() const { return rows() * row_width(); }

  /// Index of the column with the given qualified name, or -1. Also accepts
  /// an unqualified name if it is unambiguous.
  int FindColumn(const std::string& name) const;

  /// Appends row `row` of `src` to this relation (columns must match).
  void AppendRow(const Relation& src, int64_t row);

  /// Reserves capacity in every column.
  void Reserve(int64_t rows);
};

}  // namespace resest

#endif  // RESEST_ENGINE_RELATION_H_
