// Calibrated micro-cost constants of the simulated execution engine.
//
// These play the role of the hardware: the engine counts *real* work
// (comparisons, hash operations, page requests) and converts it to simulated
// CPU time using these weights. Values are in pseudo-milliseconds per unit of
// work, chosen so typical experiment queries land in the 1..100k pseudo-ms
// range like the paper's plots. The ML layer never sees these constants —
// it must learn the resulting (non-linear, noisy) behaviour from observations.
#ifndef RESEST_ENGINE_COST_CONSTANTS_H_
#define RESEST_ENGINE_COST_CONSTANTS_H_

#include <cstdint>

namespace resest::cost {

// --- Scans ---
inline constexpr double kPageOverhead = 0.030;      ///< Per data-page visit.
inline constexpr double kRowDecode = 0.0035;        ///< Per row touched.
inline constexpr double kColumnCopy = 0.0012;       ///< Per output column per row.
inline constexpr double kByteCopy = 0.000035;       ///< Per output byte per row.
inline constexpr double kPredicateEval = 0.0016;    ///< Per predicate per row.
/// Smooth cache-unfriendliness surcharge for wide rows: per-row decode cost
/// is multiplied by 1 + 0.4 * (width/128)^1.3. Sub-linear in width for
/// narrow rows, super-linear for very wide rows — a shape linear models in
/// the feature set cannot express exactly.
inline double WideRowFactor(int64_t row_width_bytes) {
  const double w = static_cast<double>(row_width_bytes) / 128.0;
  double p = w;
  // w^1.3 without <cmath> dependency churn: w * w^0.3 ~ w * exp(0.3 ln w).
  p = w * __builtin_exp(0.3 * __builtin_log(w > 1e-9 ? w : 1e-9));
  return 1.0 + 0.4 * p;
}
/// Hash probes slow down as the hash table outgrows caches: the per-probe
/// cost is multiplied by 1 + 0.06 * log2(build rows).
inline double HashSizeFactor(int64_t build_rows) {
  const double n = build_rows > 2 ? static_cast<double>(build_rows) : 2.0;
  return 1.0 + 0.06 * (__builtin_log(n) / 0.6931471805599453);
}

// --- Index seeks ---
inline constexpr double kSeekLevel = 0.012;         ///< Per B-tree level visited.
inline constexpr double kSeekLeafRow = 0.0042;      ///< Per qualifying entry.
inline constexpr double kRidLookup = 0.011;         ///< Per bookmark lookup.

// --- Sort ---
inline constexpr double kCompare = 0.0021;          ///< Per key comparison...
inline constexpr double kComparePerColumn = 0.0009; ///< ...plus per sort column.
inline constexpr double kSortMove = 0.0028;         ///< Per row moved.
inline constexpr double kSortMovePerByte = 0.00002;
/// In-memory sort budget; larger inputs spill to multi-pass external merge.
inline constexpr int64_t kSortMemoryBytes = 2 * 1024 * 1024;
inline constexpr int kMergeFanin = 8;
inline constexpr double kSpillRowCost = 0.004;      ///< Per row per extra pass.

// --- Hashing (join build/probe, aggregation) ---
inline constexpr double kHashOp = 0.0024;           ///< Per hash function eval...
inline constexpr double kHashPerColumn = 0.0011;    ///< ...plus per key column.
inline constexpr double kHashInsert = 0.0031;       ///< Per build-side insert.
inline constexpr double kHashProbe = 0.0026;        ///< Per probe.
inline constexpr double kHashChainStep = 0.0011;    ///< Per bucket-chain step.
inline constexpr double kHashResizeRow = 0.0017;    ///< Amortized rehash cost.
/// Hash memory budget; larger builds spill (Grace partitioning).
inline constexpr int64_t kHashMemoryBytes = 4 * 1024 * 1024;
inline constexpr double kSpillPartitionRow = 0.005;

// --- Joins ---
inline constexpr double kOutputRow = 0.0030;        ///< Per joined output row.
inline constexpr double kNestedLoopInnerRow = 0.0008;
/// Batch-sort optimization of index nested loops (DeWitt et al. [11],
/// Elhemali et al. [13]): the outer batch is sorted on the join key,
/// costing extra CPU but localizing inner index accesses.
inline constexpr double kBatchSortCompare = 0.0016;

// --- Aggregation ---
inline constexpr double kAggUpdate = 0.0018;        ///< Per row per aggregate.
inline constexpr double kGroupFinalize = 0.0040;    ///< Per output group.

// --- Misc operators ---
inline constexpr double kScalarExpr = 0.0015;       ///< Per expression per row.
inline constexpr double kTopRow = 0.0008;

/// Multiplicative log-normal measurement noise applied to each operator's
/// CPU (sigma). Logical I/O is exact (it is a count, not a timing).
inline constexpr double kCpuNoiseSigma = 0.03;

}  // namespace resest::cost

#endif  // RESEST_ENGINE_COST_CONSTANTS_H_
