#include "src/engine/plan.h"

#include <sstream>

namespace resest {

const char* OpTypeName(OpType t) {
  switch (t) {
    case OpType::kTableScan: return "TableScan";
    case OpType::kIndexSeek: return "IndexSeek";
    case OpType::kFilter: return "Filter";
    case OpType::kSort: return "Sort";
    case OpType::kTop: return "Top";
    case OpType::kHashJoin: return "HashJoin";
    case OpType::kMergeJoin: return "MergeJoin";
    case OpType::kNestedLoopJoin: return "NestedLoopJoin";
    case OpType::kIndexNestedLoopJoin: return "IndexNestedLoopJoin";
    case OpType::kHashAggregate: return "HashAggregate";
    case OpType::kStreamAggregate: return "StreamAggregate";
    case OpType::kComputeScalar: return "ComputeScalar";
  }
  return "Unknown";
}

bool ParseOpType(const std::string& name, OpType* out) {
  for (int i = 0; i < kNumOpTypes; ++i) {
    const OpType t = static_cast<OpType>(i);
    if (name == OpTypeName(t)) {
      *out = t;
      return true;
    }
  }
  return false;
}

double Plan::TotalActualCpu() const {
  double total = 0.0;
  if (root) root->Visit([&](const PlanNode* n) { total += n->actual.cpu; });
  return total;
}

int64_t Plan::TotalActualIo() const {
  int64_t total = 0;
  if (root) root->Visit([&](const PlanNode* n) { total += n->actual.logical_io; });
  return total;
}

int Plan::NumOperators() const {
  int count = 0;
  if (root) root->Visit([&](const PlanNode*) { ++count; });
  return count;
}

namespace {
void PrintNode(const PlanNode* n, int depth, std::ostringstream* out) {
  for (int i = 0; i < depth; ++i) *out << "  ";
  *out << OpTypeName(n->type);
  if (!n->table.empty()) *out << " [" << n->table << "]";
  if (!n->inner_table.empty()) *out << " inner=[" << n->inner_table << "]";
  *out << " est_rows=" << n->est.rows_out;
  if (n->actual.executed) {
    *out << " rows=" << n->actual.rows_out << " cpu=" << n->actual.cpu
         << " io=" << n->actual.logical_io;
  }
  *out << "\n";
  for (const auto& c : n->children) PrintNode(c.get(), depth + 1, out);
}
}  // namespace

std::string Plan::ToString() const {
  std::ostringstream out;
  if (root) PrintNode(root.get(), 0, &out);
  return out.str();
}

double Pipeline::TotalCpu() const {
  double total = 0.0;
  for (const auto* n : nodes) total += n->actual.cpu;
  return total;
}

int64_t Pipeline::TotalIo() const {
  int64_t total = 0;
  for (const auto* n : nodes) total += n->actual.logical_io;
  return total;
}

namespace {
// Assigns nodes to pipelines bottom-up. A blocking operator (or a hash-join
// build side) closes the pipeline below it; the blocking operator itself
// starts/joins the consumer pipeline above.
void Decompose(const PlanNode* node, int pipeline_id,
               std::vector<std::vector<const PlanNode*>>* pipelines) {
  if (pipeline_id >= static_cast<int>(pipelines->size())) {
    pipelines->resize(static_cast<size_t>(pipeline_id) + 1);
  }
  (*pipelines)[static_cast<size_t>(pipeline_id)].push_back(node);
  for (size_t i = 0; i < node->num_children(); ++i) {
    const PlanNode* child = node->child(i);
    // Child subtrees below a blocking edge run as their own pipeline:
    //  - input of Sort / HashAggregate,
    //  - build side (child 1) of a HashJoin.
    const bool blocking_edge =
        node->IsBlocking() || (node->type == OpType::kHashJoin && i == 1);
    if (blocking_edge) {
      Decompose(child, static_cast<int>(pipelines->size()), pipelines);
    } else {
      Decompose(child, pipeline_id, pipelines);
    }
  }
}
}  // namespace

std::vector<Pipeline> DecomposePipelines(const Plan& plan) {
  std::vector<std::vector<const PlanNode*>> raw;
  if (plan.root) Decompose(plan.root.get(), 0, &raw);
  std::vector<Pipeline> result;
  result.reserve(raw.size());
  for (auto& nodes : raw) {
    Pipeline p;
    p.nodes = std::move(nodes);
    result.push_back(std::move(p));
  }
  return result;
}

}  // namespace resest
