#include "src/serving/model_registry.h"

#include <algorithm>
#include <filesystem>
#include <system_error>
#include <utility>

#include "src/common/serial.h"

namespace resest {

namespace {

constexpr uint32_t kLineageMagic = 0x524c4e47;  // "RLNG"
constexpr uint32_t kLineageVersion = 1;

std::string LineagePath(const std::string& model_path) {
  return model_path + ".lineage";
}

std::shared_ptr<const SlotVersionMap> FullStamp(uint64_t version) {
  auto slots = std::make_shared<SlotVersionMap>();
  for (auto& per_op : *slots) per_op.fill(version);
  return slots;
}

/// Serialized lineage sidecar: magic, format version, active version, then
/// one slot version per (op, resource) in canonical order.
bool WriteLineageFile(const std::string& path, uint64_t version,
                      const SlotVersionMap& slots) {
  std::vector<uint8_t> bytes;
  ByteWriter w(&bytes);
  w.U32(kLineageMagic);
  w.U32(kLineageVersion);
  w.Pod(version);
  for (const auto& per_op : slots) {
    for (uint64_t v : per_op) w.Pod(v);
  }
  return WriteFileAtomic(path, bytes);
}

bool ReadLineageFile(const std::string& path, uint64_t* version,
                     SlotVersionMap* slots) {
  std::vector<uint8_t> bytes;
  if (!ReadFileBytes(path, &bytes)) return false;
  ByteReader r(bytes);
  uint32_t magic = 0, format = 0;
  if (!r.U32(&magic) || magic != kLineageMagic) return false;
  if (!r.U32(&format) || format != kLineageVersion) return false;
  if (!r.Pod(version)) return false;
  for (auto& per_op : *slots) {
    for (uint64_t& v : per_op) {
      if (!r.Pod(&v)) return false;
    }
  }
  return r.AtEnd();
}

}  // namespace

uint64_t ModelRegistry::PublishLocked(
    const std::string& name, std::shared_ptr<const ResourceEstimator> estimator,
    std::shared_ptr<SlotVersionMap> slots, uint64_t min_version,
    const std::vector<ModelSlotId>& refitted) {
  Entry& entry = entries_[name];
  next_version_ = std::max(next_version_, min_version);
  const uint64_t version = next_version_++;
  std::shared_ptr<const SlotVersionMap> lineage;
  if (slots == nullptr) {
    lineage = FullStamp(version);
  } else {
    for (const auto& [op, resource] : refitted) {
      (*slots)[static_cast<size_t>(op)][static_cast<size_t>(resource)] =
          version;
    }
    lineage = std::move(slots);
  }
  entry.versions[version] = Version{std::move(estimator), std::move(lineage)};
  entry.active = version;
  EvictLocked(&entry);
  return version;
}

uint64_t ModelRegistry::Publish(
    const std::string& name,
    std::shared_ptr<const ResourceEstimator> estimator) {
  if (!estimator) return 0;
  std::lock_guard<std::mutex> lock(mu_);
  return PublishLocked(name, std::move(estimator), nullptr, 0, {});
}

uint64_t ModelRegistry::PublishDelta(
    const std::string& name, std::shared_ptr<const ResourceEstimator> estimator,
    uint64_t base_version, const std::vector<ModelSlotId>& refitted) {
  if (!estimator) return 0;
  std::lock_guard<std::mutex> lock(mu_);
  // Inherit the base's lineage when it is still retained; otherwise fall
  // back to stamping everything with the new version (full invalidation —
  // safe, merely wider than necessary).
  std::shared_ptr<const SlotVersionMap> base_slots;
  auto it = entries_.find(name);
  if (it != entries_.end()) {
    auto vit = it->second.versions.find(base_version);
    if (vit != it->second.versions.end()) base_slots = vit->second.slots;
  }
  if (base_slots == nullptr) {
    return PublishLocked(name, std::move(estimator), nullptr, 0, {});
  }
  return PublishLocked(name, std::move(estimator),
                       std::make_shared<SlotVersionMap>(*base_slots), 0,
                       refitted);
}

uint64_t ModelRegistry::PublishSerialized(const std::string& name,
                                          const std::vector<uint8_t>& bytes) {
  auto estimator = std::make_shared<ResourceEstimator>();
  if (!estimator->Deserialize(bytes)) return 0;
  return Publish(name, std::move(estimator));
}

uint64_t ModelRegistry::PublishFromFile(const std::string& name,
                                        const std::string& path) {
  auto estimator = std::make_shared<ResourceEstimator>();
  if (!estimator->LoadFromFile(path)) return 0;

  // Restore the delta lineage sidecar when present: the model is published
  // at a version >= every saved slot version (version numbering resumes
  // across the restart), so inherited slot versions never collide with
  // versions this registry mints later.
  uint64_t saved_version = 0;
  auto slots = std::make_shared<SlotVersionMap>();
  if (ReadLineageFile(LineagePath(path), &saved_version, slots.get())) {
    uint64_t max_slot = saved_version;
    for (const auto& per_op : *slots) {
      for (uint64_t v : per_op) max_slot = std::max(max_slot, v);
    }
    std::lock_guard<std::mutex> lock(mu_);
    return PublishLocked(name, std::move(estimator), std::move(slots),
                         max_slot, {});
  }
  return Publish(name, std::move(estimator));
}

bool ModelRegistry::SaveActive(const std::string& name,
                               const std::string& dir) const {
  const ModelSnapshot snapshot = Get(name);
  if (!snapshot) return false;
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return false;
  const std::filesystem::path path =
      std::filesystem::path(dir) / (name + ".model");
  if (!snapshot.estimator->SaveToFile(path.string())) return false;
  const SlotVersionMap slots =
      snapshot.slots ? *snapshot.slots : *FullStamp(snapshot.version);
  WriteLineageFile(LineagePath(path.string()), snapshot.version, slots);
  return true;
}

ModelSnapshot ModelRegistry::Get(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) return {};
  auto vit = it->second.versions.find(it->second.active);
  if (vit == it->second.versions.end()) return {};
  return {vit->second.estimator, vit->first, vit->second.slots};
}

ModelSnapshot ModelRegistry::GetVersion(const std::string& name,
                                        uint64_t version) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) return {};
  auto vit = it->second.versions.find(version);
  if (vit == it->second.versions.end()) return {};
  return {vit->second.estimator, vit->first, vit->second.slots};
}

bool ModelRegistry::Activate(const std::string& name, uint64_t version) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) return false;
  if (it->second.versions.count(version) == 0) return false;
  it->second.active = version;
  return true;
}

void ModelRegistry::Remove(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.erase(name);
}

std::vector<uint64_t> ModelRegistry::Versions(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<uint64_t> out;
  auto it = entries_.find(name);
  if (it == entries_.end()) return out;
  for (const auto& [v, _] : it->second.versions) out.push_back(v);
  return out;
}

std::vector<std::string> ModelRegistry::Names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  for (const auto& [name, _] : entries_) out.push_back(name);
  return out;
}

void ModelRegistry::EvictLocked(Entry* entry) {
  while (entry->versions.size() > max_versions_) {
    auto oldest = entry->versions.begin();
    if (oldest->first == entry->active) {
      // The active version is pinned; evict the next-oldest instead.
      auto next = std::next(oldest);
      if (next == entry->versions.end()) return;
      entry->versions.erase(next);
    } else {
      entry->versions.erase(oldest);
    }
  }
}

}  // namespace resest
