#include "src/serving/model_registry.h"

#include <filesystem>
#include <system_error>
#include <utility>

namespace resest {

uint64_t ModelRegistry::Publish(
    const std::string& name,
    std::shared_ptr<const ResourceEstimator> estimator) {
  if (!estimator) return 0;
  std::lock_guard<std::mutex> lock(mu_);
  Entry& entry = entries_[name];
  const uint64_t version = next_version_++;
  entry.versions[version] = std::move(estimator);
  entry.active = version;
  EvictLocked(&entry);
  return version;
}

uint64_t ModelRegistry::PublishSerialized(const std::string& name,
                                          const std::vector<uint8_t>& bytes) {
  auto estimator = std::make_shared<ResourceEstimator>();
  if (!estimator->Deserialize(bytes)) return 0;
  return Publish(name, std::move(estimator));
}

uint64_t ModelRegistry::PublishFromFile(const std::string& name,
                                        const std::string& path) {
  auto estimator = std::make_shared<ResourceEstimator>();
  if (!estimator->LoadFromFile(path)) return 0;
  return Publish(name, std::move(estimator));
}

bool ModelRegistry::SaveActive(const std::string& name,
                               const std::string& dir) const {
  const ModelSnapshot snapshot = Get(name);
  if (!snapshot) return false;
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return false;
  const std::filesystem::path path =
      std::filesystem::path(dir) / (name + ".model");
  return snapshot.estimator->SaveToFile(path.string());
}

ModelSnapshot ModelRegistry::Get(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) return {};
  auto vit = it->second.versions.find(it->second.active);
  if (vit == it->second.versions.end()) return {};
  return {vit->second, vit->first};
}

ModelSnapshot ModelRegistry::GetVersion(const std::string& name,
                                        uint64_t version) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) return {};
  auto vit = it->second.versions.find(version);
  if (vit == it->second.versions.end()) return {};
  return {vit->second, vit->first};
}

bool ModelRegistry::Activate(const std::string& name, uint64_t version) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) return false;
  if (it->second.versions.count(version) == 0) return false;
  it->second.active = version;
  return true;
}

void ModelRegistry::Remove(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.erase(name);
}

std::vector<uint64_t> ModelRegistry::Versions(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<uint64_t> out;
  auto it = entries_.find(name);
  if (it == entries_.end()) return out;
  for (const auto& [v, _] : it->second.versions) out.push_back(v);
  return out;
}

std::vector<std::string> ModelRegistry::Names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  for (const auto& [name, _] : entries_) out.push_back(name);
  return out;
}

void ModelRegistry::EvictLocked(Entry* entry) {
  while (entry->versions.size() > max_versions_) {
    auto oldest = entry->versions.begin();
    if (oldest->first == entry->active) {
      // The active version is pinned; evict the next-oldest instead.
      auto next = std::next(oldest);
      if (next == entry->versions.end()) return;
      entry->versions.erase(next);
    } else {
      entry->versions.erase(oldest);
    }
  }
}

}  // namespace resest
