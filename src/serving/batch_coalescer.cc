#include "src/serving/batch_coalescer.h"

#include <algorithm>
#include <memory>
#include <utility>

namespace resest {
namespace {

// Index of the power-of-two bucket counting `value`: the first i with
// value < 2^i, saturated to the last bucket.
template <size_t N>
size_t Log2Bucket(double value) {
  double bound = 1.0;
  for (size_t i = 0; i + 1 < N; ++i) {
    if (value < bound) return i;
    bound *= 2.0;
  }
  return N - 1;
}

}  // namespace

BatchCoalescer::BatchCoalescer(const EstimationService* service,
                               CoalescerOptions options)
    : service_(service), options_(options) {
  effective_max_rows_ =
      std::min(options_.max_rows, service_->options().max_batch_size);
  enabled_ = options_.window_us > 0 && effective_max_rows_ > 1;
  if (enabled_) {
    flusher_ = std::thread([this] { FlusherMain(); });
  }
}

BatchCoalescer::~BatchCoalescer() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  flusher_cv_.notify_all();
  if (flusher_.joinable()) flusher_.join();
  Flush();
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return inflight_ == 0; });
}

void BatchCoalescer::Submit(std::vector<EstimateRequest> rows,
                            const SubmitOptions& options, BatchCallback done) {
  const size_t n = rows.size();
  // Deadlines stay per-submission; oversized groups can't gain partners; an
  // empty group has nothing to merge. All forward solo with exact options.
  if (!enabled_ || options.has_deadline() || n == 0 ||
      n >= effective_max_rows_) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.passthrough;
    }
    service_->SubmitBatch(std::move(rows), std::move(done), options);
    return;
  }

  const size_t lane = static_cast<size_t>(options.priority);
  std::vector<PendingFlush> to_submit;
  {
    std::unique_lock<std::mutex> lock(mu_);
    Bucket& bucket = buckets_[lane];
    if (!bucket.rows.empty() &&
        (bucket.rows.size() + n > effective_max_rows_ ||
         bucket.tenant != options.tenant)) {
      // No room, or another tenant's rows are pending — tenants never
      // share a merged batch.
      to_submit.push_back(TakeLocked(lane, FlushReason::kFull));
    }
    const bool first = bucket.entries.empty();
    if (first) bucket.tenant = options.tenant;
    Entry entry;
    entry.done = std::move(done);
    entry.offset = bucket.rows.size();
    entry.count = n;
    entry.enqueued = std::chrono::steady_clock::now();
    bucket.entries.push_back(std::move(entry));
    bucket.rows.insert(bucket.rows.end(),
                       std::make_move_iterator(rows.begin()),
                       std::make_move_iterator(rows.end()));
    ++stats_.submissions;
    if (options.priority == TaskPriority::kUrgent) {
      // Urgent never waits: take whatever raced in and go.
      to_submit.push_back(TakeLocked(lane, FlushReason::kUrgent));
    } else if (bucket.rows.size() >= effective_max_rows_) {
      to_submit.push_back(TakeLocked(lane, FlushReason::kFull));
    } else if (first) {
      bucket.deadline = entry.enqueued +
                        std::chrono::microseconds(options_.window_us);
      flusher_cv_.notify_one();
    }
  }
  for (auto& flush : to_submit) SubmitMerged(std::move(flush));
}

void BatchCoalescer::Flush() {
  std::vector<PendingFlush> to_submit;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t lane = 0; lane < buckets_.size(); ++lane) {
      if (!buckets_[lane].entries.empty()) {
        to_submit.push_back(TakeLocked(lane, FlushReason::kDrain));
      }
    }
  }
  for (auto& flush : to_submit) SubmitMerged(std::move(flush));
}

CoalescerStats BatchCoalescer::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

BatchCoalescer::PendingFlush BatchCoalescer::TakeLocked(size_t lane,
                                                        FlushReason reason) {
  Bucket& bucket = buckets_[lane];
  PendingFlush flush;
  flush.rows = std::move(bucket.rows);
  flush.entries = std::move(bucket.entries);
  flush.tenant = std::move(bucket.tenant);
  flush.priority = static_cast<TaskPriority>(lane);
  flush.reason = reason;
  bucket.rows.clear();
  bucket.entries.clear();
  bucket.tenant.clear();
  return flush;
}

void BatchCoalescer::SubmitMerged(PendingFlush flush) {
  if (flush.entries.empty()) return;
  const auto now = std::chrono::steady_clock::now();
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.batches;
    stats_.coalesced_rows += flush.rows.size();
    switch (flush.reason) {
      case FlushReason::kWindow: ++stats_.flush_window; break;
      case FlushReason::kFull: ++stats_.flush_full; break;
      case FlushReason::kUrgent: ++stats_.flush_urgent; break;
      case FlushReason::kDrain: ++stats_.flush_drain; break;
    }
    stats_.batch_rows_histogram[Log2Bucket<kCoalesceRowsBuckets>(
        static_cast<double>(flush.rows.size()))]++;
    for (const Entry& e : flush.entries) {
      const double wait_us =
          std::chrono::duration<double, std::micro>(now - e.enqueued).count();
      stats_.total_wait_us += wait_us;
      stats_.wait_histogram[Log2Bucket<kCoalesceWaitBuckets>(wait_us)]++;
    }
    ++inflight_;
  }

  auto entries =
      std::make_shared<std::vector<Entry>>(std::move(flush.entries));
  SubmitOptions merged_options;
  merged_options.priority = flush.priority;
  merged_options.tenant = std::move(flush.tenant);
  service_->SubmitBatch(
      std::move(flush.rows),
      [this, entries](std::vector<EstimateResult> results) {
        for (Entry& e : *entries) {
          std::vector<EstimateResult> slice(
              std::make_move_iterator(results.begin() + e.offset),
              std::make_move_iterator(results.begin() + e.offset + e.count));
          e.done(std::move(slice));
        }
        {
          std::lock_guard<std::mutex> lock(mu_);
          --inflight_;
          // Notify under the lock: the destructor destroys idle_cv_ as soon
          // as it observes inflight_ == 0, so an unlocked notify could touch
          // a dead condition variable.
          idle_cv_.notify_all();
        }
      },
      merged_options);
}

void BatchCoalescer::FlusherMain() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    // Earliest armed deadline across the buckets, if any.
    bool armed = false;
    std::chrono::steady_clock::time_point next{};
    for (const Bucket& bucket : buckets_) {
      if (bucket.entries.empty()) continue;
      if (!armed || bucket.deadline < next) next = bucket.deadline;
      armed = true;
    }
    if (!armed) {
      flusher_cv_.wait(lock);
      continue;
    }
    if (flusher_cv_.wait_until(lock, next) == std::cv_status::no_timeout) {
      continue;  // New bucket armed or stopping; recompute.
    }
    const auto now = std::chrono::steady_clock::now();
    std::vector<PendingFlush> to_submit;
    for (size_t lane = 0; lane < buckets_.size(); ++lane) {
      if (!buckets_[lane].entries.empty() && buckets_[lane].deadline <= now) {
        to_submit.push_back(TakeLocked(lane, FlushReason::kWindow));
      }
    }
    lock.unlock();
    for (auto& flush : to_submit) SubmitMerged(std::move(flush));
    lock.lock();
  }
}

}  // namespace resest
