// The prediction-serving front end (paper Figure 5): a thread-safe service
// answering single and batched resource-estimate requests from the active
// model in a ModelRegistry, fanning batches out across a ThreadPool.
//
// Results are returned in request order and are bit-identical to calling
// ResourceEstimator::EstimateQuery serially: each request's estimate is an
// independent computation against an immutable estimator snapshot, so the
// floating-point evaluation order within a request never changes. The
// cross-request estimate cache preserves this bit-for-bit — a hit returns
// the exact double a miss would have computed (see estimate_cache.h).
#ifndef RESEST_SERVING_ESTIMATION_SERVICE_H_
#define RESEST_SERVING_ESTIMATION_SERVICE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/serving/estimate_cache.h"
#include "src/serving/model_registry.h"

namespace resest {

/// One estimation request: an annotated plan on a database, for a resource.
/// `plan` and `database` must outlive the call (for Submit* overloads:
/// until the future is ready / the callback has run).
struct EstimateRequest {
  const Plan* plan = nullptr;
  const Database* database = nullptr;
  Resource resource = Resource::kCpu;
};

enum class EstimateStatus {
  kOk = 0,
  kModelNotFound,   ///< No active model under the service's model name.
  kInvalidRequest,  ///< Null plan or database.
  kBatchTooLarge,   ///< Batch exceeds ServiceOptions::max_batch_size.
  kInternalError,   ///< Estimation threw (e.g. allocation failure).
};
const char* EstimateStatusName(EstimateStatus s);

struct EstimateResult {
  EstimateStatus status = EstimateStatus::kOk;
  double value = 0.0;
  uint64_t model_version = 0;  ///< Version that served the request.

  bool ok() const { return status == EstimateStatus::kOk; }
};

struct ServiceOptions {
  std::string model_name = "default";
  size_t max_batch_size = 4096;  ///< Larger batches are rejected whole.
  /// Requests per pool task when fanning out a batch. Small chunks balance
  /// load across workers; large chunks amortize queueing overhead.
  size_t chunk_size = 8;
  /// Cross-request (model_version, op, resource, features) estimate cache.
  bool enable_cache = true;
  size_t cache_capacity = 64 * 1024;  ///< Entries, across all shards.
  size_t cache_shards = 16;
};

/// Aggregate counters; values are monotonically increasing except
/// cache_entries (a point-in-time size).
struct ServiceStats {
  uint64_t requests = 0;          ///< Individual estimates served OK.
  uint64_t batches = 0;           ///< Batch calls accepted.
  uint64_t rejected_batches = 0;  ///< Batch calls rejected as oversized.
  uint64_t errors = 0;            ///< Requests that returned a non-OK status.
  // Operator-estimate cache counters (all zero when the cache is disabled).
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_evictions = 0;
  size_t cache_entries = 0;

  double CacheHitRate() const {
    return resest::CacheHitRate(cache_hits, cache_misses);
  }
};

/// Invoked exactly once per submitted batch, with one result per request in
/// request order. Runs on whichever thread completes the batch's last chunk
/// (a pool worker, or the submitter for degenerate/rejected batches).
/// Callbacks must not throw; an escaping exception is swallowed so batch
/// completion and service shutdown can never be derailed by a callback.
using BatchCallback = std::function<void(std::vector<EstimateResult>)>;
/// Single-request flavor of BatchCallback; same delivery guarantees.
using EstimateCallback = std::function<void(EstimateResult)>;

/// Thread-safe estimation front end. All methods may be called concurrently;
/// the registry and pool must outlive the service. The destructor blocks
/// until every submitted batch has completed (callbacks delivered, futures
/// ready), so in-flight work never touches a dead service.
///
/// Reentrancy: all entry points, including the blocking EstimateBatch, are
/// safe to call from tasks running on the service's own pool. Batches are
/// completion-driven (an atomic chunk countdown, finished by whichever
/// thread drains the last chunk), and a blocking caller helps execute its
/// own chunks instead of parking on workers — so even a saturated or
/// single-threaded pool cannot deadlock a nested call.
class EstimationService {
 public:
  EstimationService(const ModelRegistry* registry, ThreadPool* pool,
                    ServiceOptions options = {});
  ~EstimationService();

  EstimationService(const EstimationService&) = delete;
  EstimationService& operator=(const EstimationService&) = delete;

  /// Estimates one plan on the calling thread (no pool hop).
  EstimateResult Estimate(const EstimateRequest& request) const;

  /// Estimates a batch, fanned out across the pool in chunks; blocks until
  /// every result is ready. The whole batch is served from one model
  /// snapshot, so all results carry the same model_version even if a
  /// publish races the call. Returns one result per request, in request
  /// order. Empty input returns an empty vector; oversized input returns
  /// kBatchTooLarge for every request.
  std::vector<EstimateResult> EstimateBatch(
      const std::vector<EstimateRequest>& requests) const;

  /// Non-blocking batch submission: returns immediately with a future that
  /// becomes ready when the last chunk completes. Same semantics as
  /// EstimateBatch otherwise. The service copies `requests`; the pointed-to
  /// plans and databases must outlive completion.
  std::future<std::vector<EstimateResult>> SubmitBatch(
      std::vector<EstimateRequest> requests) const;

  /// Callback flavor: `done` is invoked exactly once, possibly before this
  /// call returns (degenerate batches complete on the submitting thread).
  void SubmitBatch(std::vector<EstimateRequest> requests,
                   BatchCallback done) const;

  /// Non-blocking single-request submission (one pool hop).
  std::future<EstimateResult> SubmitEstimate(
      const EstimateRequest& request) const;
  void SubmitEstimate(const EstimateRequest& request,
                      EstimateCallback done) const;

  /// Per-pipeline estimates for one plan (scheduling granularity). An empty
  /// vector signals failure (no active model, or null plan/database) —
  /// served plans always have at least one pipeline. Not memoized.
  std::vector<double> EstimatePipelines(const EstimateRequest& request) const;

  ServiceStats stats() const;
  const ServiceOptions& options() const { return options_; }

 private:
  struct BatchState;

  EstimateResult EstimateWith(const ModelSnapshot& snapshot,
                              const EstimateRequest& request) const;
  /// EstimateQuery with the compiled-forest fast path: the plan's operators
  /// that miss the cache (all of them when the cache is disabled) are
  /// grouped by operator type and predicted in one batched sweep per (op,
  /// resource) group, then summed in the canonical traversal order.
  /// Bit-identical to the direct ResourceEstimator::EstimateQuery call:
  /// batched predictions equal their scalar counterparts byte for byte,
  /// cache hits return memoized doubles, and the summation order is
  /// unchanged. Requests are chunk-parallel, so grouping is per plan — the
  /// unit one thread serves — rather than across the whole batch.
  double GroupedEstimateQuery(const ModelSnapshot& snapshot, const Plan& plan,
                              const Database& db, Resource resource) const;
  /// Drops stale cache space when the active model version changes.
  void NoteServedVersion(uint64_t version) const;

  /// Builds a batch state; `results` pre-filled for rejected batches.
  std::shared_ptr<BatchState> MakeBatch(std::vector<EstimateRequest> requests)
      const;
  /// Seeds pool helpers for a runnable batch, or completes a degenerate one
  /// inline. Never blocks.
  void LaunchBatch(const std::shared_ptr<BatchState>& state) const;
  /// Chunk-draining loop shared by pool helpers and blocking callers.
  void RunChunks(const std::shared_ptr<BatchState>& state) const;
  /// Publishes results (promise or callback) and tallies per-request stats.
  /// Called exactly once per batch, by whichever thread drains last.
  void FinishBatch(BatchState* state) const;

  /// In-flight accounting for pool helper tasks (each holds `this`); the
  /// destructor waits for the count to reach zero.
  void AcquireInflight() const;
  void ReleaseInflight() const;

  const ModelRegistry* registry_;
  ThreadPool* pool_;
  ServiceOptions options_;
  mutable std::unique_ptr<EstimateCache> cache_;  ///< Null when disabled.

  mutable std::atomic<uint64_t> requests_{0};
  mutable std::atomic<uint64_t> batches_{0};
  mutable std::atomic<uint64_t> rejected_batches_{0};
  mutable std::atomic<uint64_t> errors_{0};
  mutable std::atomic<uint64_t> served_version_{0};

  mutable std::mutex inflight_mu_;
  mutable std::condition_variable inflight_idle_;
  /// Outstanding pool helper tasks (not batches: one batch holds up to
  /// min(num_chunks, pool threads) slots until its helpers exit).
  mutable size_t inflight_ = 0;
};

}  // namespace resest

#endif  // RESEST_SERVING_ESTIMATION_SERVICE_H_
