// The prediction-serving front end (paper Figure 5): a thread-safe service
// answering single and batched resource-estimate requests from the active
// model in a ModelRegistry, fanning batches out across a ThreadPool.
//
// Results are returned in request order and are bit-identical to calling
// ResourceEstimator::EstimateQuery serially: each request's estimate is an
// independent computation against an immutable estimator snapshot, so the
// floating-point evaluation order within a request never changes.
#ifndef RESEST_SERVING_ESTIMATION_SERVICE_H_
#define RESEST_SERVING_ESTIMATION_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "src/serving/model_registry.h"
#include "src/serving/thread_pool.h"

namespace resest {

/// One estimation request: an annotated plan on a database, for a resource.
/// `plan` and `database` must outlive the call.
struct EstimateRequest {
  const Plan* plan = nullptr;
  const Database* database = nullptr;
  Resource resource = Resource::kCpu;
};

enum class EstimateStatus {
  kOk = 0,
  kModelNotFound,   ///< No active model under the service's model name.
  kInvalidRequest,  ///< Null plan or database.
  kBatchTooLarge,   ///< Batch exceeds ServiceOptions::max_batch_size.
};
const char* EstimateStatusName(EstimateStatus s);

struct EstimateResult {
  EstimateStatus status = EstimateStatus::kOk;
  double value = 0.0;
  uint64_t model_version = 0;  ///< Version that served the request.

  bool ok() const { return status == EstimateStatus::kOk; }
};

struct ServiceOptions {
  std::string model_name = "default";
  size_t max_batch_size = 4096;  ///< Larger batches are rejected whole.
  /// Requests per pool task when fanning out a batch. Small chunks balance
  /// load across workers; large chunks amortize queueing overhead.
  size_t chunk_size = 8;
};

/// Aggregate counters; values are monotonically increasing.
struct ServiceStats {
  uint64_t requests = 0;          ///< Individual estimates served OK.
  uint64_t batches = 0;           ///< Batch calls accepted.
  uint64_t rejected_batches = 0;  ///< Batch calls rejected as oversized.
  uint64_t errors = 0;            ///< Requests that returned a non-OK status.
};

/// Thread-safe estimation front end. All methods may be called concurrently;
/// the registry and pool must outlive the service.
///
/// Reentrancy: EstimateBatch blocks on tasks submitted to the service's own
/// pool, so it must NOT be called from a task running on that pool — with
/// few (or busy) workers the chunks it waits on can only run on the blocked
/// worker itself, deadlocking the pool. Callers composing serving with other
/// pool work (async APIs, parallel training) need a separate pool.
class EstimationService {
 public:
  EstimationService(const ModelRegistry* registry, ThreadPool* pool,
                    ServiceOptions options = {});

  /// Estimates one plan on the calling thread (no pool hop).
  EstimateResult Estimate(const EstimateRequest& request) const;

  /// Estimates a batch, fanned out across the pool in chunks. The whole
  /// batch is served from one model snapshot, so all results carry the same
  /// model_version even if a publish races the call. Returns one result per
  /// request, in request order. Empty input returns an empty vector;
  /// oversized input returns kBatchTooLarge for every request.
  std::vector<EstimateResult> EstimateBatch(
      const std::vector<EstimateRequest>& requests) const;

  /// Per-pipeline estimates for one plan (scheduling granularity). An empty
  /// vector signals failure (no active model, or null plan/database) —
  /// served plans always have at least one pipeline.
  std::vector<double> EstimatePipelines(const EstimateRequest& request) const;

  ServiceStats stats() const;
  const ServiceOptions& options() const { return options_; }

 private:
  EstimateResult EstimateWith(const ModelSnapshot& snapshot,
                              const EstimateRequest& request) const;

  const ModelRegistry* registry_;
  ThreadPool* pool_;
  ServiceOptions options_;

  mutable std::atomic<uint64_t> requests_{0};
  mutable std::atomic<uint64_t> batches_{0};
  mutable std::atomic<uint64_t> rejected_batches_{0};
  mutable std::atomic<uint64_t> errors_{0};
};

}  // namespace resest

#endif  // RESEST_SERVING_ESTIMATION_SERVICE_H_
