// The prediction-serving front end (paper Figure 5): a thread-safe service
// answering single and batched resource-estimate requests from the active
// model in a ModelRegistry, fanning batches out across a ThreadPool.
//
// Results are returned in request order and are bit-identical to calling
// ResourceEstimator::EstimateQuery serially: each request's estimate is an
// independent computation against an immutable estimator snapshot, so the
// floating-point evaluation order within a request never changes. The
// cross-request estimate cache preserves this bit-for-bit — a hit returns
// the exact double a miss would have computed (see estimate_cache.h).
//
// Scheduling: every batch carries a TaskPriority and an optional deadline
// (SubmitOptions). Chunks are fanned out on the pool lane matching the
// batch's priority, and the service's own chunk scheduler serves runnable
// batches highest-priority-first with FIFO order within a priority — so
// small urgent batches (admission probes) overtake queued bulk scans at
// chunk granularity instead of waiting for them to drain. Deadlines are
// best-effort expiry, not cancellation: a chunk that has not started when
// its batch's deadline passes completes with kDeadlineExceeded without
// executing, while a started chunk always runs to completion and returns
// the normal bit-identical value.
#ifndef RESEST_SERVING_ESTIMATION_SERVICE_H_
#define RESEST_SERVING_ESTIMATION_SERVICE_H_

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/arena.h"
#include "src/common/thread_pool.h"
#include "src/serving/estimate_cache.h"
#include "src/serving/estimate_status.h"
#include "src/serving/model_registry.h"

namespace resest {

/// One estimation request. Two payload kinds share the struct (the unified
/// request API — in-process and wire clients submit through the same batch
/// pipeline, with the same caching, scheduling and stats):
///
///  - Plan-based (the in-process default): an annotated plan on a database,
///    for a resource; the estimate sums over the plan's operators. `plan`
///    and `database` must outlive the call (for Submit* flavors: until the
///    future is ready / the callback has run).
///  - Operator-based (what the HTTP front end maps wire requests onto, see
///    src/server/): `has_features` set, one operator type plus an
///    already-extracted feature vector; `plan`/`database` are ignored. The
///    result is bit-identical to
///    ResourceEstimator::EstimateFromFeatures(op, features, resource), and
///    is memoized in the same slot-version-keyed estimate cache as the
///    per-operator terms of plan-based requests.
struct EstimateRequest {
  const Plan* plan = nullptr;
  const Database* database = nullptr;
  Resource resource = Resource::kCpu;
  /// Operator-based payload; only read when has_features is set.
  OpType op = OpType::kTableScan;
  FeatureVector features{};
  bool has_features = false;

  static EstimateRequest ForOperator(OpType op, const FeatureVector& features,
                                     Resource resource) {
    EstimateRequest r;
    r.resource = resource;
    r.op = op;
    r.features = features;
    r.has_features = true;
    return r;
  }
};

struct EstimateResult {
  EstimateStatus status = EstimateStatus::kOk;
  double value = 0.0;
  uint64_t model_version = 0;  ///< Version that served the request.

  bool ok() const { return status == EstimateStatus::kOk; }
};

/// Per-submission scheduling knobs for EstimateBatch/SubmitBatch/
/// SubmitEstimate. Default-constructed options reproduce the pre-lane
/// behavior exactly: kNormal priority, no deadline.
struct SubmitOptions {
  TaskPriority priority = TaskPriority::kNormal;
  /// Best-effort expiry point (steady clock). Chunks not yet started when
  /// the deadline passes return kDeadlineExceeded without executing;
  /// started chunks always finish with their normal value. The default
  /// (time_point::max()) means "no deadline".
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();
  /// Tenant binding (multi-tenant serving, src/serving/tenant_manager.h).
  /// Empty means the default tenant. The TenantManager routes each request
  /// to its tenant's own service/cache/logs; the tag travels with the
  /// submission so shared pipeline stages — the BatchCoalescer in
  /// particular — never merge work across tenants even when one instance
  /// is (mis)shared between them.
  std::string tenant;

  bool has_deadline() const {
    return deadline != std::chrono::steady_clock::time_point::max();
  }
};

struct ServiceOptions {
  std::string model_name = "default";
  size_t max_batch_size = 4096;  ///< Larger batches are rejected whole.
  /// Requests per pool task when fanning out a batch. 0 (the default) means
  /// adaptive: the batch is split into ~3 chunks per pool worker — enough
  /// slack for work stealing and chunk-granular preemption — then clamped
  /// to a per-lane cap (urgent 8, normal 64, bulk 256; see
  /// EffectiveChunkSize). Small chunks balance load and keep urgent
  /// latency low; large chunks amortize the claim/countdown round-trip and
  /// widen the cross-request dedup + compiled-forest sweeps, which is where
  /// the batched throughput comes from (measured: fixed chunk_size=8 left
  /// the batched uncached path ~30% *slower* than serial; adaptive sizing
  /// plus chunk-level grouping turned it into the 3x+ win BENCH_serving.json
  /// tracks). A non-zero value pins every batch's chunk size verbatim.
  size_t chunk_size = 0;
  /// Collapse identical requests inside a batch before fan-out: requests
  /// naming the same (plan, database, resource) — pointer identity — or a
  /// bitwise-equal operator payload are estimated once, and every duplicate
  /// receives a copy of the representative's result when the batch
  /// completes. Estimation is a pure function of (snapshot, request), so a
  /// duplicate could never observe a different double: bit-identity is free.
  /// Optimization sessions re-estimate the same plan many times per batch
  /// (the workload the estimate cache exists for), and dedup gives the
  /// uncached path the same collapse at pointer-compare cost; chunk sizing
  /// applies to the deduplicated work list. Off = every request is
  /// estimated independently (pre-dedup behavior).
  bool dedup_identical_requests = true;
  /// Cross-request (model_version, op, resource, features) estimate cache.
  bool enable_cache = true;
  size_t cache_capacity = 64 * 1024;  ///< Entries, across all shards.
  size_t cache_shards = 16;
  /// Observability/test seam: invoked on the executing thread each time a
  /// chunk is claimed — after the deadline check, before any request runs
  /// (`expired` tells which way it went). Must not call back into the
  /// service. Null (the default) costs nothing.
  std::function<void(TaskPriority priority, bool expired)> chunk_claim_hook;
};

/// Latency histogram: bucket `i` counts batches that completed in under
/// 2^i microseconds (the last bucket also absorbs anything slower). Coarse
/// by design — enough for a p99 trend line, cheap enough for the hot path.
inline constexpr size_t kServiceLatencyBuckets = 20;

/// Per-priority accounting of the batched pipeline (Estimate(), the
/// synchronous single-request path, bypasses the scheduler and is counted
/// only in the aggregate ServiceStats fields). Latency is measured per
/// batch, submission to completion; single-request Submits are one-request
/// batches, so their batch latency is the request latency.
struct PriorityLaneStats {
  uint64_t batches = 0;   ///< Batches finished at this priority.
  uint64_t requests = 0;  ///< Requests completed OK.
  uint64_t expired = 0;   ///< Requests expired by their deadline.
  double total_latency_ms = 0.0;
  double max_latency_ms = 0.0;
  std::array<uint64_t, kServiceLatencyBuckets> latency_histogram{};

  double MeanLatencyMs() const {
    return batches == 0 ? 0.0 : total_latency_ms / static_cast<double>(batches);
  }
  /// Upper bound (ms) of the histogram bucket containing the p-th
  /// percentile batch (p in [0, 1]); 0 when no batch finished yet.
  double ApproxLatencyPercentileMs(double p) const;
};

/// Aggregate counters; values are monotonically increasing except
/// cache_entries (a point-in-time size).
struct ServiceStats {
  uint64_t requests = 0;          ///< Individual estimates served OK.
  uint64_t batches = 0;           ///< Batch calls accepted.
  uint64_t rejected_batches = 0;  ///< Batch calls rejected as oversized.
  uint64_t errors = 0;  ///< Non-OK requests other than deadline expiry.
  uint64_t deadline_expired = 0;  ///< Requests expired by their deadline.
  // Operator-estimate cache counters (all zero when the cache is disabled).
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_evictions = 0;
  size_t cache_entries = 0;
  /// Indexed by TaskPriority; see PriorityLaneStats.
  std::array<PriorityLaneStats, kNumTaskPriorities> priorities{};

  double CacheHitRate() const {
    return resest::CacheHitRate(cache_hits, cache_misses);
  }
  const PriorityLaneStats& ForPriority(TaskPriority p) const {
    return priorities[static_cast<size_t>(p)];
  }
};

/// Invoked exactly once per submitted batch, with one result per request in
/// request order. Runs on whichever thread completes the batch's last chunk
/// (a pool worker, or the submitter for degenerate/rejected batches).
/// Callbacks must not throw; an escaping exception is swallowed so batch
/// completion and service shutdown can never be derailed by a callback.
using BatchCallback = std::function<void(std::vector<EstimateResult>)>;
/// Single-request flavor of BatchCallback; same delivery guarantees.
using EstimateCallback = std::function<void(EstimateResult)>;

/// Thread-safe estimation front end. All methods may be called concurrently;
/// the registry and pool must outlive the service. The destructor blocks
/// until every submitted batch has completed (callbacks delivered, futures
/// ready), so in-flight work never touches a dead service.
///
/// Reentrancy: all entry points, including the blocking EstimateBatch, are
/// safe to call from tasks running on the service's own pool. Batches are
/// completion-driven (an atomic chunk countdown, finished by whichever
/// thread drains the last chunk), and a blocking caller helps execute its
/// own chunks instead of parking on workers — so even a saturated or
/// single-threaded pool cannot deadlock a nested call.
///
/// Priority: pool helper tasks are chunk drainers that serve the
/// highest-priority runnable batch at or above the lane they were seeded
/// on (FIFO within a priority), switching batches at chunk boundaries — a
/// bulk scan in progress delays an urgent probe by at most one chunk per
/// busy worker, while an urgent-lane pool slot never executes bulk work
/// (which would starve other normal-lane pool users). Blocking callers
/// only ever drain their own batch, so a blocking urgent caller never
/// executes bulk work either.
class EstimationService {
 public:
  EstimationService(const ModelRegistry* registry, ThreadPool* pool,
                    ServiceOptions options = {});
  ~EstimationService();

  EstimationService(const EstimationService&) = delete;
  EstimationService& operator=(const EstimationService&) = delete;

  /// Estimates one plan on the calling thread (no pool hop).
  EstimateResult Estimate(const EstimateRequest& request) const;

  /// Estimates a batch, fanned out across the pool in chunks; blocks until
  /// every result is ready. The whole batch is served from one model
  /// snapshot, so all results carry the same model_version even if a
  /// publish races the call. Returns one result per request, in request
  /// order. Empty input returns an empty vector; oversized input returns
  /// kBatchTooLarge for every request; a batch whose deadline has already
  /// passed returns kDeadlineExceeded for every request without executing.
  /// Default submit options reproduce the pre-lane behavior: kNormal
  /// priority, no deadline (same for the Submit* entry points below).
  std::vector<EstimateResult> EstimateBatch(
      const std::vector<EstimateRequest>& requests,
      const SubmitOptions& submit_options = {}) const;

  /// Non-blocking batch submission: returns immediately with a future that
  /// becomes ready when the last chunk completes. Same semantics as
  /// EstimateBatch otherwise. The service copies `requests`; the pointed-to
  /// plans and databases must outlive completion.
  std::future<std::vector<EstimateResult>> SubmitBatch(
      std::vector<EstimateRequest> requests,
      const SubmitOptions& submit_options = {}) const;

  /// Callback flavor: `done` is invoked exactly once, possibly before this
  /// call returns (degenerate batches complete on the submitting thread).
  void SubmitBatch(std::vector<EstimateRequest> requests, BatchCallback done,
                   const SubmitOptions& submit_options = {}) const;

  /// Non-blocking single-request submission (one pool hop).
  std::future<EstimateResult> SubmitEstimate(
      const EstimateRequest& request,
      const SubmitOptions& submit_options = {}) const;
  void SubmitEstimate(const EstimateRequest& request, EstimateCallback done,
                      const SubmitOptions& submit_options = {}) const;

  /// Per-pipeline estimates for one plan (scheduling granularity). An empty
  /// vector signals failure (no active model, or null plan/database) —
  /// served plans always have at least one pipeline. Not memoized.
  std::vector<double> EstimatePipelines(const EstimateRequest& request) const;

  /// Scopes the cache work of an upcoming (or just-performed) hot-swap to a
  /// delta publish: `version` is the newly published registry version and
  /// `ops` the (op, resource) slots it refitted. The refitted slots' now-
  /// dead entries are evicted immediately, and when the service first
  /// serves `version` it skips the full Clear it would otherwise perform —
  /// entries for untouched operators survive the swap and keep hitting
  /// (their keys carry per-slot versions, which a delta leaves unchanged;
  /// see ModelSnapshot::SlotVersion). Correctness never depends on this
  /// call: slot-version keying alone guarantees stale entries cannot hit —
  /// invalidation scope only decides how much live cache a swap preserves.
  /// Call it right after ModelRegistry::PublishDelta, before traffic is
  /// served from the new version (a request racing the call may still
  /// trigger the conservative full Clear).
  void InvalidateOperators(uint64_t version,
                           const std::vector<ModelSlotId>& ops);

  /// The chunk size a batch of `batch_size` requests at `priority` will be
  /// split with: options().chunk_size when non-zero, otherwise the adaptive
  /// policy (~3 chunks per pool worker, clamped to a per-lane cap — urgent
  /// batches take small chunks so they can be preempted and finished
  /// quickly, bulk batches large ones to maximize sweep width). Exposed so
  /// benches and dashboards can report the effective value next to
  /// throughput numbers.
  size_t EffectiveChunkSize(size_t batch_size, TaskPriority priority) const;

  ServiceStats stats() const;
  /// Full cache statistics including the per-shard breakdown (ServiceStats
  /// carries only the totals) — how an operator spots a skewed feature
  /// distribution hammering one shard of the live serving cache. All-zero
  /// with an empty `shards` vector when the cache is disabled.
  EstimateCacheStats cache_stats() const;
  const ServiceOptions& options() const { return options_; }

 private:
  struct BatchState;

  EstimateResult EstimateWith(const ModelSnapshot& snapshot,
                              const EstimateRequest& request) const;
  /// The grouped compiled-forest fast path for `count` consecutive requests
  /// (one scheduler chunk — the unit one thread serves). Every operator of
  /// every request in the chunk that misses the cache (all of them when the
  /// cache is disabled) is grouped by (operator type, resource), deduplicated
  /// bitwise (self-similar plans and repeated probes collapse to one
  /// prediction), and predicted in one batched sweep per group; each
  /// request's estimate is then summed in the canonical pre-order traversal
  /// order. Bit-identical to serial EstimateWith per request: batched
  /// predictions equal their scalar counterparts byte for byte, cache hits
  /// return memoized doubles, and each request's summation order is
  /// unchanged — only *which requests share a sweep* differs, and
  /// predictions are row-independent. All scratch (term values, extracted
  /// features, miss records, dedup tables, packing matrices) comes from
  /// `scratch`; the caller Reset()s it between chunks, so the steady-state
  /// chunk performs zero heap allocations. `snapshot` must be valid.
  void EstimateChunk(const ModelSnapshot& snapshot,
                     const EstimateRequest* requests, size_t count,
                     EstimateResult* results, Arena* scratch) const;
  /// Drops stale cache space when the active model version changes.
  void NoteServedVersion(uint64_t version) const;

  /// Builds a batch state; `results` pre-filled for degenerate batches
  /// (empty, oversized, expired-at-submit, no model).
  std::shared_ptr<BatchState> MakeBatch(std::vector<EstimateRequest> requests,
                                        const SubmitOptions& submit_options)
      const;
  /// Registers a runnable batch with the chunk scheduler and seeds pool
  /// helpers on its priority lane, or completes a degenerate batch inline.
  /// Never blocks.
  void LaunchBatch(const std::shared_ptr<BatchState>& state) const;
  /// Claims and runs one chunk of `state` (expiring it instead when the
  /// batch deadline has passed); finishes the batch when it was the last.
  /// Returns false once the batch's chunk cursor is exhausted.
  bool RunOneChunk(const std::shared_ptr<BatchState>& state) const;
  /// Drains all remaining chunks of one batch; used by blocking callers
  /// (who must only ever execute their own batch) and shutdown fallback.
  void RunChunks(const std::shared_ptr<BatchState>& state) const;
  /// Pool helper body: repeatedly serve the highest-priority runnable
  /// batch at priority >= lane_floor, one chunk at a time, until none has
  /// unclaimed chunks. The floor is the pool lane the helper was seeded
  /// on: a helper occupying an urgent pool slot must not drain bulk work
  /// there (it would starve other subsystems' normal-lane pool tasks);
  /// lower-lane helpers serve higher-priority batches freely — that is the
  /// chunk-granular preemption.
  void HelperLoop(TaskPriority lane_floor) const;
  /// Highest-priority batch with unclaimed chunks at priority >=
  /// lane_floor (FIFO within a priority), or null. Pops exhausted batches
  /// as it scans.
  std::shared_ptr<BatchState> PickRunnable(TaskPriority lane_floor) const;
  /// True when some runnable batch outranks `priority`; a cheap relaxed
  /// read so helpers stay on their current batch lock-free until there is
  /// a reason to switch.
  bool HigherPriorityRunnable(TaskPriority priority) const;
  /// Removes a completed batch from its scheduler lane.
  void UnscheduleBatch(const BatchState* state) const;
  /// Publishes results (promise or callback) and tallies per-request and
  /// per-priority stats. Called exactly once per batch, by whichever
  /// thread drains last.
  void FinishBatch(BatchState* state) const;

  /// In-flight accounting for pool helper tasks (each holds `this`); the
  /// destructor waits for the count to reach zero.
  void AcquireInflight() const;
  void ReleaseInflight() const;

  const ModelRegistry* registry_;
  ThreadPool* pool_;
  ServiceOptions options_;
  mutable std::unique_ptr<EstimateCache> cache_;  ///< Null when disabled.

  mutable std::atomic<uint64_t> requests_{0};
  mutable std::atomic<uint64_t> batches_{0};
  mutable std::atomic<uint64_t> rejected_batches_{0};
  mutable std::atomic<uint64_t> errors_{0};
  mutable std::atomic<uint64_t> deadline_expired_{0};
  mutable std::atomic<uint64_t> served_version_{0};

  /// Versions whose swap was scoped by InvalidateOperators: serving one of
  /// these for the first time skips the full cache Clear (the delta's dead
  /// entries were already evicted). Bounded; stale marks are pruned as the
  /// served version advances past them.
  mutable std::mutex scoped_mu_;
  mutable std::vector<uint64_t> scoped_versions_;

  /// Per-priority accounting, aggregated into ServiceStats::priorities.
  struct LaneCounters {
    std::atomic<uint64_t> batches{0};
    std::atomic<uint64_t> requests{0};
    std::atomic<uint64_t> expired{0};
    std::atomic<uint64_t> latency_total_us{0};
    std::atomic<uint64_t> latency_max_us{0};
    std::array<std::atomic<uint64_t>, kServiceLatencyBuckets> histogram{};
  };
  mutable std::array<LaneCounters, kNumTaskPriorities> lane_counters_;

  /// Chunk scheduler: runnable (non-degenerate, unexhausted) batches per
  /// priority, FIFO within a lane. Helpers always serve the front of the
  /// lowest-indexed non-empty lane at or above their floor.
  mutable std::mutex sched_mu_;
  mutable std::array<std::deque<std::shared_ptr<BatchState>>,
                     kNumTaskPriorities>
      runnable_;
  /// Mirror of each lane's deque size, readable without sched_mu_ — lets a
  /// helper poll "did higher-priority work arrive?" per chunk without
  /// serializing all chunk claims on the scheduler mutex.
  mutable std::array<std::atomic<size_t>, kNumTaskPriorities>
      runnable_count_{};

  mutable std::mutex inflight_mu_;
  mutable std::condition_variable inflight_idle_;
  /// Outstanding pool helper tasks (not batches: one batch holds up to
  /// min(num_chunks, pool threads) slots until its helpers exit).
  mutable size_t inflight_ = 0;
};

}  // namespace resest

#endif  // RESEST_SERVING_ESTIMATION_SERVICE_H_
