#include "src/serving/estimation_service.h"

#include <algorithm>
#include <array>
#include <utility>

#include "src/core/estimator.h"

namespace resest {
namespace {

using Clock = std::chrono::steady_clock;

uint64_t ElapsedMicros(Clock::time_point start) {
  const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
      Clock::now() - start);
  return us.count() < 0 ? 0 : static_cast<uint64_t>(us.count());
}

/// Histogram bucket for a latency: smallest i with latency_us < 2^i,
/// clamped to the last (open-ended) bucket.
size_t LatencyBucket(uint64_t latency_us) {
  size_t bucket = 0;
  while (bucket + 1 < kServiceLatencyBuckets &&
         latency_us >= (uint64_t{1} << bucket)) {
    ++bucket;
  }
  return bucket;
}

}  // namespace

double PriorityLaneStats::ApproxLatencyPercentileMs(double p) const {
  uint64_t total = 0;
  for (uint64_t count : latency_histogram) total += count;
  if (total == 0) return 0.0;
  p = std::min(1.0, std::max(0.0, p));
  const uint64_t target = std::max<uint64_t>(
      1, static_cast<uint64_t>(p * static_cast<double>(total) + 0.5));
  uint64_t seen = 0;
  for (size_t i = 0; i < kServiceLatencyBuckets; ++i) {
    seen += latency_histogram[i];
    if (seen >= target) {
      return static_cast<double>(uint64_t{1} << i) / 1000.0;
    }
  }
  return static_cast<double>(uint64_t{1} << (kServiceLatencyBuckets - 1)) /
         1000.0;
}

/// Shared state of one submitted batch. Owned jointly (shared_ptr) by the
/// scheduler lanes, the pool helper tasks and, for blocking calls, the
/// submitting frame; the last chunk's owner completes it. Requests are
/// copied in so the state is self-contained after the submitting call
/// returns.
struct EstimationService::BatchState {
  std::vector<EstimateRequest> requests;
  std::vector<EstimateResult> results;
  ModelSnapshot snapshot;
  size_t chunk_size = 1;
  size_t num_chunks = 0;
  /// Completed at creation (empty, rejected, expired, or no model): no
  /// chunks run.
  bool degenerate = false;
  /// Passed the admission checks (non-empty, within max_batch_size); only
  /// admitted batches count toward per-priority lane stats.
  bool admitted = false;

  TaskPriority priority = TaskPriority::kNormal;
  bool has_deadline = false;
  Clock::time_point deadline = Clock::time_point::max();
  Clock::time_point start;  ///< Submission time, for lane latency stats.

  std::atomic<size_t> next_chunk{0};   ///< Work-stealing chunk cursor.
  std::atomic<size_t> chunks_left{0};  ///< Countdown to completion.

  std::promise<std::vector<EstimateResult>> promise;
  bool has_promise = false;
  BatchCallback callback;
};

EstimationService::EstimationService(const ModelRegistry* registry,
                                     ThreadPool* pool, ServiceOptions options)
    : registry_(registry), pool_(pool), options_(std::move(options)) {
  if (options_.chunk_size == 0) options_.chunk_size = 1;
  if (options_.enable_cache) {
    EstimateCacheOptions cache_options;
    cache_options.capacity = options_.cache_capacity;
    cache_options.shards = options_.cache_shards;
    cache_ = std::make_unique<EstimateCache>(cache_options);
  }
}

EstimationService::~EstimationService() {
  // Every helper task holds `this`; wait for all of them so no in-flight
  // batch outlives the service (futures are ready and callbacks delivered
  // strictly before a task releases its in-flight slot).
  std::unique_lock<std::mutex> lock(inflight_mu_);
  inflight_idle_.wait(lock, [this]() { return inflight_ == 0; });
}

void EstimationService::AcquireInflight() const {
  std::lock_guard<std::mutex> lock(inflight_mu_);
  ++inflight_;
}

void EstimationService::ReleaseInflight() const {
  std::lock_guard<std::mutex> lock(inflight_mu_);
  if (--inflight_ == 0) inflight_idle_.notify_all();
}

void EstimationService::NoteServedVersion(uint64_t version) const {
  // Slot-version-keyed entries from an older model can never be hit again
  // after a hot-swap; clearing on the first request served from the new
  // version reclaims their space at once instead of waiting for LRU
  // pressure. Only a version *increase* acts: an in-flight batch still
  // serving the old snapshot (or a rollback via Activate) must not wipe
  // fresh entries — ping-ponging Clears would effectively disable the
  // cache, while stale entries are merely capacity pressure the LRU bound
  // already handles. A swap registered as a delta (InvalidateOperators)
  // skips the Clear entirely: the only dead entries it created — the
  // refitted slots' — were evicted at registration, and every other
  // operator's entries are still live under their unchanged slot versions.
  uint64_t prev = served_version_.load(std::memory_order_relaxed);
  while (prev < version) {
    if (served_version_.compare_exchange_weak(prev, version,
                                              std::memory_order_relaxed)) {
      if (prev == 0) return;
      bool scoped = false;
      {
        std::lock_guard<std::mutex> lock(scoped_mu_);
        for (auto it = scoped_versions_.begin();
             it != scoped_versions_.end();) {
          if (*it == version) scoped = true;
          it = *it <= version ? scoped_versions_.erase(it) : std::next(it);
        }
      }
      if (!scoped) cache_->Clear();
      return;
    }
  }
}

void EstimationService::InvalidateOperators(
    uint64_t version, const std::vector<ModelSlotId>& ops) {
  if (cache_ == nullptr) return;
  cache_->EvictOperators(ops);
  std::lock_guard<std::mutex> lock(scoped_mu_);
  if (version <= served_version_.load(std::memory_order_relaxed)) {
    // The swap was already observed (a request raced this call and took the
    // conservative full Clear); a stale mark would wrongly scope some
    // *future* unrelated swap to this delta.
    return;
  }
  scoped_versions_.push_back(version);
  if (scoped_versions_.size() > 8) {
    scoped_versions_.erase(scoped_versions_.begin());
  }
}

double EstimationService::GroupedEstimateQuery(const ModelSnapshot& snapshot,
                                               const Plan& plan,
                                               const Database& db,
                                               Resource resource) const {
  // Same pre-order traversal and summation order as EstimateQuery. Each
  // operator resolves to one double in `values`: a fallback constant, a
  // cache hit (the exact double the estimator produced on the original
  // miss), or — for misses — a slot filled by a batched compiled-forest
  // sweep over all of the plan's missed operators of that type. Batched
  // predictions are bit-identical to scalar ones, so the ordered sum equals
  // the direct EstimateQuery byte for byte.
  const ResourceEstimator& estimator = *snapshot.estimator;
  const FeatureMode mode = estimator.mode();
  std::vector<double> values;
  struct Miss {
    size_t slot = 0;
    EstimateCache::Key key;
  };
  std::array<std::vector<Miss>, kNumOpTypes> misses;
  VisitPlanOperators(plan, [&](const PlanNode& node, const PlanNode* parent) {
    // Operators without a trained model set estimate to a feature-free
    // constant (the fallback mean) — hashing, caching, or batching them
    // would only cost time, so take the constant directly, exactly as the
    // uncached EstimateOperator does.
    if (estimator.ModelsFor(node.type, resource) == nullptr) {
      values.push_back(estimator.EstimateFromFeatures(node.type, {}, resource));
      return;
    }
    Miss miss;
    // Keyed by the *slot* version — the version at which this (op, resource)
    // model last changed — not the estimator version: a delta publish leaves
    // untouched slots' versions (and thus their live cache entries) intact,
    // while refitted slots miss exactly once and repopulate under the new
    // version. For full publishes every slot version equals the snapshot
    // version, reproducing the old behavior exactly.
    miss.key.model_version = snapshot.SlotVersion(node.type, resource);
    miss.key.op = node.type;
    miss.key.resource = resource;
    miss.key.features = ExtractFeatures(node, parent, db, mode);
    double value = 0.0;
    if (cache_ != nullptr && cache_->Lookup(miss.key, &value)) {
      values.push_back(value);
      return;
    }
    miss.slot = values.size();
    values.push_back(0.0);
    misses[static_cast<size_t>(node.type)].push_back(std::move(miss));
  });

  std::vector<const FeatureVector*> rows;
  std::vector<size_t> row_of;         // miss index -> unique batch row
  std::vector<size_t> defining_miss;  // unique batch row -> first miss index
  std::vector<double> batch_out;
  for (int op = 0; op < kNumOpTypes; ++op) {
    const std::vector<Miss>& group = misses[static_cast<size_t>(op)];
    if (group.empty()) continue;
    // Deduplicate bitwise-identical feature vectors (self-similar plans
    // repeat operators): each distinct key is predicted and inserted once,
    // matching the per-operator lookup path's cost on duplicates. Groups
    // are plan-sized, so the quadratic scan stays trivial.
    rows.clear();
    defining_miss.clear();
    row_of.resize(group.size());
    for (size_t i = 0; i < group.size(); ++i) {
      size_t u = 0;
      while (u < rows.size() &&
             !FeatureVectorHashEqual(*rows[u], group[i].key.features)) {
        ++u;
      }
      if (u == rows.size()) {
        rows.push_back(&group[i].key.features);
        defining_miss.push_back(i);
      }
      row_of[i] = u;
    }
    batch_out.resize(rows.size());
    estimator.EstimateBatchFromFeatures(static_cast<OpType>(op), rows.data(),
                                        rows.size(), resource,
                                        batch_out.data());
    for (size_t i = 0; i < group.size(); ++i) {
      values[group[i].slot] = batch_out[row_of[i]];
    }
    if (cache_ != nullptr) {
      for (size_t u = 0; u < rows.size(); ++u) {
        cache_->Insert(group[defining_miss[u]].key, batch_out[u]);
      }
    }
  }

  double total = 0.0;
  for (double v : values) total += v;
  return total;
}

EstimateResult EstimationService::EstimateWith(
    const ModelSnapshot& snapshot, const EstimateRequest& request) const {
  EstimateResult result;
  if (!snapshot) {
    result.status = EstimateStatus::kModelNotFound;
    return result;
  }
  result.model_version = snapshot.version;
  if (request.has_features) {
    // Operator-based payload: one (op, features, resource) estimate, memoized
    // under the same slot-version key the plan path uses for that operator —
    // a wire client and an in-process plan hitting the same operator share
    // cache entries, and both return the exact double
    // EstimateFromFeatures(op, features, resource) computes.
    if (cache_) NoteServedVersion(snapshot.version);
    const ResourceEstimator& estimator = *snapshot.estimator;
    if (cache_ == nullptr ||
        estimator.ModelsFor(request.op, request.resource) == nullptr) {
      // Untrained slots estimate to a feature-free constant; caching them
      // would only spend entries (mirrors GroupedEstimateQuery).
      result.value = estimator.EstimateFromFeatures(request.op,
                                                    request.features,
                                                    request.resource);
      return result;
    }
    EstimateCache::Key key;
    key.model_version = snapshot.SlotVersion(request.op, request.resource);
    key.op = request.op;
    key.resource = request.resource;
    key.features = request.features;
    if (cache_->Lookup(key, &result.value)) return result;
    result.value = estimator.EstimateFromFeatures(request.op, request.features,
                                                  request.resource);
    cache_->Insert(key, result.value);
    return result;
  }
  if (request.plan == nullptr || request.database == nullptr) {
    result.status = EstimateStatus::kInvalidRequest;
    return result;
  }
  if (cache_) NoteServedVersion(snapshot.version);
  result.value = GroupedEstimateQuery(snapshot, *request.plan,
                                      *request.database, request.resource);
  return result;
}

EstimateResult EstimationService::Estimate(
    const EstimateRequest& request) const {
  const EstimateResult result =
      EstimateWith(registry_->Get(options_.model_name), request);
  if (result.ok()) {
    requests_.fetch_add(1, std::memory_order_relaxed);
  } else {
    errors_.fetch_add(1, std::memory_order_relaxed);
  }
  return result;
}

std::shared_ptr<EstimationService::BatchState> EstimationService::MakeBatch(
    std::vector<EstimateRequest> requests,
    const SubmitOptions& submit_options) const {
  auto state = std::make_shared<BatchState>();
  state->requests = std::move(requests);
  state->priority = submit_options.priority;
  state->has_deadline = submit_options.has_deadline();
  state->deadline = submit_options.deadline;
  state->start = Clock::now();
  const size_t n = state->requests.size();
  state->results.resize(n);
  if (n == 0) {
    state->degenerate = true;
    return state;
  }
  if (n > options_.max_batch_size) {
    rejected_batches_.fetch_add(1, std::memory_order_relaxed);
    for (auto& r : state->results) r.status = EstimateStatus::kBatchTooLarge;
    state->degenerate = true;
    return state;
  }
  batches_.fetch_add(1, std::memory_order_relaxed);
  state->admitted = true;

  // One snapshot for the whole batch: a concurrent Publish never splits a
  // batch across model versions. Fetched before the expiry check (a
  // registry read, not execution) so expired-at-submit results carry the
  // same model_version a per-chunk expiry would.
  state->snapshot = registry_->Get(options_.model_name);

  // A batch submitted past its own deadline expires whole — expiry wins
  // over a missing model: nothing executes, no cache traffic.
  if (state->has_deadline && state->start > state->deadline) {
    for (auto& r : state->results) {
      r.status = EstimateStatus::kDeadlineExceeded;
      r.model_version = state->snapshot.version;
    }
    state->degenerate = true;
    return state;
  }

  if (!state->snapshot) {
    for (auto& r : state->results) r.status = EstimateStatus::kModelNotFound;
    state->degenerate = true;
    return state;
  }

  state->chunk_size = options_.chunk_size;
  state->num_chunks = (n + state->chunk_size - 1) / state->chunk_size;
  state->chunks_left.store(state->num_chunks, std::memory_order_relaxed);
  return state;
}

bool EstimationService::RunOneChunk(
    const std::shared_ptr<BatchState>& state) const {
  BatchState& batch = *state;
  const size_t chunk = batch.next_chunk.fetch_add(1, std::memory_order_relaxed);
  if (chunk >= batch.num_chunks) return false;
  const size_t begin = chunk * batch.chunk_size;
  const size_t end = std::min(begin + batch.chunk_size, batch.requests.size());
  // Best-effort deadline: decided once, when the chunk starts. A chunk that
  // begins before the deadline always runs to completion (results stay
  // bit-identical for every request that completes); one that would begin
  // after it expires without executing.
  const bool expired = batch.has_deadline && Clock::now() > batch.deadline;
  if (options_.chunk_claim_hook) {
    options_.chunk_claim_hook(batch.priority, expired);
  }
  for (size_t i = begin; i < end; ++i) {
    if (expired) {
      batch.results[i] = EstimateResult{};
      batch.results[i].status = EstimateStatus::kDeadlineExceeded;
      batch.results[i].model_version = batch.snapshot.version;
      continue;
    }
    try {
      batch.results[i] = EstimateWith(batch.snapshot, batch.requests[i]);
    } catch (...) {
      // Estimation only throws on resource exhaustion (allocation).
      // Surface it per-request — the promise and callback flavors then
      // report failures identically, and the countdown still reaches
      // zero so completion is delivered exactly once.
      batch.results[i] = EstimateResult{};
      batch.results[i].status = EstimateStatus::kInternalError;
      batch.results[i].model_version = batch.snapshot.version;
    }
  }
  // acq_rel: the final decrement observes every other chunk's writes, so
  // the finisher publishes fully-written results.
  if (batch.chunks_left.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    UnscheduleBatch(&batch);
    FinishBatch(&batch);
  }
  return true;
}

void EstimationService::RunChunks(
    const std::shared_ptr<BatchState>& state) const {
  while (RunOneChunk(state)) {
  }
}

std::shared_ptr<EstimationService::BatchState>
EstimationService::PickRunnable(TaskPriority lane_floor) const {
  std::lock_guard<std::mutex> lock(sched_mu_);
  for (size_t p = 0; p <= static_cast<size_t>(lane_floor); ++p) {
    auto& lane = runnable_[p];
    while (!lane.empty()) {
      std::shared_ptr<BatchState>& front = lane.front();
      if (front->next_chunk.load(std::memory_order_relaxed) >=
          front->num_chunks) {
        // Fully claimed (possibly still executing elsewhere; completion is
        // the chunk countdown's job, not the scheduler's).
        lane.pop_front();
        runnable_count_[p].fetch_sub(1, std::memory_order_relaxed);
        continue;
      }
      return front;
    }
  }
  return nullptr;
}

bool EstimationService::HigherPriorityRunnable(TaskPriority priority) const {
  for (size_t p = 0; p < static_cast<size_t>(priority); ++p) {
    if (runnable_count_[p].load(std::memory_order_relaxed) > 0) return true;
  }
  return false;
}

void EstimationService::UnscheduleBatch(const BatchState* state) const {
  std::lock_guard<std::mutex> lock(sched_mu_);
  const size_t p = static_cast<size_t>(state->priority);
  auto& lane = runnable_[p];
  for (auto it = lane.begin(); it != lane.end(); ++it) {
    if (it->get() == state) {
      lane.erase(it);
      runnable_count_[p].fetch_sub(1, std::memory_order_relaxed);
      return;
    }
  }
}

void EstimationService::HelperLoop(TaskPriority lane_floor) const {
  // Serve the highest-priority runnable batch at or above the helper's
  // seed lane, switching batches only when the current one is exhausted or
  // higher-priority work arrives (a cheap atomic poll) — the steady state
  // claims chunks with a single fetch_add, no scheduler lock. A false
  // RunOneChunk (the pick raced the batch's last claim) just re-picks; the
  // exhausted batch is popped by the next PickRunnable scan. Newly
  // submitted urgent batches preempt in-progress lower-priority work at
  // chunk granularity without cancelling anything.
  std::shared_ptr<BatchState> batch = PickRunnable(lane_floor);
  while (batch != nullptr) {
    if (!RunOneChunk(batch) || HigherPriorityRunnable(batch->priority)) {
      batch = PickRunnable(lane_floor);
    }
  }
}

void EstimationService::FinishBatch(BatchState* state) const {
  uint64_t ok = 0, expired = 0, failed = 0;
  for (const auto& r : state->results) {
    if (r.ok()) {
      ++ok;
    } else if (r.status == EstimateStatus::kDeadlineExceeded) {
      ++expired;
    } else {
      ++failed;
    }
  }
  requests_.fetch_add(ok, std::memory_order_relaxed);
  errors_.fetch_add(failed, std::memory_order_relaxed);
  deadline_expired_.fetch_add(expired, std::memory_order_relaxed);
  if (state->admitted) {
    LaneCounters& lane = lane_counters_[static_cast<size_t>(state->priority)];
    lane.batches.fetch_add(1, std::memory_order_relaxed);
    lane.requests.fetch_add(ok, std::memory_order_relaxed);
    lane.expired.fetch_add(expired, std::memory_order_relaxed);
    const uint64_t us = ElapsedMicros(state->start);
    lane.latency_total_us.fetch_add(us, std::memory_order_relaxed);
    uint64_t prev_max = lane.latency_max_us.load(std::memory_order_relaxed);
    while (prev_max < us &&
           !lane.latency_max_us.compare_exchange_weak(
               prev_max, us, std::memory_order_relaxed)) {
    }
    lane.histogram[LatencyBucket(us)].fetch_add(1, std::memory_order_relaxed);
  }
  if (state->has_promise) {
    state->promise.set_value(std::move(state->results));
  } else if (state->callback) {
    try {
      state->callback(std::move(state->results));
    } catch (...) {
      // Swallow: a throwing callback must not prevent the helper task from
      // releasing its in-flight slot (the destructor waits on that count).
    }
  }
}

void EstimationService::LaunchBatch(
    const std::shared_ptr<BatchState>& state) const {
  if (state->degenerate) {
    FinishBatch(state.get());
    return;
  }
  {
    std::lock_guard<std::mutex> lock(sched_mu_);
    const size_t p = static_cast<size_t>(state->priority);
    runnable_[p].push_back(state);
    runnable_count_[p].fetch_add(1, std::memory_order_relaxed);
  }
  // Seed one helper per available worker (never more than there are
  // chunks) on the batch's pool lane; helpers steal chunks — highest
  // priority first, floored at their seed lane — until no such batch is
  // runnable, so a stalled or saturated pool only reduces parallelism,
  // never correctness: every batch's completion rests on its own helpers
  // (and, for blocking calls, its submitter), never on higher-lane ones.
  const size_t helpers = std::min(state->num_chunks, pool_->num_threads());
  const TaskPriority lane_floor = state->priority;
  for (size_t i = 0; i < helpers; ++i) {
    AcquireInflight();
    try {
      pool_->Submit(lane_floor, [this, lane_floor]() {
        HelperLoop(lane_floor);
        ReleaseInflight();
      });
    } catch (...) {
      // Pool shutting down: run this batch's remaining chunks on this
      // thread so the batch still completes (the pool contract is that the
      // service outlives it, but degrade gracefully rather than dropping
      // work).
      ReleaseInflight();
      RunChunks(state);
      return;
    }
  }
}

std::vector<EstimateResult> EstimationService::EstimateBatch(
    const std::vector<EstimateRequest>& requests,
    const SubmitOptions& submit_options) const {
  auto state = MakeBatch(requests, submit_options);
  state->has_promise = true;
  auto future = state->promise.get_future();
  LaunchBatch(state);
  // Help drain our own chunks — and only our own: a caller running on a
  // pool worker finishes the whole batch itself if no other worker is free
  // (which is what makes nested blocking calls deadlock-free), and a
  // blocking urgent caller never burns its thread on queued bulk work.
  if (!state->degenerate) RunChunks(state);
  return future.get();
}

std::future<std::vector<EstimateResult>> EstimationService::SubmitBatch(
    std::vector<EstimateRequest> requests,
    const SubmitOptions& submit_options) const {
  auto state = MakeBatch(std::move(requests), submit_options);
  state->has_promise = true;
  auto future = state->promise.get_future();
  LaunchBatch(state);
  return future;
}

void EstimationService::SubmitBatch(std::vector<EstimateRequest> requests,
                                    BatchCallback done,
                                    const SubmitOptions& submit_options) const {
  auto state = MakeBatch(std::move(requests), submit_options);
  state->callback = std::move(done);
  LaunchBatch(state);
}

std::future<EstimateResult> EstimationService::SubmitEstimate(
    const EstimateRequest& request,
    const SubmitOptions& submit_options) const {
  auto result = std::make_shared<std::promise<EstimateResult>>();
  std::future<EstimateResult> future = result->get_future();
  SubmitBatch(std::vector<EstimateRequest>{request},
              [result](std::vector<EstimateResult> results) {
                result->set_value(std::move(results.front()));
              },
              submit_options);
  return future;
}

void EstimationService::SubmitEstimate(const EstimateRequest& request,
                                       EstimateCallback done,
                                       const SubmitOptions& submit_options)
    const {
  SubmitBatch(std::vector<EstimateRequest>{request},
              [done = std::move(done)](std::vector<EstimateResult> results) {
                done(std::move(results.front()));
              },
              submit_options);
}

std::vector<double> EstimationService::EstimatePipelines(
    const EstimateRequest& request) const {
  const ModelSnapshot snapshot = registry_->Get(options_.model_name);
  if (!snapshot || request.plan == nullptr || request.database == nullptr) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    return {};
  }
  requests_.fetch_add(1, std::memory_order_relaxed);
  return snapshot.estimator->EstimatePipelines(*request.plan, *request.database,
                                               request.resource);
}

ServiceStats EstimationService::stats() const {
  ServiceStats s;
  s.requests = requests_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.rejected_batches = rejected_batches_.load(std::memory_order_relaxed);
  s.errors = errors_.load(std::memory_order_relaxed);
  s.deadline_expired = deadline_expired_.load(std::memory_order_relaxed);
  for (size_t p = 0; p < kNumTaskPriorities; ++p) {
    const LaneCounters& src = lane_counters_[p];
    PriorityLaneStats& dst = s.priorities[p];
    dst.batches = src.batches.load(std::memory_order_relaxed);
    dst.requests = src.requests.load(std::memory_order_relaxed);
    dst.expired = src.expired.load(std::memory_order_relaxed);
    dst.total_latency_ms =
        static_cast<double>(
            src.latency_total_us.load(std::memory_order_relaxed)) /
        1000.0;
    dst.max_latency_ms =
        static_cast<double>(
            src.latency_max_us.load(std::memory_order_relaxed)) /
        1000.0;
    for (size_t b = 0; b < kServiceLatencyBuckets; ++b) {
      dst.latency_histogram[b] =
          src.histogram[b].load(std::memory_order_relaxed);
    }
  }
  if (cache_) {
    const EstimateCacheStats cache_stats = cache_->stats();
    s.cache_hits = cache_stats.hits;
    s.cache_misses = cache_stats.misses;
    s.cache_evictions = cache_stats.evictions;
    s.cache_entries = cache_stats.entries;
  }
  return s;
}

EstimateCacheStats EstimationService::cache_stats() const {
  return cache_ ? cache_->stats() : EstimateCacheStats{};
}

}  // namespace resest
