#include "src/serving/estimation_service.h"

#include <algorithm>
#include <array>
#include <cstring>
#include <thread>
#include <utility>

#include "src/core/estimator.h"

namespace resest {
namespace {

using Clock = std::chrono::steady_clock;

uint64_t ElapsedMicros(Clock::time_point start) {
  const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
      Clock::now() - start);
  return us.count() < 0 ? 0 : static_cast<uint64_t>(us.count());
}

/// Per-thread chunk scratch (see Arena's lifetime rules): every thread that
/// executes chunks — pool workers, blocking submitters draining their own
/// batch, Estimate() callers — gets one warmed arena, Reset() at the start
/// of each chunk. After warm-up, chunk execution never touches the heap.
Arena& ChunkArena() {
  thread_local Arena arena(256 * 1024);
  return arena;
}

/// Histogram bucket for a latency: smallest i with latency_us < 2^i,
/// clamped to the last (open-ended) bucket.
size_t LatencyBucket(uint64_t latency_us) {
  size_t bucket = 0;
  while (bucket + 1 < kServiceLatencyBuckets &&
         latency_us >= (uint64_t{1} << bucket)) {
    ++bucket;
  }
  return bucket;
}

}  // namespace

double PriorityLaneStats::ApproxLatencyPercentileMs(double p) const {
  uint64_t total = 0;
  for (uint64_t count : latency_histogram) total += count;
  if (total == 0) return 0.0;
  p = std::min(1.0, std::max(0.0, p));
  const uint64_t target = std::max<uint64_t>(
      1, static_cast<uint64_t>(p * static_cast<double>(total) + 0.5));
  uint64_t seen = 0;
  for (size_t i = 0; i < kServiceLatencyBuckets; ++i) {
    seen += latency_histogram[i];
    if (seen >= target) {
      return static_cast<double>(uint64_t{1} << i) / 1000.0;
    }
  }
  return static_cast<double>(uint64_t{1} << (kServiceLatencyBuckets - 1)) /
         1000.0;
}

/// Shared state of one submitted batch. Owned jointly (shared_ptr) by the
/// scheduler lanes, the pool helper tasks and, for blocking calls, the
/// submitting frame; the last chunk's owner completes it. Requests are
/// copied in so the state is self-contained after the submitting call
/// returns.
struct EstimationService::BatchState {
  std::vector<EstimateRequest> requests;
  std::vector<EstimateResult> results;
  ModelSnapshot snapshot;
  /// Batch-level identity dedup (ServiceOptions::dedup_identical_requests):
  /// when the batch contains duplicates, `reps` lists the first occurrence
  /// of each distinct request in request order and chunks cover `reps`
  /// instead of `requests`; dup_of[i] is the representative whose result
  /// request i copies in FinishBatch (dup_of[i] <= i, so the source is
  /// final by then). Both stay empty when every request is distinct —
  /// chunks then index `requests` directly, with no indirection cost.
  std::vector<uint32_t> reps;
  std::vector<uint32_t> dup_of;
  /// Chunked work items: reps.size() under dedup, requests.size() otherwise.
  size_t work_items = 0;
  size_t chunk_size = 1;
  size_t num_chunks = 0;
  /// Completed at creation (empty, rejected, expired, or no model): no
  /// chunks run.
  bool degenerate = false;
  /// Passed the admission checks (non-empty, within max_batch_size); only
  /// admitted batches count toward per-priority lane stats.
  bool admitted = false;

  TaskPriority priority = TaskPriority::kNormal;
  bool has_deadline = false;
  Clock::time_point deadline = Clock::time_point::max();
  Clock::time_point start;  ///< Submission time, for lane latency stats.

  std::atomic<size_t> next_chunk{0};   ///< Work-stealing chunk cursor.
  std::atomic<size_t> chunks_left{0};  ///< Countdown to completion.

  std::promise<std::vector<EstimateResult>> promise;
  bool has_promise = false;
  BatchCallback callback;
};

EstimationService::EstimationService(const ModelRegistry* registry,
                                     ThreadPool* pool, ServiceOptions options)
    : registry_(registry), pool_(pool), options_(std::move(options)) {
  if (options_.enable_cache) {
    EstimateCacheOptions cache_options;
    cache_options.capacity = options_.cache_capacity;
    cache_options.shards = options_.cache_shards;
    cache_ = std::make_unique<EstimateCache>(cache_options);
  }
}

EstimationService::~EstimationService() {
  // Every helper task holds `this`; wait for all of them so no in-flight
  // batch outlives the service (futures are ready and callbacks delivered
  // strictly before a task releases its in-flight slot).
  std::unique_lock<std::mutex> lock(inflight_mu_);
  inflight_idle_.wait(lock, [this]() { return inflight_ == 0; });
}

void EstimationService::AcquireInflight() const {
  std::lock_guard<std::mutex> lock(inflight_mu_);
  ++inflight_;
}

void EstimationService::ReleaseInflight() const {
  std::lock_guard<std::mutex> lock(inflight_mu_);
  if (--inflight_ == 0) inflight_idle_.notify_all();
}

void EstimationService::NoteServedVersion(uint64_t version) const {
  // Slot-version-keyed entries from an older model can never be hit again
  // after a hot-swap; clearing on the first request served from the new
  // version reclaims their space at once instead of waiting for LRU
  // pressure. Only a version *increase* acts: an in-flight batch still
  // serving the old snapshot (or a rollback via Activate) must not wipe
  // fresh entries — ping-ponging Clears would effectively disable the
  // cache, while stale entries are merely capacity pressure the LRU bound
  // already handles. A swap registered as a delta (InvalidateOperators)
  // skips the Clear entirely: the only dead entries it created — the
  // refitted slots' — were evicted at registration, and every other
  // operator's entries are still live under their unchanged slot versions.
  uint64_t prev = served_version_.load(std::memory_order_relaxed);
  while (prev < version) {
    if (served_version_.compare_exchange_weak(prev, version,
                                              std::memory_order_relaxed)) {
      if (prev == 0) return;
      bool scoped = false;
      {
        std::lock_guard<std::mutex> lock(scoped_mu_);
        for (auto it = scoped_versions_.begin();
             it != scoped_versions_.end();) {
          if (*it == version) scoped = true;
          it = *it <= version ? scoped_versions_.erase(it) : std::next(it);
        }
      }
      if (!scoped) cache_->Clear();
      return;
    }
  }
}

void EstimationService::InvalidateOperators(
    uint64_t version, const std::vector<ModelSlotId>& ops) {
  if (cache_ == nullptr) return;
  cache_->EvictOperators(ops);
  std::lock_guard<std::mutex> lock(scoped_mu_);
  if (version <= served_version_.load(std::memory_order_relaxed)) {
    // The swap was already observed (a request raced this call and took the
    // conservative full Clear); a stale mark would wrongly scope some
    // *future* unrelated swap to this delta.
    return;
  }
  scoped_versions_.push_back(version);
  if (scoped_versions_.size() > 8) {
    scoped_versions_.erase(scoped_versions_.begin());
  }
}

void EstimationService::EstimateChunk(const ModelSnapshot& snapshot,
                                      const EstimateRequest* requests,
                                      size_t count, EstimateResult* results,
                                      Arena* scratch) const {
  const ResourceEstimator& estimator = *snapshot.estimator;
  const FeatureMode mode = estimator.mode();
  if (cache_ != nullptr) NoteServedVersion(snapshot.version);

  // Each request's estimate is an ordered sum of per-operator terms (one
  // term for operator payloads). Pass 1 counts them so every scratch array
  // is allocated exactly once.
  size_t* term_offset = scratch->AllocateArray<size_t>(count + 1);
  size_t total_terms = 0;
  for (size_t i = 0; i < count; ++i) {
    term_offset[i] = total_terms;
    const EstimateRequest& req = requests[i];
    results[i] = EstimateResult{};
    results[i].model_version = snapshot.version;
    if (req.has_features) {
      ++total_terms;
    } else if (req.plan == nullptr || req.database == nullptr) {
      results[i].status = EstimateStatus::kInvalidRequest;
    } else {
      ForEachPlanOperator(*req.plan, [&total_terms](const PlanNode&,
                                                    const PlanNode*) {
        ++total_terms;
      });
    }
  }
  term_offset[count] = total_terms;

  double* values = scratch->AllocateArray<double>(total_terms);
  struct Miss {
    const FeatureVector* features;  ///< Request payload or `extracted` slot.
    uint32_t term;                  ///< Index into `values`.
    uint32_t slot;                  ///< op * kNumResources + resource.
  };
  Miss* misses = scratch->AllocateArray<Miss>(total_terms);
  FeatureVector* extracted = scratch->AllocateArray<FeatureVector>(total_terms);
  size_t num_misses = 0;

  // Pass 2: resolve every term to a fallback constant (untrained slot), a
  // cache hit (the exact double the original miss computed), or a miss
  // record for the grouped sweeps below. Keys carry the *slot* version —
  // the version at which this (op, resource) model last changed — not the
  // estimator version: a delta publish leaves untouched slots' versions
  // (and thus their live cache entries) intact, while refitted slots miss
  // exactly once and repopulate under the new version.
  size_t term = 0;
  for (size_t i = 0; i < count; ++i) {
    const EstimateRequest& req = requests[i];
    if (results[i].status != EstimateStatus::kOk) continue;
    const Resource resource = req.resource;
    // Resolves one term whose (op, resource) slot has a trained model.
    const auto resolve = [&](OpType op, const FeatureVector* features) {
      if (cache_ != nullptr) {
        EstimateCache::Key key;
        key.model_version = snapshot.SlotVersion(op, resource);
        key.op = op;
        key.resource = resource;
        key.features = *features;
        double value = 0.0;
        if (cache_->Lookup(key, &value)) {
          values[term++] = value;
          return;
        }
      }
      Miss& m = misses[num_misses++];
      m.features = features;
      m.term = static_cast<uint32_t>(term);
      m.slot = static_cast<uint32_t>(op) * kNumResources +
               static_cast<uint32_t>(resource);
      values[term++] = 0.0;
    };
    if (req.has_features) {
      if (estimator.ModelsFor(req.op, resource) == nullptr) {
        // Untrained slots estimate to a feature-free constant — hashing,
        // caching or batching them would only cost time, so take the
        // constant directly, exactly as the uncached path does.
        values[term++] = estimator.FallbackMean(req.op, resource);
      } else {
        resolve(req.op, &req.features);
      }
    } else {
      ForEachPlanOperator(
          *req.plan, [&](const PlanNode& node, const PlanNode* parent) {
            if (estimator.ModelsFor(node.type, resource) == nullptr) {
              values[term++] = estimator.FallbackMean(node.type, resource);
              return;
            }
            extracted[term] =
                ExtractFeatures(node, parent, *req.database, mode);
            resolve(node.type, &extracted[term]);
          });
    }
  }

  // Counting sort of the misses by (op, resource) slot — stable, so the
  // first miss of each distinct feature vector defines its cache entry.
  uint32_t* slot_offset = scratch->AllocateArray<uint32_t>(kNumModelSlots + 1);
  for (size_t s = 0; s <= kNumModelSlots; ++s) slot_offset[s] = 0;
  for (size_t m = 0; m < num_misses; ++m) ++slot_offset[misses[m].slot + 1];
  for (size_t s = 1; s <= kNumModelSlots; ++s) {
    slot_offset[s] += slot_offset[s - 1];
  }
  uint32_t* grouped = scratch->AllocateArray<uint32_t>(num_misses);
  {
    uint32_t* cursor = scratch->AllocateArray<uint32_t>(kNumModelSlots);
    for (size_t s = 0; s < kNumModelSlots; ++s) cursor[s] = slot_offset[s];
    for (size_t m = 0; m < num_misses; ++m) {
      grouped[cursor[misses[m].slot]++] = static_cast<uint32_t>(m);
    }
  }

  // One batched sweep per (op, resource) group, over the group's *distinct*
  // feature vectors: chunks repeat operators heavily (self-similar plans,
  // repeated probes), and bitwise-identical rows are — by the bit-identity
  // contract — guaranteed the same double, so each is predicted and
  // cache-inserted once. Dedup is an open-addressing table keyed by the
  // bitwise feature hash.
  constexpr uint32_t kEmpty = 0xffffffffu;
  for (size_t s = 0; s < kNumModelSlots; ++s) {
    const size_t begin = slot_offset[s], end = slot_offset[s + 1];
    if (begin == end) continue;
    const size_t group_size = end - begin;
    size_t cap = 4;
    while (cap < 2 * group_size) cap <<= 1;
    uint32_t* table = scratch->AllocateArray<uint32_t>(cap);
    for (size_t b = 0; b < cap; ++b) table[b] = kEmpty;
    const FeatureVector** rows =
        scratch->AllocateArray<const FeatureVector*>(group_size);
    uint32_t* defining_miss = scratch->AllocateArray<uint32_t>(group_size);
    uint32_t* row_of = scratch->AllocateArray<uint32_t>(group_size);
    uint32_t num_rows = 0;
    for (size_t p = begin; p < end; ++p) {
      const Miss& m = misses[grouped[p]];
      size_t b = HashFeatureVector(*m.features) & (cap - 1);
      while (true) {
        const uint32_t u = table[b];
        if (u == kEmpty) {
          table[b] = num_rows;
          rows[num_rows] = m.features;
          defining_miss[num_rows] = grouped[p];
          row_of[p - begin] = num_rows;
          ++num_rows;
          break;
        }
        if (FeatureVectorHashEqual(*rows[u], *m.features)) {
          row_of[p - begin] = u;
          break;
        }
        b = (b + 1) & (cap - 1);
      }
    }
    const OpType op = static_cast<OpType>(s / kNumResources);
    const Resource resource = static_cast<Resource>(s % kNumResources);
    double* sweep_out = scratch->AllocateArray<double>(num_rows);
    estimator.EstimateBatchFromFeatures(op, rows, num_rows, resource,
                                        sweep_out, scratch);
    for (size_t p = begin; p < end; ++p) {
      values[misses[grouped[p]].term] = sweep_out[row_of[p - begin]];
    }
    if (cache_ != nullptr) {
      for (uint32_t u = 0; u < num_rows; ++u) {
        EstimateCache::Key key;
        key.model_version = snapshot.SlotVersion(op, resource);
        key.op = op;
        key.resource = resource;
        key.features = *misses[defining_miss[u]].features;
        cache_->Insert(key, sweep_out[u]);
      }
    }
  }

  // Pass 3: each request sums its terms in the canonical pre-order — the
  // same order and the same doubles the serial path produces.
  for (size_t i = 0; i < count; ++i) {
    if (results[i].status != EstimateStatus::kOk) continue;
    double total = 0.0;
    for (size_t t = term_offset[i]; t < term_offset[i + 1]; ++t) {
      total += values[t];
    }
    results[i].value = total;
  }
}

EstimateResult EstimationService::EstimateWith(
    const ModelSnapshot& snapshot, const EstimateRequest& request) const {
  EstimateResult result;
  if (!snapshot) {
    result.status = EstimateStatus::kModelNotFound;
    return result;
  }
  Arena& arena = ChunkArena();
  arena.Reset();
  EstimateChunk(snapshot, &request, 1, &result, &arena);
  return result;
}

EstimateResult EstimationService::Estimate(
    const EstimateRequest& request) const {
  const EstimateResult result =
      EstimateWith(registry_->Get(options_.model_name), request);
  if (result.ok()) {
    requests_.fetch_add(1, std::memory_order_relaxed);
  } else {
    errors_.fetch_add(1, std::memory_order_relaxed);
  }
  return result;
}

std::shared_ptr<EstimationService::BatchState> EstimationService::MakeBatch(
    std::vector<EstimateRequest> requests,
    const SubmitOptions& submit_options) const {
  auto state = std::make_shared<BatchState>();
  state->requests = std::move(requests);
  state->priority = submit_options.priority;
  state->has_deadline = submit_options.has_deadline();
  state->deadline = submit_options.deadline;
  state->start = Clock::now();
  const size_t n = state->requests.size();
  state->results.resize(n);
  if (n == 0) {
    state->degenerate = true;
    return state;
  }
  if (n > options_.max_batch_size) {
    rejected_batches_.fetch_add(1, std::memory_order_relaxed);
    for (auto& r : state->results) r.status = EstimateStatus::kBatchTooLarge;
    state->degenerate = true;
    return state;
  }
  batches_.fetch_add(1, std::memory_order_relaxed);
  state->admitted = true;

  // One snapshot for the whole batch: a concurrent Publish never splits a
  // batch across model versions. Fetched before the expiry check (a
  // registry read, not execution) so expired-at-submit results carry the
  // same model_version a per-chunk expiry would.
  state->snapshot = registry_->Get(options_.model_name);

  // A batch submitted past its own deadline expires whole — expiry wins
  // over a missing model: nothing executes, no cache traffic.
  if (state->has_deadline && state->start > state->deadline) {
    for (auto& r : state->results) {
      r.status = EstimateStatus::kDeadlineExceeded;
      r.model_version = state->snapshot.version;
    }
    state->degenerate = true;
    return state;
  }

  if (!state->snapshot) {
    for (auto& r : state->results) r.status = EstimateStatus::kModelNotFound;
    state->degenerate = true;
    return state;
  }

  // Identity dedup: collapse requests that are the same computation. A
  // request is a pure function of (snapshot, plan, database, resource) —
  // or of (op, features, resource) for operator payloads — so duplicates
  // within one batch (an optimizer re-costing the same plan per candidate,
  // a probe repeated across a batch) are one unit of work, not many. Keys
  // are pointer identity for plan requests (no plan traversal, no feature
  // hashing at admission time) and the bitwise feature hash for operator
  // payloads. Chunk sizing below runs over the deduplicated work list;
  // FinishBatch copies each representative's result to its duplicates.
  if (options_.dedup_identical_requests && n > 1) {
    const auto hash_of = [](const EstimateRequest& r) -> size_t {
      size_t h;
      if (r.has_features) {
        h = HashFeatureVector(r.features);
        h ^= (static_cast<size_t>(r.op) << 1) | 1u;
      } else {
        h = reinterpret_cast<uintptr_t>(r.plan) >> 4;
        h = h * 0x9e3779b97f4a7c15ull +
            (reinterpret_cast<uintptr_t>(r.database) >> 4);
      }
      h = h * 0x9e3779b97f4a7c15ull + static_cast<size_t>(r.resource);
      h ^= h >> 29;
      return h;
    };
    const auto same = [](const EstimateRequest& a, const EstimateRequest& b) {
      if (a.resource != b.resource || a.has_features != b.has_features) {
        return false;
      }
      if (a.has_features) {
        return a.op == b.op && FeatureVectorHashEqual(a.features, b.features);
      }
      return a.plan == b.plan && a.database == b.database;
    };
    constexpr uint32_t kEmpty = 0xffffffffu;
    size_t cap = 4;
    while (cap < 2 * n) cap <<= 1;
    std::vector<uint32_t> table(cap, kEmpty);
    state->dup_of.resize(n);
    state->reps.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      const EstimateRequest& req = state->requests[i];
      size_t b = hash_of(req) & (cap - 1);
      while (true) {
        const uint32_t u = table[b];
        if (u == kEmpty) {
          table[b] = static_cast<uint32_t>(i);
          state->dup_of[i] = static_cast<uint32_t>(i);
          state->reps.push_back(static_cast<uint32_t>(i));
          break;
        }
        if (same(state->requests[u], req)) {
          state->dup_of[i] = u;
          break;
        }
        b = (b + 1) & (cap - 1);
      }
    }
    if (state->reps.size() == n) {
      // All distinct: drop the indirection so chunks read `requests`
      // contiguously (the common case for non-repeating streams).
      state->reps.clear();
      state->reps.shrink_to_fit();
      state->dup_of.clear();
      state->dup_of.shrink_to_fit();
    }
  }
  state->work_items = state->reps.empty() ? n : state->reps.size();

  state->chunk_size = EffectiveChunkSize(state->work_items, state->priority);
  state->num_chunks =
      (state->work_items + state->chunk_size - 1) / state->chunk_size;
  state->chunks_left.store(state->num_chunks, std::memory_order_relaxed);
  return state;
}

size_t EstimationService::EffectiveChunkSize(size_t batch_size,
                                             TaskPriority priority) const {
  if (options_.chunk_size != 0) return options_.chunk_size;
  if (batch_size == 0) return 1;
  // ~3 chunks per worker: enough granularity for stealing and for urgent
  // batches to preempt at chunk boundaries, while keeping the per-chunk
  // claim/countdown overhead amortized over many requests.
  const size_t workers = std::max<size_t>(1, pool_->num_threads());
  size_t chunk = (batch_size + 3 * workers - 1) / (3 * workers);
  // Lane caps: an urgent batch wants small chunks (its latency is bounded
  // by its largest chunk, and other lanes preempt between chunks); a bulk
  // batch wants wide chunks (maximum dedup + sweep width, and it is the
  // work being preempted, not doing the preempting). Measured on the
  // serving bench: normal-lane 64 is past the knee of the claim-overhead
  // curve while still splitting a 2k-request batch 30+ ways.
  size_t cap = 64;
  if (priority == TaskPriority::kUrgent) {
    cap = 8;
  } else if (priority == TaskPriority::kBulk) {
    cap = 256;
  }
  // Oversubscription correction: chunk boundaries are the preemption points,
  // and their wall-clock cadence is what bounds urgent latency under load.
  // When the pool runs more threads than the host has cores, every chunk's
  // wall time is stretched by the timeslice factor (N threads sharing one
  // core make one chunk take ~N times longer to reach its boundary), so a
  // bulk cap tuned for a dedicated core leaves urgent probes stranded for
  // tens of milliseconds on a small host. Shrink the non-urgent caps by the
  // oversubscription factor — a no-op when the pool fits the hardware — with
  // a floor that keeps the dedup/sweep width past the knee where batching
  // stops paying.
  if (priority != TaskPriority::kUrgent) {
    const size_t hw =
        std::max<size_t>(1, std::thread::hardware_concurrency());
    const size_t oversubscription = (workers + hw - 1) / hw;
    if (oversubscription > 1) {
      cap = std::max<size_t>(32, cap / oversubscription);
    }
  }
  return std::max<size_t>(1, std::min(chunk, cap));
}

bool EstimationService::RunOneChunk(
    const std::shared_ptr<BatchState>& state) const {
  BatchState& batch = *state;
  const size_t chunk = batch.next_chunk.fetch_add(1, std::memory_order_relaxed);
  if (chunk >= batch.num_chunks) return false;
  const size_t begin = chunk * batch.chunk_size;
  const size_t end = std::min(begin + batch.chunk_size, batch.work_items);
  // Chunks cover the deduplicated work list when the batch had duplicates
  // (BatchState::reps); request_at maps a work index to the request it
  // represents. Duplicates receive their copies in FinishBatch.
  const bool dedup = !batch.reps.empty();
  const auto request_at = [&](size_t i) -> size_t {
    return dedup ? batch.reps[i] : i;
  };
  // Best-effort deadline: decided once, when the chunk starts. A chunk that
  // begins before the deadline always runs to completion (results stay
  // bit-identical for every request that completes); one that would begin
  // after it expires without executing.
  const bool expired = batch.has_deadline && Clock::now() > batch.deadline;
  if (options_.chunk_claim_hook) {
    options_.chunk_claim_hook(batch.priority, expired);
  }
  if (expired) {
    for (size_t i = begin; i < end; ++i) {
      EstimateResult& r = batch.results[request_at(i)];
      r = EstimateResult{};
      r.status = EstimateStatus::kDeadlineExceeded;
      r.model_version = batch.snapshot.version;
    }
  } else {
    Arena& arena = ChunkArena();
    arena.Reset();
    const size_t chunk_count = end - begin;
    // EstimateChunk wants contiguous requests/results; under dedup the
    // representatives are scattered, so pack them into arena scratch (a
    // few hundred bytes per request, reclaimed by the next Reset) and
    // scatter the results back.
    const EstimateRequest* chunk_requests;
    EstimateResult* chunk_results;
    if (dedup) {
      EstimateRequest* packed =
          arena.AllocateArray<EstimateRequest>(chunk_count);
      for (size_t i = 0; i < chunk_count; ++i) {
        std::memcpy(&packed[i], &batch.requests[request_at(begin + i)],
                    sizeof(EstimateRequest));
      }
      chunk_requests = packed;
      chunk_results = arena.AllocateArray<EstimateResult>(chunk_count);
    } else {
      chunk_requests = batch.requests.data() + begin;
      chunk_results = batch.results.data() + begin;
    }
    try {
      EstimateChunk(batch.snapshot, chunk_requests, chunk_count, chunk_results,
                    &arena);
      if (dedup) {
        for (size_t i = 0; i < chunk_count; ++i) {
          batch.results[request_at(begin + i)] = chunk_results[i];
        }
      }
    } catch (...) {
      // Estimation only throws on resource exhaustion (allocation), and the
      // grouped chunk's scratch is the biggest allocation on the path —
      // retry each request alone before giving up on it. Surfacing failures
      // per-request keeps the promise and callback flavors identical, and
      // the countdown still reaches zero so completion is delivered exactly
      // once. (Reset() below frees the packed copies too, so the retries
      // read the originals straight from the batch.)
      for (size_t i = begin; i < end; ++i) {
        EstimateResult& r = batch.results[request_at(i)];
        try {
          arena.Reset();
          EstimateChunk(batch.snapshot, &batch.requests[request_at(i)], 1, &r,
                        &arena);
        } catch (...) {
          r = EstimateResult{};
          r.status = EstimateStatus::kInternalError;
          r.model_version = batch.snapshot.version;
        }
      }
    }
  }
  // acq_rel: the final decrement observes every other chunk's writes, so
  // the finisher publishes fully-written results.
  if (batch.chunks_left.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    UnscheduleBatch(&batch);
    FinishBatch(&batch);
  }
  return true;
}

void EstimationService::RunChunks(
    const std::shared_ptr<BatchState>& state) const {
  while (RunOneChunk(state)) {
  }
}

std::shared_ptr<EstimationService::BatchState>
EstimationService::PickRunnable(TaskPriority lane_floor) const {
  std::lock_guard<std::mutex> lock(sched_mu_);
  for (size_t p = 0; p <= static_cast<size_t>(lane_floor); ++p) {
    auto& lane = runnable_[p];
    while (!lane.empty()) {
      std::shared_ptr<BatchState>& front = lane.front();
      if (front->next_chunk.load(std::memory_order_relaxed) >=
          front->num_chunks) {
        // Fully claimed (possibly still executing elsewhere; completion is
        // the chunk countdown's job, not the scheduler's).
        lane.pop_front();
        runnable_count_[p].fetch_sub(1, std::memory_order_relaxed);
        continue;
      }
      return front;
    }
  }
  return nullptr;
}

bool EstimationService::HigherPriorityRunnable(TaskPriority priority) const {
  for (size_t p = 0; p < static_cast<size_t>(priority); ++p) {
    if (runnable_count_[p].load(std::memory_order_relaxed) > 0) return true;
  }
  return false;
}

void EstimationService::UnscheduleBatch(const BatchState* state) const {
  std::lock_guard<std::mutex> lock(sched_mu_);
  const size_t p = static_cast<size_t>(state->priority);
  auto& lane = runnable_[p];
  for (auto it = lane.begin(); it != lane.end(); ++it) {
    if (it->get() == state) {
      lane.erase(it);
      runnable_count_[p].fetch_sub(1, std::memory_order_relaxed);
      return;
    }
  }
}

void EstimationService::HelperLoop(TaskPriority lane_floor) const {
  // Serve the highest-priority runnable batch at or above the helper's
  // seed lane, switching batches only when the current one is exhausted or
  // higher-priority work arrives (a cheap atomic poll) — the steady state
  // claims chunks with a single fetch_add, no scheduler lock. A false
  // RunOneChunk (the pick raced the batch's last claim) just re-picks; the
  // exhausted batch is popped by the next PickRunnable scan. Newly
  // submitted urgent batches preempt in-progress lower-priority work at
  // chunk granularity without cancelling anything.
  std::shared_ptr<BatchState> batch = PickRunnable(lane_floor);
  while (batch != nullptr) {
    if (!RunOneChunk(batch) || HigherPriorityRunnable(batch->priority)) {
      batch = PickRunnable(lane_floor);
    }
  }
}

void EstimationService::FinishBatch(BatchState* state) const {
  // Deliver the identity-dedup duplicates: every request copies its
  // representative's result (value, status and version alike — an expired
  // or failed representative expires or fails its duplicates too).
  // dup_of[i] <= i, so each source slot is final before it is read.
  if (!state->dup_of.empty()) {
    for (size_t i = 0; i < state->results.size(); ++i) {
      const uint32_t rep = state->dup_of[i];
      if (rep != i) state->results[i] = state->results[rep];
    }
  }
  uint64_t ok = 0, expired = 0, failed = 0;
  for (const auto& r : state->results) {
    if (r.ok()) {
      ++ok;
    } else if (r.status == EstimateStatus::kDeadlineExceeded) {
      ++expired;
    } else {
      ++failed;
    }
  }
  requests_.fetch_add(ok, std::memory_order_relaxed);
  errors_.fetch_add(failed, std::memory_order_relaxed);
  deadline_expired_.fetch_add(expired, std::memory_order_relaxed);
  if (state->admitted) {
    LaneCounters& lane = lane_counters_[static_cast<size_t>(state->priority)];
    lane.batches.fetch_add(1, std::memory_order_relaxed);
    lane.requests.fetch_add(ok, std::memory_order_relaxed);
    lane.expired.fetch_add(expired, std::memory_order_relaxed);
    const uint64_t us = ElapsedMicros(state->start);
    lane.latency_total_us.fetch_add(us, std::memory_order_relaxed);
    uint64_t prev_max = lane.latency_max_us.load(std::memory_order_relaxed);
    while (prev_max < us &&
           !lane.latency_max_us.compare_exchange_weak(
               prev_max, us, std::memory_order_relaxed)) {
    }
    lane.histogram[LatencyBucket(us)].fetch_add(1, std::memory_order_relaxed);
  }
  if (state->has_promise) {
    state->promise.set_value(std::move(state->results));
  } else if (state->callback) {
    try {
      state->callback(std::move(state->results));
    } catch (...) {
      // Swallow: a throwing callback must not prevent the helper task from
      // releasing its in-flight slot (the destructor waits on that count).
    }
  }
}

void EstimationService::LaunchBatch(
    const std::shared_ptr<BatchState>& state) const {
  if (state->degenerate) {
    FinishBatch(state.get());
    return;
  }
  {
    std::lock_guard<std::mutex> lock(sched_mu_);
    const size_t p = static_cast<size_t>(state->priority);
    runnable_[p].push_back(state);
    runnable_count_[p].fetch_add(1, std::memory_order_relaxed);
  }
  // Seed one helper per available worker (never more than there are
  // chunks) on the batch's pool lane; helpers steal chunks — highest
  // priority first, floored at their seed lane — until no such batch is
  // runnable, so a stalled or saturated pool only reduces parallelism,
  // never correctness: every batch's completion rests on its own helpers
  // (and, for blocking calls, its submitter), never on higher-lane ones.
  const size_t helpers = std::min(state->num_chunks, pool_->num_threads());
  const TaskPriority lane_floor = state->priority;
  for (size_t i = 0; i < helpers; ++i) {
    AcquireInflight();
    try {
      pool_->Submit(lane_floor, [this, lane_floor]() {
        HelperLoop(lane_floor);
        ReleaseInflight();
      });
    } catch (...) {
      // Pool shutting down: run this batch's remaining chunks on this
      // thread so the batch still completes (the pool contract is that the
      // service outlives it, but degrade gracefully rather than dropping
      // work).
      ReleaseInflight();
      RunChunks(state);
      return;
    }
  }
}

std::vector<EstimateResult> EstimationService::EstimateBatch(
    const std::vector<EstimateRequest>& requests,
    const SubmitOptions& submit_options) const {
  auto state = MakeBatch(requests, submit_options);
  state->has_promise = true;
  auto future = state->promise.get_future();
  LaunchBatch(state);
  // Help drain our own chunks — and only our own: a caller running on a
  // pool worker finishes the whole batch itself if no other worker is free
  // (which is what makes nested blocking calls deadlock-free), and a
  // blocking urgent caller never burns its thread on queued bulk work.
  if (!state->degenerate) RunChunks(state);
  return future.get();
}

std::future<std::vector<EstimateResult>> EstimationService::SubmitBatch(
    std::vector<EstimateRequest> requests,
    const SubmitOptions& submit_options) const {
  auto state = MakeBatch(std::move(requests), submit_options);
  state->has_promise = true;
  auto future = state->promise.get_future();
  LaunchBatch(state);
  return future;
}

void EstimationService::SubmitBatch(std::vector<EstimateRequest> requests,
                                    BatchCallback done,
                                    const SubmitOptions& submit_options) const {
  auto state = MakeBatch(std::move(requests), submit_options);
  state->callback = std::move(done);
  LaunchBatch(state);
}

std::future<EstimateResult> EstimationService::SubmitEstimate(
    const EstimateRequest& request,
    const SubmitOptions& submit_options) const {
  auto result = std::make_shared<std::promise<EstimateResult>>();
  std::future<EstimateResult> future = result->get_future();
  SubmitBatch(std::vector<EstimateRequest>{request},
              [result](std::vector<EstimateResult> results) {
                result->set_value(std::move(results.front()));
              },
              submit_options);
  return future;
}

void EstimationService::SubmitEstimate(const EstimateRequest& request,
                                       EstimateCallback done,
                                       const SubmitOptions& submit_options)
    const {
  SubmitBatch(std::vector<EstimateRequest>{request},
              [done = std::move(done)](std::vector<EstimateResult> results) {
                done(std::move(results.front()));
              },
              submit_options);
}

std::vector<double> EstimationService::EstimatePipelines(
    const EstimateRequest& request) const {
  const ModelSnapshot snapshot = registry_->Get(options_.model_name);
  if (!snapshot || request.plan == nullptr || request.database == nullptr) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    return {};
  }
  requests_.fetch_add(1, std::memory_order_relaxed);
  return snapshot.estimator->EstimatePipelines(*request.plan, *request.database,
                                               request.resource);
}

ServiceStats EstimationService::stats() const {
  ServiceStats s;
  s.requests = requests_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.rejected_batches = rejected_batches_.load(std::memory_order_relaxed);
  s.errors = errors_.load(std::memory_order_relaxed);
  s.deadline_expired = deadline_expired_.load(std::memory_order_relaxed);
  for (size_t p = 0; p < kNumTaskPriorities; ++p) {
    const LaneCounters& src = lane_counters_[p];
    PriorityLaneStats& dst = s.priorities[p];
    dst.batches = src.batches.load(std::memory_order_relaxed);
    dst.requests = src.requests.load(std::memory_order_relaxed);
    dst.expired = src.expired.load(std::memory_order_relaxed);
    dst.total_latency_ms =
        static_cast<double>(
            src.latency_total_us.load(std::memory_order_relaxed)) /
        1000.0;
    dst.max_latency_ms =
        static_cast<double>(
            src.latency_max_us.load(std::memory_order_relaxed)) /
        1000.0;
    for (size_t b = 0; b < kServiceLatencyBuckets; ++b) {
      dst.latency_histogram[b] =
          src.histogram[b].load(std::memory_order_relaxed);
    }
  }
  if (cache_) {
    const EstimateCacheStats cache_stats = cache_->stats();
    s.cache_hits = cache_stats.hits;
    s.cache_misses = cache_stats.misses;
    s.cache_evictions = cache_stats.evictions;
    s.cache_entries = cache_stats.entries;
  }
  return s;
}

EstimateCacheStats EstimationService::cache_stats() const {
  return cache_ ? cache_->stats() : EstimateCacheStats{};
}

}  // namespace resest
