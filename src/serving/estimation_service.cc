#include "src/serving/estimation_service.h"

#include <algorithm>
#include <future>
#include <utility>

namespace resest {

const char* EstimateStatusName(EstimateStatus s) {
  switch (s) {
    case EstimateStatus::kOk:
      return "OK";
    case EstimateStatus::kModelNotFound:
      return "MODEL_NOT_FOUND";
    case EstimateStatus::kInvalidRequest:
      return "INVALID_REQUEST";
    case EstimateStatus::kBatchTooLarge:
      return "BATCH_TOO_LARGE";
  }
  return "UNKNOWN";
}

EstimationService::EstimationService(const ModelRegistry* registry,
                                     ThreadPool* pool, ServiceOptions options)
    : registry_(registry), pool_(pool), options_(std::move(options)) {
  if (options_.chunk_size == 0) options_.chunk_size = 1;
}

EstimateResult EstimationService::EstimateWith(
    const ModelSnapshot& snapshot, const EstimateRequest& request) const {
  EstimateResult result;
  if (!snapshot) {
    result.status = EstimateStatus::kModelNotFound;
    return result;
  }
  result.model_version = snapshot.version;
  if (request.plan == nullptr || request.database == nullptr) {
    result.status = EstimateStatus::kInvalidRequest;
    return result;
  }
  result.value = snapshot.estimator->EstimateQuery(
      *request.plan, *request.database, request.resource);
  return result;
}

EstimateResult EstimationService::Estimate(
    const EstimateRequest& request) const {
  const EstimateResult result = EstimateWith(registry_->Get(options_.model_name),
                                             request);
  if (result.ok()) {
    requests_.fetch_add(1, std::memory_order_relaxed);
  } else {
    errors_.fetch_add(1, std::memory_order_relaxed);
  }
  return result;
}

std::vector<EstimateResult> EstimationService::EstimateBatch(
    const std::vector<EstimateRequest>& requests) const {
  std::vector<EstimateResult> results(requests.size());
  if (requests.empty()) return results;
  if (requests.size() > options_.max_batch_size) {
    rejected_batches_.fetch_add(1, std::memory_order_relaxed);
    errors_.fetch_add(requests.size(), std::memory_order_relaxed);
    for (auto& r : results) r.status = EstimateStatus::kBatchTooLarge;
    return results;
  }
  batches_.fetch_add(1, std::memory_order_relaxed);

  // One snapshot for the whole batch: a concurrent Publish never splits a
  // batch across model versions.
  const ModelSnapshot snapshot = registry_->Get(options_.model_name);
  if (!snapshot) {
    errors_.fetch_add(requests.size(), std::memory_order_relaxed);
    for (auto& r : results) r.status = EstimateStatus::kModelNotFound;
    return results;
  }

  // Fan chunks out across the pool; each chunk writes disjoint result slots,
  // so request order is preserved without any post-hoc reordering.
  std::vector<std::future<void>> pending;
  pending.reserve(requests.size() / options_.chunk_size + 1);
  try {
    for (size_t begin = 0; begin < requests.size();
         begin += options_.chunk_size) {
      const size_t end = std::min(begin + options_.chunk_size, requests.size());
      pending.push_back(pool_->Submit([this, &snapshot, &requests, &results,
                                       begin, end]() {
        for (size_t i = begin; i < end; ++i) {
          results[i] = EstimateWith(snapshot, requests[i]);
        }
      }));
    }
  } catch (...) {
    // Submit can throw (pool shutdown, bad_alloc). Already-enqueued chunks
    // reference this frame's locals; wait them out before unwinding.
    for (auto& f : pending) f.wait();
    throw;
  }
  // Same hazard on the result path: wait for every chunk before the first
  // rethrowing get() can unwind the frame.
  for (auto& f : pending) f.wait();
  for (auto& f : pending) f.get();

  uint64_t ok = 0, failed = 0;
  for (const auto& r : results) (r.ok() ? ok : failed)++;
  requests_.fetch_add(ok, std::memory_order_relaxed);
  errors_.fetch_add(failed, std::memory_order_relaxed);
  return results;
}

std::vector<double> EstimationService::EstimatePipelines(
    const EstimateRequest& request) const {
  const ModelSnapshot snapshot = registry_->Get(options_.model_name);
  if (!snapshot || request.plan == nullptr || request.database == nullptr) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    return {};
  }
  requests_.fetch_add(1, std::memory_order_relaxed);
  return snapshot.estimator->EstimatePipelines(*request.plan, *request.database,
                                               request.resource);
}

ServiceStats EstimationService::stats() const {
  ServiceStats s;
  s.requests = requests_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.rejected_batches = rejected_batches_.load(std::memory_order_relaxed);
  s.errors = errors_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace resest
