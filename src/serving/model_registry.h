// Versioned registry of trained ResourceEstimators with atomic hot-swap.
//
// The serving deployment of the paper (Figure 5): models are trained
// offline, serialized, and published into a long-lived server process.
// Readers take a shared_ptr snapshot of the active model under a brief
// lock, then predict lock-free; publishing a new version swaps the active
// pointer without disturbing in-flight readers, which keep their snapshot
// alive until they drop it.
#ifndef RESEST_SERVING_MODEL_REGISTRY_H_
#define RESEST_SERVING_MODEL_REGISTRY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/core/estimator.h"

namespace resest {

/// A snapshot handle: the estimator plus the version it was published as.
struct ModelSnapshot {
  std::shared_ptr<const ResourceEstimator> estimator;
  uint64_t version = 0;

  explicit operator bool() const { return estimator != nullptr; }
};

/// Thread-safe, versioned store of named estimators.
class ModelRegistry {
 public:
  /// Publishes an estimator under `name`; returns its (monotonic) version.
  /// The new version becomes the active one for subsequent Get() calls.
  uint64_t Publish(const std::string& name,
                   std::shared_ptr<const ResourceEstimator> estimator);

  /// Deserializes `bytes` (ResourceEstimator::Serialize format) and
  /// publishes the result. Returns 0 on corrupt input.
  uint64_t PublishSerialized(const std::string& name,
                             const std::vector<uint8_t>& bytes);

  /// Loads a model store written by SaveActive (or
  /// ResourceEstimator::SaveToFile) and publishes it — how a restarted
  /// server comes back without retraining. Returns 0 on a missing or
  /// corrupt file; the active version is untouched on failure.
  uint64_t PublishFromFile(const std::string& name, const std::string& path);

  /// Persists the active version of `name` as `<dir>/<name>.model`
  /// (creating `dir` if needed), in the format PublishFromFile loads.
  /// Returns false if `name` has no active version or the write fails.
  bool SaveActive(const std::string& name, const std::string& dir) const;

  /// Snapshot of the active version of `name` (empty snapshot if absent).
  ModelSnapshot Get(const std::string& name) const;

  /// Snapshot of a specific retained version (empty snapshot if evicted or
  /// never published).
  ModelSnapshot GetVersion(const std::string& name, uint64_t version) const;

  /// Reactivates a retained older version (rollback). Returns false if that
  /// version is not retained.
  bool Activate(const std::string& name, uint64_t version);

  /// Removes the name and all retained versions.
  void Remove(const std::string& name);

  /// Versions currently retained for `name`, oldest first.
  std::vector<uint64_t> Versions(const std::string& name) const;

  std::vector<std::string> Names() const;

  /// How many versions to retain per name (older ones are evicted on
  /// publish; the active version is never evicted). Default 2: current
  /// plus one rollback target.
  void set_max_versions(size_t n) {
    std::lock_guard<std::mutex> lock(mu_);
    max_versions_ = n == 0 ? 1 : n;
  }

 private:
  struct Entry {
    std::map<uint64_t, std::shared_ptr<const ResourceEstimator>> versions;
    uint64_t active = 0;
  };

  void EvictLocked(Entry* entry);

  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
  uint64_t next_version_ = 1;
  size_t max_versions_ = 2;
};

}  // namespace resest

#endif  // RESEST_SERVING_MODEL_REGISTRY_H_
