// Versioned registry of trained ResourceEstimators with atomic hot-swap.
//
// The serving deployment of the paper (Figure 5): models are trained
// offline, serialized, and published into a long-lived server process.
// Readers take a shared_ptr snapshot of the active model under a brief
// lock, then predict lock-free; publishing a new version swaps the active
// pointer without disturbing in-flight readers, which keep their snapshot
// alive until they drop it.
#ifndef RESEST_SERVING_MODEL_REGISTRY_H_
#define RESEST_SERVING_MODEL_REGISTRY_H_

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/core/estimator.h"

namespace resest {

/// Per-slot delta lineage: the registry version at which each (operator,
/// resource) model slot last changed. A full publish stamps every slot with
/// the new version; a delta publish (PublishDelta) stamps only the refitted
/// slots and inherits the rest from the base version — which is what lets
/// the serving cache keep entries for untouched operators alive across a
/// hot-swap (keys carry the slot version, not the estimator version).
using SlotVersionMap =
    std::array<std::array<uint64_t, kNumResources>, kNumOpTypes>;

/// A snapshot handle: the estimator plus the version it was published as.
struct ModelSnapshot {
  std::shared_ptr<const ResourceEstimator> estimator;
  uint64_t version = 0;
  /// Delta lineage of this version; null for snapshots that predate lineage
  /// tracking (every slot then counts as last-changed at `version`).
  std::shared_ptr<const SlotVersionMap> slots;

  /// Version at which this snapshot's (op, resource) slot last changed.
  uint64_t SlotVersion(OpType op, Resource resource) const {
    return slots == nullptr
               ? version
               : (*slots)[static_cast<size_t>(op)]
                         [static_cast<size_t>(resource)];
  }

  explicit operator bool() const { return estimator != nullptr; }
};

/// Thread-safe, versioned store of named estimators.
class ModelRegistry {
 public:
  /// Publishes an estimator under `name`; returns its (monotonic) version.
  /// The new version becomes the active one for subsequent Get() calls.
  uint64_t Publish(const std::string& name,
                   std::shared_ptr<const ResourceEstimator> estimator);

  /// Publishes `estimator` as a *delta* over `base_version`: only the
  /// `refitted` slots are stamped with the new version in the lineage, every
  /// other slot inherits its last-changed version from the base (the caller
  /// guarantees those slots share the base's model sets — see
  /// ResourceEstimator::ReplaceModelSet). If the base version is no longer
  /// retained, the publish degrades to a full one (all slots stamped new),
  /// which is always safe — lineage only ever widens invalidation. Returns
  /// the new version, 0 on a null estimator.
  uint64_t PublishDelta(const std::string& name,
                        std::shared_ptr<const ResourceEstimator> estimator,
                        uint64_t base_version,
                        const std::vector<ModelSlotId>& refitted);

  /// Deserializes `bytes` (ResourceEstimator::Serialize format) and
  /// publishes the result. Returns 0 on corrupt input.
  uint64_t PublishSerialized(const std::string& name,
                             const std::vector<uint8_t>& bytes);

  /// Loads a model store written by SaveActive (or
  /// ResourceEstimator::SaveToFile) and publishes it — how a restarted
  /// server comes back without retraining. If a `<path>.lineage` sidecar
  /// (written by SaveActive) is present and valid, the saved delta lineage
  /// and version numbering are restored too: the model is republished at a
  /// version no smaller than any saved slot version, so lineage versions
  /// stay unique within the restarted registry and a resumed incremental
  /// trainer can keep delta-publishing mid-stream. Returns 0 on a missing
  /// or corrupt model file; the active version is untouched on failure.
  uint64_t PublishFromFile(const std::string& name, const std::string& path);

  /// Persists the active version of `name` as `<dir>/<name>.model`
  /// (creating `dir` if needed), in the format PublishFromFile loads, plus
  /// a `<name>.model.lineage` sidecar carrying the version and delta
  /// lineage. Returns false if `name` has no active version or the model
  /// write fails (the lineage sidecar is best-effort: PublishFromFile falls
  /// back to a full-stamp lineage without it).
  bool SaveActive(const std::string& name, const std::string& dir) const;

  /// Snapshot of the active version of `name` (empty snapshot if absent).
  ModelSnapshot Get(const std::string& name) const;

  /// Snapshot of a specific retained version (empty snapshot if evicted or
  /// never published).
  ModelSnapshot GetVersion(const std::string& name, uint64_t version) const;

  /// Reactivates a retained older version (rollback). Returns false if that
  /// version is not retained.
  bool Activate(const std::string& name, uint64_t version);

  /// Removes the name and all retained versions.
  void Remove(const std::string& name);

  /// Versions currently retained for `name`, oldest first.
  std::vector<uint64_t> Versions(const std::string& name) const;

  std::vector<std::string> Names() const;

  /// How many versions to retain per name (older ones are evicted on
  /// publish; the active version is never evicted). Default 2: current
  /// plus one rollback target.
  void set_max_versions(size_t n) {
    std::lock_guard<std::mutex> lock(mu_);
    max_versions_ = n == 0 ? 1 : n;
  }

 private:
  struct Version {
    std::shared_ptr<const ResourceEstimator> estimator;
    std::shared_ptr<const SlotVersionMap> slots;
  };
  struct Entry {
    std::map<uint64_t, Version> versions;
    uint64_t active = 0;
  };

  /// Publishes under the registry lock. `slots` (null = stamp every slot
  /// with the new version) is the inherited lineage; the `refitted` slots
  /// are stamped with the assigned version *after* it is minted, so the
  /// stamp can never diverge from the version actually published.
  /// `min_version` floors the assigned number (used when restoring
  /// persisted lineage).
  uint64_t PublishLocked(const std::string& name,
                         std::shared_ptr<const ResourceEstimator> estimator,
                         std::shared_ptr<SlotVersionMap> slots,
                         uint64_t min_version,
                         const std::vector<ModelSlotId>& refitted);

  void EvictLocked(Entry* entry);

  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
  uint64_t next_version_ = 1;
  size_t max_versions_ = 2;
};

}  // namespace resest

#endif  // RESEST_SERVING_MODEL_REGISTRY_H_
