// The wire-stable status taxonomy of the estimation service.
//
// EstimateStatus is part of the external API surface: the HTTP front end
// (src/server/) serializes it by name into response bodies and maps it onto
// stable HTTP status codes, so enumerators must never be renumbered or
// renamed — append new ones before kNumEstimateStatuses and extend the
// name/code tables (a test pins the round-trip for every enumerator).
//
// Status -> HTTP code mapping (the single source of truth for server and
// docs; docs/wire_api.md mirrors this table):
//
//   EstimateStatus       wire name          HTTP
//   ------------------   ----------------   ----
//   kOk                  OK                 200
//   kModelNotFound       MODEL_NOT_FOUND    503  (no active model published)
//   kInvalidRequest      INVALID_REQUEST    400
//   kBatchTooLarge       BATCH_TOO_LARGE    413
//   kInternalError       INTERNAL_ERROR     500
//   kDeadlineExceeded    DEADLINE_EXCEEDED  504
#ifndef RESEST_SERVING_ESTIMATE_STATUS_H_
#define RESEST_SERVING_ESTIMATE_STATUS_H_

#include <string>

namespace resest {

enum class EstimateStatus {
  kOk = 0,
  kModelNotFound,   ///< No active model under the service's model name.
  kInvalidRequest,  ///< Null plan or database (and no feature payload).
  kBatchTooLarge,   ///< Batch exceeds ServiceOptions::max_batch_size.
  kInternalError,   ///< Estimation threw (e.g. allocation failure).
  kDeadlineExceeded,  ///< Expired before its chunk started executing.
  kNumEstimateStatuses,  ///< Count sentinel, not a status.
};
inline constexpr size_t kNumEstimateStatuses =
    static_cast<size_t>(EstimateStatus::kNumEstimateStatuses);

/// Stable wire name of a status (the table above). Never returns null for a
/// valid enumerator; "UNKNOWN" for out-of-range values.
const char* EstimateStatusName(EstimateStatus s);

/// Inverse of EstimateStatusName: true (and *out set) iff `name` is the
/// exact wire name of some enumerator. Round-trips every status:
/// ParseEstimateStatus(EstimateStatusName(s)) == s.
bool ParseEstimateStatus(const std::string& name, EstimateStatus* out);

/// The stable HTTP code of a status (the table above). Every enumerator has
/// a code; out-of-range values map to 500.
int EstimateStatusHttpCode(EstimateStatus s);

}  // namespace resest

#endif  // RESEST_SERVING_ESTIMATE_STATUS_H_
