#include "src/serving/tenant_manager.h"

#include <algorithm>
#include <utility>

namespace resest {
namespace {

bool IsTenantIdChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
}

}  // namespace

bool IsValidTenantId(const std::string& id) {
  if (id.empty() || id.size() > kMaxTenantIdLength) return false;
  // First char alphanumeric: rules out "." / ".." / "-rf"-style names
  // before they ever become a directory or a metric label.
  const char first = id.front();
  const bool first_ok = (first >= 'a' && first <= 'z') ||
                        (first >= 'A' && first <= 'Z') ||
                        (first >= '0' && first <= '9');
  if (!first_ok) return false;
  for (const char c : id) {
    if (!IsTenantIdChar(c)) return false;
  }
  return true;
}

TenantManager::TenantManager(ModelRegistry* registry, ThreadPool* pool,
                             TenantOptions options)
    : registry_(registry), pool_(pool), options_(std::move(options)) {}

TenantManager::Tenant* TenantManager::AddTenant(const std::string& id,
                                                std::string* error,
                                                RecoveryStats* recovery) {
  if (!IsValidTenantId(id)) {
    if (error != nullptr) *error = "invalid tenant id \"" + id + "\"";
    return nullptr;
  }
  if (Tenant* existing = Resolve(id)) return existing;

  auto tenant = std::make_unique<Tenant>();
  tenant->id = id;
  tenant->model_name = id == kDefaultTenant
                           ? options_.service.model_name
                           : options_.service.model_name + "@" + id;

  ServiceOptions service_options = options_.service;
  service_options.model_name = tenant->model_name;
  tenant->service = std::make_unique<EstimationService>(registry_, pool_,
                                                        service_options);
  if (options_.enable_coalescing) {
    tenant->coalescer = std::make_unique<BatchCoalescer>(
        tenant->service.get(), options_.coalescer);
  }
  if (!options_.data_dir.empty()) {
    // The default tenant logs at the data-dir root — byte-compatible with
    // the single-tenant layout, so a pre-tenancy server's WAL recovers
    // unchanged. Named tenants get their own subdirectory.
    const std::string dir = id == kDefaultTenant
                                ? options_.data_dir
                                : options_.data_dir + "/" + id;
    LogBounds bounds = options_.log_bounds;
    if (id != kDefaultTenant && options_.named_obslog_cap_bytes != 0) {
      bounds.memory_cap_bytes = options_.named_obslog_cap_bytes;
    }
    tenant->trainer = std::make_unique<IncrementalTrainer>(
        options_.train, options_.refit_policy, pool_, bounds);
    if (!tenant->trainer->EnableDurability(dir, tenant->model_name, {},
                                           recovery)) {
      if (error != nullptr) {
        *error = "failed to open observation WAL in " + dir;
      }
      return nullptr;
    }
  }
  tenants_.push_back(std::move(tenant));
  return tenants_.back().get();
}

TenantManager::Tenant* TenantManager::Resolve(const std::string& id) {
  const std::string& key = id.empty() ? std::string(kDefaultTenant) : id;
  for (auto& tenant : tenants_) {
    if (tenant->id == key) return tenant.get();
  }
  return nullptr;
}

const TenantManager::Tenant* TenantManager::Resolve(
    const std::string& id) const {
  return const_cast<TenantManager*>(this)->Resolve(id);
}

std::vector<std::string> TenantManager::TenantIds() const {
  std::vector<std::string> ids;
  ids.reserve(tenants_.size());
  for (const auto& tenant : tenants_) ids.push_back(tenant->id);
  return ids;
}

uint64_t TenantManager::PublishToAll(
    std::shared_ptr<const ResourceEstimator> estimator) {
  uint64_t default_version = 0;
  for (auto& tenant : tenants_) {
    const uint64_t version =
        registry_->Publish(tenant->model_name, estimator);
    if (tenant->id == kDefaultTenant) default_version = version;
    if (tenant->trainer != nullptr) {
      // The published model is the refit baseline; rows recovered from the
      // tenant's WAL are already in its logs and feed the next refit.
      tenant->trainer->Attach(registry_->Get(tenant->model_name).estimator,
                              version);
    }
  }
  return default_version;
}

size_t TenantManager::RefitTenants() {
  size_t published = 0;
  for (auto& tenant : tenants_) {
    if (tenant->trainer == nullptr) continue;
    const auto result = tenant->trainer->RefitAndPublish(
        registry_, tenant->model_name, tenant->service.get());
    if (result) ++published;
  }
  return published;
}

bool TenantManager::DrainAll() {
  bool ok = true;
  for (auto& tenant : tenants_) {
    if (tenant->trainer == nullptr) continue;
    if (!tenant->trainer->Checkpoint(*registry_, tenant->model_name,
                                     tenant->id == kDefaultTenant
                                         ? options_.data_dir
                                         : options_.data_dir + "/" +
                                               tenant->id)) {
      ok = false;
    }
    if (!tenant->trainer->DrainWal()) ok = false;
  }
  return ok;
}

void TenantManager::Heartbeat() {
  const auto now = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lock(stats_mu_);
  if (ever_ticked_ &&
      now - last_heartbeat_ <
          std::chrono::milliseconds(options_.heartbeat_interval_ms)) {
    return;
  }
  TickLocked(now);
}

std::vector<TenantStats> TenantManager::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  if (!ever_ticked_) TickLocked(std::chrono::steady_clock::now());
  std::vector<TenantStats> out;
  out.reserve(tenants_.size());
  for (const auto& tenant : tenants_) out.push_back(tenant->snapshot);
  return out;
}

void TenantManager::TickLocked(
    std::chrono::steady_clock::time_point now) const {
  for (const auto& tenant_ptr : tenants_) {
    Tenant& tenant = *tenant_ptr;
    const ServiceStats service = tenant.service->stats();
    TenantStats& s = tenant.snapshot;
    s.tenant = tenant.id;
    s.model_name = tenant.model_name;
    s.model_version = registry_->Get(tenant.model_name).version;
    s.requests = service.requests;
    s.batches = service.batches;
    s.deadline_expired = service.deadline_expired;
    // qps over the window since the tenant's previous tick; an idle tenant
    // ages to 0 after one interval, a brand-new one starts there.
    if (tenant.hb_last_tick.time_since_epoch().count() != 0) {
      const double dt =
          std::chrono::duration<double>(now - tenant.hb_last_tick).count();
      s.qps = dt > 0.0 ? static_cast<double>(service.requests -
                                             tenant.hb_last_requests) /
                             dt
                       : 0.0;
    } else {
      s.qps = 0.0;
    }
    tenant.hb_last_requests = service.requests;
    tenant.hb_last_tick = now;

    s.cache_hits = service.cache_hits;
    s.cache_misses = service.cache_misses;
    s.cache_evictions = service.cache_evictions;
    s.cache_entries = service.cache_entries;
    s.cache_capacity = tenant.service->options().enable_cache
                           ? tenant.service->options().cache_capacity
                           : 0;
    s.cache_hit_rate = service.CacheHitRate();
    s.cache_pressure =
        s.cache_capacity == 0
            ? 0.0
            : std::min(1.0, static_cast<double>(s.cache_entries) /
                                static_cast<double>(s.cache_capacity));
    if (tenant.trainer != nullptr) {
      const DurabilityStats d = tenant.trainer->durability_stats();
      s.durable = d.durable;
      s.obslog_bytes = d.memory_bytes;
      s.obslog_pending_rows = tenant.trainer->TotalPendingRows();
      s.wal_records = d.wal.records_appended;
    }
    for (size_t p = 0; p < kNumTaskPriorities; ++p) {
      const PriorityLaneStats& lane = service.priorities[p];
      s.lane_p99_ms[p] = lane.ApproxLatencyPercentileMs(0.99);
      s.lane_mean_ms[p] = lane.MeanLatencyMs();
    }
    ++s.heartbeats;
  }
  last_heartbeat_ = now;
  ever_ticked_ = true;
}

}  // namespace resest
