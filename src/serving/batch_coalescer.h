// Cross-request micro-batch coalescing for the serving path: concurrent
// /v1/estimate submissions arriving within a bounded window are merged into
// one EstimationService::SubmitBatch call, so the compiled-forest lockstep
// kernels and batch-level dedup see wide batches even when every wire
// client sends small ones. Results are demuxed back per submission — each
// caller receives exactly its own slice, in its own request order, so the
// wire responses are bit-identical to solo submissions (estimation is
// row-independent: only *which requests share a sweep* changes, never any
// request's value or status).
//
// Scheduling semantics:
//  - One bucket per TaskPriority; a submission only ever merges with its
//    own priority, and the merged batch is submitted at that priority.
//  - Submissions never merge across tenants (SubmitOptions::tenant): a
//    bucket holds one tenant's rows; a different tenant's arrival flushes
//    the pending bucket first. Multi-tenant servers run one coalescer per
//    tenant anyway — this guard keeps isolation even if one is shared.
//  - kUrgent submissions never wait: they flush their bucket immediately
//    on arrival (merging opportunistically with any urgent rows that raced
//    in), so an urgent probe cannot be held behind a bulk window.
//  - Submissions carrying a deadline bypass coalescing entirely and are
//    forwarded solo with their exact SubmitOptions — deadline expiry stays
//    per-submission, never shared with unrelated requests.
//  - A bucket flushes when its window expires, when it reaches max_rows
//    (capped by the service's max_batch_size, so a merged batch can never
//    be rejected as oversized when its parts were not), or at drain.
//
// Thread-safe; the service must outlive the coalescer. The destructor
// flushes pending buckets and blocks until every demux callback has run,
// so callers' completion handlers never fire after teardown.
#ifndef RESEST_SERVING_BATCH_COALESCER_H_
#define RESEST_SERVING_BATCH_COALESCER_H_

#include <array>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "src/serving/estimation_service.h"

namespace resest {

struct CoalescerOptions {
  /// Max time a submission waits for merge partners. 0 disables coalescing
  /// (every submission is forwarded solo).
  uint32_t window_us = 100;
  /// Rows that force a flush before the window expires; clamped to the
  /// service's max_batch_size. 0 disables coalescing.
  size_t max_rows = 1024;
};

/// Power-of-two histograms: bucket i counts observations < 2^i units (the
/// last bucket absorbs the rest) — same shape as the service's latency
/// histogram, rendered the same way in /metrics.
inline constexpr size_t kCoalesceRowsBuckets = 13;  ///< rows, up to 4096.
inline constexpr size_t kCoalesceWaitBuckets = 16;  ///< µs, up to ~32ms.

struct CoalescerStats {
  uint64_t submissions = 0;   ///< Submit() calls that entered a bucket.
  uint64_t passthrough = 0;   ///< Forwarded solo (disabled/deadline/oversize).
  uint64_t batches = 0;       ///< Merged batches sent to the service.
  uint64_t coalesced_rows = 0;  ///< Rows carried by those batches.
  // Flush-trigger breakdown (sums to `batches`).
  uint64_t flush_window = 0;
  uint64_t flush_full = 0;
  uint64_t flush_urgent = 0;
  uint64_t flush_drain = 0;
  std::array<uint64_t, kCoalesceRowsBuckets> batch_rows_histogram{};
  std::array<uint64_t, kCoalesceWaitBuckets> wait_histogram{};
  double total_wait_us = 0.0;  ///< Summed over coalesced submissions.

  double MeanRowsPerBatch() const {
    return batches == 0
               ? 0.0
               : static_cast<double>(coalesced_rows) /
                     static_cast<double>(batches);
  }
};

class BatchCoalescer {
 public:
  /// `service` must outlive the coalescer. Spawns the window-flusher thread
  /// (none when the options disable coalescing).
  BatchCoalescer(const EstimationService* service,
                 CoalescerOptions options = {});
  ~BatchCoalescer();

  BatchCoalescer(const BatchCoalescer&) = delete;
  BatchCoalescer& operator=(const BatchCoalescer&) = delete;

  /// True when submissions can actually merge (window and max_rows both
  /// non-zero).
  bool enabled() const { return enabled_; }

  /// Submits one group of rows that must be answered together; `done`
  /// receives exactly rows.size() results in row order, exactly once,
  /// possibly before this returns (degenerate batches complete inline).
  /// Deadline-carrying options, empty groups, and groups at or above the
  /// effective max bypass the window and are forwarded solo.
  void Submit(std::vector<EstimateRequest> rows, const SubmitOptions& options,
              BatchCallback done);

  /// Flushes every pending bucket now (drain hook); does not wait for the
  /// flushed batches to complete.
  void Flush();

  CoalescerStats stats() const;
  const CoalescerOptions& options() const { return options_; }

 private:
  /// One caller's share of a bucket: its demux callback plus the row range
  /// it owns within the merged batch.
  struct Entry {
    BatchCallback done;
    size_t offset = 0;
    size_t count = 0;
    std::chrono::steady_clock::time_point enqueued;
  };
  struct Bucket {
    std::vector<EstimateRequest> rows;
    std::vector<Entry> entries;
    /// Tenant owning the pending rows (set by the first entry); arrivals
    /// from any other tenant flush the bucket before starting their own.
    std::string tenant;
    /// Flush-at time, armed by the bucket's first entry.
    std::chrono::steady_clock::time_point deadline;
  };
  enum class FlushReason { kWindow, kFull, kUrgent, kDrain };
  /// A bucket's content detached under the lock, submitted outside it.
  struct PendingFlush {
    std::vector<EstimateRequest> rows;
    std::vector<Entry> entries;
    std::string tenant;
    TaskPriority priority = TaskPriority::kNormal;
    FlushReason reason = FlushReason::kWindow;
  };

  /// Moves the bucket's content into a PendingFlush (caller holds mu_).
  PendingFlush TakeLocked(size_t lane, FlushReason reason);
  /// Records stats, submits to the service, demuxes on completion. Must be
  /// called WITHOUT mu_ held (degenerate batches complete inline, and the
  /// completion callback takes the lock).
  void SubmitMerged(PendingFlush flush);
  void FlusherMain();

  const EstimationService* service_;
  CoalescerOptions options_;
  bool enabled_ = false;
  size_t effective_max_rows_ = 0;

  mutable std::mutex mu_;
  std::condition_variable flusher_cv_;
  std::condition_variable idle_cv_;
  std::array<Bucket, kNumTaskPriorities> buckets_;
  CoalescerStats stats_;
  size_t inflight_ = 0;  ///< Merged batches whose demux has not finished.
  bool stop_ = false;
  std::thread flusher_;
};

}  // namespace resest

#endif  // RESEST_SERVING_BATCH_COALESCER_H_
