#include "src/serving/estimate_cache.h"

#include <algorithm>

namespace resest {

EstimateCache::EstimateCache(EstimateCacheOptions options) {
  const size_t num_shards = std::max<size_t>(1, options.shards);
  const size_t capacity = std::max<size_t>(num_shards, options.capacity);
  shard_capacity_ = (capacity + num_shards - 1) / num_shards;
  shards_.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

uint64_t EstimateCache::HashKey(const Key& k) {
  uint64_t h = HashFeatureVector(k.features);
  h ^= k.model_version + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  h ^= (static_cast<uint64_t>(k.op) << 8 |
        static_cast<uint64_t>(k.resource)) +
       0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  return h;
}

bool EstimateCache::KeysEqual(const Key& a, const Key& b) {
  return a.model_version == b.model_version && a.op == b.op &&
         a.resource == b.resource &&
         FeatureVectorHashEqual(a.features, b.features);
}

EstimateCache::EntryList::iterator EstimateCache::FindLocked(
    Shard& shard, uint64_t hash, const Key& key) {
  auto [lo, hi] = shard.map.equal_range(hash);
  for (auto it = lo; it != hi; ++it) {
    if (KeysEqual(it->second->key, key)) return it->second;
  }
  return shard.lru.end();
}

void EstimateCache::EraseLocked(Shard& shard, EntryList::iterator node) {
  const uint64_t hash = HashKey(node->key);
  auto [lo, hi] = shard.map.equal_range(hash);
  for (auto it = lo; it != hi; ++it) {
    if (it->second == node) {
      shard.map.erase(it);
      break;
    }
  }
  shard.by_slot[SlotIndex(node->key.op, node->key.resource)].erase(
      node->slot_pos);
  shard.lru.erase(node);
}

bool EstimateCache::Lookup(const Key& key, double* value) {
  const uint64_t hash = HashKey(key);
  Shard& shard = *shards_[hash % shards_.size()];
  std::lock_guard<std::mutex> lock(shard.mu);
  auto node = FindLocked(shard, hash, key);
  if (node == shard.lru.end()) {
    ++shard.misses;
    return false;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, node);
  *value = node->value;
  ++shard.hits;
  return true;
}

void EstimateCache::Insert(const Key& key, double value) {
  const uint64_t hash = HashKey(key);
  Shard& shard = *shards_[hash % shards_.size()];
  std::lock_guard<std::mutex> lock(shard.mu);
  auto node = FindLocked(shard, hash, key);
  if (node != shard.lru.end()) {
    // Estimation is deterministic, so a refresh carries the same value;
    // still update in case two models ever race, and promote to front.
    node->value = value;
    shard.lru.splice(shard.lru.begin(), shard.lru, node);
    return;
  }
  shard.lru.emplace_front(Entry{key, value, {}});
  SlotList& slot = shard.by_slot[SlotIndex(key.op, key.resource)];
  slot.push_front(shard.lru.begin());
  shard.lru.begin()->slot_pos = slot.begin();
  shard.map.emplace(hash, shard.lru.begin());
  ++shard.insertions;
  if (shard.map.size() > shard_capacity_) {
    EraseLocked(shard, std::prev(shard.lru.end()));
    ++shard.evictions;
  }
}

void EstimateCache::Clear() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->map.clear();
    for (SlotList& slot : shard->by_slot) slot.clear();
    shard->lru.clear();
  }
}

void EstimateCache::EvictOperators(const std::vector<ModelSlotId>& ops) {
  if (ops.empty()) return;
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (const auto& [op, resource] : ops) {
      SlotList& slot = shard->by_slot[SlotIndex(op, resource)];
      while (!slot.empty()) {
        ++shard->invalidate_visited;
        EraseLocked(*shard, slot.front());
        ++shard->invalidated;
      }
    }
  }
}

EstimateCacheStats EstimateCache::stats() const {
  EstimateCacheStats s;
  s.shards.reserve(shards_.size());
  for (const auto& shard : shards_) {
    EstimateCacheShardStats slice;
    {
      std::lock_guard<std::mutex> lock(shard->mu);
      slice.hits = shard->hits;
      slice.misses = shard->misses;
      slice.insertions = shard->insertions;
      slice.evictions = shard->evictions;
      slice.invalidated = shard->invalidated;
      slice.invalidate_visited = shard->invalidate_visited;
      slice.entries = shard->map.size();
    }
    s.hits += slice.hits;
    s.misses += slice.misses;
    s.insertions += slice.insertions;
    s.evictions += slice.evictions;
    s.invalidated += slice.invalidated;
    s.invalidate_visited += slice.invalidate_visited;
    s.entries += slice.entries;
    s.shards.push_back(slice);
  }
  return s;
}

}  // namespace resest
