#include "src/serving/estimate_status.h"

namespace resest {

const char* EstimateStatusName(EstimateStatus s) {
  switch (s) {
    case EstimateStatus::kOk:
      return "OK";
    case EstimateStatus::kModelNotFound:
      return "MODEL_NOT_FOUND";
    case EstimateStatus::kInvalidRequest:
      return "INVALID_REQUEST";
    case EstimateStatus::kBatchTooLarge:
      return "BATCH_TOO_LARGE";
    case EstimateStatus::kInternalError:
      return "INTERNAL_ERROR";
    case EstimateStatus::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case EstimateStatus::kNumEstimateStatuses:
      break;
  }
  return "UNKNOWN";
}

bool ParseEstimateStatus(const std::string& name, EstimateStatus* out) {
  for (size_t i = 0; i < kNumEstimateStatuses; ++i) {
    const EstimateStatus s = static_cast<EstimateStatus>(i);
    if (name == EstimateStatusName(s)) {
      *out = s;
      return true;
    }
  }
  return false;
}

int EstimateStatusHttpCode(EstimateStatus s) {
  switch (s) {
    case EstimateStatus::kOk:
      return 200;
    case EstimateStatus::kModelNotFound:
      return 503;
    case EstimateStatus::kInvalidRequest:
      return 400;
    case EstimateStatus::kBatchTooLarge:
      return 413;
    case EstimateStatus::kInternalError:
      return 500;
    case EstimateStatus::kDeadlineExceeded:
      return 504;
    case EstimateStatus::kNumEstimateStatuses:
      break;
  }
  return 500;
}

}  // namespace resest
