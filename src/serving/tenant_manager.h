// Multi-tenant serving: one estimation universe per tenant, behind one
// server process (ROADMAP's "many small tenants, skewed traffic, isolation
// guarantees" item). A TenantManager owns, per tenant:
//
//  - a ModelRegistry slot-space: the tenant's models are published under
//    "<model>@<tenant>" (the default tenant keeps the bare name), and
//    registry versions are globally monotonic across names — so two
//    tenants' slot-version cache keys can never collide, and one tenant's
//    refit publish cannot invalidate another tenant's cache entries;
//  - an EstimationService with its own partitioned EstimateCache region
//    (independent capacity, eviction and per-shard stats): a tenant
//    flooding its cache evicts only its own entries;
//  - a BatchCoalescer (optional): cross-request micro-batches merge only
//    within the tenant;
//  - a WAL-backed observation-log directory (`<data-dir>/<tenant>/`; the
//    default tenant keeps the legacy `<data-dir>` root so single-tenant
//    deployments recover unchanged) with its own LogBounds cap and
//    RefitPolicy, via a per-tenant IncrementalTrainer.
//
// The shared pieces are the ThreadPool (priority lanes arbitrate CPU
// across tenants at chunk granularity) and the ModelRegistry map itself.
//
// Heartbeat: Heartbeat() is designed to hang off the HTTP server's event-
// loop sweep (HttpServerOptions::on_sweep). It self-rate-limits to
// heartbeat_interval_ms and aggregates per-tenant qps, cache pressure,
// observation-log bytes and per-lane latency into TenantStats snapshots —
// exported as resest_tenant_*{tenant="..."} metric families and on
// GET /v1/tenants, so a supervisor can watch skew and rebalance capacity.
#ifndef RESEST_SERVING_TENANT_MANAGER_H_
#define RESEST_SERVING_TENANT_MANAGER_H_

#include <array>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/serving/batch_coalescer.h"
#include "src/serving/estimation_service.h"
#include "src/serving/model_registry.h"
#include "src/training/incremental_trainer.h"

namespace resest {

/// The tenant every request without an explicit id belongs to.
inline constexpr char kDefaultTenant[] = "default";

/// Tenant ids become directory and metric-label names, so they are kept
/// boring: 1..64 chars, first alphanumeric, rest alphanumeric or '.', '_',
/// '-' (never '/', '@' or anything needing escapes).
inline constexpr size_t kMaxTenantIdLength = 64;
bool IsValidTenantId(const std::string& id);

/// Approximate resident bytes per estimate-cache entry (key + value + LRU/
/// index/table overhead) — the conversion factor behind --tenant-cache-mb.
inline constexpr size_t kApproxCacheEntryBytes = 512;

/// Template applied to every tenant the manager creates.
struct TenantOptions {
  /// Per-tenant service template; model_name is the *base* name (tenant t
  /// serves "<model_name>@<t>", the default tenant serves it verbatim) and
  /// cache_capacity/cache_shards size each tenant's own cache region.
  ServiceOptions service;
  /// Per-tenant coalescer; disabled entirely when enable_coalescing is off.
  CoalescerOptions coalescer;
  bool enable_coalescing = true;
  /// Durable observation logs root; empty = no trainers (estimate-only
  /// tenants). Tenant t logs under "<data_dir>/<t>" (default tenant: the
  /// root itself, matching single-tenant deployments).
  std::string data_dir;
  TrainOptions train;
  RefitPolicy refit_policy;
  LogBounds log_bounds;
  /// Observation-log memory cap override for *named* tenants
  /// (--tenant-obslog-cap-mb); 0 = named tenants use log_bounds unchanged.
  /// The default tenant always uses log_bounds (single-tenant compat).
  size_t named_obslog_cap_bytes = 0;
  /// Heartbeat self-rate-limit; Heartbeat() calls inside the interval are
  /// no-ops.
  uint32_t heartbeat_interval_ms = 1000;
};

/// One tenant's aggregated load/pressure snapshot, refreshed by the
/// heartbeat sweep. Counters are lifetime; qps is over the last heartbeat
/// window (an idle tenant ages back to 0 within one interval).
struct TenantStats {
  std::string tenant;
  std::string model_name;
  uint64_t model_version = 0;
  uint64_t requests = 0;  ///< Estimates served OK.
  uint64_t batches = 0;
  uint64_t deadline_expired = 0;
  double qps = 0.0;
  // Cache region.
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_evictions = 0;
  size_t cache_entries = 0;
  size_t cache_capacity = 0;
  double cache_hit_rate = 0.0;
  double cache_pressure = 0.0;  ///< entries / capacity, in [0, 1].
  // Observation logs (zero when the tenant has no trainer).
  bool durable = false;
  uint64_t obslog_bytes = 0;
  uint64_t obslog_pending_rows = 0;
  uint64_t wal_records = 0;
  // Per-lane batch latency (lifetime histograms; index = TaskPriority).
  std::array<double, kNumTaskPriorities> lane_p99_ms{};
  std::array<double, kNumTaskPriorities> lane_mean_ms{};
  uint64_t heartbeats = 0;  ///< Sweep ticks this snapshot has seen.
};

class TenantManager {
 public:
  /// One tenant's serving universe. `service` precedes `coalescer` so the
  /// coalescer (which holds a service pointer) is destroyed first.
  struct Tenant {
    std::string id;
    std::string model_name;
    std::unique_ptr<EstimationService> service;
    std::unique_ptr<BatchCoalescer> coalescer;   ///< Null when disabled.
    std::unique_ptr<IncrementalTrainer> trainer; ///< Null when not durable.

    // Heartbeat bookkeeping (guarded by the manager's stats_mu_).
    uint64_t hb_last_requests = 0;
    std::chrono::steady_clock::time_point hb_last_tick{};
    TenantStats snapshot;
  };

  /// `registry` and `pool` are shared across tenants and must outlive the
  /// manager. No tenants exist yet — AddTenant() each one (including
  /// kDefaultTenant) at startup.
  TenantManager(ModelRegistry* registry, ThreadPool* pool,
                TenantOptions options);

  /// Creates tenant `id` (idempotent: an existing tenant is returned as
  /// is). Null on an invalid id or on WAL-open failure, with the reason in
  /// *error. `recovery` (optional) receives the tenant's WAL replay stats.
  /// Not safe to race with serving traffic — register tenants at startup.
  Tenant* AddTenant(const std::string& id, std::string* error = nullptr,
                    RecoveryStats* recovery = nullptr);

  /// The tenant named `id` ("" resolves to the default tenant); null when
  /// unknown — the wire layer answers 404, never auto-creates.
  Tenant* Resolve(const std::string& id);
  const Tenant* Resolve(const std::string& id) const;

  /// Registered tenant ids, registration order (default first by
  /// convention).
  std::vector<std::string> TenantIds() const;
  size_t tenant_count() const { return tenants_.size(); }

  /// Publishes `estimator` under every tenant's model name (each gets its
  /// own globally unique version -> disjoint slot-version key spaces) and
  /// attaches each durable tenant's trainer to its published baseline.
  /// Returns the default tenant's version, 0 if it has none.
  uint64_t PublishToAll(std::shared_ptr<const ResourceEstimator> estimator);

  /// RefitAndPublish every durable tenant against its own model name and
  /// service (one tenant's publish invalidates only its own cache). Returns
  /// how many tenants actually published a delta.
  size_t RefitTenants();

  /// Drain hook: Checkpoint + seal every durable tenant's WAL. False if
  /// any tenant failed (all are still attempted).
  bool DrainAll();

  /// The heartbeat/aging sweep body (hang it off
  /// HttpServerOptions::on_sweep). Thread-safe, self-rate-limited to
  /// heartbeat_interval_ms; refreshes every tenant's TenantStats.
  void Heartbeat();

  /// TenantStats snapshots, one per tenant. Forces an initial tick so the
  /// first scrape never sees empty snapshots; between heartbeats the data
  /// is at most one interval stale.
  std::vector<TenantStats> stats() const;

  const TenantOptions& options() const { return options_; }

 private:
  void TickLocked(std::chrono::steady_clock::time_point now) const;

  ModelRegistry* const registry_;
  ThreadPool* const pool_;
  const TenantOptions options_;

  /// Registration-ordered; pointers handed out stay valid for the
  /// manager's lifetime (unique_ptr storage).
  std::vector<std::unique_ptr<Tenant>> tenants_;

  mutable std::mutex stats_mu_;
  mutable std::chrono::steady_clock::time_point last_heartbeat_{};
  mutable bool ever_ticked_ = false;
};

}  // namespace resest

#endif  // RESEST_SERVING_TENANT_MANAGER_H_
