// Sharded, bounded, version-keyed memoization of per-operator estimates.
//
// The paper's deployment sits inside a query optimizer, where the same
// (operator, feature-vector) pair recurs across thousands of candidate
// plans in one optimization session. Model inference is deterministic, so
// the service memoizes it across requests under the key
//   (model_version, operator type, resource, feature vector)
// Keying by model version makes invalidation automatic: a ModelRegistry
// hot-swap changes the version, every stale entry stops matching, and the
// per-shard LRU bound reclaims the dead entries under insertion pressure.
//
// Entries hold the exact double produced by
// ResourceEstimator::EstimateFromFeatures, so a hit is bit-identical to
// recomputing. Feature-vector equality is bitwise (see
// FeatureVectorHashEqual): a spurious mismatch costs one miss, while a
// value-based match could alias distinct inputs.
//
// All methods are thread-safe; shards are independently locked so readers
// of different shards never contend.
#ifndef RESEST_SERVING_ESTIMATE_CACHE_H_
#define RESEST_SERVING_ESTIMATE_CACHE_H_

#include <array>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/core/features.h"
#include "src/engine/plan.h"

namespace resest {

struct EstimateCacheOptions {
  size_t capacity = 64 * 1024;  ///< Total entries across all shards.
  size_t shards = 16;           ///< Clamped to at least 1.
};

/// Hit fraction of a (hits, misses) counter pair; 0 when nothing was
/// counted. Shared by EstimateCacheStats and ServiceStats.
inline double CacheHitRate(uint64_t hits, uint64_t misses) {
  const uint64_t total = hits + misses;
  return total == 0 ? 0.0
                    : static_cast<double>(hits) / static_cast<double>(total);
}

/// One shard's slice of the counters. Feature vectors are spread over
/// shards by hash, so a shard whose traffic dwarfs the others flags a
/// skewed feature distribution (a few hot operator keys) that the LRU
/// bound of that single shard then thrashes on.
struct EstimateCacheShardStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;  ///< Entries dropped by the shard's LRU bound.
  uint64_t invalidated = 0;  ///< Entries dropped by scoped EvictOperators.
  /// Entries EvictOperators examined while holding the shard mutex. The
  /// per-slot index makes this equal `invalidated` (only matching entries
  /// are ever visited); a regression back to a full LRU scan shows up as
  /// visited >> invalidated, which tests/estimate_cache_test.cc pins.
  uint64_t invalidate_visited = 0;
  size_t entries = 0;      ///< Current size (point-in-time, not monotonic).

  double HitRate() const { return CacheHitRate(hits, misses); }
};

/// Monotonic counters plus the current entry count, totalled across
/// shards; `shards` holds the per-shard breakdown in shard order.
struct EstimateCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;  ///< Entries dropped by the LRU bound.
  uint64_t invalidated = 0;  ///< Entries dropped by scoped EvictOperators.
  uint64_t invalidate_visited = 0;  ///< Entries examined by EvictOperators.
  size_t entries = 0;      ///< Current size (point-in-time, not monotonic).
  std::vector<EstimateCacheShardStats> shards;

  double HitRate() const { return CacheHitRate(hits, misses); }
};

/// Thread-safe sharded LRU map from (model_version, op, resource, features)
/// to a memoized per-operator estimate.
class EstimateCache {
 public:
  struct Key {
    uint64_t model_version = 0;
    OpType op = OpType::kTableScan;
    Resource resource = Resource::kCpu;
    FeatureVector features{};
  };

  explicit EstimateCache(EstimateCacheOptions options = {});

  /// True (and *value set) on a hit; promotes the entry to most-recent.
  bool Lookup(const Key& key, double* value);

  /// Inserts or refreshes an entry, evicting the shard's least-recently-used
  /// entry when the shard is at its bound.
  void Insert(const Key& key, double value);

  /// Drops every entry (counters are retained). Used when the service
  /// observes a *full* model hot-swap: version keying already guarantees
  /// stale entries never hit, Clear just reclaims their space immediately.
  void Clear();

  /// Scoped invalidation for a delta publish: drops only entries whose
  /// (op, resource) is in `ops`, across all versions — the refitted slots'
  /// old entries are the only ones a delta makes dead, so every other
  /// operator's entries survive (and keep hitting, since their slot-version
  /// keys are unchanged across the swap). Counters are retained; dropped
  /// entries count under `invalidated`, not `evictions`.
  ///
  /// Cost: O(matching entries) per shard, via the per-slot membership index
  /// — the shard mutex is held only long enough to unlink the refitted
  /// slots' own entries, so a wide delta refit cannot stall concurrent
  /// urgent Lookups behind a full LRU scan.
  void EvictOperators(const std::vector<ModelSlotId>& ops);

  EstimateCacheStats stats() const;
  size_t capacity() const { return shard_capacity_ * shards_.size(); }

 private:
  struct Entry;
  using EntryList = std::list<Entry>;
  /// Per-(op, resource) membership list: iterators into the shard's LRU.
  using SlotList = std::list<EntryList::iterator>;

  /// One cached estimate. Besides the key/value it carries its position in
  /// the owning shard's per-slot membership list, so unlinking on LRU
  /// eviction stays O(1) and scoped invalidation never scans non-matching
  /// entries.
  struct Entry {
    Key key;
    double value = 0.0;
    SlotList::iterator slot_pos{};
  };

  static uint64_t HashKey(const Key& k);
  static bool KeysEqual(const Key& a, const Key& b);
  static size_t SlotIndex(OpType op, Resource resource) {
    return static_cast<size_t>(op) * static_cast<size_t>(kNumResources) +
           static_cast<size_t>(resource);
  }

  struct Shard {
    std::mutex mu;
    /// Front = most recently used.
    EntryList lru;
    /// Keyed by the precomputed key hash (computed once per Lookup/Insert);
    /// hash collisions are resolved by KeysEqual against the list node, so
    /// each full Key is stored exactly once (in the LRU node).
    std::unordered_multimap<uint64_t, EntryList::iterator> map;
    /// Entries grouped by (op, resource) — the EvictOperators index.
    std::array<SlotList, kNumModelSlots> by_slot;
    // Counters live with the shard (guarded by `mu`, which Lookup/Insert
    // already hold) so stats can report the per-shard traffic breakdown.
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;
    uint64_t invalidated = 0;
    uint64_t invalidate_visited = 0;
  };

  /// The list iterator under (hash, key) in this shard, or lru.end().
  static EntryList::iterator FindLocked(Shard& shard, uint64_t hash,
                                        const Key& key);
  /// Unlinks `node` from the hash map and its slot list, then erases it
  /// from the LRU. Caller holds the shard mutex and accounts the removal.
  static void EraseLocked(Shard& shard, EntryList::iterator node);

  std::vector<std::unique_ptr<Shard>> shards_;
  size_t shard_capacity_;
};

}  // namespace resest

#endif  // RESEST_SERVING_ESTIMATE_CACHE_H_
