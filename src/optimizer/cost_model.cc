#include "src/optimizer/cost_model.h"

#include <algorithm>
#include <cmath>

namespace resest {

namespace {
// Classic weighted-count constants (arbitrary optimizer units).
constexpr double kCpuPerRow = 0.0011;
constexpr double kCpuPerSeek = 0.0040;
constexpr double kCpuPerCompare = 0.0016;
constexpr double kCpuPerHash = 0.0017;
constexpr double kCpuPerProbe = 0.0011;
constexpr double kCpuPerOutputRow = 0.0009;
constexpr double kCpuPerFilterRow = 0.0005;
constexpr double kCpuPerAggRow = 0.0015;
constexpr double kCpuPerScalar = 0.0006;
constexpr double kIoPerPage = 0.03;

double Log2Safe(double x) { return std::log2(std::max(2.0, x)); }
}  // namespace

CostEstimate CostModel::NodeCost(const PlanNode& node) const {
  CostEstimate c;
  const double out = node.est.rows_out;
  const double in0 = node.est.rows_in[0];
  const double in1 = node.est.rows_in[1];

  switch (node.type) {
    case OpType::kTableScan: {
      const Table* t = db_->FindTable(node.table);
      const double pages = t ? static_cast<double>(t->data_pages()) : 1.0;
      c.io = pages * kIoPerPage;
      c.cpu = (t ? static_cast<double>(t->row_count()) : out) * kCpuPerRow;
      break;
    }
    case OpType::kIndexSeek: {
      const Table* t = db_->FindTable(node.table);
      double depth = 2.0, per_leaf = 100.0;
      if (t != nullptr) {
        const int col = t->FindColumn(node.seek_column);
        const Index* idx = col >= 0 ? t->IndexOn(col) : nullptr;
        if (idx != nullptr) {
          depth = static_cast<double>(idx->depth());
          per_leaf = static_cast<double>(idx->entries_per_leaf());
        }
      }
      c.io = (depth + out / per_leaf) * kIoPerPage;
      c.cpu = depth * kCpuPerSeek + out * kCpuPerRow;
      break;
    }
    case OpType::kFilter:
      c.cpu = in0 * kCpuPerFilterRow *
              static_cast<double>(std::max<size_t>(1, node.predicates.size()));
      break;
    case OpType::kSort:
      // n log n comparisons; no modeling of spills or key widths.
      c.cpu = in0 * Log2Safe(in0) * kCpuPerCompare;
      break;
    case OpType::kTop:
      c.cpu = out * kCpuPerRow;
      break;
    case OpType::kHashJoin:
      c.cpu = in1 * kCpuPerHash + in0 * kCpuPerProbe + out * kCpuPerOutputRow;
      break;
    case OpType::kMergeJoin:
      c.cpu = (in0 + in1) * kCpuPerCompare + out * kCpuPerOutputRow;
      break;
    case OpType::kNestedLoopJoin:
      c.cpu = in0 * in1 * 0.0002 + out * kCpuPerOutputRow;
      break;
    case OpType::kIndexNestedLoopJoin: {
      // Flat per-seek cost: ignores that each probe costs O(log inner) and
      // ignores the batch-sort optimization entirely.
      const Table* t = db_->FindTable(node.inner_table);
      double depth = 2.0;
      if (t != nullptr) {
        const int col = t->FindColumn(node.inner_key);
        const Index* idx = col >= 0 ? t->IndexOn(col) : nullptr;
        if (idx != nullptr) depth = static_cast<double>(idx->depth());
      }
      c.cpu = in0 * kCpuPerSeek + out * kCpuPerOutputRow;
      c.io = in0 * depth * kIoPerPage;
      break;
    }
    case OpType::kHashAggregate:
      c.cpu = in0 * kCpuPerAggRow + out * kCpuPerHash;
      break;
    case OpType::kStreamAggregate:
      c.cpu = in0 * kCpuPerAggRow * 0.5;
      break;
    case OpType::kComputeScalar:
      c.cpu = in0 * kCpuPerScalar * static_cast<double>(node.num_expressions);
      break;
  }
  return c;
}

void CostModel::Annotate(PlanNode* node) const {
  double children_total = 0.0;
  for (auto& child : node->children) {
    Annotate(child.get());
    children_total += child->est.total_cost;
  }
  const CostEstimate c = NodeCost(*node);
  node->est.cpu_cost = c.cpu;
  node->est.io_cost = c.io;
  node->est.total_cost = c.total() + children_total;
}

}  // namespace resest
