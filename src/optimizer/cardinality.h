// Histogram-based cardinality estimation with textbook assumptions
// (per-bucket uniformity, cross-predicate independence, join containment).
//
// These assumptions fail in realistic ways on skewed/correlated data, which
// is exactly the estimation bias the paper's "optimizer-estimated features"
// experiments (Tables 7-9) exercise.
#ifndef RESEST_OPTIMIZER_CARDINALITY_H_
#define RESEST_OPTIMIZER_CARDINALITY_H_

#include <string>
#include <vector>

#include "src/engine/plan.h"
#include "src/storage/catalog.h"

namespace resest {

class CardinalityEstimator {
 public:
  explicit CardinalityEstimator(const Database* db) : db_(db) {}

  /// Selectivity (0..1) of one predicate on a base-table column.
  double PredicateSelectivity(const std::string& table,
                              const Predicate& pred) const;

  /// Combined selectivity of a conjunction (independence assumption).
  double ConjunctionSelectivity(const std::string& table,
                                const std::vector<Predicate>& preds) const;

  /// Estimated output rows of scanning `table` with `preds`.
  double ScanRows(const std::string& table,
                  const std::vector<Predicate>& preds) const;

  /// Estimated distinct values of a base column (from statistics).
  double DistinctValues(const std::string& table, const std::string& column) const;

  /// Estimated rows of an equi-join given input cardinalities and the
  /// base-column distinct counts of both keys (containment assumption).
  static double JoinRows(double left_rows, double right_rows,
                         double left_distinct, double right_distinct);

  /// Estimated number of groups when grouping `rows` input rows by columns
  /// with the given distinct counts (capped product formula).
  static double GroupCount(double rows, const std::vector<double>& distincts);

 private:
  const Database* db_;
};

}  // namespace resest

#endif  // RESEST_OPTIMIZER_CARDINALITY_H_
