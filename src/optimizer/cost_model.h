// The hand-crafted optimizer cost model.
//
// Deliberately built the way classical optimizers cost plans: weighted tuple
// counts and page counts, with *no* modeling of row widths, cache effects,
// external-sort passes, hash spills, or the nested-loop batch-sort
// optimization. Its systematic errors against the execution engine's actual
// behaviour reproduce the gap in the paper's Figure 1, and it is the basis of
// the OPT competitor (optimizer estimate × per-operator adjustment factor).
#ifndef RESEST_OPTIMIZER_COST_MODEL_H_
#define RESEST_OPTIMIZER_COST_MODEL_H_

#include "src/engine/plan.h"
#include "src/storage/catalog.h"

namespace resest {

/// Optimizer cost of a single operator, split into CPU and I/O components
/// (in the optimizer's own arbitrary units, like real optimizers).
struct CostEstimate {
  double cpu = 0.0;
  double io = 0.0;
  double total() const { return cpu + io; }
};

class CostModel {
 public:
  explicit CostModel(const Database* db) : db_(db) {}

  /// Local (non-cumulative) cost of `node`, which must already carry
  /// cardinality annotations in node->est.
  CostEstimate NodeCost(const PlanNode& node) const;

  /// Fills node->est.cpu_cost / io_cost / total_cost over a whole subtree
  /// (total_cost is cumulative over children, like real optimizer output).
  void Annotate(PlanNode* node) const;

 private:
  const Database* db_;
};

}  // namespace resest

#endif  // RESEST_OPTIMIZER_COST_MODEL_H_
