// Turns logical QuerySpecs into annotated physical plans.
//
// The builder performs the classical optimizer steps: access-path selection
// (scan vs. index seek), greedy join ordering, cost-based physical join
// selection (hash / merge / index nested loops), aggregation strategy choice
// (hash vs. sort+stream) and final sort/top placement. Every node is
// annotated with estimated cardinalities (from the histogram estimator) and
// optimizer costs (from the hand-crafted cost model) so the ML layer can be
// driven by either exact or optimizer-estimated features.
#ifndef RESEST_OPTIMIZER_PLAN_BUILDER_H_
#define RESEST_OPTIMIZER_PLAN_BUILDER_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/engine/plan.h"
#include "src/optimizer/cardinality.h"
#include "src/optimizer/cost_model.h"
#include "src/optimizer/query_spec.h"
#include "src/storage/catalog.h"

namespace resest {

class PlanBuilder {
 public:
  explicit PlanBuilder(const Database* db)
      : db_(db), cardinality_(db), cost_model_(db) {}

  /// Builds an annotated physical plan for the query.
  Plan Build(const QuerySpec& spec) const;

 private:
  /// A partially built subtree with bookkeeping for the greedy join search.
  struct Sub {
    std::unique_ptr<PlanNode> node;
    double rows = 0.0;        ///< Estimated output rows.
    int64_t width = 0;        ///< Output row width in bytes.
    std::set<int> tables;     ///< QuerySpec table indexes covered.
  };

  Sub BuildAccessPath(const QuerySpec& spec, int table_idx) const;
  Sub AddJoin(const QuerySpec& spec, Sub current, int edge_idx) const;

  /// Columns of `table_idx` needed above the access path (projection,
  /// join keys, grouping, ordering).
  std::vector<std::string> NeededColumns(const QuerySpec& spec,
                                         int table_idx) const;

  int64_t ColumnWidth(const std::string& table, const std::string& column) const;

  const Database* db_;
  CardinalityEstimator cardinality_;
  CostModel cost_model_;
};

}  // namespace resest

#endif  // RESEST_OPTIMIZER_PLAN_BUILDER_H_
