#include "src/optimizer/plan_builder.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace resest {

namespace {

std::string Unqualify(const std::string& name) {
  const size_t dot = name.rfind('.');
  return dot == std::string::npos ? name : name.substr(dot + 1);
}

std::string TableOf(const std::string& qualified) {
  const size_t dot = qualified.rfind('.');
  return dot == std::string::npos ? std::string() : qualified.substr(0, dot);
}

}  // namespace

int64_t PlanBuilder::ColumnWidth(const std::string& table,
                                 const std::string& column) const {
  const Table* t = db_->FindTable(table);
  if (t == nullptr) return 8;
  const int c = t->FindColumn(Unqualify(column));
  return c < 0 ? 8 : t->column(static_cast<size_t>(c)).def.width_bytes;
}

std::vector<std::string> PlanBuilder::NeededColumns(const QuerySpec& spec,
                                                    int table_idx) const {
  const TableRef& ref = spec.tables[static_cast<size_t>(table_idx)];
  std::vector<std::string> cols = ref.columns;
  auto add = [&cols](const std::string& c) {
    if (std::find(cols.begin(), cols.end(), c) == cols.end()) cols.push_back(c);
  };
  if (cols.empty()) {
    // No explicit projection: take all base columns.
    const Table* t = db_->FindTable(ref.table);
    if (t != nullptr) {
      for (size_t i = 0; i < t->column_count(); ++i)
        cols.push_back(t->column(i).def.name);
    }
    return cols;
  }
  for (const auto& e : spec.joins) {
    if (e.left == table_idx) add(e.left_col);
    if (e.right == table_idx) add(e.right_col);
  }
  for (const auto& g : spec.group_columns) {
    if (TableOf(g) == ref.table) add(Unqualify(g));
  }
  for (const auto& o : spec.order_by) {
    if (TableOf(o) == ref.table) add(Unqualify(o));
  }
  return cols;
}

PlanBuilder::Sub PlanBuilder::BuildAccessPath(const QuerySpec& spec,
                                              int table_idx) const {
  const TableRef& ref = spec.tables[static_cast<size_t>(table_idx)];
  const Table* t = db_->FindTable(ref.table);
  if (t == nullptr) throw std::runtime_error("unknown table " + ref.table);

  const std::vector<std::string> cols = NeededColumns(spec, table_idx);
  int64_t width = 0;
  for (const auto& c : cols) width += ColumnWidth(ref.table, c);

  const double out_rows = cardinality_.ScanRows(ref.table, ref.predicates);

  // Candidate 1: full table scan.
  auto scan = std::make_unique<PlanNode>();
  scan->type = OpType::kTableScan;
  scan->table = ref.table;
  scan->output_columns = cols;
  scan->predicates = ref.predicates;
  scan->est.rows_out = out_rows;
  scan->est.rows_in[0] = static_cast<double>(t->row_count());
  scan->est.bytes_in[0] = static_cast<double>(t->row_count() * t->row_width());
  scan->est.bytes_out = out_rows * static_cast<double>(width);
  cost_model_.Annotate(scan.get());

  // Candidate 2: index seek on the most selective indexed predicate.
  std::unique_ptr<PlanNode> seek;
  double best_sel = 0.35;  // only consider reasonably selective seeks
  for (const auto& p : ref.predicates) {
    const int c = t->FindColumn(Unqualify(p.column));
    if (c < 0 || t->IndexOn(c) == nullptr) continue;
    const double sel = cardinality_.PredicateSelectivity(ref.table, p);
    if (sel >= best_sel) continue;
    best_sel = sel;
    seek = std::make_unique<PlanNode>();
    seek->type = OpType::kIndexSeek;
    seek->table = ref.table;
    seek->seek_column = Unqualify(p.column);
    seek->output_columns = cols;
    seek->predicates = ref.predicates;
    seek->est.rows_out = out_rows;
    seek->est.rows_in[0] =
        static_cast<double>(t->row_count()) * sel;  // entries touched
    seek->est.bytes_in[0] = seek->est.rows_in[0] * static_cast<double>(t->row_width());
    seek->est.bytes_out = out_rows * static_cast<double>(width);
    cost_model_.Annotate(seek.get());
  }

  Sub sub;
  sub.rows = out_rows;
  sub.width = width;
  sub.tables.insert(table_idx);
  if (seek != nullptr && seek->est.total_cost < scan->est.total_cost) {
    sub.node = std::move(seek);
  } else {
    sub.node = std::move(scan);
  }
  return sub;
}

PlanBuilder::Sub PlanBuilder::AddJoin(const QuerySpec& spec, Sub current,
                                      int edge_idx) const {
  const JoinEdge& edge = spec.joins[static_cast<size_t>(edge_idx)];
  // Orient the edge: `cur_col` comes from the current subtree, `new_idx` is
  // the table being added.
  const bool left_in_cur = current.tables.count(edge.left) > 0;
  const int new_idx = left_in_cur ? edge.right : edge.left;
  const std::string cur_table =
      spec.tables[static_cast<size_t>(left_in_cur ? edge.left : edge.right)].table;
  const std::string cur_col = left_in_cur ? edge.left_col : edge.right_col;
  const std::string new_col = left_in_cur ? edge.right_col : edge.left_col;
  const TableRef& new_ref = spec.tables[static_cast<size_t>(new_idx)];
  const Table* new_table = db_->FindTable(new_ref.table);
  if (new_table == nullptr) throw std::runtime_error("unknown table " + new_ref.table);

  const double d_cur = cardinality_.DistinctValues(cur_table, cur_col);
  const double d_new = cardinality_.DistinctValues(new_ref.table, new_col);
  const double new_sel =
      cardinality_.ConjunctionSelectivity(new_ref.table, new_ref.predicates);

  Sub inner_ap = BuildAccessPath(spec, new_idx);
  const double join_rows =
      CardinalityEstimator::JoinRows(current.rows, inner_ap.rows, d_cur, d_new);

  const std::string cur_key = cur_table + "." + cur_col;
  const std::string new_key = new_ref.table + "." + new_col;

  // --- Option A: hash join (build side = smaller input). ---
  auto MakeHashJoin = [&](Sub cur, Sub inner) {
    auto node = std::make_unique<PlanNode>();
    node->type = OpType::kHashJoin;
    const bool cur_is_build = cur.rows < inner.rows;
    Sub& probe = cur_is_build ? inner : cur;
    Sub& build = cur_is_build ? cur : inner;
    node->left_key = cur_is_build ? new_key : cur_key;
    node->right_key = cur_is_build ? cur_key : new_key;
    node->est.rows_in[0] = probe.rows;
    node->est.rows_in[1] = build.rows;
    node->est.bytes_in[0] = probe.rows * static_cast<double>(probe.width);
    node->est.bytes_in[1] = build.rows * static_cast<double>(build.width);
    node->est.rows_out = join_rows;
    node->est.bytes_out = join_rows * static_cast<double>(cur.width + inner.width);
    node->children.push_back(std::move(probe.node));
    node->children.push_back(std::move(build.node));
    cost_model_.Annotate(node.get());
    return node;
  };

  // --- Option B: merge join (sort both inputs). ---
  auto MakeMergeJoin = [&](Sub cur, Sub inner) {
    auto sort_l = std::make_unique<PlanNode>();
    sort_l->type = OpType::kSort;
    sort_l->sort_columns = {cur_key};
    sort_l->est.rows_out = cur.rows;
    sort_l->est.rows_in[0] = cur.rows;
    sort_l->est.bytes_in[0] = cur.rows * static_cast<double>(cur.width);
    sort_l->est.bytes_out = sort_l->est.bytes_in[0];
    sort_l->children.push_back(std::move(cur.node));

    auto sort_r = std::make_unique<PlanNode>();
    sort_r->type = OpType::kSort;
    sort_r->sort_columns = {new_key};
    sort_r->est.rows_out = inner.rows;
    sort_r->est.rows_in[0] = inner.rows;
    sort_r->est.bytes_in[0] = inner.rows * static_cast<double>(inner.width);
    sort_r->est.bytes_out = sort_r->est.bytes_in[0];
    sort_r->children.push_back(std::move(inner.node));

    auto node = std::make_unique<PlanNode>();
    node->type = OpType::kMergeJoin;
    node->left_key = cur_key;
    node->right_key = new_key;
    node->est.rows_in[0] = cur.rows;
    node->est.rows_in[1] = inner.rows;
    node->est.bytes_in[0] = cur.rows * static_cast<double>(cur.width);
    node->est.bytes_in[1] = inner.rows * static_cast<double>(inner.width);
    node->est.rows_out = join_rows;
    node->est.bytes_out = join_rows * static_cast<double>(cur.width + inner.width);
    node->children.push_back(std::move(sort_l));
    node->children.push_back(std::move(sort_r));
    cost_model_.Annotate(node.get());
    return node;
  };

  // --- Option C: index nested loop join (inner must be indexed on the key). ---
  const int inner_col_idx = new_table->FindColumn(new_col);
  const Index* inner_index =
      inner_col_idx >= 0 ? new_table->IndexOn(inner_col_idx) : nullptr;
  auto MakeInlj = [&](Sub cur) {
    auto node = std::make_unique<PlanNode>();
    node->type = OpType::kIndexNestedLoopJoin;
    node->left_key = cur_key;
    node->inner_table = new_ref.table;
    node->inner_key = new_col;
    // Inner projection must cover columns referenced by post-join filters.
    node->inner_output_columns = NeededColumns(spec, new_idx);
    for (const auto& p : new_ref.predicates) {
      const std::string c = Unqualify(p.column);
      if (std::find(node->inner_output_columns.begin(),
                    node->inner_output_columns.end(),
                    c) == node->inner_output_columns.end()) {
        node->inner_output_columns.push_back(c);
      }
    }
    int64_t inner_width = 0;
    for (const auto& c : node->inner_output_columns)
      inner_width += ColumnWidth(new_ref.table, c);
    // All matching inner rows come back; predicates are applied above.
    const double raw_join_rows = CardinalityEstimator::JoinRows(
        current.rows, static_cast<double>(new_table->row_count()), d_cur, d_new);
    node->est.rows_in[0] = current.rows;
    node->est.rows_in[1] = static_cast<double>(new_table->row_count());
    node->est.bytes_in[0] = current.rows * static_cast<double>(current.width);
    node->est.bytes_in[1] =
        static_cast<double>(new_table->row_count() * new_table->row_width());
    node->est.rows_out = raw_join_rows;
    node->est.bytes_out =
        raw_join_rows * static_cast<double>(current.width + inner_width);
    node->children.push_back(std::move(cur.node));
    cost_model_.Annotate(node.get());

    if (new_ref.predicates.empty()) {
      return std::make_pair(std::move(node), raw_join_rows);
    }
    auto filter = std::make_unique<PlanNode>();
    filter->type = OpType::kFilter;
    for (const auto& p : new_ref.predicates) {
      Predicate q = p;
      q.column = new_ref.table + "." + Unqualify(p.column);
      filter->predicates.push_back(q);
    }
    const double filtered = std::max(1.0, raw_join_rows * new_sel);
    filter->est.rows_in[0] = raw_join_rows;
    filter->est.bytes_in[0] = node->est.bytes_out;
    filter->est.rows_out = filtered;
    filter->est.bytes_out =
        filtered * static_cast<double>(current.width + inner_width);
    filter->children.push_back(std::move(node));
    cost_model_.Annotate(filter.get());
    return std::make_pair(std::move(filter), filtered);
  };

  // Cost the candidates. Hash and merge both consume the inner access path;
  // we clone-by-rebuild since plans own their children.
  const int64_t joined_width = current.width + inner_ap.width;

  {
    // The current subtree can only be consumed once; we must decide the
    // physical operator *before* moving it. Cost candidates on synthetic
    // nodes first.
    PlanNode probe_hash;
    probe_hash.type = OpType::kHashJoin;
    probe_hash.est.rows_in[0] = std::max(current.rows, inner_ap.rows);
    probe_hash.est.rows_in[1] = std::min(current.rows, inner_ap.rows);
    probe_hash.est.rows_out = join_rows;
    const double hash_cost =
        cost_model_.NodeCost(probe_hash).total() + inner_ap.node->est.total_cost;

    PlanNode merge;
    merge.type = OpType::kMergeJoin;
    merge.est.rows_in[0] = current.rows;
    merge.est.rows_in[1] = inner_ap.rows;
    merge.est.rows_out = join_rows;
    PlanNode sort_l_probe;
    sort_l_probe.type = OpType::kSort;
    sort_l_probe.est.rows_in[0] = current.rows;
    PlanNode sort_r_probe;
    sort_r_probe.type = OpType::kSort;
    sort_r_probe.est.rows_in[0] = inner_ap.rows;
    const double merge_cost = cost_model_.NodeCost(merge).total() +
                              cost_model_.NodeCost(sort_l_probe).total() +
                              cost_model_.NodeCost(sort_r_probe).total() +
                              inner_ap.node->est.total_cost;

    double inlj_cost = std::numeric_limits<double>::infinity();
    if (inner_index != nullptr) {
      PlanNode inlj;
      inlj.type = OpType::kIndexNestedLoopJoin;
      inlj.inner_table = new_ref.table;
      inlj.inner_key = new_col;
      inlj.est.rows_in[0] = current.rows;
      inlj.est.rows_in[1] = static_cast<double>(new_table->row_count());
      inlj.est.rows_out = join_rows;
      inlj_cost = cost_model_.NodeCost(inlj).total();
    }

    Sub result;
    result.tables = current.tables;
    result.tables.insert(new_idx);
    result.width = joined_width;

    if (inlj_cost <= hash_cost && inlj_cost <= merge_cost) {
      auto [node, rows] = MakeInlj(std::move(current));
      result.node = std::move(node);
      result.rows = rows;
    } else if (merge_cost < hash_cost) {
      result.node = MakeMergeJoin(std::move(current), std::move(inner_ap));
      result.rows = join_rows;
    } else {
      result.node = MakeHashJoin(std::move(current), std::move(inner_ap));
      result.rows = join_rows;
    }
    return result;
  }
}

Plan PlanBuilder::Build(const QuerySpec& spec) const {
  if (spec.tables.empty()) throw std::runtime_error("query without tables");

  // Start the greedy join search from the smallest estimated access path.
  int start = 0;
  double best_rows = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < spec.tables.size(); ++i) {
    const double rows = cardinality_.ScanRows(spec.tables[i].table,
                                              spec.tables[i].predicates);
    if (rows < best_rows) {
      best_rows = rows;
      start = static_cast<int>(i);
    }
  }

  Sub current = BuildAccessPath(spec, start);
  std::vector<bool> used(spec.joins.size(), false);
  size_t remaining = spec.joins.size();
  while (remaining > 0) {
    // Pick the applicable edge minimizing estimated join output.
    int best_edge = -1;
    double best_out = std::numeric_limits<double>::infinity();
    for (size_t e = 0; e < spec.joins.size(); ++e) {
      if (used[e]) continue;
      const JoinEdge& edge = spec.joins[e];
      const bool l = current.tables.count(edge.left) > 0;
      const bool r = current.tables.count(edge.right) > 0;
      if (l && r) {  // both sides already joined: edge is redundant
        used[e] = true;
        --remaining;
        continue;
      }
      if (!l && !r) continue;
      const int new_idx = l ? edge.right : edge.left;
      const TableRef& nref = spec.tables[static_cast<size_t>(new_idx)];
      const double nrows =
          cardinality_.ScanRows(nref.table, nref.predicates);
      const double d1 = cardinality_.DistinctValues(
          spec.tables[static_cast<size_t>(edge.left)].table, edge.left_col);
      const double d2 = cardinality_.DistinctValues(
          spec.tables[static_cast<size_t>(edge.right)].table, edge.right_col);
      const double out =
          CardinalityEstimator::JoinRows(current.rows, nrows, d1, d2);
      if (out < best_out) {
        best_out = out;
        best_edge = static_cast<int>(e);
      }
    }
    if (best_edge < 0) {
      if (remaining > 0) throw std::runtime_error("disconnected join graph");
      break;
    }
    used[static_cast<size_t>(best_edge)] = true;
    --remaining;
    current = AddJoin(spec, std::move(current), best_edge);
  }
  if (current.tables.size() != spec.tables.size()) {
    throw std::runtime_error(
        "disconnected join graph: not every table is reachable");
  }

  // Aggregation.
  if (spec.num_aggregates > 0 || !spec.group_columns.empty()) {
    std::vector<double> distincts;
    for (const auto& g : spec.group_columns) {
      distincts.push_back(cardinality_.DistinctValues(TableOf(g), Unqualify(g)));
    }
    const double groups =
        CardinalityEstimator::GroupCount(current.rows, distincts);

    // Hash aggregate vs. sort + stream aggregate, decided by model cost.
    PlanNode hash_probe;
    hash_probe.type = OpType::kHashAggregate;
    hash_probe.est.rows_in[0] = current.rows;
    hash_probe.est.rows_out = groups;
    const double hash_cost = cost_model_.NodeCost(hash_probe).total();
    PlanNode sort_probe;
    sort_probe.type = OpType::kSort;
    sort_probe.est.rows_in[0] = current.rows;
    PlanNode stream_probe;
    stream_probe.type = OpType::kStreamAggregate;
    stream_probe.est.rows_in[0] = current.rows;
    stream_probe.est.rows_out = groups;
    const double stream_cost = cost_model_.NodeCost(sort_probe).total() +
                               cost_model_.NodeCost(stream_probe).total();

    const int64_t agg_width =
        [&] {
          int64_t w = 0;
          for (const auto& g : spec.group_columns)
            w += ColumnWidth(TableOf(g), Unqualify(g));
          return w + 8 * std::max(1, spec.num_aggregates);
        }();

    if (!spec.group_columns.empty() && stream_cost < hash_cost) {
      auto sort = std::make_unique<PlanNode>();
      sort->type = OpType::kSort;
      sort->sort_columns = spec.group_columns;
      sort->est.rows_in[0] = current.rows;
      sort->est.bytes_in[0] = current.rows * static_cast<double>(current.width);
      sort->est.rows_out = current.rows;
      sort->est.bytes_out = sort->est.bytes_in[0];
      sort->children.push_back(std::move(current.node));
      cost_model_.Annotate(sort.get());

      auto agg = std::make_unique<PlanNode>();
      agg->type = OpType::kStreamAggregate;
      agg->group_columns = spec.group_columns;
      agg->num_aggregates = std::max(1, spec.num_aggregates);
      agg->est.rows_in[0] = current.rows;
      agg->est.bytes_in[0] = current.rows * static_cast<double>(current.width);
      agg->est.rows_out = groups;
      agg->est.bytes_out = groups * static_cast<double>(agg_width);
      agg->children.push_back(std::move(sort));
      cost_model_.Annotate(agg.get());
      current.node = std::move(agg);
    } else {
      auto agg = std::make_unique<PlanNode>();
      agg->type = OpType::kHashAggregate;
      agg->group_columns = spec.group_columns;
      agg->num_aggregates = std::max(1, spec.num_aggregates);
      agg->est.rows_in[0] = current.rows;
      agg->est.bytes_in[0] = current.rows * static_cast<double>(current.width);
      agg->est.rows_out = groups;
      agg->est.bytes_out = groups * static_cast<double>(agg_width);
      agg->children.push_back(std::move(current.node));
      cost_model_.Annotate(agg.get());
      current.node = std::move(agg);
    }
    current.rows = groups;
    current.width = agg_width;
  }

  // Scalar expressions.
  if (spec.num_scalar_exprs > 0) {
    auto cs = std::make_unique<PlanNode>();
    cs->type = OpType::kComputeScalar;
    cs->num_expressions = spec.num_scalar_exprs;
    cs->est.rows_in[0] = current.rows;
    cs->est.bytes_in[0] = current.rows * static_cast<double>(current.width);
    cs->est.rows_out = current.rows;
    current.width += 8 * spec.num_scalar_exprs;
    cs->est.bytes_out = current.rows * static_cast<double>(current.width);
    cs->children.push_back(std::move(current.node));
    cost_model_.Annotate(cs.get());
    current.node = std::move(cs);
  }

  // Final ordering.
  if (!spec.order_by.empty()) {
    auto sort = std::make_unique<PlanNode>();
    sort->type = OpType::kSort;
    sort->sort_columns = spec.order_by;
    sort->est.rows_in[0] = current.rows;
    sort->est.bytes_in[0] = current.rows * static_cast<double>(current.width);
    sort->est.rows_out = current.rows;
    sort->est.bytes_out = sort->est.bytes_in[0];
    sort->children.push_back(std::move(current.node));
    cost_model_.Annotate(sort.get());
    current.node = std::move(sort);
  }

  // TOP.
  if (spec.limit > 0) {
    auto top = std::make_unique<PlanNode>();
    top->type = OpType::kTop;
    top->limit = spec.limit;
    top->est.rows_in[0] = current.rows;
    top->est.bytes_in[0] = current.rows * static_cast<double>(current.width);
    top->est.rows_out = std::min(current.rows, static_cast<double>(spec.limit));
    top->est.bytes_out = top->est.rows_out * static_cast<double>(current.width);
    top->children.push_back(std::move(current.node));
    cost_model_.Annotate(top.get());
    current.node = std::move(top);
  }

  Plan plan;
  plan.root = std::move(current.node);
  plan.database = db_->name();
  return plan;
}

}  // namespace resest
