// Logical query IR.
//
// There is no SQL parser in this reproduction; workload generators build
// QuerySpec values directly (select-project-join-aggregate blocks with
// optional ordering and limits), and the plan builder turns them into
// physical plans.
#ifndef RESEST_OPTIMIZER_QUERY_SPEC_H_
#define RESEST_OPTIMIZER_QUERY_SPEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/engine/plan.h"

namespace resest {

/// A base-table reference with pushed-down predicates and projection.
struct TableRef {
  std::string table;
  std::vector<Predicate> predicates;      ///< On unqualified column names.
  std::vector<std::string> columns;       ///< Projection; empty = all columns.
};

/// An equi-join edge between two table references.
struct JoinEdge {
  int left = 0;            ///< Index into QuerySpec::tables.
  int right = 0;
  std::string left_col;    ///< Unqualified column in tables[left].
  std::string right_col;   ///< Unqualified column in tables[right].
};

/// A logical query: SPJ block + optional aggregation / ordering / limit.
struct QuerySpec {
  std::string name;                       ///< Template id, e.g. "tpch_q3".
  std::vector<TableRef> tables;
  std::vector<JoinEdge> joins;
  std::vector<std::string> group_columns; ///< Qualified ("table.col").
  int num_aggregates = 0;                 ///< 0 = no aggregation.
  int num_scalar_exprs = 0;               ///< Projected computed expressions.
  std::vector<std::string> order_by;      ///< Qualified; empty = no sort.
  int64_t limit = 0;                      ///< 0 = no TOP.
};

}  // namespace resest

#endif  // RESEST_OPTIMIZER_QUERY_SPEC_H_
