#include "src/optimizer/cardinality.h"

#include <algorithm>
#include <cmath>

namespace resest {

double CardinalityEstimator::PredicateSelectivity(const std::string& table,
                                                  const Predicate& pred) const {
  const Table* t = db_->FindTable(table);
  if (t == nullptr) return 1.0;
  std::string col = pred.column;
  const size_t dot = col.rfind('.');
  if (dot != std::string::npos) col = col.substr(dot + 1);
  const int c = t->FindColumn(col);
  if (c < 0) return 1.0;
  const Histogram* h = db_->Stats(table, c);
  if (h == nullptr || h->total_rows() == 0) return 1.0;

  switch (pred.op) {
    case Predicate::Op::kEq:
      return h->EstimateEq(pred.lo) / static_cast<double>(h->total_rows());
    case Predicate::Op::kLe:
      return h->SelectivityRange(h->min_value(), pred.hi);
    case Predicate::Op::kGe:
      return h->SelectivityRange(pred.lo, h->max_value());
    case Predicate::Op::kBetween:
      return h->SelectivityRange(pred.lo, pred.hi);
  }
  return 1.0;
}

double CardinalityEstimator::ConjunctionSelectivity(
    const std::string& table, const std::vector<Predicate>& preds) const {
  double sel = 1.0;
  for (const auto& p : preds) sel *= PredicateSelectivity(table, p);
  return sel;
}

double CardinalityEstimator::ScanRows(const std::string& table,
                                      const std::vector<Predicate>& preds) const {
  const Table* t = db_->FindTable(table);
  if (t == nullptr) return 0.0;
  const double rows =
      static_cast<double>(t->row_count()) * ConjunctionSelectivity(table, preds);
  return std::max(1.0, rows);
}

double CardinalityEstimator::DistinctValues(const std::string& table,
                                            const std::string& column) const {
  const Table* t = db_->FindTable(table);
  if (t == nullptr) return 1.0;
  const int c = t->FindColumn(column);
  if (c < 0) return 1.0;
  const Histogram* h = db_->Stats(table, c);
  if (h == nullptr) return 1.0;
  return std::max<double>(1.0, static_cast<double>(h->total_distinct()));
}

double CardinalityEstimator::JoinRows(double left_rows, double right_rows,
                                      double left_distinct,
                                      double right_distinct) {
  const double d = std::max(1.0, std::max(left_distinct, right_distinct));
  return std::max(1.0, left_rows * right_rows / d);
}

double CardinalityEstimator::GroupCount(double rows,
                                        const std::vector<double>& distincts) {
  if (distincts.empty()) return 1.0;
  double groups = 1.0;
  for (double d : distincts) groups *= std::max(1.0, d);
  // Cannot exceed the input rows; dampen the product like real optimizers do.
  return std::max(1.0, std::min(groups, rows));
}

}  // namespace resest
