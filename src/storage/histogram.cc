#include "src/storage/histogram.h"

#include <algorithm>
#include <cmath>

namespace resest {

Histogram Histogram::Build(const std::vector<Value>& values, int max_buckets) {
  Histogram h;
  if (values.empty() || max_buckets < 1) return h;

  std::vector<Value> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  h.total_rows_ = static_cast<int64_t>(sorted.size());

  const int64_t n = h.total_rows_;
  const int64_t per_bucket = std::max<int64_t>(1, (n + max_buckets - 1) / max_buckets);

  size_t i = 0;
  while (i < sorted.size()) {
    HistogramBucket b;
    b.lo = sorted[i];
    size_t end = std::min(sorted.size(), i + static_cast<size_t>(per_bucket));
    // Never split a run of equal keys across buckets (equi-depth with
    // boundary snapping, as real systems do).
    while (end < sorted.size() && sorted[end] == sorted[end - 1]) ++end;
    b.hi = sorted[end - 1];
    b.rows = static_cast<int64_t>(end - i);
    int64_t distinct = 1;
    for (size_t j = i + 1; j < end; ++j) {
      if (sorted[j] != sorted[j - 1]) ++distinct;
    }
    b.distinct = distinct;
    h.total_distinct_ += distinct;
    h.buckets_.push_back(b);
    i = end;
  }
  return h;
}

double Histogram::EstimateEq(Value v) const {
  for (const auto& b : buckets_) {
    if (v < b.lo || v > b.hi) continue;
    // Uniformity assumption inside the bucket.
    return static_cast<double>(b.rows) / static_cast<double>(std::max<int64_t>(1, b.distinct));
  }
  return 0.0;
}

double Histogram::EstimateRange(Value lo, Value hi) const {
  if (hi < lo) return 0.0;
  double rows = 0.0;
  for (const auto& b : buckets_) {
    if (b.hi < lo || b.lo > hi) continue;
    if (lo <= b.lo && b.hi <= hi) {
      rows += static_cast<double>(b.rows);
      continue;
    }
    // Partial overlap: continuous-uniform interpolation inside the bucket.
    const double span = static_cast<double>(b.hi - b.lo) + 1.0;
    const double from = static_cast<double>(std::max(lo, b.lo));
    const double to = static_cast<double>(std::min(hi, b.hi));
    const double frac = (to - from + 1.0) / span;
    rows += static_cast<double>(b.rows) * std::clamp(frac, 0.0, 1.0);
  }
  return rows;
}

double Histogram::SelectivityRange(Value lo, Value hi) const {
  if (total_rows_ <= 0) return 0.0;
  return EstimateRange(lo, hi) / static_cast<double>(total_rows_);
}

}  // namespace resest
