// In-memory relational storage with a page model.
//
// Tables hold typed integer columns (synthetic data; widths are metadata used
// for byte accounting). The page model maps rows to fixed-size pages so the
// execution engine can count logical I/O exactly, and index metadata exposes
// B-tree depth/fanout the way a real system's catalog would.
#ifndef RESEST_STORAGE_TABLE_H_
#define RESEST_STORAGE_TABLE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace resest {

using Value = int64_t;

/// Fixed page size of the simulated buffer pool, in bytes.
inline constexpr int64_t kPageSize = 8192;
/// Fanout of simulated B-tree inner nodes (keys per inner page).
inline constexpr int64_t kIndexFanout = 256;

/// Static description of a column.
struct ColumnDef {
  std::string name;
  int width_bytes = 8;      ///< On-disk width used for byte/page accounting.
  int64_t domain = 0;       ///< Values drawn from [1, domain]; 0 = sequential key.
  double zipf_z = 0.0;      ///< Skew of the value distribution (0 = uniform).
  bool indexed = false;     ///< Whether a secondary index exists on the column.
  std::string fk_table;     ///< Non-empty if this is a foreign key.
};

/// A column: definition plus materialized values (one per row).
struct Column {
  ColumnDef def;
  std::vector<Value> data;
};

/// Secondary (or clustered-key) index: sorted (value, row) pairs plus B-tree
/// shape metadata. Lookups are binary searches; the engine charges one page
/// access per traversed level plus the touched leaf pages.
class Index {
 public:
  Index(std::string name, int column, bool clustered)
      : name_(std::move(name)), column_(column), clustered_(clustered) {}

  /// Bulk-builds the index from a column's data.
  void Build(const std::vector<Value>& values, int64_t entry_width_bytes);

  /// Row ids whose key is in [lo, hi] (inclusive), in key order.
  std::vector<int64_t> LookupRange(Value lo, Value hi) const;

  /// Number of index entries with key in [lo, hi].
  int64_t CountRange(Value lo, Value hi) const;

  const std::string& name() const { return name_; }
  int column() const { return column_; }
  bool clustered() const { return clustered_; }
  /// Number of B-tree levels, including the leaf level (>= 1).
  int depth() const { return depth_; }
  int64_t leaf_pages() const { return leaf_pages_; }
  int64_t entries_per_leaf() const { return entries_per_leaf_; }

  /// Leaf page id holding the i-th entry in key order.
  int64_t LeafPageOf(int64_t position) const {
    return entries_per_leaf_ > 0 ? position / entries_per_leaf_ : 0;
  }

  const std::vector<std::pair<Value, int64_t>>& entries() const {
    return entries_;
  }

 private:
  std::string name_;
  int column_;
  bool clustered_;
  int depth_ = 1;
  int64_t leaf_pages_ = 1;
  int64_t entries_per_leaf_ = 1;
  std::vector<std::pair<Value, int64_t>> entries_;
};

/// A heap table with a clustered layout on its first column (the synthetic
/// primary key, generated in increasing order).
class Table {
 public:
  explicit Table(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  int64_t row_count() const {
    return columns_.empty() ? 0 : static_cast<int64_t>(columns_[0].data.size());
  }
  size_t column_count() const { return columns_.size(); }

  /// Total bytes of one row (sum of column widths).
  int64_t row_width() const;
  /// Rows that fit on one data page.
  int64_t rows_per_page() const;
  /// Number of data pages occupied by the table.
  int64_t data_pages() const;
  /// Data page id that holds a given row.
  int64_t PageOfRow(int64_t row) const;

  void AddColumn(Column column) { columns_.push_back(std::move(column)); }
  const Column& column(size_t i) const { return columns_[i]; }
  Column& mutable_column(size_t i) { return columns_[i]; }

  /// Index of the column with the given name, or -1.
  int FindColumn(const std::string& name) const;

  /// Builds indexes for every column whose def requests one (plus the
  /// clustered primary-key index on column 0).
  void BuildIndexes();
  const std::vector<Index>& indexes() const { return indexes_; }
  /// The index on a column, or nullptr.
  const Index* IndexOn(int column) const;

 private:
  std::string name_;
  std::vector<Column> columns_;
  std::vector<Index> indexes_;
};

}  // namespace resest

#endif  // RESEST_STORAGE_TABLE_H_
