// Schema specifications, the generated database (catalog), and the synthetic
// data generator.
//
// The generator stands in for TPC-H dbgen + the Microsoft skew tool the paper
// uses ([2] in the paper): every non-key column is drawn from a Zipf(z)
// distribution, and table sizes scale linearly with a scale factor, so the
// experiments can vary data size (SF 1..10) and skew (z in {1, 2}) the same
// way the paper does.
#ifndef RESEST_STORAGE_CATALOG_H_
#define RESEST_STORAGE_CATALOG_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/storage/histogram.h"
#include "src/storage/table.h"

namespace resest {

/// Generator-facing description of one column.
struct ColumnSpec {
  std::string name;
  int width_bytes = 8;
  int64_t domain = 0;        ///< Values in [1, domain]; 0 = sequential key.
  double zipf_z = -1.0;      ///< Skew; negative = use the database default.
  bool indexed = false;
  std::string fk_table;      ///< FK target table (values in [1, target rows]).
  std::string corr_col;      ///< If set: value = corr_col value + small offset,
                             ///< creating cross-column correlation that breaks
                             ///< the optimizer's independence assumption.
  int64_t corr_span = 30;    ///< Max offset added to the correlated base.
};

/// Generator-facing description of one table.
struct TableSpec {
  std::string name;
  int64_t rows_per_sf = 1000;  ///< Rows at scale factor 1.
  bool fixed_size = false;     ///< Dimension tables that do not scale.
  std::vector<ColumnSpec> columns;  ///< columns[0] must be the sequential key.
};

/// A whole schema to generate.
struct SchemaSpec {
  std::string name;
  std::vector<TableSpec> tables;  ///< Topologically ordered (FK targets first).
};

/// A generated database: tables plus per-column statistics.
class Database {
 public:
  Database(std::string name, double scale_factor, double skew)
      : name_(std::move(name)), scale_factor_(scale_factor), skew_(skew) {}

  const std::string& name() const { return name_; }
  double scale_factor() const { return scale_factor_; }
  double skew() const { return skew_; }

  Table* AddTable(const std::string& name);
  const Table* FindTable(const std::string& name) const;
  Table* FindTable(const std::string& name);
  const std::vector<std::unique_ptr<Table>>& tables() const { return tables_; }

  /// Builds equi-depth histograms (statistics) for every column.
  void BuildStatistics(int max_buckets = 64);
  /// Histogram for (table, column), or nullptr if statistics are missing.
  const Histogram* Stats(const std::string& table, int column) const;

 private:
  std::string name_;
  double scale_factor_;
  double skew_;
  std::vector<std::unique_ptr<Table>> tables_;
  std::map<std::pair<std::string, int>, Histogram> stats_;
};

/// Generates a database from a schema spec.
///
/// @param spec   Schema to generate.
/// @param sf     Scale factor; scaling tables get rows_per_sf * sf rows.
/// @param skew   Default Zipf z for columns that do not override it.
/// @param seed   PRNG seed; identical seeds yield identical databases.
std::unique_ptr<Database> GenerateDatabase(const SchemaSpec& spec, double sf,
                                           double skew, uint64_t seed);

}  // namespace resest

#endif  // RESEST_STORAGE_CATALOG_H_
