#include "src/storage/wal.h"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <system_error>
#include <utility>

#include "src/common/serial.h"
#include "src/storage/segment.h"

namespace resest {

namespace {

/// CRC32C (Castagnoli, reflected polynomial 0x82F63B78), table-driven.
/// Software implementation on purpose: the WAL's append path is dominated
/// by the write() syscall, not the checksum.
const uint32_t* Crc32cTable() {
  static const uint32_t* table = [] {
    static uint32_t t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int k = 0; k < 8; ++k) {
        crc = (crc >> 1) ^ ((crc & 1u) ? 0x82F63B78u : 0u);
      }
      t[i] = crc;
    }
    return t;
  }();
  return table;
}

/// fsync the directory holding `path` so a rename/creation in it is
/// durable. Returns false if the directory cannot be synced.
bool SyncParentDir(const std::string& path) {
  const std::string dir = std::filesystem::path(path).parent_path().string();
  const int fd = ::open(dir.empty() ? "." : dir.c_str(), O_RDONLY);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}

}  // namespace

uint32_t Crc32c(const uint8_t* data, size_t size) {
  const uint32_t* table = Crc32cTable();
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    crc = (crc >> 8) ^ table[(crc ^ data[i]) & 0xFFu];
  }
  return crc ^ 0xFFFFFFFFu;
}

void EncodeWalRecord(const WalRecord& record, std::vector<uint8_t>* out) {
  ByteWriter w(out);
  w.Pod(static_cast<uint8_t>(record.type));
  switch (record.type) {
    case WalRecordType::kObservation: {
      const WalObservation& o = record.observation;
      w.Pod(static_cast<uint8_t>(o.op));
      w.Pod(static_cast<uint8_t>(o.resource));
      w.Pod(o.model_version);
      w.F64(o.label);
      w.Pod(o.features);
      break;
    }
    case WalRecordType::kRefitMarker: {
      const WalRefitMarker& m = record.refit;
      w.Pod(static_cast<uint8_t>(m.op));
      w.Pod(static_cast<uint8_t>(m.resource));
      w.Pod(m.covered_rows);
      w.F64(m.refit_mean);
      w.Pod(m.model_version);
      break;
    }
    case WalRecordType::kCheckpoint: {
      const WalCheckpoint& c = record.checkpoint;
      w.Pod(c.base_version);
      for (const auto& per_op : c.slots) {
        for (const WalCheckpoint::Slot& slot : per_op) {
          w.Pod(slot.covered_rows);
          w.F64(slot.refit_mean);
        }
      }
      break;
    }
  }
}

bool DecodeWalRecord(const uint8_t* payload, size_t size, WalRecord* out) {
  const std::vector<uint8_t> bytes(payload, payload + size);
  ByteReader r(bytes);
  uint8_t type = 0;
  if (!r.Pod(&type)) return false;
  auto slot_ok = [](uint8_t op, uint8_t resource) {
    return op < kNumOpTypes && resource < kNumResources;
  };
  switch (static_cast<WalRecordType>(type)) {
    case WalRecordType::kObservation: {
      out->type = WalRecordType::kObservation;
      WalObservation& o = out->observation;
      uint8_t op = 0, resource = 0;
      if (!r.Pod(&op) || !r.Pod(&resource) || !slot_ok(op, resource)) {
        return false;
      }
      o.op = static_cast<OpType>(op);
      o.resource = static_cast<Resource>(resource);
      return r.Pod(&o.model_version) && r.F64(&o.label) &&
             r.Pod(&o.features) && r.AtEnd();
    }
    case WalRecordType::kRefitMarker: {
      out->type = WalRecordType::kRefitMarker;
      WalRefitMarker& m = out->refit;
      uint8_t op = 0, resource = 0;
      if (!r.Pod(&op) || !r.Pod(&resource) || !slot_ok(op, resource)) {
        return false;
      }
      m.op = static_cast<OpType>(op);
      m.resource = static_cast<Resource>(resource);
      return r.Pod(&m.covered_rows) && r.F64(&m.refit_mean) &&
             r.Pod(&m.model_version) && r.AtEnd();
    }
    case WalRecordType::kCheckpoint: {
      out->type = WalRecordType::kCheckpoint;
      WalCheckpoint& c = out->checkpoint;
      if (!r.Pod(&c.base_version)) return false;
      for (auto& per_op : c.slots) {
        for (WalCheckpoint::Slot& slot : per_op) {
          if (!r.Pod(&slot.covered_rows) || !r.F64(&slot.refit_mean)) {
            return false;
          }
        }
      }
      return r.AtEnd();
    }
  }
  return false;  // unknown record type
}

WriteAheadLog::WriteAheadLog(std::string dir, std::string name,
                             WalOptions options)
    : dir_(std::move(dir)), name_(std::move(name)),
      options_(std::move(options)) {}

WriteAheadLog::~WriteAheadLog() {
  if (fd_ >= 0) ::close(fd_);
}

WalFaultAction WriteAheadLog::Consult(WalFaultOp op, size_t bytes,
                                      bool is_header) {
  if (!options_.fault_hook) return WalFaultAction::kProceed;
  WalFaultContext context;
  context.op = op;
  context.seq = seq_;
  context.call_index = ++fault_counts_[static_cast<size_t>(op)];
  context.bytes = bytes;
  context.is_header = is_header;
  const WalFaultAction action = options_.fault_hook(context);
  if (action == WalFaultAction::kCrash) {
    ::raise(SIGKILL);
    ::_exit(137);  // unreachable; SIGKILL cannot be handled
  }
  return action;
}

bool WriteAheadLog::WriteAll(const uint8_t* data, size_t size,
                             bool is_header) {
  const WalFaultAction action = Consult(WalFaultOp::kWrite, size, is_header);
  size_t to_write = size;
  bool then_crash = false;
  switch (action) {
    case WalFaultAction::kProceed:
      break;
    case WalFaultAction::kFail:
      failed_ = true;
      return false;
    case WalFaultAction::kShortWrite:
      to_write = size / 2;
      break;
    case WalFaultAction::kShortWriteThenCrash:
      to_write = size / 2;
      then_crash = true;
      break;
    case WalFaultAction::kCrash:
      return false;  // Consult already raised; unreachable
  }
  size_t written = 0;
  while (written < to_write) {
    const ssize_t n = ::write(fd_, data + written, to_write - written);
    if (n < 0) {
      failed_ = true;
      return false;
    }
    written += static_cast<size_t>(n);
  }
  active_bytes_ += written;
  if (then_crash) {
    ::raise(SIGKILL);
    ::_exit(137);
  }
  if (to_write != size) {  // injected short write: a torn record on disk
    failed_ = true;
    return false;
  }
  return true;
}

bool WriteAheadLog::OpenActiveFile(bool fresh, std::string* error) {
  const std::string path = ActiveWalPath(dir_, name_);
  const int flags = fresh ? (O_CREAT | O_TRUNC | O_WRONLY)
                          : (O_CREAT | O_WRONLY);
  fd_ = ::open(path.c_str(), flags, 0644);
  if (fd_ < 0) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  if (fresh) {
    active_bytes_ = 0;
    std::vector<uint8_t> header;
    ByteWriter w(&header);
    w.U32(kWalMagic);
    w.U32(kWalFormatVersion);
    w.Pod(seq_);
    if (!WriteAll(header.data(), header.size(), /*is_header=*/true)) {
      if (error != nullptr) *error = "cannot write header of " + path;
      return false;
    }
    if (!SyncParentDir(path)) {
      if (error != nullptr) *error = "cannot sync directory of " + path;
      failed_ = true;
      return false;
    }
  } else {
    const off_t end = ::lseek(fd_, 0, SEEK_END);
    if (end < 0) {
      if (error != nullptr) *error = "cannot seek " + path;
      return false;
    }
    active_bytes_ = static_cast<size_t>(end);
  }
  return true;
}

bool WriteAheadLog::Open(std::string* error) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) {
    if (error != nullptr) *error = "cannot create " + dir_;
    return false;
  }

  uint64_t max_seal_seq = 0;
  for (const SegmentFileInfo& info : ListSegmentFiles(dir_, name_)) {
    max_seal_seq = std::max(max_seal_seq, info.seq);
  }

  const std::string active = ActiveWalPath(dir_, name_);
  if (std::filesystem::exists(active, ec)) {
    WalFileScan scan;
    if (ScanWalFile(active, &scan) && scan.header_ok &&
        scan.seq > max_seal_seq) {
      // Resume the existing active file, truncating any torn tail so new
      // appends never land after garbage.
      seq_ = scan.seq;
      if (!scan.clean) {
        if (::truncate(active.c_str(), static_cast<off_t>(scan.valid_bytes)) !=
            0) {
          if (error != nullptr) *error = "cannot truncate torn tail of " + active;
          return false;
        }
        stats_.truncated_tail_bytes = scan.file_bytes - scan.valid_bytes;
      }
      return OpenActiveFile(/*fresh=*/false, error);
    }
    // Unusable active file (bad header, or a sequence number a sealed
    // segment already owns). Move it aside — never delete evidence — and
    // start fresh.
    std::filesystem::rename(active, active + ".orphan", ec);
    if (ec) {
      if (error != nullptr) *error = "cannot move aside " + active;
      return false;
    }
  }
  seq_ = max_seal_seq + 1;
  return OpenActiveFile(/*fresh=*/true, error);
}

bool WriteAheadLog::Append(const WalRecord& record) {
  if (failed_ || fd_ < 0) {
    ++stats_.append_failures;
    return false;
  }
  std::vector<uint8_t> payload;
  EncodeWalRecord(record, &payload);
  std::vector<uint8_t> frame;
  frame.reserve(kWalRecordFrameBytes + payload.size());
  ByteWriter w(&frame);
  w.U32(static_cast<uint32_t>(payload.size()));
  w.U32(Crc32c(payload.data(), payload.size()));
  frame.insert(frame.end(), payload.begin(), payload.end());

  if (!WriteAll(frame.data(), frame.size(), /*is_header=*/false)) {
    ++stats_.append_failures;
    return false;
  }
  ++stats_.records_appended;
  stats_.bytes_appended += frame.size();

  if (options_.sync == WalOptions::SyncPolicy::kEveryAppend && !Sync()) {
    return false;
  }
  if (active_bytes_ >= options_.segment_bytes) return Seal();
  return true;
}

bool WriteAheadLog::Sync() {
  if (failed_ || fd_ < 0) return false;
  switch (Consult(WalFaultOp::kSync, 0, false)) {
    case WalFaultAction::kProceed:
      break;
    default:  // any injected fault fails the sync
      failed_ = true;
      return false;
  }
  if (::fsync(fd_) != 0) {
    failed_ = true;
    return false;
  }
  ++stats_.fsyncs;
  return true;
}

bool WriteAheadLog::Seal() {
  if (failed_ || fd_ < 0) return false;
  if (active_bytes_ <= kWalFileHeaderBytes) return true;  // no records yet
  if (!Sync()) return false;
  ::close(fd_);
  fd_ = -1;

  switch (Consult(WalFaultOp::kSealRename, 0, false)) {
    case WalFaultAction::kProceed:
      break;
    default:
      failed_ = true;
      return false;
  }
  const std::string active = ActiveWalPath(dir_, name_);
  const std::string sealed = SegmentFilePath(dir_, name_, seq_);
  std::error_code ec;
  std::filesystem::rename(active, sealed, ec);
  if (ec || !SyncParentDir(sealed)) {
    failed_ = true;
    return false;
  }
  ++stats_.segments_sealed;
  ++seq_;
  std::string error;
  if (!OpenActiveFile(/*fresh=*/true, &error)) {
    failed_ = true;
    return false;
  }
  return true;
}

}  // namespace resest
