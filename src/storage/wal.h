// Per-process write-ahead log for observation rows — the durability layer
// under the incremental retraining loop (ROADMAP: "Durable feedback loop").
//
// Layout on disk: one active file `<dir>/<name>.wal` receives appends; when
// it exceeds WalOptions::segment_bytes it is fsync'd and sealed — renamed to
// the immutable `<dir>/<name>.<seq>.seg` — and a fresh active file with the
// next sequence number is opened. Every file starts with a fixed header
// (magic, format version, sequence number) and then carries length-prefixed,
// CRC32C-checksummed records:
//
//   [u32 payload_len][u32 crc32c(payload)][payload bytes]
//
// Payloads are tagged with a record type: an observation row ((OpType,
// Resource) slot + model version + label + features), a refit marker (a
// slot's log coverage advanced at a publish boundary), or a checkpoint
// snapshot (every slot's coverage at once). Recovery (src/storage/
// recovery.h) replays sealed segments in sequence order and then the active
// tail, stopping cleanly at the first torn or corrupt record.
//
// Crash safety: a record is durable once its bytes reach the file (a killed
// process loses nothing the kernel accepted — only power loss can eat
// unfsync'd page cache), and fully durable once Sync()/Seal() ran. A crash
// mid-append leaves a torn tail; Open() truncates the active file back to
// its longest valid prefix so new appends never land after garbage.
//
// Fault injection: WalOptions::fault_hook is the deterministic test seam —
// it observes every write/fsync/seal-rename and can inject short writes,
// I/O failures (ENOSPC simulation), or an immediate SIGKILL, which is how
// tests/crash_recovery_test.cc kills real subprocesses mid-append, mid-seal
// and mid-checkpoint. Production leaves it empty; the hook costs one
// branch per call when unset.
//
// Thread safety: none — the owner (IncrementalTrainer) serializes access
// under its own log mutex, which also pins the WAL's record order to the
// in-memory append order (the property recovery's determinism rests on).
#ifndef RESEST_STORAGE_WAL_H_
#define RESEST_STORAGE_WAL_H_

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/core/features.h"

namespace resest {

/// CRC32C (Castagnoli) of `data`, the checksum guarding every WAL record.
uint32_t Crc32c(const uint8_t* data, size_t size);

inline constexpr uint32_t kWalMagic = 0x4c415752;  // "RWAL" little-endian
inline constexpr uint32_t kWalFormatVersion = 1;
/// Sanity cap on a record's payload: a corrupt length field must fail
/// validation, not drive a multi-gigabyte allocation.
inline constexpr uint32_t kWalMaxPayloadBytes = 1u << 20;

enum class WalRecordType : uint8_t {
  kObservation = 1,
  kRefitMarker = 2,
  kCheckpoint = 3,
};

/// One observation row: the (operator, resource) slot it feeds, the model
/// version that was serving when it was observed, and the training row.
struct WalObservation {
  OpType op = OpType::kTableScan;
  Resource resource = Resource::kCpu;
  uint64_t model_version = 0;
  double label = 0.0;
  FeatureVector features{};
};

/// A slot's refit coverage advanced at a *published* boundary: rows up to
/// `covered_rows` (lifetime count) are represented by the published model.
struct WalRefitMarker {
  OpType op = OpType::kTableScan;
  Resource resource = Resource::kCpu;
  uint64_t covered_rows = 0;
  double refit_mean = 0.0;
  uint64_t model_version = 0;
};

/// Full coverage snapshot of every slot, written by Checkpoint/drain so a
/// restart need not re-refit work already represented in the saved model.
struct WalCheckpoint {
  uint64_t base_version = 0;
  struct Slot {
    uint64_t covered_rows = 0;
    double refit_mean = 0.0;
  };
  std::array<std::array<Slot, kNumResources>, kNumOpTypes> slots{};
};

/// A decoded record (exactly one member is meaningful, per `type`).
struct WalRecord {
  WalRecordType type = WalRecordType::kObservation;
  WalObservation observation;
  WalRefitMarker refit;
  WalCheckpoint checkpoint;
};

/// Encodes `record` as a payload (no length/CRC framing — the WAL adds it).
void EncodeWalRecord(const WalRecord& record, std::vector<uint8_t>* out);
/// Decodes a payload; false on truncated/unknown input (*out unspecified).
bool DecodeWalRecord(const uint8_t* payload, size_t size, WalRecord* out);

// --- Fault injection -------------------------------------------------------

enum class WalFaultOp {
  kWrite,       ///< About to write() record or header bytes.
  kSync,        ///< About to fsync() the active file.
  kSealRename,  ///< About to rename() the active file to its segment name.
};

struct WalFaultContext {
  WalFaultOp op = WalFaultOp::kWrite;
  /// Sequence number of the active file the operation targets.
  uint64_t seq = 0;
  /// 1-based count of this operation kind since Open() (per-op counter) —
  /// the usual way tests pick "the Nth append" deterministically.
  uint64_t call_index = 0;
  /// Bytes about to be written (kWrite only).
  size_t bytes = 0;
  /// True when the kWrite is a file header, not a record.
  bool is_header = false;
};

enum class WalFaultAction {
  kProceed,             ///< No fault.
  kShortWrite,          ///< Write ~half the bytes, then fail the append.
  kFail,                ///< Fail without touching the file (ENOSPC-style).
  kCrash,               ///< raise(SIGKILL) — the process dies right here.
  kShortWriteThenCrash, ///< Write ~half the bytes, then raise(SIGKILL):
                        ///< a genuinely torn record on disk.
};

using WalFaultHook = std::function<WalFaultAction(const WalFaultContext&)>;

// --- The log ---------------------------------------------------------------

struct WalOptions {
  /// Active-file size (header + records) beyond which an append seals it
  /// into a segment and starts a fresh file.
  size_t segment_bytes = 4u << 20;
  /// fsync the active file on every append (kEveryAppend) or only at
  /// explicit Sync()/Seal() boundaries (kOnSeal, the default — a SIGKILL
  /// never loses kernel-accepted bytes, so per-append fsync buys protection
  /// only against power loss, at a large latency cost).
  enum class SyncPolicy { kOnSeal, kEveryAppend } sync = SyncPolicy::kOnSeal;
  /// Deterministic fault seam (tests only); empty = no faults.
  WalFaultHook fault_hook;
};

struct WalStats {
  uint64_t records_appended = 0;
  uint64_t bytes_appended = 0;
  uint64_t fsyncs = 0;
  uint64_t segments_sealed = 0;
  uint64_t append_failures = 0;
  /// Torn bytes Open() truncated off the active file's tail.
  uint64_t truncated_tail_bytes = 0;
};

class WriteAheadLog {
 public:
  WriteAheadLog(std::string dir, std::string name, WalOptions options = {});
  ~WriteAheadLog();

  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  /// Creates `dir` if needed, adopts any existing segments' numbering,
  /// truncates a torn tail off an existing active file, and opens it for
  /// append. False (with *error set) on I/O failure.
  bool Open(std::string* error = nullptr);

  /// Appends one record (framing + CRC added here). False on I/O failure —
  /// after which the log is failed (ok() == false) and further appends
  /// fail fast; what was already on disk stays recoverable.
  bool Append(const WalRecord& record);

  /// fsyncs the active file.
  bool Sync();

  /// Sync + rename the active file into an immutable segment + open a
  /// fresh active file. A no-op (returning true) when the active file
  /// holds no records yet.
  bool Seal();

  /// False once an append/sync/seal failed; the WAL stops accepting writes
  /// (sticky), preserving the valid on-disk prefix for recovery.
  bool ok() const { return !failed_; }

  const WalStats& stats() const { return stats_; }
  uint64_t active_seq() const { return seq_; }
  size_t active_bytes() const { return active_bytes_; }

 private:
  bool WriteAll(const uint8_t* data, size_t size, bool is_header);
  bool OpenActiveFile(bool fresh, std::string* error);
  WalFaultAction Consult(WalFaultOp op, size_t bytes, bool is_header);

  const std::string dir_;
  const std::string name_;
  const WalOptions options_;

  int fd_ = -1;
  uint64_t seq_ = 0;
  size_t active_bytes_ = 0;
  bool failed_ = false;
  WalStats stats_;
  uint64_t fault_counts_[3] = {0, 0, 0};  ///< Per-WalFaultOp call counters.
};

}  // namespace resest

#endif  // RESEST_STORAGE_WAL_H_
