// Immutable sealed WAL segments: file naming, the shared file header, and
// the validating scanner recovery and the WAL's own torn-tail truncation
// both run. A segment is simply a sealed active file — same header, same
// record framing — so one scanner serves both.
//
// Scanning is strict and never reads past corruption: a record is accepted
// only if its length prefix is sane, its bytes are fully present and its
// CRC32C matches; the first violation ends the valid prefix and is
// described in WalFileScan::corruption. Everything after it is reported as
// dropped bytes (plus a best-effort count of frames that still look like
// records), never applied.
#ifndef RESEST_STORAGE_SEGMENT_H_
#define RESEST_STORAGE_SEGMENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/storage/wal.h"

namespace resest {

/// Bytes of the per-file header: magic (u32) + format version (u32) +
/// sequence number (u64).
inline constexpr size_t kWalFileHeaderBytes = 16;
/// Bytes of the per-record frame prefix: payload length (u32) + CRC (u32).
inline constexpr size_t kWalRecordFrameBytes = 8;

/// `<dir>/<name>.wal` — the active (append) file.
std::string ActiveWalPath(const std::string& dir, const std::string& name);

/// `<dir>/<name>.<seq, zero-padded>.seg` — a sealed segment.
std::string SegmentFilePath(const std::string& dir, const std::string& name,
                            uint64_t seq);

struct SegmentFileInfo {
  std::string path;
  uint64_t seq = 0;  ///< Parsed from the file name.
};

/// Sealed segments of `name` under `dir`, sorted by file-name sequence
/// (ties — which only a tampered directory can produce — sort by path).
/// Files whose names do not parse are ignored.
std::vector<SegmentFileInfo> ListSegmentFiles(const std::string& dir,
                                              const std::string& name);

/// Result of scanning one WAL/segment file.
struct WalFileScan {
  bool header_ok = false;      ///< Magic + version + full header present.
  uint32_t format_version = 0; ///< As read (may exceed kWalFormatVersion).
  uint64_t seq = 0;            ///< Header sequence number.
  /// Decoded records of the longest valid prefix, in file order.
  std::vector<WalRecord> records;
  size_t valid_bytes = 0;      ///< Header + valid records (truncation point).
  size_t file_bytes = 0;
  bool clean = true;           ///< No bytes beyond the valid prefix.
  /// Frames past the corruption that still parse as framed records with a
  /// matching CRC — a best-effort "how much did we lose" count; they are
  /// never applied.
  uint64_t dropped_record_estimate = 0;
  std::string corruption;      ///< First-corruption description; "" if clean.
};

/// Scans `path`; false only if the file cannot be read at all. A present
/// but corrupt file returns true with header_ok/clean describing the
/// damage. A header whose format version is newer than kWalFormatVersion
/// sets header_ok = false (the records cannot be trusted to decode).
bool ScanWalFile(const std::string& path, WalFileScan* out);

}  // namespace resest

#endif  // RESEST_STORAGE_SEGMENT_H_
