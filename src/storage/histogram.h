// Equi-depth histograms: the optimizer substrate's statistics objects.
//
// Cardinality estimates derived from these histograms carry the realistic
// error structure the paper depends on (limited resolution within buckets,
// independence assumptions across predicates), especially on skewed data.
#ifndef RESEST_STORAGE_HISTOGRAM_H_
#define RESEST_STORAGE_HISTOGRAM_H_

#include <cstdint>
#include <vector>

#include "src/storage/table.h"

namespace resest {

/// One histogram bucket over a half-open key range.
struct HistogramBucket {
  Value lo = 0;              ///< Smallest key in the bucket (inclusive).
  Value hi = 0;              ///< Largest key in the bucket (inclusive).
  int64_t rows = 0;          ///< Rows in the bucket.
  int64_t distinct = 0;      ///< Approximate distinct keys in the bucket.
};

/// Equi-depth histogram with a bounded number of buckets.
class Histogram {
 public:
  /// Builds from raw values with at most `max_buckets` buckets.
  static Histogram Build(const std::vector<Value>& values, int max_buckets);

  /// Estimated rows satisfying value == v.
  double EstimateEq(Value v) const;
  /// Estimated rows satisfying lo <= value <= hi.
  double EstimateRange(Value lo, Value hi) const;
  /// Estimated selectivity (0..1) of lo <= value <= hi.
  double SelectivityRange(Value lo, Value hi) const;

  int64_t total_rows() const { return total_rows_; }
  int64_t total_distinct() const { return total_distinct_; }
  Value min_value() const { return buckets_.empty() ? 0 : buckets_.front().lo; }
  Value max_value() const { return buckets_.empty() ? 0 : buckets_.back().hi; }
  const std::vector<HistogramBucket>& buckets() const { return buckets_; }

 private:
  std::vector<HistogramBucket> buckets_;
  int64_t total_rows_ = 0;
  int64_t total_distinct_ = 0;
};

}  // namespace resest

#endif  // RESEST_STORAGE_HISTOGRAM_H_
