#include "src/storage/segment.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <system_error>

#include "src/common/serial.h"

namespace resest {

std::string ActiveWalPath(const std::string& dir, const std::string& name) {
  return (std::filesystem::path(dir) / (name + ".wal")).string();
}

std::string SegmentFilePath(const std::string& dir, const std::string& name,
                            uint64_t seq) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%08llu",
                static_cast<unsigned long long>(seq));
  return (std::filesystem::path(dir) / (name + "." + buf + ".seg")).string();
}

std::vector<SegmentFileInfo> ListSegmentFiles(const std::string& dir,
                                              const std::string& name) {
  std::vector<SegmentFileInfo> out;
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) return out;
  const std::string prefix = name + ".";
  const std::string suffix = ".seg";
  for (const auto& entry : it) {
    if (!entry.is_regular_file(ec)) continue;
    const std::string file = entry.path().filename().string();
    if (file.size() <= prefix.size() + suffix.size()) continue;
    if (file.compare(0, prefix.size(), prefix) != 0) continue;
    if (file.compare(file.size() - suffix.size(), suffix.size(), suffix) !=
        0) {
      continue;
    }
    const std::string middle = file.substr(
        prefix.size(), file.size() - prefix.size() - suffix.size());
    if (middle.empty() ||
        middle.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    SegmentFileInfo info;
    info.path = entry.path().string();
    info.seq = std::strtoull(middle.c_str(), nullptr, 10);
    out.push_back(std::move(info));
  }
  std::sort(out.begin(), out.end(),
            [](const SegmentFileInfo& a, const SegmentFileInfo& b) {
              return a.seq != b.seq ? a.seq < b.seq : a.path < b.path;
            });
  return out;
}

bool ScanWalFile(const std::string& path, WalFileScan* out) {
  *out = WalFileScan{};
  std::vector<uint8_t> bytes;
  if (!ReadFileBytes(path, &bytes)) return false;
  out->file_bytes = bytes.size();

  ByteReader r(bytes);
  uint32_t magic = 0;
  if (!r.U32(&magic) || magic != kWalMagic || !r.U32(&out->format_version) ||
      !r.Pod(&out->seq)) {
    out->clean = false;
    out->corruption = "bad file header";
    return true;
  }
  if (out->format_version > kWalFormatVersion) {
    // A newer writer's records cannot be trusted to decode; treat the whole
    // file as unusable rather than misapply half-understood bytes.
    out->clean = false;
    out->corruption = "format version " +
                      std::to_string(out->format_version) +
                      " is newer than supported " +
                      std::to_string(kWalFormatVersion);
    return true;
  }
  out->header_ok = true;
  out->valid_bytes = kWalFileHeaderBytes;

  // Decode one framed record from `pos`; advances pos past it on success.
  // On failure sets `why` and leaves pos at the frame start.
  auto try_record = [&bytes](size_t* pos, WalRecord* record,
                             std::string* why) {
    const size_t remaining = bytes.size() - *pos;
    if (remaining == 0) return false;  // clean end, *why untouched
    if (remaining < kWalRecordFrameBytes) {
      *why = "torn record frame";
      return false;
    }
    uint32_t len = 0, crc = 0;
    std::memcpy(&len, bytes.data() + *pos, sizeof(len));
    std::memcpy(&crc, bytes.data() + *pos + sizeof(len), sizeof(crc));
    if (len == 0) {
      *why = "zero-length record";
      return false;
    }
    if (len > kWalMaxPayloadBytes) {
      *why = "implausible record length " + std::to_string(len);
      return false;
    }
    if (remaining - kWalRecordFrameBytes < len) {
      *why = "torn record payload";
      return false;
    }
    const uint8_t* payload = bytes.data() + *pos + kWalRecordFrameBytes;
    if (Crc32c(payload, len) != crc) {
      *why = "CRC mismatch";
      return false;
    }
    if (!DecodeWalRecord(payload, len, record)) {
      *why = "undecodable record payload";
      return false;
    }
    *pos += kWalRecordFrameBytes + len;
    return true;
  };

  size_t pos = kWalFileHeaderBytes;
  std::string why;
  WalRecord record;
  while (try_record(&pos, &record, &why)) {
    out->records.push_back(record);
    out->valid_bytes = pos;
  }
  if (why.empty()) return true;  // ran off the end cleanly

  out->clean = false;
  out->corruption = why;
  // Best-effort loss estimate: skip the corrupt frame byte-by-byte until
  // framing resynchronizes, counting frames that still check out. Purely
  // diagnostic — nothing here is ever applied.
  ++pos;  // past the corrupt frame's first byte
  while (pos < bytes.size()) {
    std::string ignored;
    size_t probe = pos;
    if (try_record(&probe, &record, &ignored)) {
      ++out->dropped_record_estimate;
      pos = probe;
    } else {
      ++pos;
    }
  }
  return true;
}

}  // namespace resest
