// Crash recovery for the observation WAL: replays sealed segments in
// sequence order, then the active tail, delivering each valid record to a
// callback in exactly the order it was appended. Replay stops applying at
// the first torn or corrupt record — or at a sequence-numbering violation
// (gap, duplicate, header/filename mismatch) or a newer format version —
// and reports precisely how much was recovered and how much was dropped.
//
// The guarantee the trainer builds on: after a crash at ANY point, replay
// yields the longest durable prefix of the original append stream, in
// order. Because the in-memory observation state (bounded window +
// reservoir + spill decisions) is a deterministic function of that stream,
// a recovered process is byte-identical to a never-crashed process that
// observed the same prefix — which tests/crash_recovery_test.cc proves
// against SIGKILLed subprocesses.
#ifndef RESEST_STORAGE_RECOVERY_H_
#define RESEST_STORAGE_RECOVERY_H_

#include <cstdint>
#include <functional>
#include <string>

#include "src/storage/wal.h"

namespace resest {

struct RecoveryStats {
  uint64_t rows_recovered = 0;     ///< Observation records applied.
  uint64_t records_recovered = 0;  ///< All record types applied.
  uint64_t segments_replayed = 0;  ///< Sealed segments fully applied.
  /// Frames past the stop point that still parse as valid records — a
  /// best-effort count of what was lost (never applied).
  uint64_t records_dropped = 0;
  /// Bytes on disk past the stop point (torn tails, skipped segments).
  uint64_t bytes_dropped = 0;
  /// True when replay stopped before consuming every byte on disk.
  bool truncated = false;
  /// Human-readable description of the first corruption ("" when clean).
  std::string detail;

  bool clean() const { return !truncated; }
};

using WalReplayFn = std::function<void(const WalRecord&)>;

/// Replays the log of `name` under `dir` into `apply` (in append order).
/// Returns false only on an environmental failure (unreadable directory);
/// corruption is not a failure — it ends the replay early and is described
/// in *stats. A missing log (fresh directory) is a clean empty replay.
bool ReplayObservationLog(const std::string& dir, const std::string& name,
                          const WalReplayFn& apply, RecoveryStats* stats);

}  // namespace resest

#endif  // RESEST_STORAGE_RECOVERY_H_
