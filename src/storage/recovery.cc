#include "src/storage/recovery.h"

#include <filesystem>
#include <system_error>
#include <vector>

#include "src/storage/segment.h"

namespace resest {

namespace {

/// Applies one scanned file's valid records. Returns false when the file
/// was not clean (caller stops replaying; drop accounting already done).
bool ApplyScan(const WalFileScan& scan, const WalReplayFn& apply,
               RecoveryStats* stats) {
  for (const WalRecord& record : scan.records) {
    apply(record);
    ++stats->records_recovered;
    if (record.type == WalRecordType::kObservation) ++stats->rows_recovered;
  }
  if (!scan.clean) {
    stats->truncated = true;
    stats->records_dropped += scan.dropped_record_estimate;
    stats->bytes_dropped += scan.file_bytes - scan.valid_bytes;
    return false;
  }
  return true;
}

/// Counts an entirely skipped file as dropped (best-effort: its own valid
/// records plus whatever its scanner salvage-counted).
void DropWholeFile(const std::string& path, RecoveryStats* stats) {
  WalFileScan scan;
  if (!ScanWalFile(path, &scan)) return;
  stats->records_dropped += scan.records.size() + scan.dropped_record_estimate;
  stats->bytes_dropped += scan.file_bytes;
}

}  // namespace

bool ReplayObservationLog(const std::string& dir, const std::string& name,
                          const WalReplayFn& apply, RecoveryStats* stats) {
  *stats = RecoveryStats{};
  std::error_code ec;
  if (!std::filesystem::exists(dir, ec) || ec) {
    return !ec;  // a missing directory is a clean empty log
  }

  const std::vector<SegmentFileInfo> segments = ListSegmentFiles(dir, name);
  std::vector<std::string> pending;  // files after a stop point -> dropped
  uint64_t last_seq = 0;
  bool stopped = false;

  auto stop = [&](const std::string& why, const std::string& path) {
    stats->truncated = true;
    if (stats->detail.empty()) stats->detail = why + " (" + path + ")";
    stopped = true;
  };

  for (const SegmentFileInfo& info : segments) {
    if (stopped) {
      pending.push_back(info.path);
      continue;
    }
    if (last_seq != 0 && info.seq == last_seq) {
      stop("duplicate segment sequence", info.path);
      pending.push_back(info.path);
      continue;
    }
    if (last_seq != 0 && info.seq != last_seq + 1) {
      stop("segment sequence gap", info.path);
      pending.push_back(info.path);
      continue;
    }
    WalFileScan scan;
    if (!ScanWalFile(info.path, &scan)) {
      stop("unreadable segment", info.path);
      continue;
    }
    if (!scan.header_ok) {
      stop(scan.corruption, info.path);
      stats->bytes_dropped += scan.file_bytes;
      continue;
    }
    if (scan.seq != info.seq) {
      // The header's sequence disagrees with the file name — a copied or
      // tampered segment. Its records' position in the global order is
      // unknowable, so nothing from here on can be applied.
      stop("segment header sequence mismatch", info.path);
      pending.push_back(info.path);
      continue;
    }
    last_seq = info.seq;
    if (!ApplyScan(scan, apply, stats)) {
      stop(scan.corruption, info.path);
      continue;
    }
    ++stats->segments_replayed;
  }

  const std::string active = ActiveWalPath(dir, name);
  const bool active_exists = std::filesystem::exists(active, ec) && !ec;
  if (stopped) {
    for (const std::string& path : pending) DropWholeFile(path, stats);
    if (active_exists) DropWholeFile(active, stats);
    return true;
  }
  if (!active_exists) return true;  // sealed-then-crashed: segments only

  WalFileScan scan;
  if (!ScanWalFile(active, &scan)) {
    stop("unreadable active wal", active);
    return true;
  }
  if (!scan.header_ok) {
    stop(scan.corruption, active);
    stats->bytes_dropped += scan.file_bytes;
    return true;
  }
  if (last_seq != 0 && scan.seq <= last_seq) {
    stop("active wal sequence behind sealed segments", active);
    DropWholeFile(active, stats);
    return true;
  }
  if (!ApplyScan(scan, apply, stats)) {
    stop(scan.corruption, active);
  }
  return true;
}

}  // namespace resest
