#include "src/storage/catalog.h"

#include <algorithm>
#include <cmath>

namespace resest {

Table* Database::AddTable(const std::string& name) {
  tables_.push_back(std::make_unique<Table>(name));
  return tables_.back().get();
}

const Table* Database::FindTable(const std::string& name) const {
  for (const auto& t : tables_) {
    if (t->name() == name) return t.get();
  }
  return nullptr;
}

Table* Database::FindTable(const std::string& name) {
  for (auto& t : tables_) {
    if (t->name() == name) return t.get();
  }
  return nullptr;
}

void Database::BuildStatistics(int max_buckets) {
  stats_.clear();
  for (const auto& t : tables_) {
    for (size_t c = 0; c < t->column_count(); ++c) {
      stats_.emplace(std::make_pair(t->name(), static_cast<int>(c)),
                     Histogram::Build(t->column(c).data, max_buckets));
    }
  }
}

const Histogram* Database::Stats(const std::string& table, int column) const {
  auto it = stats_.find(std::make_pair(table, column));
  return it == stats_.end() ? nullptr : &it->second;
}

std::unique_ptr<Database> GenerateDatabase(const SchemaSpec& spec, double sf,
                                           double skew, uint64_t seed) {
  auto db = std::make_unique<Database>(spec.name, sf, skew);
  Rng master(seed);

  for (const auto& tspec : spec.tables) {
    Rng rng = master.Fork();
    Table* table = db->AddTable(tspec.name);
    const int64_t rows =
        tspec.fixed_size
            ? tspec.rows_per_sf
            : std::max<int64_t>(1, static_cast<int64_t>(
                                       std::llround(tspec.rows_per_sf * sf)));

    for (const auto& cspec : tspec.columns) {
      Column col;
      col.def.name = cspec.name;
      col.def.width_bytes = cspec.width_bytes;
      col.def.zipf_z = cspec.zipf_z < 0 ? skew : cspec.zipf_z;
      col.def.indexed = cspec.indexed;
      col.def.fk_table = cspec.fk_table;
      col.data.reserve(static_cast<size_t>(rows));

      if (&cspec == &tspec.columns[0]) {
        // Sequential primary key; keeps the table clustered on column 0.
        for (int64_t i = 1; i <= rows; ++i) col.data.push_back(i);
        col.def.domain = rows;
      } else if (!cspec.fk_table.empty()) {
        const Table* parent = db->FindTable(cspec.fk_table);
        const int64_t parent_rows = parent ? parent->row_count() : 1;
        col.def.domain = parent_rows;
        ZipfSampler zipf(parent_rows, col.def.zipf_z);
        for (int64_t i = 0; i < rows; ++i) col.data.push_back(zipf.Sample(&rng));
      } else if (!cspec.corr_col.empty()) {
        // Correlated column: base column value plus a small skewed offset.
        const int base = table->FindColumn(cspec.corr_col);
        ZipfSampler off(std::max<int64_t>(1, cspec.corr_span), col.def.zipf_z);
        const Column& base_col = table->column(static_cast<size_t>(base));
        Value max_seen = 1;
        for (int64_t i = 0; i < rows; ++i) {
          const Value v = base_col.data[static_cast<size_t>(i)] + off.Sample(&rng);
          col.data.push_back(v);
          max_seen = std::max(max_seen, v);
        }
        col.def.domain = max_seen;
      } else {
        const int64_t domain = std::max<int64_t>(1, cspec.domain);
        col.def.domain = domain;
        ZipfSampler zipf(domain, col.def.zipf_z);
        for (int64_t i = 0; i < rows; ++i) col.data.push_back(zipf.Sample(&rng));
      }
      table->AddColumn(std::move(col));
    }
    table->BuildIndexes();
  }
  db->BuildStatistics();
  return db;
}

}  // namespace resest
