#include "src/storage/table.h"

#include <algorithm>
#include <cmath>

namespace resest {

void Index::Build(const std::vector<Value>& values, int64_t entry_width_bytes) {
  entries_.clear();
  entries_.reserve(values.size());
  for (int64_t i = 0; i < static_cast<int64_t>(values.size()); ++i) {
    entries_.emplace_back(values[static_cast<size_t>(i)], i);
  }
  std::sort(entries_.begin(), entries_.end());

  entries_per_leaf_ = std::max<int64_t>(1, kPageSize / std::max<int64_t>(1, entry_width_bytes));
  leaf_pages_ = std::max<int64_t>(
      1, (static_cast<int64_t>(entries_.size()) + entries_per_leaf_ - 1) /
             entries_per_leaf_);
  // Leaf level + inner levels until a single root page.
  depth_ = 1;
  int64_t level_pages = leaf_pages_;
  while (level_pages > 1) {
    level_pages = (level_pages + kIndexFanout - 1) / kIndexFanout;
    ++depth_;
  }
}

std::vector<int64_t> Index::LookupRange(Value lo, Value hi) const {
  std::vector<int64_t> rows;
  auto first = std::lower_bound(
      entries_.begin(), entries_.end(), std::make_pair(lo, INT64_MIN));
  auto last = std::upper_bound(entries_.begin(), entries_.end(),
                               std::make_pair(hi, INT64_MAX));
  rows.reserve(static_cast<size_t>(last - first));
  for (auto it = first; it != last; ++it) rows.push_back(it->second);
  return rows;
}

int64_t Index::CountRange(Value lo, Value hi) const {
  auto first = std::lower_bound(
      entries_.begin(), entries_.end(), std::make_pair(lo, INT64_MIN));
  auto last = std::upper_bound(entries_.begin(), entries_.end(),
                               std::make_pair(hi, INT64_MAX));
  return static_cast<int64_t>(last - first);
}

int64_t Table::row_width() const {
  int64_t w = 0;
  for (const auto& c : columns_) w += c.def.width_bytes;
  return std::max<int64_t>(1, w);
}

int64_t Table::rows_per_page() const {
  return std::max<int64_t>(1, kPageSize / row_width());
}

int64_t Table::data_pages() const {
  const int64_t rpp = rows_per_page();
  return std::max<int64_t>(1, (row_count() + rpp - 1) / rpp);
}

int64_t Table::PageOfRow(int64_t row) const { return row / rows_per_page(); }

int Table::FindColumn(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].def.name == name) return static_cast<int>(i);
  }
  return -1;
}

void Table::BuildIndexes() {
  indexes_.clear();
  for (size_t i = 0; i < columns_.size(); ++i) {
    const bool clustered = (i == 0);
    if (!clustered && !columns_[i].def.indexed) continue;
    // Secondary index entries hold (key, row-id): key width + 8-byte rid.
    const int64_t entry_width =
        clustered ? row_width() : columns_[i].def.width_bytes + 8;
    Index idx(name_ + "_idx_" + columns_[i].def.name, static_cast<int>(i),
              clustered);
    idx.Build(columns_[i].data, entry_width);
    indexes_.push_back(std::move(idx));
  }
}

const Index* Table::IndexOn(int column) const {
  for (const auto& idx : indexes_) {
    if (idx.column() == column) return &idx;
  }
  return nullptr;
}

}  // namespace resest
