// resest_server: the network front end of the estimation service.
//
// Serves three endpoints over dependency-free HTTP/1.1 (see
// docs/wire_api.md):
//   POST /v1/estimate   batched operator estimates with priority/deadline
//   GET  /healthz       liveness + active model version
//   GET  /metrics       Prometheus text exposition
//
// Model source: --model=<path> loads a persisted model store
// (ResourceEstimator::SaveToFile / ModelRegistry::SaveActive format);
// without it the server trains a small demo model on a generated TPC-H
// workload at startup (--train-queries / --trees control its size), so the
// walkthroughs and CI smoke test need no model artifact.
//
// Durability: --data-dir=PATH turns the feedback loop on — POST /v1/observe
// ingests labeled rows into a WAL-backed IncrementalTrainer (recovered rows
// are replayed at startup and reported), --obslog-cap-mb bounds the
// in-memory log footprint, and --refit-interval-ms runs a background
// refit-and-publish loop. See docs/durability.md.
//
// Shutdown: SIGTERM or SIGINT starts a graceful drain — stop accepting,
// answer every in-flight request, checkpoint and seal the WAL, flush a
// final stats line — then exits 0.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "src/common/shutdown.h"
#include "src/common/thread_pool.h"
#include "src/server/http_server.h"
#include "src/server/serving_frontend.h"
#include "src/serving/batch_coalescer.h"
#include "src/serving/estimation_service.h"
#include "src/serving/model_registry.h"
#include "src/training/incremental_trainer.h"
#include "src/workload/runner.h"
#include "src/workload/schemas.h"
#include "src/workload/tpch_queries.h"

using namespace resest;

namespace {

struct Flags {
  std::string address = "127.0.0.1";
  int port = 8080;  ///< 0 = ephemeral (the bound port is printed).
  int threads = 0;  ///< 0 = hardware concurrency.
  std::string model_path;  ///< Empty = train a demo model at startup.
  std::string model_name = "default";
  int train_queries = 40;  ///< Demo-model workload size.
  int trees = 30;          ///< Demo-model trees per MART.
  std::string data_dir;    ///< Empty = no durability / no /v1/observe.
  int obslog_cap_mb = 0;   ///< 0 = unbounded observation-log memory.
  int refit_interval_ms = 0;  ///< 0 = no background refit loop.
  int io_threads = 0;         ///< 0 = auto (half the cores, clamped [1,4]).
  int coalesce_window_us = 100;  ///< 0 disables coalescing.
  int coalesce_max_rows = 1024;  ///< 0 disables coalescing.
};

void PrintUsage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--address=IP] [--port=N] [--threads=N]\n"
      "          [--io-threads=N] [--coalesce-window-us=N]\n"
      "          [--coalesce-max-rows=N]\n"
      "          [--model=PATH] [--model-name=NAME]\n"
      "          [--train-queries=N] [--trees=N]\n"
      "          [--data-dir=PATH] [--obslog-cap-mb=N]\n"
      "          [--refit-interval-ms=N]\n"
      "\n"
      "  --address=IP       bind address (default 127.0.0.1)\n"
      "  --port=N           listen port; 0 picks an ephemeral port\n"
      "                     (default 8080). The bound port is printed as\n"
      "                     'resest_server listening on <addr>:<port>'.\n"
      "  --threads=N        thread-pool size for estimation batch fan-out\n"
      "                     (default: hardware concurrency)\n"
      "  --io-threads=N     event-loop threads for the HTTP front end\n"
      "                     (default 0 = half the cores, clamped to [1,4])\n"
      "  --coalesce-window-us=N  max time a /v1/estimate request waits to\n"
      "                     merge with concurrent requests into one batch\n"
      "                     (default 100; 0 disables coalescing)\n"
      "  --coalesce-max-rows=N  rows that flush a coalesced batch before\n"
      "                     the window expires (default 1024; 0 disables)\n"
      "  --model=PATH       load a persisted model store instead of\n"
      "                     training the demo model\n"
      "  --model-name=NAME  registry name to publish/serve (default\n"
      "                     'default')\n"
      "  --train-queries=N  demo model: TPC-H training workload size\n"
      "  --trees=N          demo model: MART trees per model slot\n"
      "  --data-dir=PATH    durable observation logs: WAL + segments live\n"
      "                     here, POST /v1/observe is enabled, and rows\n"
      "                     from a previous run are recovered at startup\n"
      "  --obslog-cap-mb=N  cap the in-memory observation-log footprint\n"
      "                     (0 = unbounded; oldest rows spill into\n"
      "                     per-slot reservoirs past the cap)\n"
      "  --refit-interval-ms=N  refit-and-publish crossed model slots\n"
      "                     every N ms in the background (0 = off)\n",
      argv0);
}

bool ParseIntFlag(const char* arg, const char* name, int* out) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  char* end = nullptr;
  const long v = std::strtol(arg + len + 1, &end, 10);
  if (end == arg + len + 1 || *end != '\0') {
    std::fprintf(stderr, "resest_server: bad integer in %s\n", arg);
    std::exit(2);
  }
  *out = static_cast<int>(v);
  return true;
}

bool ParseStringFlag(const char* arg, const char* name, std::string* out) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *out = arg + len + 1;
  return true;
}

Flags ParseFlags(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      PrintUsage(argv[0]);
      std::exit(0);
    }
    if (ParseStringFlag(arg, "--address", &flags.address) ||
        ParseIntFlag(arg, "--port", &flags.port) ||
        ParseIntFlag(arg, "--threads", &flags.threads) ||
        ParseStringFlag(arg, "--model", &flags.model_path) ||
        ParseStringFlag(arg, "--model-name", &flags.model_name) ||
        ParseIntFlag(arg, "--train-queries", &flags.train_queries) ||
        ParseIntFlag(arg, "--trees", &flags.trees) ||
        ParseStringFlag(arg, "--data-dir", &flags.data_dir) ||
        ParseIntFlag(arg, "--obslog-cap-mb", &flags.obslog_cap_mb) ||
        ParseIntFlag(arg, "--refit-interval-ms", &flags.refit_interval_ms) ||
        ParseIntFlag(arg, "--io-threads", &flags.io_threads) ||
        ParseIntFlag(arg, "--coalesce-window-us", &flags.coalesce_window_us) ||
        ParseIntFlag(arg, "--coalesce-max-rows", &flags.coalesce_max_rows)) {
      continue;
    }
    std::fprintf(stderr, "resest_server: unknown flag %s\n", arg);
    PrintUsage(argv[0]);
    std::exit(2);
  }
  if (flags.port < 0 || flags.port > 65535) {
    std::fprintf(stderr, "resest_server: --port must be in [0, 65535]\n");
    std::exit(2);
  }
  if (flags.io_threads < 0 || flags.coalesce_window_us < 0 ||
      flags.coalesce_max_rows < 0) {
    std::fprintf(stderr,
                 "resest_server: --io-threads / --coalesce-window-us / "
                 "--coalesce-max-rows must be >= 0\n");
    std::exit(2);
  }
  if (flags.obslog_cap_mb < 0 || flags.refit_interval_ms < 0) {
    std::fprintf(stderr,
                 "resest_server: --obslog-cap-mb and --refit-interval-ms "
                 "must be >= 0\n");
    std::exit(2);
  }
  if (flags.data_dir.empty() &&
      (flags.obslog_cap_mb > 0 || flags.refit_interval_ms > 0)) {
    std::fprintf(stderr,
                 "resest_server: --obslog-cap-mb / --refit-interval-ms "
                 "require --data-dir\n");
    std::exit(2);
  }
  return flags;
}

/// Trains the small self-contained demo model (generated TPC-H data +
/// workload) and publishes it. Returns the published version, 0 on failure.
uint64_t PublishDemoModel(const Flags& flags, size_t train_threads,
                          ModelRegistry* registry) {
  std::fprintf(stderr,
               "resest_server: no --model given; training demo model "
               "(%d queries, %d trees)...\n",
               flags.train_queries, flags.trees);
  auto db = GenerateDatabase(TpchSchema(), 0.3, 1.0, 42);
  Rng rng(7);
  auto queries = GenerateTpchWorkload(flags.train_queries, &rng, db.get());
  const auto workload = RunWorkload(db.get(), queries);
  TrainOptions options;
  options.mart.num_trees = flags.trees;
  options.train_threads = train_threads;
  auto estimator = std::make_shared<ResourceEstimator>(
      ResourceEstimator::Train(workload, options));
  return registry->Publish(flags.model_name, std::move(estimator));
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags = ParseFlags(argc, argv);

  // Install before serving starts so an early signal is never lost — it is
  // latched and the drain below runs immediately after startup.
  ShutdownLatch::Install();

  const size_t threads =
      flags.threads > 0
          ? static_cast<size_t>(flags.threads)
          : std::max(2u, std::thread::hardware_concurrency());
  ThreadPool pool(threads);
  ModelRegistry registry;

  // The durable feedback loop: opened (and recovered) before the model
  // publish so replayed rows are in place when the baseline attaches.
  std::unique_ptr<IncrementalTrainer> trainer;
  if (!flags.data_dir.empty()) {
    TrainOptions train_options;
    train_options.mart.num_trees = flags.trees;
    train_options.train_threads = threads;
    LogBounds bounds;
    bounds.memory_cap_bytes =
        static_cast<size_t>(flags.obslog_cap_mb) * (size_t{1} << 20);
    trainer = std::make_unique<IncrementalTrainer>(train_options,
                                                   RefitPolicy{}, &pool,
                                                   bounds);
    RecoveryStats recovery;
    if (!trainer->EnableDurability(flags.data_dir, flags.model_name, {},
                                   &recovery)) {
      std::fprintf(stderr,
                   "resest_server: failed to open observation WAL in %s\n",
                   flags.data_dir.c_str());
      return 1;
    }
    std::fprintf(
        stderr,
        "resest_server: recovered %llu observation rows from %s "
        "(%llu segments, %llu records dropped%s%s)\n",
        static_cast<unsigned long long>(recovery.rows_recovered),
        flags.data_dir.c_str(),
        static_cast<unsigned long long>(recovery.segments_replayed),
        static_cast<unsigned long long>(recovery.records_dropped),
        recovery.clean() ? "" : ": ",
        recovery.clean() ? "" : recovery.detail.c_str());
  }

  uint64_t version = 0;
  if (!flags.model_path.empty()) {
    version = registry.PublishFromFile(flags.model_name, flags.model_path);
    if (version == 0) {
      std::fprintf(stderr,
                   "resest_server: failed to load model from %s\n",
                   flags.model_path.c_str());
      return 1;
    }
  } else {
    version = PublishDemoModel(flags, threads, &registry);
    if (version == 0) {
      std::fprintf(stderr, "resest_server: demo model training failed\n");
      return 1;
    }
  }

  ServiceOptions service_options;
  service_options.model_name = flags.model_name;
  EstimationService service(&registry, &pool, service_options);
  ServingFrontend frontend(&service, &registry, flags.model_name);
  if (trainer != nullptr) {
    // The published model becomes the refit baseline; recovered WAL rows
    // (already in the logs) feed the next refit round.
    trainer->Attach(registry.Get(flags.model_name).estimator, version);
    frontend.set_trainer(trainer.get());
  }

  // Background refit loop: a dedicated thread (not the shared pool — a
  // refit blocks on pool futures) that periodically retrains and publishes
  // whatever slots crossed the policy, stopping promptly at drain.
  std::thread refit_thread;
  std::mutex refit_stop_mu;
  std::condition_variable refit_stop_cv;
  bool refit_stop = false;
  if (trainer != nullptr && flags.refit_interval_ms > 0) {
    refit_thread = std::thread([&]() {
      const auto interval =
          std::chrono::milliseconds(flags.refit_interval_ms);
      std::unique_lock<std::mutex> lock(refit_stop_mu);
      while (!refit_stop_cv.wait_for(lock, interval,
                                     [&]() { return refit_stop; })) {
        lock.unlock();
        const auto result =
            trainer->RefitAndPublish(&registry, flags.model_name, &service);
        if (result) {
          std::fprintf(stderr,
                       "resest_server: refit published v%llu (%zu slots)\n",
                       static_cast<unsigned long long>(result.version),
                       result.refitted.size());
        }
        lock.lock();
      }
    });
  }

  // Cross-request micro-batch coalescing: concurrent /v1/estimate requests
  // merge into one service batch (docs/serving_io.md). Declared before the
  // server so in-flight demux callbacks are drained only after Stop() has
  // answered every connection.
  CoalescerOptions coalescer_options;
  coalescer_options.window_us =
      static_cast<uint32_t>(flags.coalesce_window_us);
  coalescer_options.max_rows = static_cast<size_t>(flags.coalesce_max_rows);
  BatchCoalescer coalescer(&service, coalescer_options);
  frontend.set_coalescer(&coalescer);

  HttpServerOptions server_options;
  server_options.bind_address = flags.address;
  server_options.port = static_cast<uint16_t>(flags.port);
  server_options.io_threads = static_cast<size_t>(flags.io_threads);
  HttpServer server(
      [&frontend](const HttpRequest& r, HttpResponseSender respond) {
        frontend.HandleAsync(r, std::move(respond));
      },
      server_options);
  frontend.set_http_server(&server);

  std::string error;
  if (!server.Start(&error)) {
    std::fprintf(stderr, "resest_server: %s\n", error.c_str());
    return 1;
  }

  // The test harness and CI smoke script parse this exact line for the
  // bound (possibly ephemeral) port; keep it first on stdout.
  std::printf("resest_server listening on %s:%u (model %s v%llu, %zu threads)\n",
              flags.address.c_str(), server.port(), flags.model_name.c_str(),
              static_cast<unsigned long long>(version), threads);
  std::fflush(stdout);

  ShutdownLatch::Wait();
  std::fprintf(stderr, "resest_server: draining...\n");
  server.Stop();  // Stops accepting; blocks until in-flight answered.

  if (refit_thread.joinable()) {
    {
      std::lock_guard<std::mutex> lock(refit_stop_mu);
      refit_stop = true;
    }
    refit_stop_cv.notify_one();
    refit_thread.join();
  }
  if (trainer != nullptr) {
    // Every answered /v1/observe row is in the WAL already (append-before-
    // memory under the log mutex); the drain makes it all immutable:
    // checkpoint the model + coverage, then fsync + seal the active file.
    if (!trainer->Checkpoint(registry, flags.model_name, flags.data_dir)) {
      std::fprintf(stderr, "resest_server: drain checkpoint failed\n");
    }
    const bool sealed = trainer->DrainWal();
    const DurabilityStats d = trainer->durability_stats();
    std::printf("resest_server: wal %s (%llu records, %llu segments, "
                "%llu append failures)\n",
                sealed ? "sealed" : "seal FAILED",
                 static_cast<unsigned long long>(d.wal.records_appended),
                 static_cast<unsigned long long>(d.wal.segments_sealed),
                 static_cast<unsigned long long>(d.wal_append_failures));
  }

  const ServiceStats stats = service.stats();
  std::printf(
      "resest_server: drained; served %llu http requests, %llu estimates "
      "(%llu batches, %llu expired, cache hit rate %.3f)\n",
      static_cast<unsigned long long>(server.requests_served()),
      static_cast<unsigned long long>(stats.requests),
      static_cast<unsigned long long>(stats.batches),
      static_cast<unsigned long long>(stats.deadline_expired),
      stats.CacheHitRate());
  std::fflush(stdout);
  return 0;
}
