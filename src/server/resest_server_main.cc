// resest_server: the network front end of the estimation service.
//
// Serves the wire endpoints over dependency-free HTTP/1.1 (see
// docs/wire_api.md):
//   POST /v1/estimate   batched operator estimates with priority/deadline
//   POST /v1/observe    labeled feedback rows (requires --data-dir)
//   GET  /v1/tenants    per-tenant load/pressure snapshots
//   GET  /healthz       liveness + active model version
//   GET  /metrics       Prometheus text exposition
//
// Model source: --model=<path> loads a persisted model store
// (ResourceEstimator::SaveToFile / ModelRegistry::SaveActive format);
// without it the server trains a small demo model on a generated TPC-H
// workload at startup (--train-queries / --trees control its size), so the
// walkthroughs and CI smoke test need no model artifact.
//
// Multi-tenancy: --tenants=a,b,c registers named tenants next to the
// always-present default tenant. Each tenant gets its own estimation
// service + cache region, coalescer, and (with --data-dir) WAL-backed
// observation log under <data-dir>/<tenant>/; requests pick their tenant
// via the X-Resest-Tenant header or the body's "tenant" field. See
// docs/multi_tenant.md.
//
// Durability: --data-dir=PATH turns the feedback loop on — POST /v1/observe
// ingests labeled rows into per-tenant WAL-backed IncrementalTrainers
// (recovered rows are replayed at startup and reported), --obslog-cap-mb /
// --tenant-obslog-cap-mb bound the in-memory log footprint, and
// --refit-interval-ms runs a background refit-and-publish loop over every
// durable tenant. See docs/durability.md.
//
// Shutdown: SIGTERM or SIGINT starts a graceful drain — stop accepting,
// answer every in-flight request, checkpoint and seal every tenant's WAL,
// flush a final stats line — then exits 0.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/common/shutdown.h"
#include "src/common/thread_pool.h"
#include "src/server/http_server.h"
#include "src/server/serving_frontend.h"
#include "src/serving/estimation_service.h"
#include "src/serving/model_registry.h"
#include "src/serving/tenant_manager.h"
#include "src/training/incremental_trainer.h"
#include "src/workload/runner.h"
#include "src/workload/schemas.h"
#include "src/workload/tpch_queries.h"

using namespace resest;

namespace {

struct Flags {
  std::string address = "127.0.0.1";
  int port = 8080;  ///< 0 = ephemeral (the bound port is printed).
  int threads = 0;  ///< 0 = hardware concurrency.
  std::string model_path;  ///< Empty = train a demo model at startup.
  std::string model_name = "default";
  int train_queries = 40;  ///< Demo-model workload size.
  int trees = 30;          ///< Demo-model trees per MART.
  std::string data_dir;    ///< Empty = no durability / no /v1/observe.
  int obslog_cap_mb = 0;   ///< 0 = unbounded observation-log memory.
  int refit_interval_ms = 0;  ///< 0 = no background refit loop.
  int io_threads = 0;         ///< 0 = auto (half the cores, clamped [1,4]).
  int coalesce_window_us = 100;  ///< 0 disables coalescing.
  int coalesce_max_rows = 1024;  ///< 0 disables coalescing.
  std::string tenants;     ///< Comma-separated named tenants (may be empty).
  int tenant_cache_mb = 0;    ///< 0 = keep the service default capacity.
  int tenant_obslog_cap_mb = -1;  ///< <= 0 = inherit --obslog-cap-mb.
};

void PrintUsage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--address=IP] [--port=N] [--threads=N]\n"
      "          [--io-threads=N] [--coalesce-window-us=N]\n"
      "          [--coalesce-max-rows=N]\n"
      "          [--model=PATH] [--model-name=NAME]\n"
      "          [--train-queries=N] [--trees=N]\n"
      "          [--data-dir=PATH] [--obslog-cap-mb=N]\n"
      "          [--refit-interval-ms=N]\n"
      "          [--tenants=A,B,...] [--tenant-cache-mb=N]\n"
      "          [--tenant-obslog-cap-mb=N]\n"
      "\n"
      "  --address=IP       bind address (default 127.0.0.1)\n"
      "  --port=N           listen port; 0 picks an ephemeral port\n"
      "                     (default 8080). The bound port is printed as\n"
      "                     'resest_server listening on <addr>:<port>'.\n"
      "  --threads=N        thread-pool size for estimation batch fan-out\n"
      "                     (default: hardware concurrency)\n"
      "  --io-threads=N     event-loop threads for the HTTP front end\n"
      "                     (default 0 = half the cores, clamped to [1,4])\n"
      "  --coalesce-window-us=N  max time a /v1/estimate request waits to\n"
      "                     merge with concurrent requests into one batch\n"
      "                     (default 100; 0 disables coalescing)\n"
      "  --coalesce-max-rows=N  rows that flush a coalesced batch before\n"
      "                     the window expires (default 1024; 0 disables)\n"
      "  --model=PATH       load a persisted model store instead of\n"
      "                     training the demo model\n"
      "  --model-name=NAME  registry base name to publish/serve (default\n"
      "                     'default'; tenant t serves NAME@t)\n"
      "  --train-queries=N  demo model: TPC-H training workload size\n"
      "  --trees=N          demo model: MART trees per model slot\n"
      "  --data-dir=PATH    durable observation logs: WAL + segments live\n"
      "                     here (tenant t under PATH/t), POST /v1/observe\n"
      "                     is enabled, and rows from a previous run are\n"
      "                     recovered at startup\n"
      "  --obslog-cap-mb=N  cap the default tenant's in-memory\n"
      "                     observation-log footprint (0 = unbounded;\n"
      "                     oldest rows spill into per-slot reservoirs)\n"
      "  --refit-interval-ms=N  refit-and-publish crossed model slots of\n"
      "                     every durable tenant every N ms (0 = off)\n"
      "  --tenants=A,B,...  register named tenants next to the default\n"
      "                     tenant (ids: 1-64 chars, alphanumeric plus\n"
      "                     '.', '_', '-', starting alphanumeric)\n"
      "  --tenant-cache-mb=N  per-tenant estimate-cache budget in MiB\n"
      "                     (approx %zu bytes/entry; 0 = service default)\n"
      "  --tenant-obslog-cap-mb=N  per-named-tenant observation-log cap\n"
      "                     (default: inherit --obslog-cap-mb)\n",
      argv0, kApproxCacheEntryBytes);
}

bool ParseIntFlag(const char* arg, const char* name, int* out) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  char* end = nullptr;
  const long v = std::strtol(arg + len + 1, &end, 10);
  if (end == arg + len + 1 || *end != '\0') {
    std::fprintf(stderr, "resest_server: bad integer in %s\n", arg);
    std::exit(2);
  }
  *out = static_cast<int>(v);
  return true;
}

bool ParseStringFlag(const char* arg, const char* name, std::string* out) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *out = arg + len + 1;
  return true;
}

std::vector<std::string> SplitCommaList(const std::string& list) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= list.size()) {
    const size_t comma = list.find(',', start);
    const size_t end = comma == std::string::npos ? list.size() : comma;
    if (end > start) out.push_back(list.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

Flags ParseFlags(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      PrintUsage(argv[0]);
      std::exit(0);
    }
    if (ParseStringFlag(arg, "--address", &flags.address) ||
        ParseIntFlag(arg, "--port", &flags.port) ||
        ParseIntFlag(arg, "--threads", &flags.threads) ||
        ParseStringFlag(arg, "--model", &flags.model_path) ||
        ParseStringFlag(arg, "--model-name", &flags.model_name) ||
        ParseIntFlag(arg, "--train-queries", &flags.train_queries) ||
        ParseIntFlag(arg, "--trees", &flags.trees) ||
        ParseStringFlag(arg, "--data-dir", &flags.data_dir) ||
        ParseIntFlag(arg, "--obslog-cap-mb", &flags.obslog_cap_mb) ||
        ParseIntFlag(arg, "--refit-interval-ms", &flags.refit_interval_ms) ||
        ParseIntFlag(arg, "--io-threads", &flags.io_threads) ||
        ParseIntFlag(arg, "--coalesce-window-us", &flags.coalesce_window_us) ||
        ParseIntFlag(arg, "--coalesce-max-rows", &flags.coalesce_max_rows) ||
        ParseStringFlag(arg, "--tenants", &flags.tenants) ||
        ParseIntFlag(arg, "--tenant-cache-mb", &flags.tenant_cache_mb) ||
        ParseIntFlag(arg, "--tenant-obslog-cap-mb",
                     &flags.tenant_obslog_cap_mb)) {
      continue;
    }
    std::fprintf(stderr, "resest_server: unknown flag %s\n", arg);
    PrintUsage(argv[0]);
    std::exit(2);
  }
  if (flags.port < 0 || flags.port > 65535) {
    std::fprintf(stderr, "resest_server: --port must be in [0, 65535]\n");
    std::exit(2);
  }
  if (flags.io_threads < 0 || flags.coalesce_window_us < 0 ||
      flags.coalesce_max_rows < 0) {
    std::fprintf(stderr,
                 "resest_server: --io-threads / --coalesce-window-us / "
                 "--coalesce-max-rows must be >= 0\n");
    std::exit(2);
  }
  if (flags.obslog_cap_mb < 0 || flags.refit_interval_ms < 0) {
    std::fprintf(stderr,
                 "resest_server: --obslog-cap-mb and --refit-interval-ms "
                 "must be >= 0\n");
    std::exit(2);
  }
  if (flags.tenant_cache_mb < 0) {
    std::fprintf(stderr, "resest_server: --tenant-cache-mb must be >= 0\n");
    std::exit(2);
  }
  if (flags.data_dir.empty() &&
      (flags.obslog_cap_mb > 0 || flags.refit_interval_ms > 0 ||
       flags.tenant_obslog_cap_mb > 0)) {
    std::fprintf(stderr,
                 "resest_server: --obslog-cap-mb / --refit-interval-ms / "
                 "--tenant-obslog-cap-mb require --data-dir\n");
    std::exit(2);
  }
  for (const std::string& id : SplitCommaList(flags.tenants)) {
    if (!IsValidTenantId(id)) {
      std::fprintf(stderr, "resest_server: invalid tenant id \"%s\"\n",
                   id.c_str());
      std::exit(2);
    }
  }
  return flags;
}

/// Trains the small self-contained demo model (generated TPC-H data +
/// workload). Null on failure.
std::shared_ptr<const ResourceEstimator> TrainDemoModel(
    const Flags& flags, size_t train_threads) {
  std::fprintf(stderr,
               "resest_server: no --model given; training demo model "
               "(%d queries, %d trees)...\n",
               flags.train_queries, flags.trees);
  auto db = GenerateDatabase(TpchSchema(), 0.3, 1.0, 42);
  Rng rng(7);
  auto queries = GenerateTpchWorkload(flags.train_queries, &rng, db.get());
  const auto workload = RunWorkload(db.get(), queries);
  TrainOptions options;
  options.mart.num_trees = flags.trees;
  options.train_threads = train_threads;
  return std::make_shared<ResourceEstimator>(
      ResourceEstimator::Train(workload, options));
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags = ParseFlags(argc, argv);

  // Install before serving starts so an early signal is never lost — it is
  // latched and the drain below runs immediately after startup.
  ShutdownLatch::Install();

  const size_t threads =
      flags.threads > 0
          ? static_cast<size_t>(flags.threads)
          : std::max(2u, std::thread::hardware_concurrency());
  ThreadPool pool(threads);
  ModelRegistry registry;

  // One tenant universe per registered tenant (the default tenant always
  // exists); each owns its own service + cache region, coalescer, and —
  // with --data-dir — its own WAL-backed observation log.
  TenantOptions tenant_options;
  tenant_options.service.model_name = flags.model_name;
  if (flags.tenant_cache_mb > 0) {
    tenant_options.service.cache_capacity =
        std::max<size_t>(1, static_cast<size_t>(flags.tenant_cache_mb) *
                                (size_t{1} << 20) / kApproxCacheEntryBytes);
  }
  tenant_options.coalescer.window_us =
      static_cast<uint32_t>(flags.coalesce_window_us);
  tenant_options.coalescer.max_rows =
      static_cast<size_t>(flags.coalesce_max_rows);
  tenant_options.enable_coalescing =
      flags.coalesce_window_us > 0 && flags.coalesce_max_rows > 0;
  tenant_options.data_dir = flags.data_dir;
  tenant_options.train.mart.num_trees = flags.trees;
  tenant_options.train.train_threads = threads;
  tenant_options.log_bounds.memory_cap_bytes =
      static_cast<size_t>(flags.obslog_cap_mb) * (size_t{1} << 20);
  if (flags.tenant_obslog_cap_mb > 0) {
    tenant_options.named_obslog_cap_bytes =
        static_cast<size_t>(flags.tenant_obslog_cap_mb) * (size_t{1} << 20);
  }
  TenantManager tenants(&registry, &pool, tenant_options);

  // Durable logs are opened (and recovered) before the model publish so
  // replayed rows are in place when the baseline attaches.
  {
    std::string error;
    RecoveryStats recovery;
    if (tenants.AddTenant(kDefaultTenant, &error, &recovery) == nullptr) {
      std::fprintf(stderr, "resest_server: %s\n", error.c_str());
      return 1;
    }
    std::vector<std::string> named = SplitCommaList(flags.tenants);
    for (const std::string& id : named) {
      RecoveryStats tenant_recovery;
      TenantManager::Tenant* tenant =
          tenants.AddTenant(id, &error, &tenant_recovery);
      if (tenant == nullptr) {
        std::fprintf(stderr, "resest_server: %s\n", error.c_str());
        return 1;
      }
      if (!flags.data_dir.empty()) {
        std::fprintf(
            stderr,
            "resest_server: tenant %s: recovered %llu observation rows "
            "(%llu segments, %llu records dropped)\n",
            id.c_str(),
            static_cast<unsigned long long>(tenant_recovery.rows_recovered),
            static_cast<unsigned long long>(
                tenant_recovery.segments_replayed),
            static_cast<unsigned long long>(
                tenant_recovery.records_dropped));
      }
    }
    if (!flags.data_dir.empty()) {
      std::fprintf(
          stderr,
          "resest_server: recovered %llu observation rows from %s "
          "(%llu segments, %llu records dropped%s%s)\n",
          static_cast<unsigned long long>(recovery.rows_recovered),
          flags.data_dir.c_str(),
          static_cast<unsigned long long>(recovery.segments_replayed),
          static_cast<unsigned long long>(recovery.records_dropped),
          recovery.clean() ? "" : ": ",
          recovery.clean() ? "" : recovery.detail.c_str());
    }
  }

  // The model is loaded/trained once and published under every tenant's
  // name — each publish gets its own globally unique version, so tenants'
  // slot-version cache keys never collide.
  std::shared_ptr<const ResourceEstimator> estimator;
  if (!flags.model_path.empty()) {
    auto loaded = std::make_shared<ResourceEstimator>();
    if (!loaded->LoadFromFile(flags.model_path)) {
      std::fprintf(stderr, "resest_server: failed to load model from %s\n",
                   flags.model_path.c_str());
      return 1;
    }
    estimator = std::move(loaded);
  } else {
    estimator = TrainDemoModel(flags, threads);
    if (estimator == nullptr) {
      std::fprintf(stderr, "resest_server: demo model training failed\n");
      return 1;
    }
  }
  const uint64_t version = tenants.PublishToAll(std::move(estimator));
  if (version == 0) {
    std::fprintf(stderr, "resest_server: model publish failed\n");
    return 1;
  }

  TenantManager::Tenant* default_tenant = tenants.Resolve(kDefaultTenant);
  ServingFrontend frontend(default_tenant->service.get(), &registry,
                           default_tenant->model_name);
  frontend.set_tenant_manager(&tenants);

  // Background refit loop: a dedicated thread (not the shared pool — a
  // refit blocks on pool futures) that periodically retrains and publishes
  // whatever slots crossed the policy, per tenant, stopping at drain.
  std::thread refit_thread;
  std::mutex refit_stop_mu;
  std::condition_variable refit_stop_cv;
  bool refit_stop = false;
  if (!flags.data_dir.empty() && flags.refit_interval_ms > 0) {
    refit_thread = std::thread([&]() {
      const auto interval =
          std::chrono::milliseconds(flags.refit_interval_ms);
      std::unique_lock<std::mutex> lock(refit_stop_mu);
      while (!refit_stop_cv.wait_for(lock, interval,
                                     [&]() { return refit_stop; })) {
        lock.unlock();
        const size_t published = tenants.RefitTenants();
        if (published > 0) {
          std::fprintf(stderr,
                       "resest_server: refit published %zu tenant(s)\n",
                       published);
        }
        lock.lock();
      }
    });
  }

  HttpServerOptions server_options;
  server_options.bind_address = flags.address;
  server_options.port = static_cast<uint16_t>(flags.port);
  server_options.io_threads = static_cast<size_t>(flags.io_threads);
  // The heartbeat/aging sweep rides the event loop's idle timer: loop 0
  // calls this at least every poll interval; the manager rate-limits.
  server_options.on_sweep = [&tenants]() { tenants.Heartbeat(); };
  HttpServer server(
      [&frontend](const HttpRequest& r, HttpResponseSender respond) {
        frontend.HandleAsync(r, std::move(respond));
      },
      server_options);
  frontend.set_http_server(&server);

  std::string error;
  if (!server.Start(&error)) {
    std::fprintf(stderr, "resest_server: %s\n", error.c_str());
    return 1;
  }

  // The test harness and CI smoke script parse this exact line for the
  // bound (possibly ephemeral) port; keep it first on stdout.
  std::printf(
      "resest_server listening on %s:%u (model %s v%llu, %zu threads, "
      "%zu tenants)\n",
      flags.address.c_str(), server.port(), flags.model_name.c_str(),
      static_cast<unsigned long long>(version), threads,
      tenants.tenant_count());
  std::fflush(stdout);

  ShutdownLatch::Wait();
  std::fprintf(stderr, "resest_server: draining...\n");
  server.Stop();  // Stops accepting; blocks until in-flight answered.

  if (refit_thread.joinable()) {
    {
      std::lock_guard<std::mutex> lock(refit_stop_mu);
      refit_stop = true;
    }
    refit_stop_cv.notify_one();
    refit_thread.join();
  }
  if (!flags.data_dir.empty()) {
    // Every answered /v1/observe row is in its tenant's WAL already
    // (append-before-memory under the log mutex); the drain makes it all
    // immutable: checkpoint the models + coverage, then fsync + seal the
    // active files.
    const bool drained = tenants.DrainAll();
    if (!drained) {
      std::fprintf(stderr, "resest_server: drain checkpoint failed\n");
    }
    for (const std::string& id : tenants.TenantIds()) {
      const TenantManager::Tenant* tenant = tenants.Resolve(id);
      if (tenant->trainer == nullptr) continue;
      const DurabilityStats d = tenant->trainer->durability_stats();
      // The default tenant keeps the pre-tenancy line format — the drain
      // test and CI smoke script scan for "resest_server: wal".
      if (id == kDefaultTenant) {
        std::printf(
            "resest_server: wal %s (%llu records, %llu segments, "
            "%llu append failures)\n",
            drained ? "sealed" : "seal FAILED",
            static_cast<unsigned long long>(d.wal.records_appended),
            static_cast<unsigned long long>(d.wal.segments_sealed),
            static_cast<unsigned long long>(d.wal_append_failures));
      } else {
        std::printf(
            "resest_server: tenant %s wal %s (%llu records, %llu segments, "
            "%llu append failures)\n",
            id.c_str(), drained ? "sealed" : "seal FAILED",
            static_cast<unsigned long long>(d.wal.records_appended),
            static_cast<unsigned long long>(d.wal.segments_sealed),
            static_cast<unsigned long long>(d.wal_append_failures));
      }
    }
  }

  uint64_t total_estimates = 0;
  uint64_t total_batches = 0;
  uint64_t total_expired = 0;
  for (const std::string& id : tenants.TenantIds()) {
    const ServiceStats stats = tenants.Resolve(id)->service->stats();
    total_estimates += stats.requests;
    total_batches += stats.batches;
    total_expired += stats.deadline_expired;
  }
  const ServiceStats default_stats = default_tenant->service->stats();
  std::printf(
      "resest_server: drained; served %llu http requests, %llu estimates "
      "(%llu batches, %llu expired, cache hit rate %.3f)\n",
      static_cast<unsigned long long>(server.requests_served()),
      static_cast<unsigned long long>(total_estimates),
      static_cast<unsigned long long>(total_batches),
      static_cast<unsigned long long>(total_expired),
      default_stats.CacheHitRate());
  std::fflush(stdout);
  return 0;
}
