// A minimal blocking HTTP/1.1 client for loopback use: the integration
// tests, the server-overhead bench scenario, and the example walkthrough
// all drive resest_server through this instead of shelling out to curl.
// One connection per client, keep-alive reuse, transparent reconnect when
// the server closed the previous connection.
#ifndef RESEST_SERVER_HTTP_CLIENT_H_
#define RESEST_SERVER_HTTP_CLIENT_H_

#include <cstdint>
#include <string>

namespace resest {

struct HttpClientResponse {
  int status = 0;
  std::string body;
};

class HttpClient {
 public:
  HttpClient() = default;
  ~HttpClient();

  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;

  /// Connects to host:port (numeric IPv4 host, e.g. "127.0.0.1"). False
  /// (with the reason in *error if non-null) on failure.
  bool Connect(const std::string& host, uint16_t port,
               std::string* error = nullptr);

  /// Issues one request and reads the full response. Reconnects once if the
  /// kept-alive connection turned out dead. False on transport failure.
  bool Request(const std::string& method, const std::string& target,
               const std::string& body, HttpClientResponse* response,
               std::string* error = nullptr);

  /// Convenience wrappers.
  bool Get(const std::string& target, HttpClientResponse* response,
           std::string* error = nullptr) {
    return Request("GET", target, "", response, error);
  }
  bool Post(const std::string& target, const std::string& body,
            HttpClientResponse* response, std::string* error = nullptr) {
    return Request("POST", target, body, response, error);
  }

  void Close();

 private:
  bool DoRequest(const std::string& method, const std::string& target,
                 const std::string& body, HttpClientResponse* response,
                 std::string* error);
  bool Reconnect(std::string* error);

  int fd_ = -1;
  std::string host_;
  uint16_t port_ = 0;
};

}  // namespace resest

#endif  // RESEST_SERVER_HTTP_CLIENT_H_
