#include "src/server/http_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace resest {
namespace {

bool SetError(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message + ": " + std::strerror(errno);
  return false;
}

/// Reads from fd into *buffer until it contains at least `need` bytes or
/// the peer closes. True iff `need` bytes are available.
bool ReadUntil(int fd, std::string* buffer, size_t need) {
  char chunk[8192];
  while (buffer->size() < need) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;
    buffer->append(chunk, static_cast<size_t>(n));
  }
  return true;
}

/// Reads until *buffer contains `delim`; returns its position or npos.
size_t ReadUntilDelim(int fd, std::string* buffer, const char* delim) {
  size_t at = buffer->find(delim);
  while (at == std::string::npos) {
    const size_t had = buffer->size();
    if (!ReadUntil(fd, buffer, had + 1)) return std::string::npos;
    at = buffer->find(delim, had < 4 ? 0 : had - 4);
  }
  return at;
}

}  // namespace

HttpClient::~HttpClient() { Close(); }

void HttpClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool HttpClient::Connect(const std::string& host, uint16_t port,
                         std::string* error) {
  Close();
  host_ = host;
  port_ = port;
  return Reconnect(error);
}

bool HttpClient::Reconnect(std::string* error) {
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) return SetError(error, "socket");
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port_);
  if (::inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1) {
    errno = EINVAL;
    Close();
    return SetError(error, "inet_pton(" + host_ + ")");
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Close();
    return SetError(error, "connect");
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return true;
}

bool HttpClient::Request(const std::string& method, const std::string& target,
                         const std::string& body,
                         HttpClientResponse* response, std::string* error) {
  if (fd_ < 0 && !Reconnect(error)) return false;
  if (DoRequest(method, target, body, response, error)) return true;
  // The kept-alive connection may have been closed between requests (idle
  // timeout, server drain); one reconnect distinguishes that from a down
  // server.
  if (!Reconnect(error)) return false;
  return DoRequest(method, target, body, response, error);
}

bool HttpClient::DoRequest(const std::string& method,
                           const std::string& target, const std::string& body,
                           HttpClientResponse* response, std::string* error) {
  std::string out = method + " " + target + " HTTP/1.1\r\n";
  out += "Host: " + host_ + "\r\n";
  if (!body.empty() || method == "POST") {
    out += "Content-Type: application/json\r\n";
    out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  }
  out += "\r\n";
  out += body;
  size_t sent = 0;
  while (sent < out.size()) {
    const ssize_t n =
        ::send(fd_, out.data() + sent, out.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return SetError(error, "send");
    }
    sent += static_cast<size_t>(n);
  }

  std::string buffer;
  const size_t header_end = ReadUntilDelim(fd_, &buffer, "\r\n\r\n");
  if (header_end == std::string::npos) {
    return SetError(error, "connection closed before response headers");
  }
  const std::string head = buffer.substr(0, header_end);

  // Status line: HTTP/1.1 NNN Reason
  const size_t sp = head.find(' ');
  if (sp == std::string::npos) {
    if (error != nullptr) *error = "malformed status line";
    return false;
  }
  response->status = std::atoi(head.c_str() + sp + 1);

  size_t content_length = 0;
  bool server_closes = false;
  size_t pos = head.find("\r\n");
  pos = pos == std::string::npos ? head.size() : pos + 2;
  while (pos < head.size()) {
    size_t eol = head.find("\r\n", pos);
    if (eol == std::string::npos) eol = head.size();
    std::string line = head.substr(pos, eol - pos);
    pos = eol + 2;
    for (char& c : line) c = static_cast<char>(std::tolower(c));
    if (line.rfind("content-length:", 0) == 0) {
      content_length = static_cast<size_t>(
          std::strtoull(line.c_str() + 15, nullptr, 10));
    } else if (line.rfind("connection:", 0) == 0 &&
               line.find("close") != std::string::npos) {
      server_closes = true;
    }
  }

  const size_t body_start = header_end + 4;
  if (!ReadUntil(fd_, &buffer, body_start + content_length)) {
    return SetError(error, "connection closed mid-body");
  }
  response->body = buffer.substr(body_start, content_length);
  if (server_closes) Close();
  return true;
}

}  // namespace resest
