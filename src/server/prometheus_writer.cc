#include "src/server/prometheus_writer.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace resest {
namespace {

std::string FormatDouble(double value) {
  if (std::isinf(value)) return value > 0 ? "+Inf" : "-Inf";
  if (std::isnan(value)) return "NaN";
  // Shortest representation that still round-trips: bucket bounds like
  // 0.004 read as "0.004", not "0.0040000000000000001".
  char buf[40];
  for (int precision = 15; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
    if (std::strtod(buf, nullptr) == value) break;
  }
  return buf;
}

/// Escapes a label value per the exposition format: backslash, double
/// quote, and newline.
void AppendLabelValue(const std::string& value, std::string* out) {
  for (char c : value) {
    switch (c) {
      case '\\': *out += "\\\\"; break;
      case '"': *out += "\\\""; break;
      case '\n': *out += "\\n"; break;
      default: *out += c;
    }
  }
}

}  // namespace

void PrometheusWriter::BeginFamily(const std::string& name,
                                   const std::string& help,
                                   const char* type) {
  text_ += "# HELP " + name + " " + help + "\n";
  text_ += "# TYPE " + name + " ";
  text_ += type;
  text_ += "\n";
}

void PrometheusWriter::SampleLine(const std::string& name,
                                  const PrometheusLabels& labels,
                                  const std::string& value) {
  text_ += name;
  if (!labels.empty()) {
    text_ += '{';
    for (size_t i = 0; i < labels.size(); ++i) {
      if (i > 0) text_ += ',';
      text_ += labels[i].first;
      text_ += "=\"";
      AppendLabelValue(labels[i].second, &text_);
      text_ += '"';
    }
    text_ += '}';
  }
  text_ += ' ';
  text_ += value;
  text_ += '\n';
}

void PrometheusWriter::Sample(const std::string& name,
                              const PrometheusLabels& labels, double value) {
  SampleLine(name, labels, FormatDouble(value));
}

void PrometheusWriter::Sample(const std::string& name,
                              const PrometheusLabels& labels,
                              uint64_t value) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
  SampleLine(name, labels, buf);
}

void PrometheusWriter::Histogram(const std::string& name,
                                 const PrometheusLabels& labels,
                                 const std::vector<double>& upper_bounds,
                                 const std::vector<uint64_t>& bucket_counts,
                                 double sum, uint64_t count) {
  uint64_t cumulative = 0;
  PrometheusLabels bucket_labels = labels;
  bucket_labels.emplace_back("le", "");
  for (size_t i = 0; i < upper_bounds.size(); ++i) {
    cumulative += i < bucket_counts.size() ? bucket_counts[i] : 0;
    bucket_labels.back().second = FormatDouble(upper_bounds[i]);
    Sample(name + "_bucket", bucket_labels, cumulative);
  }
  bucket_labels.back().second = "+Inf";
  Sample(name + "_bucket", bucket_labels, count);
  Sample(name + "_sum", labels, sum);
  Sample(name + "_count", labels, count);
}

std::string RenderServiceMetrics(const ServerMetricsSnapshot& snapshot) {
  PrometheusWriter w;
  const ServiceStats& s = snapshot.service;

  w.BeginFamily("resest_requests_total",
                "Individual estimates served OK.", "counter");
  w.Sample("resest_requests_total", {}, s.requests);
  w.BeginFamily("resest_batches_total", "Batch calls accepted.", "counter");
  w.Sample("resest_batches_total", {}, s.batches);
  w.BeginFamily("resest_rejected_batches_total",
                "Batch calls rejected as oversized.", "counter");
  w.Sample("resest_rejected_batches_total", {}, s.rejected_batches);
  w.BeginFamily("resest_errors_total",
                "Non-OK requests other than deadline expiry.", "counter");
  w.Sample("resest_errors_total", {}, s.errors);
  w.BeginFamily("resest_deadline_expired_total",
                "Requests expired by their deadline.", "counter");
  w.Sample("resest_deadline_expired_total", {}, s.deadline_expired);

  // Per-priority-lane accounting of the batched pipeline.
  w.BeginFamily("resest_lane_batches_total",
                "Batches finished, by priority lane.", "counter");
  for (size_t p = 0; p < kNumTaskPriorities; ++p) {
    w.Sample("resest_lane_batches_total",
             {{"priority", TaskPriorityName(static_cast<TaskPriority>(p))}},
             s.priorities[p].batches);
  }
  w.BeginFamily("resest_lane_requests_total",
                "Requests completed OK, by priority lane.", "counter");
  for (size_t p = 0; p < kNumTaskPriorities; ++p) {
    w.Sample("resest_lane_requests_total",
             {{"priority", TaskPriorityName(static_cast<TaskPriority>(p))}},
             s.priorities[p].requests);
  }
  w.BeginFamily("resest_lane_expired_total",
                "Requests expired by their deadline, by priority lane.",
                "counter");
  for (size_t p = 0; p < kNumTaskPriorities; ++p) {
    w.Sample("resest_lane_expired_total",
             {{"priority", TaskPriorityName(static_cast<TaskPriority>(p))}},
             s.priorities[p].expired);
  }
  w.BeginFamily("resest_lane_latency_mean_ms",
                "Mean batch latency (ms), by priority lane.", "gauge");
  for (size_t p = 0; p < kNumTaskPriorities; ++p) {
    w.Sample("resest_lane_latency_mean_ms",
             {{"priority", TaskPriorityName(static_cast<TaskPriority>(p))}},
             s.priorities[p].MeanLatencyMs());
  }
  w.BeginFamily("resest_lane_latency_max_ms",
                "Max batch latency (ms), by priority lane.", "gauge");
  for (size_t p = 0; p < kNumTaskPriorities; ++p) {
    w.Sample("resest_lane_latency_max_ms",
             {{"priority", TaskPriorityName(static_cast<TaskPriority>(p))}},
             s.priorities[p].max_latency_ms);
  }

  // The service's power-of-two latency histogram: bucket i counts batches
  // under 2^i microseconds, exposed in seconds per Prometheus convention.
  w.BeginFamily("resest_batch_latency_seconds",
                "Batch latency, submission to completion, by priority lane.",
                "histogram");
  std::vector<double> bounds(kServiceLatencyBuckets);
  for (size_t i = 0; i < kServiceLatencyBuckets; ++i) {
    bounds[i] = static_cast<double>(uint64_t{1} << i) / 1e6;
  }
  for (size_t p = 0; p < kNumTaskPriorities; ++p) {
    const PriorityLaneStats& lane = s.priorities[p];
    std::vector<uint64_t> counts(lane.latency_histogram.begin(),
                                 lane.latency_histogram.end());
    w.Histogram("resest_batch_latency_seconds",
                {{"priority", TaskPriorityName(static_cast<TaskPriority>(p))}},
                bounds, counts, lane.total_latency_ms / 1e3, lane.batches);
  }

  // Estimate cache, totals then the per-shard breakdown.
  w.BeginFamily("resest_cache_hits_total", "Estimate cache hits.", "counter");
  w.Sample("resest_cache_hits_total", {}, s.cache_hits);
  w.BeginFamily("resest_cache_misses_total", "Estimate cache misses.",
                "counter");
  w.Sample("resest_cache_misses_total", {}, s.cache_misses);
  w.BeginFamily("resest_cache_evictions_total",
                "Estimate cache entries dropped by the LRU bound.", "counter");
  w.Sample("resest_cache_evictions_total", {}, s.cache_evictions);
  w.BeginFamily("resest_cache_invalidated_total",
                "Estimate cache entries dropped by scoped invalidation.",
                "counter");
  w.Sample("resest_cache_invalidated_total", {}, snapshot.cache.invalidated);
  w.BeginFamily("resest_cache_entries", "Estimate cache current size.",
                "gauge");
  w.Sample("resest_cache_entries", {}, static_cast<uint64_t>(s.cache_entries));
  w.BeginFamily("resest_cache_shard_hits_total",
                "Estimate cache hits, by shard.", "counter");
  for (size_t i = 0; i < snapshot.cache.shards.size(); ++i) {
    w.Sample("resest_cache_shard_hits_total", {{"shard", std::to_string(i)}},
             snapshot.cache.shards[i].hits);
  }
  w.BeginFamily("resest_cache_shard_misses_total",
                "Estimate cache misses, by shard.", "counter");
  for (size_t i = 0; i < snapshot.cache.shards.size(); ++i) {
    w.Sample("resest_cache_shard_misses_total", {{"shard", std::to_string(i)}},
             snapshot.cache.shards[i].misses);
  }
  w.BeginFamily("resest_cache_shard_entries",
                "Estimate cache current size, by shard.", "gauge");
  for (size_t i = 0; i < snapshot.cache.shards.size(); ++i) {
    w.Sample("resest_cache_shard_entries", {{"shard", std::to_string(i)}},
             static_cast<uint64_t>(snapshot.cache.shards[i].entries));
  }

  // Model lineage: the active version plus every slot's last-changed
  // version (the delta-publish trail).
  w.BeginFamily("resest_model_version",
                "Active model version (0 = none).", "gauge");
  w.Sample("resest_model_version", {{"model", snapshot.model_name}},
           snapshot.model_version);
  w.BeginFamily("resest_model_slot_version",
                "Version at which each (op, resource) model slot last "
                "changed.",
                "gauge");
  for (const auto& slot : snapshot.slot_versions) {
    w.Sample("resest_model_slot_version",
             {{"model", snapshot.model_name},
              {"op", std::get<0>(slot)},
              {"resource", std::get<1>(slot)}},
             std::get<2>(slot));
  }

  // Durability: the observation WAL, startup recovery, and the in-memory
  // observation-log footprint (emitted only for durable servers, so a
  // scrape of a stateless server carries no misleading zeros).
  if (snapshot.has_durability) {
    const DurabilityStats& d = snapshot.durability;
    w.BeginFamily("resest_wal_ok",
                  "1 while the observation WAL accepts appends, 0 after a "
                  "write failure (degraded durability).",
                  "gauge");
    w.Sample("resest_wal_ok", {}, static_cast<uint64_t>(d.wal_ok ? 1 : 0));
    w.BeginFamily("resest_wal_records_total",
                  "Records appended to the observation WAL.", "counter");
    w.Sample("resest_wal_records_total", {}, d.wal.records_appended);
    w.BeginFamily("resest_wal_appended_bytes_total",
                  "Bytes appended to the observation WAL.", "counter");
    w.Sample("resest_wal_appended_bytes_total", {}, d.wal.bytes_appended);
    w.BeginFamily("resest_wal_segments_sealed_total",
                  "Active WAL files sealed into immutable segments.",
                  "counter");
    w.Sample("resest_wal_segments_sealed_total", {}, d.wal.segments_sealed);
    w.BeginFamily("resest_wal_fsyncs_total",
                  "fsync calls on the active WAL file.", "counter");
    w.Sample("resest_wal_fsyncs_total", {}, d.wal.fsyncs);
    w.BeginFamily("resest_wal_append_failures_total",
                  "Observations whose WAL append failed (kept in memory, "
                  "lost on restart).",
                  "counter");
    w.Sample("resest_wal_append_failures_total", {}, d.wal_append_failures);
    w.BeginFamily("resest_recovery_rows_recovered",
                  "Observation rows replayed from the WAL at startup.",
                  "gauge");
    w.Sample("resest_recovery_rows_recovered", {},
             d.recovery.rows_recovered);
    w.BeginFamily("resest_recovery_records_dropped",
                  "WAL records dropped at startup past the first "
                  "corruption.",
                  "gauge");
    w.Sample("resest_recovery_records_dropped", {},
             d.recovery.records_dropped);
    w.BeginFamily("resest_recovery_bytes_dropped",
                  "WAL bytes on disk not replayed at startup.", "gauge");
    w.Sample("resest_recovery_bytes_dropped", {}, d.recovery.bytes_dropped);
    w.BeginFamily("resest_obslog_memory_bytes",
                  "Current in-memory observation-log footprint.", "gauge");
    w.Sample("resest_obslog_memory_bytes", {},
             static_cast<uint64_t>(d.memory_bytes));
    w.BeginFamily("resest_obslog_memory_peak_bytes",
                  "Peak in-memory observation-log footprint.", "gauge");
    w.Sample("resest_obslog_memory_peak_bytes", {},
             static_cast<uint64_t>(d.memory_peak_bytes));
    w.BeginFamily("resest_obslog_memory_cap_bytes",
                  "Configured observation-log memory cap (0 = unbounded).",
                  "gauge");
    w.Sample("resest_obslog_memory_cap_bytes", {},
             static_cast<uint64_t>(d.memory_cap_bytes));
    w.BeginFamily("resest_obslog_spilled_rows_total",
                  "Window rows spilled into reservoirs by the bounds or "
                  "the memory cap.",
                  "counter");
    w.Sample("resest_obslog_spilled_rows_total", {}, d.spilled_rows);
  }

  // HTTP front end.
  w.BeginFamily("resest_http_requests_total",
                "HTTP requests answered (including parser-level errors).",
                "counter");
  w.Sample("resest_http_requests_total", {}, snapshot.http_requests_served);
  w.BeginFamily("resest_http_active_connections",
                "HTTP connections currently open.", "gauge");
  w.Sample("resest_http_active_connections", {},
           static_cast<uint64_t>(snapshot.http_active_connections));
  w.BeginFamily("resest_http_connections_accepted_total",
                "HTTP connections accepted since startup.", "counter");
  w.Sample("resest_http_connections_accepted_total", {},
           snapshot.http_connections_accepted);
  w.BeginFamily("resest_http_keepalive_requests_total",
                "HTTP requests beyond the first on their connection "
                "(keep-alive reuse).",
                "counter");
  w.Sample("resest_http_keepalive_requests_total", {},
           snapshot.http_keepalive_requests);

  // Cross-request micro-batch coalescing (emitted only when the server
  // runs with a coalescer, mirroring the durability block's convention).
  if (snapshot.has_coalescer) {
    const CoalescerStats& c = snapshot.coalescer;
    w.BeginFamily("resest_coalesce_submissions_total",
                  "Estimate submissions that entered a coalescing bucket.",
                  "counter");
    w.Sample("resest_coalesce_submissions_total", {}, c.submissions);
    w.BeginFamily("resest_coalesce_passthrough_total",
                  "Estimate submissions forwarded solo (deadline-carrying, "
                  "oversized, or coalescing disabled).",
                  "counter");
    w.Sample("resest_coalesce_passthrough_total", {}, c.passthrough);
    w.BeginFamily("resest_coalesce_flushes_total",
                  "Merged batches submitted, by flush trigger.", "counter");
    w.Sample("resest_coalesce_flushes_total", {{"trigger", "window"}},
             c.flush_window);
    w.Sample("resest_coalesce_flushes_total", {{"trigger", "full"}},
             c.flush_full);
    w.Sample("resest_coalesce_flushes_total", {{"trigger", "urgent"}},
             c.flush_urgent);
    w.Sample("resest_coalesce_flushes_total", {{"trigger", "drain"}},
             c.flush_drain);
    w.BeginFamily("resest_coalesce_batch_rows",
                  "Rows per merged batch handed to the service.",
                  "histogram");
    std::vector<double> row_bounds(kCoalesceRowsBuckets);
    for (size_t i = 0; i < kCoalesceRowsBuckets; ++i) {
      row_bounds[i] = static_cast<double>(uint64_t{1} << i);
    }
    w.Histogram("resest_coalesce_batch_rows", {}, row_bounds,
                std::vector<uint64_t>(c.batch_rows_histogram.begin(),
                                      c.batch_rows_histogram.end()),
                static_cast<double>(c.coalesced_rows), c.batches);
    w.BeginFamily("resest_coalesce_wait_seconds",
                  "Time each coalesced submission spent waiting for merge "
                  "partners.",
                  "histogram");
    std::vector<double> wait_bounds(kCoalesceWaitBuckets);
    for (size_t i = 0; i < kCoalesceWaitBuckets; ++i) {
      wait_bounds[i] = static_cast<double>(uint64_t{1} << i) / 1e6;
    }
    w.Histogram("resest_coalesce_wait_seconds", {}, wait_bounds,
                std::vector<uint64_t>(c.wait_histogram.begin(),
                                      c.wait_histogram.end()),
                c.total_wait_us / 1e6, c.submissions);
  }

  // Per-tenant load dimension (the heartbeat sweep's TenantStats): one
  // sample per tenant per family, so scrapes see disjoint {tenant="..."}
  // label sets — the isolation surface a capacity supervisor watches.
  if (!snapshot.tenants.empty()) {
    w.BeginFamily("resest_tenant_requests_total",
                  "Estimates served OK, by tenant.", "counter");
    for (const TenantStats& t : snapshot.tenants) {
      w.Sample("resest_tenant_requests_total", {{"tenant", t.tenant}},
               t.requests);
    }
    w.BeginFamily("resest_tenant_batches_total",
                  "Batches accepted, by tenant.", "counter");
    for (const TenantStats& t : snapshot.tenants) {
      w.Sample("resest_tenant_batches_total", {{"tenant", t.tenant}},
               t.batches);
    }
    w.BeginFamily("resest_tenant_qps",
                  "Estimates per second over the last heartbeat window, by "
                  "tenant.",
                  "gauge");
    for (const TenantStats& t : snapshot.tenants) {
      w.Sample("resest_tenant_qps", {{"tenant", t.tenant}}, t.qps);
    }
    w.BeginFamily("resest_tenant_cache_hits_total",
                  "Estimate cache hits in the tenant's cache region.",
                  "counter");
    for (const TenantStats& t : snapshot.tenants) {
      w.Sample("resest_tenant_cache_hits_total", {{"tenant", t.tenant}},
               t.cache_hits);
    }
    w.BeginFamily("resest_tenant_cache_misses_total",
                  "Estimate cache misses in the tenant's cache region.",
                  "counter");
    for (const TenantStats& t : snapshot.tenants) {
      w.Sample("resest_tenant_cache_misses_total", {{"tenant", t.tenant}},
               t.cache_misses);
    }
    w.BeginFamily("resest_tenant_cache_entries",
                  "Current size of the tenant's cache region.", "gauge");
    for (const TenantStats& t : snapshot.tenants) {
      w.Sample("resest_tenant_cache_entries", {{"tenant", t.tenant}},
               static_cast<uint64_t>(t.cache_entries));
    }
    w.BeginFamily("resest_tenant_cache_pressure",
                  "Tenant cache occupancy in [0, 1] (entries / capacity).",
                  "gauge");
    for (const TenantStats& t : snapshot.tenants) {
      w.Sample("resest_tenant_cache_pressure", {{"tenant", t.tenant}},
               t.cache_pressure);
    }
    w.BeginFamily("resest_tenant_obslog_bytes",
                  "In-memory observation-log footprint, by tenant (0 for "
                  "non-durable tenants).",
                  "gauge");
    for (const TenantStats& t : snapshot.tenants) {
      w.Sample("resest_tenant_obslog_bytes", {{"tenant", t.tenant}},
               t.obslog_bytes);
    }
    w.BeginFamily("resest_tenant_wal_records_total",
                  "Records appended to the tenant's observation WAL.",
                  "counter");
    for (const TenantStats& t : snapshot.tenants) {
      w.Sample("resest_tenant_wal_records_total", {{"tenant", t.tenant}},
               t.wal_records);
    }
    w.BeginFamily("resest_tenant_lane_latency_p99_ms",
                  "Approximate p99 batch latency (ms), by tenant and "
                  "priority lane.",
                  "gauge");
    for (const TenantStats& t : snapshot.tenants) {
      for (size_t p = 0; p < kNumTaskPriorities; ++p) {
        w.Sample("resest_tenant_lane_latency_p99_ms",
                 {{"tenant", t.tenant},
                  {"priority",
                   TaskPriorityName(static_cast<TaskPriority>(p))}},
                 t.lane_p99_ms[p]);
      }
    }
    w.BeginFamily("resest_tenant_model_version",
                  "Active model version of the tenant's model (0 = none).",
                  "gauge");
    for (const TenantStats& t : snapshot.tenants) {
      w.Sample("resest_tenant_model_version",
               {{"tenant", t.tenant}, {"model", t.model_name}},
               t.model_version);
    }
  }

  return w.text();
}

}  // namespace resest
