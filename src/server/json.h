// Minimal dependency-free JSON for the wire API: a recursive-descent parser
// into a tagged value tree, plus the escaping/formatting helpers the
// response writers need.
//
// Scope is deliberately small — exactly RFC 8259 syntax with two serving
// requirements layered on:
//  - Untrusted input: hard caps on nesting depth; the parser never recurses
//    past kMaxJsonDepth and reports a position-tagged error instead.
//  - Bit-exact doubles: AppendJsonNumber prints the shortest round-trip
//    form (std::to_chars), so parsing the text back recovers the exact bit
//    pattern, which is what lets the HTTP front end promise bit-identical
//    estimates end to end.
#ifndef RESEST_SERVER_JSON_H_
#define RESEST_SERVER_JSON_H_

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace resest {

inline constexpr size_t kMaxJsonDepth = 48;

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  /// Parses `text` (one JSON value, optionally whitespace-padded). On
  /// failure returns false and sets *error to a byte-offset-tagged message;
  /// *out is unspecified.
  static bool Parse(const std::string& text, JsonValue* out,
                    std::string* error);

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool as_bool() const { return bool_; }
  double as_number() const { return number_; }
  const std::string& as_string() const { return string_; }
  const std::vector<JsonValue>& items() const { return items_; }

  /// Object members in document order (empty for non-objects). Lets strict
  /// consumers reject keys they don't understand.
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }

  /// Object member by key, or null if absent (or not an object). Duplicate
  /// keys resolve to the last occurrence, matching common parsers.
  const JsonValue* Find(const std::string& key) const;

 private:
  struct Parser;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;                       ///< Array elements.
  std::vector<std::pair<std::string, JsonValue>> members_;  ///< Object.
};

/// Appends `s` as a JSON string literal (quotes included) with all
/// mandatory escapes.
void AppendJsonString(const std::string& s, std::string* out);

/// Appends a double in its shortest round-trip form: parsing the printed
/// text recovers the identical bit pattern for every finite value.
/// Non-finite values (unrepresentable in JSON) are emitted as null.
void AppendJsonNumber(double value, std::string* out);

}  // namespace resest

#endif  // RESEST_SERVER_JSON_H_
