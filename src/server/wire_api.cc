#include "src/server/wire_api.h"

#include <charconv>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <initializer_list>

namespace resest {
namespace {

/// Strict contract: a key we don't understand is a client error, not
/// something to silently ignore — typos ("dead_line_ms") fail loudly.
bool FindUnknownKey(const JsonValue& object,
                    std::initializer_list<const char*> allowed,
                    std::string* unknown) {
  for (const auto& member : object.members()) {
    bool known = false;
    for (const char* key : allowed) {
      if (member.first == key) {
        known = true;
        break;
      }
    }
    if (!known) {
      *unknown = member.first;
      return true;
    }
  }
  return false;
}

/// Single-pass scanner for the hot /v1/estimate body shape. It only ever
/// accepts inputs the JsonValue tree path would accept with identical
/// outputs; anything unusual — escaped strings, unknown or duplicate keys,
/// wrong types, out-of-range feature counts, syntax errors — makes it bail
/// so the caller can rerun the tree parser for the canonical verdict and
/// error message. Numbers go through the same from_chars/strtod pair as
/// JsonValue, so decoded doubles are bit-identical between the two paths.
struct FastEstimateScanner {
  const char* p;
  const char* end;

  void SkipSpace() {
    while (p < end &&
           (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r')) {
      ++p;
    }
  }

  bool Eat(char c) {
    SkipSpace();
    if (p < end && *p == c) {
      ++p;
      return true;
    }
    return false;
  }

  /// A string literal with no escapes and no control bytes: [*b, *e) is the
  /// raw content. Escaped strings bail to the tree path.
  bool RawString(const char** b, const char** e) {
    SkipSpace();
    if (p >= end || *p != '"') return false;
    ++p;
    *b = p;
    while (p < end) {
      const unsigned char c = static_cast<unsigned char>(*p);
      if (c == '"') {
        *e = p;
        ++p;
        return true;
      }
      if (c == '\\' || c < 0x20) return false;
      ++p;
    }
    return false;
  }

  /// Same grammar + conversion as JsonValue::Parser::ParseNumber.
  bool Number(double* out) {
    SkipSpace();
    const char* start = p;
    if (p < end && *p == '-') ++p;
    if (p >= end || *p < '0' || *p > '9') return false;
    if (*p == '0') {
      ++p;
    } else {
      while (p < end && *p >= '0' && *p <= '9') ++p;
    }
    if (p < end && *p == '.') {
      ++p;
      if (p >= end || *p < '0' || *p > '9') return false;
      while (p < end && *p >= '0' && *p <= '9') ++p;
    }
    if (p < end && (*p == 'e' || *p == 'E')) {
      ++p;
      if (p < end && (*p == '+' || *p == '-')) ++p;
      if (p >= end || *p < '0' || *p > '9') return false;
      while (p < end && *p >= '0' && *p <= '9') ++p;
    }
    const auto result = std::from_chars(start, p, *out);
    if (result.ec == std::errc::result_out_of_range) {
      std::string token(start, p);
      *out = std::strtod(token.c_str(), nullptr);
    }
    return true;
  }
};

bool SliceEquals(const char* b, const char* e, const char* literal) {
  const size_t n = std::strlen(literal);
  return static_cast<size_t>(e - b) == n && std::memcmp(b, literal, n) == 0;
}

bool FastParseRequestItems(FastEstimateScanner& s,
                           std::vector<EstimateRequest>* requests) {
  if (!s.Eat('[')) return false;
  requests->clear();
  s.SkipSpace();
  // An empty array is a wire error; let the tree path phrase it.
  if (s.p < s.end && *s.p == ']') return false;
  while (true) {
    if (!s.Eat('{')) return false;
    bool seen_op = false;
    bool seen_resource = false;
    bool seen_features = false;
    OpType op = OpType::kTableScan;
    Resource resource = Resource::kCpu;
    FeatureVector features{};
    while (true) {
      const char* kb;
      const char* ke;
      if (!s.RawString(&kb, &ke)) return false;
      if (!s.Eat(':')) return false;
      if (SliceEquals(kb, ke, "op")) {
        if (seen_op) return false;
        seen_op = true;
        const char* vb;
        const char* ve;
        if (!s.RawString(&vb, &ve)) return false;
        if (!ParseOpType(std::string(vb, ve), &op)) return false;
      } else if (SliceEquals(kb, ke, "resource")) {
        if (seen_resource) return false;
        seen_resource = true;
        const char* vb;
        const char* ve;
        if (!s.RawString(&vb, &ve)) return false;
        if (!ParseResource(std::string(vb, ve), &resource)) return false;
      } else if (SliceEquals(kb, ke, "features")) {
        if (seen_features) return false;
        seen_features = true;
        if (!s.Eat('[')) return false;
        s.SkipSpace();
        size_t count = 0;
        if (s.p < s.end && *s.p == ']') {
          ++s.p;
        } else {
          while (true) {
            if (count >= static_cast<size_t>(kNumFeatures)) return false;
            if (!s.Number(&features[count])) return false;
            ++count;
            s.SkipSpace();
            if (s.p < s.end && *s.p == ',') {
              ++s.p;
              continue;
            }
            if (s.p < s.end && *s.p == ']') {
              ++s.p;
              break;
            }
            return false;
          }
        }
      } else {
        return false;  // Unknown key: the tree path owns the diagnostic.
      }
      s.SkipSpace();
      if (s.p < s.end && *s.p == ',') {
        ++s.p;
        continue;
      }
      if (s.p < s.end && *s.p == '}') {
        ++s.p;
        break;
      }
      return false;
    }
    if (!seen_op || !seen_resource || !seen_features) return false;
    requests->push_back(EstimateRequest::ForOperator(op, features, resource));
    s.SkipSpace();
    if (s.p < s.end && *s.p == ',') {
      ++s.p;
      continue;
    }
    if (s.p < s.end && *s.p == ']') {
      ++s.p;
      return true;
    }
    return false;
  }
}

bool TryFastEstimateParse(const std::string& body,
                          std::vector<EstimateRequest>* requests,
                          SubmitOptions* options, std::string* tenant) {
  FastEstimateScanner s{body.data(), body.data() + body.size()};
  if (!s.Eat('{')) return false;
  *options = SubmitOptions{};
  if (tenant != nullptr) tenant->clear();
  bool seen_priority = false;
  bool seen_deadline = false;
  bool seen_tenant = false;
  bool seen_requests = false;
  s.SkipSpace();
  if (s.p >= s.end || *s.p == '}') return false;  // Missing "requests".
  while (true) {
    const char* kb;
    const char* ke;
    if (!s.RawString(&kb, &ke)) return false;
    if (!s.Eat(':')) return false;
    if (SliceEquals(kb, ke, "requests")) {
      if (seen_requests) return false;
      seen_requests = true;
      if (!FastParseRequestItems(s, requests)) return false;
    } else if (SliceEquals(kb, ke, "priority")) {
      if (seen_priority) return false;
      seen_priority = true;
      const char* vb;
      const char* ve;
      if (!s.RawString(&vb, &ve)) return false;
      if (!ParseTaskPriority(std::string(vb, ve), &options->priority)) {
        return false;
      }
    } else if (SliceEquals(kb, ke, "deadline_ms")) {
      if (seen_deadline) return false;
      seen_deadline = true;
      double ms = 0.0;
      if (!s.Number(&ms)) return false;
      if (!(ms > 0.0) || !std::isfinite(ms)) return false;
      options->deadline = std::chrono::steady_clock::now() +
                          std::chrono::microseconds(
                              static_cast<int64_t>(ms * 1000.0));
    } else if (SliceEquals(kb, ke, "tenant")) {
      if (seen_tenant) return false;
      seen_tenant = true;
      const char* vb;
      const char* ve;
      if (!s.RawString(&vb, &ve)) return false;
      if (tenant != nullptr) tenant->assign(vb, ve);
    } else {
      return false;
    }
    s.SkipSpace();
    if (s.p < s.end && *s.p == ',') {
      ++s.p;
      continue;
    }
    if (s.p < s.end && *s.p == '}') {
      ++s.p;
      break;
    }
    return false;
  }
  s.SkipSpace();
  if (s.p != s.end) return false;  // Trailing characters.
  return seen_requests;
}

}  // namespace

bool ParseEstimateWireBatch(const JsonValue& body,
                            std::vector<EstimateRequest>* requests,
                            SubmitOptions* options, std::string* error,
                            std::string* tenant) {
  if (!body.is_object()) {
    *error = "request body must be a JSON object";
    return false;
  }
  *options = SubmitOptions{};
  if (tenant != nullptr) tenant->clear();

  std::string unknown;
  if (FindUnknownKey(body, {"priority", "deadline_ms", "tenant", "requests"},
                     &unknown)) {
    *error = "unknown field \"" + unknown + "\"";
    return false;
  }

  if (const JsonValue* tenant_value = body.Find("tenant")) {
    if (!tenant_value->is_string()) {
      *error = "\"tenant\" must be a string";
      return false;
    }
    if (tenant != nullptr) *tenant = tenant_value->as_string();
  }
  if (const JsonValue* priority = body.Find("priority")) {
    if (!priority->is_string() ||
        !ParseTaskPriority(priority->as_string(), &options->priority)) {
      *error = "\"priority\" must be one of \"urgent\", \"normal\", \"bulk\"";
      return false;
    }
  }
  if (const JsonValue* deadline = body.Find("deadline_ms")) {
    const double ms = deadline->is_number() ? deadline->as_number() : -1.0;
    if (!(ms > 0.0) || !std::isfinite(ms)) {
      *error = "\"deadline_ms\" must be a positive number";
      return false;
    }
    options->deadline = std::chrono::steady_clock::now() +
                        std::chrono::microseconds(
                            static_cast<int64_t>(ms * 1000.0));
  }

  const JsonValue* items = body.Find("requests");
  if (items == nullptr || !items->is_array() || items->items().empty()) {
    *error = "\"requests\" must be a non-empty array";
    return false;
  }
  requests->clear();
  requests->reserve(items->items().size());
  for (size_t i = 0; i < items->items().size(); ++i) {
    const JsonValue& item = items->items()[i];
    const std::string at = "requests[" + std::to_string(i) + "]";
    if (!item.is_object()) {
      *error = at + " must be an object";
      return false;
    }
    if (FindUnknownKey(item, {"op", "resource", "features"}, &unknown)) {
      *error = at + " has unknown field \"" + unknown + "\"";
      return false;
    }
    OpType op;
    const JsonValue* op_value = item.Find("op");
    if (op_value == nullptr || !op_value->is_string() ||
        !ParseOpType(op_value->as_string(), &op)) {
      *error = at + ".op must be an operator type name (e.g. \"TableScan\")";
      return false;
    }
    Resource resource;
    const JsonValue* resource_value = item.Find("resource");
    if (resource_value == nullptr || !resource_value->is_string() ||
        !ParseResource(resource_value->as_string(), &resource)) {
      *error = at + ".resource must be \"CPU\" or \"IO\"";
      return false;
    }
    FeatureVector features{};
    const JsonValue* feature_values = item.Find("features");
    if (feature_values == nullptr || !feature_values->is_array()) {
      *error = at + ".features must be an array of numbers";
      return false;
    }
    if (feature_values->items().size() > static_cast<size_t>(kNumFeatures)) {
      *error = at + ".features has " +
               std::to_string(feature_values->items().size()) +
               " entries; at most " + std::to_string(kNumFeatures) +
               " are defined";
      return false;
    }
    for (size_t f = 0; f < feature_values->items().size(); ++f) {
      const JsonValue& fv = feature_values->items()[f];
      if (!fv.is_number()) {
        *error = at + ".features[" + std::to_string(f) + "] must be a number";
        return false;
      }
      features[f] = fv.as_number();
    }
    requests->push_back(EstimateRequest::ForOperator(op, features, resource));
  }
  return true;
}

bool ParseEstimateWireRequest(const std::string& body,
                              std::vector<EstimateRequest>* requests,
                              SubmitOptions* options, std::string* tenant,
                              std::string* error) {
  // Well-formed estimate traffic decodes in one pass with no JsonValue
  // tree; the fast scanner refuses anything it is not certain about, and
  // the tree path below then produces the canonical accept/reject.
  if (TryFastEstimateParse(body, requests, options, tenant)) return true;
  JsonValue tree;
  std::string syntax_error;
  if (!JsonValue::Parse(body, &tree, &syntax_error)) {
    *error = "malformed JSON: " + syntax_error;
    return false;
  }
  return ParseEstimateWireBatch(tree, requests, options, error, tenant);
}

std::string FormatEstimateWireResponse(
    const std::vector<EstimateResult>& results) {
  std::string out = "{\"model_version\":";
  out += std::to_string(results.empty() ? 0 : results.front().model_version);
  out += ",\"results\":[";
  for (size_t i = 0; i < results.size(); ++i) {
    if (i > 0) out += ',';
    const EstimateResult& r = results[i];
    out += "{\"status\":";
    AppendJsonString(EstimateStatusName(r.status), &out);
    out += ",\"value\":";
    AppendJsonNumber(r.value, &out);
    out += ",\"model_version\":";
    out += std::to_string(r.model_version);
    out += '}';
  }
  out += "]}";
  return out;
}

int EstimateWireHttpStatus(const std::vector<EstimateResult>& results) {
  if (results.empty()) return 200;
  EstimateStatus worst = EstimateStatus::kOk;
  for (const EstimateResult& r : results) {
    if (r.ok()) return 200;  // Partial success still delivers a 200 body.
    if (worst == EstimateStatus::kOk) worst = r.status;
  }
  return EstimateStatusHttpCode(worst);
}

bool ParseObserveWireBatch(const JsonValue& body,
                           std::vector<ObserveWireRow>* rows,
                           std::string* error, std::string* tenant) {
  if (!body.is_object()) {
    *error = "request body must be a JSON object";
    return false;
  }
  if (tenant != nullptr) tenant->clear();
  std::string unknown;
  if (FindUnknownKey(body, {"tenant", "observations"}, &unknown)) {
    *error = "unknown field \"" + unknown + "\"";
    return false;
  }
  if (const JsonValue* tenant_value = body.Find("tenant")) {
    if (!tenant_value->is_string()) {
      *error = "\"tenant\" must be a string";
      return false;
    }
    if (tenant != nullptr) *tenant = tenant_value->as_string();
  }
  const JsonValue* items = body.Find("observations");
  if (items == nullptr || !items->is_array() || items->items().empty()) {
    *error = "\"observations\" must be a non-empty array";
    return false;
  }
  rows->clear();
  rows->reserve(items->items().size());
  for (size_t i = 0; i < items->items().size(); ++i) {
    const JsonValue& item = items->items()[i];
    const std::string at = "observations[" + std::to_string(i) + "]";
    if (!item.is_object()) {
      *error = at + " must be an object";
      return false;
    }
    if (FindUnknownKey(item, {"op", "resource", "features", "label"},
                       &unknown)) {
      *error = at + " has unknown field \"" + unknown + "\"";
      return false;
    }
    ObserveWireRow row;
    const JsonValue* op_value = item.Find("op");
    if (op_value == nullptr || !op_value->is_string() ||
        !ParseOpType(op_value->as_string(), &row.op)) {
      *error = at + ".op must be an operator type name (e.g. \"TableScan\")";
      return false;
    }
    const JsonValue* resource_value = item.Find("resource");
    if (resource_value == nullptr || !resource_value->is_string() ||
        !ParseResource(resource_value->as_string(), &row.resource)) {
      *error = at + ".resource must be \"CPU\" or \"IO\"";
      return false;
    }
    const JsonValue* feature_values = item.Find("features");
    if (feature_values == nullptr || !feature_values->is_array()) {
      *error = at + ".features must be an array of numbers";
      return false;
    }
    if (feature_values->items().size() > static_cast<size_t>(kNumFeatures)) {
      *error = at + ".features has " +
               std::to_string(feature_values->items().size()) +
               " entries; at most " + std::to_string(kNumFeatures) +
               " are defined";
      return false;
    }
    for (size_t f = 0; f < feature_values->items().size(); ++f) {
      const JsonValue& fv = feature_values->items()[f];
      if (!fv.is_number()) {
        *error = at + ".features[" + std::to_string(f) + "] must be a number";
        return false;
      }
      row.features[f] = fv.as_number();
    }
    const JsonValue* label = item.Find("label");
    if (label == nullptr || !label->is_number() ||
        !std::isfinite(label->as_number())) {
      *error = at + ".label must be a finite number";
      return false;
    }
    row.label = label->as_number();
    rows->push_back(row);
  }
  return true;
}

std::string FormatObserveWireResponse(size_t accepted,
                                      uint64_t model_version) {
  std::string out = "{\"accepted\":" + std::to_string(accepted);
  out += ",\"model_version\":" + std::to_string(model_version) + "}";
  return out;
}

std::string FormatWireError(const std::string& message) {
  std::string out = "{\"error\":";
  AppendJsonString(message, &out);
  out += "}";
  return out;
}

}  // namespace resest
