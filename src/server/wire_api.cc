#include "src/server/wire_api.h"

#include <chrono>
#include <cmath>
#include <initializer_list>

namespace resest {
namespace {

/// Strict contract: a key we don't understand is a client error, not
/// something to silently ignore — typos ("dead_line_ms") fail loudly.
bool FindUnknownKey(const JsonValue& object,
                    std::initializer_list<const char*> allowed,
                    std::string* unknown) {
  for (const auto& member : object.members()) {
    bool known = false;
    for (const char* key : allowed) {
      if (member.first == key) {
        known = true;
        break;
      }
    }
    if (!known) {
      *unknown = member.first;
      return true;
    }
  }
  return false;
}

}  // namespace

bool ParseEstimateWireBatch(const JsonValue& body,
                            std::vector<EstimateRequest>* requests,
                            SubmitOptions* options, std::string* error) {
  if (!body.is_object()) {
    *error = "request body must be a JSON object";
    return false;
  }
  *options = SubmitOptions{};

  std::string unknown;
  if (FindUnknownKey(body, {"priority", "deadline_ms", "requests"},
                     &unknown)) {
    *error = "unknown field \"" + unknown + "\"";
    return false;
  }

  if (const JsonValue* priority = body.Find("priority")) {
    if (!priority->is_string() ||
        !ParseTaskPriority(priority->as_string(), &options->priority)) {
      *error = "\"priority\" must be one of \"urgent\", \"normal\", \"bulk\"";
      return false;
    }
  }
  if (const JsonValue* deadline = body.Find("deadline_ms")) {
    const double ms = deadline->is_number() ? deadline->as_number() : -1.0;
    if (!(ms > 0.0) || !std::isfinite(ms)) {
      *error = "\"deadline_ms\" must be a positive number";
      return false;
    }
    options->deadline = std::chrono::steady_clock::now() +
                        std::chrono::microseconds(
                            static_cast<int64_t>(ms * 1000.0));
  }

  const JsonValue* items = body.Find("requests");
  if (items == nullptr || !items->is_array() || items->items().empty()) {
    *error = "\"requests\" must be a non-empty array";
    return false;
  }
  requests->clear();
  requests->reserve(items->items().size());
  for (size_t i = 0; i < items->items().size(); ++i) {
    const JsonValue& item = items->items()[i];
    const std::string at = "requests[" + std::to_string(i) + "]";
    if (!item.is_object()) {
      *error = at + " must be an object";
      return false;
    }
    if (FindUnknownKey(item, {"op", "resource", "features"}, &unknown)) {
      *error = at + " has unknown field \"" + unknown + "\"";
      return false;
    }
    OpType op;
    const JsonValue* op_value = item.Find("op");
    if (op_value == nullptr || !op_value->is_string() ||
        !ParseOpType(op_value->as_string(), &op)) {
      *error = at + ".op must be an operator type name (e.g. \"TableScan\")";
      return false;
    }
    Resource resource;
    const JsonValue* resource_value = item.Find("resource");
    if (resource_value == nullptr || !resource_value->is_string() ||
        !ParseResource(resource_value->as_string(), &resource)) {
      *error = at + ".resource must be \"CPU\" or \"IO\"";
      return false;
    }
    FeatureVector features{};
    const JsonValue* feature_values = item.Find("features");
    if (feature_values == nullptr || !feature_values->is_array()) {
      *error = at + ".features must be an array of numbers";
      return false;
    }
    if (feature_values->items().size() > static_cast<size_t>(kNumFeatures)) {
      *error = at + ".features has " +
               std::to_string(feature_values->items().size()) +
               " entries; at most " + std::to_string(kNumFeatures) +
               " are defined";
      return false;
    }
    for (size_t f = 0; f < feature_values->items().size(); ++f) {
      const JsonValue& fv = feature_values->items()[f];
      if (!fv.is_number()) {
        *error = at + ".features[" + std::to_string(f) + "] must be a number";
        return false;
      }
      features[f] = fv.as_number();
    }
    requests->push_back(EstimateRequest::ForOperator(op, features, resource));
  }
  return true;
}

std::string FormatEstimateWireResponse(
    const std::vector<EstimateResult>& results) {
  std::string out = "{\"model_version\":";
  out += std::to_string(results.empty() ? 0 : results.front().model_version);
  out += ",\"results\":[";
  for (size_t i = 0; i < results.size(); ++i) {
    if (i > 0) out += ',';
    const EstimateResult& r = results[i];
    out += "{\"status\":";
    AppendJsonString(EstimateStatusName(r.status), &out);
    out += ",\"value\":";
    AppendJsonNumber(r.value, &out);
    out += ",\"model_version\":";
    out += std::to_string(r.model_version);
    out += '}';
  }
  out += "]}";
  return out;
}

int EstimateWireHttpStatus(const std::vector<EstimateResult>& results) {
  if (results.empty()) return 200;
  EstimateStatus worst = EstimateStatus::kOk;
  for (const EstimateResult& r : results) {
    if (r.ok()) return 200;  // Partial success still delivers a 200 body.
    if (worst == EstimateStatus::kOk) worst = r.status;
  }
  return EstimateStatusHttpCode(worst);
}

bool ParseObserveWireBatch(const JsonValue& body,
                           std::vector<ObserveWireRow>* rows,
                           std::string* error) {
  if (!body.is_object()) {
    *error = "request body must be a JSON object";
    return false;
  }
  std::string unknown;
  if (FindUnknownKey(body, {"observations"}, &unknown)) {
    *error = "unknown field \"" + unknown + "\"";
    return false;
  }
  const JsonValue* items = body.Find("observations");
  if (items == nullptr || !items->is_array() || items->items().empty()) {
    *error = "\"observations\" must be a non-empty array";
    return false;
  }
  rows->clear();
  rows->reserve(items->items().size());
  for (size_t i = 0; i < items->items().size(); ++i) {
    const JsonValue& item = items->items()[i];
    const std::string at = "observations[" + std::to_string(i) + "]";
    if (!item.is_object()) {
      *error = at + " must be an object";
      return false;
    }
    if (FindUnknownKey(item, {"op", "resource", "features", "label"},
                       &unknown)) {
      *error = at + " has unknown field \"" + unknown + "\"";
      return false;
    }
    ObserveWireRow row;
    const JsonValue* op_value = item.Find("op");
    if (op_value == nullptr || !op_value->is_string() ||
        !ParseOpType(op_value->as_string(), &row.op)) {
      *error = at + ".op must be an operator type name (e.g. \"TableScan\")";
      return false;
    }
    const JsonValue* resource_value = item.Find("resource");
    if (resource_value == nullptr || !resource_value->is_string() ||
        !ParseResource(resource_value->as_string(), &row.resource)) {
      *error = at + ".resource must be \"CPU\" or \"IO\"";
      return false;
    }
    const JsonValue* feature_values = item.Find("features");
    if (feature_values == nullptr || !feature_values->is_array()) {
      *error = at + ".features must be an array of numbers";
      return false;
    }
    if (feature_values->items().size() > static_cast<size_t>(kNumFeatures)) {
      *error = at + ".features has " +
               std::to_string(feature_values->items().size()) +
               " entries; at most " + std::to_string(kNumFeatures) +
               " are defined";
      return false;
    }
    for (size_t f = 0; f < feature_values->items().size(); ++f) {
      const JsonValue& fv = feature_values->items()[f];
      if (!fv.is_number()) {
        *error = at + ".features[" + std::to_string(f) + "] must be a number";
        return false;
      }
      row.features[f] = fv.as_number();
    }
    const JsonValue* label = item.Find("label");
    if (label == nullptr || !label->is_number() ||
        !std::isfinite(label->as_number())) {
      *error = at + ".label must be a finite number";
      return false;
    }
    row.label = label->as_number();
    rows->push_back(row);
  }
  return true;
}

std::string FormatObserveWireResponse(size_t accepted,
                                      uint64_t model_version) {
  std::string out = "{\"accepted\":" + std::to_string(accepted);
  out += ",\"model_version\":" + std::to_string(model_version) + "}";
  return out;
}

std::string FormatWireError(const std::string& message) {
  std::string out = "{\"error\":";
  AppendJsonString(message, &out);
  out += "}";
  return out;
}

}  // namespace resest
