// The request router of resest_server: maps the wire endpoints onto the
// estimation service. Transport-free (it is just an HttpHandler), so the
// integration tests can drive it directly as well as over a socket.
//
//   POST /v1/estimate  JSON batch -> EstimateBatch (priority/deadline map
//                      onto SubmitOptions; per-result status in the body;
//                      whole-batch failures map onto the status's stable
//                      HTTP code, e.g. kDeadlineExceeded -> 504).
//   POST /v1/observe   JSON batch of labeled rows -> IncrementalTrainer::
//                      Append (WAL-backed when the server runs with
//                      --data-dir); 503 when no trainer is attached.
//   GET  /healthz      200 {"status":"ok",...} iff a model snapshot is
//                      active, 503 otherwise.
//   GET  /metrics      Prometheus text exposition of ServiceStats, the
//                      estimate cache (per shard), model/slot versions,
//                      WAL/recovery/observation-log durability counters,
//                      the HTTP front end's own counters, and the
//                      per-tenant resest_tenant_* families.
//   GET  /v1/tenants   JSON snapshot of every tenant's TenantStats (qps,
//                      cache pressure, obslog bytes, per-lane latency) —
//                      the admin surface a capacity supervisor polls.
//
// Tenancy: every estimate/observe request belongs to a tenant, named by
// the X-Resest-Tenant header or the body's "tenant" field (both present
// must agree; neither means the default tenant). With a TenantManager
// attached the request is routed to that tenant's own service, coalescer
// and trainer; unknown tenants get 404. Without one (single-tenant tests
// and embedders) only the default tenant exists.
//
// Malformed JSON and unknown routes are answered without touching the
// service; oversized bodies never reach the handler at all (the server
// rejects them with 400 first).
#ifndef RESEST_SERVER_SERVING_FRONTEND_H_
#define RESEST_SERVER_SERVING_FRONTEND_H_

#include <functional>
#include <string>

#include "src/server/http_server.h"
#include "src/serving/batch_coalescer.h"
#include "src/serving/estimation_service.h"
#include "src/serving/model_registry.h"
#include "src/serving/tenant_manager.h"
#include "src/training/incremental_trainer.h"

namespace resest {

class ServingFrontend {
 public:
  /// `service` and `registry` must outlive the frontend. The model name is
  /// used for /healthz and the model-version metrics (it should match
  /// the service's ServiceOptions::model_name).
  ServingFrontend(const EstimationService* service,
                  const ModelRegistry* registry, std::string model_name);

  /// Routes one request; the HttpHandler to hand to HttpServer
  /// ([this](const HttpRequest& r) { return frontend.Handle(r); }).
  HttpResponse Handle(const HttpRequest& request) const;

  /// Event-loop form of Handle: /v1/estimate goes through the coalescer
  /// (when attached) or the service's asynchronous SubmitBatch, so the
  /// calling I/O thread never blocks on estimation; `respond` is invoked
  /// exactly once, possibly from another thread. Every other route is
  /// answered inline via Handle(). The response bytes are identical to
  /// Handle()'s for the same request.
  void HandleAsync(const HttpRequest& request,
                   std::function<void(HttpResponse)> respond) const;

  /// Optional: lets /metrics include the server's own request/connection
  /// counters. Call after constructing the server; null to detach.
  void set_http_server(const HttpServer* server) { http_server_ = server; }

  /// Optional: routes HandleAsync estimate submissions through `coalescer`
  /// (which must wrap the same service and outlive the frontend) and adds
  /// the coalescing families to /metrics. Null to detach. Applies to the
  /// default tenant only; a TenantManager's tenants carry their own.
  void set_coalescer(BatchCoalescer* coalescer) { coalescer_ = coalescer; }

  /// Optional: enables POST /v1/observe and the durability metrics. The
  /// trainer must outlive the frontend; null (the default) answers observe
  /// requests with 503. Applies to the default tenant only.
  void set_trainer(IncrementalTrainer* trainer) { trainer_ = trainer; }

  /// Optional: multi-tenant routing. When set, every estimate/observe/
  /// healthz request resolves its tenant against `manager` (404 for
  /// unknown ids) and the constructor-provided service plus the
  /// set_coalescer/set_trainer seams are ignored in favor of each tenant's
  /// own. The manager must outlive the frontend; null to detach.
  void set_tenant_manager(TenantManager* manager) { tenants_ = manager; }

 private:
  /// One request's resolved tenant universe (pointers into the manager's
  /// Tenant, or the frontend's single-tenant members).
  struct RoutedTenant {
    std::string id;
    std::string model_name;
    const EstimationService* service = nullptr;
    BatchCoalescer* coalescer = nullptr;
    IncrementalTrainer* trainer = nullptr;
  };

  /// Resolves the request's tenant from the X-Resest-Tenant header and the
  /// body's "tenant" field (`body_tenant`, empty when absent). False =>
  /// *error_response holds the 400/404 to return.
  bool RouteTenant(const HttpRequest& request, const std::string& body_tenant,
                   RoutedTenant* out, HttpResponse* error_response) const;

  HttpResponse HandleEstimate(const HttpRequest& request) const;
  HttpResponse HandleObserve(const HttpRequest& request) const;
  HttpResponse HandleHealthz(const HttpRequest& request) const;
  HttpResponse HandleMetrics() const;
  HttpResponse HandleTenants() const;
  /// The tenant snapshots /metrics and /v1/tenants render: the manager's,
  /// or a synthesized default-tenant entry in single-tenant mode.
  std::vector<TenantStats> TenantSnapshots() const;

  const EstimationService* service_;
  const ModelRegistry* registry_;
  std::string model_name_;
  const HttpServer* http_server_ = nullptr;
  BatchCoalescer* coalescer_ = nullptr;
  IncrementalTrainer* trainer_ = nullptr;
  TenantManager* tenants_ = nullptr;
};

}  // namespace resest

#endif  // RESEST_SERVER_SERVING_FRONTEND_H_
