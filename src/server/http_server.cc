#include "src/server/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace resest {
namespace {

bool EqualsIgnoreCase(const std::string& a, const std::string& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

HttpResponse MakeError(int status, const std::string& message) {
  HttpResponse response;
  response.status = status;
  response.body = message;
  response.body.push_back('\n');
  return response;
}

void CloseFd(int fd) {
  if (fd >= 0) ::close(fd);
}

}  // namespace

const std::string* HttpRequest::FindHeader(const std::string& name) const {
  for (const auto& header : headers) {
    if (EqualsIgnoreCase(header.first, name)) return &header.second;
  }
  return nullptr;
}

const char* HttpReasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 413: return "Payload Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
  }
  return "Status";
}

HttpServer::HttpServer(ThreadPool* pool, HttpHandler handler,
                       HttpServerOptions options)
    : pool_(pool), handler_(std::move(handler)), options_(std::move(options)) {
  if (options_.poll_interval_ms <= 0) options_.poll_interval_ms = 100;
}

HttpServer::~HttpServer() { Stop(); }

bool HttpServer::Start(std::string* error) {
  auto fail = [&](const std::string& message) {
    if (error != nullptr) *error = message + ": " + std::strerror(errno);
    if (listen_fd_ >= 0) {
      CloseFd(listen_fd_);
      listen_fd_ = -1;
    }
    return false;
  };
  if (listen_fd_ >= 0) {
    if (error != nullptr) *error = "already started";
    return false;
  }
  stopping_.store(false, std::memory_order_relaxed);

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return fail("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    errno = EINVAL;
    return fail("inet_pton(" + options_.bind_address + ")");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return fail("bind");
  }
  if (::listen(listen_fd_, options_.backlog) != 0) return fail("listen");

  sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) != 0) {
    return fail("getsockname");
  }
  port_ = ntohs(bound.sin_port);

  accept_thread_ = std::thread([this]() { AcceptLoop(); });
  return true;
}

void HttpServer::Stop() {
  if (listen_fd_ < 0 && !accept_thread_.joinable()) return;
  stopping_.store(true, std::memory_order_relaxed);
  // Closing the listener makes the accept loop's poll report an error and
  // exit; connections notice stopping_ at their next poll tick.
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    CloseFd(listen_fd_);
    listen_fd_ = -1;
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::unique_lock<std::mutex> lock(conn_mu_);
  conn_idle_.wait(lock, [this]() { return open_connections_ == 0; });
  port_ = 0;
}

size_t HttpServer::active_connections() const {
  std::lock_guard<std::mutex> lock(conn_mu_);
  return open_connections_;
}

void HttpServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    struct pollfd pfd;
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int ready = ::poll(&pfd, 1, options_.poll_interval_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;  // listener closed by Stop()
    }
    if (ready == 0 || (pfd.revents & POLLIN) == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;  // listener closed by Stop()
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      ++open_connections_;
    }
    try {
      pool_->Submit([this, fd]() { ServeConnection(fd); });
    } catch (...) {
      // Pool shutting down under us (lifecycle misuse); serve inline so the
      // accepted client still gets answers and the drain count balances.
      ServeConnection(fd);
    }
  }
}

void HttpServer::ServeConnection(int fd) {
  std::string buffer;
  while (true) {
    HttpRequest request;
    HttpResponse error_response;
    bool keep_alive = true;
    const int got =
        ReadRequest(fd, &buffer, &request, &keep_alive, &error_response);
    if (got == 0) break;
    if (got < 0) {
      // Count before writing: once a client has read its response, the
      // counter is guaranteed to include it.
      requests_served_.fetch_add(1, std::memory_order_relaxed);
      WriteResponse(fd, error_response, /*keep_alive=*/false);
      break;
    }
    HttpResponse response;
    try {
      response = handler_(request);
    } catch (...) {
      response = MakeError(500, "internal error");
    }
    // A response is written even when Stop() raced the handler — draining
    // means answering everything accepted, then closing.
    if (stopping_.load(std::memory_order_relaxed)) keep_alive = false;
    requests_served_.fetch_add(1, std::memory_order_relaxed);
    const bool written = WriteResponse(fd, response, keep_alive);
    if (!written || !keep_alive) break;
  }
  CloseFd(fd);
  std::lock_guard<std::mutex> lock(conn_mu_);
  if (--open_connections_ == 0) conn_idle_.notify_all();
}

int HttpServer::ReadRequest(int fd, std::string* buffer, HttpRequest* request,
                            bool* keep_alive, HttpResponse* error_response) {
  auto fail = [&](int status, const std::string& message) {
    *error_response = MakeError(status, message);
    return -1;
  };

  size_t header_end = std::string::npos;
  int idle_ms = 0;
  while (true) {
    header_end = buffer->find("\r\n\r\n");
    if (header_end != std::string::npos) break;
    if (buffer->size() > options_.max_header_bytes) {
      return fail(400, "request headers too large");
    }
    // Idle keep-alive connections close on server drain or idle timeout;
    // a half-received request keeps its grace period until the idle clock
    // runs out. A request whose bytes reached the socket before the drain
    // began is NOT idle — one zero-timeout poll decides, so anything a
    // client finished sending pre-SIGTERM is still answered.
    if (buffer->empty() && stopping_.load(std::memory_order_relaxed)) {
      struct pollfd pending;
      pending.fd = fd;
      pending.events = POLLIN;
      pending.revents = 0;
      if (::poll(&pending, 1, 0) <= 0 || (pending.revents & POLLIN) == 0) {
        return 0;
      }
    }
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int ready = ::poll(&pfd, 1, options_.poll_interval_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return 0;
    }
    if (ready == 0) {
      idle_ms += options_.poll_interval_ms;
      if (idle_ms >= options_.idle_timeout_ms) return 0;
      continue;
    }
    char chunk[8192];
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      return 0;
    }
    if (n == 0) return 0;  // peer closed (mid-request or between requests)
    idle_ms = 0;
    buffer->append(chunk, static_cast<size_t>(n));
  }

  // --- Request line. ---
  const std::string head = buffer->substr(0, header_end);
  size_t line_end = head.find("\r\n");
  const std::string request_line =
      line_end == std::string::npos ? head : head.substr(0, line_end);
  const size_t sp1 = request_line.find(' ');
  const size_t sp2 =
      sp1 == std::string::npos ? std::string::npos
                               : request_line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    return fail(400, "malformed request line");
  }
  request->method = request_line.substr(0, sp1);
  std::string target = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::string version = request_line.substr(sp2 + 1);
  if (version != "HTTP/1.1" && version != "HTTP/1.0") {
    return fail(400, "unsupported HTTP version");
  }
  const size_t question = target.find('?');
  if (question != std::string::npos) {
    request->query = target.substr(question + 1);
    target.resize(question);
  }
  request->target = std::move(target);

  // --- Headers. ---
  request->headers.clear();
  size_t pos = line_end == std::string::npos ? head.size() : line_end + 2;
  while (pos < head.size()) {
    size_t eol = head.find("\r\n", pos);
    if (eol == std::string::npos) eol = head.size();
    const std::string line = head.substr(pos, eol - pos);
    pos = eol + 2;
    const size_t colon = line.find(':');
    if (colon == std::string::npos) return fail(400, "malformed header");
    std::string value = line.substr(colon + 1);
    const size_t first = value.find_first_not_of(" \t");
    const size_t last = value.find_last_not_of(" \t");
    value = first == std::string::npos
                ? std::string()
                : value.substr(first, last - first + 1);
    request->headers.emplace_back(line.substr(0, colon), std::move(value));
  }

  // --- Body. ---
  if (request->FindHeader("Transfer-Encoding") != nullptr) {
    return fail(400, "transfer encodings not supported");
  }
  size_t content_length = 0;
  if (const std::string* cl = request->FindHeader("Content-Length")) {
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(cl->c_str(), &end, 10);
    if (end == cl->c_str() || *end != '\0') {
      return fail(400, "malformed Content-Length");
    }
    content_length = static_cast<size_t>(parsed);
  }
  if (content_length > options_.max_body_bytes) {
    return fail(400, "request body too large");
  }
  const size_t body_start = header_end + 4;
  idle_ms = 0;
  while (buffer->size() - body_start < content_length) {
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int ready = ::poll(&pfd, 1, options_.poll_interval_ms);
    if (ready < 0 && errno != EINTR) return 0;
    if (ready == 0) {
      idle_ms += options_.poll_interval_ms;
      if (idle_ms >= options_.idle_timeout_ms) return 0;
      continue;
    }
    if (ready <= 0) continue;
    char chunk[8192];
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      return 0;
    }
    if (n == 0) return 0;
    idle_ms = 0;
    buffer->append(chunk, static_cast<size_t>(n));
  }
  request->body = buffer->substr(body_start, content_length);
  // Preserve pipelined bytes beyond this request for the next read.
  buffer->erase(0, body_start + content_length);

  const std::string* connection = request->FindHeader("Connection");
  if (connection != nullptr && EqualsIgnoreCase(*connection, "close")) {
    *keep_alive = false;
  } else if (version == "HTTP/1.0") {
    *keep_alive =
        connection != nullptr && EqualsIgnoreCase(*connection, "keep-alive");
  } else {
    *keep_alive = true;
  }
  return 1;
}

bool HttpServer::WriteResponse(int fd, const HttpResponse& response,
                               bool keep_alive) {
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    HttpReasonPhrase(response.status) + "\r\n";
  out += "Content-Type: " + response.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  out += keep_alive ? "Connection: keep-alive\r\n" : "Connection: close\r\n";
  out += "\r\n";
  out += response.body;
  size_t sent = 0;
  while (sent < out.size()) {
    const ssize_t n =
        ::send(fd, out.data() + sent, out.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;  // peer gone; nothing further to deliver
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace resest
