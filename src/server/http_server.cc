#include "src/server/http_server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#if defined(__linux__)
#include <sys/epoll.h>
#endif

#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <unordered_map>

namespace resest {
namespace {

bool EqualsIgnoreCase(const std::string& a, const std::string& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

HttpResponse MakeError(int status, const std::string& message) {
  HttpResponse response;
  response.status = status;
  response.body = message;
  response.body.push_back('\n');
  return response;
}

void CloseFd(int fd) {
  if (fd >= 0) ::close(fd);
}

bool SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

/// Serializes one response onto a connection's output buffer.
void AppendResponse(const HttpResponse& response, bool keep_alive,
                    std::string* out) {
  *out += "HTTP/1.1 " + std::to_string(response.status) + " " +
          HttpReasonPhrase(response.status) + "\r\n";
  *out += "Content-Type: " + response.content_type + "\r\n";
  *out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  *out += keep_alive ? "Connection: keep-alive\r\n" : "Connection: close\r\n";
  *out += "\r\n";
  *out += response.body;
}

enum class ParseOutcome { kNeedMore, kRequest, kError };

/// Incremental request parser: attempts to cut one complete request off the
/// front of `buffer` (bytes beyond it — pipelined requests — are left in
/// place). kNeedMore leaves the buffer untouched so the caller can retry
/// after the next read; kError fills *error_response (the caller answers it
/// and closes).
ParseOutcome ParseOneRequest(std::string* buffer,
                             const HttpServerOptions& options,
                             HttpRequest* request, bool* keep_alive,
                             HttpResponse* error_response) {
  auto fail = [&](int status, const std::string& message) {
    *error_response = MakeError(status, message);
    return ParseOutcome::kError;
  };

  const size_t header_end = buffer->find("\r\n\r\n");
  if (header_end == std::string::npos) {
    if (buffer->size() > options.max_header_bytes) {
      return fail(400, "request headers too large");
    }
    return ParseOutcome::kNeedMore;
  }

  // --- Request line. ---
  const std::string head = buffer->substr(0, header_end);
  size_t line_end = head.find("\r\n");
  const std::string request_line =
      line_end == std::string::npos ? head : head.substr(0, line_end);
  const size_t sp1 = request_line.find(' ');
  const size_t sp2 =
      sp1 == std::string::npos ? std::string::npos
                               : request_line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    return fail(400, "malformed request line");
  }
  request->method = request_line.substr(0, sp1);
  std::string target = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::string version = request_line.substr(sp2 + 1);
  if (version != "HTTP/1.1" && version != "HTTP/1.0") {
    return fail(400, "unsupported HTTP version");
  }
  const size_t question = target.find('?');
  if (question != std::string::npos) {
    request->query = target.substr(question + 1);
    target.resize(question);
  } else {
    request->query.clear();
  }
  request->target = std::move(target);

  // --- Headers. ---
  request->headers.clear();
  size_t pos = line_end == std::string::npos ? head.size() : line_end + 2;
  while (pos < head.size()) {
    size_t eol = head.find("\r\n", pos);
    if (eol == std::string::npos) eol = head.size();
    const std::string line = head.substr(pos, eol - pos);
    pos = eol + 2;
    const size_t colon = line.find(':');
    if (colon == std::string::npos) return fail(400, "malformed header");
    std::string value = line.substr(colon + 1);
    const size_t first = value.find_first_not_of(" \t");
    const size_t last = value.find_last_not_of(" \t");
    value = first == std::string::npos
                ? std::string()
                : value.substr(first, last - first + 1);
    request->headers.emplace_back(line.substr(0, colon), std::move(value));
  }

  // --- Body. ---
  if (request->FindHeader("Transfer-Encoding") != nullptr) {
    return fail(400, "transfer encodings not supported");
  }
  size_t content_length = 0;
  if (const std::string* cl = request->FindHeader("Content-Length")) {
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(cl->c_str(), &end, 10);
    if (end == cl->c_str() || *end != '\0') {
      return fail(400, "malformed Content-Length");
    }
    content_length = static_cast<size_t>(parsed);
  }
  if (content_length > options.max_body_bytes) {
    return fail(400, "request body too large");
  }
  const size_t body_start = header_end + 4;
  if (buffer->size() - body_start < content_length) {
    return ParseOutcome::kNeedMore;
  }
  request->body = buffer->substr(body_start, content_length);
  // Preserve pipelined bytes beyond this request for the next parse.
  buffer->erase(0, body_start + content_length);

  const std::string* connection = request->FindHeader("Connection");
  if (connection != nullptr && EqualsIgnoreCase(*connection, "close")) {
    *keep_alive = false;
  } else if (version == "HTTP/1.0") {
    *keep_alive =
        connection != nullptr && EqualsIgnoreCase(*connection, "keep-alive");
  } else {
    *keep_alive = true;
  }
  return ParseOutcome::kRequest;
}

#if defined(__linux__)
/// epoll_event.data.u64 tags for the two non-connection fds.
// Reserved epoll tags; connection ids start above them (next_conn_id_).
constexpr uint64_t kWakeTag = 0;
constexpr uint64_t kListenerTag = 1;
#endif

}  // namespace

const std::string* HttpRequest::FindHeader(const std::string& name) const {
  for (const auto& header : headers) {
    if (EqualsIgnoreCase(header.first, name)) return &header.second;
  }
  return nullptr;
}

const char* HttpReasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 413: return "Payload Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
  }
  return "Status";
}

/// One connection's state machine; owned by exactly one IoLoop and only
/// ever touched from that loop's thread.
struct HttpServer::Conn {
  int fd = -1;
  std::string in;       ///< Unparsed request bytes.
  std::string out;      ///< Serialized response bytes not yet sent.
  size_t out_off = 0;   ///< Sent prefix of `out`.
  bool want_write = false;       ///< EPOLLOUT armed (partial send pending).
  bool awaiting = false;         ///< A handler owns the pending response.
  bool req_keep_alive = true;    ///< Keep-alive of the request in flight.
  bool close_after_flush = false;
  bool peer_eof = false;
  bool served_any = false;   ///< At least one response delivered (reuse).
  bool processing = false;   ///< ProcessInput re-entry guard.
  std::chrono::steady_clock::time_point last_activity;

  bool write_pending() const { return out_off < out.size(); }
};

/// One event loop: poller + wake pipe + the connections it owns. The
/// cross-thread surface (new sockets from the acceptor, finished responses
/// from handlers) is the mutex-guarded queues; everything else is
/// loop-thread-private.
struct HttpServer::IoLoop {
  HttpServer* server = nullptr;
  size_t index = 0;
  bool poll_backend = false;
#if defined(__linux__)
  int epfd = -1;
#endif
  int wake_rd = -1;
  int wake_wr = -1;
  std::thread thread;

  std::mutex mu;
  std::vector<int> incoming;  ///< Accepted sockets awaiting adoption.
  std::vector<std::pair<uint64_t, HttpResponse>> completions;
  bool terminate = false;
  bool wake_pending = false;  ///< A wake byte is in the pipe.
  bool fds_closed = false;    ///< Teardown done; reject cross-thread posts.

  std::unordered_map<uint64_t, std::unique_ptr<Conn>> conns;

  Conn* Find(uint64_t id) {
    auto it = conns.find(id);
    return it == conns.end() ? nullptr : it->second.get();
  }
};

namespace {
/// The loop the current thread is running (null elsewhere): lets a sender
/// invoked synchronously from a handler deliver without a queue round-trip.
thread_local HttpServer::IoLoop* tl_current_loop = nullptr;
}  // namespace

struct HttpResponseSender::Core {
  HttpServer* server = nullptr;
  size_t loop = 0;
  uint64_t conn = 0;
  std::atomic<bool> sent{false};

  ~Core() {
    // A dropped sender still answers: the connection would otherwise wait
    // forever and wedge the drain.
    if (!sent.load(std::memory_order_acquire)) {
      server->PostResponse(loop, conn,
                           MakeError(500, "handler dropped the request"));
    }
  }
};

void HttpResponseSender::Send(HttpResponse response) const {
  if (!core_) return;
  if (core_->sent.exchange(true, std::memory_order_acq_rel)) return;
  core_->server->PostResponse(core_->loop, core_->conn, std::move(response));
}

HttpResponseSender HttpServer::MakeSender(size_t loop_index,
                                          uint64_t conn_id) {
  HttpResponseSender sender;
  sender.core_ = std::make_shared<HttpResponseSender::Core>();
  sender.core_->server = this;
  sender.core_->loop = loop_index;
  sender.core_->conn = conn_id;
  return sender;
}

HttpServer::HttpServer(HttpAsyncHandler handler, HttpServerOptions options)
    : handler_(std::move(handler)), options_(std::move(options)) {
  if (options_.poll_interval_ms <= 0) options_.poll_interval_ms = 100;
}

HttpServer::HttpServer(ThreadPool* pool, HttpHandler handler,
                       HttpServerOptions options)
    : HttpServer(
          [pool, handler = std::move(handler)](const HttpRequest& request,
                                               HttpResponseSender respond) {
            // The synchronous handler may block, so it must leave the I/O
            // thread; the request is copied because the loop's parse
            // scratch does not outlive the dispatch.
            auto run = [handler, request, respond]() {
              HttpResponse response;
              try {
                response = handler(request);
              } catch (...) {
                response = MakeError(500, "internal error");
              }
              respond.Send(std::move(response));
            };
            if (pool != nullptr) {
              try {
                pool->Submit(run);
                return;
              } catch (...) {
                // Pool shutting down under us (lifecycle misuse); run
                // inline so the client still gets its answer.
              }
            }
            run();
          },
          std::move(options)) {}

HttpServer::~HttpServer() {
  Stop();
  // Teardown of the loops' fds is deferred to here (not Stop) so a sender
  // still in flight on another thread can never write into a recycled fd.
  for (auto& loop : loops_) {
    std::lock_guard<std::mutex> lock(loop->mu);
    loop->fds_closed = true;
    CloseFd(loop->wake_rd);
    CloseFd(loop->wake_wr);
#if defined(__linux__)
    CloseFd(loop->epfd);
#endif
    for (int fd : loop->incoming) CloseFd(fd);
    loop->incoming.clear();
  }
  loops_.clear();
}

size_t HttpServer::EffectiveIoThreads() const {
  if (options_.io_threads > 0) return options_.io_threads;
  const size_t hw = std::thread::hardware_concurrency();
  const size_t half = hw / 2;
  return half < 1 ? 1 : (half > 4 ? 4 : half);
}

bool HttpServer::UsePollBackend() const {
#if defined(__linux__)
  if (options_.use_poll) return true;
  const char* env = std::getenv("RESEST_IO_POLLER");
  return env != nullptr && std::strcmp(env, "poll") == 0;
#else
  return true;
#endif
}

bool HttpServer::Start(std::string* error) {
  auto fail = [&](const std::string& message) {
    if (error != nullptr) *error = message + ": " + std::strerror(errno);
    if (listen_fd_ >= 0) {
      CloseFd(listen_fd_);
      listen_fd_ = -1;
    }
    for (auto& loop : loops_) {
      CloseFd(loop->wake_rd);
      CloseFd(loop->wake_wr);
#if defined(__linux__)
      CloseFd(loop->epfd);
#endif
    }
    loops_.clear();
    return false;
  };
  if (started_) {
    if (error != nullptr) *error = "already started";
    return false;
  }
  loops_.clear();
  stopping_.store(false, std::memory_order_relaxed);

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return fail("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    errno = EINVAL;
    return fail("inet_pton(" + options_.bind_address + ")");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return fail("bind");
  }
  if (::listen(listen_fd_, options_.backlog) != 0) return fail("listen");
  if (!SetNonBlocking(listen_fd_)) return fail("fcntl(listener)");

  sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) != 0) {
    return fail("getsockname");
  }
  port_ = ntohs(bound.sin_port);

  const size_t num_loops = EffectiveIoThreads();
  const bool poll_backend = UsePollBackend();
  for (size_t i = 0; i < num_loops; ++i) {
    auto loop = std::make_unique<IoLoop>();
    loop->server = this;
    loop->index = i;
    loop->poll_backend = poll_backend;
    int pipe_fds[2];
    if (::pipe(pipe_fds) != 0) return fail("pipe");
    loop->wake_rd = pipe_fds[0];
    loop->wake_wr = pipe_fds[1];
    if (!SetNonBlocking(loop->wake_rd) || !SetNonBlocking(loop->wake_wr)) {
      loops_.push_back(std::move(loop));
      return fail("fcntl(wake pipe)");
    }
#if defined(__linux__)
    if (!poll_backend) {
      loop->epfd = ::epoll_create1(0);
      if (loop->epfd < 0) {
        loops_.push_back(std::move(loop));
        return fail("epoll_create1");
      }
      epoll_event ev;
      std::memset(&ev, 0, sizeof(ev));
      ev.events = EPOLLIN;  // level-triggered: the wake byte stays readable
      ev.data.u64 = kWakeTag;
      if (::epoll_ctl(loop->epfd, EPOLL_CTL_ADD, loop->wake_rd, &ev) != 0) {
        loops_.push_back(std::move(loop));
        return fail("epoll_ctl(wake)");
      }
      if (i == 0) {
        ev.events = EPOLLIN;
        ev.data.u64 = kListenerTag;
        if (::epoll_ctl(loop->epfd, EPOLL_CTL_ADD, listen_fd_, &ev) != 0) {
          loops_.push_back(std::move(loop));
          return fail("epoll_ctl(listener)");
        }
      }
    }
#endif
    loops_.push_back(std::move(loop));
  }

  started_ = true;
  next_loop_ = 0;
  connections_accepted_.store(0, std::memory_order_relaxed);
  keepalive_requests_.store(0, std::memory_order_relaxed);
  requests_served_.store(0, std::memory_order_relaxed);
  for (auto& loop : loops_) {
    IoLoop* raw = loop.get();
    loop->thread = std::thread([this, raw]() { LoopMain(raw); });
  }
  return true;
}

void HttpServer::Stop() {
  if (!started_) return;
  stopping_.store(true, std::memory_order_relaxed);
  for (auto& loop : loops_) WakeLoop(loop.get());
  {
    std::unique_lock<std::mutex> lock(conn_mu_);
    conn_idle_.wait(lock, [this]() { return open_connections_ == 0; });
  }
  for (auto& loop : loops_) {
    {
      std::lock_guard<std::mutex> lock(loop->mu);
      loop->terminate = true;
    }
    WakeLoop(loop.get());
  }
  for (auto& loop : loops_) {
    if (loop->thread.joinable()) loop->thread.join();
  }
  started_ = false;
  port_ = 0;
}

size_t HttpServer::active_connections() const {
  std::lock_guard<std::mutex> lock(conn_mu_);
  return open_connections_;
}

HttpServerStats HttpServer::stats() const {
  HttpServerStats stats;
  stats.requests_served = requests_served_.load(std::memory_order_relaxed);
  stats.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  stats.keepalive_requests =
      keepalive_requests_.load(std::memory_order_relaxed);
  stats.open_connections = active_connections();
  return stats;
}

void HttpServer::WakeLoop(IoLoop* loop) {
  std::lock_guard<std::mutex> lock(loop->mu);
  if (loop->wake_pending || loop->fds_closed) return;
  loop->wake_pending = true;
  const char byte = 'w';
  // The pipe is nonblocking; a full pipe already guarantees a pending wake.
  (void)!::write(loop->wake_wr, &byte, 1);
}

void HttpServer::PostResponse(size_t loop_index, uint64_t conn_id,
                              HttpResponse response) {
  if (loop_index >= loops_.size()) return;
  IoLoop* loop = loops_[loop_index].get();
  if (tl_current_loop == loop) {
    // Synchronous completion from inside the handler: deliver directly —
    // no queue round-trip, and ProcessInput's re-entry guard keeps the
    // parse loop iterative.
    DeliverResponse(loop, conn_id, std::move(response));
    return;
  }
  std::lock_guard<std::mutex> lock(loop->mu);
  if (loop->fds_closed) return;
  loop->completions.emplace_back(conn_id, std::move(response));
  if (!loop->wake_pending) {
    loop->wake_pending = true;
    const char byte = 'w';
    (void)!::write(loop->wake_wr, &byte, 1);
  }
}

void HttpServer::LoopMain(IoLoop* loop) {
  tl_current_loop = loop;
  std::vector<uint64_t> ready_read;
  std::vector<uint64_t> ready_write;
  std::vector<int> incoming;
  std::vector<std::pair<uint64_t, HttpResponse>> completions;
#if !defined(__linux__)
  const bool use_epoll = false;
#else
  const bool use_epoll = !loop->poll_backend;
#endif
  // poll() backend scratch, rebuilt per iteration.
  std::vector<struct pollfd> pfds;
  std::vector<uint64_t> pfd_ids;

  for (;;) {
    ready_read.clear();
    ready_write.clear();
    bool listener_ready = false;

#if defined(__linux__)
    if (use_epoll) {
      epoll_event events[64];
      const int n =
          ::epoll_wait(loop->epfd, events, 64, options_.poll_interval_ms);
      for (int i = 0; i < n; ++i) {
        const uint64_t tag = events[i].data.u64;
        if (tag == kWakeTag) continue;  // drained below with the queues
        if (tag == kListenerTag) {
          listener_ready = true;
          continue;
        }
        if (events[i].events & EPOLLOUT) ready_write.push_back(tag);
        if (events[i].events & (EPOLLIN | EPOLLHUP | EPOLLERR)) {
          ready_read.push_back(tag);
        }
      }
    }
#endif
    if (!use_epoll) {
      pfds.clear();
      pfd_ids.clear();
      pfds.push_back({loop->wake_rd, POLLIN, 0});
      pfd_ids.push_back(0);
      const bool watch_listener =
          loop->index == 0 && listen_fd_ >= 0 &&
          !stopping_.load(std::memory_order_relaxed);
      if (watch_listener) {
        pfds.push_back({listen_fd_, POLLIN, 0});
        pfd_ids.push_back(0);
      }
      const size_t first_conn = pfds.size();
      for (const auto& entry : loop->conns) {
        const Conn* c = entry.second.get();
        if (c->fd < 0) continue;
        short events = POLLIN;
        if (c->want_write) events |= POLLOUT;
        pfds.push_back({c->fd, events, 0});
        pfd_ids.push_back(entry.first);
      }
      const int n =
          ::poll(pfds.data(), pfds.size(), options_.poll_interval_ms);
      if (n > 0) {
        if (watch_listener && (pfds[1].revents & POLLIN)) {
          listener_ready = true;
        }
        for (size_t i = first_conn; i < pfds.size(); ++i) {
          if (pfds[i].revents & POLLOUT) ready_write.push_back(pfd_ids[i]);
          if (pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) {
            ready_read.push_back(pfd_ids[i]);
          }
        }
      }
    }

    // Cross-thread intake: drain the wake pipe and swap the queues out.
    bool terminate = false;
    incoming.clear();
    completions.clear();
    {
      std::lock_guard<std::mutex> lock(loop->mu);
      char drain[64];
      while (::read(loop->wake_rd, drain, sizeof(drain)) > 0) {
      }
      loop->wake_pending = false;
      incoming.swap(loop->incoming);
      completions.swap(loop->completions);
      terminate = loop->terminate;
    }

    const bool draining = stopping_.load(std::memory_order_relaxed);
    if (draining && loop->index == 0 && listen_fd_ >= 0) {
      // The loop owns the listener, so only it closes it: no fd-reuse race
      // with a concurrent accept.
      CloseFd(listen_fd_);
      listen_fd_ = -1;
    }

    for (int fd : incoming) AdoptConnection(loop, fd);
    for (auto& completion : completions) {
      DeliverResponse(loop, completion.first, std::move(completion.second));
    }
    if (listener_ready && !draining) AcceptReady(loop);
    for (uint64_t id : ready_write) OnWritable(loop, id);
    for (uint64_t id : ready_read) OnReadable(loop, id);

    SweepConnections(loop);

    if (terminate && loop->conns.empty()) break;
  }
  if (loop->index == 0 && listen_fd_ >= 0) {
    CloseFd(listen_fd_);
    listen_fd_ = -1;
  }
  tl_current_loop = nullptr;
}

void HttpServer::AcceptReady(IoLoop* loop) {
  for (;;) {
    if (stopping_.load(std::memory_order_relaxed) || listen_fd_ < 0) return;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return;  // EAGAIN (drained) or listener gone
    }
    if (!SetNonBlocking(fd)) {
      CloseFd(fd);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    // Count before the handoff so Stop() can never observe zero while an
    // accepted socket sits in a wake queue.
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      ++open_connections_;
    }
    IoLoop* target = loops_[next_loop_++ % loops_.size()].get();
    if (target == loop) {
      AdoptConnection(loop, fd);
    } else {
      {
        std::lock_guard<std::mutex> lock(target->mu);
        target->incoming.push_back(fd);
      }
      WakeLoop(target);
    }
  }
}

void HttpServer::AdoptConnection(IoLoop* loop, int fd) {
  const uint64_t id = next_conn_id_.fetch_add(1, std::memory_order_relaxed);
  auto conn = std::make_unique<Conn>();
  conn->fd = fd;
  conn->last_activity = std::chrono::steady_clock::now();
  loop->conns.emplace(id, std::move(conn));
#if defined(__linux__)
  if (!loop->poll_backend) {
    epoll_event ev;
    std::memset(&ev, 0, sizeof(ev));
    ev.events = EPOLLIN | EPOLLET;
    ev.data.u64 = id;
    if (::epoll_ctl(loop->epfd, EPOLL_CTL_ADD, fd, &ev) != 0) {
      CloseConn(loop, id);
      return;
    }
  }
#endif
  // Edge-triggered registration only reports bytes arriving after it; read
  // whatever raced the handoff now.
  OnReadable(loop, id);
}

void HttpServer::OnReadable(IoLoop* loop, uint64_t id) {
  Conn* c = loop->Find(id);
  if (c == nullptr || c->fd < 0) return;
  bool got_bytes = false;
  for (;;) {
    char chunk[16 * 1024];
    const ssize_t n = ::recv(c->fd, chunk, sizeof(chunk), 0);
    if (n > 0) {
      c->in.append(chunk, static_cast<size_t>(n));
      got_bytes = true;
      continue;
    }
    if (n == 0) {
      c->peer_eof = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    c->peer_eof = true;  // hard error: nothing further deliverable
    break;
  }
  if (got_bytes) c->last_activity = std::chrono::steady_clock::now();
  ProcessInput(loop, id);
  c = loop->Find(id);
  if (c == nullptr) return;
  if (c->peer_eof && !c->awaiting && !c->write_pending()) {
    CloseConn(loop, id);
  }
}

void HttpServer::ProcessInput(IoLoop* loop, uint64_t id) {
  {
    Conn* c = loop->Find(id);
    if (c == nullptr || c->processing) return;
    c->processing = true;
  }
  for (;;) {
    Conn* c = loop->Find(id);
    if (c == nullptr) return;  // closed mid-loop; the guard died with it
    // Strictly one request in flight per connection: the next pipelined
    // request is parsed only once the previous response is fully on the
    // wire — responses can never interleave or reorder.
    if (c->awaiting || c->close_after_flush || c->write_pending() ||
        c->fd < 0) {
      break;
    }
    HttpRequest request;
    HttpResponse error_response;
    bool keep_alive = true;
    const ParseOutcome got = ParseOneRequest(&c->in, options_, &request,
                                             &keep_alive, &error_response);
    if (got == ParseOutcome::kNeedMore) break;
    if (got == ParseOutcome::kError) {
      // Count before writing: once a client has read its response, the
      // counter is guaranteed to include it.
      requests_served_.fetch_add(1, std::memory_order_relaxed);
      c->close_after_flush = true;
      AppendResponse(error_response, /*keep_alive=*/false, &c->out);
      FlushWrites(loop, id);
      break;
    }
    if (c->served_any) {
      keepalive_requests_.fetch_add(1, std::memory_order_relaxed);
    }
    c->awaiting = true;
    c->req_keep_alive = keep_alive;
    HttpResponseSender sender = MakeSender(loop->index, id);
    try {
      handler_(request, sender);
    } catch (...) {
      sender.Send(MakeError(500, "internal error"));
    }
    // A synchronous completion already cleared `awaiting` (the sender
    // detected this loop and delivered directly); the loop then continues
    // with the next pipelined request. An asynchronous handler leaves
    // `awaiting` set and the loop exits below.
  }
  Conn* c = loop->Find(id);
  if (c != nullptr) c->processing = false;
}

void HttpServer::DeliverResponse(IoLoop* loop, uint64_t id,
                                 HttpResponse response) {
  // Counted even if the peer vanished first: the request was parsed and
  // answered; only delivery can fail.
  requests_served_.fetch_add(1, std::memory_order_relaxed);
  Conn* c = loop->Find(id);
  if (c == nullptr || c->fd < 0) return;
  c->awaiting = false;
  c->served_any = true;
  // A response is written even when Stop() raced the handler — draining
  // means answering everything accepted, then closing.
  const bool keep_alive = c->req_keep_alive && !c->peer_eof &&
                          !c->close_after_flush &&
                          !stopping_.load(std::memory_order_relaxed);
  if (!keep_alive) c->close_after_flush = true;
  AppendResponse(response, keep_alive, &c->out);
  c->last_activity = std::chrono::steady_clock::now();
  FlushWrites(loop, id);
  c = loop->Find(id);
  if (c == nullptr) return;
  if (!c->write_pending() && !c->close_after_flush && !c->processing) {
    ProcessInput(loop, id);  // pipelined requests already buffered
  }
}

void HttpServer::FlushWrites(IoLoop* loop, uint64_t id) {
  Conn* c = loop->Find(id);
  if (c == nullptr || c->fd < 0) return;
  while (c->write_pending()) {
    const ssize_t n = ::send(c->fd, c->out.data() + c->out_off,
                             c->out.size() - c->out_off, MSG_NOSIGNAL);
    if (n >= 0) {
      c->out_off += static_cast<size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (!c->want_write) {
        c->want_write = true;
#if defined(__linux__)
        if (!loop->poll_backend) {
          epoll_event ev;
          std::memset(&ev, 0, sizeof(ev));
          ev.events = EPOLLIN | EPOLLOUT | EPOLLET;
          ev.data.u64 = id;
          ::epoll_ctl(loop->epfd, EPOLL_CTL_MOD, c->fd, &ev);
        }
#endif
      }
      return;
    }
    CloseConn(loop, id);  // peer gone; nothing further to deliver
    return;
  }
  if (!c->out.empty()) {
    c->out.clear();
    c->out_off = 0;
  }
  if (c->want_write) {
    c->want_write = false;
#if defined(__linux__)
    if (!loop->poll_backend) {
      epoll_event ev;
      std::memset(&ev, 0, sizeof(ev));
      ev.events = EPOLLIN | EPOLLET;
      ev.data.u64 = id;
      ::epoll_ctl(loop->epfd, EPOLL_CTL_MOD, c->fd, &ev);
    }
#endif
  }
  if (c->close_after_flush) CloseConn(loop, id);
}

void HttpServer::OnWritable(IoLoop* loop, uint64_t id) {
  FlushWrites(loop, id);
  Conn* c = loop->Find(id);
  if (c == nullptr) return;
  if (!c->write_pending() && !c->awaiting && !c->close_after_flush) {
    ProcessInput(loop, id);  // resume pipelining stalled on backpressure
  }
}

void HttpServer::CloseConn(IoLoop* loop, uint64_t id) {
  auto it = loop->conns.find(id);
  if (it == loop->conns.end()) return;
  Conn* c = it->second.get();
  if (c->awaiting) {
    // A handler still owns a response for this connection; keep the entry
    // (and the fd, so it cannot be recycled under the pending sender) and
    // finish closing when the response is delivered.
    if (c->fd >= 0) ::shutdown(c->fd, SHUT_RDWR);
    c->peer_eof = true;
    c->close_after_flush = true;
    return;
  }
  CloseFd(c->fd);  // epoll deregisters automatically on close
  c->fd = -1;
  loop->conns.erase(it);
  std::lock_guard<std::mutex> lock(conn_mu_);
  if (--open_connections_ == 0) conn_idle_.notify_all();
}

void HttpServer::SweepConnections(IoLoop* loop) {
  if (loop->index == 0 && options_.on_sweep) options_.on_sweep();
  const auto now = std::chrono::steady_clock::now();
  const bool draining = stopping_.load(std::memory_order_relaxed);
  const auto idle_limit = std::chrono::milliseconds(options_.idle_timeout_ms);
  std::vector<uint64_t> ids;
  ids.reserve(loop->conns.size());
  for (const auto& entry : loop->conns) ids.push_back(entry.first);
  for (uint64_t id : ids) {
    Conn* c = loop->Find(id);
    if (c == nullptr || c->fd < 0 || c->awaiting || c->write_pending()) {
      continue;
    }
    if (draining && c->in.empty()) {
      // Idle keep-alive connections close on drain — but a request whose
      // bytes reached the socket before the drain began is NOT idle. One
      // nonblocking read decides, so anything a client finished sending
      // pre-SIGTERM is still answered.
      OnReadable(loop, id);
      c = loop->Find(id);
      if (c == nullptr) continue;
      if (c->awaiting || c->write_pending()) continue;
      if (c->in.empty()) {
        CloseConn(loop, id);
        continue;
      }
      // else: a request is now mid-parse; grace period below applies.
    }
    if (now - c->last_activity >= idle_limit) {
      // Half-received requests keep their grace period until the idle
      // clock runs out — during drain too.
      CloseConn(loop, id);
    }
  }
}

}  // namespace resest
