// A small dependency-free HTTP/1.1 server built on a non-blocking event
// loop: edge-triggered epoll on Linux (a portable poll() backend is the
// fallback and is selectable for tests), with a fixed set of I/O threads
// owning per-connection state machines — incremental request parsing,
// buffered writes, keep-alive reuse, idle timeouts. Exactly what the
// estimation front end needs — POST bodies with Content-Length, keep-alive,
// graceful drain — and nothing more (no TLS, no chunked transfer encoding,
// no multiplexing).
//
// Threading model: Start() spawns `io_threads` event loops. Loop 0 owns the
// listener and accepts until EAGAIN on readiness; accepted sockets are
// handed round-robin to the loops over their wake pipes. A connection lives
// on exactly one loop for its whole keep-alive lifetime, so its state
// machine needs no locks. Handlers run inline on the loop thread and hand
// their response to an HttpResponseSender — a one-shot, copyable handle
// that may be invoked from any thread (it marshals the response back to
// the owning loop), which is what lets the serving layer defer a request
// into a cross-request batch without blocking the loop. The legacy
// synchronous HttpHandler is still accepted: it is dispatched onto the
// provided ThreadPool, so a blocking handler occupies a pool slot, never
// an I/O thread.
//
// Lifecycle: Start() binds and spawns the loops; Stop() closes the
// listener (no new connections), closes idle keep-alive connections — a
// connection whose request bytes reached the socket before the drain began
// is NOT idle and is still answered — and blocks until every in-flight
// request has been answered: the server's half of the zero-dropped-
// responses drain contract (the service destructor provides the other half
// by draining submitted batches). The destructor calls Stop().
#ifndef RESEST_SERVER_HTTP_SERVER_H_
#define RESEST_SERVER_HTTP_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/common/thread_pool.h"

namespace resest {

struct HttpRequest {
  std::string method;  ///< Uppercase as sent: "GET", "POST", ...
  std::string target;  ///< Path part of the request target (no query).
  std::string query;   ///< Query string after '?', or empty.
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  /// Case-insensitive header lookup; null if absent.
  const std::string* FindHeader(const std::string& name) const;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// Returns the canonical reason phrase for the handful of codes the wire
/// API uses; "Status" for anything unrecognized.
const char* HttpReasonPhrase(int status);

class HttpServer;

/// One-shot handle delivering the response for one parsed request back to
/// the connection that carried it. Copyable and safe to invoke from any
/// thread; the first invocation wins and later ones are ignored. If every
/// copy is destroyed without sending, a 500 is delivered in its place so
/// the connection (and the drain accounting) can never be wedged by a
/// handler that drops a request.
class HttpResponseSender {
 public:
  HttpResponseSender() = default;

  /// Delivers `response`; returns immediately (the owning I/O loop writes
  /// it out asynchronously).
  void Send(HttpResponse response) const;
  void operator()(HttpResponse response) const { Send(std::move(response)); }

 private:
  friend class HttpServer;
  struct Core;
  std::shared_ptr<Core> core_;
};

/// Handles one parsed request and eventually invokes `respond` exactly once
/// (synchronously or from any other thread). Runs on an I/O loop thread, so
/// it must not block.
using HttpAsyncHandler =
    std::function<void(const HttpRequest&, HttpResponseSender)>;

/// Legacy synchronous handler; runs on a pool thread and may block
/// (EstimationService::EstimateBatch is safe there: blocking callers drain
/// their own chunks). Must not throw — an escaping exception is answered
/// with a 500 so the connection stays intact.
using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

struct HttpServerOptions {
  std::string bind_address = "127.0.0.1";
  uint16_t port = 0;  ///< 0 = ephemeral; the bound port is port().
  int backlog = 128;
  size_t max_header_bytes = 16 * 1024;
  /// Requests whose body exceeds this answer 400 without invoking the
  /// handler (the wire contract: oversized bodies never touch the service).
  size_t max_body_bytes = 4 * 1024 * 1024;
  /// Event-loop wakeup granularity when nothing else is happening: bounds
  /// how late an idle-timeout close can fire, not request latency (request
  /// and shutdown wakeups are immediate via the loops' wake pipes).
  int poll_interval_ms = 100;
  /// An idle keep-alive connection is closed after this many milliseconds
  /// without a new request byte. Connections waiting on a handler response
  /// never time out.
  int idle_timeout_ms = 30 * 1000;
  /// Event-loop threads. 0 = auto: half the hardware threads, clamped to
  /// [1, 4] — the loops only shuffle bytes, the estimation work happens on
  /// the shared ThreadPool.
  size_t io_threads = 0;
  /// Forces the portable poll() backend even where epoll is available
  /// (tests exercise the fallback this way); RESEST_IO_POLLER=poll does the
  /// same without a rebuild.
  bool use_poll = false;
  /// Housekeeping hook run on loop 0's sweep pass — the event loop's timer
  /// path, firing at least every poll_interval_ms while the server runs.
  /// Runs on the I/O thread, so it must be cheap and must not block; the
  /// callee rate-limits itself (the serving layer hangs its tenant
  /// heartbeat/aging sweep here). Null = no hook.
  std::function<void()> on_sweep;
};

/// Connection-level counters (monotonic except open_connections).
struct HttpServerStats {
  uint64_t requests_served = 0;        ///< Responses queued for delivery.
  uint64_t connections_accepted = 0;   ///< Sockets accepted since Start().
  /// Requests beyond the first on their connection — how much keep-alive
  /// reuse the clients actually achieve.
  uint64_t keepalive_requests = 0;
  size_t open_connections = 0;
};

class HttpServer {
 public:
  /// Implementation types, public only so the .cc can name them at
  /// namespace scope (thread-local loop pointer); not part of the API.
  struct Conn;
  struct IoLoop;

  /// Event-loop-native form: `handler` runs on the I/O threads and must not
  /// block; it responds through the sender (possibly later, from another
  /// thread).
  explicit HttpServer(HttpAsyncHandler handler, HttpServerOptions options = {});

  /// Legacy synchronous form: each request is dispatched to `pool`, where
  /// `handler` may block; the response is marshaled back to the owning
  /// loop. The pool must be sized for the expected concurrent requests on
  /// top of its estimation work.
  HttpServer(ThreadPool* pool, HttpHandler handler,
             HttpServerOptions options = {});
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds, listens, and spawns the I/O loops. False (with the reason in
  /// *error if non-null) on bind/listen failure; the server is then inert
  /// and Start() may be retried with different options.
  bool Start(std::string* error = nullptr);

  /// Graceful drain: stop accepting, close idle connections (after
  /// answering any request whose bytes already reached the socket), wait
  /// for in-flight requests to be answered. Idempotent; safe to call from
  /// any thread except an I/O loop.
  void Stop();

  /// The bound port (after Start); 0 before.
  uint16_t port() const { return port_; }

  /// Connections currently open (point-in-time; for tests/metrics).
  size_t active_connections() const;

  /// Requests answered since Start (including error responses the parser
  /// generated without reaching the handler).
  uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }

  /// Point-in-time connection counters for /metrics.
  HttpServerStats stats() const;

 private:
  friend class HttpResponseSender;
  friend struct HttpResponseSender::Core;

  void LoopMain(IoLoop* loop);
  /// Accepts until EAGAIN (loop 0 only) and distributes round-robin.
  void AcceptReady(IoLoop* loop);
  void AdoptConnection(IoLoop* loop, int fd);
  /// Reads until EAGAIN/EOF, then advances the parse state machine.
  void OnReadable(IoLoop* loop, uint64_t id);
  void OnWritable(IoLoop* loop, uint64_t id);
  /// Parses and dispatches buffered requests until the buffer runs dry or
  /// a response is pending (responses are strictly ordered per connection,
  /// which is what makes pipelining safe).
  void ProcessInput(IoLoop* loop, uint64_t id);
  /// Queues `response` on the connection and flushes; entered from the
  /// loop itself or via the completion queue (PostResponse).
  void DeliverResponse(IoLoop* loop, uint64_t id, HttpResponse response);
  /// Sends buffered bytes until EAGAIN; arms/disarms write readiness.
  void FlushWrites(IoLoop* loop, uint64_t id);
  void CloseConn(IoLoop* loop, uint64_t id);
  /// Drain-time and idle-timeout housekeeping, run on every loop wakeup.
  void SweepConnections(IoLoop* loop);
  /// Marshals a finished response to the loop owning `conn` (invoked by
  /// HttpResponseSender from any thread; delivered inline when already on
  /// that loop).
  void PostResponse(size_t loop_index, uint64_t conn_id,
                    HttpResponse response);
  void WakeLoop(IoLoop* loop);
  HttpResponseSender MakeSender(size_t loop_index, uint64_t conn_id);
  size_t EffectiveIoThreads() const;
  bool UsePollBackend() const;

  HttpAsyncHandler handler_;
  HttpServerOptions options_;

  std::vector<std::unique_ptr<IoLoop>> loops_;
  int listen_fd_ = -1;  ///< Owned by loop 0 once started.
  uint16_t port_ = 0;
  bool started_ = false;
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> requests_served_{0};
  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> keepalive_requests_{0};
  /// Starts at 2: ids tag epoll events, and 0/1 are the wake-pipe and
  /// listener tags — a connection with either id would have its readiness
  /// events misrouted and dropped.
  std::atomic<uint64_t> next_conn_id_{2};
  size_t next_loop_ = 0;  ///< Round-robin accept target (loop 0 only).

  mutable std::mutex conn_mu_;
  std::condition_variable conn_idle_;
  size_t open_connections_ = 0;
};

}  // namespace resest

#endif  // RESEST_SERVER_HTTP_SERVER_H_
