// A small dependency-free HTTP/1.1 server: a blocking accept() loop on one
// listener thread, per-connection handling as tasks on the shared
// ThreadPool, and a minimal request parser / response writer. Exactly what
// the estimation front end needs — POST bodies with Content-Length,
// keep-alive, graceful drain — and nothing more (no TLS, no chunked
// transfer encoding, no multiplexing).
//
// Lifecycle: Start() binds and spawns the accept thread; Stop() closes the
// listener (no new connections), asks idle keep-alive connections to close,
// and blocks until every in-flight request has been answered — the server's
// half of the zero-dropped-responses drain contract (the service destructor
// provides the other half by draining submitted batches). The destructor
// calls Stop().
//
// Threading: each accepted connection is one pool task that lives for the
// connection's keep-alive lifetime, so the pool must be sized for the
// expected concurrent connections on top of its estimation work. Handlers
// run on pool threads and may block (EstimationService::EstimateBatch is
// safe there: blocking callers drain their own chunks).
#ifndef RESEST_SERVER_HTTP_SERVER_H_
#define RESEST_SERVER_HTTP_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/common/thread_pool.h"

namespace resest {

struct HttpRequest {
  std::string method;  ///< Uppercase as sent: "GET", "POST", ...
  std::string target;  ///< Path part of the request target (no query).
  std::string query;   ///< Query string after '?', or empty.
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  /// Case-insensitive header lookup; null if absent.
  const std::string* FindHeader(const std::string& name) const;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// Returns the canonical reason phrase for the handful of codes the wire
/// API uses; "Status" for anything unrecognized.
const char* HttpReasonPhrase(int status);

/// Handles one parsed request; runs on a pool thread. Must not throw — an
/// escaping exception is answered with a 500 so the connection (and drain
/// accounting) stays intact.
using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

struct HttpServerOptions {
  std::string bind_address = "127.0.0.1";
  uint16_t port = 0;  ///< 0 = ephemeral; the bound port is port().
  int backlog = 128;
  size_t max_header_bytes = 16 * 1024;
  /// Requests whose body exceeds this answer 400 without invoking the
  /// handler (the wire contract: oversized bodies never touch the service).
  size_t max_body_bytes = 4 * 1024 * 1024;
  /// Granularity at which idle keep-alive connections notice Stop() and at
  /// which dead peers time out; bounds drain latency, not request latency.
  int poll_interval_ms = 100;
  /// An idle keep-alive connection is closed after this many milliseconds
  /// without a new request byte.
  int idle_timeout_ms = 30 * 1000;
};

class HttpServer {
 public:
  HttpServer(ThreadPool* pool, HttpHandler handler,
             HttpServerOptions options = {});
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds, listens, and spawns the accept thread. False (with the reason
  /// in *error if non-null) on bind/listen failure; the server is then
  /// inert and Start() may be retried with different options.
  bool Start(std::string* error = nullptr);

  /// Graceful drain: stop accepting, close idle connections, wait for
  /// in-flight requests to be answered. Idempotent; safe to call from any
  /// thread except a handler.
  void Stop();

  /// The bound port (after Start); 0 before.
  uint16_t port() const { return port_; }

  /// Connections currently open (point-in-time; for tests/metrics).
  size_t active_connections() const;

  /// Requests answered since Start (including error responses the parser
  /// generated without reaching the handler).
  uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }

 private:
  void AcceptLoop();
  void ServeConnection(int fd);
  /// Reads one request off `fd` into *request (*keep_alive = whether the
  /// protocol default plus the request's Connection header allow reuse).
  /// Returns 1 on success, 0 on clean close / idle shutdown (nothing
  /// buffered), -1 on a parse/limit error with *error_response filled in
  /// (caller answers it and closes).
  int ReadRequest(int fd, std::string* buffer, HttpRequest* request,
                  bool* keep_alive, HttpResponse* error_response);
  static bool WriteResponse(int fd, const HttpResponse& response,
                            bool keep_alive);

  ThreadPool* pool_;
  HttpHandler handler_;
  HttpServerOptions options_;

  /// Atomic: Stop() closes and clears it from the caller's thread while
  /// AcceptLoop() polls it. The loop re-checks stopping_ after every wake,
  /// so a cleared fd is never accepted on.
  std::atomic<int> listen_fd_{-1};
  uint16_t port_ = 0;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> requests_served_{0};

  mutable std::mutex conn_mu_;
  std::condition_variable conn_idle_;
  size_t open_connections_ = 0;
};

}  // namespace resest

#endif  // RESEST_SERVER_HTTP_SERVER_H_
