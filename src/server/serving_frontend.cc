#include "src/server/serving_frontend.h"

#include <utility>

#include "src/server/json.h"
#include "src/server/prometheus_writer.h"
#include "src/server/wire_api.h"

namespace resest {
namespace {

HttpResponse JsonResponse(int status, std::string body) {
  HttpResponse response;
  response.status = status;
  response.content_type = "application/json";
  response.body = std::move(body);
  return response;
}

}  // namespace

ServingFrontend::ServingFrontend(const EstimationService* service,
                                 const ModelRegistry* registry,
                                 std::string model_name)
    : service_(service),
      registry_(registry),
      model_name_(std::move(model_name)) {}

HttpResponse ServingFrontend::Handle(const HttpRequest& request) const {
  if (request.target == "/v1/estimate") {
    if (request.method != "POST") {
      return JsonResponse(405, FormatWireError("use POST"));
    }
    return HandleEstimate(request);
  }
  if (request.target == "/v1/observe") {
    if (request.method != "POST") {
      return JsonResponse(405, FormatWireError("use POST"));
    }
    return HandleObserve(request);
  }
  if (request.target == "/healthz") {
    if (request.method != "GET") {
      return JsonResponse(405, FormatWireError("use GET"));
    }
    return HandleHealthz();
  }
  if (request.target == "/metrics") {
    if (request.method != "GET") {
      return JsonResponse(405, FormatWireError("use GET"));
    }
    return HandleMetrics();
  }
  return JsonResponse(404, FormatWireError("no such endpoint: " +
                                           request.target));
}

void ServingFrontend::HandleAsync(
    const HttpRequest& request,
    std::function<void(HttpResponse)> respond) const {
  if (request.target != "/v1/estimate" || request.method != "POST") {
    respond(Handle(request));
    return;
  }
  // Parse inline on the I/O thread (cheap relative to estimation); only the
  // estimation itself is deferred into the batch pipeline.
  JsonValue body;
  std::string error;
  if (!JsonValue::Parse(request.body, &body, &error)) {
    respond(JsonResponse(400, FormatWireError("malformed JSON: " + error)));
    return;
  }
  std::vector<EstimateRequest> requests;
  SubmitOptions options;
  if (!ParseEstimateWireBatch(body, &requests, &options, &error)) {
    respond(JsonResponse(400, FormatWireError(error)));
    return;
  }
  auto done = [respond = std::move(respond)](
                  std::vector<EstimateResult> results) {
    respond(JsonResponse(EstimateWireHttpStatus(results),
                         FormatEstimateWireResponse(results)));
  };
  if (coalescer_ != nullptr) {
    coalescer_->Submit(std::move(requests), options, std::move(done));
  } else {
    service_->SubmitBatch(std::move(requests), std::move(done), options);
  }
}

HttpResponse ServingFrontend::HandleEstimate(
    const HttpRequest& request) const {
  JsonValue body;
  std::string error;
  if (!JsonValue::Parse(request.body, &body, &error)) {
    return JsonResponse(400, FormatWireError("malformed JSON: " + error));
  }
  std::vector<EstimateRequest> requests;
  SubmitOptions options;
  if (!ParseEstimateWireBatch(body, &requests, &options, &error)) {
    return JsonResponse(400, FormatWireError(error));
  }
  const std::vector<EstimateResult> results =
      service_->EstimateBatch(requests, options);
  return JsonResponse(EstimateWireHttpStatus(results),
                      FormatEstimateWireResponse(results));
}

HttpResponse ServingFrontend::HandleObserve(
    const HttpRequest& request) const {
  if (trainer_ == nullptr) {
    return JsonResponse(
        503, FormatWireError("observation ingestion is disabled (start the "
                             "server with --data-dir)"));
  }
  JsonValue body;
  std::string error;
  if (!JsonValue::Parse(request.body, &body, &error)) {
    return JsonResponse(400, FormatWireError("malformed JSON: " + error));
  }
  std::vector<ObserveWireRow> rows;
  if (!ParseObserveWireBatch(body, &rows, &error)) {
    return JsonResponse(400, FormatWireError(error));
  }
  for (const ObserveWireRow& row : rows) {
    trainer_->Append(row.op, row.resource, row.features, row.label);
  }
  return JsonResponse(
      200, FormatObserveWireResponse(rows.size(), trainer_->base_version()));
}

HttpResponse ServingFrontend::HandleHealthz() const {
  const ModelSnapshot snapshot = registry_->Get(model_name_);
  if (!snapshot) {
    return JsonResponse(503, FormatWireError("no active model \"" +
                                             model_name_ + "\""));
  }
  std::string body = "{\"status\":\"ok\",\"model\":";
  AppendJsonString(model_name_, &body);
  body += ",\"model_version\":" + std::to_string(snapshot.version) + "}";
  return JsonResponse(200, std::move(body));
}

HttpResponse ServingFrontend::HandleMetrics() const {
  ServerMetricsSnapshot snapshot;
  snapshot.service = service_->stats();
  snapshot.cache = service_->cache_stats();
  snapshot.model_name = model_name_;
  const ModelSnapshot model = registry_->Get(model_name_);
  if (model) {
    snapshot.model_version = model.version;
    snapshot.slot_versions.reserve(kNumModelSlots);
    for (int op = 0; op < kNumOpTypes; ++op) {
      for (int res = 0; res < kNumResources; ++res) {
        snapshot.slot_versions.emplace_back(
            OpTypeName(static_cast<OpType>(op)),
            ResourceName(static_cast<Resource>(res)),
            model.SlotVersion(static_cast<OpType>(op),
                              static_cast<Resource>(res)));
      }
    }
  }
  if (http_server_ != nullptr) {
    const HttpServerStats http = http_server_->stats();
    snapshot.http_requests_served = http.requests_served;
    snapshot.http_active_connections = http.open_connections;
    snapshot.http_connections_accepted = http.connections_accepted;
    snapshot.http_keepalive_requests = http.keepalive_requests;
  }
  if (coalescer_ != nullptr) {
    snapshot.has_coalescer = true;
    snapshot.coalescer = coalescer_->stats();
  }
  if (trainer_ != nullptr) {
    snapshot.has_durability = true;
    snapshot.durability = trainer_->durability_stats();
  }
  HttpResponse response;
  response.content_type = "text/plain; version=0.0.4; charset=utf-8";
  response.body = RenderServiceMetrics(snapshot);
  return response;
}

}  // namespace resest
