#include "src/server/serving_frontend.h"

#include <utility>
#include <vector>

#include "src/server/json.h"
#include "src/server/prometheus_writer.h"
#include "src/server/wire_api.h"

namespace resest {
namespace {

HttpResponse JsonResponse(int status, std::string body) {
  HttpResponse response;
  response.status = status;
  response.content_type = "application/json";
  response.body = std::move(body);
  return response;
}

void AppendLaneJson(const TenantStats& t, std::string* out) {
  out->append("\"lanes\":{");
  for (size_t p = 0; p < kNumTaskPriorities; ++p) {
    if (p > 0) out->push_back(',');
    AppendJsonString(TaskPriorityName(static_cast<TaskPriority>(p)), out);
    out->append(":{\"mean_ms\":");
    AppendJsonNumber(t.lane_mean_ms[p], out);
    out->append(",\"p99_ms\":");
    AppendJsonNumber(t.lane_p99_ms[p], out);
    out->push_back('}');
  }
  out->push_back('}');
}

}  // namespace

ServingFrontend::ServingFrontend(const EstimationService* service,
                                 const ModelRegistry* registry,
                                 std::string model_name)
    : service_(service),
      registry_(registry),
      model_name_(std::move(model_name)) {}

HttpResponse ServingFrontend::Handle(const HttpRequest& request) const {
  if (request.target == "/v1/estimate") {
    if (request.method != "POST") {
      return JsonResponse(405, FormatWireError("use POST"));
    }
    return HandleEstimate(request);
  }
  if (request.target == "/v1/observe") {
    if (request.method != "POST") {
      return JsonResponse(405, FormatWireError("use POST"));
    }
    return HandleObserve(request);
  }
  if (request.target == "/v1/tenants") {
    if (request.method != "GET") {
      return JsonResponse(405, FormatWireError("use GET"));
    }
    return HandleTenants();
  }
  if (request.target == "/healthz") {
    if (request.method != "GET") {
      return JsonResponse(405, FormatWireError("use GET"));
    }
    return HandleHealthz(request);
  }
  if (request.target == "/metrics") {
    if (request.method != "GET") {
      return JsonResponse(405, FormatWireError("use GET"));
    }
    return HandleMetrics();
  }
  return JsonResponse(404, FormatWireError("no such endpoint: " +
                                           request.target));
}

bool ServingFrontend::RouteTenant(const HttpRequest& request,
                                  const std::string& body_tenant,
                                  RoutedTenant* out,
                                  HttpResponse* error_response) const {
  const std::string* header = request.FindHeader("X-Resest-Tenant");
  std::string id = body_tenant;
  if (header != nullptr && !header->empty()) {
    if (!id.empty() && id != *header) {
      *error_response = JsonResponse(
          400, FormatWireError("tenant mismatch: header \"" + *header +
                               "\" vs body \"" + id + "\""));
      return false;
    }
    if (id.empty()) id = *header;
  }
  if (id.empty()) id = kDefaultTenant;
  if (!IsValidTenantId(id)) {
    *error_response =
        JsonResponse(400, FormatWireError("invalid tenant id \"" + id + "\""));
    return false;
  }
  if (tenants_ != nullptr) {
    TenantManager::Tenant* tenant = tenants_->Resolve(id);
    if (tenant == nullptr) {
      *error_response =
          JsonResponse(404, FormatWireError("unknown tenant \"" + id + "\""));
      return false;
    }
    out->id = tenant->id;
    out->model_name = tenant->model_name;
    out->service = tenant->service.get();
    out->coalescer = tenant->coalescer.get();
    out->trainer = tenant->trainer.get();
    return true;
  }
  // Single-tenant mode: only the default tenant exists.
  if (id != kDefaultTenant) {
    *error_response =
        JsonResponse(404, FormatWireError("unknown tenant \"" + id + "\""));
    return false;
  }
  out->id = id;
  out->model_name = model_name_;
  out->service = service_;
  out->coalescer = coalescer_;
  out->trainer = trainer_;
  return true;
}

void ServingFrontend::HandleAsync(
    const HttpRequest& request,
    std::function<void(HttpResponse)> respond) const {
  if (request.target != "/v1/estimate" || request.method != "POST") {
    respond(Handle(request));
    return;
  }
  // Parse inline on the I/O thread (cheap relative to estimation — the
  // fast-path scanner decodes the hot shape in one pass); only the
  // estimation itself is deferred into the batch pipeline.
  std::vector<EstimateRequest> requests;
  SubmitOptions options;
  std::string body_tenant;
  std::string error;
  if (!ParseEstimateWireRequest(request.body, &requests, &options,
                                &body_tenant, &error)) {
    respond(JsonResponse(400, FormatWireError(error)));
    return;
  }
  RoutedTenant routed;
  HttpResponse routing_error;
  if (!RouteTenant(request, body_tenant, &routed, &routing_error)) {
    respond(std::move(routing_error));
    return;
  }
  options.tenant = routed.id;
  auto done = [respond = std::move(respond)](
                  std::vector<EstimateResult> results) {
    respond(JsonResponse(EstimateWireHttpStatus(results),
                         FormatEstimateWireResponse(results)));
  };
  if (routed.coalescer != nullptr) {
    routed.coalescer->Submit(std::move(requests), options, std::move(done));
  } else {
    routed.service->SubmitBatch(std::move(requests), std::move(done),
                                options);
  }
}

HttpResponse ServingFrontend::HandleEstimate(
    const HttpRequest& request) const {
  std::vector<EstimateRequest> requests;
  SubmitOptions options;
  std::string body_tenant;
  std::string error;
  if (!ParseEstimateWireRequest(request.body, &requests, &options,
                                &body_tenant, &error)) {
    return JsonResponse(400, FormatWireError(error));
  }
  RoutedTenant routed;
  HttpResponse routing_error;
  if (!RouteTenant(request, body_tenant, &routed, &routing_error)) {
    return routing_error;
  }
  options.tenant = routed.id;
  const std::vector<EstimateResult> results =
      routed.service->EstimateBatch(requests, options);
  return JsonResponse(EstimateWireHttpStatus(results),
                      FormatEstimateWireResponse(results));
}

HttpResponse ServingFrontend::HandleObserve(
    const HttpRequest& request) const {
  JsonValue body;
  std::string error;
  if (!JsonValue::Parse(request.body, &body, &error)) {
    return JsonResponse(400, FormatWireError("malformed JSON: " + error));
  }
  std::vector<ObserveWireRow> rows;
  std::string body_tenant;
  if (!ParseObserveWireBatch(body, &rows, &error, &body_tenant)) {
    return JsonResponse(400, FormatWireError(error));
  }
  RoutedTenant routed;
  HttpResponse routing_error;
  if (!RouteTenant(request, body_tenant, &routed, &routing_error)) {
    return routing_error;
  }
  if (routed.trainer == nullptr) {
    return JsonResponse(
        503, FormatWireError("observation ingestion is disabled (start the "
                             "server with --data-dir)"));
  }
  for (const ObserveWireRow& row : rows) {
    routed.trainer->Append(row.op, row.resource, row.features, row.label);
  }
  return JsonResponse(200, FormatObserveWireResponse(
                               rows.size(), routed.trainer->base_version()));
}

HttpResponse ServingFrontend::HandleHealthz(const HttpRequest& request) const {
  RoutedTenant routed;
  HttpResponse routing_error;
  if (!RouteTenant(request, /*body_tenant=*/"", &routed, &routing_error)) {
    return routing_error;
  }
  const ModelSnapshot snapshot = registry_->Get(routed.model_name);
  if (!snapshot) {
    return JsonResponse(503, FormatWireError("no active model \"" +
                                             routed.model_name + "\""));
  }
  std::string body = "{\"status\":\"ok\",\"model\":";
  AppendJsonString(routed.model_name, &body);
  body += ",\"model_version\":" + std::to_string(snapshot.version) + "}";
  return JsonResponse(200, std::move(body));
}

std::vector<TenantStats> ServingFrontend::TenantSnapshots() const {
  if (tenants_ != nullptr) return tenants_->stats();
  // Single-tenant mode: synthesize the default tenant's entry from the
  // frontend's own seams so the tenant families are always present.
  TenantStats t;
  t.tenant = kDefaultTenant;
  t.model_name = model_name_;
  t.model_version = registry_->Get(model_name_).version;
  const ServiceStats s = service_->stats();
  t.requests = s.requests;
  t.batches = s.batches;
  t.deadline_expired = s.deadline_expired;
  t.cache_hits = s.cache_hits;
  t.cache_misses = s.cache_misses;
  t.cache_evictions = s.cache_evictions;
  t.cache_entries = s.cache_entries;
  t.cache_capacity = service_->options().enable_cache
                         ? service_->options().cache_capacity
                         : 0;
  t.cache_hit_rate = s.CacheHitRate();
  t.cache_pressure =
      t.cache_capacity == 0
          ? 0.0
          : static_cast<double>(t.cache_entries) /
                static_cast<double>(t.cache_capacity);
  if (trainer_ != nullptr) {
    const DurabilityStats d = trainer_->durability_stats();
    t.durable = d.durable;
    t.obslog_bytes = d.memory_bytes;
    t.obslog_pending_rows = trainer_->TotalPendingRows();
    t.wal_records = d.wal.records_appended;
  }
  for (size_t p = 0; p < kNumTaskPriorities; ++p) {
    t.lane_p99_ms[p] = s.priorities[p].ApproxLatencyPercentileMs(0.99);
    t.lane_mean_ms[p] = s.priorities[p].MeanLatencyMs();
  }
  return {std::move(t)};
}

HttpResponse ServingFrontend::HandleTenants() const {
  const std::vector<TenantStats> tenants = TenantSnapshots();
  std::string body = "{\"tenants\":[";
  for (size_t i = 0; i < tenants.size(); ++i) {
    const TenantStats& t = tenants[i];
    if (i > 0) body.push_back(',');
    body += "{\"tenant\":";
    AppendJsonString(t.tenant, &body);
    body += ",\"model\":";
    AppendJsonString(t.model_name, &body);
    body += ",\"model_version\":" + std::to_string(t.model_version);
    body += ",\"requests\":" + std::to_string(t.requests);
    body += ",\"batches\":" + std::to_string(t.batches);
    body += ",\"deadline_expired\":" + std::to_string(t.deadline_expired);
    body += ",\"qps\":";
    AppendJsonNumber(t.qps, &body);
    body += ",\"cache\":{\"hits\":" + std::to_string(t.cache_hits);
    body += ",\"misses\":" + std::to_string(t.cache_misses);
    body += ",\"evictions\":" + std::to_string(t.cache_evictions);
    body += ",\"entries\":" + std::to_string(t.cache_entries);
    body += ",\"capacity\":" + std::to_string(t.cache_capacity);
    body += ",\"hit_rate\":";
    AppendJsonNumber(t.cache_hit_rate, &body);
    body += ",\"pressure\":";
    AppendJsonNumber(t.cache_pressure, &body);
    body += "},\"obslog\":{\"durable\":";
    body += t.durable ? "true" : "false";
    body += ",\"bytes\":" + std::to_string(t.obslog_bytes);
    body += ",\"pending_rows\":" + std::to_string(t.obslog_pending_rows);
    body += ",\"wal_records\":" + std::to_string(t.wal_records);
    body += "},";
    AppendLaneJson(t, &body);
    body += ",\"heartbeats\":" + std::to_string(t.heartbeats);
    body.push_back('}');
  }
  body += "]}";
  return JsonResponse(200, std::move(body));
}

HttpResponse ServingFrontend::HandleMetrics() const {
  ServerMetricsSnapshot snapshot;
  snapshot.service = service_->stats();
  snapshot.cache = service_->cache_stats();
  snapshot.model_name = model_name_;
  const ModelSnapshot model = registry_->Get(model_name_);
  if (model) {
    snapshot.model_version = model.version;
    snapshot.slot_versions.reserve(kNumModelSlots);
    for (int op = 0; op < kNumOpTypes; ++op) {
      for (int res = 0; res < kNumResources; ++res) {
        snapshot.slot_versions.emplace_back(
            OpTypeName(static_cast<OpType>(op)),
            ResourceName(static_cast<Resource>(res)),
            model.SlotVersion(static_cast<OpType>(op),
                              static_cast<Resource>(res)));
      }
    }
  }
  if (http_server_ != nullptr) {
    const HttpServerStats http = http_server_->stats();
    snapshot.http_requests_served = http.requests_served;
    snapshot.http_active_connections = http.open_connections;
    snapshot.http_connections_accepted = http.connections_accepted;
    snapshot.http_keepalive_requests = http.keepalive_requests;
  }
  if (coalescer_ != nullptr) {
    snapshot.has_coalescer = true;
    snapshot.coalescer = coalescer_->stats();
  } else if (tenants_ != nullptr) {
    // Multi-tenant servers keep the aggregate coalescer families alive by
    // summing over tenants is overkill; expose the default tenant's.
    const TenantManager::Tenant* def = tenants_->Resolve(kDefaultTenant);
    if (def != nullptr && def->coalescer != nullptr) {
      snapshot.has_coalescer = true;
      snapshot.coalescer = def->coalescer->stats();
    }
  }
  if (trainer_ != nullptr) {
    snapshot.has_durability = true;
    snapshot.durability = trainer_->durability_stats();
  } else if (tenants_ != nullptr) {
    const TenantManager::Tenant* def = tenants_->Resolve(kDefaultTenant);
    if (def != nullptr && def->trainer != nullptr) {
      snapshot.has_durability = true;
      snapshot.durability = def->trainer->durability_stats();
    }
  }
  snapshot.tenants = TenantSnapshots();
  HttpResponse response;
  response.content_type = "text/plain; version=0.0.4; charset=utf-8";
  response.body = RenderServiceMetrics(snapshot);
  return response;
}

}  // namespace resest
