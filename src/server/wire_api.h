// JSON <-> service translation for POST /v1/estimate: parses a wire batch
// into EstimateRequests plus SubmitOptions, and formats EstimateResults
// back into the response body. Kept free of socket code so the tests can
// exercise the wire contract without a server.
//
// Request body (docs/wire_api.md has the full contract):
//
//   {
//     "priority": "urgent" | "normal" | "bulk",   // optional, default normal
//     "deadline_ms": 250,                          // optional, > 0
//     "tenant": "analytics",                       // optional, default tenant
//     "requests": [
//       {"op": "TableScan", "resource": "CPU", "features": [1e4, 8.0, ...]},
//       ...
//     ]
//   }
//
// `features` is an array of at most kNumFeatures numbers; omitted trailing
// positions are zero (matching a default-constructed FeatureVector).
// Parsing is strict: `requests` must be non-empty and unknown fields are
// rejected rather than silently ignored, so client typos fail loudly.
//
// Response body:
//
//   {
//     "model_version": 3,                          // of the first result
//     "results": [
//       {"status": "OK", "value": 123.5, "model_version": 3},
//       ...
//     ]
//   }
//
// Values are printed in shortest round-trip form (std::to_chars), so a
// client parsing them with strtod recovers bit-identical doubles — the HTTP
// surface keeps the service's bit-identity contract.
#ifndef RESEST_SERVER_WIRE_API_H_
#define RESEST_SERVER_WIRE_API_H_

#include <string>
#include <vector>

#include "src/server/json.h"
#include "src/serving/estimation_service.h"

namespace resest {

/// Parses the body of POST /v1/estimate. On success fills *requests (every
/// entry operator-based) and *options; on failure returns false with a
/// client-actionable message in *error and leaves the outputs unspecified.
/// A `deadline_ms` is converted to an absolute steady-clock deadline at
/// parse time, so queueing delay counts against it — same as an in-process
/// caller computing the deadline before submitting.
/// When `tenant` is non-null it receives the optional "tenant" field
/// (cleared when absent); routing/validation is the caller's job.
bool ParseEstimateWireBatch(const JsonValue& body,
                            std::vector<EstimateRequest>* requests,
                            SubmitOptions* options, std::string* error,
                            std::string* tenant = nullptr);

/// Parses a raw POST /v1/estimate body end to end. Semantically identical
/// to JsonValue::Parse + ParseEstimateWireBatch (including error messages,
/// with JSON syntax errors prefixed "malformed JSON: "), but the well-formed
/// hot shape — objects of priority/deadline_ms/tenant/requests with plain
/// strings and numbers — is decoded in a single allocation-light pass over
/// the text without building a JsonValue tree. Any deviation (escapes,
/// unknown keys, duplicates, type errors, syntax errors) falls back to the
/// tree parser so accept/reject behavior and diagnostics stay canonical.
bool ParseEstimateWireRequest(const std::string& body,
                              std::vector<EstimateRequest>* requests,
                              SubmitOptions* options, std::string* tenant,
                              std::string* error);

/// Formats the response body for a completed batch (one result per request,
/// in request order).
std::string FormatEstimateWireResponse(
    const std::vector<EstimateResult>& results);

/// The HTTP status for a completed batch: 200 when any result is OK (the
/// body carries per-result statuses), otherwise the mapped code of the
/// failure — which is uniform for whole-batch failures (oversized,
/// no model, expired at submit). An empty batch is 200.
int EstimateWireHttpStatus(const std::vector<EstimateResult>& results);

/// Formats the error body `{"error": "..."}` used for 4xx responses.
std::string FormatWireError(const std::string& message);

/// One observation row from POST /v1/observe — the feedback edge over HTTP.
/// Body shape (same strictness rules as /v1/estimate, including the
/// optional top-level "tenant" field):
///
///   {
///     "tenant": "analytics",                       // optional
///     "observations": [
///       {"op": "TableScan", "resource": "CPU",
///        "features": [1e4, 8.0, ...], "label": 1234.5},
///       ...
///     ]
///   }
struct ObserveWireRow {
  OpType op = OpType::kTableScan;
  Resource resource = Resource::kCpu;
  FeatureVector features{};
  double label = 0.0;
};

/// Parses the body of POST /v1/observe. On failure returns false with a
/// client-actionable message in *error; *rows is unspecified then. When
/// `tenant` is non-null it receives the optional "tenant" field (cleared
/// when absent).
bool ParseObserveWireBatch(const JsonValue& body,
                           std::vector<ObserveWireRow>* rows,
                           std::string* error,
                           std::string* tenant = nullptr);

/// Formats the response body `{"accepted": N, "model_version": V}`.
std::string FormatObserveWireResponse(size_t accepted, uint64_t model_version);

}  // namespace resest

#endif  // RESEST_SERVER_WIRE_API_H_
