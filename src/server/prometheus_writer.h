// Prometheus text exposition (version 0.0.4) for GET /metrics: a small
// generic writer for counter/gauge/histogram families, plus the renderer
// that lays the service's ServiceStats / EstimateCacheStats / ModelSnapshot
// out as metric families. Socket-free so tests can pin the exact exposition
// without a server.
#ifndef RESEST_SERVER_PROMETHEUS_WRITER_H_
#define RESEST_SERVER_PROMETHEUS_WRITER_H_

#include <cstdint>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "src/serving/batch_coalescer.h"
#include "src/serving/estimation_service.h"
#include "src/serving/tenant_manager.h"
#include "src/training/incremental_trainer.h"

namespace resest {

/// Label set of one sample, in emission order.
using PrometheusLabels = std::vector<std::pair<std::string, std::string>>;

/// Accumulates one exposition document. Usage per family: BeginFamily once
/// (writes # HELP / # TYPE), then one Sample per label combination.
/// Histograms are emitted via the dedicated Histogram() helper, which
/// writes the cumulative _bucket series plus _sum and _count.
class PrometheusWriter {
 public:
  void BeginFamily(const std::string& name, const std::string& help,
                   const char* type);

  void Sample(const std::string& name, const PrometheusLabels& labels,
              double value);
  void Sample(const std::string& name, const PrometheusLabels& labels,
              uint64_t value);

  /// Emits one histogram series under `name` (family must have been begun
  /// with type "histogram"). `bucket_counts[i]` is the count of
  /// observations with value < upper_bounds[i] — non-cumulative, matching
  /// PriorityLaneStats::latency_histogram; cumulation and the +Inf bucket
  /// are handled here. `sum` is in the metric's unit.
  void Histogram(const std::string& name, const PrometheusLabels& labels,
                 const std::vector<double>& upper_bounds,
                 const std::vector<uint64_t>& bucket_counts, double sum,
                 uint64_t count);

  const std::string& text() const { return text_; }

 private:
  void SampleLine(const std::string& name, const PrometheusLabels& labels,
                  const std::string& value);

  std::string text_;
};

/// Everything GET /metrics exposes, gathered by the frontend in one pass.
struct ServerMetricsSnapshot {
  ServiceStats service;
  EstimateCacheStats cache;
  std::string model_name;
  uint64_t model_version = 0;  ///< 0 = no active model.
  /// (op name, resource name, slot version) for every model slot; empty
  /// when no model is active.
  std::vector<std::tuple<std::string, std::string, uint64_t>> slot_versions;
  uint64_t http_requests_served = 0;
  size_t http_active_connections = 0;
  uint64_t http_connections_accepted = 0;
  uint64_t http_keepalive_requests = 0;
  /// Micro-batch coalescer counters and histograms; emitted only when the
  /// server runs with coalescing attached (has_coalescer).
  bool has_coalescer = false;
  CoalescerStats coalescer;
  /// WAL/recovery/observation-log durability counters; emitted only when
  /// the server runs a durable trainer (has_durability).
  bool has_durability = false;
  DurabilityStats durability;
  /// Per-tenant load/pressure snapshots (the heartbeat sweep's output),
  /// emitted as resest_tenant_*{tenant="..."} families. Single-tenant
  /// frontends synthesize one "default" entry so the families are always
  /// present.
  std::vector<TenantStats> tenants;
};

/// Renders the full exposition document for GET /metrics.
std::string RenderServiceMetrics(const ServerMetricsSnapshot& snapshot);

}  // namespace resest

#endif  // RESEST_SERVER_PROMETHEUS_WRITER_H_
