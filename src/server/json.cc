#include "src/server/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace resest {

struct JsonValue::Parser {
  const char* p;
  const char* end;
  const char* begin;
  std::string* error;

  bool Fail(const std::string& message) {
    if (error != nullptr) {
      *error = "JSON error at byte " + std::to_string(p - begin) + ": " +
               message;
    }
    return false;
  }

  void SkipSpace() {
    while (p < end &&
           (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r')) {
      ++p;
    }
  }

  bool Literal(const char* text) {
    const char* q = text;
    const char* save = p;
    while (*q != '\0') {
      if (p >= end || *p != *q) {
        p = save;
        return false;
      }
      ++p;
      ++q;
    }
    return true;
  }

  bool ParseHex4(unsigned* out) {
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      if (p >= end) return false;
      const char c = *p++;
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        return false;
      }
    }
    *out = value;
    return true;
  }

  static void AppendUtf8(unsigned cp, std::string* out) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  bool ParseString(std::string* out) {
    if (p >= end || *p != '"') return Fail("expected string");
    ++p;
    out->clear();
    while (p < end) {
      const unsigned char c = static_cast<unsigned char>(*p);
      if (c == '"') {
        ++p;
        return true;
      }
      if (c == '\\') {
        ++p;
        if (p >= end) break;
        const char esc = *p++;
        switch (esc) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'n': out->push_back('\n'); break;
          case 'r': out->push_back('\r'); break;
          case 't': out->push_back('\t'); break;
          case 'u': {
            unsigned cp = 0;
            if (!ParseHex4(&cp)) return Fail("bad \\u escape");
            if (cp >= 0xD800 && cp <= 0xDBFF) {
              // High surrogate: require the paired low surrogate.
              unsigned lo = 0;
              if (p + 1 < end && p[0] == '\\' && p[1] == 'u') {
                p += 2;
                if (!ParseHex4(&lo) || lo < 0xDC00 || lo > 0xDFFF) {
                  return Fail("bad surrogate pair");
                }
                cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
              } else {
                return Fail("unpaired surrogate");
              }
            } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
              return Fail("unpaired surrogate");
            }
            AppendUtf8(cp, out);
            break;
          }
          default:
            return Fail("bad escape character");
        }
        continue;
      }
      if (c < 0x20) return Fail("unescaped control character in string");
      out->push_back(static_cast<char>(c));
      ++p;
    }
    return Fail("unterminated string");
  }

  bool ParseNumber(double* out) {
    const char* start = p;
    if (p < end && *p == '-') ++p;
    if (p >= end || *p < '0' || *p > '9') return Fail("bad number");
    if (*p == '0') {
      ++p;
    } else {
      while (p < end && *p >= '0' && *p <= '9') ++p;
    }
    if (p < end && *p == '.') {
      ++p;
      if (p >= end || *p < '0' || *p > '9') return Fail("bad fraction");
      while (p < end && *p >= '0' && *p <= '9') ++p;
    }
    if (p < end && (*p == 'e' || *p == 'E')) {
      ++p;
      if (p < end && (*p == '+' || *p == '-')) ++p;
      if (p >= end || *p < '0' || *p > '9') return Fail("bad exponent");
      while (p < end && *p >= '0' && *p <= '9') ++p;
    }
    // The grammar check above guarantees the token is exactly [start, p);
    // from_chars is correctly rounded (same double strtod would produce)
    // and needs no NUL-terminated copy — numbers dominate estimate bodies,
    // so this path must not allocate.
    const auto result = std::from_chars(start, p, *out);
    if (result.ec == std::errc::result_out_of_range) {
      // Overflow/underflow saturate the way strtod does (±HUGE_VAL / 0).
      std::string token(start, p);
      *out = std::strtod(token.c_str(), nullptr);
    }
    return true;
  }

  bool ParseValue(JsonValue* out, size_t depth) {
    if (depth >= kMaxJsonDepth) return Fail("nesting too deep");
    SkipSpace();
    if (p >= end) return Fail("unexpected end of input");
    switch (*p) {
      case 'n':
        if (!Literal("null")) return Fail("bad literal");
        out->type_ = Type::kNull;
        return true;
      case 't':
        if (!Literal("true")) return Fail("bad literal");
        out->type_ = Type::kBool;
        out->bool_ = true;
        return true;
      case 'f':
        if (!Literal("false")) return Fail("bad literal");
        out->type_ = Type::kBool;
        out->bool_ = false;
        return true;
      case '"':
        out->type_ = Type::kString;
        return ParseString(&out->string_);
      case '[': {
        ++p;
        out->type_ = Type::kArray;
        SkipSpace();
        if (p < end && *p == ']') {
          ++p;
          return true;
        }
        while (true) {
          out->items_.emplace_back();
          if (!ParseValue(&out->items_.back(), depth + 1)) return false;
          SkipSpace();
          if (p < end && *p == ',') {
            ++p;
            continue;
          }
          if (p < end && *p == ']') {
            ++p;
            return true;
          }
          return Fail("expected ',' or ']' in array");
        }
      }
      case '{': {
        ++p;
        out->type_ = Type::kObject;
        SkipSpace();
        if (p < end && *p == '}') {
          ++p;
          return true;
        }
        while (true) {
          SkipSpace();
          std::string key;
          if (!ParseString(&key)) return false;
          SkipSpace();
          if (p >= end || *p != ':') return Fail("expected ':' in object");
          ++p;
          out->members_.emplace_back(std::move(key), JsonValue());
          if (!ParseValue(&out->members_.back().second, depth + 1)) {
            return false;
          }
          SkipSpace();
          if (p < end && *p == ',') {
            ++p;
            continue;
          }
          if (p < end && *p == '}') {
            ++p;
            return true;
          }
          return Fail("expected ',' or '}' in object");
        }
      }
      default:
        out->type_ = Type::kNumber;
        return ParseNumber(&out->number_);
    }
  }
};

bool JsonValue::Parse(const std::string& text, JsonValue* out,
                      std::string* error) {
  *out = JsonValue();
  Parser parser{text.data(), text.data() + text.size(), text.data(), error};
  if (!parser.ParseValue(out, 0)) return false;
  parser.SkipSpace();
  if (parser.p != parser.end) return parser.Fail("trailing characters");
  return true;
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  const JsonValue* found = nullptr;
  for (const auto& member : members_) {
    if (member.first == key) found = &member.second;
  }
  return found;
}

void AppendJsonString(const std::string& s, std::string* out) {
  out->push_back('"');
  for (const unsigned char c : s) {
    switch (c) {
      case '"': out->append("\\\""); break;
      case '\\': out->append("\\\\"); break;
      case '\b': out->append("\\b"); break;
      case '\f': out->append("\\f"); break;
      case '\n': out->append("\\n"); break;
      case '\r': out->append("\\r"); break;
      case '\t': out->append("\\t"); break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(static_cast<char>(c));
        }
    }
  }
  out->push_back('"');
}

void AppendJsonNumber(double value, std::string* out) {
  if (!std::isfinite(value)) {
    out->append("null");
    return;
  }
  // Shortest round-trip form: parsing the text recovers the identical bit
  // pattern (to_chars guarantees it), and it is ~5x cheaper than the
  // %.17g snprintf it replaced — response formatting runs on the serving
  // hot path.
  char buf[32];
  const auto result = std::to_chars(buf, buf + sizeof(buf), value);
  out->append(buf, static_cast<size_t>(result.ptr - buf));
}

}  // namespace resest
