#include "src/ml/svr.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

namespace resest {

const char* KernelName(KernelType t) {
  switch (t) {
    case KernelType::kPoly: return "PK";
    case KernelType::kNormalizedPoly: return "NPK";
    case KernelType::kRbf: return "RBF";
    case KernelType::kPuk: return "Puk";
  }
  return "?";
}

namespace {
double Dot(const std::vector<double>& a, const std::vector<double>& b) {
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}
double SqDist(const std::vector<double>& a, const std::vector<double>& b) {
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) s += (a[i] - b[i]) * (a[i] - b[i]);
  return s;
}
}  // namespace

double Svr::Kernel(const std::vector<double>& a,
                   const std::vector<double>& b) const {
  switch (params_.kernel) {
    case KernelType::kPoly:
      return std::pow(Dot(a, b) + 1.0, params_.poly_degree);
    case KernelType::kNormalizedPoly: {
      const double kab = std::pow(Dot(a, b) + 1.0, params_.poly_degree);
      const double kaa = std::pow(Dot(a, a) + 1.0, params_.poly_degree);
      const double kbb = std::pow(Dot(b, b) + 1.0, params_.poly_degree);
      return kab / std::sqrt(kaa * kbb);
    }
    case KernelType::kRbf:
      return std::exp(-params_.rbf_gamma * SqDist(a, b));
    case KernelType::kPuk: {
      const double d = std::sqrt(SqDist(a, b));
      const double root = std::sqrt(std::pow(2.0, 1.0 / params_.puk_omega) - 1.0);
      const double base = 1.0 + std::pow(2.0 * d * root / params_.puk_sigma, 2.0);
      return 1.0 / std::pow(base, params_.puk_omega);
    }
  }
  return 0.0;
}

void Svr::Fit(const Dataset& data) {
  support_.clear();
  beta_.clear();
  bias_ = 0.0;
  if (data.NumRows() == 0) return;

  // Subsample if needed (SMO cost is quadratic in n).
  Dataset train = data;
  if (train.NumRows() > params_.max_train_rows) {
    Rng rng(params_.seed);
    std::vector<size_t> order(train.NumRows());
    std::iota(order.begin(), order.end(), 0u);
    rng.Shuffle(&order);
    order.resize(params_.max_train_rows);
    train = train.Select(order);
  }

  // Standardize inputs and the target.
  x_std_.Fit(train);
  const Dataset xs = x_std_.TransformAll(train);
  y_mean_ = 0.0;
  for (double v : xs.y) y_mean_ += v;
  y_mean_ /= static_cast<double>(xs.NumRows());
  double var = 0.0;
  for (double v : xs.y) var += (v - y_mean_) * (v - y_mean_);
  y_std_ = std::sqrt(var / static_cast<double>(xs.NumRows()));
  if (y_std_ < 1e-12) y_std_ = 1.0;
  std::vector<double> y(xs.NumRows());
  for (size_t i = 0; i < xs.NumRows(); ++i) y[i] = (xs.y[i] - y_mean_) / y_std_;

  const size_t n = xs.NumRows();
  // Kernel cache (float to halve memory).
  std::vector<float> k(n * n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i; j < n; ++j) {
      const float v = static_cast<float>(Kernel(xs.x[i], xs.x[j]));
      k[i * n + j] = v;
      k[j * n + i] = v;
    }
  }

  // LIBSVM-style expanded problem: t < n are alpha (z=+1), t >= n are
  // alpha* (z=-1); a_t in [0, C]; G_t = (Q a)_t + p_t.
  const size_t m = 2 * n;
  const double c = params_.c;
  std::vector<double> a(m, 0.0), g(m);
  auto z = [n](size_t t) { return t < n ? 1.0 : -1.0; };
  auto idx = [n](size_t t) { return t < n ? t : t - n; };
  for (size_t t = 0; t < m; ++t) g[t] = params_.epsilon - z(t) * y[idx(t)];

  const double tau = 1e-12;
  int iter = 0;
  for (; iter < params_.max_iterations; ++iter) {
    // Working-set selection (maximal violating pair).
    double gmax = -std::numeric_limits<double>::infinity();
    double gmin = std::numeric_limits<double>::infinity();
    size_t i = m, j = m;
    for (size_t t = 0; t < m; ++t) {
      const bool in_up = (z(t) > 0 && a[t] < c) || (z(t) < 0 && a[t] > 0);
      const bool in_low = (z(t) < 0 && a[t] < c) || (z(t) > 0 && a[t] > 0);
      const double v = -z(t) * g[t];
      if (in_up && v > gmax) {
        gmax = v;
        i = t;
      }
      if (in_low && v < gmin) {
        gmin = v;
        j = t;
      }
    }
    if (i == m || j == m || gmax - gmin < params_.tolerance) break;

    const size_t ii = idx(i), jj = idx(j);
    const double kii = k[ii * n + ii], kjj = k[jj * n + jj], kij = k[ii * n + jj];
    const double old_ai = a[i], old_aj = a[j];

    if (z(i) != z(j)) {
      double quad = kii + kjj + 2.0 * kij;
      if (quad <= 0) quad = tau;
      const double delta = (-g[i] - g[j]) / quad;
      const double diff = a[i] - a[j];
      a[i] += delta;
      a[j] += delta;
      if (diff > 0 && a[j] < 0) {
        a[j] = 0;
        a[i] = diff;
      } else if (diff <= 0 && a[i] < 0) {
        a[i] = 0;
        a[j] = -diff;
      }
      if (diff > 0) {
        if (a[i] > c) {
          a[i] = c;
          a[j] = c - diff;
        }
      } else {
        if (a[j] > c) {
          a[j] = c;
          a[i] = c + diff;
        }
      }
    } else {
      double quad = kii + kjj - 2.0 * kij;
      if (quad <= 0) quad = tau;
      const double delta = (g[i] - g[j]) / quad;
      const double sum = a[i] + a[j];
      a[i] -= delta;
      a[j] += delta;
      if (sum > c) {
        if (a[i] > c) {
          a[i] = c;
          a[j] = sum - c;
        } else if (a[j] > c) {
          a[j] = c;
          a[i] = sum - c;
        }
      } else {
        if (a[j] < 0) {
          a[j] = 0;
          a[i] = sum;
        } else if (a[i] < 0) {
          a[i] = 0;
          a[j] = sum;
        }
      }
    }

    const double dai = a[i] - old_ai, daj = a[j] - old_aj;
    if (dai == 0.0 && daj == 0.0) break;
    for (size_t t = 0; t < m; ++t) {
      const size_t tt = idx(t);
      g[t] += z(t) * (z(i) * k[tt * n + ii] * dai + z(j) * k[tt * n + jj] * daj);
    }
  }

  // Bias: midpoint of the KKT bracket.
  double gmax = -std::numeric_limits<double>::infinity();
  double gmin = std::numeric_limits<double>::infinity();
  for (size_t t = 0; t < m; ++t) {
    const bool in_up = (z(t) > 0 && a[t] < c) || (z(t) < 0 && a[t] > 0);
    const bool in_low = (z(t) < 0 && a[t] < c) || (z(t) > 0 && a[t] > 0);
    const double v = -z(t) * g[t];
    if (in_up) gmax = std::max(gmax, v);
    if (in_low) gmin = std::min(gmin, v);
  }
  bias_ = (std::isfinite(gmax) && std::isfinite(gmin)) ? (gmax + gmin) / 2.0 : 0.0;

  for (size_t i = 0; i < n; ++i) {
    const double b = a[i] - a[i + n];
    if (std::fabs(b) > 1e-10) {
      support_.push_back(xs.x[i]);
      beta_.push_back(b);
    }
  }
}

double Svr::Predict(const std::vector<double>& features) const {
  const std::vector<double> x = x_std_.Transform(features);
  double f = bias_;
  for (size_t s = 0; s < support_.size(); ++s) {
    f += beta_[s] * Kernel(support_[s], x);
  }
  return f * y_std_ + y_mean_;
}

size_t Svr::NumSupportVectors() const { return support_.size(); }

}  // namespace resest
