#include "src/ml/regression_tree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <stdexcept>

namespace resest {

void FeatureBinner::Fit(const Dataset& data, int num_bins) {
  const size_t f = data.NumFeatures();
  edges_.assign(f, {});
  if (data.NumRows() == 0) return;
  std::vector<double> values(data.NumRows());
  for (size_t j = 0; j < f; ++j) {
    for (size_t i = 0; i < data.NumRows(); ++i) values[i] = data.x[i][j];
    std::sort(values.begin(), values.end());
    // Quantile edges, deduplicated.
    std::vector<double>& e = edges_[j];
    for (int b = 1; b < num_bins; ++b) {
      const size_t pos = static_cast<size_t>(
          static_cast<double>(b) / num_bins * static_cast<double>(values.size() - 1));
      const double v = values[pos];
      if (e.empty() || v > e.back()) e.push_back(v);
    }
    if (e.empty()) e.push_back(values.back());
  }
}

int FeatureBinner::Bin(size_t feature, double value) const {
  const auto& e = edges_[feature];
  // Bin b covers (e[b-1], e[b]]; values above the last edge go to the last bin.
  const auto it = std::lower_bound(e.begin(), e.end(), value);
  return static_cast<int>(std::min<std::ptrdiff_t>(
      it - e.begin(), static_cast<std::ptrdiff_t>(e.size()) - 1));
}

namespace {

struct SplitChoice {
  double gain = 0.0;
  int feature = -1;
  int bin = -1;       // split "Bin(x) <= bin"
  double threshold = 0.0;
};

struct NodeWork {
  int node_index;
  std::vector<size_t> rows;
  double sum;
  SplitChoice best;
};

// Finds the best histogram split for the rows; gain is the SSE reduction
// sum_L^2/n_L + sum_R^2/n_R - sum^2/n.
SplitChoice FindBestSplit(const Dataset& data, const std::vector<double>& targets,
                          const std::vector<size_t>& rows,
                          const FeatureBinner& binner, int min_leaf,
                          std::vector<double>* bin_sum_buf,
                          std::vector<int64_t>* bin_cnt_buf) {
  SplitChoice best;
  const size_t n = rows.size();
  if (n < 2 * static_cast<size_t>(min_leaf)) return best;
  double total = 0.0;
  for (size_t r : rows) total += targets[r];
  const double parent_score = total * total / static_cast<double>(n);

  for (size_t f = 0; f < binner.NumFeatures(); ++f) {
    const int bins = binner.NumBins(f);
    bin_sum_buf->assign(static_cast<size_t>(bins), 0.0);
    bin_cnt_buf->assign(static_cast<size_t>(bins), 0);
    for (size_t r : rows) {
      const int b = binner.Bin(f, data.x[r][f]);
      (*bin_sum_buf)[static_cast<size_t>(b)] += targets[r];
      (*bin_cnt_buf)[static_cast<size_t>(b)] += 1;
    }
    double left_sum = 0.0;
    int64_t left_cnt = 0;
    for (int b = 0; b + 1 < bins; ++b) {
      left_sum += (*bin_sum_buf)[static_cast<size_t>(b)];
      left_cnt += (*bin_cnt_buf)[static_cast<size_t>(b)];
      const int64_t right_cnt = static_cast<int64_t>(n) - left_cnt;
      if (left_cnt < min_leaf || right_cnt < min_leaf) continue;
      const double right_sum = total - left_sum;
      const double score =
          left_sum * left_sum / static_cast<double>(left_cnt) +
          right_sum * right_sum / static_cast<double>(right_cnt);
      const double gain = score - parent_score;
      if (gain > best.gain) {
        best.gain = gain;
        best.feature = static_cast<int>(f);
        best.bin = b;
        best.threshold = binner.Edge(f, b);
      }
    }
  }
  return best;
}

// Fits the best single-feature linear model within a leaf (REGTREE leaves).
void FitLinearLeaf(const Dataset& data, const std::vector<double>& targets,
                   const std::vector<size_t>& rows, TreeNode* leaf) {
  const size_t n = rows.size();
  if (n < 5) return;  // constant leaf for tiny regions
  double mean_y = 0.0;
  for (size_t r : rows) mean_y += targets[r];
  mean_y /= static_cast<double>(n);
  double base_sse = 0.0;
  for (size_t r : rows) base_sse += (targets[r] - mean_y) * (targets[r] - mean_y);

  double best_sse = base_sse;
  for (size_t f = 0; f < data.NumFeatures(); ++f) {
    double sx = 0, sxx = 0, sxy = 0;
    for (size_t r : rows) {
      const double xv = data.x[r][f];
      sx += xv;
      sxx += xv * xv;
      sxy += xv * (targets[r] - mean_y);
    }
    const double mx = sx / static_cast<double>(n);
    const double varx = sxx - sx * mx;
    if (varx < 1e-12) continue;
    const double cov = sxy - 0.0 /* y already centered */ - mx * 0.0;
    const double slope = cov / varx;
    // SSE with this slope: base - slope^2 * varx.
    const double sse = base_sse - slope * slope * varx;
    if (sse < best_sse * 0.999) {
      best_sse = sse;
      leaf->lin_feature = static_cast<int16_t>(f);
      leaf->slope = static_cast<float>(slope);
      leaf->value = static_cast<float>(mean_y - slope * mx);
    }
  }
}

}  // namespace

void RegressionTree::Fit(const Dataset& data, const std::vector<double>& targets,
                         const std::vector<size_t>& rows,
                         const FeatureBinner& binner, const TreeParams& params) {
  nodes_.clear();
  if (rows.empty()) {
    nodes_.push_back(TreeNode{});
    return;
  }

  std::vector<double> bin_sum;
  std::vector<int64_t> bin_cnt;

  auto leaf_value = [&](const std::vector<size_t>& r) {
    double s = 0.0;
    for (size_t i : r) s += targets[i];
    return s / static_cast<double>(r.size());
  };

  // Best-first growth: repeatedly split the frontier node with highest gain.
  nodes_.push_back(TreeNode{});
  nodes_[0].value = static_cast<float>(leaf_value(rows));

  struct Frontier {
    int node;
    std::vector<size_t> rows;
    SplitChoice split;
  };
  auto cmp = [](const Frontier& a, const Frontier& b) {
    return a.split.gain < b.split.gain;
  };
  std::priority_queue<Frontier, std::vector<Frontier>, decltype(cmp)> frontier(cmp);

  Frontier root{0, rows, FindBestSplit(data, targets, rows, binner,
                                       params.min_leaf, &bin_sum, &bin_cnt)};
  frontier.push(std::move(root));
  int leaves = 1;
  // Track leaf row sets for optional linear-leaf fitting.
  std::vector<std::pair<int, std::vector<size_t>>> leaf_rows;

  while (!frontier.empty()) {
    Frontier top = std::move(const_cast<Frontier&>(frontier.top()));
    frontier.pop();
    if (top.split.feature < 0 || top.split.gain <= 1e-12 ||
        leaves >= params.max_leaves) {
      leaf_rows.emplace_back(top.node, std::move(top.rows));
      continue;
    }
    // Materialize the split. Child links are int16_t; refuse to grow a tree
    // whose indices would silently truncate (satisfiable only with
    // max_leaves orders of magnitude beyond the paper's ten).
    if (nodes_.size() + 2 > kMaxTreeNodes) {
      throw std::length_error(
          "RegressionTree::Fit: tree exceeds kMaxTreeNodes (32767); "
          "lower TreeParams::max_leaves");
    }
    std::vector<size_t> left_rows, right_rows;
    left_rows.reserve(top.rows.size());
    right_rows.reserve(top.rows.size());
    const size_t f = static_cast<size_t>(top.split.feature);
    for (size_t r : top.rows) {
      if (data.x[r][f] <= top.split.threshold) {
        left_rows.push_back(r);
      } else {
        right_rows.push_back(r);
      }
    }
    const int left_idx = static_cast<int>(nodes_.size());
    nodes_.push_back(TreeNode{});
    const int right_idx = static_cast<int>(nodes_.size());
    nodes_.push_back(TreeNode{});
    nodes_[static_cast<size_t>(top.node)].feature =
        static_cast<int16_t>(top.split.feature);
    nodes_[static_cast<size_t>(top.node)].threshold =
        static_cast<float>(top.split.threshold);
    nodes_[static_cast<size_t>(top.node)].left = static_cast<int16_t>(left_idx);
    nodes_[static_cast<size_t>(top.node)].right = static_cast<int16_t>(right_idx);
    nodes_[static_cast<size_t>(left_idx)].value =
        static_cast<float>(leaf_value(left_rows));
    nodes_[static_cast<size_t>(right_idx)].value =
        static_cast<float>(leaf_value(right_rows));
    ++leaves;

    frontier.push(Frontier{left_idx, left_rows,
                           FindBestSplit(data, targets, left_rows, binner,
                                         params.min_leaf, &bin_sum, &bin_cnt)});
    frontier.push(Frontier{right_idx, right_rows,
                           FindBestSplit(data, targets, right_rows, binner,
                                         params.min_leaf, &bin_sum, &bin_cnt)});
  }

  if (params.linear_leaves) {
    for (auto& [node, lrows] : leaf_rows) {
      FitLinearLeaf(data, targets, lrows, &nodes_[static_cast<size_t>(node)]);
    }
  }
}

double RegressionTree::Predict(const std::vector<double>& features) const {
  return Predict(features.data(), features.size());
}

double RegressionTree::Predict(const double* features, size_t count) const {
  (void)count;
  if (nodes_.empty()) return 0.0;
  int i = 0;
  while (nodes_[static_cast<size_t>(i)].feature >= 0) {
    const TreeNode& n = nodes_[static_cast<size_t>(i)];
    i = features[static_cast<size_t>(n.feature)] <= n.threshold ? n.left : n.right;
  }
  const TreeNode& leaf = nodes_[static_cast<size_t>(i)];
  double out = leaf.value;
  if (leaf.lin_feature >= 0) {
    out += leaf.slope * features[static_cast<size_t>(leaf.lin_feature)];
  }
  return out;
}

int RegressionTree::NumLeaves() const {
  int leaves = 0;
  for (const auto& n : nodes_) leaves += (n.feature < 0);
  return leaves;
}

}  // namespace resest
