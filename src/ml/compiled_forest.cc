#include "src/ml/compiled_forest.h"

#include <algorithm>
#include <limits>

namespace resest {

namespace {
/// Max root-to-leaf edge count of the subtree at `node` (0 for a leaf).
int32_t SubtreeDepth(const std::vector<TreeNode>& nodes, size_t node) {
  const TreeNode& n = nodes[node];
  if (n.feature < 0) return 0;
  const int32_t l = SubtreeDepth(nodes, static_cast<size_t>(n.left));
  const int32_t r = SubtreeDepth(nodes, static_cast<size_t>(n.right));
  return 1 + (l > r ? l : r);
}
}  // namespace

void CompiledForest::Compile(double f0, double learning_rate,
                             const std::vector<RegressionTree>& trees) {
  f0_ = f0;
  learning_rate_ = learning_rate;
  roots_.clear();
  depths_.clear();
  feature_.clear();
  threshold_.clear();
  left_.clear();
  right_.clear();
  value_.clear();
  lin_feature_.clear();
  slope_.clear();

  size_t total_nodes = 0;
  for (const auto& tree : trees) {
    total_nodes += tree.nodes().empty() ? 1 : tree.nodes().size();
  }
  roots_.reserve(trees.size());
  depths_.reserve(trees.size());
  feature_.reserve(total_nodes);
  threshold_.reserve(total_nodes);
  left_.reserve(total_nodes);
  right_.reserve(total_nodes);
  value_.reserve(total_nodes);
  lin_feature_.reserve(total_nodes);
  slope_.reserve(total_nodes);

  num_features_referenced_ = 0;
  constexpr float kInf = std::numeric_limits<float>::infinity();
  for (const auto& tree : trees) {
    const int32_t base = static_cast<int32_t>(feature_.size());
    roots_.push_back(base);
    if (tree.nodes().empty()) {
      // An empty tree predicts 0.0; encode it as one constant zero leaf.
      depths_.push_back(0);
      feature_.push_back(0);
      threshold_.push_back(kInf);
      left_.push_back(base);
      right_.push_back(base);
      value_.push_back(0.0f);
      lin_feature_.push_back(-1);
      slope_.push_back(0.0f);
      continue;
    }
    depths_.push_back(SubtreeDepth(tree.nodes(), 0));
    for (size_t j = 0; j < tree.nodes().size(); ++j) {
      const TreeNode& n = tree.nodes()[j];
      const bool leaf = n.feature < 0;
      const int32_t self = base + static_cast<int32_t>(j);
      // Leaves self-loop on an always-true comparison so the fixed-depth
      // walk can overshoot a short path without leaving the leaf. Trees
      // with any split have >= 1 input feature, so x[0] is readable.
      feature_.push_back(leaf ? 0 : n.feature);
      threshold_.push_back(leaf ? kInf : n.threshold);
      left_.push_back(leaf ? self : base + n.left);
      right_.push_back(leaf ? self : base + n.right);
      value_.push_back(n.value);
      lin_feature_.push_back(n.lin_feature);
      slope_.push_back(n.slope);
      if (!leaf) {
        num_features_referenced_ = std::max(
            num_features_referenced_, static_cast<size_t>(n.feature) + 1);
      }
      if (n.lin_feature >= 0) {
        num_features_referenced_ = std::max(
            num_features_referenced_, static_cast<size_t>(n.lin_feature) + 1);
      }
    }
  }
}

namespace {
/// One branchless traversal step. `!(x <= t)` picks the right child exactly
/// when the legacy walk does (including for NaN features), and the
/// arithmetic select compiles to setcc+imul instead of a data-dependent
/// branch — tree navigation is inherently unpredictable, and a mispredict
/// per step would serialize the interleaved row chains PredictBatch relies
/// on.
inline size_t Step(size_t i, const double* x, const int16_t* feature,
                   const float* threshold, const int32_t* left,
                   const int32_t* right) {
  const double xf = x[static_cast<size_t>(feature[i])];
  const size_t go_right = static_cast<size_t>(!(xf <= threshold[i]));
  const size_t l = static_cast<size_t>(left[i]);
  const size_t r = static_cast<size_t>(right[i]);
  return l + (r - l) * go_right;
}
}  // namespace

double CompiledForest::Predict(const double* features, size_t count) const {
  (void)count;
  const int16_t* feature = feature_.data();
  const float* threshold = threshold_.data();
  const int32_t* left = left_.data();
  const int32_t* right = right_.data();
  double out = f0_;
  const size_t num_trees = roots_.size();
  for (size_t t = 0; t < num_trees; ++t) {
    size_t i = static_cast<size_t>(roots_[t]);
    for (int32_t d = depths_[t]; d > 0; --d) {
      i = Step(i, features, feature, threshold, left, right);
    }
    double v = value_[i];
    if (lin_feature_[i] >= 0) {
      v += slope_[i] * features[static_cast<size_t>(lin_feature_[i])];
    }
    out += learning_rate_ * v;
  }
  return out;
}

void CompiledForest::PredictBatch(const double* rows, size_t num_rows,
                                  size_t stride, double* out) const {
  for (size_t r = 0; r < num_rows; ++r) out[r] = f0_;
  // Tree-outer/row-inner: one tree's handful of SoA nodes stays cache-hot
  // across the whole batch, and each out[r] still receives the trees in
  // boosting order — the per-row floating-point accumulation matches
  // Predict exactly. Four rows walk the tree in lockstep: the fixed-depth,
  // self-looping traversal has no data-dependent exit, so the four
  // load-compare chains are independent and overlap in the pipeline
  // (memory-level parallelism), which is where the batched speedup over
  // the one-row-at-a-time scalar walk comes from.
  const int16_t* feature = feature_.data();
  const float* threshold = threshold_.data();
  const int32_t* left = left_.data();
  const int32_t* right = right_.data();
  auto leaf_value = [&](size_t i, const double* x) {
    double v = value_[i];
    if (lin_feature_[i] >= 0) {
      v += slope_[i] * x[static_cast<size_t>(lin_feature_[i])];
    }
    return v;
  };
  const size_t num_trees = roots_.size();
  for (size_t t = 0; t < num_trees; ++t) {
    const size_t root = static_cast<size_t>(roots_[t]);
    const int32_t depth = depths_[t];
    size_t r = 0;
    for (; r + 4 <= num_rows; r += 4) {
      const double* x0 = rows + r * stride;
      const double* x1 = x0 + stride;
      const double* x2 = x1 + stride;
      const double* x3 = x2 + stride;
      size_t i0 = root, i1 = root, i2 = root, i3 = root;
      for (int32_t d = depth; d > 0; --d) {
        i0 = Step(i0, x0, feature, threshold, left, right);
        i1 = Step(i1, x1, feature, threshold, left, right);
        i2 = Step(i2, x2, feature, threshold, left, right);
        i3 = Step(i3, x3, feature, threshold, left, right);
      }
      out[r] += learning_rate_ * leaf_value(i0, x0);
      out[r + 1] += learning_rate_ * leaf_value(i1, x1);
      out[r + 2] += learning_rate_ * leaf_value(i2, x2);
      out[r + 3] += learning_rate_ * leaf_value(i3, x3);
    }
    for (; r < num_rows; ++r) {
      const double* x = rows + r * stride;
      size_t i = root;
      for (int32_t d = depth; d > 0; --d) {
        i = Step(i, x, feature, threshold, left, right);
      }
      out[r] += learning_rate_ * leaf_value(i, x);
    }
  }
}

}  // namespace resest
