#include "src/ml/compiled_forest.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <limits>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define RESEST_HAVE_AVX2_KERNEL 1
#include <immintrin.h>
#endif

namespace resest {

namespace {
/// Max root-to-leaf edge count of the subtree at `node` (0 for a leaf).
int32_t SubtreeDepth(const std::vector<TreeNode>& nodes, size_t node) {
  const TreeNode& n = nodes[node];
  if (n.feature < 0) return 0;
  const int32_t l = SubtreeDepth(nodes, static_cast<size_t>(n.left));
  const int32_t r = SubtreeDepth(nodes, static_cast<size_t>(n.right));
  return 1 + (l > r ? l : r);
}
}  // namespace

int32_t CompiledForest::EmitSubtree(const std::vector<TreeNode>& tree_nodes,
                                    size_t node) {
  const TreeNode& n = tree_nodes[node];
  const int32_t self = static_cast<int32_t>(nodes_.size());
  nodes_.emplace_back();
  value_.push_back(n.value);
  lin_feature_.push_back(n.lin_feature);
  slope_.push_back(n.slope);
  if (n.lin_feature >= 0) {
    num_features_referenced_ = std::max(
        num_features_referenced_, static_cast<size_t>(n.lin_feature) + 1);
  }
  if (n.feature < 0) {
    // Leaf: the NaN threshold fails every ordered compare, so the select
    // always takes `right` — pointed back at the leaf (the self-loop).
    HotNode& hot = nodes_[static_cast<size_t>(self)];
    hot.feature = 0;
    hot.threshold = std::numeric_limits<float>::quiet_NaN();
    hot.right = self;
    return self;
  }
  num_features_referenced_ = std::max(num_features_referenced_,
                                      static_cast<size_t>(n.feature) + 1);
  // Pre-order: the left child lands at self + 1 (implicit), the right
  // subtree follows the whole left subtree.
  EmitSubtree(tree_nodes, static_cast<size_t>(n.left));
  const int32_t right = EmitSubtree(tree_nodes, static_cast<size_t>(n.right));
  HotNode& hot = nodes_[static_cast<size_t>(self)];
  hot.feature = n.feature;
  hot.threshold = n.threshold;
  hot.right = right;
  return self;
}

void CompiledForest::Compile(double f0, double learning_rate,
                             const std::vector<RegressionTree>& trees) {
  f0_ = f0;
  learning_rate_ = learning_rate;
  roots_.clear();
  depths_.clear();
  nodes_.clear();
  value_.clear();
  lin_feature_.clear();
  slope_.clear();

  size_t total_nodes = 0;
  for (const auto& tree : trees) {
    total_nodes += tree.nodes().empty() ? 1 : tree.nodes().size();
  }
  roots_.reserve(trees.size());
  depths_.reserve(trees.size());
  nodes_.reserve(total_nodes);
  value_.reserve(total_nodes);
  lin_feature_.reserve(total_nodes);
  slope_.reserve(total_nodes);

  num_features_referenced_ = 0;
  for (const auto& tree : trees) {
    const int32_t base = static_cast<int32_t>(nodes_.size());
    roots_.push_back(base);
    if (tree.nodes().empty()) {
      // An empty tree predicts 0.0; encode it as one constant zero leaf.
      depths_.push_back(0);
      HotNode leaf;
      leaf.feature = 0;
      leaf.threshold = std::numeric_limits<float>::quiet_NaN();
      leaf.right = base;
      nodes_.push_back(leaf);
      value_.push_back(0.0f);
      lin_feature_.push_back(-1);
      slope_.push_back(0.0f);
      continue;
    }
    depths_.push_back(SubtreeDepth(tree.nodes(), 0));
    EmitSubtree(tree.nodes(), 0);
  }
}

namespace {
/// One branchless traversal step. `!(x <= t)` picks the right child exactly
/// when the legacy walk does (including for NaN features — and for leaves,
/// whose NaN threshold makes the compare false so `right`, the self-loop,
/// wins); the arithmetic select compiles to setcc+imul instead of a
/// data-dependent branch — tree navigation is inherently unpredictable, and
/// a mispredict per step would serialize the interleaved row chains
/// PredictBatch relies on.
inline size_t Step(size_t i, const double* x,
                   const CompiledForest::HotNode* nodes) {
  const CompiledForest::HotNode& n = nodes[i];
  const double xf = x[static_cast<size_t>(n.feature)];
  const size_t go_right =
      static_cast<size_t>(!(xf <= static_cast<double>(n.threshold)));
  const size_t l = i + 1;  // pre-order: the left child is the next node
  const size_t r = static_cast<size_t>(n.right);
  return l + (r - l) * go_right;
}
}  // namespace

ForestKernel CompiledForest::ActiveKernel() {
#if defined(RESEST_EXACT_PREDICT)
  return ForestKernel::kScalar;
#else
  static const ForestKernel kernel = [] {
    // The override names the widest kernel the caller wants; unsupported
    // requests fall down the ladder rather than erroring, so a script can
    // set RESEST_SIMD=avx512 and still run on an AVX2-only host.
    const char* env = std::getenv("RESEST_SIMD");
    if (env != nullptr && std::strcmp(env, "scalar") == 0) {
      return ForestKernel::kScalar;
    }
    const bool want_avx512 =
        env == nullptr || std::strcmp(env, "avx512") == 0;
    if (want_avx512 && Avx512Supported()) return ForestKernel::kAvx512;
    return Avx2Supported() ? ForestKernel::kAvx2 : ForestKernel::kScalar;
  }();
  return kernel;
#endif
}

bool CompiledForest::Avx2Supported() {
#if defined(RESEST_HAVE_AVX2_KERNEL)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

bool CompiledForest::Avx512Supported() {
#if defined(RESEST_HAVE_AVX2_KERNEL)
  return __builtin_cpu_supports("avx512f") != 0 &&
         __builtin_cpu_supports("avx512vl") != 0 &&
         __builtin_cpu_supports("avx512dq") != 0;
#else
  return false;
#endif
}

const char* CompiledForest::ActiveKernelName() {
#if defined(RESEST_EXACT_PREDICT)
  return "scalar-exact";
#else
  switch (ActiveKernel()) {
    case ForestKernel::kAvx512: return "avx512";
    case ForestKernel::kAvx2: return "avx2";
    case ForestKernel::kScalar: break;
  }
  return "scalar";
#endif
}

size_t CompiledForest::ActiveLockstepWidth() {
  return ActiveKernel() == ForestKernel::kAvx512 ? 16 : kLockstepWidth;
}

double CompiledForest::Predict(const double* features, size_t count) const {
  (void)count;
  const HotNode* nodes = nodes_.data();
  double out = f0_;
  const size_t num_trees = roots_.size();
  for (size_t t = 0; t < num_trees; ++t) {
    size_t i = static_cast<size_t>(roots_[t]);
    for (int32_t d = depths_[t]; d > 0; --d) {
      i = Step(i, features, nodes);
    }
    double v = value_[i];
    if (lin_feature_[i] >= 0) {
      v += slope_[i] * features[static_cast<size_t>(lin_feature_[i])];
    }
    out += learning_rate_ * v;
  }
  return out;
}

void CompiledForest::PredictBatch(const double* rows, size_t num_rows,
                                  size_t stride, double* out) const {
  PredictBatchWith(ActiveKernel(), rows, num_rows, stride, out);
}

void CompiledForest::PredictBatchWith(ForestKernel kernel, const double* rows,
                                      size_t num_rows, size_t stride,
                                      double* out) const {
#if defined(RESEST_HAVE_AVX2_KERNEL) && !defined(RESEST_EXACT_PREDICT)
  // Both vector kernels address feature values with 32-bit offsets; batches
  // past that range (not reachable through the serving layer's batch cap)
  // take the scalar path.
  const bool offsets_fit =
      num_rows * stride <=
      static_cast<size_t>(std::numeric_limits<int32_t>::max());
  if (kernel == ForestKernel::kAvx512 && Avx512Supported() && offsets_fit) {
    PredictBatchAvx512(rows, num_rows, stride, out);
    return;
  }
  if (kernel == ForestKernel::kAvx2 && Avx2Supported() && offsets_fit) {
    PredictBatchAvx2(rows, num_rows, stride, out);
    return;
  }
#else
  (void)kernel;
#endif
  PredictBatchScalar(rows, num_rows, stride, out);
}

void CompiledForest::PredictBatchScalar(const double* rows, size_t num_rows,
                                        size_t stride, double* out) const {
  for (size_t r = 0; r < num_rows; ++r) out[r] = f0_;
  // Tree-outer/row-inner: one tree's handful of pre-order nodes stays
  // cache-hot across the whole batch, and each out[r] still receives the
  // trees in boosting order — the per-row floating-point accumulation
  // matches Predict exactly. kLockstepWidth rows walk the tree in lockstep:
  // the fixed-depth, self-looping traversal has no data-dependent exit, so
  // the rows' load-compare chains are independent and overlap in the
  // pipeline (memory-level parallelism), which is where the batched speedup
  // over the one-row-at-a-time scalar walk comes from.
  const HotNode* nodes = nodes_.data();
  auto leaf_value = [&](size_t i, const double* x) {
    double v = value_[i];
    if (lin_feature_[i] >= 0) {
      v += slope_[i] * x[static_cast<size_t>(lin_feature_[i])];
    }
    return v;
  };
  constexpr size_t W = kLockstepWidth;
  const size_t num_trees = roots_.size();
  for (size_t t = 0; t < num_trees; ++t) {
    const size_t root = static_cast<size_t>(roots_[t]);
    const int32_t depth = depths_[t];
    size_t r = 0;
    for (; r + W <= num_rows; r += W) {
      const double* x[W];
      size_t idx[W];
      for (size_t k = 0; k < W; ++k) {
        x[k] = rows + (r + k) * stride;
        idx[k] = root;
      }
      for (int32_t d = depth; d > 0; --d) {
        for (size_t k = 0; k < W; ++k) {
          idx[k] = Step(idx[k], x[k], nodes);
        }
      }
      for (size_t k = 0; k < W; ++k) {
        out[r + k] += learning_rate_ * leaf_value(idx[k], x[k]);
      }
    }
    for (; r < num_rows; ++r) {
      const double* x = rows + r * stride;
      size_t i = root;
      for (int32_t d = depth; d > 0; --d) {
        i = Step(i, x, nodes);
      }
      out[r] += learning_rate_ * leaf_value(i, x);
    }
  }
}

#if defined(RESEST_HAVE_AVX2_KERNEL)
namespace {
/// Walks G lockstep groups (8 rows each, starting at row r0) down one tree
/// and stores the 8*G leaf indices. The gathers in one group's step form a
/// serial dependency chain (~two gather latencies per level), so a single
/// group leaves the load ports mostly idle; interleaving G independent
/// groups keeps G chains in flight and hides that latency. G=4 (32 rows)
/// measures ~3x the single-group kernel on Skylake-class cores.
template <size_t G>
__attribute__((target("avx2"))) inline void Avx2WalkGroups(
    const CompiledForest::HotNode* nodes, const double* rows, size_t stride,
    size_t r0, int32_t root, int32_t depth, int32_t* leaf_out) {
  // Word-granular views of the 16-byte node records: index i * 4 reaches
  // node i's feature; the +1/+2 base offsets reach threshold and right.
  const int* words = reinterpret_cast<const int*>(nodes);
  const float* words_f = reinterpret_cast<const float*>(nodes);
  const __m256i iota = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
  const __m256i vstride = _mm256_set1_epi32(static_cast<int>(stride));
  const __m256i ones = _mm256_set1_epi32(1);
  // Explicit all-ones masks + zero sources for the gathers: identical
  // codegen to the maskless forms, but without the undefined source
  // operand GCC's -Wmaybe-uninitialized flags inside avx2intrin.h.
  const __m256i gall = _mm256_set1_epi32(-1);
  const __m256i gzero = _mm256_setzero_si256();
  const __m256 gzero_ps = _mm256_setzero_ps();
  const __m256d gzero_pd = _mm256_setzero_pd();
  const __m256d gall_pd = _mm256_castsi256_pd(_mm256_set1_epi64x(-1));
  __m256i idx[G];
  __m256i rowoff[G];
  for (size_t g = 0; g < G; ++g) {
    idx[g] = _mm256_set1_epi32(root);
    rowoff[g] = _mm256_mullo_epi32(
        _mm256_add_epi32(_mm256_set1_epi32(static_cast<int>(r0 + 8 * g)),
                         iota),
        vstride);
  }
  for (int32_t d = depth; d > 0; --d) {
    for (size_t g = 0; g < G; ++g) {
      const __m256i word = _mm256_slli_epi32(idx[g], 2);
      const __m256i feat =
          _mm256_mask_i32gather_epi32(gzero, words, word, gall, 4);
      const __m256 thr = _mm256_mask_i32gather_ps(
          gzero_ps, words_f + 1, word, _mm256_castsi256_ps(gall), 4);
      const __m256i right =
          _mm256_mask_i32gather_epi32(gzero, words + 2, word, gall, 4);
      // Per-row feature loads: offset = row * stride + feature.
      const __m256i xoff = _mm256_add_epi32(rowoff[g], feat);
      const __m256d x_lo = _mm256_mask_i32gather_pd(
          gzero_pd, rows, _mm256_castsi256_si128(xoff), gall_pd, 8);
      const __m256d x_hi = _mm256_mask_i32gather_pd(
          gzero_pd, rows, _mm256_extracti128_si256(xoff, 1), gall_pd, 8);
      // Compare in the double domain, exactly like the scalar walk: the
      // float32 threshold widens losslessly, and LE_OQ is false for the
      // leaves' NaN thresholds and for NaN features — both then take
      // `right`, matching `!(x <= t)`.
      const __m256d t_lo = _mm256_cvtps_pd(_mm256_castps256_ps128(thr));
      const __m256d t_hi = _mm256_cvtps_pd(_mm256_extractf128_ps(thr, 1));
      const __m256d le_lo = _mm256_cmp_pd(x_lo, t_lo, _CMP_LE_OQ);
      const __m256d le_hi = _mm256_cmp_pd(x_hi, t_hi, _CMP_LE_OQ);
      // Pack the two 4x64-bit compare masks into one 8x32-bit lane mask
      // in row order (shuffle interleaves the 128-bit halves; the 64-bit
      // permute restores 0..7).
      const __m256 packed = _mm256_shuffle_ps(_mm256_castpd_ps(le_lo),
                                              _mm256_castpd_ps(le_hi),
                                              _MM_SHUFFLE(2, 0, 2, 0));
      const __m256i mask = _mm256_permute4x64_epi64(
          _mm256_castps_si256(packed), _MM_SHUFFLE(3, 1, 2, 0));
      const __m256i left = _mm256_add_epi32(idx[g], ones);
      idx[g] = _mm256_castps_si256(_mm256_blendv_ps(
          _mm256_castsi256_ps(right), _mm256_castsi256_ps(left),
          _mm256_castsi256_ps(mask)));
    }
  }
  for (size_t g = 0; g < G; ++g) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(leaf_out + 8 * g), idx[g]);
  }
}
}  // namespace

__attribute__((target("avx2")))
void CompiledForest::PredictBatchAvx2(const double* rows, size_t num_rows,
                                      size_t stride, double* out) const {
  for (size_t r = 0; r < num_rows; ++r) out[r] = f0_;
  const HotNode* nodes = nodes_.data();
  // 4 interleaved groups of 8 = 32 rows in flight per tree.
  constexpr size_t kGroups = 4;
  const size_t num_trees = roots_.size();
  // Leaves evaluate scalar, per row in order: the accumulation stays one
  // mul + one add per tree in the double domain (no FMA), so each out[r]
  // is bit-identical to the scalar kernel and to Predict.
  auto accumulate = [&](size_t r, size_t count, const int32_t* leaf) {
    for (size_t k = 0; k < count; ++k) {
      const size_t i = static_cast<size_t>(leaf[k]);
      const double* x = rows + (r + k) * stride;
      double v = value_[i];
      if (lin_feature_[i] >= 0) {
        v += slope_[i] * x[static_cast<size_t>(lin_feature_[i])];
      }
      out[r + k] += learning_rate_ * v;
    }
  };
  for (size_t t = 0; t < num_trees; ++t) {
    const int32_t root = roots_[t];
    const int32_t depth = depths_[t];
    alignas(32) int32_t leaf[8 * kGroups];
    size_t r = 0;
    for (; r + 8 * kGroups <= num_rows; r += 8 * kGroups) {
      Avx2WalkGroups<kGroups>(nodes, rows, stride, r, root, depth, leaf);
      accumulate(r, 8 * kGroups, leaf);
    }
    for (; r + 8 <= num_rows; r += 8) {
      Avx2WalkGroups<1>(nodes, rows, stride, r, root, depth, leaf);
      accumulate(r, 8, leaf);
    }
    for (; r < num_rows; ++r) {
      const double* x = rows + r * stride;
      size_t i = static_cast<size_t>(root);
      for (int32_t d = depth; d > 0; --d) {
        i = Step(i, x, nodes);
      }
      double v = value_[i];
      if (lin_feature_[i] >= 0) {
        v += slope_[i] * x[static_cast<size_t>(lin_feature_[i])];
      }
      out[r] += learning_rate_ * v;
    }
  }
}
// Unlike the AVX2 set, GCC 12's plain AVX-512 intrinsics (slli, the 512->
// 256 casts, cvtps_pd) are themselves implemented over _mm512_undefined_*()
// sources in avx512fintrin.h, so -Wmaybe-uninitialized fires inside the
// system header with no masked-intrinsic workaround available at the call
// site; suppress it for just this kernel.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
namespace {
/// The AVX2 walk at 16-row lockstep. AVX-512 removes the two costs the
/// 8-wide kernel pays per step: the compare produces a __mmask8 directly
/// (no shuffle/permute packing of 64-bit compare results back into 32-bit
/// lanes), and the child select is a single mask blend. G independent
/// groups interleave for the same latency-hiding reason as in
/// Avx2WalkGroups; with twice the rows per group, G=2 (32 rows) already
/// keeps the gather ports saturated.
template <size_t G>
__attribute__((target("avx512f,avx512vl,avx512dq"))) inline void
Avx512WalkGroups(const CompiledForest::HotNode* nodes, const double* rows,
                 size_t stride, size_t r0, int32_t root, int32_t depth,
                 int32_t* leaf_out) {
  // Same word-granular node addressing as the AVX2 kernel: index i * 4
  // reaches node i's feature; +1/+2 reach threshold and right.
  const int* words = reinterpret_cast<const int*>(nodes);
  const float* words_f = reinterpret_cast<const float*>(nodes);
  const __m512i iota = _mm512_set_epi32(15, 14, 13, 12, 11, 10, 9, 8, 7, 6,
                                        5, 4, 3, 2, 1, 0);
  const __m512i vstride = _mm512_set1_epi32(static_cast<int>(stride));
  const __m512i ones = _mm512_set1_epi32(1);
  // All-lanes masked gathers with zeroed sources: same codegen as the
  // maskless forms, but without the undefined source operand GCC's
  // -Wmaybe-uninitialized flags inside avx512fintrin.h (the AVX2 kernel
  // applies the identical workaround).
  const __mmask16 kall = static_cast<__mmask16>(0xffff);
  const __mmask8 kall8 = static_cast<__mmask8>(0xff);
  const __m512i gzero = _mm512_setzero_si512();
  const __m512 gzero_ps = _mm512_setzero_ps();
  const __m512d gzero_pd = _mm512_setzero_pd();
  __m512i idx[G];
  __m512i rowoff[G];
  for (size_t g = 0; g < G; ++g) {
    idx[g] = _mm512_set1_epi32(root);
    rowoff[g] = _mm512_mullo_epi32(
        _mm512_add_epi32(_mm512_set1_epi32(static_cast<int>(r0 + 16 * g)),
                         iota),
        vstride);
  }
  for (int32_t d = depth; d > 0; --d) {
    for (size_t g = 0; g < G; ++g) {
      const __m512i word = _mm512_slli_epi32(idx[g], 2);
      const __m512i feat =
          _mm512_mask_i32gather_epi32(gzero, kall, word, words, 4);
      const __m512 thr =
          _mm512_mask_i32gather_ps(gzero_ps, kall, word, words_f + 1, 4);
      const __m512i right =
          _mm512_mask_i32gather_epi32(gzero, kall, word, words + 2, 4);
      // Per-row feature loads: offset = row * stride + feature, gathered
      // as two 8-lane double halves off the 16 32-bit offsets.
      const __m512i xoff = _mm512_add_epi32(rowoff[g], feat);
      const __m512d x_lo = _mm512_mask_i32gather_pd(
          gzero_pd, kall8, _mm512_castsi512_si256(xoff), rows, 8);
      const __m512d x_hi = _mm512_mask_i32gather_pd(
          gzero_pd, kall8, _mm512_extracti32x8_epi32(xoff, 1), rows, 8);
      // Double-domain compare, exactly like the scalar walk: the float32
      // threshold widens losslessly, and LE_OQ is false for the leaves'
      // NaN thresholds and for NaN features — both take `right`.
      const __m512d t_lo =
          _mm512_cvtps_pd(_mm512_castps512_ps256(thr));
      const __m512d t_hi = _mm512_cvtps_pd(_mm512_extractf32x8_ps(thr, 1));
      const __mmask8 le_lo = _mm512_cmp_pd_mask(x_lo, t_lo, _CMP_LE_OQ);
      const __mmask8 le_hi = _mm512_cmp_pd_mask(x_hi, t_hi, _CMP_LE_OQ);
      const __mmask16 le = static_cast<__mmask16>(
          static_cast<unsigned>(le_lo) | (static_cast<unsigned>(le_hi) << 8));
      const __m512i left = _mm512_add_epi32(idx[g], ones);
      idx[g] = _mm512_mask_blend_epi32(le, right, left);
    }
  }
  for (size_t g = 0; g < G; ++g) {
    _mm512_storeu_si512(leaf_out + 16 * g, idx[g]);
  }
}
}  // namespace

namespace {
/// Leaf accumulation for the AVX-512 kernel's epilogue — deliberately a
/// separate noinline function with NO vector target attribute. The avx512f
/// target enables EVEX FMA, and under GCC's default -ffp-contract=fast an
/// inline `out += lr * v` inside the kernel body contracts into one fused
/// rounding, silently breaking bit identity with the scalar walk (a ~1-ulp
/// drift that only shows over a long boosting sum). The default target has
/// no FMA, so compiling the accumulation here keeps the mul and add as two
/// roundings, exactly like the scalar kernel and Predict. (The AVX2 kernel
/// is immune: target("avx2") carries no FMA.)
__attribute__((noinline)) void AccumulateLeavesNoFma(
    const float* value, const int16_t* lin_feature, const float* slope,
    double learning_rate, const double* rows, size_t stride, size_t r,
    size_t count, const int32_t* leaf, double* out) {
  for (size_t k = 0; k < count; ++k) {
    const size_t i = static_cast<size_t>(leaf[k]);
    const double* x = rows + (r + k) * stride;
    double v = value[i];
    if (lin_feature[i] >= 0) {
      v += slope[i] * x[static_cast<size_t>(lin_feature[i])];
    }
    out[r + k] += learning_rate * v;
  }
}
}  // namespace

__attribute__((target("avx512f,avx512vl,avx512dq")))
void CompiledForest::PredictBatchAvx512(const double* rows, size_t num_rows,
                                        size_t stride, double* out) const {
  for (size_t r = 0; r < num_rows; ++r) out[r] = f0_;
  const HotNode* nodes = nodes_.data();
  // 2 interleaved groups of 16 = 32 rows in flight per tree, matching the
  // AVX2 kernel's blocking so the two kernels see identical cache behavior.
  constexpr size_t kGroups = 2;
  const size_t num_trees = roots_.size();
  auto accumulate = [&](size_t r, size_t count, const int32_t* leaf) {
    AccumulateLeavesNoFma(value_.data(), lin_feature_.data(), slope_.data(),
                          learning_rate_, rows, stride, r, count, leaf, out);
  };
  for (size_t t = 0; t < num_trees; ++t) {
    const int32_t root = roots_[t];
    const int32_t depth = depths_[t];
    alignas(64) int32_t leaf[16 * kGroups];
    size_t r = 0;
    for (; r + 16 * kGroups <= num_rows; r += 16 * kGroups) {
      Avx512WalkGroups<kGroups>(nodes, rows, stride, r, root, depth, leaf);
      accumulate(r, 16 * kGroups, leaf);
    }
    for (; r + 16 <= num_rows; r += 16) {
      Avx512WalkGroups<1>(nodes, rows, stride, r, root, depth, leaf);
      accumulate(r, 16, leaf);
    }
    for (; r < num_rows; ++r) {
      const double* x = rows + r * stride;
      size_t i = static_cast<size_t>(root);
      for (int32_t d = depth; d > 0; --d) {
        i = Step(i, x, nodes);
      }
      // Through the noinline helper even for one row: an inline mul+add
      // here would FMA-contract under this function's avx512f target.
      leaf[0] = static_cast<int32_t>(i);
      accumulate(r, 1, leaf);
    }
  }
}
#pragma GCC diagnostic pop
#endif  // RESEST_HAVE_AVX2_KERNEL

}  // namespace resest
