// CART-style least-squares regression trees with histogram split finding.
//
// Used standalone and as the weak learner inside MART (Section 4 of the
// paper) and inside the REGTREE transform-regression approximation (leaves
// may carry one-feature linear models instead of constants).
#ifndef RESEST_ML_REGRESSION_TREE_H_
#define RESEST_ML_REGRESSION_TREE_H_

#include <cstdint>
#include <vector>

#include "src/ml/dataset.h"

namespace resest {

/// Quantile-based feature discretization shared across the trees of one
/// boosting run (split thresholds are bin edges).
class FeatureBinner {
 public:
  void Fit(const Dataset& data, int num_bins);

  /// Bin index of a value (0..bins-1 for the feature).
  int Bin(size_t feature, double value) const;
  /// Split threshold "x <= edge" after the given bin.
  double Edge(size_t feature, int bin) const {
    return edges_[feature][static_cast<size_t>(bin)];
  }
  int NumBins(size_t feature) const {
    return static_cast<int>(edges_[feature].size());
  }
  size_t NumFeatures() const { return edges_.size(); }

 private:
  // edges_[f] = ascending split candidates for feature f.
  std::vector<std::vector<double>> edges_;
};

struct TreeParams {
  int max_leaves = 10;   ///< Paper setting: at most 10 leaf nodes.
  int min_leaf = 3;      ///< Minimum samples per leaf.
  bool linear_leaves = false;  ///< REGTREE: one-feature linear model per leaf.
};

/// Hard cap on nodes per tree: TreeNode child links are int16_t, so a tree
/// past 32k nodes would silently truncate its indices. RegressionTree::Fit
/// throws std::length_error instead of growing past this, and
/// Mart::Serialize/Deserialize fail loudly on out-of-bounds trees.
inline constexpr size_t kMaxTreeNodes = 32767;

/// One tree node; nodes are stored in a flat array (see the paper's
/// Section 7.3 on compact model encoding).
struct TreeNode {
  int16_t feature = -1;   ///< Split feature; -1 marks a leaf.
  float threshold = 0.0f; ///< Go left iff x[feature] <= threshold.
  int16_t left = -1;
  int16_t right = -1;
  float value = 0.0f;     ///< Leaf constant (or intercept with linear leaf).
  int16_t lin_feature = -1;  ///< Linear-leaf feature, -1 = constant leaf.
  float slope = 0.0f;
};

class RegressionTree : public Regressor {
 public:
  using Regressor::Predict;

  /// Fits to `targets` restricted to `rows` of `data` using pre-fit bins.
  /// Throws std::length_error if the tree would exceed kMaxTreeNodes (only
  /// reachable with max_leaves far beyond the paper's settings).
  void Fit(const Dataset& data, const std::vector<double>& targets,
           const std::vector<size_t>& rows, const FeatureBinner& binner,
           const TreeParams& params);

  double Predict(const std::vector<double>& features) const override;
  double Predict(const double* features, size_t count) const override;
  std::string Name() const override { return "RegressionTree"; }

  const std::vector<TreeNode>& nodes() const { return nodes_; }
  std::vector<TreeNode>* mutable_nodes() { return &nodes_; }
  int NumLeaves() const;

 private:
  std::vector<TreeNode> nodes_;
};

}  // namespace resest

#endif  // RESEST_ML_REGRESSION_TREE_H_
