#include "src/ml/mart.h"

#include <cstring>
#include <numeric>

namespace resest {

void Mart::Fit(const Dataset& data) {
  trees_.clear();
  f0_ = 0.0;
  if (data.NumRows() == 0) return;
  for (double v : data.y) f0_ += v;
  f0_ /= static_cast<double>(data.NumRows());

  FeatureBinner binner;
  binner.Fit(data, params_.num_bins);

  TreeParams tree_params;
  tree_params.max_leaves = params_.max_leaves;
  tree_params.min_leaf = params_.min_leaf;
  tree_params.linear_leaves = params_.linear_leaves;

  const size_t n = data.NumRows();
  std::vector<double> residual(n);
  for (size_t i = 0; i < n; ++i) residual[i] = data.y[i] - f0_;

  Rng rng(params_.seed);
  std::vector<size_t> all_rows(n);
  std::iota(all_rows.begin(), all_rows.end(), 0u);

  trees_.reserve(static_cast<size_t>(params_.num_trees));
  for (int t = 0; t < params_.num_trees; ++t) {
    // Stochastic subsample for this iteration.
    std::vector<size_t> rows;
    if (params_.subsample >= 0.999) {
      rows = all_rows;
    } else {
      rows.reserve(static_cast<size_t>(params_.subsample * static_cast<double>(n)) + 1);
      for (size_t i = 0; i < n; ++i) {
        if (rng.Bernoulli(params_.subsample)) rows.push_back(i);
      }
      if (rows.size() < 2 * static_cast<size_t>(params_.min_leaf)) rows = all_rows;
    }

    RegressionTree tree;
    tree.Fit(data, residual, rows, binner, tree_params);

    // Update residuals on ALL rows with the shrunken tree output.
    for (size_t i = 0; i < n; ++i) {
      residual[i] -= params_.learning_rate * tree.Predict(data.x[i]);
    }
    trees_.push_back(std::move(tree));
  }
}

double Mart::Predict(const std::vector<double>& features) const {
  double out = f0_;
  for (const auto& tree : trees_) {
    out += params_.learning_rate * tree.Predict(features);
  }
  return out;
}

namespace {
template <typename T>
void Append(std::vector<uint8_t>* out, const T& v) {
  const uint8_t* p = reinterpret_cast<const uint8_t*>(&v);
  out->insert(out->end(), p, p + sizeof(T));
}

template <typename T>
bool ReadAt(const std::vector<uint8_t>& in, size_t* pos, T* v) {
  if (*pos + sizeof(T) > in.size()) return false;
  std::memcpy(v, in.data() + *pos, sizeof(T));
  *pos += sizeof(T);
  return true;
}
}  // namespace

std::vector<uint8_t> Mart::Serialize() const {
  std::vector<uint8_t> out;
  Append(&out, f0_);
  Append(&out, params_.learning_rate);
  Append(&out, static_cast<uint32_t>(trees_.size()));
  const uint8_t linear = params_.linear_leaves ? 1 : 0;
  Append(&out, linear);
  for (const auto& tree : trees_) {
    const auto& nodes = tree.nodes();
    Append(&out, static_cast<uint8_t>(nodes.size()));
    for (const auto& n : nodes) {
      // Node layout (paper 7.3): child offset byte (0 = leaf), feature byte,
      // float threshold/value. Linear leaves add feature byte + float slope.
      Append(&out, static_cast<int8_t>(n.feature < 0 ? 0 : n.left));
      Append(&out, static_cast<int8_t>(n.feature));
      Append(&out, n.threshold);
      Append(&out, n.value);
      if (linear) {
        Append(&out, static_cast<int8_t>(n.lin_feature));
        Append(&out, n.slope);
      }
    }
  }
  return out;
}

bool Mart::Deserialize(const std::vector<uint8_t>& bytes) {
  trees_.clear();
  size_t pos = 0;
  uint32_t num_trees = 0;
  uint8_t linear = 0;
  if (!ReadAt(bytes, &pos, &f0_)) return false;
  if (!ReadAt(bytes, &pos, &params_.learning_rate)) return false;
  if (!ReadAt(bytes, &pos, &num_trees)) return false;
  if (!ReadAt(bytes, &pos, &linear)) return false;
  params_.linear_leaves = (linear != 0);
  trees_.reserve(num_trees);
  for (uint32_t t = 0; t < num_trees; ++t) {
    uint8_t num_nodes = 0;
    if (!ReadAt(bytes, &pos, &num_nodes)) return false;
    RegressionTree tree;
    auto* nodes = tree.mutable_nodes();
    nodes->resize(num_nodes);
    for (uint8_t i = 0; i < num_nodes; ++i) {
      int8_t left = 0, feature = 0;
      TreeNode& n = (*nodes)[i];
      if (!ReadAt(bytes, &pos, &left)) return false;
      if (!ReadAt(bytes, &pos, &feature)) return false;
      if (!ReadAt(bytes, &pos, &n.threshold)) return false;
      if (!ReadAt(bytes, &pos, &n.value)) return false;
      n.feature = feature;
      n.left = left;
      n.right = static_cast<int16_t>(feature >= 0 ? left + 1 : -1);
      if (linear) {
        int8_t lf = -1;
        if (!ReadAt(bytes, &pos, &lf)) return false;
        if (!ReadAt(bytes, &pos, &n.slope)) return false;
        n.lin_feature = lf;
      }
    }
    trees_.push_back(std::move(tree));
  }
  return pos == bytes.size();
}

}  // namespace resest
