#include "src/ml/mart.h"

#include <cstring>
#include <numeric>
#include <stdexcept>

namespace resest {

void Mart::Fit(const Dataset& data) {
  trees_.clear();
  f0_ = 0.0;
  if (data.NumRows() == 0) {
    compiled_.Compile(f0_, params_.learning_rate, trees_);
    return;
  }
  for (double v : data.y) f0_ += v;
  f0_ /= static_cast<double>(data.NumRows());

  FeatureBinner binner;
  binner.Fit(data, params_.num_bins);

  TreeParams tree_params;
  tree_params.max_leaves = params_.max_leaves;
  tree_params.min_leaf = params_.min_leaf;
  tree_params.linear_leaves = params_.linear_leaves;

  const size_t n = data.NumRows();
  std::vector<double> residual(n);
  for (size_t i = 0; i < n; ++i) residual[i] = data.y[i] - f0_;

  Rng rng(params_.seed);
  std::vector<size_t> all_rows(n);
  std::iota(all_rows.begin(), all_rows.end(), 0u);

  trees_.reserve(static_cast<size_t>(params_.num_trees));
  for (int t = 0; t < params_.num_trees; ++t) {
    // Stochastic subsample for this iteration.
    std::vector<size_t> rows;
    if (params_.subsample >= 0.999) {
      rows = all_rows;
    } else {
      rows.reserve(static_cast<size_t>(params_.subsample * static_cast<double>(n)) + 1);
      for (size_t i = 0; i < n; ++i) {
        if (rng.Bernoulli(params_.subsample)) rows.push_back(i);
      }
      if (rows.size() < 2 * static_cast<size_t>(params_.min_leaf)) rows = all_rows;
    }

    RegressionTree tree;
    tree.Fit(data, residual, rows, binner, tree_params);

    // Update residuals on ALL rows with the shrunken tree output.
    for (size_t i = 0; i < n; ++i) {
      residual[i] -= params_.learning_rate * tree.Predict(data.x[i]);
    }
    trees_.push_back(std::move(tree));
  }
  compiled_.Compile(f0_, params_.learning_rate, trees_);
}

double Mart::Predict(const std::vector<double>& features) const {
  return compiled_.Predict(features.data(), features.size());
}

double Mart::Predict(const double* features, size_t count) const {
  return compiled_.Predict(features, count);
}

double Mart::PredictReference(const std::vector<double>& features) const {
  double out = f0_;
  for (const auto& tree : trees_) {
    out += params_.learning_rate * tree.Predict(features);
  }
  return out;
}

namespace {
template <typename T>
void Append(std::vector<uint8_t>* out, const T& v) {
  const uint8_t* p = reinterpret_cast<const uint8_t*>(&v);
  out->insert(out->end(), p, p + sizeof(T));
}

template <typename T>
bool ReadAt(const std::vector<uint8_t>& in, size_t* pos, T* v) {
  if (*pos + sizeof(T) > in.size()) return false;
  std::memcpy(v, in.data() + *pos, sizeof(T));
  *pos += sizeof(T);
  return true;
}
}  // namespace

std::vector<uint8_t> Mart::Serialize() const {
  std::vector<uint8_t> out;
  Append(&out, f0_);
  Append(&out, params_.learning_rate);
  Append(&out, static_cast<uint32_t>(trees_.size()));
  const uint8_t linear = params_.linear_leaves ? 1 : 0;
  Append(&out, linear);
  for (const auto& tree : trees_) {
    const auto& nodes = tree.nodes();
    if (nodes.size() > kMaxTreeNodes) {
      throw std::length_error(
          "Mart::Serialize: tree exceeds kMaxTreeNodes (32767)");
    }
    Append(&out, static_cast<uint16_t>(nodes.size()));
    for (const auto& n : nodes) {
      // Node layout (paper 7.3, widened): int16 left-child index (-1 =
      // leaf), int16 feature, float threshold/value. Linear leaves add an
      // int16 feature + float slope. The right child is always left + 1
      // (children are appended pairwise by Fit), so it is not stored.
      Append(&out, static_cast<int16_t>(n.feature < 0 ? -1 : n.left));
      Append(&out, n.feature);
      Append(&out, n.threshold);
      Append(&out, n.value);
      if (linear) {
        Append(&out, n.lin_feature);
        Append(&out, n.slope);
      }
    }
  }
  return out;
}

bool Mart::Deserialize(const std::vector<uint8_t>& bytes) {
  trees_.clear();
  compiled_ = CompiledForest();
  size_t pos = 0;
  uint32_t num_trees = 0;
  uint8_t linear = 0;
  if (!ReadAt(bytes, &pos, &f0_)) return false;
  if (!ReadAt(bytes, &pos, &params_.learning_rate)) return false;
  if (!ReadAt(bytes, &pos, &num_trees)) return false;
  if (!ReadAt(bytes, &pos, &linear)) return false;
  params_.linear_leaves = (linear != 0);
  trees_.reserve(num_trees);
  for (uint32_t t = 0; t < num_trees; ++t) {
    uint16_t num_nodes = 0;
    if (!ReadAt(bytes, &pos, &num_nodes)) return false;
    // int16_t child links cannot address a larger tree; reject rather than
    // let truncated indices walk the wrong nodes.
    if (num_nodes > kMaxTreeNodes) {
      trees_.clear();
      return false;
    }
    RegressionTree tree;
    auto* nodes = tree.mutable_nodes();
    nodes->resize(num_nodes);
    for (uint16_t i = 0; i < num_nodes; ++i) {
      int16_t left = 0, feature = 0;
      TreeNode& n = (*nodes)[i];
      if (!ReadAt(bytes, &pos, &left)) return false;
      if (!ReadAt(bytes, &pos, &feature)) return false;
      if (!ReadAt(bytes, &pos, &n.threshold)) return false;
      if (!ReadAt(bytes, &pos, &n.value)) return false;
      n.feature = feature;
      if (feature >= 0) {
        // Fit appends children strictly after their parent, so valid links
        // point forward and both children fit in the node array; anything
        // else is corruption (and could make traversal loop or run off the
        // end).
        if (left <= static_cast<int16_t>(i) ||
            static_cast<size_t>(left) + 1 >= num_nodes) {
          trees_.clear();
          return false;
        }
        n.left = left;
        n.right = static_cast<int16_t>(left + 1);
      } else {
        n.left = -1;
        n.right = -1;
      }
      if (linear) {
        if (!ReadAt(bytes, &pos, &n.lin_feature)) return false;
        if (!ReadAt(bytes, &pos, &n.slope)) return false;
      }
    }
    trees_.push_back(std::move(tree));
  }
  if (pos != bytes.size()) {
    trees_.clear();
    return false;
  }
  compiled_.Compile(f0_, params_.learning_rate, trees_);
  return true;
}

}  // namespace resest
