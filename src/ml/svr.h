// Epsilon-SVR trained with SMO, plus the kernel functions the paper
// evaluates through WEKA's SMOreg (PolyKernel, NormalizedPolyKernel,
// RBFKernel, Puk). Inputs and targets are standardized internally, matching
// WEKA's default preprocessing.
#ifndef RESEST_ML_SVR_H_
#define RESEST_ML_SVR_H_

#include <memory>
#include <string>
#include <vector>

#include "src/ml/dataset.h"

namespace resest {

enum class KernelType {
  kPoly,            ///< (x.y + 1)^degree
  kNormalizedPoly,  ///< poly normalized to unit self-similarity
  kRbf,             ///< exp(-gamma ||x-y||^2)
  kPuk,             ///< Pearson VII universal kernel
};

const char* KernelName(KernelType t);

struct SvrParams {
  KernelType kernel = KernelType::kPoly;
  double poly_degree = 2.0;
  double rbf_gamma = 0.5;
  double puk_omega = 1.0;
  double puk_sigma = 1.0;
  double c = 10.0;           ///< Box constraint.
  double epsilon = 0.01;     ///< Insensitive-tube half-width (on scaled y).
  int max_iterations = 200000;
  double tolerance = 1e-3;
  size_t max_train_rows = 2000;  ///< Subsample cap (SMO is O(n^2)).
  uint64_t seed = 17;
};

class Svr : public Regressor {
 public:
  using Regressor::Predict;

  Svr() = default;
  explicit Svr(SvrParams params) : params_(params) {}

  void Fit(const Dataset& data);

  double Predict(const std::vector<double>& features) const override;
  std::string Name() const override {
    return std::string("SVM(") + KernelName(params_.kernel) + ")";
  }

  size_t NumSupportVectors() const;

 private:
  double Kernel(const std::vector<double>& a, const std::vector<double>& b) const;

  SvrParams params_;
  Standardizer x_std_;
  double y_mean_ = 0.0;
  double y_std_ = 1.0;
  double bias_ = 0.0;
  std::vector<std::vector<double>> support_;  ///< Standardized SV features.
  std::vector<double> beta_;                  ///< Dual coefficients (alpha - alpha*).
};

}  // namespace resest

#endif  // RESEST_ML_SVR_H_
