// Ordinary least-squares linear regression with optional greedy forward
// feature selection — the LINEAR competitor and the statistical model behind
// the operator-level baseline of Akdere et al. [8].
#ifndef RESEST_ML_LINEAR_MODEL_H_
#define RESEST_ML_LINEAR_MODEL_H_

#include <string>
#include <vector>

#include "src/ml/dataset.h"

namespace resest {

struct LinearParams {
  bool feature_selection = true;  ///< Greedy forward selection on a holdout.
  double holdout_fraction = 0.25;
  uint64_t seed = 11;
};

class LinearModel : public Regressor {
 public:
  using Regressor::Predict;

  LinearModel() = default;
  explicit LinearModel(LinearParams params) : params_(params) {}

  void Fit(const Dataset& data);

  double Predict(const std::vector<double>& features) const override;
  std::string Name() const override { return "LINEAR"; }

  /// Indices of the features kept by greedy selection (all if disabled).
  const std::vector<size_t>& selected_features() const { return selected_; }
  /// Coefficients aligned with selected_features(), last entry = intercept.
  const std::vector<double>& coefficients() const { return beta_; }

 private:
  /// Trains coefficients on the rows using the given feature subset;
  /// returns the mean squared error on the eval rows.
  static double FitSubset(const Dataset& data, const std::vector<size_t>& train_rows,
                          const std::vector<size_t>& eval_rows,
                          const std::vector<size_t>& features,
                          std::vector<double>* beta);

  LinearParams params_;
  std::vector<size_t> selected_;
  std::vector<double> beta_;
};

}  // namespace resest

#endif  // RESEST_ML_LINEAR_MODEL_H_
