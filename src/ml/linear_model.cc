#include "src/ml/linear_model.h"

#include <cmath>
#include <limits>
#include <numeric>

#include "src/common/matrix.h"

namespace resest {

double LinearModel::FitSubset(const Dataset& data,
                              const std::vector<size_t>& train_rows,
                              const std::vector<size_t>& eval_rows,
                              const std::vector<size_t>& features,
                              std::vector<double>* beta) {
  const size_t k = features.size();
  Matrix x(train_rows.size(), k + 1);
  std::vector<double> y(train_rows.size());
  for (size_t i = 0; i < train_rows.size(); ++i) {
    const size_t r = train_rows[i];
    for (size_t j = 0; j < k; ++j) x.at(i, j) = data.x[r][features[j]];
    x.at(i, k) = 1.0;  // intercept
    y[i] = data.y[r];
  }
  if (!LeastSquares(x, y, beta, 1e-7)) {
    return std::numeric_limits<double>::infinity();
  }
  double sse = 0.0;
  for (size_t r : eval_rows) {
    double pred = (*beta)[k];
    for (size_t j = 0; j < k; ++j) pred += (*beta)[j] * data.x[r][features[j]];
    sse += (pred - data.y[r]) * (pred - data.y[r]);
  }
  return sse / static_cast<double>(std::max<size_t>(1, eval_rows.size()));
}

void LinearModel::Fit(const Dataset& data) {
  selected_.clear();
  beta_.clear();
  const size_t f = data.NumFeatures();
  if (data.NumRows() == 0 || f == 0) {
    beta_ = {0.0};
    return;
  }

  std::vector<size_t> all(data.NumRows());
  std::iota(all.begin(), all.end(), 0u);

  if (!params_.feature_selection) {
    selected_.resize(f);
    std::iota(selected_.begin(), selected_.end(), 0u);
    FitSubset(data, all, all, selected_, &beta_);
    if (beta_.empty()) beta_.assign(f + 1, 0.0);
    return;
  }

  // Split a holdout for greedy selection.
  Rng rng(params_.seed);
  std::vector<size_t> order = all;
  rng.Shuffle(&order);
  const size_t n_hold = std::max<size_t>(
      1, static_cast<size_t>(params_.holdout_fraction * static_cast<double>(order.size())));
  std::vector<size_t> hold(order.begin(), order.begin() + static_cast<long>(n_hold));
  std::vector<size_t> train(order.begin() + static_cast<long>(n_hold), order.end());
  if (train.size() < f + 2) train = all;  // tiny data: no real holdout

  std::vector<size_t> remaining(f);
  std::iota(remaining.begin(), remaining.end(), 0u);
  std::vector<double> beta;
  double best_err = FitSubset(data, train, hold, {}, &beta);  // intercept only

  while (!remaining.empty()) {
    double round_best = std::numeric_limits<double>::infinity();
    size_t round_pick = static_cast<size_t>(-1);
    std::vector<double> round_beta;
    for (size_t cand_pos = 0; cand_pos < remaining.size(); ++cand_pos) {
      std::vector<size_t> trial = selected_;
      trial.push_back(remaining[cand_pos]);
      std::vector<double> b;
      const double err = FitSubset(data, train, hold, trial, &b);
      if (err < round_best) {
        round_best = err;
        round_pick = cand_pos;
        round_beta = std::move(b);
      }
    }
    // Stop when adding the best candidate no longer improves (with a small
    // tolerance so noise does not add useless features).
    if (round_pick == static_cast<size_t>(-1) || round_best >= best_err * 0.999) {
      break;
    }
    best_err = round_best;
    selected_.push_back(remaining[round_pick]);
    remaining.erase(remaining.begin() + static_cast<long>(round_pick));
    beta = std::move(round_beta);
  }

  // Refit the chosen subset on all rows.
  FitSubset(data, all, all, selected_, &beta_);
  if (beta_.empty()) beta_.assign(selected_.size() + 1, 0.0);
}

double LinearModel::Predict(const std::vector<double>& features) const {
  if (beta_.empty()) return 0.0;
  double out = beta_.back();
  for (size_t j = 0; j < selected_.size(); ++j) {
    out += beta_[j] * features[selected_[j]];
  }
  return out;
}

}  // namespace resest
