// Multiple Additive Regression-Trees (MART): least-squares stochastic
// gradient boosting (Friedman 2001), the paper's base learner (Section 4).
//
// With `linear_leaves = true` this doubles as the REGTREE competitor — a
// boosted sequence of trees whose leaves hold one-feature linear models,
// approximating transform regression (paper Section 7, competitor 6).
//
// Inference is served from an ahead-of-time CompiledForest built at the end
// of Fit()/Deserialize(): one contiguous structure-of-arrays block instead
// of ~150 per-tree heap vectors. Predict routes through it; the legacy
// per-tree walk survives as PredictReference, the bit-identity oracle.
#ifndef RESEST_ML_MART_H_
#define RESEST_ML_MART_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/ml/compiled_forest.h"
#include "src/ml/regression_tree.h"

namespace resest {

struct MartParams {
  int num_trees = 300;          ///< Boosting iterations (paper uses 1000).
  double learning_rate = 0.1;   ///< Shrinkage.
  int max_leaves = 10;          ///< Paper: at most 10 leaf nodes per tree.
  int min_leaf = 3;
  double subsample = 0.7;       ///< Stochastic gradient boosting fraction.
  int num_bins = 255;           ///< Histogram split resolution.
  bool linear_leaves = false;   ///< true = REGTREE variant.
  uint64_t seed = 1;
};

class Mart : public Regressor {
 public:
  using Regressor::Predict;

  Mart() = default;
  explicit Mart(MartParams params) : params_(params) {}

  /// Trains on the dataset; safe to call repeatedly (refits from scratch).
  void Fit(const Dataset& data);

  double Predict(const std::vector<double>& features) const override;
  double Predict(const double* features, size_t count) const override;
  std::string Name() const override {
    return params_.linear_leaves ? "REGTREE" : "MART";
  }

  /// Legacy per-tree scalar prediction (walks each tree's own node vector).
  /// Kept as the reference oracle: Predict and CompiledForest::PredictBatch
  /// must be bit-identical to this.
  double PredictReference(const std::vector<double>& features) const;

  /// The contiguous inference representation; rebuilt by Fit/Deserialize,
  /// immutable afterwards (safe to share across serving threads).
  const CompiledForest& compiled() const { return compiled_; }

  const MartParams& params() const { return params_; }
  size_t NumTrees() const { return trees_.size(); }

  /// Compact binary encoding (paper Section 7.3 discusses ~130 B/tree).
  /// Throws std::length_error on a tree exceeding kMaxTreeNodes.
  std::vector<uint8_t> Serialize() const;
  /// Restores a model from Serialize() output; returns false on corrupt
  /// data, including trees past kMaxTreeNodes or out-of-bounds child links.
  bool Deserialize(const std::vector<uint8_t>& bytes);

 private:
  MartParams params_;
  double f0_ = 0.0;          ///< Initial constant prediction (mean target).
  std::vector<RegressionTree> trees_;
  CompiledForest compiled_;
};

}  // namespace resest

#endif  // RESEST_ML_MART_H_
