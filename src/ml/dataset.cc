#include "src/ml/dataset.h"

#include <cmath>
#include <numeric>

namespace resest {

std::pair<Dataset, Dataset> Dataset::Split(double train_fraction,
                                           Rng* rng) const {
  std::vector<size_t> order(NumRows());
  std::iota(order.begin(), order.end(), 0u);
  rng->Shuffle(&order);
  const size_t n_train =
      static_cast<size_t>(train_fraction * static_cast<double>(NumRows()));
  std::vector<size_t> train_rows(order.begin(), order.begin() + static_cast<long>(n_train));
  std::vector<size_t> test_rows(order.begin() + static_cast<long>(n_train), order.end());
  return {Select(train_rows), Select(test_rows)};
}

Dataset Dataset::Select(const std::vector<size_t>& rows) const {
  Dataset out;
  out.x.reserve(rows.size());
  out.y.reserve(rows.size());
  for (size_t r : rows) {
    out.x.push_back(x[r]);
    out.y.push_back(y[r]);
  }
  return out;
}

void Standardizer::Fit(const Dataset& data) {
  const size_t f = data.NumFeatures();
  means_.assign(f, 0.0);
  stddevs_.assign(f, 1.0);
  if (data.NumRows() == 0) return;
  for (const auto& row : data.x) {
    for (size_t j = 0; j < f; ++j) means_[j] += row[j];
  }
  for (size_t j = 0; j < f; ++j) means_[j] /= static_cast<double>(data.NumRows());
  std::vector<double> var(f, 0.0);
  for (const auto& row : data.x) {
    for (size_t j = 0; j < f; ++j) {
      const double d = row[j] - means_[j];
      var[j] += d * d;
    }
  }
  for (size_t j = 0; j < f; ++j) {
    const double s = std::sqrt(var[j] / static_cast<double>(data.NumRows()));
    stddevs_[j] = s > 1e-12 ? s : 1.0;
  }
}

std::vector<double> Standardizer::Transform(const std::vector<double>& x) const {
  std::vector<double> out(x.size());
  for (size_t j = 0; j < x.size() && j < means_.size(); ++j) {
    out[j] = (x[j] - means_[j]) / stddevs_[j];
  }
  return out;
}

Dataset Standardizer::TransformAll(const Dataset& data) const {
  Dataset out;
  out.y = data.y;
  out.x.reserve(data.x.size());
  for (const auto& row : data.x) out.x.push_back(Transform(row));
  return out;
}

}  // namespace resest
