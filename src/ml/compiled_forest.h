// Ahead-of-time compiled forest inference (paper Section 7.3: the deployed
// artifact is the compactly encoded per-operator MART ensemble; inference
// must stay cheap inside the server).
//
// A trained Mart stores one heap-allocated std::vector<TreeNode> per tree
// (~150 per model), so a single prediction chases ~150 scattered blocks.
// CompiledForest flattens the whole ensemble at Train/Deserialize time into
// one cache-dense pre-order layout: each node is a single 16-byte record
// (int32 split feature, float32-quantized threshold, int32 right-child
// index) so one cache line holds four nodes and one traversal step touches
// one line instead of four parallel arrays. The left child is implicit —
// pre-order emission places it at index i + 1 — which is what lets the AVX2
// kernel resolve a step with three node gathers instead of five. Leaf
// values and the linear-leaf fields stay in separate cold arrays, touched
// once per tree per row.
//
// Batched traversal runs rows per tree in lockstep (8 scalar/AVX2, 16
// AVX-512); the fixed-depth, self-looping walk has no data-dependent exit,
// so the rows' load-compare chains overlap in the pipeline. Three kernels
// implement it:
//
//  - kScalar: portable unrolled lockstep, the fallback on any hardware.
//  - kAvx2: x86 AVX2 gathers — per step, one 8-lane gather each for the
//    split features, thresholds and right-child indices, plus two 4-lane
//    double gathers for the feature values, then a predicated blend picks
//    each row's next node. Compiled behind a function-level target
//    attribute and selected at runtime (cpuid + RESEST_SIMD env override),
//    so binaries built on/for non-AVX2 hosts still run the scalar path.
//  - kAvx512: the same walk at 16-row lockstep (AVX-512 F/VL/DQ) — one
//    16-lane word gather per node field, two 8-lane double gathers for the
//    feature values, native _CMP_LE_OQ mask compares (no shuffle-based
//    mask packing), and a mask blend for the child select. Same function-
//    level target attribute + cpuid gating; preferred over kAvx2 when the
//    CPU has it, overridable with RESEST_SIMD=avx512|avx2|scalar.
//
// Bit-identity contract: Predict and PredictBatch reproduce the legacy
// per-tree scalar path (Mart::PredictReference) byte for byte — in BOTH
// kernels. Comparisons happen in the double domain (the float32 threshold
// is widened exactly), and each row's accumulation f0 + sum_i lr * tree_i(x)
// runs scalar, in boosting order, with no FMA contraction; the vector code
// only computes leaf indices, which are integers and either exactly right
// or a bug. Defining RESEST_EXACT_PREDICT (CMake option of the same name)
// additionally pins every batch entry point to the scalar reference-order
// kernel, so the bit-identity oracle suite enforces the contract without
// trusting any SIMD kernel — the escape hatch for a future kernel that
// does reassociate.
//
// Immutability: Compile() fully builds the representation; afterwards all
// methods are const and touch no mutable state, so a compiled forest can be
// shared by any number of serving threads without synchronization.
#ifndef RESEST_ML_COMPILED_FOREST_H_
#define RESEST_ML_COMPILED_FOREST_H_

#include <cstdint>
#include <vector>

#include "src/ml/regression_tree.h"

namespace resest {

/// Traversal kernel identifiers; see ActiveKernel().
enum class ForestKernel { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };

class CompiledForest {
 public:
  /// Rows walked in lockstep per tree by the scalar and AVX2 kernels (the
  /// AVX-512 kernel walks 16; see ActiveLockstepWidth()).
  static constexpr size_t kLockstepWidth = 8;

  /// The kernel PredictBatch dispatches to, resolved once per process: the
  /// widest of kAvx512 > kAvx2 > kScalar the CPU (and build) supports.
  /// Overrides: RESEST_SIMD=scalar forces the fallback (bench
  /// comparability, testing); RESEST_SIMD=avx2 / RESEST_SIMD=avx512
  /// request that kernel but still fall back down the ladder when
  /// unsupported; a RESEST_EXACT_PREDICT build pins kScalar
  /// unconditionally.
  static ForestKernel ActiveKernel();
  /// "avx512", "avx2", "scalar", or "scalar-exact" (RESEST_EXACT_PREDICT
  /// build).
  static const char* ActiveKernelName();
  /// Rows per lockstep group of the active kernel: 16 for kAvx512, else 8.
  static size_t ActiveLockstepWidth();
  /// True when this binary carries the AVX2 kernel and the CPU supports it
  /// (regardless of the RESEST_SIMD override).
  static bool Avx2Supported();
  /// True when this binary carries the AVX-512 kernel and the CPU supports
  /// AVX-512 F+VL+DQ (regardless of the RESEST_SIMD override).
  static bool Avx512Supported();

  /// Flattens `trees` (the boosted sequence of a Mart) into the contiguous
  /// layout. Trees with no nodes compile to a single zero-value leaf, which
  /// is what an empty RegressionTree predicts.
  void Compile(double f0, double learning_rate,
               const std::vector<RegressionTree>& trees);

  /// f0 + sum_i lr * tree_i(x), accumulated in tree order. `count` is the
  /// row width (number of model input features); traversal never reads past
  /// the features the trees were fitted on.
  double Predict(const double* features, size_t count) const;

  /// Batched prediction over `num_rows` contiguous rows of width `stride`
  /// (row i starts at rows + i * stride). out[i] is bit-identical to
  /// Predict(rows + i * stride, stride): the loop is tree-outer/row-inner
  /// for cache locality, but each row still accumulates f0 first and then
  /// the trees in boosting order. Dispatches to ActiveKernel().
  void PredictBatch(const double* rows, size_t num_rows, size_t stride,
                    double* out) const;

  /// Test seam: PredictBatch through a specific kernel. Falls back to
  /// kScalar when the requested kernel is unavailable on this host (and in
  /// RESEST_EXACT_PREDICT builds, which pin the scalar path).
  void PredictBatchWith(ForestKernel kernel, const double* rows,
                        size_t num_rows, size_t stride, double* out) const;

  size_t NumTrees() const { return roots_.size(); }
  size_t NumNodes() const { return nodes_.size(); }
  bool empty() const { return roots_.empty(); }

  /// 1 + the largest feature index any split or linear leaf reads; 0 for a
  /// leaf-only forest. Predict/PredictBatch rows must be at least this
  /// wide. Loaders with a known input width use this to reject corrupt
  /// models whose (unvalidatable in isolation) feature indices would read
  /// out of bounds at predict time.
  size_t NumFeaturesReferenced() const { return num_features_referenced_; }

  /// One traversal record. 16 bytes so the AVX2 kernel reaches any field
  /// with a scale-4 word gather off index * 4, and a cache line covers four
  /// nodes. The left child is implicit (pre-order: index + 1); leaves
  /// carry a NaN threshold, which fails every ordered compare, so both the
  /// scalar select and the vector blend route a finished row to `right` —
  /// pointed at the leaf itself (the self-loop that makes the fixed-depth
  /// walk overshoot-safe).
  struct HotNode {
    int32_t feature = 0;      ///< Split feature (0 on leaves, never read).
    float threshold = 0.0f;   ///< Go left iff x[feature] <= threshold.
    int32_t right = 0;        ///< Absolute right-child index; self on leaves.
    int32_t pad = 0;          ///< Keeps the record a power-of-two size.
  };
  static_assert(sizeof(HotNode) == 16, "gather addressing assumes 16B nodes");

 private:
  /// Pre-order emission of the subtree rooted at `node` into nodes_ and the
  /// cold leaf arrays; returns the absolute index it was placed at.
  int32_t EmitSubtree(const std::vector<TreeNode>& tree_nodes, size_t node);

  void PredictBatchScalar(const double* rows, size_t num_rows, size_t stride,
                          double* out) const;
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  void PredictBatchAvx2(const double* rows, size_t num_rows, size_t stride,
                        double* out) const;
  void PredictBatchAvx512(const double* rows, size_t num_rows, size_t stride,
                          double* out) const;
#endif

  double f0_ = 0.0;
  double learning_rate_ = 0.0;
  std::vector<int32_t> roots_;   ///< Absolute root node index per tree.
  /// Max root-to-leaf edge count per tree. Traversal runs exactly this many
  /// steps: leaves self-loop (see HotNode), so a row that reaches its leaf
  /// early just stays put. This makes the walk branch-free — no
  /// data-dependent loop exit to mispredict — without changing which leaf a
  /// row lands on.
  std::vector<int32_t> depths_;
  std::vector<HotNode> nodes_;  ///< Pre-order per tree; indices absolute.
  // Cold leaf data, indexed like nodes_.
  std::vector<float> value_;          ///< Leaf constant (or intercept).
  std::vector<int16_t> lin_feature_;  ///< Linear-leaf feature; -1 = constant.
  std::vector<float> slope_;
  size_t num_features_referenced_ = 0;
};

}  // namespace resest

#endif  // RESEST_ML_COMPILED_FOREST_H_
