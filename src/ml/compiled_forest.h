// Ahead-of-time compiled forest inference (paper Section 7.3: the deployed
// artifact is the compactly encoded per-operator MART ensemble; inference
// must stay cheap inside the server).
//
// A trained Mart stores one heap-allocated std::vector<TreeNode> per tree
// (~150 per model), so a single prediction chases ~150 scattered blocks.
// CompiledForest flattens the whole ensemble at Train/Deserialize time into
// one contiguous structure-of-arrays block — features[], thresholds[],
// left[], right[], leaf values and the linear-leaf fields each in their own
// array, with absolute node indices and per-tree root offsets — so scalar
// traversal touches one allocation and batched traversal (tree-outer /
// row-inner) keeps each tree's nodes hot in cache across the whole batch.
//
// Bit-identity contract: Predict and PredictBatch reproduce the legacy
// per-tree scalar path (Mart::PredictReference) byte for byte. Every row is
// accumulated in the exact order f0 + sum_i lr * tree_i(x), with the same
// float->double promotions the TreeNode walk performs; the batched loop
// only reorders work *across* rows, never within one row's sum.
//
// Immutability: Compile() fully builds the representation; afterwards all
// methods are const and touch no mutable state, so a compiled forest can be
// shared by any number of serving threads without synchronization.
#ifndef RESEST_ML_COMPILED_FOREST_H_
#define RESEST_ML_COMPILED_FOREST_H_

#include <cstdint>
#include <vector>

#include "src/ml/regression_tree.h"

namespace resest {

class CompiledForest {
 public:
  /// Flattens `trees` (the boosted sequence of a Mart) into the contiguous
  /// layout. Trees with no nodes compile to a single zero-value leaf, which
  /// is what an empty RegressionTree predicts.
  void Compile(double f0, double learning_rate,
               const std::vector<RegressionTree>& trees);

  /// f0 + sum_i lr * tree_i(x), accumulated in tree order. `count` is the
  /// row width (number of model input features); traversal never reads past
  /// the features the trees were fitted on.
  double Predict(const double* features, size_t count) const;

  /// Batched prediction over `num_rows` contiguous rows of width `stride`
  /// (row i starts at rows + i * stride). out[i] is bit-identical to
  /// Predict(rows + i * stride, stride): the loop is tree-outer/row-inner
  /// for cache locality, but each row still accumulates f0 first and then
  /// the trees in boosting order.
  void PredictBatch(const double* rows, size_t num_rows, size_t stride,
                    double* out) const;

  size_t NumTrees() const { return roots_.size(); }
  size_t NumNodes() const { return feature_.size(); }
  bool empty() const { return roots_.empty(); }

  /// 1 + the largest feature index any split or linear leaf reads; 0 for a
  /// leaf-only forest. Predict/PredictBatch rows must be at least this
  /// wide. Loaders with a known input width use this to reject corrupt
  /// models whose (unvalidatable in isolation) feature indices would read
  /// out of bounds at predict time.
  size_t NumFeaturesReferenced() const { return num_features_referenced_; }

 private:
  double f0_ = 0.0;
  double learning_rate_ = 0.0;
  std::vector<int32_t> roots_;   ///< Absolute root node index per tree.
  /// Max root-to-leaf edge count per tree. Traversal runs exactly this many
  /// steps: leaves self-loop (left = right = own index, threshold +inf), so
  /// a row that reaches its leaf early just stays put. This makes the walk
  /// branch-free — no data-dependent loop exit to mispredict — without
  /// changing which leaf a row lands on.
  std::vector<int32_t> depths_;
  // One contiguous SoA node block; indices in left_/right_ are absolute.
  // Leaves are the self-looping nodes (left_[i] == i).
  std::vector<int16_t> feature_;      ///< Split feature (0 on leaves).
  std::vector<float> threshold_;      ///< Go left iff x[feature] <= threshold.
  std::vector<int32_t> left_;
  std::vector<int32_t> right_;
  std::vector<float> value_;          ///< Leaf constant (or intercept).
  std::vector<int16_t> lin_feature_;  ///< Linear-leaf feature; -1 = constant.
  std::vector<float> slope_;
  size_t num_features_referenced_ = 0;
};

}  // namespace resest

#endif  // RESEST_ML_COMPILED_FOREST_H_
