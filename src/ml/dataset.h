// Training data containers and the abstract regressor interface shared by
// all statistical models (MART, linear, SVR, transform-regression).
#ifndef RESEST_ML_DATASET_H_
#define RESEST_ML_DATASET_H_

#include <cstddef>
#include <string>
#include <vector>

#include "src/common/rng.h"

namespace resest {

/// A dense supervised-regression dataset (row-major features).
struct Dataset {
  std::vector<std::vector<double>> x;
  std::vector<double> y;

  size_t NumRows() const { return x.size(); }
  size_t NumFeatures() const { return x.empty() ? 0 : x[0].size(); }

  void Add(std::vector<double> features, double target) {
    x.push_back(std::move(features));
    y.push_back(target);
  }

  /// Random split into train/test with the given train fraction.
  std::pair<Dataset, Dataset> Split(double train_fraction, Rng* rng) const;

  /// Subset by row indices.
  Dataset Select(const std::vector<size_t>& rows) const;
};

/// Abstract trained regressor.
class Regressor {
 public:
  virtual ~Regressor() = default;
  /// Predicted target for one feature vector.
  virtual double Predict(const std::vector<double>& features) const = 0;
  /// Span-style overload over a contiguous row of `count` features, so hot
  /// call sites (stack buffers, matrix rows) need no std::vector copy. The
  /// default bridges to the vector overload; models with allocation-free
  /// inference (trees, MART) override it directly.
  virtual double Predict(const double* features, size_t count) const {
    return Predict(std::vector<double>(features, features + count));
  }
  /// Short technique name ("MART", "LINEAR", ...).
  virtual std::string Name() const = 0;
};

/// Per-feature standardization (mean/stddev), needed by SVR.
class Standardizer {
 public:
  void Fit(const Dataset& data);
  std::vector<double> Transform(const std::vector<double>& x) const;
  Dataset TransformAll(const Dataset& data) const;

  const std::vector<double>& means() const { return means_; }
  const std::vector<double>& stddevs() const { return stddevs_; }

 private:
  std::vector<double> means_;
  std::vector<double> stddevs_;
};

}  // namespace resest

#endif  // RESEST_ML_DATASET_H_
