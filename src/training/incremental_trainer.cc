#include "src/training/incremental_trainer.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <future>
#include <utility>

#include "src/common/serial.h"
#include "src/serving/estimation_service.h"
#include "src/serving/model_registry.h"

namespace resest {

namespace {

constexpr uint32_t kLogMagic = 0x524f424c;  // "ROBL"
// v2: bounded window + reservoir layout (window rows/labels, reservoir
// rows/labels, reservoir_seen, rng_state, total_rows, label_sum).
constexpr uint32_t kLogVersion = 2;

std::string LogPath(const std::string& dir, const std::string& name) {
  return (std::filesystem::path(dir) / (name + ".obslog")).string();
}

std::string ModelPath(const std::string& dir, const std::string& name) {
  return (std::filesystem::path(dir) / (name + ".model")).string();
}

// The per-slot reservoir generator: splitmix64, advanced once per
// full-reservoir eviction. Fixed algorithm + per-slot seed + identical
// eviction stream == identical reservoirs on replay.
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

IncrementalTrainer::IncrementalTrainer(TrainOptions options, RefitPolicy policy,
                                       ThreadPool* pool, LogBounds bounds)
    : options_(options),
      policy_(policy),
      pool_(pool),
      bounds_(bounds),
      tracker_(bounds.memory_cap_bytes) {
  SeedLogRngsLocked();  // single-threaded in the constructor; no lock needed
}

void IncrementalTrainer::SeedLogRngsLocked() {
  for (size_t op = 0; op < static_cast<size_t>(kNumOpTypes); ++op) {
    for (size_t r = 0; r < static_cast<size_t>(kNumResources); ++r) {
      // Distinct fixed seed per slot; splitmix's gamma scrambles weak seeds.
      logs_[op][r].rng_state = op * kNumResources + r + 1;
    }
  }
}

bool IncrementalTrainer::EnableDurability(const std::string& dir,
                                          const std::string& name,
                                          WalOptions wal_options,
                                          RecoveryStats* recovery) {
  std::lock_guard<std::mutex> lock(mu_);
  if (wal_ != nullptr) return false;  // already durable
  // Replay first (into memory only — the WAL is not open yet, so replayed
  // rows are not re-appended), then open for append. Order matters: an
  // existing active file must be scanned before Open() truncates its torn
  // tail and starts writing after the valid prefix.
  RecoveryStats stats;
  const bool replay_ok = ReplayObservationLog(
      dir, name, [this](const WalRecord& r) { ApplyWalRecordLocked(r); },
      &stats);
  recovery_ = stats;
  if (recovery != nullptr) *recovery = stats;
  if (!replay_ok) return false;
  auto wal = std::make_unique<WriteAheadLog>(dir, name, wal_options);
  if (!wal->Open()) return false;
  wal_ = std::move(wal);
  return true;
}

std::shared_ptr<const ResourceEstimator> IncrementalTrainer::SeedAndTrain(
    const std::vector<ExecutedQuery>& workload) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    // A blank estimator carrying the training options: every slot falls
    // back to mean 0 with no model, exactly what from-scratch training on
    // an empty workload yields. The seed fit below is then a forced refit
    // of every slot with data — the same code path every later delta uses.
    base_ = std::make_shared<const ResourceEstimator>(
        ResourceEstimator::Train({}, options_));
    base_version_ = 0;
  }
  ObserveAll(workload);
  RefitAll();
  return base();
}

void IncrementalTrainer::Observe(const ExecutedQuery& executed) {
  // Same admission rule and same pre-order operator visit as
  // ResourceEstimator::Train — log order is fit order, and fit order is
  // part of the byte-identity contract.
  if (!executed.plan.root || executed.database == nullptr) return;
  const FeatureMode mode = options_.mode;
  std::lock_guard<std::mutex> lock(mu_);
  VisitPlanOperators(
      executed.plan, [&](const PlanNode& node, const PlanNode* parent) {
        const FeatureVector row =
            ExtractFeatures(node, parent, *executed.database, mode);
        const size_t op = static_cast<size_t>(node.type);
        const double labels[kNumResources] = {
            node.actual.cpu, static_cast<double>(node.actual.logical_io)};
        for (size_t r = 0; r < kNumResources; ++r) {
          // WAL first: a row is never in memory without being on its way
          // to disk (a failed append is counted and memory continues —
          // degraded durability, surfaced via durability_stats()).
          if (wal_ != nullptr) WalAppendRowLocked(op, r, row, labels[r]);
          ApplyRowLocked(op, r, row, labels[r]);
        }
      });
}

void IncrementalTrainer::ObserveAll(
    const std::vector<ExecutedQuery>& workload) {
  for (const ExecutedQuery& eq : workload) Observe(eq);
}

void IncrementalTrainer::Append(OpType op, Resource resource,
                                const FeatureVector& row, double label) {
  std::lock_guard<std::mutex> lock(mu_);
  const size_t o = static_cast<size_t>(op);
  const size_t r = static_cast<size_t>(resource);
  if (wal_ != nullptr) WalAppendRowLocked(o, r, row, label);
  ApplyRowLocked(o, r, row, label);
}

void IncrementalTrainer::WalAppendRowLocked(size_t op, size_t resource,
                                            const FeatureVector& row,
                                            double label) {
  WalRecord rec;
  rec.type = WalRecordType::kObservation;
  rec.observation.op = static_cast<OpType>(op);
  rec.observation.resource = static_cast<Resource>(resource);
  rec.observation.model_version = base_version_;
  rec.observation.label = label;
  rec.observation.features = row;
  if (!wal_->Append(rec)) ++wal_append_failures_;
}

void IncrementalTrainer::ApplyRowLocked(size_t op, size_t resource,
                                        const FeatureVector& row,
                                        double label) {
  ObservationLog& log = logs_[op][resource];
  if (log.total_rows == log.refit_rows) {
    // First pending row after a fully-covered state: the age clock starts.
    log.first_pending_at = std::chrono::steady_clock::now();
  }
  log.window_rows.push_back(row);
  log.window_labels.push_back(label);
  tracker_.Charge(kObservationRowBytes);
  ++log.total_rows;
  // Running ordered sum — the same `+=` sequence from-scratch training's
  // fallback mean performs, so the doubles stay bit-identical.
  log.label_sum += label;
  while (log.window_rows.size() > bounds_.window_rows) {
    EvictOldestLocked(&log);
  }
  EnforceCapLocked();
}

void IncrementalTrainer::EvictOldestLocked(ObservationLog* log) {
  const FeatureVector row = log->window_rows.front();
  const double label = log->window_labels.front();
  log->window_rows.pop_front();
  log->window_labels.pop_front();
  ++spilled_rows_;
  ++log->reservoir_seen;
  if (log->reservoir_rows.size() < bounds_.reservoir_rows) {
    // Reservoir still filling: the row moves, footprint unchanged.
    log->reservoir_rows.push_back(row);
    log->reservoir_labels.push_back(label);
    return;
  }
  tracker_.Release(kObservationRowBytes);
  if (bounds_.reservoir_rows == 0) return;
  // Algorithm R over the evicted stream: the i-th evicted row replaces a
  // uniform slot with probability capacity/i. One generator draw per
  // full-reservoir eviction — a pure function of the append stream.
  const uint64_t j = SplitMix64(&log->rng_state) % log->reservoir_seen;
  if (j < log->reservoir_rows.size()) {
    log->reservoir_rows[static_cast<size_t>(j)] = row;
    log->reservoir_labels[static_cast<size_t>(j)] = label;
  }
}

void IncrementalTrainer::EnforceCapLocked() {
  // Spill oldest-of-the-largest-window first (ties to the lowest slot
  // index — a fixed order, so replay spills identically). Terminates: every
  // eviction shrinks some window by one row; once all windows are empty the
  // footprint floor is the reservoirs', which the cap cannot reclaim.
  while (tracker_.over()) {
    ObservationLog* victim = nullptr;
    size_t largest = 0;
    for (auto& per_op : logs_) {
      for (ObservationLog& log : per_op) {
        if (log.window_rows.size() > largest) {
          largest = log.window_rows.size();
          victim = &log;
        }
      }
    }
    if (victim == nullptr) break;
    EvictOldestLocked(victim);
  }
}

void IncrementalTrainer::ApplyWalRecordLocked(const WalRecord& record) {
  switch (record.type) {
    case WalRecordType::kObservation: {
      const WalObservation& o = record.observation;
      ApplyRowLocked(static_cast<size_t>(o.op),
                     static_cast<size_t>(o.resource), o.features, o.label);
      break;
    }
    case WalRecordType::kRefitMarker: {
      const WalRefitMarker& m = record.refit;
      ObservationLog& log =
          logs_[static_cast<size_t>(m.op)][static_cast<size_t>(m.resource)];
      // Clamp defensively: markers are appended after the rows they cover,
      // so replay should always have total_rows >= covered_rows.
      log.refit_rows = std::min(m.covered_rows, log.total_rows);
      log.refit_mean = m.refit_mean;
      break;
    }
    case WalRecordType::kCheckpoint: {
      for (size_t op = 0; op < static_cast<size_t>(kNumOpTypes); ++op) {
        for (size_t r = 0; r < static_cast<size_t>(kNumResources); ++r) {
          const WalCheckpoint::Slot& slot = record.checkpoint.slots[op][r];
          ObservationLog& log = logs_[op][r];
          log.refit_rows = std::min(slot.covered_rows, log.total_rows);
          log.refit_mean = slot.refit_mean;
        }
      }
      break;
    }
  }
}

bool IncrementalTrainer::CrossedLocked(
    const ObservationLog& log,
    std::chrono::steady_clock::time_point now) const {
  const uint64_t pending = log.total_rows - log.refit_rows;
  if (pending == 0) return false;
  if (pending >= policy_.min_new_rows) return true;
  if (policy_.drift_threshold > 0.0 && log.refit_rows > 0) {
    const double mean =
        log.label_sum / static_cast<double>(log.total_rows);
    const double denom = std::abs(log.refit_mean) > 0.0
                             ? std::abs(log.refit_mean)
                             : 1.0;
    if (std::abs(mean - log.refit_mean) / denom >= policy_.drift_threshold) {
      return true;
    }
  }
  if (policy_.max_pending_age.count() > 0 &&
      now - log.first_pending_at >= policy_.max_pending_age) {
    return true;
  }
  return false;
}

std::vector<ModelSlotId> IncrementalTrainer::AffectedSlots() const {
  std::vector<ModelSlotId> out;
  const auto now = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lock(mu_);
  for (int op = 0; op < kNumOpTypes; ++op) {
    for (int r = 0; r < kNumResources; ++r) {
      if (CrossedLocked(
              logs_[static_cast<size_t>(op)][static_cast<size_t>(r)], now)) {
        out.emplace_back(static_cast<OpType>(op), static_cast<Resource>(r));
      }
    }
  }
  return out;
}

IncrementalTrainer::RefitResult IncrementalTrainer::RefitAffected() {
  std::lock_guard<std::mutex> refit_lock(refit_mu_);
  return RefitLocked(false);
}

IncrementalTrainer::RefitResult IncrementalTrainer::RefitAll() {
  std::lock_guard<std::mutex> refit_lock(refit_mu_);
  return RefitLocked(true);
}

IncrementalTrainer::RefitResult IncrementalTrainer::RefitLocked(bool force) {
  struct Work {
    ModelSlotId slot{OpType::kTableScan, Resource::kCpu};
    std::vector<FeatureVector> rows;
    std::vector<double> labels;
    uint64_t total_rows = 0;
    double label_sum = 0.0;
  };
  std::vector<Work> work;
  std::shared_ptr<const ResourceEstimator> base;
  const auto now = std::chrono::steady_clock::now();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (base_ == nullptr) return {};
    base = base_;
    for (int op = 0; op < kNumOpTypes; ++op) {
      for (int r = 0; r < kNumResources; ++r) {
        const ObservationLog& log =
            logs_[static_cast<size_t>(op)][static_cast<size_t>(r)];
        const bool due =
            force ? log.total_rows > 0 : CrossedLocked(log, now);
        if (!due) continue;
        Work w;
        w.slot = {static_cast<OpType>(op), static_cast<Resource>(r)};
        // Copy a consistent snapshot: appends racing the fit stay pending.
        // Training set = reservoir (index order: the evicted summary) then
        // the window (append order) — while nothing was evicted this is
        // exactly the cumulative log in append order.
        w.rows.reserve(log.reservoir_rows.size() + log.window_rows.size());
        w.rows.assign(log.reservoir_rows.begin(), log.reservoir_rows.end());
        w.rows.insert(w.rows.end(), log.window_rows.begin(),
                      log.window_rows.end());
        w.labels.reserve(w.rows.size());
        w.labels.assign(log.reservoir_labels.begin(),
                        log.reservoir_labels.end());
        w.labels.insert(w.labels.end(), log.window_labels.begin(),
                        log.window_labels.end());
        w.total_rows = log.total_rows;
        w.label_sum = log.label_sum;
        work.push_back(std::move(w));
      }
    }
  }
  if (work.empty()) return {};  // below threshold: a no-op, publish nothing

  OperatorModelSet::TrainOptions set_options;
  set_options.mart = options_.mart;
  set_options.enable_scaling = options_.enable_scaling;
  set_options.normalize_dependents = options_.normalize_dependents;
  set_options.max_scale_features = options_.max_scale_features;

  struct FitOut {
    std::shared_ptr<const OperatorModelSet> set;
    double mean = 0.0;
  };
  // Per-slot fits from the cumulative log, mirroring from-scratch training
  // exactly: the fallback mean is the running ordered label sum over every
  // appended row (bit-identical to from-scratch summation while nothing
  // was evicted, and still a deterministic function of the stream after),
  // the min_rows_per_operator rule, and the same OperatorModelSet::Train
  // inputs. Fits are mutually independent and MART is seeded, so pool
  // fan-out reproduces the serial bytes for any thread count.
  auto fit_one = [this, &set_options](const Work& w) {
    FitOut out;
    out.mean = w.total_rows == 0
                   ? 0.0
                   : w.label_sum / static_cast<double>(w.total_rows);
    if (w.rows.size() >= options_.min_rows_per_operator) {
      out.set = std::make_shared<const OperatorModelSet>(
          OperatorModelSet::Train(w.slot.first, w.slot.second, w.rows,
                                  w.labels, set_options));
    }
    return out;
  };

  std::vector<FitOut> fitted(work.size());
  if (pool_ == nullptr || work.size() <= 1) {
    for (size_t i = 0; i < work.size(); ++i) fitted[i] = fit_one(work[i]);
  } else {
    // kBulk: a background refit must never displace serving traffic on the
    // shared pool — urgent and normal estimation lanes drain first.
    std::vector<std::future<void>> fits;
    fits.reserve(work.size());
    for (size_t i = 0; i < work.size(); ++i) {
      fits.push_back(pool_->Submit(TaskPriority::kBulk, [&, i]() {
        fitted[i] = fit_one(work[i]);
      }));
    }
    for (auto& f : fits) f.get();
  }

  auto delta = std::make_shared<ResourceEstimator>(*base);
  RefitResult result;
  for (size_t i = 0; i < work.size(); ++i) {
    delta->ReplaceModelSet(work[i].slot.first, work[i].slot.second,
                           fitted[i].set, fitted[i].mean);
    result.refitted.push_back(work[i].slot);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t i = 0; i < work.size(); ++i) {
      ObservationLog& log =
          logs_[static_cast<size_t>(work[i].slot.first)]
               [static_cast<size_t>(work[i].slot.second)];
      log.refit_rows = work[i].total_rows;
      log.refit_mean = fitted[i].mean;
      // Rows appended while the fit ran stay pending; their age clock keeps
      // the pre-snapshot start (conservative — fires no later than true).
      if (std::find(unpublished_refits_.begin(), unpublished_refits_.end(),
                    work[i].slot) == unpublished_refits_.end()) {
        unpublished_refits_.push_back(work[i].slot);
      }
    }
    base_ = delta;
  }
  result.estimator = std::move(delta);
  return result;
}

uint64_t IncrementalTrainer::PublishBaseline(ModelRegistry* registry,
                                             const std::string& name) {
  std::shared_ptr<const ResourceEstimator> base;
  {
    std::lock_guard<std::mutex> lock(mu_);
    base = base_;
  }
  if (base == nullptr) return 0;
  const uint64_t version = registry->Publish(name, base);
  std::lock_guard<std::mutex> lock(mu_);
  if (base_ == base) {
    base_version_ = version;
    // A full publish stamps every slot; nothing diverges from it.
    unpublished_refits_.clear();
  }
  return version;
}

IncrementalTrainer::RefitResult IncrementalTrainer::RefitAndPublish(
    ModelRegistry* registry, const std::string& name,
    EstimationService* service) {
  // Hold refit_mu_ across refit *and* publish: a second publisher must see
  // this delta's version as its base, or its lineage would stamp our
  // refitted slots as unchanged-since-an-older-version and stale cache
  // entries could hit under them.
  std::lock_guard<std::mutex> refit_lock(refit_mu_);
  uint64_t published_base = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    published_base = base_version_;
  }
  RefitResult result = RefitLocked(false);
  if (!result) return result;
  // Stamp and invalidate every slot that diverged from the published base
  // — this round's refits plus any earlier unpublished RefitAffected/
  // RefitAll rounds (unpublished_refits_ accumulated them), which the
  // delta's estimator also carries.
  std::vector<ModelSlotId> diverged;
  {
    std::lock_guard<std::mutex> lock(mu_);
    diverged = unpublished_refits_;
  }
  result.version =
      registry->PublishDelta(name, result.estimator, published_base, diverged);
  if (service != nullptr) {
    service->InvalidateOperators(result.version, diverged);
  }
  std::lock_guard<std::mutex> lock(mu_);
  base_version_ = result.version;
  if (wal_ != nullptr) {
    // Record the published coverage: a restart replays these markers and
    // does not re-refit work the published (and later checkpointed) model
    // already represents. Only *published* boundaries are marked —
    // unpublished refit rounds are simply redone after recovery, which is
    // deterministic.
    for (const ModelSlotId& slot : diverged) {
      const ObservationLog& log =
          logs_[static_cast<size_t>(slot.first)]
               [static_cast<size_t>(slot.second)];
      WalRecord rec;
      rec.type = WalRecordType::kRefitMarker;
      rec.refit.op = slot.first;
      rec.refit.resource = slot.second;
      rec.refit.covered_rows = log.refit_rows;
      rec.refit.refit_mean = log.refit_mean;
      rec.refit.model_version = result.version;
      if (!wal_->Append(rec)) ++wal_append_failures_;
    }
    wal_->Sync();
  }
  unpublished_refits_.clear();
  return result;
}

void IncrementalTrainer::Attach(std::shared_ptr<const ResourceEstimator> base,
                                uint64_t version) {
  std::lock_guard<std::mutex> lock(mu_);
  base_ = std::move(base);
  base_version_ = version;
  unpublished_refits_.clear();
}

WalRecord IncrementalTrainer::BuildCheckpointLocked() const {
  WalRecord rec;
  rec.type = WalRecordType::kCheckpoint;
  rec.checkpoint.base_version = base_version_;
  for (size_t op = 0; op < static_cast<size_t>(kNumOpTypes); ++op) {
    for (size_t r = 0; r < static_cast<size_t>(kNumResources); ++r) {
      rec.checkpoint.slots[op][r].covered_rows = logs_[op][r].refit_rows;
      rec.checkpoint.slots[op][r].refit_mean = logs_[op][r].refit_mean;
    }
  }
  return rec;
}

bool IncrementalTrainer::Checkpoint(const ModelRegistry& registry,
                                    const std::string& name,
                                    const std::string& dir) const {
  if (!registry.SaveActive(name, dir)) return false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (wal_ != nullptr) {
      // The rows are already durable in the WAL; all a checkpoint adds is
      // the coverage snapshot matching the model just saved, made durable
      // with an fsync.
      if (!wal_->Append(BuildCheckpointLocked())) {
        ++wal_append_failures_;
        return false;
      }
      return wal_->Sync();
    }
  }
  // Legacy (non-durable) mode: the full-log image. SaveLogs takes mu_
  // itself, so it must run outside the guard above.
  return SaveLogs(LogPath(dir, name));
}

uint64_t IncrementalTrainer::Restore(ModelRegistry* registry,
                                     const std::string& name,
                                     const std::string& dir) {
  bool durable = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    durable = wal_ != nullptr;
  }
  if (durable) {
    // EnableDurability()'s replay already rebuilt the logs (rows, coverage
    // markers and all); only the model remains to republish.
    const uint64_t version =
        registry->PublishFromFile(name, ModelPath(dir, name));
    if (version == 0) return 0;
    std::lock_guard<std::mutex> lock(mu_);
    base_ = registry->Get(name).estimator;
    base_version_ = version;
    unpublished_refits_.clear();
    return version;
  }
  // Parse everything before mutating anything: a failure at any step must
  // leave both the trainer and the registry exactly as they were.
  std::vector<uint8_t> bytes;
  LogArray loaded;
  if (!ReadFileBytes(LogPath(dir, name), &bytes) ||
      !ParseLogs(bytes, &loaded)) {
    return 0;
  }
  const uint64_t version =
      registry->PublishFromFile(name, ModelPath(dir, name));
  if (version == 0) return 0;
  std::lock_guard<std::mutex> lock(mu_);
  logs_ = std::move(loaded);
  NormalizeLoadedLocked();
  base_ = registry->Get(name).estimator;
  base_version_ = version;
  unpublished_refits_.clear();
  return version;
}

bool IncrementalTrainer::DrainWal() {
  std::lock_guard<std::mutex> lock(mu_);
  if (wal_ == nullptr) return true;
  bool ok = wal_->Append(BuildCheckpointLocked());
  if (!ok) ++wal_append_failures_;
  // Seal regardless: even with the marker lost, the sealed rows must
  // survive the exit.
  return wal_->Seal() && ok;
}

bool IncrementalTrainer::FlushWal() {
  std::lock_guard<std::mutex> lock(mu_);
  return wal_ == nullptr ? true : wal_->Sync();
}

bool IncrementalTrainer::SaveLogs(const std::string& path) const {
  std::vector<uint8_t> bytes;
  ByteWriter w(&bytes);
  w.U32(kLogMagic);
  w.U32(kLogVersion);
  w.U32(static_cast<uint32_t>(kNumFeatures));
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& per_op : logs_) {
    for (const ObservationLog& log : per_op) {
      w.Pod(static_cast<uint64_t>(log.window_rows.size()));
      for (const FeatureVector& row : log.window_rows) w.Pod(row);
      for (double label : log.window_labels) w.F64(label);
      w.Pod(static_cast<uint64_t>(log.reservoir_rows.size()));
      for (const FeatureVector& row : log.reservoir_rows) w.Pod(row);
      for (double label : log.reservoir_labels) w.F64(label);
      w.Pod(log.reservoir_seen);
      w.Pod(log.rng_state);
      w.Pod(log.total_rows);
      w.F64(log.label_sum);
      w.Pod(log.refit_rows);
      w.F64(log.refit_mean);
    }
  }
  return WriteFileAtomic(path, bytes);
}

bool IncrementalTrainer::LoadLogs(const std::string& path) {
  std::vector<uint8_t> bytes;
  LogArray loaded;
  if (!ReadFileBytes(path, &bytes) || !ParseLogs(bytes, &loaded)) {
    return false;
  }
  std::lock_guard<std::mutex> lock(mu_);
  logs_ = std::move(loaded);
  NormalizeLoadedLocked();
  return true;
}

bool IncrementalTrainer::ParseLogs(const std::vector<uint8_t>& bytes,
                                   LogArray* out) const {
  ByteReader r(bytes);
  uint32_t magic = 0, format = 0, num_features = 0;
  if (!r.U32(&magic) || magic != kLogMagic) return false;
  if (!r.U32(&format) || format != kLogVersion) return false;
  if (!r.U32(&num_features) || num_features != kNumFeatures) return false;

  // Bound a row count by the bytes actually present before resizing, so a
  // corrupt count field fails the parse instead of throwing on a huge
  // allocation.
  auto plausible = [&](uint64_t count) {
    const uint64_t remaining = bytes.size() - r.position();
    return count <= remaining / sizeof(FeatureVector);
  };

  LogArray& loaded = *out;
  for (auto& per_op : loaded) {
    for (ObservationLog& log : per_op) {
      uint64_t window = 0, reservoir = 0;
      if (!r.Pod(&window) || !plausible(window)) return false;
      log.window_rows.resize(window);
      for (FeatureVector& row : log.window_rows) {
        if (!r.Pod(&row)) return false;
      }
      log.window_labels.resize(window);
      for (double& label : log.window_labels) {
        if (!r.F64(&label)) return false;
      }
      if (!r.Pod(&reservoir) || !plausible(reservoir)) return false;
      log.reservoir_rows.resize(reservoir);
      for (FeatureVector& row : log.reservoir_rows) {
        if (!r.Pod(&row)) return false;
      }
      log.reservoir_labels.resize(reservoir);
      for (double& label : log.reservoir_labels) {
        if (!r.F64(&label)) return false;
      }
      if (!r.Pod(&log.reservoir_seen) || !r.Pod(&log.rng_state) ||
          !r.Pod(&log.total_rows) || !r.F64(&log.label_sum) ||
          !r.Pod(&log.refit_rows) || !r.F64(&log.refit_mean)) {
        return false;
      }
      if (log.refit_rows > log.total_rows) return false;
      if (window + reservoir > log.total_rows) return false;
    }
  }
  return r.AtEnd();
}

void IncrementalTrainer::NormalizeLoadedLocked() {
  tracker_ = MemoryTracker(bounds_.memory_cap_bytes);
  size_t rows = 0;
  for (const auto& per_op : logs_) {
    for (const ObservationLog& log : per_op) {
      rows += log.window_rows.size() + log.reservoir_rows.size();
    }
  }
  tracker_.Charge(rows * kObservationRowBytes);
  const auto now = std::chrono::steady_clock::now();
  for (auto& per_op : logs_) {
    for (ObservationLog& log : per_op) {
      // The age clock restarts at load (steady_clock does not persist).
      if (log.total_rows > log.refit_rows) log.first_pending_at = now;
      // Re-apply the bounds: the image may come from looser ones.
      while (log.window_rows.size() > bounds_.window_rows) {
        EvictOldestLocked(&log);
      }
    }
  }
  EnforceCapLocked();
}

IncrementalTrainer::SlotLogStats IncrementalTrainer::LogStats(
    OpType op, Resource resource) const {
  std::lock_guard<std::mutex> lock(mu_);
  const ObservationLog& log =
      logs_[static_cast<size_t>(op)][static_cast<size_t>(resource)];
  SlotLogStats out;
  out.rows = static_cast<size_t>(log.total_rows);
  out.pending = static_cast<size_t>(log.total_rows - log.refit_rows);
  out.window = log.window_rows.size();
  out.reservoir = log.reservoir_rows.size();
  return out;
}

size_t IncrementalTrainer::TotalPendingRows() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t pending = 0;
  for (const auto& per_op : logs_) {
    for (const ObservationLog& log : per_op) {
      pending += static_cast<size_t>(log.total_rows - log.refit_rows);
    }
  }
  return pending;
}

DurabilityStats IncrementalTrainer::durability_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  DurabilityStats s;
  s.durable = wal_ != nullptr;
  if (wal_ != nullptr) {
    s.wal_ok = wal_->ok();
    s.wal = wal_->stats();
  }
  s.recovery = recovery_;
  s.memory_bytes = tracker_.bytes();
  s.memory_peak_bytes = tracker_.peak_bytes();
  s.memory_cap_bytes = tracker_.cap_bytes();
  s.spilled_rows = spilled_rows_;
  s.wal_append_failures = wal_append_failures_;
  return s;
}

bool IncrementalTrainer::durable_ok() const {
  std::lock_guard<std::mutex> lock(mu_);
  return wal_ == nullptr || wal_->ok();
}

std::shared_ptr<const ResourceEstimator> IncrementalTrainer::base() const {
  std::lock_guard<std::mutex> lock(mu_);
  return base_;
}

uint64_t IncrementalTrainer::base_version() const {
  std::lock_guard<std::mutex> lock(mu_);
  return base_version_;
}

}  // namespace resest
