#include "src/training/incremental_trainer.h"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <future>
#include <utility>

#include "src/common/serial.h"
#include "src/serving/estimation_service.h"
#include "src/serving/model_registry.h"

namespace resest {

namespace {

constexpr uint32_t kLogMagic = 0x524f424c;  // "ROBL"
constexpr uint32_t kLogVersion = 1;

std::string LogPath(const std::string& dir, const std::string& name) {
  return (std::filesystem::path(dir) / (name + ".obslog")).string();
}

std::string ModelPath(const std::string& dir, const std::string& name) {
  return (std::filesystem::path(dir) / (name + ".model")).string();
}

}  // namespace

IncrementalTrainer::IncrementalTrainer(TrainOptions options, RefitPolicy policy,
                                       ThreadPool* pool)
    : options_(options), policy_(policy), pool_(pool) {}

std::shared_ptr<const ResourceEstimator> IncrementalTrainer::SeedAndTrain(
    const std::vector<ExecutedQuery>& workload) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    // A blank estimator carrying the training options: every slot falls
    // back to mean 0 with no model, exactly what from-scratch training on
    // an empty workload yields. The seed fit below is then a forced refit
    // of every slot with data — the same code path every later delta uses.
    base_ = std::make_shared<const ResourceEstimator>(
        ResourceEstimator::Train({}, options_));
    base_version_ = 0;
  }
  ObserveAll(workload);
  RefitAll();
  return base();
}

void IncrementalTrainer::Observe(const ExecutedQuery& executed) {
  // Same admission rule and same pre-order operator visit as
  // ResourceEstimator::Train — log order is fit order, and fit order is
  // part of the byte-identity contract.
  if (!executed.plan.root || executed.database == nullptr) return;
  const FeatureMode mode = options_.mode;
  std::lock_guard<std::mutex> lock(mu_);
  VisitPlanOperators(
      executed.plan, [&](const PlanNode& node, const PlanNode* parent) {
        const FeatureVector row =
            ExtractFeatures(node, parent, *executed.database, mode);
        const size_t op = static_cast<size_t>(node.type);
        const double labels[kNumResources] = {
            node.actual.cpu, static_cast<double>(node.actual.logical_io)};
        for (size_t r = 0; r < kNumResources; ++r) {
          ObservationLog& log = logs_[op][r];
          log.rows.push_back(row);
          log.labels.push_back(labels[r]);
          log.label_sum += labels[r];
        }
      });
}

void IncrementalTrainer::ObserveAll(
    const std::vector<ExecutedQuery>& workload) {
  for (const ExecutedQuery& eq : workload) Observe(eq);
}

void IncrementalTrainer::Append(OpType op, Resource resource,
                                const FeatureVector& row, double label) {
  std::lock_guard<std::mutex> lock(mu_);
  ObservationLog& log =
      logs_[static_cast<size_t>(op)][static_cast<size_t>(resource)];
  log.rows.push_back(row);
  log.labels.push_back(label);
  log.label_sum += label;
}

bool IncrementalTrainer::CrossedLocked(const ObservationLog& log) const {
  const size_t pending = log.rows.size() - log.refit_rows;
  if (pending == 0) return false;
  if (pending >= policy_.min_new_rows) return true;
  if (policy_.drift_threshold > 0.0 && log.refit_rows > 0) {
    const double mean =
        log.label_sum / static_cast<double>(log.labels.size());
    const double denom = std::abs(log.refit_mean) > 0.0
                             ? std::abs(log.refit_mean)
                             : 1.0;
    if (std::abs(mean - log.refit_mean) / denom >= policy_.drift_threshold) {
      return true;
    }
  }
  return false;
}

std::vector<ModelSlotId> IncrementalTrainer::AffectedSlots() const {
  std::vector<ModelSlotId> out;
  std::lock_guard<std::mutex> lock(mu_);
  for (int op = 0; op < kNumOpTypes; ++op) {
    for (int r = 0; r < kNumResources; ++r) {
      if (CrossedLocked(
              logs_[static_cast<size_t>(op)][static_cast<size_t>(r)])) {
        out.emplace_back(static_cast<OpType>(op), static_cast<Resource>(r));
      }
    }
  }
  return out;
}

IncrementalTrainer::RefitResult IncrementalTrainer::RefitAffected() {
  std::lock_guard<std::mutex> refit_lock(refit_mu_);
  return RefitLocked(false);
}

IncrementalTrainer::RefitResult IncrementalTrainer::RefitAll() {
  std::lock_guard<std::mutex> refit_lock(refit_mu_);
  return RefitLocked(true);
}

IncrementalTrainer::RefitResult IncrementalTrainer::RefitLocked(bool force) {
  struct Work {
    ModelSlotId slot{OpType::kTableScan, Resource::kCpu};
    std::vector<FeatureVector> rows;
    std::vector<double> labels;
  };
  std::vector<Work> work;
  std::shared_ptr<const ResourceEstimator> base;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (base_ == nullptr) return {};
    base = base_;
    for (int op = 0; op < kNumOpTypes; ++op) {
      for (int r = 0; r < kNumResources; ++r) {
        const ObservationLog& log =
            logs_[static_cast<size_t>(op)][static_cast<size_t>(r)];
        const bool due = force ? !log.rows.empty() : CrossedLocked(log);
        if (!due) continue;
        Work w;
        w.slot = {static_cast<OpType>(op), static_cast<Resource>(r)};
        // Copy a consistent snapshot: appends racing the fit stay pending.
        w.rows = log.rows;
        w.labels = log.labels;
        work.push_back(std::move(w));
      }
    }
  }
  if (work.empty()) return {};  // below threshold: a no-op, publish nothing

  OperatorModelSet::TrainOptions set_options;
  set_options.mart = options_.mart;
  set_options.enable_scaling = options_.enable_scaling;
  set_options.normalize_dependents = options_.normalize_dependents;
  set_options.max_scale_features = options_.max_scale_features;

  struct FitOut {
    std::shared_ptr<const OperatorModelSet> set;
    double mean = 0.0;
  };
  // Per-slot fits from the cumulative log, mirroring from-scratch training
  // exactly: ordered label sum for the fallback mean, the
  // min_rows_per_operator rule, and the same OperatorModelSet::Train
  // inputs. Fits are mutually independent and MART is seeded, so pool
  // fan-out reproduces the serial bytes for any thread count.
  auto fit_one = [this, &set_options](const Work& w) {
    FitOut out;
    double sum = 0.0;
    for (double v : w.labels) sum += v;
    out.mean =
        w.labels.empty() ? 0.0 : sum / static_cast<double>(w.labels.size());
    if (w.rows.size() >= options_.min_rows_per_operator) {
      out.set = std::make_shared<const OperatorModelSet>(
          OperatorModelSet::Train(w.slot.first, w.slot.second, w.rows,
                                  w.labels, set_options));
    }
    return out;
  };

  std::vector<FitOut> fitted(work.size());
  if (pool_ == nullptr || work.size() <= 1) {
    for (size_t i = 0; i < work.size(); ++i) fitted[i] = fit_one(work[i]);
  } else {
    // kBulk: a background refit must never displace serving traffic on the
    // shared pool — urgent and normal estimation lanes drain first.
    std::vector<std::future<void>> fits;
    fits.reserve(work.size());
    for (size_t i = 0; i < work.size(); ++i) {
      fits.push_back(pool_->Submit(TaskPriority::kBulk, [&, i]() {
        fitted[i] = fit_one(work[i]);
      }));
    }
    for (auto& f : fits) f.get();
  }

  auto delta = std::make_shared<ResourceEstimator>(*base);
  RefitResult result;
  for (size_t i = 0; i < work.size(); ++i) {
    delta->ReplaceModelSet(work[i].slot.first, work[i].slot.second,
                           fitted[i].set, fitted[i].mean);
    result.refitted.push_back(work[i].slot);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t i = 0; i < work.size(); ++i) {
      ObservationLog& log =
          logs_[static_cast<size_t>(work[i].slot.first)]
               [static_cast<size_t>(work[i].slot.second)];
      log.refit_rows = work[i].rows.size();
      log.refit_mean = fitted[i].mean;
      if (std::find(unpublished_refits_.begin(), unpublished_refits_.end(),
                    work[i].slot) == unpublished_refits_.end()) {
        unpublished_refits_.push_back(work[i].slot);
      }
    }
    base_ = delta;
  }
  result.estimator = std::move(delta);
  return result;
}

uint64_t IncrementalTrainer::PublishBaseline(ModelRegistry* registry,
                                             const std::string& name) {
  std::shared_ptr<const ResourceEstimator> base;
  {
    std::lock_guard<std::mutex> lock(mu_);
    base = base_;
  }
  if (base == nullptr) return 0;
  const uint64_t version = registry->Publish(name, base);
  std::lock_guard<std::mutex> lock(mu_);
  if (base_ == base) {
    base_version_ = version;
    // A full publish stamps every slot; nothing diverges from it.
    unpublished_refits_.clear();
  }
  return version;
}

IncrementalTrainer::RefitResult IncrementalTrainer::RefitAndPublish(
    ModelRegistry* registry, const std::string& name,
    EstimationService* service) {
  // Hold refit_mu_ across refit *and* publish: a second publisher must see
  // this delta's version as its base, or its lineage would stamp our
  // refitted slots as unchanged-since-an-older-version and stale cache
  // entries could hit under them.
  std::lock_guard<std::mutex> refit_lock(refit_mu_);
  uint64_t published_base = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    published_base = base_version_;
  }
  RefitResult result = RefitLocked(false);
  if (!result) return result;
  // Stamp and invalidate every slot that diverged from the published base
  // — this round's refits plus any earlier unpublished RefitAffected/
  // RefitAll rounds (unpublished_refits_ accumulated them), which the
  // delta's estimator also carries.
  std::vector<ModelSlotId> diverged;
  {
    std::lock_guard<std::mutex> lock(mu_);
    diverged = unpublished_refits_;
  }
  result.version =
      registry->PublishDelta(name, result.estimator, published_base, diverged);
  if (service != nullptr) {
    service->InvalidateOperators(result.version, diverged);
  }
  std::lock_guard<std::mutex> lock(mu_);
  base_version_ = result.version;
  unpublished_refits_.clear();
  return result;
}

void IncrementalTrainer::Attach(std::shared_ptr<const ResourceEstimator> base,
                                uint64_t version) {
  std::lock_guard<std::mutex> lock(mu_);
  base_ = std::move(base);
  base_version_ = version;
  unpublished_refits_.clear();
}

bool IncrementalTrainer::Checkpoint(const ModelRegistry& registry,
                                    const std::string& name,
                                    const std::string& dir) const {
  if (!registry.SaveActive(name, dir)) return false;
  return SaveLogs(LogPath(dir, name));
}

uint64_t IncrementalTrainer::Restore(ModelRegistry* registry,
                                     const std::string& name,
                                     const std::string& dir) {
  // Parse everything before mutating anything: a failure at any step must
  // leave both the trainer and the registry exactly as they were.
  std::vector<uint8_t> bytes;
  LogArray loaded;
  if (!ReadFileBytes(LogPath(dir, name), &bytes) ||
      !ParseLogs(bytes, &loaded)) {
    return 0;
  }
  const uint64_t version =
      registry->PublishFromFile(name, ModelPath(dir, name));
  if (version == 0) return 0;
  std::lock_guard<std::mutex> lock(mu_);
  logs_ = std::move(loaded);
  base_ = registry->Get(name).estimator;
  base_version_ = version;
  unpublished_refits_.clear();
  return version;
}

bool IncrementalTrainer::SaveLogs(const std::string& path) const {
  std::vector<uint8_t> bytes;
  ByteWriter w(&bytes);
  w.U32(kLogMagic);
  w.U32(kLogVersion);
  w.U32(static_cast<uint32_t>(kNumFeatures));
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& per_op : logs_) {
    for (const ObservationLog& log : per_op) {
      w.Pod(static_cast<uint64_t>(log.rows.size()));
      for (const FeatureVector& row : log.rows) w.Pod(row);
      for (double label : log.labels) w.F64(label);
      w.Pod(static_cast<uint64_t>(log.refit_rows));
      w.F64(log.refit_mean);
    }
  }
  return WriteFileAtomic(path, bytes);
}

bool IncrementalTrainer::LoadLogs(const std::string& path) {
  std::vector<uint8_t> bytes;
  LogArray loaded;
  if (!ReadFileBytes(path, &bytes) || !ParseLogs(bytes, &loaded)) {
    return false;
  }
  std::lock_guard<std::mutex> lock(mu_);
  logs_ = std::move(loaded);
  return true;
}

bool IncrementalTrainer::ParseLogs(const std::vector<uint8_t>& bytes,
                                   LogArray* out) {
  ByteReader r(bytes);
  uint32_t magic = 0, format = 0, num_features = 0;
  if (!r.U32(&magic) || magic != kLogMagic) return false;
  if (!r.U32(&format) || format != kLogVersion) return false;
  if (!r.U32(&num_features) || num_features != kNumFeatures) return false;

  LogArray& loaded = *out;
  for (auto& per_op : loaded) {
    for (ObservationLog& log : per_op) {
      uint64_t count = 0, refit_rows = 0;
      if (!r.Pod(&count)) return false;
      // Bound the count by the bytes actually present before resizing, so
      // a corrupt count field fails the parse instead of throwing on a
      // huge allocation.
      const uint64_t remaining = bytes.size() - r.position();
      if (count > remaining / sizeof(FeatureVector)) return false;
      log.rows.resize(count);
      for (FeatureVector& row : log.rows) {
        if (!r.Pod(&row)) return false;
      }
      log.labels.resize(count);
      for (double& label : log.labels) {
        if (!r.F64(&label)) return false;
      }
      if (!r.Pod(&refit_rows) || !r.F64(&log.refit_mean)) return false;
      if (refit_rows > count) return false;
      log.refit_rows = refit_rows;
      // Running ordered sum, identical to what incremental appends build.
      log.label_sum = 0.0;
      for (double label : log.labels) log.label_sum += label;
    }
  }
  return r.AtEnd();
}

IncrementalTrainer::SlotLogStats IncrementalTrainer::LogStats(
    OpType op, Resource resource) const {
  std::lock_guard<std::mutex> lock(mu_);
  const ObservationLog& log =
      logs_[static_cast<size_t>(op)][static_cast<size_t>(resource)];
  return {log.rows.size(), log.rows.size() - log.refit_rows};
}

size_t IncrementalTrainer::TotalPendingRows() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t pending = 0;
  for (const auto& per_op : logs_) {
    for (const ObservationLog& log : per_op) {
      pending += log.rows.size() - log.refit_rows;
    }
  }
  return pending;
}

std::shared_ptr<const ResourceEstimator> IncrementalTrainer::base() const {
  std::lock_guard<std::mutex> lock(mu_);
  return base_;
}

uint64_t IncrementalTrainer::base_version() const {
  std::lock_guard<std::mutex> lock(mu_);
  return base_version_;
}

}  // namespace resest
