// Accounting for the total in-memory observation-log footprint: every row
// held in a window or reservoir is charged here, and the trainer spills the
// oldest window rows into reservoirs while the footprint exceeds the cap —
// the mechanism that keeps a refit loop serving sustained traffic inside a
// fixed memory budget for days instead of growing without bound.
//
// The tracker only counts and compares; the spill policy (which slot, which
// row) lives in IncrementalTrainer so the decision stays a deterministic
// function of the global append order, which WAL replay reproduces.
// Thread safety: none — mutated only under the trainer's log mutex.
#ifndef RESEST_TRAINING_MEMORY_TRACKER_H_
#define RESEST_TRAINING_MEMORY_TRACKER_H_

#include <cstddef>

namespace resest {

class MemoryTracker {
 public:
  /// `cap_bytes` == 0 means unbounded (tracking only, never over()).
  explicit MemoryTracker(size_t cap_bytes = 0) : cap_(cap_bytes) {}

  void Charge(size_t bytes) {
    bytes_ += bytes;
    if (bytes_ > peak_) peak_ = bytes_;
  }
  void Release(size_t bytes) { bytes_ = bytes_ > bytes ? bytes_ - bytes : 0; }

  bool over() const { return cap_ != 0 && bytes_ > cap_; }

  size_t bytes() const { return bytes_; }
  size_t peak_bytes() const { return peak_; }
  size_t cap_bytes() const { return cap_; }

 private:
  size_t cap_;
  size_t bytes_ = 0;
  size_t peak_ = 0;
};

}  // namespace resest

#endif  // RESEST_TRAINING_MEMORY_TRACKER_H_
