// Incremental retraining with delta publish (the paper's Section 8 "living
// system" direction): executed queries flow back into per-(operator,
// resource) append-only observation logs, and only the model slots whose
// logs crossed a refit policy are retrained — on the shared ThreadPool at
// TaskPriority::kBulk, so serving traffic is never displaced. The result is
// published as a *delta*: a new ResourceEstimator that shares (by
// shared_ptr) every untouched model set — compiled forests included — with
// its predecessor, pushed through ModelRegistry::PublishDelta plus
// EstimationService::InvalidateOperators so cache entries for unaffected
// operators survive the hot-swap.
//
// Determinism contract (pinned by tests/incremental_trainer_test.cc): a
// refit of a slot from its cumulative log (seed rows + appended rows) is
// byte-identical to what a from-scratch ResourceEstimator::Train on the
// concatenated dataset would produce for that slot, for every (OpType,
// Resource) pair — same fit inputs in the same order, seeded MART, and the
// same fallback-mean summation order. A delta therefore never changes an
// untouched operator's estimates by even one bit (it shares the pointer),
// and a forced full refit reproduces from-scratch training byte for byte.
#ifndef RESEST_TRAINING_INCREMENTAL_TRAINER_H_
#define RESEST_TRAINING_INCREMENTAL_TRAINER_H_

#include <array>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/core/estimator.h"

namespace resest {

class EstimationService;
class ModelRegistry;

/// When a slot's observation log has accumulated enough to refit: either a
/// row-count threshold (enough new evidence) or a relative drift of the
/// cumulative mean label away from its value at the last refit (the
/// workload's cost distribution moved, even if slowly).
struct RefitPolicy {
  /// Appended rows since the last refit that force a refit on their own.
  size_t min_new_rows = 64;
  /// Relative mean-label drift (|mean - refit_mean| / |refit_mean|) that
  /// forces a refit regardless of row count; 0 disables the drift trigger.
  /// Only consulted for slots that have been fitted at least once.
  double drift_threshold = 0.25;
};

/// Owns the per-(OpType, Resource) observation logs and the retrain-only-
/// what-changed loop. All methods are thread-safe; Observe/Append may race
/// RefitAffected freely (a refit trains from a consistent copy of each
/// affected log, and appends that race it simply stay pending for the next
/// round). Refits are serialized with each other. Do not call Refit* from a
/// task running on the shared pool — it blocks on pool futures.
class IncrementalTrainer {
 public:
  /// `pool` (optional) runs per-slot fits at TaskPriority::kBulk; null fits
  /// serially. Either way the trained bytes are identical (MART is seeded
  /// and every fit is independent).
  explicit IncrementalTrainer(TrainOptions options, RefitPolicy policy = {},
                              ThreadPool* pool = nullptr);

  /// Seeds the logs from an executed workload and trains the baseline
  /// estimator from them — byte-identical to
  /// ResourceEstimator::Train(workload, options), but running through the
  /// same per-slot refit path every later delta uses.
  std::shared_ptr<const ResourceEstimator> SeedAndTrain(
      const std::vector<ExecutedQuery>& workload);

  /// Appends one executed query's per-operator feature/label rows to the
  /// logs (the feedback edge: execute -> observe). Skips queries with no
  /// plan or database, exactly as training does.
  void Observe(const ExecutedQuery& executed);
  void ObserveAll(const std::vector<ExecutedQuery>& workload);

  /// Low-level log append for a single slot — the seam for per-operator
  /// feedback sources (and for tests steering exactly which slots cross
  /// the refit policy).
  void Append(OpType op, Resource resource, const FeatureVector& row,
              double label);

  /// Slots whose logs currently cross the refit policy.
  std::vector<ModelSlotId> AffectedSlots() const;

  struct RefitResult {
    /// The delta estimator; null when no slot crossed the policy (the
    /// refit was a no-op and nothing was published).
    std::shared_ptr<const ResourceEstimator> estimator;
    std::vector<ModelSlotId> refitted;
    /// Registry version when published via RefitAndPublish; 0 otherwise.
    uint64_t version = 0;

    explicit operator bool() const { return estimator != nullptr; }
  };

  /// Retrains only the slots whose logs crossed the policy and returns the
  /// delta (untouched slots share the predecessor's model sets by pointer).
  /// A no-op — returning a null estimator — when nothing crossed.
  RefitResult RefitAffected();

  /// Forces a refit of every slot that has any rows — a full rebuild from
  /// the cumulative logs (byte-identical to from-scratch training on them).
  RefitResult RefitAll();

  /// Publishes the current baseline (after SeedAndTrain/Restore) under
  /// `name`; later RefitAndPublish calls delta-publish against it. Returns
  /// the version, 0 if there is no baseline.
  uint64_t PublishBaseline(ModelRegistry* registry, const std::string& name);

  /// RefitAffected + ModelRegistry::PublishDelta + (optionally)
  /// EstimationService::InvalidateOperators, in that order — the complete
  /// observe -> refit -> republish step. Below-threshold refits publish
  /// nothing and leave the registry untouched.
  RefitResult RefitAndPublish(ModelRegistry* registry, const std::string& name,
                              EstimationService* service = nullptr);

  /// Adopts an externally obtained baseline without touching the logs.
  /// CAUTION: a refit trains each slot from its cumulative log *only* — the
  /// log is the slot's complete dataset. Attaching a baseline whose
  /// training rows are not in the logs means a later refit of a slot
  /// discards that baseline's data for it (down to a constant model if the
  /// log holds fewer than min_rows_per_operator rows). Use Restore(), which
  /// reloads logs and model together, for the restart path; after a bare
  /// Attach, re-seed the logs (ObserveAll) before relying on refits.
  void Attach(std::shared_ptr<const ResourceEstimator> base, uint64_t version);

  /// Persists registry model + lineage (ModelRegistry::SaveActive) and the
  /// observation logs (`<dir>/<name>.obslog`) so a restarted process can
  /// Restore() and resume mid-stream — pending rows and all. Checkpoint at
  /// a *published* boundary (right after RefitAndPublish, or before any
  /// refit): the saved model is the registry's active version, so refits
  /// performed but not yet published are not represented in it, while the
  /// logs would record their slots as already covered.
  bool Checkpoint(const ModelRegistry& registry, const std::string& name,
                  const std::string& dir) const;

  /// Reloads the logs, republishes the persisted model (PublishFromFile,
  /// lineage included) and attaches it as the baseline. Returns the
  /// published version, 0 on failure (registry untouched when the log file
  /// is missing or corrupt).
  uint64_t Restore(ModelRegistry* registry, const std::string& name,
                   const std::string& dir);

  /// Raw log (de)serialization; Checkpoint/Restore are the usual entry.
  bool SaveLogs(const std::string& path) const;
  bool LoadLogs(const std::string& path);

  struct SlotLogStats {
    size_t rows = 0;     ///< Cumulative rows in the slot's log.
    size_t pending = 0;  ///< Rows appended since the slot's last refit.
  };
  SlotLogStats LogStats(OpType op, Resource resource) const;
  size_t TotalPendingRows() const;

  std::shared_ptr<const ResourceEstimator> base() const;
  uint64_t base_version() const;
  const TrainOptions& options() const { return options_; }
  const RefitPolicy& policy() const { return policy_; }

 private:
  /// Append-only per-slot dataset. `rows`/`labels` grow in observation
  /// order; `refit_rows` marks the prefix covered by the last refit, and
  /// `label_sum` is the running ordered sum (so the refit's fallback mean
  /// is bit-identical to from-scratch training's ordered summation).
  struct ObservationLog {
    std::vector<FeatureVector> rows;
    std::vector<double> labels;
    double label_sum = 0.0;
    size_t refit_rows = 0;
    double refit_mean = 0.0;
  };

  using LogArray =
      std::array<std::array<ObservationLog, kNumResources>, kNumOpTypes>;

  bool CrossedLocked(const ObservationLog& log) const;
  /// The refit body; caller must hold refit_mu_.
  RefitResult RefitLocked(bool force);
  /// Parses a SaveLogs byte image; false on corrupt input (`*out`
  /// unspecified then).
  static bool ParseLogs(const std::vector<uint8_t>& bytes, LogArray* out);

  const TrainOptions options_;
  const RefitPolicy policy_;
  ThreadPool* const pool_;

  mutable std::mutex mu_;  ///< Guards logs_, base_, base_version_,
                           ///< unpublished_refits_.
  LogArray logs_;
  std::shared_ptr<const ResourceEstimator> base_;
  uint64_t base_version_ = 0;
  /// Slots refitted since base_version_ was last published. A publish must
  /// stamp (and invalidate) every slot that diverged from the published
  /// base — including ones refitted by earlier unpublished RefitAffected/
  /// RefitAll rounds — or stale cache entries could hit under an
  /// unchanged-looking slot version.
  std::vector<ModelSlotId> unpublished_refits_;

  /// Serializes refits — and, in RefitAndPublish, the whole
  /// refit-then-publish step — with each other: two concurrent publishers
  /// must not delta-publish against the same base version, or the second
  /// delta's lineage would under-stamp the first's refitted slots.
  std::mutex refit_mu_;
};

}  // namespace resest

#endif  // RESEST_TRAINING_INCREMENTAL_TRAINER_H_
