// Incremental retraining with delta publish (the paper's Section 8 "living
// system" direction): executed queries flow back into per-(operator,
// resource) observation logs, and only the model slots whose logs crossed a
// refit policy are retrained — on the shared ThreadPool at
// TaskPriority::kBulk, so serving traffic is never displaced. The result is
// published as a *delta*: a new ResourceEstimator that shares (by
// shared_ptr) every untouched model set — compiled forests included — with
// its predecessor, pushed through ModelRegistry::PublishDelta plus
// EstimationService::InvalidateOperators so cache entries for unaffected
// operators survive the hot-swap.
//
// Memory: each slot's log is a bounded window of the newest rows plus a
// deterministic reservoir summarizing everything evicted from it, and a
// MemoryTracker caps the total footprint across slots by spilling the
// oldest rows of the largest window first — so the loop can absorb
// sustained traffic for days inside a fixed budget (see docs/durability.md
// for the determinism story of the bounded representation).
//
// Durability: with EnableDurability() every observation is appended to a
// write-ahead log (src/storage/wal.h) *before* it enters memory, sealed
// into immutable segments as it grows; a restarted process replays
// segments + tail (src/storage/recovery.h) and resumes mid-stream —
// pending rows and all — instead of relying on full-log checkpoints.
// Checkpoint/Restore then persist only the model store plus a coverage
// marker in the WAL; the rows themselves are already durable.
//
// Determinism contract (pinned by tests/incremental_trainer_test.cc and
// tests/crash_recovery_test.cc): a refit of a slot from its cumulative log
// (seed rows + appended rows) is byte-identical to what a from-scratch
// ResourceEstimator::Train on the concatenated dataset would produce for
// that slot as long as nothing was evicted from the window; once eviction
// starts, the training set (reservoir + window) is still a deterministic
// function of the append stream, so a crashed-and-recovered process refits
// byte-identically to a never-crashed one fed the same durable prefix. A
// delta never changes an untouched operator's estimates by even one bit
// (it shares the pointer).
#ifndef RESEST_TRAINING_INCREMENTAL_TRAINER_H_
#define RESEST_TRAINING_INCREMENTAL_TRAINER_H_

#include <array>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/core/estimator.h"
#include "src/storage/recovery.h"
#include "src/storage/wal.h"
#include "src/training/memory_tracker.h"

namespace resest {

class EstimationService;
class ModelRegistry;

/// When a slot's observation log has accumulated enough to refit: a
/// row-count threshold (enough new evidence), a relative drift of the
/// cumulative mean label away from its value at the last refit (the
/// workload's cost distribution moved, even if slowly), or plain age — a
/// slot with *any* pending rows refits once the oldest has waited
/// max_pending_age, so trickle-traffic slots are not stale forever.
struct RefitPolicy {
  /// Appended rows since the last refit that force a refit on their own.
  size_t min_new_rows = 64;
  /// Relative mean-label drift (|mean - refit_mean| / |refit_mean|) that
  /// forces a refit regardless of row count; 0 disables the drift trigger.
  /// Only consulted for slots that have been fitted at least once.
  double drift_threshold = 0.25;
  /// Age of the oldest pending row beyond which the slot refits regardless
  /// of row count or drift; zero disables the age trigger. Wall-clock —
  /// it decides *when* a refit happens, never what it trains on, so the
  /// byte-identity contract is untouched.
  std::chrono::milliseconds max_pending_age{0};
};

/// Bounds on the in-memory observation logs. Defaults are far above any
/// test workload (the golden byte-identity suite sees no eviction) while
/// still bounding a long-running server.
struct LogBounds {
  /// Newest rows kept verbatim per slot; older rows spill to the reservoir.
  size_t window_rows = 65536;
  /// Deterministic reservoir (Vitter's algorithm R with a per-slot seeded
  /// generator) summarizing rows evicted from the window.
  size_t reservoir_rows = 4096;
  /// Total in-memory footprint cap across all slots' windows + reservoirs;
  /// 0 = unbounded. When exceeded, the oldest rows of the largest window
  /// spill first. Caps below the total reservoir occupancy cannot be met
  /// (reservoirs are the floor); size the cap above
  /// kNumModelSlots * reservoir_rows * kObservationRowBytes.
  size_t memory_cap_bytes = 0;
};

/// Accounting charge per in-memory observation row (features + label).
inline constexpr size_t kObservationRowBytes =
    sizeof(FeatureVector) + sizeof(double);

/// One-stop durability/memory observability, exported on /metrics.
struct DurabilityStats {
  bool durable = false;   ///< EnableDurability() succeeded.
  bool wal_ok = true;     ///< False once a WAL append/sync/seal failed.
  WalStats wal;           ///< Counters since EnableDurability().
  RecoveryStats recovery; ///< From the startup replay.
  size_t memory_bytes = 0;
  size_t memory_peak_bytes = 0;
  size_t memory_cap_bytes = 0;
  uint64_t spilled_rows = 0;  ///< Window rows evicted into reservoirs.
  /// Observations applied in memory whose WAL append failed (they serve
  /// refits but will not survive a restart).
  uint64_t wal_append_failures = 0;
};

/// Owns the per-(OpType, Resource) observation logs and the retrain-only-
/// what-changed loop. All methods are thread-safe; Observe/Append may race
/// RefitAffected freely (a refit trains from a consistent copy of each
/// affected log, and appends that race it simply stay pending for the next
/// round). Refits are serialized with each other. Do not call Refit* from a
/// task running on the shared pool — it blocks on pool futures.
class IncrementalTrainer {
 public:
  /// `pool` (optional) runs per-slot fits at TaskPriority::kBulk; null fits
  /// serially. Either way the trained bytes are identical (MART is seeded
  /// and every fit is independent). `bounds` caps the in-memory logs.
  explicit IncrementalTrainer(TrainOptions options, RefitPolicy policy = {},
                              ThreadPool* pool = nullptr,
                              LogBounds bounds = {});

  /// Opens (or resumes) the WAL for `name` under `dir` and replays any
  /// existing segments + tail into the in-memory logs — call before any
  /// observation, typically right before Restore(). On return every later
  /// Observe/Append is WAL-backed. False on I/O failure (the trainer then
  /// stays memory-only). `recovery` (optional) receives the replay stats,
  /// also available later via durability_stats().
  bool EnableDurability(const std::string& dir, const std::string& name,
                        WalOptions wal_options = {},
                        RecoveryStats* recovery = nullptr);

  /// Seeds the logs from an executed workload and trains the baseline
  /// estimator from them — byte-identical to
  /// ResourceEstimator::Train(workload, options), but running through the
  /// same per-slot refit path every later delta uses.
  std::shared_ptr<const ResourceEstimator> SeedAndTrain(
      const std::vector<ExecutedQuery>& workload);

  /// Appends one executed query's per-operator feature/label rows to the
  /// logs (the feedback edge: execute -> observe), WAL-first when durable.
  /// Skips queries with no plan or database, exactly as training does.
  void Observe(const ExecutedQuery& executed);
  void ObserveAll(const std::vector<ExecutedQuery>& workload);

  /// Low-level log append for a single slot — the seam for per-operator
  /// feedback sources (and for tests steering exactly which slots cross
  /// the refit policy).
  void Append(OpType op, Resource resource, const FeatureVector& row,
              double label);

  /// Slots whose logs currently cross the refit policy.
  std::vector<ModelSlotId> AffectedSlots() const;

  struct RefitResult {
    /// The delta estimator; null when no slot crossed the policy (the
    /// refit was a no-op and nothing was published).
    std::shared_ptr<const ResourceEstimator> estimator;
    std::vector<ModelSlotId> refitted;
    /// Registry version when published via RefitAndPublish; 0 otherwise.
    uint64_t version = 0;

    explicit operator bool() const { return estimator != nullptr; }
  };

  /// Retrains only the slots whose logs crossed the policy and returns the
  /// delta (untouched slots share the predecessor's model sets by pointer).
  /// A no-op — returning a null estimator — when nothing crossed.
  RefitResult RefitAffected();

  /// Forces a refit of every slot that has any rows — a full rebuild from
  /// the cumulative logs (byte-identical to from-scratch training on them
  /// while nothing has been evicted).
  RefitResult RefitAll();

  /// Publishes the current baseline (after SeedAndTrain/Restore) under
  /// `name`; later RefitAndPublish calls delta-publish against it. Returns
  /// the version, 0 if there is no baseline.
  uint64_t PublishBaseline(ModelRegistry* registry, const std::string& name);

  /// RefitAffected + ModelRegistry::PublishDelta + (optionally)
  /// EstimationService::InvalidateOperators, in that order — the complete
  /// observe -> refit -> republish step. Below-threshold refits publish
  /// nothing and leave the registry untouched. When durable, the published
  /// coverage is recorded in the WAL (refit markers + fsync) so a restart
  /// does not re-refit work the published model already represents.
  RefitResult RefitAndPublish(ModelRegistry* registry, const std::string& name,
                              EstimationService* service = nullptr);

  /// Adopts an externally obtained baseline without touching the logs.
  /// CAUTION: a refit trains each slot from its cumulative log *only* — the
  /// log is the slot's complete dataset. Attaching a baseline whose
  /// training rows are not in the logs means a later refit of a slot
  /// discards that baseline's data for it (down to a constant model if the
  /// log holds fewer than min_rows_per_operator rows). Use Restore(), which
  /// reloads logs and model together, for the restart path; after a bare
  /// Attach, re-seed the logs (ObserveAll) before relying on refits.
  void Attach(std::shared_ptr<const ResourceEstimator> base, uint64_t version);

  /// Persists registry model + lineage (ModelRegistry::SaveActive), then
  /// makes the log state durable: with durability enabled, a checkpoint
  /// marker (full coverage snapshot) is appended to the WAL and fsync'd —
  /// the rows themselves are already in the log, so no full-log
  /// serialization happens; without it, the legacy whole-log
  /// `<dir>/<name>.obslog` image is written atomically. Checkpoint at a
  /// *published* boundary (right after RefitAndPublish, or before any
  /// refit): the saved model is the registry's active version.
  bool Checkpoint(const ModelRegistry& registry, const std::string& name,
                  const std::string& dir) const;

  /// Republishes the persisted model (PublishFromFile, lineage included)
  /// and attaches it as the baseline. With durability enabled the logs
  /// were already rebuilt by EnableDurability()'s replay; otherwise they
  /// are loaded from the legacy `.obslog` image. Returns the published
  /// version, 0 on failure (registry untouched when the model or log state
  /// is missing or corrupt).
  uint64_t Restore(ModelRegistry* registry, const std::string& name,
                   const std::string& dir);

  /// Drain hook for serving processes: appends a checkpoint marker, fsyncs
  /// and seals the active WAL into an immutable segment — after the last
  /// response, before exit 0. No-op (true) when not durable.
  bool DrainWal();

  /// fsyncs the active WAL file. No-op (true) when not durable.
  bool FlushWal();

  /// Raw log (de)serialization (the legacy full-image path; durable
  /// trainers rarely need it). Checkpoint/Restore are the usual entry.
  bool SaveLogs(const std::string& path) const;
  bool LoadLogs(const std::string& path);

  struct SlotLogStats {
    size_t rows = 0;       ///< Lifetime rows appended to the slot's log.
    size_t pending = 0;    ///< Rows appended since the slot's last refit.
    size_t window = 0;     ///< Rows currently held verbatim.
    size_t reservoir = 0;  ///< Rows currently held in the reservoir.
  };
  SlotLogStats LogStats(OpType op, Resource resource) const;
  size_t TotalPendingRows() const;

  DurabilityStats durability_stats() const;
  /// False once a WAL write failed (observations still serve refits but no
  /// longer survive a restart) — surface this on /metrics and health.
  bool durable_ok() const;

  std::shared_ptr<const ResourceEstimator> base() const;
  uint64_t base_version() const;
  const TrainOptions& options() const { return options_; }
  const RefitPolicy& policy() const { return policy_; }
  const LogBounds& bounds() const { return bounds_; }

 private:
  /// Per-slot dataset: a bounded window of the newest rows plus a
  /// deterministic reservoir of evicted ones. `total_rows` counts lifetime
  /// appends, `label_sum` is the running ordered sum over every appended
  /// label (so the refit's fallback mean is bit-identical to from-scratch
  /// training's ordered summation), and `refit_rows` is the lifetime count
  /// covered by the last refit.
  struct ObservationLog {
    std::deque<FeatureVector> window_rows;
    std::deque<double> window_labels;
    std::vector<FeatureVector> reservoir_rows;
    std::vector<double> reservoir_labels;
    uint64_t reservoir_seen = 0;  ///< Rows ever offered to the reservoir.
    uint64_t rng_state = 0;       ///< Deterministic per-slot generator.
    uint64_t total_rows = 0;
    double label_sum = 0.0;
    uint64_t refit_rows = 0;
    double refit_mean = 0.0;
    /// When the oldest currently-pending row was appended (age trigger);
    /// meaningful only while total_rows > refit_rows.
    std::chrono::steady_clock::time_point first_pending_at{};
  };

  using LogArray =
      std::array<std::array<ObservationLog, kNumResources>, kNumOpTypes>;

  bool CrossedLocked(const ObservationLog& log,
                     std::chrono::steady_clock::time_point now) const;
  /// The in-memory half of an append (window push + spill); caller holds
  /// mu_. Shared verbatim by live appends and WAL replay so both walk the
  /// exact same eviction/reservoir decisions.
  void ApplyRowLocked(size_t op, size_t resource, const FeatureVector& row,
                      double label);
  /// Evicts the oldest row of `log` into its reservoir (algorithm R).
  void EvictOldestLocked(ObservationLog* log);
  /// Spills until the tracker is back under its cap (or windows are empty).
  void EnforceCapLocked();
  /// WAL-appends one observation; caller holds mu_. Counts failures.
  void WalAppendRowLocked(size_t op, size_t resource, const FeatureVector& row,
                          double label);
  /// Applies one replayed WAL record; caller holds mu_.
  void ApplyWalRecordLocked(const WalRecord& record);
  /// Full-coverage checkpoint marker of the current state; caller holds mu_.
  WalRecord BuildCheckpointLocked() const;
  /// After logs_ was wholesale-replaced (LoadLogs/Restore): rebuilds the
  /// tracker, restarts pending-age clocks, re-applies the bounds.
  void NormalizeLoadedLocked();
  /// The refit body; caller must hold refit_mu_.
  RefitResult RefitLocked(bool force);
  /// Parses a SaveLogs byte image; false on corrupt input (`*out`
  /// unspecified then).
  bool ParseLogs(const std::vector<uint8_t>& bytes, LogArray* out) const;
  void SeedLogRngsLocked();

  const TrainOptions options_;
  const RefitPolicy policy_;
  ThreadPool* const pool_;
  const LogBounds bounds_;

  mutable std::mutex mu_;  ///< Guards logs_, base_, base_version_,
                           ///< unpublished_refits_, wal_, tracker_.
  LogArray logs_;
  MemoryTracker tracker_;
  uint64_t spilled_rows_ = 0;
  std::shared_ptr<const ResourceEstimator> base_;
  uint64_t base_version_ = 0;
  /// Slots refitted since base_version_ was last published. A publish must
  /// stamp (and invalidate) every slot that diverged from the published
  /// base — including ones refitted by earlier unpublished RefitAffected/
  /// RefitAll rounds — or stale cache entries could hit under an
  /// unchanged-looking slot version.
  std::vector<ModelSlotId> unpublished_refits_;

  /// Durable mode (EnableDurability): the WAL is written strictly under
  /// mu_, so its record order IS the in-memory append order — the property
  /// replay determinism rests on. Mutable: the const Checkpoint() appends
  /// the checkpoint marker.
  mutable std::unique_ptr<WriteAheadLog> wal_;
  RecoveryStats recovery_;
  mutable uint64_t wal_append_failures_ = 0;

  /// Serializes refits — and, in RefitAndPublish, the whole
  /// refit-then-publish step — with each other: two concurrent publishers
  /// must not delta-publish against the same base version, or the second
  /// delta's lineage would under-stamp the first's refitted slots.
  std::mutex refit_mu_;
};

}  // namespace resest

#endif  // RESEST_TRAINING_INCREMENTAL_TRAINER_H_
