#include "src/core/scaling.h"

#include <algorithm>
#include <cmath>

#include "src/common/matrix.h"

namespace resest {

const char* ScalingFnName(ScalingFn fn) {
  switch (fn) {
    case ScalingFn::kLinear: return "linear";
    case ScalingFn::kLog2: return "log2";
    case ScalingFn::kNLogN: return "nlogn";
    case ScalingFn::kSqrt: return "sqrt";
    case ScalingFn::kPower15: return "pow1.5";
    case ScalingFn::kQuadratic: return "quadratic";
    case ScalingFn::kCubic: return "cubic";
    case ScalingFn::kSum: return "a+b";
    case ScalingFn::kProduct: return "a*b";
    case ScalingFn::kALogB: return "a*log2(b)";
  }
  return "?";
}

bool IsTwoInput(ScalingFn fn) {
  return fn == ScalingFn::kSum || fn == ScalingFn::kProduct ||
         fn == ScalingFn::kALogB;
}

double EvalScaling(ScalingFn fn, double a, double b) {
  a = std::max(1.0, a);
  b = std::max(1.0, b);
  switch (fn) {
    case ScalingFn::kLinear: return a;
    case ScalingFn::kLog2: return std::log2(std::max(2.0, a));
    case ScalingFn::kNLogN: return a * std::log2(std::max(2.0, a));
    case ScalingFn::kSqrt: return std::sqrt(a);
    case ScalingFn::kPower15: return std::pow(a, 1.5);
    case ScalingFn::kQuadratic: return a * a;
    case ScalingFn::kCubic: return a * a * a;
    case ScalingFn::kSum: return a + b;
    case ScalingFn::kProduct: return a * b;
    case ScalingFn::kALogB: return a * std::log2(std::max(2.0, b));
  }
  return a;
}

ScalingFit FitScalingFn(ScalingFn fn, const std::vector<SweepPoint>& sweep) {
  ScalingFit fit;
  fit.fn = fn;
  std::vector<double> g, y;
  g.reserve(sweep.size());
  y.reserve(sweep.size());
  for (const auto& p : sweep) {
    g.push_back(EvalScaling(fn, p.a, p.b));
    y.push_back(p.usage);
  }
  fit.alpha = FitScale(g, y);
  double sse = 0.0;
  for (size_t i = 0; i < g.size(); ++i) {
    const double e = fit.alpha * g[i] - y[i];
    sse += e * e;
  }
  fit.l2_error = std::sqrt(sse);
  return fit;
}

std::vector<ScalingFit> SelectScalingFn(const std::vector<SweepPoint>& sweep,
                                        bool include_two_input) {
  static const ScalingFn kOneInput[] = {
      ScalingFn::kLinear, ScalingFn::kLog2,   ScalingFn::kNLogN,
      ScalingFn::kSqrt,   ScalingFn::kPower15, ScalingFn::kQuadratic,
      ScalingFn::kCubic};
  static const ScalingFn kTwoInput[] = {ScalingFn::kSum, ScalingFn::kProduct,
                                        ScalingFn::kALogB};
  std::vector<ScalingFit> fits;
  for (ScalingFn fn : kOneInput) fits.push_back(FitScalingFn(fn, sweep));
  if (include_two_input) {
    for (ScalingFn fn : kTwoInput) fits.push_back(FitScalingFn(fn, sweep));
  }
  std::sort(fits.begin(), fits.end(),
            [](const ScalingFit& a, const ScalingFit& b) {
              return a.l2_error < b.l2_error;
            });
  return fits;
}

ScalingFn DefaultScalingFn(OpType op, Resource resource, FeatureId feature) {
  // Offline selection results (Section 6.2). CPU of a sort grows n log n in
  // its input count; CPU of seeks grows logarithmically in the table size
  // (index depth); everything else in the candidate set scales linearly.
  if (resource == Resource::kCpu) {
    if (op == OpType::kSort &&
        (feature == FeatureId::kCIn0 || feature == FeatureId::kMinComp)) {
      return ScalingFn::kNLogN;
    }
    if ((op == OpType::kIndexSeek || op == OpType::kIndexNestedLoopJoin) &&
        (feature == FeatureId::kTSize || feature == FeatureId::kSSeekTable)) {
      return ScalingFn::kLog2;
    }
  } else {
    if (op == OpType::kIndexNestedLoopJoin && feature == FeatureId::kSSeekTable) {
      return ScalingFn::kLog2;  // I/O per probe ~ index depth
    }
  }
  return ScalingFn::kLinear;
}

bool JointScalingFn(OpType op, Resource resource, FeatureId f1, FeatureId f2,
                    ScalingFn* fn) {
  auto pair_is = [&](FeatureId a, FeatureId b) {
    return (f1 == a && f2 == b) || (f1 == b && f2 == a);
  };
  switch (op) {
    case OpType::kMergeJoin:
    case OpType::kHashJoin:
      // Both inputs contribute additively (merge: two sorted streams;
      // hash: build pass + probe pass): scale with the sum of input sizes.
      if (pair_is(FeatureId::kCIn0, FeatureId::kCIn1)) {
        *fn = ScalingFn::kSum;
        return true;
      }
      break;
    case OpType::kIndexNestedLoopJoin:
      // Figure 8: CPU ~ C_outer * log2(InnerTable).
      if (pair_is(FeatureId::kCIn0, FeatureId::kSSeekTable)) {
        *fn = ScalingFn::kALogB;
        return true;
      }
      break;
    case OpType::kNestedLoopJoin:
      if (pair_is(FeatureId::kCIn0, FeatureId::kCIn1) ||
          pair_is(FeatureId::kCIn0, FeatureId::kSSeekTable)) {
        *fn = resource == Resource::kCpu ? ScalingFn::kProduct : ScalingFn::kSum;
        return true;
      }
      break;
    default:
      break;
  }
  return false;
}

}  // namespace resest
