#include "src/core/combined_model.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace resest {

std::string ScaleSpec::ToString() const {
  if (features.empty()) return "unscaled";
  std::string out;
  if (joint) {
    out = std::string(ScalingFnName(joint_fn)) + "(" +
          FeatureName(features[0]) + "," + FeatureName(features[1]) + ")";
    return out;
  }
  for (size_t i = 0; i < features.size(); ++i) {
    if (i > 0) out += " x ";
    out += std::string(ScalingFnName(fns[i])) + "(" + FeatureName(features[i]) + ")";
  }
  return out;
}

double CombinedModel::ScaleValue(const FeatureVector& raw) const {
  if (spec_.features.empty()) return 1.0;
  if (spec_.joint) {
    return EvalScaling(spec_.joint_fn,
                       raw[static_cast<size_t>(spec_.features[0])],
                       raw[static_cast<size_t>(spec_.features[1])]);
  }
  double g = 1.0;
  for (size_t i = 0; i < spec_.features.size(); ++i) {
    g *= EvalScaling(spec_.fns[i], raw[static_cast<size_t>(spec_.features[i])]);
  }
  return std::max(g, 1e-9);
}

void CombinedModel::TransformInputsInto(const FeatureVector& raw,
                                        double* out) const {
  FeatureVector v = raw;
  if (normalize_dependents_) {
    // Section 6.1 (3): divide dependent features by the outlier feature so a
    // single cause (e.g. an excessive tuple count) does not trigger scaling
    // through several features at once.
    for (FeatureId f : spec_.features) {
      const double denom = std::max(1.0, raw[static_cast<size_t>(f)]);
      for (FeatureId dep : Dependents(f)) {
        v[static_cast<size_t>(dep)] /= denom;
      }
    }
  }
  for (size_t i = 0; i < input_features_.size(); ++i) {
    out[i] = v[static_cast<size_t>(input_features_[i])];
  }
}

std::vector<double> CombinedModel::TransformInputs(const FeatureVector& raw) const {
  std::vector<double> inputs(input_features_.size());
  TransformInputsInto(raw, inputs.data());
  return inputs;
}

CombinedModel CombinedModel::Train(OpType op, Resource resource, ScaleSpec spec,
                                   const std::vector<FeatureVector>& rows,
                                   const std::vector<double>& targets,
                                   const MartParams& mart_params,
                                   bool normalize_dependents) {
  CombinedModel m;
  m.op_ = op;
  m.resource_ = resource;
  m.spec_ = std::move(spec);
  m.normalize_dependents_ = normalize_dependents;
  m.mart_ = Mart(mart_params);

  // Input features: the operator's features minus the scale features
  // (Section 6.1 step (2)).
  for (FeatureId f : OperatorFeatures(op)) {
    if (std::find(m.spec_.features.begin(), m.spec_.features.end(), f) ==
        m.spec_.features.end()) {
      m.input_features_.push_back(f);
    }
  }

  Dataset data;
  data.x.reserve(rows.size());
  data.y.reserve(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    // Section 6.1 step (1): the scaled model predicts per-unit-of-g usage.
    const double g = m.ScaleValue(rows[i]);
    data.Add(m.TransformInputs(rows[i]), targets[i] / g);
  }
  m.mart_.Fit(data);

  // Training feature envelope (for out_ratio) in the transformed space.
  const size_t nf = m.input_features_.size();
  m.low_.assign(nf, std::numeric_limits<double>::infinity());
  m.high_.assign(nf, -std::numeric_limits<double>::infinity());
  for (const auto& x : data.x) {
    for (size_t j = 0; j < nf; ++j) {
      m.low_[j] = std::min(m.low_[j], x[j]);
      m.high_[j] = std::max(m.high_[j], x[j]);
    }
  }
  if (rows.empty()) {
    m.low_.assign(nf, 0.0);
    m.high_.assign(nf, 0.0);
  }

  // Mean relative training error (used for default-model selection). The
  // denominator is floored at 1% of the mean target so near-zero-cost
  // operators do not dominate the comparison.
  double mean_target = 0.0;
  for (double t : targets) mean_target += std::fabs(t);
  mean_target /= std::max<size_t>(1, targets.size());
  const double floor = std::max(1e-9, 0.01 * mean_target);
  double err = 0.0;
  for (size_t i = 0; i < rows.size(); ++i) {
    const double pred = m.Predict(rows[i]);
    err += std::fabs(pred - targets[i]) / std::max(floor, std::fabs(targets[i]));
  }
  m.train_error_ = rows.empty() ? 0.0 : err / static_cast<double>(rows.size());
  return m;
}

double CombinedModel::Predict(const FeatureVector& raw) const {
  // Transformed rows have at most kNumFeatures inputs; a stack buffer keeps
  // the hot path allocation-free.
  double inputs[kNumFeatures];
  TransformInputsInto(raw, inputs);
  const double per_unit = mart_.Predict(inputs, input_features_.size());
  // Resources are non-negative; clamp pathological negative boosting output.
  return std::max(0.0, per_unit * ScaleValue(raw));
}

void CombinedModel::PredictBatch(const FeatureVector* const* rows, size_t n,
                                 double* out, Arena* scratch) const {
  const size_t nf = input_features_.size();
  Arena local;
  Arena* arena = scratch != nullptr ? scratch : &local;
  double* inputs = arena->AllocateArray<double>(n * nf);
  for (size_t i = 0; i < n; ++i) {
    TransformInputsInto(*rows[i], inputs + i * nf);
  }
  // out[i] = per-unit MART output, accumulated per row exactly as the
  // scalar path does (see CompiledForest::PredictBatch).
  mart_.compiled().PredictBatch(inputs, n, nf, out);
  for (size_t i = 0; i < n; ++i) {
    out[i] = std::max(0.0, out[i] * ScaleValue(*rows[i]));
  }
}

double CombinedModel::PredictReference(const FeatureVector& raw) const {
  const double per_unit = mart_.PredictReference(TransformInputs(raw));
  return std::max(0.0, per_unit * ScaleValue(raw));
}

std::vector<double> CombinedModel::OutRatios(const FeatureVector& raw) const {
  std::vector<double> ratios(input_features_.size());
  OutRatiosInto(raw, ratios.data());
  return ratios;
}

size_t CombinedModel::OutRatiosInto(const FeatureVector& raw,
                                    double* out) const {
  double x[kNumFeatures];
  TransformInputsInto(raw, x);
  const size_t n = input_features_.size();
  for (size_t j = 0; j < n; ++j) {
    const double lo = low_[j], hi = high_[j];
    const double span = hi - lo;
    // Paper formula (Section 6.3) with the obvious fix: the out-of-range
    // distance is whichever side the value falls out on (the published
    // formula's "min" would always be 0).
    const double below = std::max(lo - x[j], 0.0);
    const double above = std::max(x[j] - hi, 0.0);
    const double dist = std::max(below, above);
    if (dist <= 0.0) {
      out[j] = 0.0;
    } else if (span > 1e-12) {
      out[j] = dist / span;
    } else {
      // Degenerate envelope (constant feature in training): any deviation is
      // maximally out of range.
      out[j] = dist / std::max(1.0, std::fabs(lo));
    }
  }
  std::sort(out, out + n, std::greater<double>());
  return n;
}

OperatorModelSet OperatorModelSet::Train(OpType op, Resource resource,
                                         const std::vector<FeatureVector>& rows,
                                         const std::vector<double>& targets,
                                         const TrainOptions& options) {
  OperatorModelSet set;
  if (rows.empty()) return set;

  // Model 0: the plain (unscaled) MART model.
  set.models_.push_back(CombinedModel::Train(op, resource, ScaleSpec{}, rows,
                                             targets, options.mart,
                                             options.normalize_dependents));

  if (options.enable_scaling) {
    const std::vector<FeatureId> candidates = ScalableFeatures(op, resource);

    // Single-feature scaled variants.
    for (FeatureId f : candidates) {
      ScaleSpec spec;
      spec.features = {f};
      spec.fns = {DefaultScalingFn(op, resource, f)};
      set.models_.push_back(CombinedModel::Train(op, resource, std::move(spec),
                                                 rows, targets, options.mart,
                                                 options.normalize_dependents));
    }

    if (options.max_scale_features >= 2) {
      // Joint two-input forms (merge join sum, INLJ a*log2(b), ...).
      for (size_t i = 0; i < candidates.size(); ++i) {
        for (size_t j = i + 1; j < candidates.size(); ++j) {
          ScalingFn joint;
          if (!JointScalingFn(op, resource, candidates[i], candidates[j], &joint)) {
            continue;
          }
          ScaleSpec spec;
          spec.features = {candidates[i], candidates[j]};
          spec.joint = true;
          spec.joint_fn = joint;
          set.models_.push_back(CombinedModel::Train(
              op, resource, std::move(spec), rows, targets, options.mart,
              options.normalize_dependents));
        }
      }
      // Sequential count x width pairs: the classic "more tuples AND wider
      // tuples" outlier combination (paper's Index Seek example).
      static const std::pair<FeatureId, FeatureId> kPairs[] = {
          {FeatureId::kCIn0, FeatureId::kSInAvg0},
          {FeatureId::kCOut, FeatureId::kSOutAvg},
          {FeatureId::kTSize, FeatureId::kSOutAvg},
      };
      for (const auto& [a, b] : kPairs) {
        const bool ok =
            std::find(candidates.begin(), candidates.end(), a) != candidates.end() &&
            std::find(candidates.begin(), candidates.end(), b) != candidates.end();
        if (!ok) continue;
        ScaleSpec spec;
        spec.features = {a, b};
        spec.fns = {DefaultScalingFn(op, resource, a),
                    DefaultScalingFn(op, resource, b)};
        set.models_.push_back(CombinedModel::Train(op, resource, std::move(spec),
                                                   rows, targets, options.mart,
                                                   options.normalize_dependents));
      }
    }
  }

  // Default model DMo: minimum training error over all trained models
  // (Section 6.1, "Selecting the Default Models").
  set.default_index_ = 0;
  for (size_t i = 1; i < set.models_.size(); ++i) {
    if (set.models_[i].train_error() <
        set.models_[static_cast<size_t>(set.default_index_)].train_error()) {
      set.default_index_ = static_cast<int>(i);
    }
  }

  // Prune combined models that cannot fit the training data: a scaling
  // feature whose per-unit targets are not learnable (e.g. scaling a join by
  // COUT when cost is input-driven) produces wild extrapolations. This
  // mirrors the paper's Section 6.2 selection, which only admits scaling
  // functions that fit the observed resource curves well. The unscaled model
  // is always kept as the in-range workhorse.
  {
    const double best_err =
        set.models_[static_cast<size_t>(set.default_index_)].train_error();
    const double threshold = 3.0 * best_err + 0.05;
    std::vector<CombinedModel> kept;
    int new_default = 0;
    for (size_t i = 0; i < set.models_.size(); ++i) {
      const bool is_default = static_cast<int>(i) == set.default_index_;
      const bool is_base = (i == 0);
      if (!is_default && !is_base && set.models_[i].train_error() > threshold) {
        continue;
      }
      if (is_default) new_default = static_cast<int>(kept.size());
      kept.push_back(std::move(set.models_[i]));
    }
    set.models_ = std::move(kept);
    set.default_index_ = new_default;
  }
  return set;
}

const CombinedModel* OperatorModelSet::Select(const FeatureVector& raw) const {
  if (models_.empty()) return nullptr;
  const CombinedModel& dm = default_model();
  // Ratio buffers live on the stack (a model never has more than
  // kNumFeatures inputs; +1 for the empty-ratios pad below): Select runs per
  // model per row on the serving hot path and must not touch the heap.
  double dm_ratios[kNumFeatures + 1];
  const size_t dm_n = dm.OutRatiosInto(raw, dm_ratios);
  if (dm_n == 0 || dm_ratios[0] <= 0.0) return &dm;

  // Pick the model minimizing the max out_ratio; break ties by fewer scale
  // features, then by the remaining ratios in descending order (Section 6.3).
  const CombinedModel* best = nullptr;
  double best_ratios[kNumFeatures + 1];
  size_t best_n = 0;
  for (const auto& m : models_) {
    double r[kNumFeatures + 1];
    size_t rn = m.OutRatiosInto(raw, r);
    if (rn == 0) r[rn++] = 0.0;
    if (best == nullptr) {
      best = &m;
      std::copy(r, r + rn, best_ratios);
      best_n = rn;
      continue;
    }
    constexpr double kEps = 1e-12;
    bool better = false;
    if (r[0] < best_ratios[0] - kEps) {
      better = true;
    } else if (r[0] <= best_ratios[0] + kEps) {
      if (m.NumScaleFeatures() < best->NumScaleFeatures()) {
        better = true;
      } else if (m.NumScaleFeatures() == best->NumScaleFeatures()) {
        // Lexicographic comparison of the remaining sorted ratios.
        const size_t n = std::min(rn, best_n);
        for (size_t k = 1; k < n; ++k) {
          if (r[k] < best_ratios[k] - kEps) {
            better = true;
            break;
          }
          if (r[k] > best_ratios[k] + kEps) break;
        }
      }
    }
    if (better) {
      best = &m;
      std::copy(r, r + rn, best_ratios);
      best_n = rn;
    }
  }
  return best;
}

double OperatorModelSet::Predict(const FeatureVector& raw) const {
  const CombinedModel* m = Select(raw);
  return m == nullptr ? 0.0 : m->Predict(raw);
}

void OperatorModelSet::PredictBatch(const FeatureVector* const* rows, size_t n,
                                    double* out, Arena* scratch) const {
  if (models_.empty()) {
    for (size_t i = 0; i < n; ++i) out[i] = 0.0;
    return;
  }
  Arena local;
  Arena* arena = scratch != nullptr ? scratch : &local;
  // Group rows by the model Section 6.3 selects for them via a counting
  // sort (stable: ascending model index, original order within a group —
  // the same order the old per-model index lists produced); each group then
  // runs through its model's compiled forest in one tree-outer sweep.
  const size_t num_models = models_.size();
  uint32_t* sel = arena->AllocateArray<uint32_t>(n);
  size_t* offset = arena->AllocateArray<size_t>(num_models + 1);
  for (size_t g = 0; g <= num_models; ++g) offset[g] = 0;
  for (size_t i = 0; i < n; ++i) {
    const CombinedModel* m = Select(*rows[i]);
    sel[i] = static_cast<uint32_t>(m - models_.data());
    ++offset[sel[i] + 1];
  }
  for (size_t g = 1; g <= num_models; ++g) offset[g] += offset[g - 1];
  const FeatureVector** group_rows =
      arena->AllocateArray<const FeatureVector*>(n);
  uint32_t* order = arena->AllocateArray<uint32_t>(n);
  size_t* cursor = arena->AllocateArray<size_t>(num_models);
  for (size_t g = 0; g < num_models; ++g) cursor[g] = offset[g];
  for (size_t i = 0; i < n; ++i) {
    const size_t pos = cursor[sel[i]]++;
    group_rows[pos] = rows[i];
    order[pos] = static_cast<uint32_t>(i);
  }
  double* group_out = arena->AllocateArray<double>(n);
  for (size_t g = 0; g < num_models; ++g) {
    const size_t begin = offset[g], end = offset[g + 1];
    if (begin == end) continue;
    models_[g].PredictBatch(group_rows + begin, end - begin, group_out + begin,
                            arena);
    for (size_t p = begin; p < end; ++p) out[order[p]] = group_out[p];
  }
}

size_t OperatorModelSet::SerializedBytes() const {
  size_t total = 0;
  for (const auto& m : models_) total += m.SerializedBytes();
  return total;
}

void CombinedModel::SerializeTo(ByteWriter* w) const {
  w->Pod(static_cast<int32_t>(op_));
  w->Pod(static_cast<int32_t>(resource_));
  w->Pod(static_cast<uint8_t>(normalize_dependents_ ? 1 : 0));
  // ScaleSpec.
  std::vector<int32_t> feats, fns;
  for (FeatureId f : spec_.features) feats.push_back(static_cast<int32_t>(f));
  for (ScalingFn f : spec_.fns) fns.push_back(static_cast<int32_t>(f));
  w->PodVector(feats);
  w->PodVector(fns);
  w->Pod(static_cast<uint8_t>(spec_.joint ? 1 : 0));
  w->Pod(static_cast<int32_t>(spec_.joint_fn));
  // Inputs + envelope + error.
  std::vector<int32_t> inputs;
  for (FeatureId f : input_features_) inputs.push_back(static_cast<int32_t>(f));
  w->PodVector(inputs);
  w->PodVector(low_);
  w->PodVector(high_);
  w->F64(train_error_);
  w->Bytes(mart_.Serialize());
}

bool CombinedModel::DeserializeFrom(ByteReader* r, CombinedModel* out) {
  int32_t op = 0, resource = 0, joint_fn = 0;
  uint8_t norm = 0, joint = 0;
  std::vector<int32_t> feats, fns, inputs;
  std::vector<uint8_t> mart_bytes;
  if (!r->Pod(&op) || !r->Pod(&resource) || !r->Pod(&norm) ||
      !r->PodVector(&feats) || !r->PodVector(&fns) || !r->Pod(&joint) ||
      !r->Pod(&joint_fn) || !r->PodVector(&inputs) || !r->PodVector(&out->low_) ||
      !r->PodVector(&out->high_) || !r->F64(&out->train_error_) ||
      !r->Bytes(&mart_bytes)) {
    return false;
  }
  // Feature ids index FeatureVector slots (and, via TransformInputsInto, a
  // kNumFeatures-sized stack buffer); reject a corrupt store rather than
  // read — or write — out of bounds at predict time.
  const auto valid_feature_ids = [](const std::vector<int32_t>& ids) {
    for (int32_t f : ids) {
      if (f < 0 || f >= kNumFeatures) return false;
    }
    return true;
  };
  if (inputs.size() > static_cast<size_t>(kNumFeatures) ||
      !valid_feature_ids(inputs) || feats.size() > 2 ||
      !valid_feature_ids(feats) || (joint != 0 && feats.size() != 2) ||
      (joint == 0 && fns.size() != feats.size())) {
    return false;
  }
  out->op_ = static_cast<OpType>(op);
  out->resource_ = static_cast<Resource>(resource);
  out->normalize_dependents_ = (norm != 0);
  out->spec_.features.clear();
  for (int32_t f : feats) out->spec_.features.push_back(static_cast<FeatureId>(f));
  out->spec_.fns.clear();
  for (int32_t f : fns) out->spec_.fns.push_back(static_cast<ScalingFn>(f));
  out->spec_.joint = (joint != 0);
  out->spec_.joint_fn = static_cast<ScalingFn>(joint_fn);
  out->input_features_.clear();
  for (int32_t f : inputs) out->input_features_.push_back(static_cast<FeatureId>(f));
  if (!out->mart_.Deserialize(mart_bytes)) return false;
  // The mart blob cannot validate its feature indices in isolation (it does
  // not know the input width); here the width is known, so reject corrupt
  // stores whose splits would read past a transformed-input row at predict
  // time.
  return out->mart_.compiled().NumFeaturesReferenced() <=
         out->input_features_.size();
}

void OperatorModelSet::SerializeTo(ByteWriter* w) const {
  w->U32(static_cast<uint32_t>(models_.size()));
  w->Pod(static_cast<int32_t>(default_index_));
  for (const auto& m : models_) m.SerializeTo(w);
}

bool OperatorModelSet::DeserializeFrom(ByteReader* r, OperatorModelSet* out) {
  uint32_t n = 0;
  int32_t default_index = 0;
  if (!r->U32(&n) || !r->Pod(&default_index)) return false;
  out->models_.clear();
  out->models_.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    CombinedModel m;
    if (!CombinedModel::DeserializeFrom(r, &m)) return false;
    out->models_.push_back(std::move(m));
  }
  if (default_index < 0 || (n > 0 && default_index >= static_cast<int32_t>(n))) {
    return false;
  }
  out->default_index_ = default_index;
  return true;
}

}  // namespace resest
