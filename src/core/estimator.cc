#include "src/core/estimator.h"

#include <algorithm>
#include <cstdio>
#include <future>
#include <sstream>
#include <thread>

#include "src/common/serial.h"
#include "src/common/thread_pool.h"

namespace resest {

namespace {
/// Visits every (node, parent) pair in a plan.
template <typename Fn>
void VisitWithParent(const PlanNode* node, const PlanNode* parent, Fn&& fn) {
  fn(node, parent);
  for (const auto& c : node->children) {
    VisitWithParent(c.get(), node, fn);
  }
}
}  // namespace

ResourceEstimator ResourceEstimator::Train(
    const std::vector<ExecutedQuery>& workload, const TrainOptions& options) {
  ResourceEstimator est;
  est.options_ = options;

  // Collect per-operator observations across the workload.
  std::array<std::vector<FeatureVector>, kNumOpTypes> rows;
  std::array<std::array<std::vector<double>, kNumResources>, kNumOpTypes>
      targets;
  for (const auto& eq : workload) {
    if (!eq.plan.root || eq.database == nullptr) continue;
    VisitWithParent(eq.plan.root.get(), nullptr,
                    [&](const PlanNode* node, const PlanNode* parent) {
                      const int op = static_cast<int>(node->type);
                      rows[static_cast<size_t>(op)].push_back(ExtractFeatures(
                          *node, parent, *eq.database, options.mode));
                      targets[static_cast<size_t>(op)][0].push_back(
                          node->actual.cpu);
                      targets[static_cast<size_t>(op)][1].push_back(
                          static_cast<double>(node->actual.logical_io));
                    });
  }

  OperatorModelSet::TrainOptions set_options;
  set_options.mart = options.mart;
  set_options.enable_scaling = options.enable_scaling;
  set_options.normalize_dependents = options.normalize_dependents;
  set_options.max_scale_features = options.max_scale_features;

  // The per-(operator, resource) fits are mutually independent: each reads
  // only its own rows/targets and writes only its own slot, and MART is
  // seeded, so fanning them out over a pool reproduces the serial result
  // exactly for any thread count.
  size_t train_threads = options.train_threads;
  if (train_threads == 0) {
    train_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  std::vector<std::pair<int, int>> to_fit;
  for (int op = 0; op < kNumOpTypes; ++op) {
    for (int r = 0; r < kNumResources; ++r) {
      const auto& y = targets[static_cast<size_t>(op)][static_cast<size_t>(r)];
      double mean = 0.0;
      for (double v : y) mean += v;
      est.fallback_mean_[static_cast<size_t>(op)][static_cast<size_t>(r)] =
          y.empty() ? 0.0 : mean / static_cast<double>(y.size());
      if (rows[static_cast<size_t>(op)].size() <
          options.min_rows_per_operator) {
        continue;  // fallback mean only
      }
      to_fit.emplace_back(op, r);
    }
  }

  auto fit_one = [&](int op, int r) {
    est.models_[static_cast<size_t>(op)][static_cast<size_t>(r)] =
        std::make_shared<const OperatorModelSet>(OperatorModelSet::Train(
            static_cast<OpType>(op), static_cast<Resource>(r),
            rows[static_cast<size_t>(op)],
            targets[static_cast<size_t>(op)][static_cast<size_t>(r)],
            set_options));
  };

  if (train_threads <= 1 || to_fit.size() <= 1) {
    for (const auto& [op, r] : to_fit) fit_one(op, r);
  } else {
    ThreadPool pool(std::min(train_threads, to_fit.size()));
    std::vector<std::future<void>> fits;
    fits.reserve(to_fit.size());
    for (const auto& fit : to_fit) {
      // Structured bindings are not capturable in C++17; name them first.
      const int op = fit.first;
      const int r = fit.second;
      fits.push_back(pool.Submit([&fit_one, op, r]() { fit_one(op, r); }));
    }
    for (auto& f : fits) f.get();
  }
  return est;
}

const OperatorModelSet* ResourceEstimator::ModelsFor(OpType op,
                                                     Resource resource) const {
  const auto& set =
      models_[static_cast<size_t>(op)][static_cast<size_t>(resource)];
  return (set == nullptr || set->empty()) ? nullptr : set.get();
}

void ResourceEstimator::ReplaceModelSet(
    OpType op, Resource resource, std::shared_ptr<const OperatorModelSet> set,
    double fallback_mean) {
  models_[static_cast<size_t>(op)][static_cast<size_t>(resource)] =
      std::move(set);
  fallback_mean_[static_cast<size_t>(op)][static_cast<size_t>(resource)] =
      fallback_mean;
}

double ResourceEstimator::EstimateOperator(const PlanNode& node,
                                           const PlanNode* parent,
                                           const Database& db,
                                           Resource resource) const {
  const OperatorModelSet* set = ModelsFor(node.type, resource);
  if (set == nullptr) {
    return fallback_mean_[static_cast<size_t>(node.type)]
                         [static_cast<size_t>(resource)];
  }
  const FeatureVector v = ExtractFeatures(node, parent, db, options_.mode);
  return set->Predict(v);
}

double ResourceEstimator::EstimateFromFeatures(OpType op,
                                               const FeatureVector& features,
                                               Resource resource) const {
  const OperatorModelSet* set = ModelsFor(op, resource);
  if (set == nullptr) {
    return fallback_mean_[static_cast<size_t>(op)]
                         [static_cast<size_t>(resource)];
  }
  return set->Predict(features);
}

void ResourceEstimator::EstimateBatchFromFeatures(
    OpType op, const FeatureVector* const* features, size_t n,
    Resource resource, double* out, Arena* scratch) const {
  const OperatorModelSet* set = ModelsFor(op, resource);
  if (set == nullptr) {
    const double mean =
        fallback_mean_[static_cast<size_t>(op)][static_cast<size_t>(resource)];
    for (size_t i = 0; i < n; ++i) out[i] = mean;
    return;
  }
  set->PredictBatch(features, n, out, scratch);
}

double ResourceEstimator::EstimateQuery(const Plan& plan, const Database& db,
                                        Resource resource) const {
  double total = 0.0;
  if (!plan.root) return 0.0;
  VisitWithParent(plan.root.get(), nullptr,
                  [&](const PlanNode* node, const PlanNode* parent) {
                    total += EstimateOperator(*node, parent, db, resource);
                  });
  return total;
}

std::vector<double> ResourceEstimator::EstimatePipelines(
    const Plan& plan, const Database& db, Resource resource) const {
  // Build a parent map once so per-node estimation sees OUTPUTUSAGE.
  std::vector<std::pair<const PlanNode*, const PlanNode*>> parents;
  if (plan.root) {
    VisitWithParent(plan.root.get(), nullptr,
                    [&](const PlanNode* n, const PlanNode* p) {
                      parents.emplace_back(n, p);
                    });
  }
  auto parent_of = [&](const PlanNode* n) -> const PlanNode* {
    for (const auto& [node, parent] : parents) {
      if (node == n) return parent;
    }
    return nullptr;
  };

  std::vector<double> out;
  for (const Pipeline& p : DecomposePipelines(plan)) {
    double total = 0.0;
    for (const PlanNode* n : p.nodes) {
      total += EstimateOperator(*n, parent_of(n), db, resource);
    }
    out.push_back(total);
  }
  return out;
}

void VisitPlanOperators(
    const Plan& plan,
    const std::function<void(const PlanNode&, const PlanNode*)>& fn) {
  if (!plan.root) return;
  VisitWithParent(plan.root.get(), nullptr,
                  [&fn](const PlanNode* node, const PlanNode* parent) {
                    fn(*node, parent);
                  });
}

size_t ResourceEstimator::SerializedBytes() const {
  size_t total = 0;
  for (const auto& per_op : models_) {
    for (const auto& set : per_op) {
      if (set != nullptr) total += set->SerializedBytes();
    }
  }
  return total;
}

namespace {
constexpr uint32_t kStoreMagic = 0x52455354;  // "REST"
// v2: Mart tree blobs widened (uint16 node count, int16 child/feature
// indices) so the kMaxTreeNodes guard is enforceable; v1 stores no longer
// load.
constexpr uint32_t kStoreVersion = 2;
}  // namespace

std::vector<uint8_t> ResourceEstimator::Serialize() const {
  std::vector<uint8_t> out;
  ByteWriter w(&out);
  w.U32(kStoreMagic);
  w.U32(kStoreVersion);
  w.Pod(static_cast<int32_t>(options_.mode));
  w.Pod(static_cast<uint8_t>(options_.enable_scaling ? 1 : 0));
  w.Pod(static_cast<uint8_t>(options_.normalize_dependents ? 1 : 0));
  w.Pod(static_cast<int32_t>(options_.max_scale_features));
  for (int op = 0; op < kNumOpTypes; ++op) {
    for (int r = 0; r < kNumResources; ++r) {
      w.F64(fallback_mean_[static_cast<size_t>(op)][static_cast<size_t>(r)]);
      const OperatorModelSet* set =
          ModelsFor(static_cast<OpType>(op), static_cast<Resource>(r));
      w.Pod(static_cast<uint8_t>(set == nullptr ? 0 : 1));
      if (set != nullptr) set->SerializeTo(&w);
    }
  }
  return out;
}

bool ResourceEstimator::Deserialize(const std::vector<uint8_t>& bytes) {
  ByteReader r(bytes);
  uint32_t magic = 0, version = 0;
  int32_t mode = 0, max_scale = 0;
  uint8_t scaling = 0, norm = 0;
  if (!r.U32(&magic) || magic != kStoreMagic) return false;
  if (!r.U32(&version) || version != kStoreVersion) return false;
  if (!r.Pod(&mode) || !r.Pod(&scaling) || !r.Pod(&norm) ||
      !r.Pod(&max_scale)) {
    return false;
  }
  options_.mode = static_cast<FeatureMode>(mode);
  options_.enable_scaling = (scaling != 0);
  options_.normalize_dependents = (norm != 0);
  options_.max_scale_features = max_scale;
  for (int op = 0; op < kNumOpTypes; ++op) {
    for (int res = 0; res < kNumResources; ++res) {
      uint8_t present = 0;
      if (!r.F64(&fallback_mean_[static_cast<size_t>(op)]
                                [static_cast<size_t>(res)]) ||
          !r.Pod(&present)) {
        return false;
      }
      auto& set = models_[static_cast<size_t>(op)][static_cast<size_t>(res)];
      set = nullptr;
      if (present != 0) {
        auto loaded = std::make_shared<OperatorModelSet>();
        if (!OperatorModelSet::DeserializeFrom(&r, loaded.get())) return false;
        set = std::move(loaded);
      }
    }
  }
  return r.AtEnd();
}

bool ResourceEstimator::SaveToFile(const std::string& path) const {
  return WriteFileAtomic(path, Serialize());
}

bool ResourceEstimator::LoadFromFile(const std::string& path) {
  std::vector<uint8_t> bytes;
  return ReadFileBytes(path, &bytes) && Deserialize(bytes);
}

std::string ResourceEstimator::ExplainOperator(const PlanNode& node,
                                               const PlanNode* parent,
                                               const Database& db,
                                               Resource resource) const {
  std::ostringstream out;
  out << OpTypeName(node.type) << " [" << ResourceName(resource) << "]";
  const OperatorModelSet* set = ModelsFor(node.type, resource);
  if (set == nullptr) {
    out << " -> fallback mean "
        << fallback_mean_[static_cast<size_t>(node.type)]
                         [static_cast<size_t>(resource)]
        << " (no model trained)\n";
    return out.str();
  }
  const FeatureVector v = ExtractFeatures(node, parent, db, options_.mode);
  const CombinedModel* chosen = set->Select(v);
  out << " -> model " << chosen->spec().ToString();
  const auto ratios = chosen->OutRatios(v);
  out << ", max out_ratio " << (ratios.empty() ? 0.0 : ratios[0]);
  if (chosen == &set->default_model()) out << " (default model DMo)";
  out << ", estimate " << chosen->Predict(v) << "\n";
  out << "  features:";
  for (FeatureId f : OperatorFeatures(node.type)) {
    out << " " << FeatureName(f) << "=" << v[static_cast<size_t>(f)];
  }
  out << "\n";
  return out.str();
}

std::string ResourceEstimator::ExplainQuery(const Plan& plan,
                                            const Database& db,
                                            Resource resource) const {
  std::ostringstream out;
  if (plan.root) {
    VisitWithParent(plan.root.get(), nullptr,
                    [&](const PlanNode* n, const PlanNode* p) {
                      out << ExplainOperator(*n, p, db, resource);
                    });
  }
  return out.str();
}

}  // namespace resest
