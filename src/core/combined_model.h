// Combined models (paper Section 6.1): a MART model trained on per-unit
// targets plus scaling function(s), with dependent-feature normalization,
// and the out_ratio-based online model selection of Section 6.3.
#ifndef RESEST_CORE_COMBINED_MODEL_H_
#define RESEST_CORE_COMBINED_MODEL_H_

#include <string>
#include <vector>

#include "src/common/arena.h"
#include "src/common/serial.h"
#include "src/core/features.h"
#include "src/core/scaling.h"
#include "src/ml/mart.h"

namespace resest {

/// How a combined model scales: zero, one or two scale features, either with
/// per-feature functional forms composed sequentially or a joint two-input
/// form (paper "Multi-feature Scaling" / "Scaling by Multiple Features").
struct ScaleSpec {
  std::vector<FeatureId> features;  ///< 0..2 scale features.
  std::vector<ScalingFn> fns;       ///< Per-feature forms (unless joint).
  bool joint = false;               ///< Two-input form over features[0..1].
  ScalingFn joint_fn = ScalingFn::kSum;

  bool IsDefaultShape() const { return features.empty(); }
  std::string ToString() const;
};

/// One trained model: MART over (normalized, scale-feature-free) inputs;
/// prediction = g(scale features) x MART output.
class CombinedModel {
 public:
  /// Trains on raw per-operator observations.
  /// @param normalize_dependents  Paper Section 6.1 step (3); disable for
  ///                              the ablation study.
  static CombinedModel Train(OpType op, Resource resource, ScaleSpec spec,
                             const std::vector<FeatureVector>& rows,
                             const std::vector<double>& targets,
                             const MartParams& mart_params,
                             bool normalize_dependents);

  /// Estimated resource usage for an operator's raw feature vector.
  double Predict(const FeatureVector& raw) const;

  /// Batched prediction: out[i] is bit-identical to Predict(*rows[i]). The
  /// transformed inputs of all rows are packed into one matrix and swept
  /// through the compiled forest tree-by-tree (see CompiledForest). The
  /// packing matrix comes from `scratch` when given (zero heap allocations;
  /// the serving layer passes its per-thread chunk arena) and from a
  /// transient local arena otherwise.
  void PredictBatch(const FeatureVector* const* rows, size_t n, double* out,
                    Arena* scratch = nullptr) const;

  /// Reference oracle for tests: Predict computed through the legacy
  /// per-tree scalar walk (Mart::PredictReference) instead of the compiled
  /// forest. Production code must use Predict/PredictBatch.
  double PredictReference(const FeatureVector& raw) const;

  /// out_ratio values (paper Section 6.3) of every model input feature for
  /// this raw vector, sorted descending. All-zero means the vector lies
  /// within the training envelope of this model.
  std::vector<double> OutRatios(const FeatureVector& raw) const;

  /// Allocation-free flavor: writes the sorted ratios into `out` (callers
  /// size it kNumFeatures — input features never exceed that) and returns
  /// how many were written. Select() runs this per model per row on the
  /// serving hot path.
  size_t OutRatiosInto(const FeatureVector& raw, double* out) const;

  /// Mean relative training error (used to pick the default model).
  double train_error() const { return train_error_; }
  const ScaleSpec& spec() const { return spec_; }
  int NumScaleFeatures() const { return static_cast<int>(spec_.features.size()); }
  const std::vector<FeatureId>& input_features() const { return input_features_; }

  /// Serialized size in bytes (paper Section 7.3 accounting).
  size_t SerializedBytes() const { return mart_.Serialize().size(); }

  /// Binary (de)serialization for the model store.
  void SerializeTo(ByteWriter* w) const;
  static bool DeserializeFrom(ByteReader* r, CombinedModel* out);

 private:
  /// Scale factor g(raw) of this spec.
  double ScaleValue(const FeatureVector& raw) const;
  /// Model inputs after dependent-feature normalization & scale-feature
  /// removal.
  std::vector<double> TransformInputs(const FeatureVector& raw) const;
  /// Allocation-free flavor: writes input_features().size() doubles into
  /// `out` (callers use a kNumFeatures-sized stack buffer or matrix row).
  void TransformInputsInto(const FeatureVector& raw, double* out) const;

  OpType op_ = OpType::kTableScan;
  Resource resource_ = Resource::kCpu;
  ScaleSpec spec_;
  bool normalize_dependents_ = true;
  std::vector<FeatureId> input_features_;
  Mart mart_;
  std::vector<double> low_;   ///< Training minima per input feature.
  std::vector<double> high_;  ///< Training maxima per input feature.
  double train_error_ = 0.0;
};

/// All models for one (operator type, resource): the default model DMo plus
/// the scaled variants, with Section 6.3 online selection.
class OperatorModelSet {
 public:
  struct TrainOptions {
    MartParams mart;
    bool enable_scaling = true;
    bool normalize_dependents = true;
    int max_scale_features = 2;
  };

  static OperatorModelSet Train(OpType op, Resource resource,
                                const std::vector<FeatureVector>& rows,
                                const std::vector<double>& targets,
                                const TrainOptions& options);

  /// Selects the model per Section 6.3 and predicts.
  double Predict(const FeatureVector& raw) const;

  /// Batched flavor: out[i] is bit-identical to Predict(*rows[i]). Rows are
  /// grouped by the model Section 6.3 selects for them (a counting sort,
  /// stable within each group), and each group runs through that model's
  /// compiled forest in one sweep. All grouping scratch comes from `scratch`
  /// when given (zero heap allocations) and a transient local arena
  /// otherwise.
  void PredictBatch(const FeatureVector* const* rows, size_t n, double* out,
                    Arena* scratch = nullptr) const;

  /// The model Section 6.3 selects for this feature vector.
  const CombinedModel* Select(const FeatureVector& raw) const;

  size_t NumModels() const { return models_.size(); }
  const CombinedModel& model(size_t i) const { return models_[i]; }
  const CombinedModel& default_model() const {
    return models_[static_cast<size_t>(default_index_)];
  }
  size_t SerializedBytes() const;
  bool empty() const { return models_.empty(); }

  /// Binary (de)serialization for the model store.
  void SerializeTo(ByteWriter* w) const;
  static bool DeserializeFrom(ByteReader* r, OperatorModelSet* out);

 private:
  std::vector<CombinedModel> models_;
  int default_index_ = 0;
};

}  // namespace resest

#endif  // RESEST_CORE_COMBINED_MODEL_H_
