#include "src/core/features.h"

#include <algorithm>
#include <cctype>
#include <cstring>

#include "src/storage/catalog.h"

namespace resest {

const char* ResourceName(Resource r) {
  return r == Resource::kCpu ? "CPU" : "IO";
}

bool ParseResource(const std::string& name, Resource* out) {
  std::string upper = name;
  std::transform(upper.begin(), upper.end(), upper.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  for (int i = 0; i < kNumResources; ++i) {
    const Resource r = static_cast<Resource>(i);
    if (upper == ResourceName(r)) {
      *out = r;
      return true;
    }
  }
  return false;
}

const char* FeatureName(FeatureId f) {
  switch (f) {
    case FeatureId::kCOut: return "COUT";
    case FeatureId::kSOutAvg: return "SOUTAVG";
    case FeatureId::kSOutTot: return "SOUTTOT";
    case FeatureId::kCIn0: return "CIN";
    case FeatureId::kSInAvg0: return "SINAVG";
    case FeatureId::kSInTot0: return "SINTOT";
    case FeatureId::kCIn1: return "CIN2";
    case FeatureId::kSInAvg1: return "SINAVG2";
    case FeatureId::kSInTot1: return "SINTOT2";
    case FeatureId::kOutputUsage: return "OUTPUTUSAGE";
    case FeatureId::kTSize: return "TSIZE";
    case FeatureId::kPages: return "PAGES";
    case FeatureId::kTColumns: return "TCOLUMNS";
    case FeatureId::kEstIoCost: return "ESTIOCOST";
    case FeatureId::kIndexDepth: return "INDEXDEPTH";
    case FeatureId::kHashOpAvg: return "HASHOPAVG";
    case FeatureId::kHashOpTot: return "HASHOPTOT";
    case FeatureId::kCHashCol: return "CHASHCOL";
    case FeatureId::kCInnerCol: return "CINNERCOL";
    case FeatureId::kCOuterCol: return "COUTERCOL";
    case FeatureId::kSSeekTable: return "SSEEKTABLE";
    case FeatureId::kMinComp: return "MINCOMP";
    case FeatureId::kCSortCol: return "CSORTCOL";
    case FeatureId::kSInSum: return "SINSUM";
    case FeatureId::kNumFeatures: break;
  }
  return "?";
}

uint64_t HashFeatureVector(const FeatureVector& v) {
  // FNV-1a over the 8-byte bit pattern of each slot.
  uint64_t h = 1469598103934665603ull;
  for (double d : v) {
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(d), "double must be 64-bit");
    std::memcpy(&bits, &d, sizeof(bits));
    for (int i = 0; i < 8; ++i) {
      h ^= (bits >> (8 * i)) & 0xffu;
      h *= 1099511628211ull;
    }
  }
  return h;
}

bool FeatureVectorHashEqual(const FeatureVector& a, const FeatureVector& b) {
  return std::memcmp(a.data(), b.data(), sizeof(double) * a.size()) == 0;
}

namespace {

using F = FeatureId;

const std::vector<FeatureId> kScanFeatures = {
    F::kCOut, F::kSOutAvg, F::kSOutTot, F::kOutputUsage,
    F::kTSize, F::kPages, F::kTColumns, F::kEstIoCost};
const std::vector<FeatureId> kSeekFeatures = {
    F::kCOut, F::kSOutAvg, F::kSOutTot, F::kOutputUsage,
    F::kTSize, F::kPages, F::kTColumns, F::kEstIoCost, F::kIndexDepth};
const std::vector<FeatureId> kFilterFeatures = {
    F::kCOut, F::kSOutAvg, F::kSOutTot, F::kCIn0, F::kSInAvg0, F::kSInTot0,
    F::kOutputUsage};
const std::vector<FeatureId> kSortFeatures = {
    F::kCOut, F::kSOutAvg, F::kSOutTot, F::kCIn0, F::kSInAvg0, F::kSInTot0,
    F::kOutputUsage, F::kMinComp, F::kCSortCol};
const std::vector<FeatureId> kTopFeatures = {
    F::kCOut, F::kSOutAvg, F::kSOutTot, F::kCIn0, F::kSInAvg0, F::kSInTot0,
    F::kOutputUsage};
const std::vector<FeatureId> kHashJoinFeatures = {
    F::kCOut, F::kSOutAvg, F::kSOutTot, F::kCIn0, F::kSInAvg0, F::kSInTot0,
    F::kCIn1, F::kSInAvg1, F::kSInTot1, F::kOutputUsage,
    F::kHashOpAvg, F::kHashOpTot, F::kCInnerCol, F::kCOuterCol};
const std::vector<FeatureId> kMergeJoinFeatures = {
    F::kCOut, F::kSOutAvg, F::kSOutTot, F::kCIn0, F::kSInAvg0, F::kSInTot0,
    F::kCIn1, F::kSInAvg1, F::kSInTot1, F::kOutputUsage,
    F::kCInnerCol, F::kCOuterCol, F::kSInSum};
const std::vector<FeatureId> kNestedLoopFeatures = {
    F::kCOut, F::kSOutAvg, F::kSOutTot, F::kCIn0, F::kSInAvg0, F::kSInTot0,
    F::kCIn1, F::kSInAvg1, F::kSInTot1, F::kOutputUsage,
    F::kCInnerCol, F::kCOuterCol, F::kSSeekTable};
const std::vector<FeatureId> kInljFeatures = {
    F::kCOut, F::kSOutAvg, F::kSOutTot, F::kCIn0, F::kSInAvg0, F::kSInTot0,
    F::kOutputUsage, F::kCInnerCol, F::kCOuterCol, F::kSSeekTable,
    F::kIndexDepth};
const std::vector<FeatureId> kHashAggFeatures = {
    F::kCOut, F::kSOutAvg, F::kSOutTot, F::kCIn0, F::kSInAvg0, F::kSInTot0,
    F::kOutputUsage, F::kHashOpAvg, F::kHashOpTot, F::kCHashCol};
const std::vector<FeatureId> kStreamAggFeatures = {
    F::kCOut, F::kSOutAvg, F::kSOutTot, F::kCIn0, F::kSInAvg0, F::kSInTot0,
    F::kOutputUsage, F::kCHashCol};
const std::vector<FeatureId> kComputeScalarFeatures = {
    F::kCOut, F::kSOutAvg, F::kSOutTot, F::kCIn0, F::kSInAvg0, F::kSInTot0,
    F::kOutputUsage};

}  // namespace

const std::vector<FeatureId>& OperatorFeatures(OpType op) {
  switch (op) {
    case OpType::kTableScan: return kScanFeatures;
    case OpType::kIndexSeek: return kSeekFeatures;
    case OpType::kFilter: return kFilterFeatures;
    case OpType::kSort: return kSortFeatures;
    case OpType::kTop: return kTopFeatures;
    case OpType::kHashJoin: return kHashJoinFeatures;
    case OpType::kMergeJoin: return kMergeJoinFeatures;
    case OpType::kNestedLoopJoin: return kNestedLoopFeatures;
    case OpType::kIndexNestedLoopJoin: return kInljFeatures;
    case OpType::kHashAggregate: return kHashAggFeatures;
    case OpType::kStreamAggregate: return kStreamAggFeatures;
    case OpType::kComputeScalar: return kComputeScalarFeatures;
  }
  return kScanFeatures;
}

std::vector<FeatureId> ScalableFeatures(OpType op, Resource resource) {
  // Candidates: numeric features with a monotonic relationship to resource
  // usage. OUTPUTUSAGE (categorical) is never a candidate; column-count
  // features and index depth are structural and never scaled directly.
  static const std::vector<FeatureId> kNever = {
      F::kOutputUsage, F::kTColumns, F::kCInnerCol, F::kCOuterCol,
      F::kCSortCol, F::kCHashCol, F::kIndexDepth};
  // For I/O, second-order CPU-ish features are additionally excluded
  // (paper Section 6.2, "Non-scaling Features").
  static const std::vector<FeatureId> kNeverIo = {
      F::kHashOpAvg, F::kHashOpTot, F::kMinComp};

  std::vector<FeatureId> out;
  for (FeatureId f : OperatorFeatures(op)) {
    if (std::find(kNever.begin(), kNever.end(), f) != kNever.end()) continue;
    if (resource == Resource::kIo &&
        std::find(kNeverIo.begin(), kNeverIo.end(), f) != kNeverIo.end()) {
      continue;
    }
    out.push_back(f);
  }
  return out;
}

FeatureVector ExtractFeatures(const PlanNode& node, const PlanNode* parent,
                              const Database& db, FeatureMode mode) {
  FeatureVector v{};
  v.fill(0.0);

  const bool exact = (mode == FeatureMode::kExact);
  const double rows_out = exact ? static_cast<double>(node.actual.rows_out)
                                : node.est.rows_out;
  const double bytes_out = exact ? node.actual.bytes_out : node.est.bytes_out;
  auto rows_in = [&](int i) {
    return exact ? static_cast<double>(node.actual.rows_in[i])
                 : node.est.rows_in[i];
  };
  auto bytes_in = [&](int i) {
    return exact ? node.actual.bytes_in[i] : node.est.bytes_in[i];
  };

  auto set = [&v](FeatureId f, double val) {
    v[static_cast<size_t>(f)] = val;
  };

  set(F::kCOut, rows_out);
  set(F::kSOutAvg, rows_out > 0 ? bytes_out / rows_out : 0.0);
  set(F::kSOutTot, bytes_out);
  set(F::kOutputUsage,
      parent == nullptr ? -1.0 : static_cast<double>(parent->type));

  const size_t children = node.num_children();
  // IndexNestedLoopJoin has one plan child but two logical inputs (the
  // executor fills rows_in[1] with the inner table volume).
  const bool has_input1 =
      children >= 2 || node.type == OpType::kIndexNestedLoopJoin;
  if (children >= 1 || node.type == OpType::kTableScan ||
      node.type == OpType::kIndexSeek) {
    set(F::kCIn0, rows_in(0));
    set(F::kSInAvg0, rows_in(0) > 0 ? bytes_in(0) / rows_in(0) : 0.0);
    set(F::kSInTot0, bytes_in(0));
  }
  if (has_input1) {
    set(F::kCIn1, rows_in(1));
    set(F::kSInAvg1, rows_in(1) > 0 ? bytes_in(1) / rows_in(1) : 0.0);
    set(F::kSInTot1, bytes_in(1));
  }

  // Operator-specific features from the catalog and plan shape.
  switch (node.type) {
    case OpType::kTableScan:
    case OpType::kIndexSeek: {
      const Table* t = db.FindTable(node.table);
      if (t != nullptr) {
        set(F::kTSize, static_cast<double>(t->row_count()));
        set(F::kPages, static_cast<double>(t->data_pages()));
        set(F::kTColumns, static_cast<double>(t->column_count()));
        // Scans see the whole table regardless of mode; the paper notes
        // full-scan counts are known a priori.
        set(F::kCIn0, static_cast<double>(t->row_count()));
        set(F::kSInAvg0, static_cast<double>(t->row_width()));
        set(F::kSInTot0,
            static_cast<double>(t->row_count() * t->row_width()));
        if (node.type == OpType::kIndexSeek) {
          const int col = t->FindColumn(node.seek_column);
          const Index* idx = col >= 0 ? t->IndexOn(col) : nullptr;
          if (idx != nullptr) {
            set(F::kIndexDepth, static_cast<double>(idx->depth()));
          }
        }
      }
      set(F::kEstIoCost, node.est.io_cost);
      break;
    }
    case OpType::kHashJoin: {
      const double keys = 1.0;  // single-column equi-joins
      set(F::kHashOpAvg, keys);
      set(F::kHashOpTot, keys * rows_in(1));  // build side is hashed
      set(F::kCInnerCol, 1.0);
      set(F::kCOuterCol, 1.0);
      break;
    }
    case OpType::kMergeJoin:
      set(F::kCInnerCol, 1.0);
      set(F::kCOuterCol, 1.0);
      set(F::kSInSum, bytes_in(0) + bytes_in(1));
      break;
    case OpType::kNestedLoopJoin:
      set(F::kCInnerCol, 1.0);
      set(F::kCOuterCol, 1.0);
      set(F::kSSeekTable, rows_in(1));
      break;
    case OpType::kIndexNestedLoopJoin: {
      set(F::kCInnerCol, 1.0);
      set(F::kCOuterCol, 1.0);
      const Table* t = db.FindTable(node.inner_table);
      if (t != nullptr) {
        set(F::kSSeekTable, static_cast<double>(t->row_count()));
        const int col = t->FindColumn(node.inner_key);
        const Index* idx = col >= 0 ? t->IndexOn(col) : nullptr;
        if (idx != nullptr) {
          set(F::kIndexDepth, static_cast<double>(idx->depth()));
        }
      }
      break;
    }
    case OpType::kHashAggregate: {
      const double keys =
          static_cast<double>(std::max<size_t>(1, node.group_columns.size()));
      set(F::kHashOpAvg, keys);
      set(F::kHashOpTot, keys * rows_in(0));
      set(F::kCHashCol, keys);
      break;
    }
    case OpType::kStreamAggregate:
      set(F::kCHashCol,
          static_cast<double>(std::max<size_t>(1, node.group_columns.size())));
      break;
    case OpType::kSort:
      set(F::kCSortCol,
          static_cast<double>(std::max<size_t>(1, node.sort_columns.size())));
      set(F::kMinComp, rows_in(0) * static_cast<double>(std::max<size_t>(
                                         1, node.sort_columns.size())));
      break;
    default:
      break;
  }
  return v;
}

const std::vector<FeatureId>& Dependents(FeatureId f) {
  // Reconstructed Table 3: Dependents(f) = derived features whose value is a
  // *product* involving f, i.e. the values divided by f during scaled-model
  // training and prediction. Following the paper's worked Filter example
  // (Section 6.1), output-side counts such as COUT are deliberately NOT
  // normalized by input counts: they stay raw so the scaled model keeps
  // absolute-size signal within the training range, while SINTOT-style byte
  // totals are divided so a single outlier cause is not scaled twice.
  static const std::vector<FeatureId> kEmpty = {};
  static const std::vector<FeatureId> kCOutDeps = {F::kSOutTot};
  static const std::vector<FeatureId> kSOutAvgDeps = {F::kSOutTot};
  static const std::vector<FeatureId> kCIn0Deps = {F::kSInTot0, F::kHashOpTot,
                                                   F::kMinComp, F::kSInSum};
  static const std::vector<FeatureId> kSInAvg0Deps = {F::kSInTot0, F::kSInSum};
  static const std::vector<FeatureId> kSInTot0Deps = {F::kSInSum};
  static const std::vector<FeatureId> kCIn1Deps = {F::kSInTot1, F::kSInSum,
                                                   F::kHashOpTot};
  static const std::vector<FeatureId> kSInAvg1Deps = {F::kSInTot1, F::kSInSum};
  static const std::vector<FeatureId> kSInTot1Deps = {F::kSInSum};
  static const std::vector<FeatureId> kTSizeDeps = {F::kPages, F::kEstIoCost,
                                                    F::kCIn0, F::kSInTot0};
  static const std::vector<FeatureId> kPagesDeps = {F::kEstIoCost};
  static const std::vector<FeatureId> kHashOpAvgDeps = {F::kHashOpTot};
  static const std::vector<FeatureId> kCHashColDeps = {F::kHashOpAvg,
                                                       F::kHashOpTot};
  static const std::vector<FeatureId> kCSortColDeps = {F::kMinComp};

  switch (f) {
    case F::kCOut: return kCOutDeps;
    case F::kSOutAvg: return kSOutAvgDeps;
    case F::kCIn0: return kCIn0Deps;
    case F::kSInAvg0: return kSInAvg0Deps;
    case F::kSInTot0: return kSInTot0Deps;
    case F::kCIn1: return kCIn1Deps;
    case F::kSInAvg1: return kSInAvg1Deps;
    case F::kSInTot1: return kSInTot1Deps;
    case F::kTSize: return kTSizeDeps;
    case F::kPages: return kPagesDeps;
    case F::kHashOpAvg: return kHashOpAvgDeps;
    case F::kCHashCol: return kCHashColDeps;
    case F::kCSortCol: return kCSortColDeps;
    default: return kEmpty;
  }
}

}  // namespace resest
