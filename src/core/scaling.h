// Scaling functions (paper Section 6.2): fixed functional forms that model
// the asymptotic behaviour of an operator's resource usage in one (or, for
// joins, two) outlier feature(s), plus the data-driven selection framework
// that picks the best form from systematic feature sweeps.
#ifndef RESEST_CORE_SCALING_H_
#define RESEST_CORE_SCALING_H_

#include <string>
#include <vector>

#include "src/core/features.h"

namespace resest {

/// Candidate functional forms. One-input forms use `a`; two-input forms
/// (join scaling, paper "Multi-feature Scaling") use `a` and `b`.
enum class ScalingFn {
  kLinear,     ///< g(a) = a
  kLog2,       ///< g(a) = log2(a)
  kNLogN,      ///< g(a) = a log2(a)
  kSqrt,       ///< g(a) = sqrt(a)
  kPower15,    ///< g(a) = a^1.5
  kQuadratic,  ///< g(a) = a^2
  kCubic,      ///< g(a) = a^3
  kSum,        ///< g(a,b) = a + b
  kProduct,    ///< g(a,b) = a * b
  kALogB,      ///< g(a,b) = a * log2(b)
};

const char* ScalingFnName(ScalingFn fn);
bool IsTwoInput(ScalingFn fn);

/// Evaluates g (b ignored for one-input forms). Inputs are clamped to >= 1
/// so logarithmic forms stay finite near zero.
double EvalScaling(ScalingFn fn, double a, double b = 0.0);

/// One observation of a feature sweep: feature value(s) and measured usage.
struct SweepPoint {
  double a = 0.0;
  double b = 0.0;      ///< Second feature (two-input candidates only).
  double usage = 0.0;  ///< Measured resource consumption.
};

/// Result of fitting one candidate form to a sweep.
struct ScalingFit {
  ScalingFn fn = ScalingFn::kLinear;
  double alpha = 0.0;  ///< Fitted multiplier (least squares).
  double l2_error = 0.0;
};

/// Fits alpha for a single candidate by least squares and reports L2 error.
ScalingFit FitScalingFn(ScalingFn fn, const std::vector<SweepPoint>& sweep);

/// The paper's selection procedure: fit every candidate (one-input forms,
/// plus two-input forms when the sweep varies b) and return all fits sorted
/// by ascending L2 error. front() is the selected scaling function.
std::vector<ScalingFit> SelectScalingFn(const std::vector<SweepPoint>& sweep,
                                        bool include_two_input);

/// The offline-selected scaling function for (operator, resource, feature) —
/// the output of running the Section 6.2 selection experiments (regenerated
/// by bench/fig7_sort_scaling and bench/fig8_inlj_scaling).
ScalingFn DefaultScalingFn(OpType op, Resource resource, FeatureId feature);

/// Two-feature scaling form for an operator's feature pair, if the pair has
/// a designated joint form (e.g. INLJ: COuter x log2(InnerTable)); otherwise
/// the two features scale independently (composed one-input forms).
bool JointScalingFn(OpType op, Resource resource, FeatureId f1, FeatureId f2,
                    ScalingFn* fn);

}  // namespace resest

#endif  // RESEST_CORE_SCALING_H_
