// The operator-level feature model of the paper (Section 5.3, Tables 1 & 2)
// and the feature-dependency table used for normalization when scaling
// (Section 6.1, Table 3).
#ifndef RESEST_CORE_FEATURES_H_
#define RESEST_CORE_FEATURES_H_

#include <array>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/engine/plan.h"
#include "src/storage/catalog.h"

namespace resest {

/// Resources the framework estimates (paper: CPU time and logical I/O).
enum class Resource { kCpu = 0, kIo = 1 };
inline constexpr int kNumResources = 2;
const char* ResourceName(Resource r);

/// Inverse of ResourceName, case-insensitive ("CPU"/"cpu", "IO"/"io").
/// True (and sets *out) iff `name` matches a resource.
bool ParseResource(const std::string& name, Resource* out);

/// One (operator type, resource) model slot of a ResourceEstimator — the
/// unit of incremental retraining and of scoped (delta) cache invalidation.
using ModelSlotId = std::pair<OpType, Resource>;
inline constexpr size_t kNumModelSlots =
    static_cast<size_t>(kNumOpTypes) * static_cast<size_t>(kNumResources);

/// All features from Tables 1 and 2. Per-child features (CIN, SINAVG,
/// SINTOT — "1 feature per child") get two slots since operators have at
/// most two children.
enum class FeatureId : int {
  // --- Global features (Table 1) ---
  kCOut = 0,       ///< # output tuples
  kSOutAvg,        ///< avg width of output tuples (bytes)
  kSOutTot,        ///< total bytes output
  kCIn0,           ///< # input tuples, child 0
  kSInAvg0,        ///< avg width of input tuples, child 0
  kSInTot0,        ///< total bytes input, child 0
  kCIn1,           ///< # input tuples, child 1
  kSInAvg1,        ///< avg width of input tuples, child 1
  kSInTot1,        ///< total bytes input, child 1
  kOutputUsage,    ///< operator type of the parent (categorical)
  // --- Operator-specific features (Table 2) ---
  kTSize,          ///< input table size in tuples          (Seek/Scan)
  kPages,          ///< input table size in pages           (Seek/Scan)
  kTColumns,       ///< # columns in a tuple                (Seek/Scan)
  kEstIoCost,      ///< optimizer-estimated I/O cost        (Seek/Scan)
  kIndexDepth,     ///< # index levels in the access path   (Seek)
  kHashOpAvg,      ///< # hashing operations per tuple      (Hash Agg/Join)
  kHashOpTot,      ///< HASHOPAVG x # tuples                (Hash Agg/Join)
  kCHashCol,       ///< # columns involved in hash          (Hash Agg)
  kCInnerCol,      ///< # join columns (inner)              (Joins)
  kCOuterCol,      ///< # join columns (outer)              (Joins)
  kSSeekTable,     ///< # tuples in inner table             (Nested Loop)
  kMinComp,        ///< # tuples x sort columns             (Sort)
  kCSortCol,       ///< # columns involved in sort          (Sort)
  kSInSum,         ///< total bytes input over all children (Merge Join)
  kNumFeatures
};
inline constexpr int kNumFeatures = static_cast<int>(FeatureId::kNumFeatures);

const char* FeatureName(FeatureId f);

/// A raw per-operator feature vector (values indexed by FeatureId).
using FeatureVector = std::array<double, kNumFeatures>;

/// Canonical 64-bit hash of a feature vector, computed over the raw bit
/// patterns of its doubles (FNV-1a). Bitwise hashing keeps the hash
/// consistent with HashEqual below: distinct bit patterns that compare
/// equal under operator== (-0.0 vs +0.0) hash differently on purpose, so
/// equality for hashed containers must be bitwise too.
uint64_t HashFeatureVector(const FeatureVector& v);

/// Bitwise equality companion to HashFeatureVector: true iff every slot has
/// the same bit pattern. Stricter than operator== (-0.0 != +0.0 here, and
/// NaN == NaN); the right notion for memoization keys, where a spurious
/// mismatch costs a cache miss but a spurious match would corrupt results.
bool FeatureVectorHashEqual(const FeatureVector& a, const FeatureVector& b);

/// Whether to populate cardinality-derived features from exact (measured)
/// values or from optimizer estimates (paper Sections 7.1.1 vs 7.1.2).
enum class FeatureMode { kExact, kEstimated };

/// The features applicable to an operator type, in canonical order (model
/// input layout).
const std::vector<FeatureId>& OperatorFeatures(OpType op);

/// Features eligible as scaling features for an operator (numeric,
/// monotonically related to resource usage). For I/O estimation, the paper
/// additionally excludes HASHOP*, C*COL and MINCOMP (Section 6.2,
/// "Non-scaling Features").
std::vector<FeatureId> ScalableFeatures(OpType op, Resource resource);

/// Extracts the feature vector of an executed/annotated plan node.
/// `parent` may be null (root operator).
FeatureVector ExtractFeatures(const PlanNode& node, const PlanNode* parent,
                              const Database& db, FeatureMode mode);

/// Feature dependencies (paper Table 3): Dependents(f) lists the features
/// whose values must be divided by f's value when f is used as a scaling
/// feature. Reconstructed from the feature semantics, since the published
/// table's layout does not survive plain-text extraction (see DESIGN.md).
const std::vector<FeatureId>& Dependents(FeatureId f);

}  // namespace resest

#endif  // RESEST_CORE_FEATURES_H_
