// The public resource-estimation API: per-operator, per-pipeline and
// per-query estimates from trained operator model sets, plus the trainer
// that builds an estimator from executed-workload observations.
#ifndef RESEST_CORE_ESTIMATOR_H_
#define RESEST_CORE_ESTIMATOR_H_

#include <array>
#include <functional>
#include <memory>
#include <vector>

#include "src/core/combined_model.h"
#include "src/core/features.h"
#include "src/workload/runner.h"

namespace resest {

/// Training configuration for the SCALING estimator.
struct TrainOptions {
  FeatureMode mode = FeatureMode::kExact;
  MartParams mart = [] {
    MartParams p;
    p.num_trees = 150;  // combined models are numerous; 150 trees suffice
    return p;
  }();
  bool enable_scaling = true;          ///< false = plain per-operator MART.
  bool normalize_dependents = true;    ///< Ablation flag (Section 6.1 (3)).
  int max_scale_features = 2;          ///< Paper uses at most two.
  size_t min_rows_per_operator = 12;   ///< Below this, a constant model.
  /// Worker threads for fitting the per-(operator, resource) model sets,
  /// which are mutually independent. 1 = serial; 0 = hardware concurrency.
  /// The trained estimator is identical for any thread count: every model
  /// set is fitted from the same inputs (MART is seeded) into its own slot.
  size_t train_threads = 1;
};

/// A trained resource estimator (the paper's deployed artifact, Figure 5).
///
/// Thread safety: after Train()/Deserialize() completes, all const methods
/// are safe to call concurrently from any number of threads. The entire
/// estimation path (feature extraction, model selection, scaling, MART
/// inference) is free of mutable or lazily-initialized state — the serving
/// layer (src/serving/) relies on this to share one estimator across a
/// worker pool without locking. Keep it that way: no caches inside const
/// methods, synchronized or not. Memoization belongs in the serving layer
/// (src/serving/estimate_cache.h), where entries are keyed by model version
/// and invalidated on hot-swap; a cache hidden inside the estimator could
/// not be version-keyed and would silently survive a registry publish.
///
/// The same contract covers the compiled inference representation: every
/// Mart's CompiledForest (the contiguous SoA tree layout all prediction,
/// scalar and batched, routes through) is built exactly once, inside
/// Train()/Deserialize() before the estimator is published, and is never
/// mutated by const paths afterwards — it is part of the immutable model,
/// not a lazily-built cache.
class ResourceEstimator {
 public:
  /// Trains per-operator model sets from executed queries.
  static ResourceEstimator Train(const std::vector<ExecutedQuery>& workload,
                                 const TrainOptions& options);

  /// Estimate for a single operator of an annotated plan.
  double EstimateOperator(const PlanNode& node, const PlanNode* parent,
                          const Database& db, Resource resource) const;

  /// Keyed per-operator entry point: predicts from an already-extracted
  /// feature vector. EstimateOperator(node, parent, db, r) is exactly
  /// EstimateFromFeatures(node.type, ExtractFeatures(node, parent, db,
  /// mode()), r) — the serving cache relies on this identity to memoize
  /// per-operator estimates under a (version, op, resource, features) key
  /// with bit-identical results.
  double EstimateFromFeatures(OpType op, const FeatureVector& features,
                              Resource resource) const;

  /// Batched keyed entry point: out[i] is bit-identical to
  /// EstimateFromFeatures(op, *features[i], resource), but all rows of one
  /// (op, resource) run through the compiled forests in grouped sweeps
  /// instead of one tree walk per row. The serving layer feeds a chunk's
  /// cache-miss operators through this, passing its per-thread arena as
  /// `scratch` so the sweep performs zero heap allocations (a transient
  /// local arena is used when scratch is null).
  void EstimateBatchFromFeatures(OpType op,
                                 const FeatureVector* const* features, size_t n,
                                 Resource resource, double* out,
                                 Arena* scratch = nullptr) const;

  /// Estimate for a whole plan (sum over operators).
  double EstimateQuery(const Plan& plan, const Database& db,
                       Resource resource) const;

  /// Per-pipeline estimates (scheduling-granularity API, Section 5.2).
  std::vector<double> EstimatePipelines(const Plan& plan, const Database& db,
                                        Resource resource) const;

  /// The model set for one (operator, resource); null if none was trained.
  const OperatorModelSet* ModelsFor(OpType op, Resource resource) const;

  /// Training-time mutator used by the incremental trainer to assemble a
  /// delta: replaces one slot's model set (null = fall back to the mean)
  /// and its fallback mean. Must only be called on an estimator that is not
  /// yet shared with readers — published estimators are immutable. Model
  /// sets are immutable after training, so a delta built as a copy of its
  /// predecessor shares every slot this is *not* called on — compiled
  /// forests included — by holding the same pointer; ModelsFor() pointer
  /// equality across versions is the sharing guarantee tests assert on.
  void ReplaceModelSet(OpType op, Resource resource,
                       std::shared_ptr<const OperatorModelSet> set,
                       double fallback_mean);

  /// The fallback mean served when a slot has no trained model.
  double FallbackMean(OpType op, Resource resource) const {
    return fallback_mean_[static_cast<size_t>(op)]
                         [static_cast<size_t>(resource)];
  }

  /// Total serialized model bytes (paper Section 7.3 memory accounting).
  size_t SerializedBytes() const;

  /// Full model-store (de)serialization: the deployed artifact can be
  /// trained offline, persisted, and loaded inside the server (the paper's
  /// "models are retained, training examples are not" deployment).
  std::vector<uint8_t> Serialize() const;
  bool Deserialize(const std::vector<uint8_t>& bytes);
  bool SaveToFile(const std::string& path) const;
  bool LoadFromFile(const std::string& path);

  /// Human-readable report for one operator: extracted features, the model
  /// chosen by Section 6.3 selection, its out_ratios and the estimate.
  std::string ExplainOperator(const PlanNode& node, const PlanNode* parent,
                              const Database& db, Resource resource) const;
  /// Explain every operator of a plan.
  std::string ExplainQuery(const Plan& plan, const Database& db,
                           Resource resource) const;

  FeatureMode mode() const { return options_.mode; }
  const TrainOptions& options() const { return options_; }

 private:
  TrainOptions options_;
  // models_[op][resource]; null = untrained slot (fallback mean). Slots are
  // shared_ptr so a copy of the estimator shares every immutable model set
  // with the original — the representation of a delta publish.
  std::array<std::array<std::shared_ptr<const OperatorModelSet>,
                        kNumResources>,
             kNumOpTypes>
      models_;
  // Fallback per-operator mean resource (for operators with too little data).
  std::array<std::array<double, kNumResources>, kNumOpTypes> fallback_mean_{};
};

/// Calls fn(node, parent) for every operator of `plan` in the canonical
/// estimation order (pre-order, parent before children) — the same order
/// EstimateQuery sums in. The serving layer traverses plans with this so
/// its per-operator memoized sums stay bit-identical to EstimateQuery.
void VisitPlanOperators(
    const Plan& plan,
    const std::function<void(const PlanNode&, const PlanNode*)>& fn);

namespace internal {
template <typename Fn>
void ForEachPlanNode(const PlanNode* node, const PlanNode* parent, Fn& fn) {
  fn(*node, parent);
  for (const auto& child : node->children) {
    ForEachPlanNode(child.get(), node, fn);
  }
}
}  // namespace internal

/// Template flavor of VisitPlanOperators for hot paths: identical traversal
/// order, but the callback is a direct template parameter — constructing a
/// std::function from a capturing lambda heap-allocates, which the
/// zero-allocation batch pipeline cannot afford per request.
template <typename Fn>
void ForEachPlanOperator(const Plan& plan, Fn&& fn) {
  if (!plan.root) return;
  internal::ForEachPlanNode(plan.root.get(),
                            static_cast<const PlanNode*>(nullptr), fn);
}

}  // namespace resest

#endif  // RESEST_CORE_ESTIMATOR_H_
