// The Section 6.2 experiment framework: synthetically generated
// single-operator queries whose target feature is swept over a wide range
// while dependent features keep a constant ratio to it; the resulting
// (feature, usage) curves drive scaling-function selection.
//
// Regenerates the paper's Figure 7 (sort) and Figure 8 (index nested loop
// join) selection experiments.
#ifndef RESEST_CORE_SCALING_LAB_H_
#define RESEST_CORE_SCALING_LAB_H_

#include <vector>

#include "src/core/scaling.h"
#include "src/storage/catalog.h"

namespace resest {

/// Sweeps the Sort operator's input count (paper's
/// "SELECT * FROM lineitem WHERE l_orderkey <= t1 ORDER BY Random()"):
/// sorts growing prefixes of lineitem on an order-uncorrelated key and
/// records CPU. SweepPoint::a = CIN.
std::vector<SweepPoint> SweepSortCpu(const Database& db, int steps);

/// Sweeps the outer cardinality of an index nested loop join into orders
/// (inner fixed). SweepPoint::a = C_outer, b = inner table rows.
std::vector<SweepPoint> SweepInljCpu(const Database& db, int steps);

/// Sweeps a filter's input count and records CPU (the paper's canonical
/// "CPU scales linearly with tuples" example). a = CIN.
std::vector<SweepPoint> SweepFilterCpu(const Database& db, int steps);

/// Sweeps an index seek's qualifying-tuple count and records logical I/O.
std::vector<SweepPoint> SweepSeekIo(const Database& db, int steps);

/// Sweeps a hash aggregate's input count and records CPU.
std::vector<SweepPoint> SweepHashAggCpu(const Database& db, int steps);

}  // namespace resest

#endif  // RESEST_CORE_SCALING_LAB_H_
