#include "src/core/scaling_lab.h"

#include <memory>

#include "src/engine/executor.h"

namespace resest {

namespace {

std::unique_ptr<PlanNode> LineitemPrefixScan(const Database& db, int64_t limit,
                                             std::vector<std::string> cols) {
  (void)db;
  auto scan = std::make_unique<PlanNode>();
  scan->type = OpType::kTableScan;
  scan->table = "lineitem";
  scan->predicates = {Predicate{"l_linekey", Predicate::Op::kLe, 0, limit}};
  scan->output_columns = std::move(cols);
  return scan;
}

/// Step i of `steps` mapped to a prefix size of the lineitem table.
int64_t PrefixAt(const Database& db, int step, int steps) {
  const int64_t rows = db.FindTable("lineitem")->row_count();
  return std::max<int64_t>(50, rows * (step + 1) / steps);
}

}  // namespace

std::vector<SweepPoint> SweepSortCpu(const Database& db, int steps) {
  std::vector<SweepPoint> sweep;
  Executor exec(&db, 99);
  for (int s = 0; s < steps; ++s) {
    const int64_t prefix = PrefixAt(db, s, steps);
    auto sort = std::make_unique<PlanNode>();
    sort->type = OpType::kSort;
    // l_extendedprice is uniform and uncorrelated with the clustered order —
    // the same role as the paper's ORDER BY Random_Function(). The narrow
    // projection keeps the sweep in the in-memory regime so the curve
    // isolates the comparison cost (the paper's sweeps hold every other
    // effect constant).
    sort->sort_columns = {"lineitem.l_extendedprice"};
    sort->children.push_back(
        LineitemPrefixScan(db, prefix, {"l_extendedprice"}));
    exec.ExecuteNode(sort.get());
    sweep.push_back(SweepPoint{static_cast<double>(sort->actual.rows_in[0]), 0.0,
                               sort->actual.cpu});
  }
  return sweep;
}

std::vector<SweepPoint> SweepInljCpu(const Database& db, int steps) {
  std::vector<SweepPoint> sweep;
  Executor exec(&db, 99);
  const Table* orders = db.FindTable("orders");
  for (int s = 0; s < steps; ++s) {
    const int64_t prefix = PrefixAt(db, s, steps);
    auto join = std::make_unique<PlanNode>();
    join->type = OpType::kIndexNestedLoopJoin;
    join->left_key = "lineitem.l_orderkey";
    join->inner_table = "orders";
    join->inner_key = "o_orderkey";
    join->inner_output_columns = {"o_orderkey", "o_totalprice"};
    join->children.push_back(
        LineitemPrefixScan(db, prefix, {"l_orderkey", "l_quantity"}));
    exec.ExecuteNode(join.get());
    sweep.push_back(SweepPoint{static_cast<double>(join->actual.rows_in[0]),
                               static_cast<double>(orders->row_count()),
                               join->actual.cpu});
  }
  return sweep;
}

std::vector<SweepPoint> SweepFilterCpu(const Database& db, int steps) {
  std::vector<SweepPoint> sweep;
  Executor exec(&db, 99);
  for (int s = 0; s < steps; ++s) {
    const int64_t prefix = PrefixAt(db, s, steps);
    auto filter = std::make_unique<PlanNode>();
    filter->type = OpType::kFilter;
    filter->predicates = {
        Predicate{"lineitem.l_quantity", Predicate::Op::kLe, 0, 25}};
    filter->children.push_back(
        LineitemPrefixScan(db, prefix, {"l_quantity", "l_extendedprice"}));
    exec.ExecuteNode(filter.get());
    sweep.push_back(SweepPoint{static_cast<double>(filter->actual.rows_in[0]),
                               0.0, filter->actual.cpu});
  }
  return sweep;
}

std::vector<SweepPoint> SweepSeekIo(const Database& db, int steps) {
  std::vector<SweepPoint> sweep;
  Executor exec(&db, 99);
  const Table* li = db.FindTable("lineitem");
  for (int s = 0; s < steps; ++s) {
    const int64_t prefix = PrefixAt(db, s, steps);
    auto seek = std::make_unique<PlanNode>();
    seek->type = OpType::kIndexSeek;
    seek->table = "lineitem";
    seek->seek_column = "l_linekey";
    seek->predicates = {Predicate{"l_linekey", Predicate::Op::kLe, 0, prefix}};
    seek->output_columns = {"l_linekey", "l_quantity"};
    exec.ExecuteNode(seek.get());
    sweep.push_back(SweepPoint{static_cast<double>(seek->actual.rows_out), 0.0,
                               static_cast<double>(seek->actual.logical_io)});
  }
  (void)li;
  return sweep;
}

std::vector<SweepPoint> SweepHashAggCpu(const Database& db, int steps) {
  std::vector<SweepPoint> sweep;
  Executor exec(&db, 99);
  for (int s = 0; s < steps; ++s) {
    const int64_t prefix = PrefixAt(db, s, steps);
    auto agg = std::make_unique<PlanNode>();
    agg->type = OpType::kHashAggregate;
    agg->group_columns = {"lineitem.l_partkey"};
    agg->num_aggregates = 2;
    agg->children.push_back(
        LineitemPrefixScan(db, prefix, {"l_partkey", "l_quantity"}));
    exec.ExecuteNode(agg.get());
    sweep.push_back(SweepPoint{static_cast<double>(agg->actual.rows_in[0]), 0.0,
                               agg->actual.cpu});
  }
  return sweep;
}

}  // namespace resest
