#include "src/common/matrix.h"

#include <cmath>

namespace resest {

Matrix Matrix::Gram() const {
  Matrix g(cols_, cols_);
  for (size_t r = 0; r < rows_; ++r) {
    const double* row = &data_[r * cols_];
    for (size_t i = 0; i < cols_; ++i) {
      if (row[i] == 0.0) continue;
      for (size_t j = i; j < cols_; ++j) g.at(i, j) += row[i] * row[j];
    }
  }
  for (size_t i = 0; i < cols_; ++i)
    for (size_t j = 0; j < i; ++j) g.at(i, j) = g.at(j, i);
  return g;
}

std::vector<double> Matrix::TransposeTimes(const std::vector<double>& y) const {
  std::vector<double> out(cols_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    const double* row = &data_[r * cols_];
    for (size_t c = 0; c < cols_; ++c) out[c] += row[c] * y[r];
  }
  return out;
}

std::vector<double> Matrix::Times(const std::vector<double>& x) const {
  std::vector<double> out(rows_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    const double* row = &data_[r * cols_];
    double s = 0.0;
    for (size_t c = 0; c < cols_; ++c) s += row[c] * x[c];
    out[r] = s;
  }
  return out;
}

bool CholeskySolve(Matrix a, std::vector<double> b, double ridge,
                   std::vector<double>* x) {
  const size_t n = a.rows();
  if (n == 0 || a.cols() != n || b.size() != n) return false;
  for (size_t i = 0; i < n; ++i) a.at(i, i) += ridge;

  // In-place Cholesky: A = L L^T, L stored in the lower triangle.
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j <= i; ++j) {
      double s = a.at(i, j);
      for (size_t k = 0; k < j; ++k) s -= a.at(i, k) * a.at(j, k);
      if (i == j) {
        if (s <= 0.0) return false;
        a.at(i, i) = std::sqrt(s);
      } else {
        a.at(i, j) = s / a.at(j, j);
      }
    }
  }
  // Forward substitution: L z = b.
  for (size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (size_t k = 0; k < i; ++k) s -= a.at(i, k) * b[k];
    b[i] = s / a.at(i, i);
  }
  // Back substitution: L^T x = z.
  for (size_t ii = n; ii > 0; --ii) {
    const size_t i = ii - 1;
    double s = b[i];
    for (size_t k = i + 1; k < n; ++k) s -= a.at(k, i) * b[k];
    b[i] = s / a.at(i, i);
  }
  *x = std::move(b);
  return true;
}

bool LeastSquares(const Matrix& x, const std::vector<double>& y,
                  std::vector<double>* beta, double ridge) {
  if (x.rows() == 0 || x.rows() != y.size()) return false;
  const Matrix gram = x.Gram();
  const std::vector<double> xty = x.TransposeTimes(y);
  // Scale the ridge by the mean diagonal so it is unit-independent.
  double diag = 0.0;
  for (size_t i = 0; i < gram.rows(); ++i) diag += gram.at(i, i);
  diag = diag / static_cast<double>(gram.rows());
  return CholeskySolve(gram, xty, ridge * (diag > 0 ? diag : 1.0), beta);
}

double FitScale(const std::vector<double>& g, const std::vector<double>& y) {
  double num = 0.0, den = 0.0;
  for (size_t i = 0; i < g.size() && i < y.size(); ++i) {
    num += g[i] * y[i];
    den += g[i] * g[i];
  }
  return den > 0.0 ? num / den : 0.0;
}

}  // namespace resest
