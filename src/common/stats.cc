#include "src/common/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

namespace resest {

double Mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

double Variance(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  const double m = Mean(v);
  double s = 0.0;
  for (double x : v) s += (x - m) * (x - m);
  return s / static_cast<double>(v.size() - 1);
}

double StdDev(const std::vector<double>& v) { return std::sqrt(Variance(v)); }

double Median(std::vector<double> v) { return Quantile(std::move(v), 0.5); }

double Quantile(std::vector<double> v, double q) {
  if (v.empty()) return 0.0;
  if (q <= 0.0) return Min(v);
  if (q >= 1.0) return Max(v);
  std::sort(v.begin(), v.end());
  const double pos = q * static_cast<double>(v.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= v.size()) return v[lo];
  return v[lo] * (1.0 - frac) + v[lo + 1] * frac;
}

double Min(const std::vector<double>& v) {
  return v.empty() ? 0.0 : *std::min_element(v.begin(), v.end());
}

double Max(const std::vector<double>& v) {
  return v.empty() ? 0.0 : *std::max_element(v.begin(), v.end());
}

double Correlation(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size() || a.size() < 2) return 0.0;
  const double ma = Mean(a), mb = Mean(b);
  double cov = 0.0, va = 0.0, vb = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    cov += (a[i] - ma) * (b[i] - mb);
    va += (a[i] - ma) * (a[i] - ma);
    vb += (b[i] - mb) * (b[i] - mb);
  }
  if (va <= 0.0 || vb <= 0.0) return 0.0;
  return cov / std::sqrt(va * vb);
}

double L1RelativeError(const std::vector<double>& estimates,
                       const std::vector<double>& actuals) {
  if (estimates.empty() || estimates.size() != actuals.size()) return 0.0;
  double sum = 0.0;
  for (size_t i = 0; i < estimates.size(); ++i) {
    const double est = std::fabs(estimates[i]) < 1e-12 ? 1e-12 : estimates[i];
    sum += std::fabs((estimates[i] - actuals[i]) / est);
  }
  return sum / static_cast<double>(estimates.size());
}

double RatioError(double estimate, double actual) {
  const double e = std::fabs(estimate) < 1e-12 ? 1e-12 : std::fabs(estimate);
  const double a = std::fabs(actual) < 1e-12 ? 1e-12 : std::fabs(actual);
  return std::max(e / a, a / e);
}

RatioBuckets ComputeRatioBuckets(const std::vector<double>& estimates,
                                 const std::vector<double>& actuals) {
  RatioBuckets b;
  if (estimates.empty() || estimates.size() != actuals.size()) return b;
  const double n = static_cast<double>(estimates.size());
  for (size_t i = 0; i < estimates.size(); ++i) {
    const double r = RatioError(estimates[i], actuals[i]);
    if (r <= 1.5) {
      b.le_1_5 += 1.0;
    } else if (r <= 2.0) {
      b.in_1_5_2 += 1.0;
    } else {
      b.gt_2 += 1.0;
    }
  }
  b.le_1_5 /= n;
  b.in_1_5_2 /= n;
  b.gt_2 /= n;
  return b;
}

void Welford::Add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Welford::variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double Welford::stddev() const { return std::sqrt(variance()); }

}  // namespace resest
