#include "src/common/shutdown.h"

#include <csignal>
#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include <atomic>
#include <mutex>

namespace resest {
namespace {

// The self-pipe. fds are created once on first use and never closed: the
// latch lives as long as the process, and signal handlers must be able to
// write the fd at any point after Install().
int g_pipe_read = -1;
int g_pipe_write = -1;
std::once_flag g_pipe_once;

// Written by the handler, read by Requested()/Signal(). A lock-free
// std::atomic<int> is async-signal-safe and — unlike the classic volatile
// sig_atomic_t — also safe against Trigger() running on another *thread*
// (tests drive the latch that way; TSan flags the volatile version).
std::atomic<int> g_signal{0};
static_assert(std::atomic<int>::is_always_lock_free,
              "signal handler requires a lock-free atomic");

void EnsurePipe() {
  std::call_once(g_pipe_once, []() {
    int fds[2];
    if (::pipe(fds) != 0) return;
    // Non-blocking on both ends: a handler firing many times must not block
    // on a full pipe, and Reset() drains without risk of hanging.
    ::fcntl(fds[0], F_SETFL, O_NONBLOCK);
    ::fcntl(fds[1], F_SETFL, O_NONBLOCK);
    ::fcntl(fds[0], F_SETFD, FD_CLOEXEC);
    ::fcntl(fds[1], F_SETFD, FD_CLOEXEC);
    g_pipe_read = fds[0];
    g_pipe_write = fds[1];
  });
}

void Handler(int signum) {
  g_signal = signum;
  if (g_pipe_write >= 0) {
    const char byte = 1;
    // The only failure that matters is EAGAIN (pipe full), and then a wakeup
    // byte is already pending — the latch still trips.
    [[maybe_unused]] ssize_t n = ::write(g_pipe_write, &byte, 1);
  }
}

}  // namespace

bool ShutdownLatch::Install() {
  EnsurePipe();
  if (g_pipe_read < 0) return false;
  struct sigaction action;
  sigemptyset(&action.sa_mask);
  action.sa_handler = Handler;
  // No SA_RESTART: a blocking accept() should fail with EINTR so a serve
  // loop that forgot to poll Requested() still unblocks.
  action.sa_flags = 0;
  bool ok = true;
  for (int signum : {SIGTERM, SIGINT}) {
    if (::sigaction(signum, &action, nullptr) != 0) ok = false;
  }
  return ok;
}

bool ShutdownLatch::Requested() { return g_signal != 0; }

int ShutdownLatch::Signal() { return g_signal; }

void ShutdownLatch::Wait() {
  while (!WaitFor(std::chrono::milliseconds(1000))) {
  }
}

bool ShutdownLatch::WaitFor(std::chrono::milliseconds timeout) {
  if (Requested()) return true;
  EnsurePipe();
  if (g_pipe_read < 0) {
    // Pipe creation failed; degrade to polling the flag.
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    while (!Requested() && std::chrono::steady_clock::now() < deadline) {
      ::usleep(1000);
    }
    return Requested();
  }
  struct pollfd pfd;
  pfd.fd = g_pipe_read;
  pfd.events = POLLIN;
  pfd.revents = 0;
  ::poll(&pfd, 1, static_cast<int>(timeout.count()));
  return Requested();
}

void ShutdownLatch::Trigger() {
  EnsurePipe();
  Handler(SIGTERM);
}

void ShutdownLatch::Reset() {
  g_signal = 0;
  if (g_pipe_read >= 0) {
    char drain[64];
    while (::read(g_pipe_read, drain, sizeof(drain)) > 0) {
    }
  }
}

}  // namespace resest
