// Process-wide graceful-shutdown latch for server binaries.
//
// A signal handler may only touch async-signal-safe state, so the latch is
// the classic self-pipe: the handler writes one byte to a pipe and sets a
// sig_atomic_t; waiters poll the pipe's read end. Signal dispositions are
// process-global, hence the static interface — there is one shutdown latch
// per process, shared by however many servers it runs.
//
// Typical server main:
//   ShutdownLatch::Install();            // SIGTERM + SIGINT
//   ...serve...
//   ShutdownLatch::Wait();               // blocks until a signal arrives
//   server.Stop();                       // stop accepting, drain in-flight
#ifndef RESEST_COMMON_SHUTDOWN_H_
#define RESEST_COMMON_SHUTDOWN_H_

#include <chrono>

namespace resest {

class ShutdownLatch {
 public:
  /// Installs the latch's handler for SIGTERM and SIGINT (idempotent).
  /// Returns false if the pipe or a sigaction call failed; dispositions
  /// already installed stay installed.
  static bool Install();

  /// True once a shutdown signal has been received (or Trigger was called).
  static bool Requested();

  /// The signal number that tripped the latch; 0 if none yet (Trigger
  /// reports SIGTERM).
  static int Signal();

  /// Blocks until the latch trips.
  static void Wait();

  /// Bounded wait; true iff the latch tripped within `timeout`.
  static bool WaitFor(std::chrono::milliseconds timeout);

  /// Trips the latch programmatically (tests, admin endpoints). Safe to call
  /// whether or not Install() ran.
  static void Trigger();

  /// Re-arms a tripped latch so one process can run several serve/drain
  /// cycles (tests). Not safe concurrently with a delivering signal.
  static void Reset();
};

}  // namespace resest

#endif  // RESEST_COMMON_SHUTDOWN_H_
