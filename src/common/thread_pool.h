// A fixed-size worker pool with a lock-based, priority-laned task queue.
// Shared by the serving layer (batched estimation fan-out) and parallel
// model training (ResourceEstimator::Train), which is why it lives in
// src/common/ rather than src/serving/.
#ifndef RESEST_COMMON_THREAD_POOL_H_
#define RESEST_COMMON_THREAD_POOL_H_

#include <array>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace resest {

/// Scheduling lane of a submitted task. Lanes are strictly ordered: a
/// worker never starts a kNormal task while a kUrgent task is queued, and
/// never starts a kBulk task while anything else is queued. Within a lane,
/// tasks run FIFO. The serving layer maps request priorities onto these
/// lanes (admission probes ride kUrgent over kBulk re-optimization scans).
enum class TaskPriority : int {
  kUrgent = 0,  ///< Small latency-critical work (admission probes).
  kNormal = 1,  ///< Default; everything that predates lanes lands here.
  kBulk = 2,    ///< Large background scans that must never delay the rest.
};
inline constexpr size_t kNumTaskPriorities = 3;
const char* TaskPriorityName(TaskPriority p);

/// Inverse of TaskPriorityName ("urgent"/"normal"/"bulk"). True (and sets
/// *out) iff `name` matches a lane.
bool ParseTaskPriority(const std::string& name, TaskPriority* out);

/// Fixed-size pool of worker threads draining prioritized FIFO task lanes.
///
/// Tasks are `std::function<void()>`; `Submit` wraps a callable and returns
/// a future for its result. The destructor drains every lane (every task
/// submitted before destruction runs) and joins all workers. All public
/// methods are thread-safe.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to at least 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a callable on the kNormal lane; returns a future for its
  /// result. Submitting after shutdown has begun throws std::runtime_error.
  template <typename Fn>
  auto Submit(Fn&& fn) -> std::future<decltype(fn())> {
    return Submit(TaskPriority::kNormal, std::forward<Fn>(fn));
  }

  /// Enqueues a callable on the given lane. Strict lane ordering: the task
  /// starts only when no higher-priority task is queued.
  template <typename Fn>
  auto Submit(TaskPriority priority, Fn&& fn) -> std::future<decltype(fn())> {
    using R = decltype(fn());
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> result = task->get_future();
    Enqueue(priority, [task]() { (*task)(); });
    return result;
  }

  /// Blocks until every lane is empty and no task is running.
  void Wait();

  size_t num_threads() const { return workers_.size(); }

  /// Tasks currently queued across all lanes (excludes running tasks).
  size_t QueueDepth() const;
  /// Tasks currently queued on one lane; for tests/metrics.
  size_t QueueDepth(TaskPriority priority) const;

 private:
  void Enqueue(TaskPriority priority, std::function<void()> task);
  void WorkerLoop();
  bool AllLanesEmptyLocked() const;

  mutable std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable all_idle_;
  /// Index = TaskPriority; lower index drains first, FIFO within a lane.
  std::array<std::deque<std::function<void()>>, kNumTaskPriorities> lanes_;
  std::vector<std::thread> workers_;
  size_t active_ = 0;       ///< Tasks currently executing.
  bool shutdown_ = false;   ///< Set once by the destructor.
};

}  // namespace resest

#endif  // RESEST_COMMON_THREAD_POOL_H_
