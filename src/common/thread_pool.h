// A fixed-size worker pool with a lock-based task queue. Shared by the
// serving layer (batched estimation fan-out) and parallel model training
// (ResourceEstimator::Train), which is why it lives in src/common/ rather
// than src/serving/.
#ifndef RESEST_COMMON_THREAD_POOL_H_
#define RESEST_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace resest {

/// Fixed-size pool of worker threads draining a FIFO task queue.
///
/// Tasks are `std::function<void()>`; `Submit` wraps a callable and returns
/// a future for its result. The destructor drains the queue (every task
/// submitted before destruction runs) and joins all workers. All public
/// methods are thread-safe.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to at least 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a callable; returns a future for its result. Submitting after
  /// shutdown has begun throws std::runtime_error.
  template <typename Fn>
  auto Submit(Fn&& fn) -> std::future<decltype(fn())> {
    using R = decltype(fn());
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> result = task->get_future();
    Enqueue([task]() { (*task)(); });
    return result;
  }

  /// Blocks until the queue is empty and no task is running.
  void Wait();

  size_t num_threads() const { return workers_.size(); }

  /// Tasks currently queued (excludes running tasks); for tests/metrics.
  size_t QueueDepth() const;

 private:
  void Enqueue(std::function<void()> task);
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable all_idle_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  size_t active_ = 0;       ///< Tasks currently executing.
  bool shutdown_ = false;   ///< Set once by the destructor.
};

}  // namespace resest

#endif  // RESEST_COMMON_THREAD_POOL_H_
