// Small statistics helpers shared across the library: summary statistics and
// the two error metrics the paper reports (L1 relative error and the
// max-ratio error buckets of Section 7.1).
#ifndef RESEST_COMMON_STATS_H_
#define RESEST_COMMON_STATS_H_

#include <cstddef>
#include <vector>

namespace resest {

double Mean(const std::vector<double>& v);
double Variance(const std::vector<double>& v);
double StdDev(const std::vector<double>& v);
double Median(std::vector<double> v);  // by value: needs to sort a copy
double Quantile(std::vector<double> v, double q);
double Min(const std::vector<double>& v);
double Max(const std::vector<double>& v);

/// Pearson correlation of two equal-length series.
double Correlation(const std::vector<double>& a, const std::vector<double>& b);

/// The paper's L1 error (Section 7.1):
///   mean over queries of | (estimate - actual) / estimate |.
/// Note the denominator is the *estimate*, as defined in the paper.
double L1RelativeError(const std::vector<double>& estimates,
                       const std::vector<double>& actuals);

/// The paper's ratio error for one query:
///   max(estimate/actual, actual/estimate).
double RatioError(double estimate, double actual);

/// Fractions of queries whose ratio error falls in the paper's three buckets.
struct RatioBuckets {
  double le_1_5 = 0.0;     ///< ratio <= 1.5
  double in_1_5_2 = 0.0;   ///< 1.5 < ratio <= 2
  double gt_2 = 0.0;       ///< ratio > 2
};

RatioBuckets ComputeRatioBuckets(const std::vector<double>& estimates,
                                 const std::vector<double>& actuals);

/// Running aggregate used by executors and harnesses.
class Welford {
 public:
  void Add(double x);
  size_t count() const { return n_; }
  double mean() const { return mean_; }
  double variance() const;
  double stddev() const;

 private:
  size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace resest

#endif  // RESEST_COMMON_STATS_H_
