// Minimal binary serialization helpers (little-endian, in-memory buffers)
// used by the model store, plus the shared whole-file byte-blob read/write
// all persisted artifacts (model store, delta lineage, observation logs)
// go through.
#ifndef RESEST_COMMON_SERIAL_H_
#define RESEST_COMMON_SERIAL_H_

#include <fcntl.h>
#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <system_error>
#include <vector>

namespace resest {

/// Writes `bytes` to `path` atomically AND durably: the content lands in
/// `<path>.tmp` first, is fsync'd, close-checked, renamed over `path` only
/// once fully on disk, and the rename itself is made durable by syncing the
/// parent directory. A crash at any point either leaves the old file intact
/// or the new one complete — never a torn store — which is the property the
/// model store, the `.lineage` sidecar and every trainer checkpoint rest
/// on. Every I/O result is checked: a write, fsync or close failure (e.g.
/// ENOSPC, where close() delivers deferred errors) removes the temp file
/// and returns false without touching the good copy.
inline bool WriteFileAtomic(const std::string& path,
                            const std::vector<uint8_t>& bytes) {
  const std::string tmp = path + ".tmp";
  std::error_code ec;
  const int fd = ::open(tmp.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (fd < 0) return false;
  auto fail = [&]() {
    ::close(fd);
    std::filesystem::remove(tmp, ec);
    return false;
  };
  size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + written,
                              bytes.size() - written);
    if (n < 0) return fail();
    written += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) return fail();
  if (::close(fd) != 0) {
    std::filesystem::remove(tmp, ec);
    return false;
  }
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    return false;
  }
  // Make the rename durable: without the directory fsync a crash can lose
  // the new directory entry even though the data blocks reached disk.
  const std::string dir =
      std::filesystem::path(path).parent_path().string();
  const int dir_fd = ::open(dir.empty() ? "." : dir.c_str(), O_RDONLY);
  if (dir_fd < 0) return false;
  const bool dir_ok = ::fsync(dir_fd) == 0;
  ::close(dir_fd);
  return dir_ok;
}

/// Reads the whole file into `*bytes`; false if it cannot be opened.
inline bool ReadFileBytes(const std::string& path,
                          std::vector<uint8_t>* bytes) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  bytes->assign((std::istreambuf_iterator<char>(in)),
                std::istreambuf_iterator<char>());
  return true;
}

/// Appends POD values and simple containers to a byte buffer.
class ByteWriter {
 public:
  explicit ByteWriter(std::vector<uint8_t>* out) : out_(out) {}

  template <typename T>
  void Pod(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    const uint8_t* p = reinterpret_cast<const uint8_t*>(&v);
    out_->insert(out_->end(), p, p + sizeof(T));
  }

  void U32(uint32_t v) { Pod(v); }
  void F64(double v) { Pod(v); }

  void Bytes(const std::vector<uint8_t>& v) {
    U32(static_cast<uint32_t>(v.size()));
    out_->insert(out_->end(), v.begin(), v.end());
  }

  void String(const std::string& s) {
    U32(static_cast<uint32_t>(s.size()));
    out_->insert(out_->end(), s.begin(), s.end());
  }

  template <typename T>
  void PodVector(const std::vector<T>& v) {
    U32(static_cast<uint32_t>(v.size()));
    for (const T& x : v) Pod(x);
  }

 private:
  std::vector<uint8_t>* out_;
};

/// Reads values written by ByteWriter; all methods return false on
/// truncated/corrupt input.
class ByteReader {
 public:
  explicit ByteReader(const std::vector<uint8_t>& in) : in_(in) {}

  template <typename T>
  bool Pod(T* v) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (pos_ + sizeof(T) > in_.size()) return false;
    std::memcpy(v, in_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }

  bool U32(uint32_t* v) { return Pod(v); }
  bool F64(double* v) { return Pod(v); }

  bool Bytes(std::vector<uint8_t>* v) {
    uint32_t n = 0;
    if (!U32(&n) || pos_ + n > in_.size()) return false;
    v->assign(in_.begin() + static_cast<long>(pos_),
              in_.begin() + static_cast<long>(pos_ + n));
    pos_ += n;
    return true;
  }

  bool String(std::string* s) {
    uint32_t n = 0;
    if (!U32(&n) || pos_ + n > in_.size()) return false;
    s->assign(reinterpret_cast<const char*>(in_.data() + pos_), n);
    pos_ += n;
    return true;
  }

  template <typename T>
  bool PodVector(std::vector<T>* v) {
    uint32_t n = 0;
    if (!U32(&n)) return false;
    v->resize(n);
    for (uint32_t i = 0; i < n; ++i) {
      if (!Pod(&(*v)[i])) return false;
    }
    return true;
  }

  bool AtEnd() const { return pos_ == in_.size(); }
  size_t position() const { return pos_; }

 private:
  const std::vector<uint8_t>& in_;
  size_t pos_ = 0;
};

}  // namespace resest

#endif  // RESEST_COMMON_SERIAL_H_
