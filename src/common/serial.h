// Minimal binary serialization helpers (little-endian, in-memory buffers)
// used by the model store, plus the shared whole-file byte-blob read/write
// all persisted artifacts (model store, delta lineage, observation logs)
// go through.
#ifndef RESEST_COMMON_SERIAL_H_
#define RESEST_COMMON_SERIAL_H_

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <system_error>
#include <vector>

namespace resest {

/// Writes `bytes` to `path` atomically: the content lands in `<path>.tmp`
/// first and is renamed over `path` only once fully written, so a crash
/// mid-write never destroys an existing good file — the property the
/// trainer's checkpoint/restore crash-recovery story rests on.
inline bool WriteFileAtomic(const std::string& path,
                            const std::vector<uint8_t>& bytes) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    // Close before checking: the final flush can fail (e.g. ENOSPC), and a
    // truncated tmp must never be renamed over the good file.
    out.close();
    if (!out.good()) {
      std::error_code ec;
      std::filesystem::remove(tmp, ec);
      return false;
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    return false;
  }
  return true;
}

/// Reads the whole file into `*bytes`; false if it cannot be opened.
inline bool ReadFileBytes(const std::string& path,
                          std::vector<uint8_t>* bytes) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  bytes->assign((std::istreambuf_iterator<char>(in)),
                std::istreambuf_iterator<char>());
  return true;
}

/// Appends POD values and simple containers to a byte buffer.
class ByteWriter {
 public:
  explicit ByteWriter(std::vector<uint8_t>* out) : out_(out) {}

  template <typename T>
  void Pod(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    const uint8_t* p = reinterpret_cast<const uint8_t*>(&v);
    out_->insert(out_->end(), p, p + sizeof(T));
  }

  void U32(uint32_t v) { Pod(v); }
  void F64(double v) { Pod(v); }

  void Bytes(const std::vector<uint8_t>& v) {
    U32(static_cast<uint32_t>(v.size()));
    out_->insert(out_->end(), v.begin(), v.end());
  }

  void String(const std::string& s) {
    U32(static_cast<uint32_t>(s.size()));
    out_->insert(out_->end(), s.begin(), s.end());
  }

  template <typename T>
  void PodVector(const std::vector<T>& v) {
    U32(static_cast<uint32_t>(v.size()));
    for (const T& x : v) Pod(x);
  }

 private:
  std::vector<uint8_t>* out_;
};

/// Reads values written by ByteWriter; all methods return false on
/// truncated/corrupt input.
class ByteReader {
 public:
  explicit ByteReader(const std::vector<uint8_t>& in) : in_(in) {}

  template <typename T>
  bool Pod(T* v) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (pos_ + sizeof(T) > in_.size()) return false;
    std::memcpy(v, in_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }

  bool U32(uint32_t* v) { return Pod(v); }
  bool F64(double* v) { return Pod(v); }

  bool Bytes(std::vector<uint8_t>* v) {
    uint32_t n = 0;
    if (!U32(&n) || pos_ + n > in_.size()) return false;
    v->assign(in_.begin() + static_cast<long>(pos_),
              in_.begin() + static_cast<long>(pos_ + n));
    pos_ += n;
    return true;
  }

  bool String(std::string* s) {
    uint32_t n = 0;
    if (!U32(&n) || pos_ + n > in_.size()) return false;
    s->assign(reinterpret_cast<const char*>(in_.data() + pos_), n);
    pos_ += n;
    return true;
  }

  template <typename T>
  bool PodVector(std::vector<T>* v) {
    uint32_t n = 0;
    if (!U32(&n)) return false;
    v->resize(n);
    for (uint32_t i = 0; i < n; ++i) {
      if (!Pod(&(*v)[i])) return false;
    }
    return true;
  }

  bool AtEnd() const { return pos_ == in_.size(); }
  size_t position() const { return pos_; }

 private:
  const std::vector<uint8_t>& in_;
  size_t pos_ = 0;
};

}  // namespace resest

#endif  // RESEST_COMMON_SERIAL_H_
