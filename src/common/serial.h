// Minimal binary serialization helpers (little-endian, in-memory buffers)
// used by the model store.
#ifndef RESEST_COMMON_SERIAL_H_
#define RESEST_COMMON_SERIAL_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace resest {

/// Appends POD values and simple containers to a byte buffer.
class ByteWriter {
 public:
  explicit ByteWriter(std::vector<uint8_t>* out) : out_(out) {}

  template <typename T>
  void Pod(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    const uint8_t* p = reinterpret_cast<const uint8_t*>(&v);
    out_->insert(out_->end(), p, p + sizeof(T));
  }

  void U32(uint32_t v) { Pod(v); }
  void F64(double v) { Pod(v); }

  void Bytes(const std::vector<uint8_t>& v) {
    U32(static_cast<uint32_t>(v.size()));
    out_->insert(out_->end(), v.begin(), v.end());
  }

  void String(const std::string& s) {
    U32(static_cast<uint32_t>(s.size()));
    out_->insert(out_->end(), s.begin(), s.end());
  }

  template <typename T>
  void PodVector(const std::vector<T>& v) {
    U32(static_cast<uint32_t>(v.size()));
    for (const T& x : v) Pod(x);
  }

 private:
  std::vector<uint8_t>* out_;
};

/// Reads values written by ByteWriter; all methods return false on
/// truncated/corrupt input.
class ByteReader {
 public:
  explicit ByteReader(const std::vector<uint8_t>& in) : in_(in) {}

  template <typename T>
  bool Pod(T* v) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (pos_ + sizeof(T) > in_.size()) return false;
    std::memcpy(v, in_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }

  bool U32(uint32_t* v) { return Pod(v); }
  bool F64(double* v) { return Pod(v); }

  bool Bytes(std::vector<uint8_t>* v) {
    uint32_t n = 0;
    if (!U32(&n) || pos_ + n > in_.size()) return false;
    v->assign(in_.begin() + static_cast<long>(pos_),
              in_.begin() + static_cast<long>(pos_ + n));
    pos_ += n;
    return true;
  }

  bool String(std::string* s) {
    uint32_t n = 0;
    if (!U32(&n) || pos_ + n > in_.size()) return false;
    s->assign(reinterpret_cast<const char*>(in_.data() + pos_), n);
    pos_ += n;
    return true;
  }

  template <typename T>
  bool PodVector(std::vector<T>* v) {
    uint32_t n = 0;
    if (!U32(&n)) return false;
    v->resize(n);
    for (uint32_t i = 0; i < n; ++i) {
      if (!Pod(&(*v)[i])) return false;
    }
    return true;
  }

  bool AtEnd() const { return pos_ == in_.size(); }
  size_t position() const { return pos_; }

 private:
  const std::vector<uint8_t>& in_;
  size_t pos_ = 0;
};

}  // namespace resest

#endif  // RESEST_COMMON_SERIAL_H_
