#include "src/common/arena.h"

#include <algorithm>

namespace resest {

namespace {
inline size_t AlignUp(size_t value, size_t align) {
  return (value + align - 1) & ~(align - 1);
}
}  // namespace

void* Arena::Allocate(size_t bytes, size_t align) {
  if (bytes == 0) bytes = 1;  // distinct non-null pointers for empty arrays
  if (block_index_ < blocks_.size()) {
    Block& block = blocks_[block_index_];
    const size_t aligned = AlignUp(offset_, align);
    if (aligned + bytes <= block.size) {
      offset_ = aligned + bytes;
      bytes_used_ += bytes;
      return block.data.get() + aligned;
    }
  }
  return AllocateSlow(bytes, align);
}

void* Arena::AllocateSlow(size_t bytes, size_t align) {
  // Try the remaining blocks of a previously grown chain before extending
  // it; each candidate block is at least double its predecessor, so the
  // scan is short and a fit is likely.
  while (block_index_ + 1 < blocks_.size()) {
    ++block_index_;
    offset_ = 0;
    Block& block = blocks_[block_index_];
    const size_t aligned = AlignUp(offset_, align);
    if (aligned + bytes <= block.size) {
      offset_ = aligned + bytes;
      bytes_used_ += bytes;
      return block.data.get() + aligned;
    }
  }
  const size_t last_size = blocks_.empty() ? initial_bytes_ / 2
                                           : blocks_.back().size;
  const size_t size = std::max(last_size * 2, AlignUp(bytes + align, 64));
  Block block;
  block.data = std::make_unique<unsigned char[]>(size);
  block.size = size;
  blocks_.push_back(std::move(block));
  ++blocks_allocated_;
  block_index_ = blocks_.size() - 1;
  const size_t aligned = AlignUp(size_t{0}, align);
  offset_ = aligned + bytes;
  bytes_used_ += bytes;
  return blocks_[block_index_].data.get() + aligned;
}

void Arena::Reset() {
  if (blocks_.size() > 1) {
    // The last cycle overflowed the resident block: replace the chain with
    // one block sized for the whole cycle, so subsequent cycles bump within
    // a single block and never hit AllocateSlow.
    size_t total = 0;
    for (const Block& b : blocks_) total += b.size;
    blocks_.clear();
    Block block;
    block.data = std::make_unique<unsigned char[]>(total);
    block.size = total;
    blocks_.push_back(std::move(block));
    ++blocks_allocated_;
  }
  block_index_ = 0;
  offset_ = 0;
  bytes_used_ = 0;
}

size_t Arena::bytes_reserved() const {
  size_t total = 0;
  for (const Block& b : blocks_) total += b.size;
  return total;
}

}  // namespace resest
