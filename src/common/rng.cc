#include "src/common/rng.h"

namespace resest {

namespace {
double Zeta(int64_t n, double theta) {
  double sum = 0.0;
  for (int64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(static_cast<double>(i), theta);
  return sum;
}
}  // namespace

ZipfSampler::ZipfSampler(int64_t n, double z) : n_(n < 1 ? 1 : n), z_(z) {
  if (z_ <= 1e-9) return;  // uniform; nothing to precompute
  zeta2_ = Zeta(2, z_);
  zetan_ = Zeta(n_, z_);
  alpha_ = 1.0 / (1.0 - z_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - z_)) /
         (1.0 - zeta2_ / zetan_);
}

int64_t ZipfSampler::Sample(Rng* rng) const {
  if (z_ <= 1e-9) return rng->UniformInt(1, n_);
  const double u = rng->Uniform();
  const double uz = u * zetan_;
  if (uz < 1.0) return 1;
  if (uz < 1.0 + std::pow(0.5, z_)) return 2;
  // z == 1 would make alpha_ infinite; the standard trick nudges the exponent.
  const double alpha = (std::fabs(z_ - 1.0) < 1e-9) ? 1.0 / (1.0 - 1.0001) : alpha_;
  int64_t v = 1 + static_cast<int64_t>(static_cast<double>(n_) *
                                       std::pow(eta_ * u - eta_ + 1.0, alpha));
  if (v < 1) v = 1;
  if (v > n_) v = n_;
  return v;
}

}  // namespace resest
