// Minimal dense linear algebra: just enough for least-squares fitting
// (linear regression baselines, scaling-function calibration) without an
// external dependency. Column-major is unnecessary at these sizes; we use
// row-major with straightforward O(n^3) factorizations.
#ifndef RESEST_COMMON_MATRIX_H_
#define RESEST_COMMON_MATRIX_H_

#include <cstddef>
#include <vector>

namespace resest {

/// Row-major dense matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  double& at(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double at(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  /// A^T * A (Gram matrix), used to form normal equations.
  Matrix Gram() const;

  /// A^T * y for a vector y with rows() entries.
  std::vector<double> TransposeTimes(const std::vector<double>& y) const;

  /// A * x for a vector x with cols() entries.
  std::vector<double> Times(const std::vector<double>& x) const;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

/// Solves the symmetric positive-definite system A x = b by Cholesky
/// factorization. Adds `ridge` to the diagonal for numerical stability.
/// Returns false if the (regularized) matrix is not positive definite.
bool CholeskySolve(Matrix a, std::vector<double> b, double ridge,
                   std::vector<double>* x);

/// Ordinary least squares: finds beta minimizing ||X beta - y||_2 via the
/// ridge-stabilized normal equations. Returns false on singular systems.
bool LeastSquares(const Matrix& x, const std::vector<double>& y,
                  std::vector<double>* beta, double ridge = 1e-8);

/// One-parameter least squares: alpha minimizing ||alpha * g - y||_2.
/// Used to calibrate scaling functions (paper Section 6.2).
double FitScale(const std::vector<double>& g, const std::vector<double>& y);

}  // namespace resest

#endif  // RESEST_COMMON_MATRIX_H_
