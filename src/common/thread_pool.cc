#include "src/common/thread_pool.h"

#include <stdexcept>
#include <utility>

namespace resest {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  try {
    for (size_t i = 0; i < num_threads; ++i) {
      workers_.emplace_back([this]() { WorkerLoop(); });
    }
  } catch (...) {
    // A failed spawn (thread exhaustion) must release the workers already
    // parked on the condition variable, or destroying joinable threads
    // calls std::terminate instead of propagating the exception.
    {
      std::lock_guard<std::mutex> lock(mu_);
      shutdown_ = true;
    }
    work_available_.notify_all();
    for (std::thread& w : workers_) {
      if (w.joinable()) w.join();
    }
    throw;
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_available_.notify_all();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::Enqueue(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      throw std::runtime_error("ThreadPool: Submit after shutdown");
    }
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_idle_.wait(lock, [this]() { return queue_.empty() && active_ == 0; });
}

size_t ThreadPool::QueueDepth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock,
                           [this]() { return shutdown_ || !queue_.empty(); });
      // Drain the queue before exiting so ~ThreadPool never drops work.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) all_idle_.notify_all();
    }
  }
}

}  // namespace resest
