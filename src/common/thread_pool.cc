#include "src/common/thread_pool.h"

#include <stdexcept>
#include <utility>

namespace resest {

const char* TaskPriorityName(TaskPriority p) {
  switch (p) {
    case TaskPriority::kUrgent:
      return "urgent";
    case TaskPriority::kNormal:
      return "normal";
    case TaskPriority::kBulk:
      return "bulk";
  }
  return "unknown";
}

bool ParseTaskPriority(const std::string& name, TaskPriority* out) {
  for (size_t i = 0; i < kNumTaskPriorities; ++i) {
    const TaskPriority p = static_cast<TaskPriority>(static_cast<int>(i));
    if (name == TaskPriorityName(p)) {
      *out = p;
      return true;
    }
  }
  return false;
}

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  try {
    for (size_t i = 0; i < num_threads; ++i) {
      workers_.emplace_back([this]() { WorkerLoop(); });
    }
  } catch (...) {
    // A failed spawn (thread exhaustion) must release the workers already
    // parked on the condition variable, or destroying joinable threads
    // calls std::terminate instead of propagating the exception.
    {
      std::lock_guard<std::mutex> lock(mu_);
      shutdown_ = true;
    }
    work_available_.notify_all();
    for (std::thread& w : workers_) {
      if (w.joinable()) w.join();
    }
    throw;
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_available_.notify_all();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
}

bool ThreadPool::AllLanesEmptyLocked() const {
  for (const auto& lane : lanes_) {
    if (!lane.empty()) return false;
  }
  return true;
}

void ThreadPool::Enqueue(TaskPriority priority, std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      throw std::runtime_error("ThreadPool: Submit after shutdown");
    }
    lanes_[static_cast<size_t>(priority)].push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_idle_.wait(lock,
                 [this]() { return AllLanesEmptyLocked() && active_ == 0; });
}

size_t ThreadPool::QueueDepth() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t depth = 0;
  for (const auto& lane : lanes_) depth += lane.size();
  return depth;
}

size_t ThreadPool::QueueDepth(TaskPriority priority) const {
  std::lock_guard<std::mutex> lock(mu_);
  return lanes_[static_cast<size_t>(priority)].size();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(
          lock, [this]() { return shutdown_ || !AllLanesEmptyLocked(); });
      // Drain every lane before exiting so ~ThreadPool never drops work.
      std::deque<std::function<void()>>* lane = nullptr;
      for (auto& candidate : lanes_) {
        if (!candidate.empty()) {
          lane = &candidate;
          break;
        }
      }
      if (lane == nullptr) return;
      task = std::move(lane->front());
      lane->pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (AllLanesEmptyLocked() && active_ == 0) all_idle_.notify_all();
    }
  }
}

}  // namespace resest
