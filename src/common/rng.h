// Deterministic pseudo-random number generation for reproducible experiments.
//
// All randomness in the library flows through Rng so that a single seed fully
// determines generated data, workloads, simulated noise and model training.
#ifndef RESEST_COMMON_RNG_H_
#define RESEST_COMMON_RNG_H_

#include <cmath>
#include <cstdint>
#include <vector>

namespace resest {

/// A small, fast, deterministic PRNG (xoshiro256** with splitmix64 seeding).
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) { Seed(seed); }

  /// Re-seeds the generator; the same seed always yields the same stream.
  void Seed(uint64_t seed) {
    uint64_t x = seed;
    for (auto& si : s_) {
      // splitmix64 to spread the seed across the state.
      x += 0x9e3779b97f4a7c15ull;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      si = z ^ (z >> 31);
    }
  }

  /// Next raw 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double Uniform() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int64_t>(Next() % span);
  }

  /// Standard normal variate (Box-Muller).
  double Gaussian() {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    double u1 = 0.0;
    while (u1 <= 1e-300) u1 = Uniform();
    const double u2 = Uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 6.283185307179586 * u2;
    spare_ = r * std::sin(theta);
    have_spare_ = true;
    return r * std::cos(theta);
  }

  double Gaussian(double mean, double stddev) {
    return mean + stddev * Gaussian();
  }

  /// Multiplicative log-normal noise factor with median 1.
  double LogNormalFactor(double sigma) { return std::exp(Gaussian(0.0, sigma)); }

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p) { return Uniform() < p; }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      const size_t j = static_cast<size_t>(Next() % i);
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Derives an independent child generator (for per-module streams).
  Rng Fork() { return Rng(Next()); }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t s_[4];
  bool have_spare_ = false;
  double spare_ = 0.0;
};

/// Samples from a Zipf(z) distribution over {1, ..., n} using the rejection
/// method of Gray et al. ("Quickly generating billion-record synthetic
/// databases"), the same algorithm used by the Microsoft TPC-H skew tool the
/// paper generates data with.
class ZipfSampler {
 public:
  /// @param n     Domain size (values 1..n).
  /// @param z     Skew parameter; z = 0 degenerates to uniform.
  ZipfSampler(int64_t n, double z);

  /// Draws one sample in [1, n].
  int64_t Sample(Rng* rng) const;

  int64_t domain_size() const { return n_; }
  double skew() const { return z_; }

 private:
  int64_t n_;
  double z_;
  double zeta2_ = 0.0;   // zeta(2, z)
  double zetan_ = 0.0;   // zeta(n, z)
  double alpha_ = 0.0;
  double eta_ = 0.0;
};

}  // namespace resest

#endif  // RESEST_COMMON_RNG_H_
