// Bump-pointer arena for per-chunk serving scratch (the edgesql-lite
// arena/query-allocator pattern): the batched estimation pipeline allocates
// all of its transient state — grouped rows, dedup tables, packed input
// matrices — from one arena that is Reset() between chunks instead of freed,
// so the steady-state batch path performs zero heap allocations.
//
// Lifetime rules (see docs/inference_tuning.md):
//  - Allocate() pointers are valid until the next Reset(); nothing allocated
//    from an arena may outlive the chunk that allocated it. Results that
//    must survive (estimate doubles, cache entries) are copied out.
//  - Reset() retires every allocation at once but KEEPS the backing blocks,
//    so a warmed arena never touches the heap again; after a growth spike it
//    coalesces the block chain into one block on the next Reset, restoring
//    the single-block fast path.
//  - An Arena is single-threaded by design. The serving layer keeps one
//    thread_local arena per worker (see estimation_service.cc); sharing one
//    arena across threads is a data race.
//  - Allocation never constructs objects: AllocateArray<T> requires
//    trivially destructible T and returns uninitialized storage.
#ifndef RESEST_COMMON_ARENA_H_
#define RESEST_COMMON_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

namespace resest {

class Arena {
 public:
  /// `initial_bytes` sizes the first block, allocated lazily on first use.
  explicit Arena(size_t initial_bytes = 64 * 1024)
      : initial_bytes_(initial_bytes < kMinBlockBytes ? kMinBlockBytes
                                                      : initial_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Uninitialized storage for `n` objects of T, aligned for T. Returns a
  /// non-null pointer even for n == 0 (a valid empty array).
  template <typename T>
  T* AllocateArray(size_t n) {
    static_assert(std::is_trivially_destructible<T>::value,
                  "arena storage is reclaimed without running destructors");
    return static_cast<T*>(Allocate(n * sizeof(T), alignof(T)));
  }

  /// Raw aligned allocation. `align` must be a power of two.
  void* Allocate(size_t bytes, size_t align);

  /// Retires every allocation, keeping (and, after growth, coalescing) the
  /// backing memory for reuse. O(1) unless the previous cycle grew the
  /// chain, in which case one replacement block is allocated.
  void Reset();

  /// Bytes handed out since the last Reset (diagnostics, tests).
  size_t bytes_used() const { return bytes_used_; }
  /// Total backing capacity currently held (diagnostics, tests).
  size_t bytes_reserved() const;
  /// Heap blocks acquired over the arena's lifetime (tests assert the
  /// steady state stops growing this).
  uint64_t blocks_allocated() const { return blocks_allocated_; }

 private:
  static constexpr size_t kMinBlockBytes = 4 * 1024;

  struct Block {
    std::unique_ptr<unsigned char[]> data;
    size_t size = 0;
  };

  /// Slow path: advances to (or allocates) a block that fits `bytes`.
  void* AllocateSlow(size_t bytes, size_t align);

  size_t initial_bytes_;
  std::vector<Block> blocks_;
  size_t block_index_ = 0;  ///< Block currently being bumped.
  size_t offset_ = 0;       ///< Bump offset within blocks_[block_index_].
  size_t bytes_used_ = 0;
  uint64_t blocks_allocated_ = 0;
};

}  // namespace resest

#endif  // RESEST_COMMON_ARENA_H_
