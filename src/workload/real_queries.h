// Synthetic "real-life decision support" workload generators.
//
// The paper's Real-1 (222 distinct queries, 5-8 way joins) and Real-2
// (887 distinct queries, ~12-way joins) workloads are proprietary; these
// generators produce random-but-reproducible query populations with matching
// query counts, join arities and analytic structure over the Real1/Real2
// schemas (see DESIGN.md, substitution table).
#ifndef RESEST_WORKLOAD_REAL_QUERIES_H_
#define RESEST_WORKLOAD_REAL_QUERIES_H_

#include <vector>

#include "src/common/rng.h"
#include "src/optimizer/query_spec.h"

namespace resest {

/// Generates the Real-1 workload: `count` distinct decision-support queries
/// over the Real1Schema (paper uses 222).
std::vector<QuerySpec> GenerateReal1Workload(int count, Rng* rng);

/// Generates the Real-2 workload: `count` distinct, deeper queries over the
/// Real2Schema (paper uses 887).
std::vector<QuerySpec> GenerateReal2Workload(int count, Rng* rng);

}  // namespace resest

#endif  // RESEST_WORKLOAD_REAL_QUERIES_H_
