// Parameterized TPC-H-like query templates.
//
// Stands in for the QGEN tool: each call instantiates a template with random
// parameters drawn from the data domains, so repeated instantiations of one
// template vary widely in selectivity — and, on skewed data, in resource
// consumption — as in the paper's 2500-query TPC-H workload.
#ifndef RESEST_WORKLOAD_TPCH_QUERIES_H_
#define RESEST_WORKLOAD_TPCH_QUERIES_H_

#include <vector>

#include "src/common/rng.h"
#include "src/optimizer/query_spec.h"
#include "src/storage/catalog.h"

namespace resest {

/// Number of distinct TPC-H-like templates.
int NumTpchTemplates();

/// Instantiates template `id` (0-based, modulo the template count) with
/// random parameters.
QuerySpec MakeTpchQuery(int id, Rng* rng, const Database* db);

/// Generates `count` queries cycling through all templates.
std::vector<QuerySpec> GenerateTpchWorkload(int count, Rng* rng,
                                            const Database* db);

}  // namespace resest

#endif  // RESEST_WORKLOAD_TPCH_QUERIES_H_
