#include "src/workload/tpch_queries.h"

#include <algorithm>

#include "src/workload/schemas.h"

namespace resest {

namespace {

using tpch::kDateDomain;
using tpch::kPriceDomain;
using tpch::kQuantityDomain;

Predicate Le(const std::string& col, Value hi) {
  return Predicate{col, Predicate::Op::kLe, 0, hi};
}
Predicate Ge(const std::string& col, Value lo) {
  return Predicate{col, Predicate::Op::kGe, lo, 0};
}
Predicate Eq(const std::string& col, Value v) {
  return Predicate{col, Predicate::Op::kEq, v, v};
}
Predicate Between(const std::string& col, Value lo, Value hi) {
  return Predicate{col, Predicate::Op::kBetween, lo, hi};
}

/// Rows of a base table in the target database (for key-range parameters).
int64_t RowsOf(const Database* db, const char* table) {
  const Table* t = db->FindTable(table);
  return t == nullptr ? 1 : t->row_count();
}

/// Random date with a random window length; windows between ~1 week and
/// ~2 years give selectivities spanning three orders of magnitude.
std::pair<Value, Value> DateWindow(Rng* rng) {
  const Value lo = rng->UniformInt(1, kDateDomain - 30);
  const Value len = rng->UniformInt(7, 700);
  return {lo, std::min<Value>(kDateDomain, lo + len)};
}

// Template bodies. Each mirrors the plan shape of a TPC-H query (pricing
// summary, shipping-priority join, local-supplier 6-way join, ...).

// Q1: pricing summary report — big scan + aggregation.
QuerySpec Q1(Rng* rng, const Database* db) {
  (void)db;
  QuerySpec q;
  q.name = "tpch_q1";
  q.tables.push_back(TableRef{
      "lineitem",
      {Le("l_shipdate", rng->UniformInt(kDateDomain / 2, kDateDomain))},
      {"l_returnflag", "l_linestatus", "l_quantity", "l_extendedprice",
       "l_discount", "l_tax"}});
  q.group_columns = {"lineitem.l_returnflag", "lineitem.l_linestatus"};
  q.num_aggregates = 4;
  q.order_by = {"lineitem.l_returnflag", "lineitem.l_linestatus"};
  return q;
}

// Q3: shipping priority — customer x orders x lineitem with date filters.
QuerySpec Q3(Rng* rng, const Database* db) {
  (void)db;
  const auto [olo, ohi] = DateWindow(rng);
  QuerySpec q;
  q.name = "tpch_q3";
  q.tables.push_back(TableRef{
      "customer",
      {Eq("c_mktsegment", rng->UniformInt(1, tpch::kMktSegments))},
      {"c_custkey"}});
  q.tables.push_back(
      TableRef{"orders", {Between("o_orderdate", olo, ohi)},
               {"o_orderkey", "o_custkey", "o_orderdate"}});
  q.tables.push_back(TableRef{
      "lineitem",
      {Ge("l_shipdate", ohi)},
      {"l_orderkey", "l_extendedprice", "l_discount"}});
  q.joins.push_back(JoinEdge{0, 1, "c_custkey", "o_custkey"});
  q.joins.push_back(JoinEdge{1, 2, "o_orderkey", "l_orderkey"});
  q.group_columns = {"orders.o_orderkey", "orders.o_orderdate"};
  q.num_aggregates = 1;
  q.order_by = {"agg0"};
  q.limit = 10;
  return q;
}

// Q4: order priority checking.
QuerySpec Q4(Rng* rng, const Database* db) {
  (void)db;
  const auto [lo, hi] = DateWindow(rng);
  QuerySpec q;
  q.name = "tpch_q4";
  q.tables.push_back(TableRef{"orders",
                              {Between("o_orderdate", lo, hi)},
                              {"o_orderkey", "o_orderpriority"}});
  q.tables.push_back(TableRef{
      "lineitem",
      {Le("l_commitdate", rng->UniformInt(kDateDomain / 3, kDateDomain))},
      {"l_orderkey"}});
  q.joins.push_back(JoinEdge{0, 1, "o_orderkey", "l_orderkey"});
  q.group_columns = {"orders.o_orderpriority"};
  q.num_aggregates = 1;
  q.order_by = {"orders.o_orderpriority"};
  return q;
}

// Q5: local supplier volume — 6-way join with region filter.
QuerySpec Q5(Rng* rng, const Database* db) {
  (void)db;
  const auto [lo, hi] = DateWindow(rng);
  QuerySpec q;
  q.name = "tpch_q5";
  q.tables.push_back(TableRef{"customer", {}, {"c_custkey", "c_nationkey"}});
  q.tables.push_back(TableRef{"orders",
                              {Between("o_orderdate", lo, hi)},
                              {"o_orderkey", "o_custkey"}});
  q.tables.push_back(TableRef{
      "lineitem", {}, {"l_orderkey", "l_suppkey", "l_extendedprice",
                       "l_discount"}});
  q.tables.push_back(TableRef{"supplier", {}, {"s_suppkey", "s_nationkey"}});
  q.tables.push_back(TableRef{"nation", {}, {"n_nationkey", "n_regionkey",
                                             "n_name"}});
  q.tables.push_back(TableRef{
      "region", {Eq("r_regionkey", rng->UniformInt(1, 5))}, {"r_regionkey"}});
  q.joins.push_back(JoinEdge{0, 1, "c_custkey", "o_custkey"});
  q.joins.push_back(JoinEdge{1, 2, "o_orderkey", "l_orderkey"});
  q.joins.push_back(JoinEdge{2, 3, "l_suppkey", "s_suppkey"});
  q.joins.push_back(JoinEdge{3, 4, "s_nationkey", "n_nationkey"});
  q.joins.push_back(JoinEdge{4, 5, "n_regionkey", "r_regionkey"});
  q.group_columns = {"nation.n_name"};
  q.num_aggregates = 1;
  q.order_by = {"agg0"};
  return q;
}

// Q6: forecasting revenue change — selective scan, scalar aggregate.
QuerySpec Q6(Rng* rng, const Database* db) {
  (void)db;
  const auto [lo, hi] = DateWindow(rng);
  const Value disc = rng->UniformInt(2, 9);
  QuerySpec q;
  q.name = "tpch_q6";
  q.tables.push_back(TableRef{
      "lineitem",
      {Between("l_shipdate", lo, hi), Between("l_discount", disc - 1, disc + 1),
       Le("l_quantity", rng->UniformInt(10, kQuantityDomain))},
      {"l_extendedprice", "l_discount"}});
  q.num_aggregates = 1;
  return q;
}

// Q10: returned item reporting.
QuerySpec Q10(Rng* rng, const Database* db) {
  (void)db;
  const auto [lo, hi] = DateWindow(rng);
  QuerySpec q;
  q.name = "tpch_q10";
  q.tables.push_back(TableRef{
      "customer", {}, {"c_custkey", "c_nationkey", "c_acctbal"}});
  q.tables.push_back(TableRef{"orders",
                              {Between("o_orderdate", lo, hi)},
                              {"o_orderkey", "o_custkey"}});
  q.tables.push_back(TableRef{"lineitem",
                              {Eq("l_returnflag", rng->UniformInt(1, 3))},
                              {"l_orderkey", "l_extendedprice", "l_discount"}});
  q.tables.push_back(TableRef{"nation", {}, {"n_nationkey", "n_name"}});
  q.joins.push_back(JoinEdge{0, 1, "c_custkey", "o_custkey"});
  q.joins.push_back(JoinEdge{1, 2, "o_orderkey", "l_orderkey"});
  q.joins.push_back(JoinEdge{0, 3, "c_nationkey", "n_nationkey"});
  q.group_columns = {"customer.c_custkey", "nation.n_name"};
  q.num_aggregates = 1;
  q.order_by = {"agg0"};
  q.limit = 20;
  return q;
}

// Q12: shipping modes and order priority.
QuerySpec Q12(Rng* rng, const Database* db) {
  (void)db;
  const auto [lo, hi] = DateWindow(rng);
  QuerySpec q;
  q.name = "tpch_q12";
  q.tables.push_back(
      TableRef{"orders", {}, {"o_orderkey", "o_orderpriority"}});
  q.tables.push_back(TableRef{
      "lineitem",
      {Eq("l_shipmode", rng->UniformInt(1, tpch::kShipModes)),
       Between("l_receiptdate", lo, hi)},
      {"l_orderkey", "l_shipmode"}});
  q.joins.push_back(JoinEdge{0, 1, "o_orderkey", "l_orderkey"});
  q.group_columns = {"lineitem.l_shipmode"};
  q.num_aggregates = 2;
  q.order_by = {"lineitem.l_shipmode"};
  return q;
}

// Q14: promotion effect — lineitem x part.
QuerySpec Q14(Rng* rng, const Database* db) {
  (void)db;
  const auto [lo, hi] = DateWindow(rng);
  QuerySpec q;
  q.name = "tpch_q14";
  q.tables.push_back(TableRef{"lineitem",
                              {Between("l_shipdate", lo, hi)},
                              {"l_partkey", "l_extendedprice", "l_discount"}});
  q.tables.push_back(TableRef{"part", {}, {"p_partkey", "p_type"}});
  q.joins.push_back(JoinEdge{0, 1, "l_partkey", "p_partkey"});
  q.num_aggregates = 2;
  q.num_scalar_exprs = 1;
  return q;
}

// Q18: large volume customers — join + big group-by.
QuerySpec Q18(Rng* rng, const Database* db) {
  (void)db;
  QuerySpec q;
  q.name = "tpch_q18";
  q.tables.push_back(TableRef{"orders", {}, {"o_orderkey", "o_custkey",
                                             "o_totalprice", "o_orderdate"}});
  q.tables.push_back(TableRef{"lineitem",
                              {Ge("l_quantity", rng->UniformInt(20, 45))},
                              {"l_orderkey", "l_quantity"}});
  q.joins.push_back(JoinEdge{0, 1, "o_orderkey", "l_orderkey"});
  q.group_columns = {"orders.o_custkey"};
  q.num_aggregates = 1;
  q.order_by = {"agg0"};
  q.limit = 100;
  return q;
}

// Q19: discounted revenue — part filters + quantity bands.
QuerySpec Q19(Rng* rng, const Database* db) {
  (void)db;
  const Value qty = rng->UniformInt(5, 30);
  QuerySpec q;
  q.name = "tpch_q19";
  q.tables.push_back(TableRef{
      "lineitem",
      {Between("l_quantity", qty, qty + 10),
       Eq("l_shipmode", rng->UniformInt(1, tpch::kShipModes))},
      {"l_partkey", "l_extendedprice", "l_discount"}});
  q.tables.push_back(TableRef{
      "part",
      {Eq("p_brand", rng->UniformInt(1, tpch::kBrands)),
       Le("p_size", rng->UniformInt(5, tpch::kPartSizes))},
      {"p_partkey"}});
  q.joins.push_back(JoinEdge{0, 1, "l_partkey", "p_partkey"});
  q.num_aggregates = 1;
  return q;
}

// Partsupp join: part x partsupp x supplier (Q2/Q11-like).
QuerySpec Q11(Rng* rng, const Database* db) {
  (void)db;
  QuerySpec q;
  q.name = "tpch_q11";
  q.tables.push_back(TableRef{"partsupp", {}, {"ps_partkey", "ps_suppkey",
                                               "ps_availqty", "ps_supplycost"}});
  q.tables.push_back(TableRef{"supplier", {}, {"s_suppkey", "s_nationkey"}});
  q.tables.push_back(TableRef{
      "nation", {Eq("n_nationkey", rng->UniformInt(1, 25))}, {"n_nationkey"}});
  q.joins.push_back(JoinEdge{0, 1, "ps_suppkey", "s_suppkey"});
  q.joins.push_back(JoinEdge{1, 2, "s_nationkey", "n_nationkey"});
  q.group_columns = {"partsupp.ps_partkey"};
  q.num_aggregates = 1;
  q.order_by = {"agg0"};
  q.limit = 50;
  return q;
}

// Point/range order lookup with lineitem expansion (drill-down query).
QuerySpec OrderDrill(Rng* rng, const Database* db) {
  const Value lo = rng->UniformInt(1, std::max<Value>(2, RowsOf(db, "orders") - 100));
  QuerySpec q;
  q.name = "tpch_drill";
  q.tables.push_back(TableRef{
      "orders",
      {Between("o_orderkey", lo, lo + rng->UniformInt(50, 2000))},
      {"o_orderkey", "o_custkey", "o_totalprice", "o_comment"}});
  q.tables.push_back(TableRef{
      "lineitem", {}, {"l_orderkey", "l_quantity", "l_extendedprice",
                       "l_comment"}});
  q.joins.push_back(JoinEdge{0, 1, "o_orderkey", "l_orderkey"});
  q.order_by = {"orders.o_orderkey"};
  return q;
}

// Wide-row sort: top-K of a filtered lineitem scan carrying payload columns.
QuerySpec SortHeavy(Rng* rng, const Database* db) {
  (void)db;
  const auto [lo, hi] = DateWindow(rng);
  QuerySpec q;
  q.name = "tpch_sort";
  q.tables.push_back(TableRef{
      "lineitem",
      {Between("l_shipdate", lo, hi)},
      {"l_orderkey", "l_extendedprice", "l_quantity", "l_comment",
       "l_shipmode"}});
  q.order_by = {"lineitem.l_extendedprice"};
  q.limit = rng->UniformInt(10, 1000);
  return q;
}

// Customer-order fan-out with selective customer predicate (seek-friendly).
QuerySpec CustOrders(Rng* rng, const Database* db) {
  const Value lo = rng->UniformInt(1, std::max<Value>(2, RowsOf(db, "customer") - 50));
  QuerySpec q;
  q.name = "tpch_custorders";
  q.tables.push_back(TableRef{
      "customer",
      {Between("c_custkey", lo, lo + rng->UniformInt(5, 200))},
      {"c_custkey", "c_acctbal"}});
  q.tables.push_back(TableRef{"orders", {}, {"o_custkey", "o_totalprice",
                                             "o_orderdate"}});
  q.joins.push_back(JoinEdge{0, 1, "c_custkey", "o_custkey"});
  q.group_columns = {"customer.c_custkey"};
  q.num_aggregates = 2;
  return q;
}

// Date-seek on orders then group by priority (index-seek driver).
QuerySpec DateSeek(Rng* rng, const Database* db) {
  (void)db;
  const Value lo = rng->UniformInt(1, kDateDomain - 40);
  QuerySpec q;
  q.name = "tpch_dateseek";
  q.tables.push_back(TableRef{
      "orders",
      {Between("o_orderdate", lo, lo + rng->UniformInt(3, 60))},
      {"o_orderkey", "o_orderdate", "o_orderpriority", "o_totalprice"}});
  q.group_columns = {"orders.o_orderpriority"};
  q.num_aggregates = 1;
  return q;
}

// Part popularity: part x lineitem grouped by brand (big hash join).
QuerySpec PartVolume(Rng* rng, const Database* db) {
  (void)db;
  QuerySpec q;
  q.name = "tpch_partvolume";
  q.tables.push_back(TableRef{
      "part", {Le("p_size", rng->UniformInt(10, tpch::kPartSizes))},
      {"p_partkey", "p_brand"}});
  q.tables.push_back(TableRef{
      "lineitem",
      {Ge("l_extendedprice", rng->UniformInt(1, kPriceDomain / 2))},
      {"l_partkey", "l_quantity"}});
  q.joins.push_back(JoinEdge{0, 1, "p_partkey", "l_partkey"});
  q.group_columns = {"part.p_brand"};
  q.num_aggregates = 2;
  q.order_by = {"part.p_brand"};
  return q;
}

// Pure scan with wide projection and mild filter (width stressor).
QuerySpec WideScan(Rng* rng, const Database* db) {
  (void)db;
  QuerySpec q;
  q.name = "tpch_widescan";
  q.tables.push_back(TableRef{
      "orders",
      {Le("o_totalprice", rng->UniformInt(100000, 500000))},
      {}});  // all columns
  q.num_aggregates = 1;
  return q;
}

using TemplateFn = QuerySpec (*)(Rng*, const Database*);
constexpr TemplateFn kTemplates[] = {
    Q1,  Q3,  Q4,        Q5,        Q6,        Q10,      Q12,      Q14,
    Q18, Q19, Q11,       OrderDrill, SortHeavy, CustOrders, DateSeek,
    PartVolume, WideScan,
};

}  // namespace

int NumTpchTemplates() {
  return static_cast<int>(sizeof(kTemplates) / sizeof(kTemplates[0]));
}

QuerySpec MakeTpchQuery(int id, Rng* rng, const Database* db) {
  const int n = NumTpchTemplates();
  return kTemplates[((id % n) + n) % n](rng, db);
}

std::vector<QuerySpec> GenerateTpchWorkload(int count, Rng* rng,
                                            const Database* db) {
  std::vector<QuerySpec> out;
  out.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) out.push_back(MakeTpchQuery(i, rng, db));
  return out;
}

}  // namespace resest
