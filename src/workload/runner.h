// Executes workloads and collects the training/test observations
// (annotated plans with measured resource consumption).
#ifndef RESEST_WORKLOAD_RUNNER_H_
#define RESEST_WORKLOAD_RUNNER_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/engine/executor.h"
#include "src/optimizer/plan_builder.h"
#include "src/optimizer/query_spec.h"
#include "src/storage/catalog.h"

namespace resest {

/// One executed query: the plan carries optimizer annotations (est) and
/// measured resource consumption (actual) on every operator.
struct ExecutedQuery {
  QuerySpec spec;
  Plan plan;
  const Database* database = nullptr;
  double scale_factor = 1.0;
};

/// Invoked once per successfully executed query, right after its measured
/// stats are filled in — the feedback edge a living deployment uses to
/// stream executions into training logs (see
/// src/training/incremental_trainer.h) without a second pass.
using ExecutionObserver = std::function<void(const ExecutedQuery&)>;

/// Builds, runs and collects plans for a batch of queries on one database.
/// Queries whose plans cannot be built or executed (e.g. a template asking
/// for a column the schema lacks) are skipped — skipped queries are not
/// observed. `on_executed` (optional) sees each executed query in
/// completion order, before the batch returns.
std::vector<ExecutedQuery> RunWorkload(const Database* db,
                                       const std::vector<QuerySpec>& queries,
                                       uint64_t noise_seed = 7,
                                       const ExecutionObserver& on_executed =
                                           nullptr);

}  // namespace resest

#endif  // RESEST_WORKLOAD_RUNNER_H_
