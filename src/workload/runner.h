// Executes workloads and collects the training/test observations
// (annotated plans with measured resource consumption).
#ifndef RESEST_WORKLOAD_RUNNER_H_
#define RESEST_WORKLOAD_RUNNER_H_

#include <memory>
#include <string>
#include <vector>

#include "src/engine/executor.h"
#include "src/optimizer/plan_builder.h"
#include "src/optimizer/query_spec.h"
#include "src/storage/catalog.h"

namespace resest {

/// One executed query: the plan carries optimizer annotations (est) and
/// measured resource consumption (actual) on every operator.
struct ExecutedQuery {
  QuerySpec spec;
  Plan plan;
  const Database* database = nullptr;
  double scale_factor = 1.0;
};

/// Builds, runs and collects plans for a batch of queries on one database.
/// Queries whose plans cannot be built or executed (e.g. a template asking
/// for a column the schema lacks) are skipped.
std::vector<ExecutedQuery> RunWorkload(const Database* db,
                                       const std::vector<QuerySpec>& queries,
                                       uint64_t noise_seed = 7);

}  // namespace resest

#endif  // RESEST_WORKLOAD_RUNNER_H_
