#include "src/workload/schemas.h"

namespace resest {

namespace {
ColumnSpec Key(const std::string& name) {
  return ColumnSpec{name, 8, 0, 0.0, false, "", "", 0};
}
ColumnSpec Fk(const std::string& name, const std::string& target, bool indexed) {
  ColumnSpec c;
  c.name = name;
  c.width_bytes = 8;
  c.fk_table = target;
  c.indexed = indexed;
  return c;
}
ColumnSpec Val(const std::string& name, int64_t domain, int width = 8,
               bool indexed = false) {
  ColumnSpec c;
  c.name = name;
  c.width_bytes = width;
  c.domain = domain;
  c.indexed = indexed;
  return c;
}
/// Uniformly distributed value column (dates, prices, measures): range
/// predicates over these behave sensibly regardless of the database skew,
/// while FK and categorical columns keep the Zipf skew that drives variance.
ColumnSpec UVal(const std::string& name, int64_t domain, int width = 8,
                bool indexed = false) {
  ColumnSpec c = Val(name, domain, width, indexed);
  c.zipf_z = 0.0;
  return c;
}
ColumnSpec Corr(const std::string& name, const std::string& base, int64_t span) {
  ColumnSpec c;
  c.name = name;
  c.width_bytes = 8;
  c.corr_col = base;
  c.corr_span = span;
  return c;
}
/// Wide filler column standing in for string payloads (comments, names).
ColumnSpec Payload(const std::string& name, int width) {
  ColumnSpec c;
  c.name = name;
  c.width_bytes = width;
  c.domain = 1000000;
  c.zipf_z = 0.0;
  return c;
}
}  // namespace

SchemaSpec TpchSchema() {
  SchemaSpec s;
  s.name = "tpch";

  s.tables.push_back(TableSpec{
      "region", 5, true, {Key("r_regionkey"), Payload("r_name", 26)}});
  s.tables.push_back(TableSpec{"nation",
                               25,
                               true,
                               {Key("n_nationkey"), Payload("n_name", 26),
                                Fk("n_regionkey", "region", false)}});
  s.tables.push_back(
      TableSpec{"supplier",
                50,
                false,
                {Key("s_suppkey"), Fk("s_nationkey", "nation", false),
                 UVal("s_acctbal", 11000), Payload("s_address", 25),
                 Payload("s_phone", 15), Payload("s_comment", 62)}});
  s.tables.push_back(
      TableSpec{"customer",
                750,
                false,
                {Key("c_custkey"), Fk("c_nationkey", "nation", false),
                 Val("c_mktsegment", tpch::kMktSegments),
                 UVal("c_acctbal", 11000), Payload("c_address", 25),
                 Payload("c_phone", 15), Payload("c_comment", 73)}});
  s.tables.push_back(
      TableSpec{"part",
                1000,
                false,
                {Key("p_partkey"), Val("p_brand", tpch::kBrands),
                 Val("p_type", tpch::kPartTypes),
                 UVal("p_size", tpch::kPartSizes), Val("p_container", 40),
                 UVal("p_retailprice", 2000), Payload("p_name", 32),
                 Payload("p_comment", 14)}});
  s.tables.push_back(
      TableSpec{"partsupp",
                4000,
                false,
                {Key("ps_key"), Fk("ps_partkey", "part", true),
                 Fk("ps_suppkey", "supplier", true), UVal("ps_availqty", 10000),
                 UVal("ps_supplycost", 1000), Payload("ps_comment", 124)}});
  s.tables.push_back(
      TableSpec{"orders",
                7500,
                false,
                {Key("o_orderkey"), Fk("o_custkey", "customer", true),
                 UVal("o_orderdate", tpch::kDateDomain, 8, true),
                 UVal("o_totalprice", 500000),
                 Val("o_orderpriority", tpch::kOrderPriorities),
                 Val("o_orderstatus", 3), Payload("o_comment", 49)}});
  s.tables.push_back(TableSpec{
      "lineitem",
      30000,
      false,
      {Key("l_linekey"), Fk("l_orderkey", "orders", true),
       Fk("l_partkey", "part", true), Fk("l_suppkey", "supplier", false),
       UVal("l_quantity", tpch::kQuantityDomain),
       UVal("l_extendedprice", tpch::kPriceDomain),
       UVal("l_discount", 11), UVal("l_tax", 9),
       UVal("l_shipdate", tpch::kDateDomain, 8, true),
       Corr("l_commitdate", "l_shipdate", 30),
       Corr("l_receiptdate", "l_shipdate", 30),
       Val("l_shipmode", tpch::kShipModes), Val("l_returnflag", 3),
       Val("l_linestatus", 2), Payload("l_comment", 44)}});
  return s;
}

SchemaSpec TpcdsSchema() {
  SchemaSpec s;
  s.name = "tpcds";

  s.tables.push_back(TableSpec{"date_dim",
                               2500,
                               true,
                               {Key("d_datekey"), UVal("d_year", 7),
                                UVal("d_month", 12), UVal("d_quarter", 28),
                                UVal("d_dow", 7), Payload("d_name", 20)}});
  s.tables.push_back(
      TableSpec{"store", tpcds::kStoreCount, true,
                {Key("st_storekey"), Val("st_state", 10), UVal("st_size", 100),
                 Payload("st_name", 30), Payload("st_address", 40)}});
  s.tables.push_back(TableSpec{"promotion",
                               30,
                               true,
                               {Key("pr_promokey"), Val("pr_channel", 5),
                                Payload("pr_name", 25)}});
  s.tables.push_back(
      TableSpec{"item",
                1500,
                false,
                {Key("i_itemkey"), Val("i_category", tpcds::kItemCategories),
                 Val("i_brand", tpcds::kItemBrands), UVal("i_price", 1000),
                 Val("i_class", 40), Payload("i_name", 40),
                 Payload("i_desc", 60)}});
  s.tables.push_back(
      TableSpec{"customer_dim",
                2000,
                false,
                {Key("cd_custkey"), Val("cd_demo", tpcds::kDemographics),
                 Val("cd_state", 50), UVal("cd_income_band", 20),
                 Payload("cd_name", 30), Payload("cd_address", 45)}});
  s.tables.push_back(TableSpec{
      "store_sales",
      40000,
      false,
      {Key("ss_saleskey"), Fk("ss_datekey", "date_dim", true),
       Fk("ss_itemkey", "item", true), Fk("ss_custkey", "customer_dim", true),
       Fk("ss_storekey", "store", false), Fk("ss_promokey", "promotion", false),
       UVal("ss_quantity", 100), UVal("ss_salesprice", 20000),
       UVal("ss_discount", 20), UVal("ss_netprofit", 30000),
       Payload("ss_pad", 36)}});
  s.tables.push_back(TableSpec{
      "web_sales",
      15000,
      false,
      {Key("ws_saleskey"), Fk("ws_datekey", "date_dim", true),
       Fk("ws_itemkey", "item", true), Fk("ws_custkey", "customer_dim", true),
       UVal("ws_quantity", 100), UVal("ws_salesprice", 20000),
       UVal("ws_shipcost", 1000), Payload("ws_pad", 48)}});
  return s;
}

SchemaSpec Real1Schema() {
  SchemaSpec s;
  s.name = "real1";

  // A sales-reporting warehouse: one wide fact, 7 dimensions; queries in the
  // paper's Real-1 workload join 5-8 tables and nest aggregations.
  s.tables.push_back(TableSpec{"calendar",
                               1200,
                               true,
                               {Key("cal_key"), UVal("cal_year", 4),
                                UVal("cal_month", 12), UVal("cal_week", 53)}});
  s.tables.push_back(TableSpec{"geography",
                               300,
                               true,
                               {Key("geo_key"), Val("geo_region", 8),
                                Val("geo_country", 40), Payload("geo_name", 35)}});
  s.tables.push_back(TableSpec{
      "product",
      2500,
      false,
      {Key("prod_key"), Val("prod_category", 15), Val("prod_line", 60),
       UVal("prod_cost", 5000), Payload("prod_name", 45),
       Payload("prod_desc", 80)}});
  s.tables.push_back(TableSpec{"account",
                               1800,
                               false,
                               {Key("acct_key"), Fk("acct_geo", "geography", false),
                                Val("acct_segment", 12), Val("acct_tier", 5),
                                Payload("acct_name", 50)}});
  s.tables.push_back(TableSpec{"rep",
                               400,
                               false,
                               {Key("rep_key"), Fk("rep_geo", "geography", false),
                                Val("rep_team", 25), Payload("rep_name", 30)}});
  s.tables.push_back(TableSpec{"channel",
                               12,
                               true,
                               {Key("ch_key"), Val("ch_type", 4),
                                Payload("ch_name", 20)}});
  s.tables.push_back(TableSpec{"promo_dim",
                               150,
                               true,
                               {Key("promo_key"), Val("promo_kind", 6),
                                UVal("promo_budget", 10000)}});
  s.tables.push_back(TableSpec{
      "sales_fact",
      60000,
      false,
      {Key("sf_key"), Fk("sf_cal", "calendar", true),
       Fk("sf_acct", "account", true), Fk("sf_prod", "product", true),
       Fk("sf_rep", "rep", true), Fk("sf_ch", "channel", false),
       Fk("sf_promo", "promo_dim", false), UVal("sf_units", 500),
       UVal("sf_revenue", 250000), UVal("sf_margin", 60000),
       UVal("sf_bookdate", 1200, 8, true), Payload("sf_pad", 52)}});
  return s;
}

SchemaSpec Real2Schema() {
  SchemaSpec s;
  s.name = "real2";

  // A larger snowflake: dimension chains hang off two facts so that typical
  // queries traverse ~12 join edges, matching the paper's Real-2 profile.
  s.tables.push_back(TableSpec{"region2",
                               50,
                               true,
                               {Key("rg_key"), Val("rg_zone", 6),
                                Payload("rg_name", 28)}});
  s.tables.push_back(TableSpec{"country2",
                               200,
                               true,
                               {Key("co_key"), Fk("co_region", "region2", false),
                                UVal("co_gdp_band", 10)}});
  s.tables.push_back(TableSpec{"city2",
                               1500,
                               false,
                               {Key("ci_key"), Fk("ci_country", "country2", false),
                                UVal("ci_size_band", 8), Payload("ci_name", 32)}});
  s.tables.push_back(TableSpec{"vendor2",
                               600,
                               false,
                               {Key("vd_key"), Fk("vd_city", "city2", false),
                                UVal("vd_rating", 10), Payload("vd_name", 40)}});
  s.tables.push_back(TableSpec{"brand2",
                               350,
                               true,
                               {Key("br_key"), Val("br_tier", 5),
                                Payload("br_name", 30)}});
  s.tables.push_back(TableSpec{"category2",
                               80,
                               true,
                               {Key("cat_key"), Val("cat_dept", 12)}});
  s.tables.push_back(TableSpec{
      "product2",
      4000,
      false,
      {Key("pd_key"), Fk("pd_brand", "brand2", false),
       Fk("pd_cat", "category2", false), UVal("pd_price", 8000),
       Payload("pd_name", 48), Payload("pd_spec", 90)}});
  s.tables.push_back(TableSpec{"shopper2",
                               3000,
                               false,
                               {Key("sh_key"), Fk("sh_city", "city2", false),
                                UVal("sh_age_band", 8), Val("sh_loyalty", 5),
                                Payload("sh_name", 35)}});
  s.tables.push_back(TableSpec{"store2",
                               250,
                               false,
                               {Key("st2_key"), Fk("st2_city", "city2", false),
                                Val("st2_format", 6)}});
  s.tables.push_back(TableSpec{"time2",
                               1800,
                               true,
                               {Key("tm_key"), UVal("tm_year", 5),
                                UVal("tm_month", 12), UVal("tm_week", 53)}});
  s.tables.push_back(TableSpec{
      "txn_fact",
      90000,
      false,
      {Key("tx_key"), Fk("tx_time", "time2", true),
       Fk("tx_store", "store2", true), Fk("tx_shopper", "shopper2", true),
       Fk("tx_product", "product2", true), Fk("tx_vendor", "vendor2", true),
       UVal("tx_qty", 200), UVal("tx_amount", 150000), UVal("tx_disc", 25),
       Payload("tx_pad", 60)}});
  s.tables.push_back(TableSpec{
      "return_fact",
      12000,
      false,
      {Key("rf_key"), Fk("rf_time", "time2", true),
       Fk("rf_store", "store2", false), Fk("rf_product", "product2", true),
       UVal("rf_qty", 50), UVal("rf_amount", 40000), Payload("rf_pad", 40)}});
  return s;
}

}  // namespace resest
