// Schema definitions of the four experimental datasets.
//
// Row counts are scaled-down (~1/200) versions of the benchmarks' official
// ratios so that thousands of training queries execute in seconds while
// preserving the relative table sizes, widths and key structure that drive
// plan selection and resource behaviour.
#ifndef RESEST_WORKLOAD_SCHEMAS_H_
#define RESEST_WORKLOAD_SCHEMAS_H_

#include "src/storage/catalog.h"

namespace resest {

/// Domain sizes shared between schema definition and query templates.
namespace tpch {
inline constexpr int64_t kDateDomain = 2526;     ///< days 1992-01-01..1998-12-01
inline constexpr int64_t kQuantityDomain = 50;
inline constexpr int64_t kPriceDomain = 100000;
inline constexpr int64_t kMktSegments = 5;
inline constexpr int64_t kBrands = 25;
inline constexpr int64_t kPartTypes = 150;
inline constexpr int64_t kPartSizes = 50;
inline constexpr int64_t kShipModes = 7;
inline constexpr int64_t kOrderPriorities = 5;
}  // namespace tpch

namespace tpcds {
inline constexpr int64_t kDateDomain = 2500;
inline constexpr int64_t kItemCategories = 10;
inline constexpr int64_t kItemBrands = 100;
inline constexpr int64_t kStoreCount = 20;
inline constexpr int64_t kDemographics = 80;
}  // namespace tpcds

/// TPC-H-shaped schema (lineitem/orders/customer/part/supplier/partsupp/
/// nation/region). SF 1 fact table: 30,000 rows.
SchemaSpec TpchSchema();

/// TPC-DS-shaped star schema (store_sales/web_sales facts + dimensions).
/// SF 1 fact table: 40,000 rows.
SchemaSpec TpcdsSchema();

/// "Real-1": sales decision-support/reporting schema (9 GB in the paper);
/// moderately wide fact with 7 dimension tables, queries join 5-8 tables.
SchemaSpec Real1Schema();

/// "Real-2": larger decision-support schema (12 GB in the paper); snowflake
/// with dimension chains so typical queries join ~12 tables.
SchemaSpec Real2Schema();

}  // namespace resest

#endif  // RESEST_WORKLOAD_SCHEMAS_H_
