#include "src/workload/real_queries.h"

#include <algorithm>
#include <string>

namespace resest {

namespace {

Predicate Le(const std::string& col, Value hi) {
  return Predicate{col, Predicate::Op::kLe, 0, hi};
}
Predicate Eq(const std::string& col, Value v) {
  return Predicate{col, Predicate::Op::kEq, v, v};
}
Predicate Between(const std::string& col, Value lo, Value hi) {
  return Predicate{col, Predicate::Op::kBetween, lo, hi};
}

/// A dimension that can hang off the Real-1 fact table.
struct Real1Dim {
  const char* table;
  const char* fact_col;  ///< FK column on sales_fact.
  const char* key_col;   ///< PK on the dimension.
  const char* filter_col;
  int64_t filter_domain;
  const char* group_col;
};

constexpr Real1Dim kReal1Dims[] = {
    {"calendar", "sf_cal", "cal_key", "cal_year", 4, "cal_month"},
    {"account", "sf_acct", "acct_key", "acct_segment", 12, "acct_tier"},
    {"product", "sf_prod", "prod_key", "prod_category", 15, "prod_category"},
    {"rep", "sf_rep", "rep_key", "rep_team", 25, "rep_team"},
    {"channel", "sf_ch", "ch_key", "ch_type", 4, "ch_type"},
    {"promo_dim", "sf_promo", "promo_key", "promo_kind", 6, "promo_kind"},
};

}  // namespace

std::vector<QuerySpec> GenerateReal1Workload(int count, Rng* rng) {
  std::vector<QuerySpec> out;
  out.reserve(static_cast<size_t>(count));

  for (int qi = 0; qi < count; ++qi) {
    QuerySpec q;
    q.name = "real1_q" + std::to_string(qi);

    // Fact table with an optional date-range or measure predicate.
    TableRef fact;
    fact.table = "sales_fact";
    fact.columns = {"sf_units", "sf_revenue", "sf_margin"};
    if (rng->Bernoulli(0.65)) {
      const Value lo = rng->UniformInt(1, 1100);
      fact.predicates.push_back(
          Between("sf_bookdate", lo, lo + rng->UniformInt(20, 500)));
    }
    if (rng->Bernoulli(0.3)) {
      fact.predicates.push_back(Le("sf_revenue", rng->UniformInt(20000, 250000)));
    }
    q.tables.push_back(fact);

    // Pick 4-7 dimensions (query joins 5-8 tables total, like the paper).
    std::vector<int> dims = {0, 1, 2, 3, 4, 5};
    rng->Shuffle(&dims);
    const int ndims = static_cast<int>(rng->UniformInt(4, 6));
    bool has_geo = false;
    for (int d = 0; d < ndims; ++d) {
      const Real1Dim& dim = kReal1Dims[static_cast<size_t>(dims[static_cast<size_t>(d)])];
      TableRef ref;
      ref.table = dim.table;
      ref.columns = {dim.key_col, dim.group_col};
      if (rng->Bernoulli(0.55)) {
        const Value v = rng->UniformInt(1, dim.filter_domain);
        if (rng->Bernoulli(0.5)) {
          ref.predicates.push_back(Eq(dim.filter_col, v));
        } else {
          ref.predicates.push_back(Le(dim.filter_col, v));
        }
        if (std::find(ref.columns.begin(), ref.columns.end(), dim.filter_col) ==
            ref.columns.end()) {
          ref.columns.push_back(dim.filter_col);
        }
      }
      const int ref_idx = static_cast<int>(q.tables.size());
      q.tables.push_back(ref);
      q.joins.push_back(JoinEdge{0, ref_idx, dim.fact_col, dim.key_col});

      // Snowflake out to geography via account or rep (once).
      if (!has_geo && rng->Bernoulli(0.5) &&
          (std::string(dim.table) == "account" || std::string(dim.table) == "rep")) {
        has_geo = true;
        TableRef geo;
        geo.table = "geography";
        geo.columns = {"geo_key", "geo_region"};
        if (rng->Bernoulli(0.5)) {
          geo.predicates.push_back(Eq("geo_region", rng->UniformInt(1, 8)));
        }
        const int geo_idx = static_cast<int>(q.tables.size());
        q.tables.push_back(geo);
        const char* fk = std::string(dim.table) == "account" ? "acct_geo" : "rep_geo";
        q.joins.push_back(JoinEdge{ref_idx, geo_idx, fk, "geo_key"});
      }
    }

    // Group by 1-2 dimension attributes; aggregate 1-3 measures.
    const int ngroups = static_cast<int>(rng->UniformInt(1, 2));
    for (int g = 0; g < ngroups && g + 1 < static_cast<int>(q.tables.size()); ++g) {
      const TableRef& ref = q.tables[static_cast<size_t>(g + 1)];
      q.group_columns.push_back(ref.table + "." + ref.columns[1]);
    }
    q.num_aggregates = static_cast<int>(rng->UniformInt(1, 3));
    if (rng->Bernoulli(0.4)) q.num_scalar_exprs = static_cast<int>(rng->UniformInt(1, 2));
    if (rng->Bernoulli(0.6)) {
      q.order_by = {"agg0"};
      if (rng->Bernoulli(0.5)) q.limit = rng->UniformInt(10, 500);
    }
    out.push_back(std::move(q));
  }
  return out;
}

std::vector<QuerySpec> GenerateReal2Workload(int count, Rng* rng) {
  std::vector<QuerySpec> out;
  out.reserve(static_cast<size_t>(count));

  for (int qi = 0; qi < count; ++qi) {
    QuerySpec q;
    q.name = "real2_q" + std::to_string(qi);

    // Fact table.
    TableRef fact;
    fact.table = "txn_fact";
    fact.columns = {"tx_qty", "tx_amount", "tx_disc"};
    if (rng->Bernoulli(0.5)) {
      fact.predicates.push_back(Le("tx_amount", rng->UniformInt(20000, 150000)));
    }
    q.tables.push_back(fact);
    int idx_time = -1, idx_store = -1, idx_shopper = -1, idx_product = -1,
        idx_vendor = -1;

    auto add = [&](const char* table, std::vector<std::string> cols,
                   std::vector<Predicate> preds) {
      TableRef r;
      r.table = table;
      r.columns = std::move(cols);
      r.predicates = std::move(preds);
      q.tables.push_back(std::move(r));
      return static_cast<int>(q.tables.size()) - 1;
    };

    // Core dimensions: time is (almost) always there; others usually.
    if (rng->Bernoulli(0.9)) {
      std::vector<Predicate> p;
      if (rng->Bernoulli(0.7)) p.push_back(Eq("tm_year", rng->UniformInt(1, 5)));
      idx_time = add("time2", {"tm_key", "tm_month", "tm_year"}, std::move(p));
      q.joins.push_back(JoinEdge{0, idx_time, "tx_time", "tm_key"});
    }
    if (rng->Bernoulli(0.85)) {
      idx_store = add("store2", {"st2_key", "st2_format"}, {});
      q.joins.push_back(JoinEdge{0, idx_store, "tx_store", "st2_key"});
    }
    if (rng->Bernoulli(0.8)) {
      std::vector<Predicate> p;
      if (rng->Bernoulli(0.4))
        p.push_back(Le("sh_age_band", rng->UniformInt(2, 8)));
      idx_shopper = add("shopper2", {"sh_key", "sh_loyalty", "sh_age_band"},
                        std::move(p));
      q.joins.push_back(JoinEdge{0, idx_shopper, "tx_shopper", "sh_key"});
    }
    if (rng->Bernoulli(0.9)) {
      std::vector<Predicate> p;
      if (rng->Bernoulli(0.4)) p.push_back(Le("pd_price", rng->UniformInt(1000, 8000)));
      idx_product = add("product2", {"pd_key", "pd_brand", "pd_cat"}, std::move(p));
      q.joins.push_back(JoinEdge{0, idx_product, "tx_product", "pd_key"});
    }
    if (rng->Bernoulli(0.7)) {
      idx_vendor = add("vendor2", {"vd_key", "vd_rating", "vd_city"}, {});
      q.joins.push_back(JoinEdge{0, idx_vendor, "tx_vendor", "vd_key"});
    }

    // Snowflake chains (never join the same table twice).
    if (idx_product >= 0 && rng->Bernoulli(0.8)) {
      std::vector<Predicate> p;
      if (rng->Bernoulli(0.5)) p.push_back(Le("br_tier", rng->UniformInt(1, 5)));
      const int idx = add("brand2", {"br_key", "br_tier"}, std::move(p));
      q.joins.push_back(JoinEdge{idx_product, idx, "pd_brand", "br_key"});
    }
    if (idx_product >= 0 && rng->Bernoulli(0.7)) {
      const int idx = add("category2", {"cat_key", "cat_dept"}, {});
      q.joins.push_back(JoinEdge{idx_product, idx, "pd_cat", "cat_key"});
    }
    // Exactly one path into the city chain.
    int city_parent = -1;
    const char* city_fk = nullptr;
    if (idx_store >= 0 && rng->Bernoulli(0.5)) {
      city_parent = idx_store;
      city_fk = "st2_city";
    } else if (idx_shopper >= 0 && rng->Bernoulli(0.5)) {
      city_parent = idx_shopper;
      city_fk = "sh_city";
    } else if (idx_vendor >= 0 && rng->Bernoulli(0.5)) {
      city_parent = idx_vendor;
      city_fk = "vd_city";
    }
    if (city_parent >= 0) {
      const int idx_city = add("city2", {"ci_key", "ci_country", "ci_size_band"}, {});
      q.joins.push_back(JoinEdge{city_parent, idx_city, city_fk, "ci_key"});
      if (rng->Bernoulli(0.8)) {
        const int idx_country = add("country2", {"co_key", "co_region", "co_gdp_band"}, {});
        q.joins.push_back(JoinEdge{idx_city, idx_country, "ci_country", "co_key"});
        if (rng->Bernoulli(0.7)) {
          std::vector<Predicate> p;
          if (rng->Bernoulli(0.5)) p.push_back(Eq("rg_zone", rng->UniformInt(1, 6)));
          const int idx_region = add("region2", {"rg_key", "rg_zone"}, std::move(p));
          q.joins.push_back(JoinEdge{idx_country, idx_region, "co_region", "rg_key"});
        }
      }
    }

    // Grouping on 1-3 attributes from joined dimensions.
    std::vector<std::pair<std::string, std::string>> group_candidates;
    if (idx_time >= 0) group_candidates.emplace_back("time2", "tm_month");
    if (idx_store >= 0) group_candidates.emplace_back("store2", "st2_format");
    if (idx_shopper >= 0) group_candidates.emplace_back("shopper2", "sh_loyalty");
    if (idx_product >= 0) group_candidates.emplace_back("product2", "pd_cat");
    if (idx_vendor >= 0) group_candidates.emplace_back("vendor2", "vd_rating");
    rng->Shuffle(&group_candidates);
    const int ngroups =
        std::min<int>(static_cast<int>(rng->UniformInt(1, 3)),
                      static_cast<int>(group_candidates.size()));
    for (int g = 0; g < ngroups; ++g) {
      q.group_columns.push_back(group_candidates[static_cast<size_t>(g)].first +
                                "." + group_candidates[static_cast<size_t>(g)].second);
    }
    q.num_aggregates = static_cast<int>(rng->UniformInt(1, 4));
    if (rng->Bernoulli(0.35)) q.num_scalar_exprs = 1;
    if (rng->Bernoulli(0.55)) {
      q.order_by = {"agg0"};
      if (rng->Bernoulli(0.5)) q.limit = rng->UniformInt(20, 1000);
    }
    out.push_back(std::move(q));
  }
  return out;
}

}  // namespace resest
