// Parameterized TPC-DS-like query templates over the star schema.
// Used as the cross-schema generalization test set (paper Tables 6/9/12).
#ifndef RESEST_WORKLOAD_TPCDS_QUERIES_H_
#define RESEST_WORKLOAD_TPCDS_QUERIES_H_

#include <vector>

#include "src/common/rng.h"
#include "src/optimizer/query_spec.h"
#include "src/storage/catalog.h"

namespace resest {

int NumTpcdsTemplates();
QuerySpec MakeTpcdsQuery(int id, Rng* rng, const Database* db);
std::vector<QuerySpec> GenerateTpcdsWorkload(int count, Rng* rng,
                                             const Database* db);

}  // namespace resest

#endif  // RESEST_WORKLOAD_TPCDS_QUERIES_H_
