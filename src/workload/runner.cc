#include "src/workload/runner.h"

#include <stdexcept>

namespace resest {

std::vector<ExecutedQuery> RunWorkload(const Database* db,
                                       const std::vector<QuerySpec>& queries,
                                       uint64_t noise_seed,
                                       const ExecutionObserver& on_executed) {
  std::vector<ExecutedQuery> out;
  out.reserve(queries.size());
  PlanBuilder builder(db);
  Executor exec(db, noise_seed);
  for (const auto& spec : queries) {
    try {
      ExecutedQuery eq;
      eq.spec = spec;
      eq.plan = builder.Build(spec);
      exec.Execute(&eq.plan);
      eq.database = db;
      eq.scale_factor = db->scale_factor();
      out.push_back(std::move(eq));
      if (on_executed) on_executed(out.back());
    } catch (const std::exception&) {
      // Malformed template for this schema; skip (mirrors dropping queries
      // that fail to run in a real experimental harness).
    }
  }
  return out;
}

}  // namespace resest
