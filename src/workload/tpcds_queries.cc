#include "src/workload/tpcds_queries.h"

#include <algorithm>

#include "src/workload/schemas.h"

namespace resest {

namespace {

Predicate Le(const std::string& col, Value hi) {
  return Predicate{col, Predicate::Op::kLe, 0, hi};
}
Predicate Eq(const std::string& col, Value v) {
  return Predicate{col, Predicate::Op::kEq, v, v};
}
Predicate Between(const std::string& col, Value lo, Value hi) {
  return Predicate{col, Predicate::Op::kBetween, lo, hi};
}

// Store sales by item category for a date window.
QuerySpec D1(Rng* rng, const Database* db) {
  (void)db;
  const Value lo = rng->UniformInt(1, tpcds::kDateDomain - 120);
  QuerySpec q;
  q.name = "tpcds_d1";
  q.tables.push_back(TableRef{
      "store_sales", {}, {"ss_datekey", "ss_itemkey", "ss_salesprice",
                          "ss_quantity"}});
  q.tables.push_back(TableRef{
      "date_dim", {Between("d_datekey", lo, lo + rng->UniformInt(30, 360))},
      {"d_datekey", "d_month"}});
  q.tables.push_back(TableRef{"item", {}, {"i_itemkey", "i_category"}});
  q.joins.push_back(JoinEdge{0, 1, "ss_datekey", "d_datekey"});
  q.joins.push_back(JoinEdge{0, 2, "ss_itemkey", "i_itemkey"});
  q.group_columns = {"item.i_category"};
  q.num_aggregates = 2;
  q.order_by = {"agg0"};
  return q;
}

// Customer demographics rollup.
QuerySpec D2(Rng* rng, const Database* db) {
  (void)db;
  QuerySpec q;
  q.name = "tpcds_d2";
  q.tables.push_back(TableRef{
      "store_sales", {Le("ss_salesprice", rng->UniformInt(2000, 20000))},
      {"ss_custkey", "ss_salesprice", "ss_netprofit"}});
  q.tables.push_back(TableRef{
      "customer_dim", {Eq("cd_state", rng->UniformInt(1, 50))},
      {"cd_custkey", "cd_demo", "cd_income_band"}});
  q.joins.push_back(JoinEdge{0, 1, "ss_custkey", "cd_custkey"});
  q.group_columns = {"customer_dim.cd_income_band"};
  q.num_aggregates = 2;
  q.order_by = {"customer_dim.cd_income_band"};
  return q;
}

// Store performance for a year.
QuerySpec D3(Rng* rng, const Database* db) {
  (void)db;
  QuerySpec q;
  q.name = "tpcds_d3";
  q.tables.push_back(TableRef{
      "store_sales", {}, {"ss_datekey", "ss_storekey", "ss_salesprice"}});
  q.tables.push_back(TableRef{"date_dim",
                              {Eq("d_year", rng->UniformInt(1, 7))},
                              {"d_datekey"}});
  q.tables.push_back(TableRef{"store", {}, {"st_storekey", "st_state"}});
  q.joins.push_back(JoinEdge{0, 1, "ss_datekey", "d_datekey"});
  q.joins.push_back(JoinEdge{0, 2, "ss_storekey", "st_storekey"});
  q.group_columns = {"store.st_state"};
  q.num_aggregates = 1;
  q.order_by = {"agg0"};
  q.limit = 10;
  return q;
}

// Web vs brand: web_sales x item with brand filter.
QuerySpec D4(Rng* rng, const Database* db) {
  (void)db;
  QuerySpec q;
  q.name = "tpcds_d4";
  q.tables.push_back(TableRef{
      "web_sales", {Le("ws_quantity", rng->UniformInt(20, 100))},
      {"ws_itemkey", "ws_salesprice", "ws_shipcost"}});
  q.tables.push_back(TableRef{
      "item", {Le("i_brand", rng->UniformInt(10, tpcds::kItemBrands))},
      {"i_itemkey", "i_brand", "i_class"}});
  q.joins.push_back(JoinEdge{0, 1, "ws_itemkey", "i_itemkey"});
  q.group_columns = {"item.i_brand"};
  q.num_aggregates = 2;
  q.order_by = {"agg0"};
  q.limit = 25;
  return q;
}

// 5-way star: sales with date, item, customer, store.
QuerySpec D5(Rng* rng, const Database* db) {
  (void)db;
  const Value lo = rng->UniformInt(1, tpcds::kDateDomain - 200);
  QuerySpec q;
  q.name = "tpcds_d5";
  q.tables.push_back(TableRef{
      "store_sales", {}, {"ss_datekey", "ss_itemkey", "ss_custkey",
                          "ss_storekey", "ss_quantity", "ss_netprofit"}});
  q.tables.push_back(TableRef{
      "date_dim", {Between("d_datekey", lo, lo + rng->UniformInt(14, 180))},
      {"d_datekey"}});
  q.tables.push_back(TableRef{
      "item", {Eq("i_category", rng->UniformInt(1, tpcds::kItemCategories))},
      {"i_itemkey"}});
  q.tables.push_back(TableRef{"customer_dim", {}, {"cd_custkey", "cd_demo"}});
  q.tables.push_back(TableRef{"store", {}, {"st_storekey", "st_state"}});
  q.joins.push_back(JoinEdge{0, 1, "ss_datekey", "d_datekey"});
  q.joins.push_back(JoinEdge{0, 2, "ss_itemkey", "i_itemkey"});
  q.joins.push_back(JoinEdge{0, 3, "ss_custkey", "cd_custkey"});
  q.joins.push_back(JoinEdge{0, 4, "ss_storekey", "st_storekey"});
  q.group_columns = {"store.st_state", "customer_dim.cd_demo"};
  q.num_aggregates = 2;
  q.order_by = {"agg0"};
  q.limit = 100;
  return q;
}

// Promotion effectiveness.
QuerySpec D6(Rng* rng, const Database* db) {
  (void)db;
  QuerySpec q;
  q.name = "tpcds_d6";
  q.tables.push_back(TableRef{
      "store_sales", {}, {"ss_promokey", "ss_itemkey", "ss_salesprice"}});
  q.tables.push_back(TableRef{
      "promotion", {Eq("pr_channel", rng->UniformInt(1, 5))}, {"pr_promokey"}});
  q.tables.push_back(TableRef{"item", {}, {"i_itemkey", "i_category"}});
  q.joins.push_back(JoinEdge{0, 1, "ss_promokey", "pr_promokey"});
  q.joins.push_back(JoinEdge{0, 2, "ss_itemkey", "i_itemkey"});
  q.group_columns = {"item.i_category"};
  q.num_aggregates = 1;
  return q;
}

// Raw web sales drill with sort.
QuerySpec D7(Rng* rng, const Database* db) {
  (void)db;
  QuerySpec q;
  q.name = "tpcds_d7";
  q.tables.push_back(TableRef{
      "web_sales",
      {Between("ws_salesprice", rng->UniformInt(1, 5000),
               rng->UniformInt(8000, 20000))},
      {"ws_saleskey", "ws_itemkey", "ws_salesprice", "ws_pad"}});
  q.order_by = {"web_sales.ws_salesprice"};
  q.limit = rng->UniformInt(50, 2000);
  return q;
}

// Item-key range seek on the fact (selective index path).
QuerySpec D8(Rng* rng, const Database* db) {
  const Table* fact = db->FindTable("store_sales");
  const Value rows = fact == nullptr ? 2 : fact->row_count();
  const Value lo = rng->UniformInt(1, std::max<Value>(2, rows - 200));
  QuerySpec q;
  q.name = "tpcds_d8";
  q.tables.push_back(TableRef{
      "store_sales",
      {Between("ss_saleskey", lo, lo + rng->UniformInt(100, 5000))},
      {"ss_saleskey", "ss_quantity", "ss_salesprice", "ss_discount"}});
  q.num_aggregates = 2;
  return q;
}

// Web sales by customer state for one year (FK-only star; joining two fact
// tables through a shared dimension key would cross-product per item).
QuerySpec D9(Rng* rng, const Database* db) {
  (void)db;
  QuerySpec q;
  q.name = "tpcds_d9";
  q.tables.push_back(TableRef{
      "web_sales", {Le("ws_quantity", rng->UniformInt(30, 100))},
      {"ws_datekey", "ws_custkey", "ws_salesprice"}});
  q.tables.push_back(TableRef{"date_dim",
                              {Eq("d_year", rng->UniformInt(1, 7))},
                              {"d_datekey", "d_quarter"}});
  q.tables.push_back(TableRef{"customer_dim", {}, {"cd_custkey", "cd_state"}});
  q.joins.push_back(JoinEdge{0, 1, "ws_datekey", "d_datekey"});
  q.joins.push_back(JoinEdge{0, 2, "ws_custkey", "cd_custkey"});
  q.group_columns = {"customer_dim.cd_state"};
  q.num_aggregates = 2;
  q.order_by = {"agg0"};
  return q;
}

// Big ungrouped aggregate over the fact with correlated-ish filters.
QuerySpec D10(Rng* rng, const Database* db) {
  (void)db;
  QuerySpec q;
  q.name = "tpcds_d10";
  q.tables.push_back(TableRef{
      "store_sales",
      {Le("ss_discount", rng->UniformInt(5, 20)),
       Le("ss_netprofit", rng->UniformInt(5000, 30000))},
      {"ss_salesprice", "ss_netprofit"}});
  q.num_aggregates = 3;
  q.num_scalar_exprs = 1;
  return q;
}

using TemplateFn = QuerySpec (*)(Rng*, const Database*);
constexpr TemplateFn kTemplates[] = {D1, D2, D3, D4, D5, D6, D7, D8, D9, D10};

}  // namespace

int NumTpcdsTemplates() {
  return static_cast<int>(sizeof(kTemplates) / sizeof(kTemplates[0]));
}

QuerySpec MakeTpcdsQuery(int id, Rng* rng, const Database* db) {
  const int n = NumTpcdsTemplates();
  return kTemplates[((id % n) + n) % n](rng, db);
}

std::vector<QuerySpec> GenerateTpcdsWorkload(int count, Rng* rng,
                                             const Database* db) {
  std::vector<QuerySpec> out;
  out.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) out.push_back(MakeTpcdsQuery(i, rng, db));
  return out;
}

}  // namespace resest
