// Pipeline-granularity scheduling — the paper's second motivating
// application (Sections 1 and 5.2).
//
// Pipelines that do not execute concurrently never compete for resources,
// so a scheduler that packs *pipelines* (not whole queries) onto workers can
// achieve tighter packing. This example decomposes plans into pipelines,
// estimates each pipeline's CPU with the trained model, and longest-
// processing-time-first packs them onto workers, comparing the resulting
// makespan against whole-query packing.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "src/baselines/query_estimator.h"
#include "src/workload/runner.h"
#include "src/workload/schemas.h"
#include "src/workload/tpch_queries.h"

using namespace resest;

namespace {

/// LPT packing; returns the makespan over `workers` given job weights.
double Makespan(std::vector<double> jobs, int workers) {
  std::sort(jobs.begin(), jobs.end(), std::greater<double>());
  std::vector<double> load(static_cast<size_t>(workers), 0.0);
  for (double j : jobs) {
    auto it = std::min_element(load.begin(), load.end());
    *it += j;
  }
  return *std::max_element(load.begin(), load.end());
}

}  // namespace

int main() {
  std::printf("== pipeline-level scheduling with operator-level estimates ==\n\n");

  auto db = GenerateDatabase(TpchSchema(), 2.0, 1.5, 42);
  Rng rng(7);
  const auto train = RunWorkload(db.get(), GenerateTpchWorkload(250, &rng, db.get()));
  const auto batch = RunWorkload(db.get(), GenerateTpchWorkload(40, &rng, db.get()), 91);

  TrainOptions options;
  options.mode = FeatureMode::kEstimated;
  const ResourceEstimator estimator = ResourceEstimator::Train(train, options);

  // Show one decomposition in detail.
  const auto& sample = batch[1];
  std::printf("sample plan (%s):\n%s\n", sample.spec.name.c_str(),
              sample.plan.ToString().c_str());
  const auto sample_pipelines =
      estimator.EstimatePipelines(sample.plan, *db, Resource::kCpu);
  const auto actual_pipelines = DecomposePipelines(sample.plan);
  std::printf("pipelines: %zu\n", sample_pipelines.size());
  for (size_t i = 0; i < sample_pipelines.size(); ++i) {
    std::printf("  pipeline %zu: %zu operators, estimated CPU %9.1f, "
                "actual %9.1f\n",
                i, actual_pipelines[i].nodes.size(), sample_pipelines[i],
                actual_pipelines[i].TotalCpu());
  }

  // Schedule the batch on 4 workers: whole queries vs pipelines.
  constexpr int kWorkers = 4;
  std::vector<double> query_jobs, pipeline_jobs;
  for (const auto& eq : batch) {
    query_jobs.push_back(eq.plan.TotalActualCpu());
    for (const auto& p : DecomposePipelines(eq.plan)) {
      pipeline_jobs.push_back(p.TotalCpu());
    }
  }
  std::printf("\nscheduling %zu queries (%zu pipelines) on %d workers:\n",
              query_jobs.size(), pipeline_jobs.size(), kWorkers);
  std::printf("  makespan, whole-query jobs:   %10.1f ms\n",
              Makespan(query_jobs, kWorkers));
  std::printf("  makespan, pipeline jobs:      %10.1f ms\n",
              Makespan(pipeline_jobs, kWorkers));
  std::printf("\n(finer-grained pipeline jobs pack tighter; the operator-"
              "level model provides the per-pipeline estimates that make "
              "this schedulable before execution)\n");
  return 0;
}
