// Ad-hoc query robustness — the paper's core claim (Section 1.1).
//
// Trains on a TPC-H workload, then estimates CPU for queries from an
// entirely different schema and workload (TPC-DS-shaped star queries) that
// the models never saw: different tables, widths, plans and data sizes.
// Compares SCALING against plain MART to show why explicit scaling matters.
#include <cstdio>

#include "src/baselines/harness.h"
#include "src/workload/runner.h"
#include "src/workload/schemas.h"
#include "src/workload/tpcds_queries.h"
#include "src/workload/tpch_queries.h"

using namespace resest;

int main() {
  std::printf("== ad-hoc generalization: train TPC-H, estimate TPC-DS ==\n\n");

  auto tpch = GenerateDatabase(TpchSchema(), 1.0, 1.5, 42);
  auto tpcds = GenerateDatabase(TpcdsSchema(), 6.0, 1.0, 77);
  Rng rng(7);
  const auto train =
      RunWorkload(tpch.get(), GenerateTpchWorkload(300, &rng, tpch.get()));
  const auto adhoc =
      RunWorkload(tpcds.get(), GenerateTpcdsWorkload(40, &rng, tpcds.get()), 13);
  std::printf("training: %zu TPC-H queries (SF 1)\n", train.size());
  std::printf("ad-hoc:   %zu TPC-DS queries (SF 6 — larger than anything in "
              "training)\n\n",
              adhoc.size());

  const auto scaling = TrainTechnique("SCALING", train, FeatureMode::kExact);
  const auto mart = TrainTechnique("MART", train, FeatureMode::kExact);

  std::printf("%-12s %14s %14s %14s\n", "query", "actual", "SCALING", "MART");
  std::vector<double> s_est, m_est, act;
  for (const auto& eq : adhoc) {
    const double a = eq.plan.TotalActualCpu();
    const double s = scaling->Estimate(eq, Resource::kCpu);
    const double m = mart->Estimate(eq, Resource::kCpu);
    act.push_back(a);
    s_est.push_back(std::max(0.01, s));
    m_est.push_back(std::max(0.01, m));
    std::printf("%-12s %14.1f %14.1f %14.1f\n", eq.spec.name.c_str(), a, s, m);
  }

  const RatioBuckets sb = ComputeRatioBuckets(s_est, act);
  const RatioBuckets mb = ComputeRatioBuckets(m_est, act);
  std::printf("\nwithin 1.5x:  SCALING %.0f%%   MART %.0f%%\n",
              100 * sb.le_1_5, 100 * mb.le_1_5);
  std::printf("(plain MART saturates at its training envelope and "
              "underestimates the bigger ad-hoc queries; the combined "
              "models extrapolate through their scaling functions)\n");
  return 0;
}
