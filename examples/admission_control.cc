// Admission control — the paper's first motivating application (Section 1),
// wired through the priority-scheduled serving subsystem: the SCALING
// estimator is trained offline (per-operator fits fanned across a pool),
// serialized, published into a ModelRegistry, and served concurrently to
// two very different clients (the paper's Figure 5 deployment under mixed
// load):
//   * a background *re-optimization scan* — the optimizer re-costing its
//     whole candidate-plan corpus after a data change — submitted as
//     TaskPriority::kBulk batches, and
//   * the admission queue's per-query probes, each a small latency-critical
//     TaskPriority::kUrgent request with a deadline.
// The urgent probes overtake the queued bulk work at chunk granularity, so
// admission decisions stay fast while the scan grinds on; any probe that
// misses its deadline falls back to the adjusted-optimizer estimate instead
// of blocking the admission loop.
//
// A server with a CPU budget per scheduling window must decide, before
// executing each submitted query, whether to admit it now or defer it.
// Good resource estimates keep the window full without overload. We compare
// the decisions made with SCALING estimates against (a) an oracle that knows
// the true cost and (b) the adjusted-optimizer baseline (OPT).
//
// The example closes the loop afterwards (execute -> observe -> refit ->
// republish): every executed queue query streams into the incremental
// trainer's observation logs as it runs, and once the window is decided the
// slots whose logs crossed the refit policy are retrained on the same pool
// at kBulk and delta-published — untouched operators keep their exact
// models (and their cache entries, were the cache enabled), while the
// production database's measurements sharpen the refitted ones.
#include <chrono>
#include <cstdio>
#include <future>
#include <vector>

#include "src/baselines/harness.h"
#include "src/common/thread_pool.h"
#include "src/serving/estimation_service.h"
#include "src/serving/model_registry.h"
#include "src/training/incremental_trainer.h"
#include "src/workload/runner.h"
#include "src/workload/schemas.h"
#include "src/workload/tpch_queries.h"

using namespace resest;

namespace {

struct WindowStats {
  int admitted = 0;
  int deferred = 0;
  int overloads = 0;       ///< Windows whose true load exceeded the budget.
  double utilization = 0;  ///< Mean fraction of the budget actually used.
};

/// Greedy admission: walk the queue, admit while the *estimated* remaining
/// budget allows; overload happens when the true cost of admitted queries
/// exceeds the budget by more than 10%.
WindowStats Simulate(const std::vector<ExecutedQuery>& queue,
                     const std::vector<double>& estimates, double budget) {
  WindowStats stats;
  double est_used = 0, true_used = 0;
  int windows = 1;
  double util_sum = 0;
  for (size_t i = 0; i < queue.size(); ++i) {
    if (est_used + estimates[i] > budget) {
      // Window is (estimated to be) full: start the next one.
      ++stats.deferred;
      if (true_used > 1.1 * budget) ++stats.overloads;
      util_sum += std::min(1.0, true_used / budget);
      est_used = 0;
      true_used = 0;
      ++windows;
      continue;
    }
    ++stats.admitted;
    est_used += estimates[i];
    true_used += queue[i].plan.TotalActualCpu();
  }
  if (true_used > 1.1 * budget) ++stats.overloads;
  util_sum += std::min(1.0, true_used / budget);
  stats.utilization = util_sum / windows;
  return stats;
}

void PrintLane(const ServiceStats& stats, TaskPriority priority) {
  const PriorityLaneStats& lane = stats.ForPriority(priority);
  std::printf("  %-8s %6llu batches %7llu ok %5llu expired  "
              "mean %8.3f ms  p99 <= %8.3f ms  max %8.3f ms\n",
              TaskPriorityName(priority),
              static_cast<unsigned long long>(lane.batches),
              static_cast<unsigned long long>(lane.requests),
              static_cast<unsigned long long>(lane.expired),
              lane.MeanLatencyMs(), lane.ApproxLatencyPercentileMs(0.99),
              lane.max_latency_ms);
}

}  // namespace

int main() {
  std::printf("== admission control with learned resource estimates ==\n\n");

  // Train on one database, admit queries on a larger one (the realistic
  // "data grew since training" setting).
  auto train_db = GenerateDatabase(TpchSchema(), 1.0, 1.5, 42);
  auto prod_db = GenerateDatabase(TpchSchema(), 3.0, 1.5, 43);
  Rng rng(7);
  const auto train = RunWorkload(
      train_db.get(), GenerateTpchWorkload(250, &rng, train_db.get()));

  // Offline: seed the incremental trainer with the training workload and
  // fit SCALING (per-operator fits fanned across the pool at kBulk —
  // byte-identical to ResourceEstimator::Train), then publish the baseline.
  ThreadPool pool(4);
  TrainOptions scaling_options;
  scaling_options.mode = FeatureMode::kEstimated;
  IncrementalTrainer trainer(scaling_options, RefitPolicy{}, &pool);
  trainer.SeedAndTrain(train);
  ModelRegistry registry;
  const uint64_t version = trainer.PublishBaseline(&registry, "admission");
  if (version == 0) {
    std::printf("model publish failed\n");
    return 1;
  }

  // The admission queue executes on the production database; the runner's
  // execution observer streams every executed query straight into the
  // trainer's observation logs (the feedback edge of the loop).
  const auto queue = RunWorkload(
      prod_db.get(), GenerateTpchWorkload(120, &rng, prod_db.get()), 55,
      [&trainer](const ExecutedQuery& eq) { trainer.Observe(eq); });
  ServiceOptions service_options;
  service_options.model_name = "admission";
  // The cache would collapse the repeated scan passes into lookups; real
  // re-optimization re-costs *new* candidate plans each pass, so keep the
  // bulk load honest by disabling memoization for this demo.
  service_options.enable_cache = false;
  EstimationService service(&registry, &pool, service_options);

  // Background kBulk load: three full passes over the training corpus, both
  // resources per plan — the re-optimization scan the admission probes must
  // overtake.
  std::vector<EstimateRequest> scan;
  for (const auto& eq : train) {
    scan.push_back({&eq.plan, eq.database, Resource::kCpu});
    scan.push_back({&eq.plan, eq.database, Resource::kIo});
  }
  SubmitOptions bulk;
  bulk.priority = TaskPriority::kBulk;
  std::vector<std::future<std::vector<EstimateResult>>> scan_futures;
  for (int pass = 0; pass < 3; ++pass) {
    scan_futures.push_back(service.SubmitBatch(scan, bulk));
  }

  // Admission probes: one kUrgent request per queued query, each with a
  // deadline. With FIFO scheduling these would queue behind ~1500 scan
  // requests; the urgent lane answers them at chunk granularity instead.
  std::vector<EstimateRequest> probes;
  for (const auto& eq : queue) {
    probes.push_back({&eq.plan, eq.database, Resource::kCpu});
  }
  if (probes.empty()) {
    std::printf("no executable queries in the admission queue\n");
    return 1;
  }
  SubmitOptions urgent;
  urgent.priority = TaskPriority::kUrgent;
  urgent.deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  std::vector<std::future<EstimateResult>> probe_futures;
  probe_futures.reserve(probes.size());
  for (const auto& probe : probes) {
    probe_futures.push_back(service.SubmitEstimate(probe, urgent));
  }

  // The admission thread is free while the pool estimates: train the OPT
  // baseline concurrently, then collect probes and (later) the scan.
  const auto opt = TrainTechnique("OPT", train, FeatureMode::kEstimated);

  std::vector<double> scaling_est, opt_est, oracle_est;
  double total_cpu = 0;
  size_t expired_probes = 0;
  for (size_t i = 0; i < queue.size(); ++i) {
    const EstimateResult result = probe_futures[i].get();
    opt_est.push_back(opt->Estimate(queue[i], Resource::kCpu));
    if (result.status == EstimateStatus::kDeadlineExceeded) {
      // Deadline policy: never stall admission on a late estimate — degrade
      // to the optimizer baseline for this query.
      ++expired_probes;
      scaling_est.push_back(opt_est.back());
    } else if (!result.ok()) {
      std::printf("probe %zu failed: %s\n", i,
                  EstimateStatusName(result.status));
      return 1;
    } else {
      scaling_est.push_back(result.value);
    }
    oracle_est.push_back(queue[i].plan.TotalActualCpu());
    total_cpu += queue[i].plan.TotalActualCpu();
  }
  for (auto& f : scan_futures) {
    for (const auto& r : f.get()) {
      if (!r.ok()) {
        std::printf("bulk scan request failed: %s\n",
                    EstimateStatusName(r.status));
        return 1;
      }
    }
  }

  const double budget = total_cpu / 8.0;  // ~8 scheduling windows
  const ServiceStats stats = service.stats();
  std::printf("served %llu estimates from model v%llu on %zu workers: "
              "%zu urgent probes (%zu past deadline) over %zu-request "
              "bulk scan batches\n",
              static_cast<unsigned long long>(stats.requests),
              static_cast<unsigned long long>(version), pool.num_threads(),
              probes.size(), expired_probes, scan.size());
  std::printf("per-priority serving stats:\n");
  PrintLane(stats, TaskPriority::kUrgent);
  PrintLane(stats, TaskPriority::kBulk);
  std::printf("\nqueue: %zu queries, CPU budget per window: %.0f ms\n\n",
              queue.size(), budget);

  std::printf("%-10s %10s %10s %12s %12s\n", "policy", "admitted", "deferred",
              "overloads", "utilization");
  const WindowStats oracle = Simulate(queue, oracle_est, budget);
  const WindowStats with_scaling = Simulate(queue, scaling_est, budget);
  const WindowStats with_opt = Simulate(queue, opt_est, budget);
  std::printf("%-10s %10d %10d %12d %11.0f%%\n", "oracle", oracle.admitted,
              oracle.deferred, oracle.overloads, 100 * oracle.utilization);
  std::printf("%-10s %10d %10d %12d %11.0f%%\n", "SCALING",
              with_scaling.admitted, with_scaling.deferred,
              with_scaling.overloads, 100 * with_scaling.utilization);
  std::printf("%-10s %10d %10d %12d %11.0f%%\n", "OPT", with_opt.admitted,
              with_opt.deferred, with_opt.overloads,
              100 * with_opt.utilization);

  std::printf("\n(SCALING should track the oracle's admissions closely; OPT "
              "misjudges query weights and either overloads windows or "
              "under-utilizes them)\n");

  // --- Close the loop: refit the drifted slots, delta-publish, re-probe. ---
  // The executed queue streamed into the observation logs as it ran; now
  // retrain only the (operator, resource) slots whose logs crossed the
  // policy — on this same pool at kBulk, under whatever traffic is live —
  // and hot-swap the delta. InvalidateOperators scopes the cache work to
  // the refitted slots (a no-op here with the cache disabled).
  std::printf(
      "\n== feedback loop: refit drifted operators, delta-publish ==\n");
  std::printf("pending observations: %zu rows across the per-operator logs\n",
              trainer.TotalPendingRows());
  const auto refit = trainer.RefitAndPublish(&registry, "admission", &service);
  if (!refit) {
    std::printf("no slot crossed the refit policy; nothing republished\n");
    return 0;
  }
  std::printf("refitted %zu/%zu model slots -> delta-published v%llu "
              "(untouched operators share v%llu's exact models):\n",
              refit.refitted.size(), kNumModelSlots,
              static_cast<unsigned long long>(refit.version),
              static_cast<unsigned long long>(version));
  for (const auto& [op, resource] : refit.refitted) {
    std::printf("  %s/%s", OpTypeName(op), ResourceName(resource));
  }
  std::printf("\n");

  // Re-probe the queue through the service (now serving the delta): the
  // production measurements folded in should tighten the admission quality
  // toward the oracle.
  std::vector<double> refit_est;
  refit_est.reserve(queue.size());
  for (const auto& eq : queue) {
    const EstimateResult r =
        service.Estimate({&eq.plan, eq.database, Resource::kCpu});
    if (!r.ok() || r.model_version != refit.version) {
      std::printf("post-refit probe failed: %s\n",
                  EstimateStatusName(r.status));
      return 1;
    }
    refit_est.push_back(r.value);
  }
  const WindowStats with_refit = Simulate(queue, refit_est, budget);
  std::printf("\n%-12s %10s %10s %12s %12s\n", "policy", "admitted",
              "deferred", "overloads", "utilization");
  std::printf("%-12s %10d %10d %12d %11.0f%%\n", "oracle", oracle.admitted,
              oracle.deferred, oracle.overloads, 100 * oracle.utilization);
  std::printf("%-12s %10d %10d %12d %11.0f%%\n", "SCALING",
              with_scaling.admitted, with_scaling.deferred,
              with_scaling.overloads, 100 * with_scaling.utilization);
  std::printf("%-12s %10d %10d %12d %11.0f%%\n", "SCALING+refit",
              with_refit.admitted, with_refit.deferred, with_refit.overloads,
              100 * with_refit.utilization);
  return 0;
}
