// Admission control — the paper's first motivating application (Section 1),
// now wired through the async serving subsystem: the SCALING estimator is
// trained offline (per-operator fits fanned across a pool), serialized,
// published into a ModelRegistry, and the admission queue is submitted as a
// non-blocking batch (the paper's Figure 5 deployment). While the pool
// computes the estimates, the admission thread trains the adjusted-optimizer
// baseline — the overlap the old blocking EstimateBatch could not express.
//
// A server with a CPU budget per scheduling window must decide, before
// executing each submitted query, whether to admit it now or defer it.
// Good resource estimates keep the window full without overload. We compare
// the decisions made with SCALING estimates against (a) an oracle that knows
// the true cost and (b) the adjusted-optimizer baseline (OPT).
#include <cstdio>
#include <vector>

#include "src/baselines/harness.h"
#include "src/serving/estimation_service.h"
#include "src/serving/model_registry.h"
#include "src/common/thread_pool.h"
#include "src/workload/runner.h"
#include "src/workload/schemas.h"
#include "src/workload/tpch_queries.h"

using namespace resest;

namespace {

struct WindowStats {
  int admitted = 0;
  int deferred = 0;
  int overloads = 0;       ///< Windows whose true load exceeded the budget.
  double utilization = 0;  ///< Mean fraction of the budget actually used.
};

/// Greedy admission: walk the queue, admit while the *estimated* remaining
/// budget allows; overload happens when the true cost of admitted queries
/// exceeds the budget by more than 10%.
WindowStats Simulate(const std::vector<ExecutedQuery>& queue,
                     const std::vector<double>& estimates, double budget) {
  WindowStats stats;
  double est_used = 0, true_used = 0;
  int windows = 1;
  double util_sum = 0;
  for (size_t i = 0; i < queue.size(); ++i) {
    if (est_used + estimates[i] > budget) {
      // Window is (estimated to be) full: start the next one.
      ++stats.deferred;
      if (true_used > 1.1 * budget) ++stats.overloads;
      util_sum += std::min(1.0, true_used / budget);
      est_used = 0;
      true_used = 0;
      ++windows;
      continue;
    }
    ++stats.admitted;
    est_used += estimates[i];
    true_used += queue[i].plan.TotalActualCpu();
  }
  if (true_used > 1.1 * budget) ++stats.overloads;
  util_sum += std::min(1.0, true_used / budget);
  stats.utilization = util_sum / windows;
  return stats;
}

}  // namespace

int main() {
  std::printf("== admission control with learned resource estimates ==\n\n");

  // Train on one database, admit queries on a larger one (the realistic
  // "data grew since training" setting).
  auto train_db = GenerateDatabase(TpchSchema(), 1.0, 1.5, 42);
  auto prod_db = GenerateDatabase(TpchSchema(), 3.0, 1.5, 43);
  Rng rng(7);
  const auto train = RunWorkload(
      train_db.get(), GenerateTpchWorkload(250, &rng, train_db.get()));
  const auto queue = RunWorkload(
      prod_db.get(), GenerateTpchWorkload(120, &rng, prod_db.get()), 55);

  // Offline: train SCALING (parallel per-operator fits — byte-identical to
  // serial training), persist the model store, publish into the server.
  TrainOptions scaling_options;
  scaling_options.mode = FeatureMode::kEstimated;
  scaling_options.train_threads = 0;  // hardware concurrency
  const ResourceEstimator trained =
      ResourceEstimator::Train(train, scaling_options);
  ModelRegistry registry;
  const uint64_t version =
      registry.PublishSerialized("admission", trained.Serialize());
  if (version == 0) {
    std::printf("model publish failed\n");
    return 1;
  }

  // Online: submit the whole admission queue as one non-blocking batch.
  ThreadPool pool(4);
  ServiceOptions service_options;
  service_options.model_name = "admission";
  EstimationService service(&registry, &pool, service_options);

  std::vector<EstimateRequest> requests;
  for (const auto& eq : queue) {
    requests.push_back({&eq.plan, eq.database, Resource::kCpu});
  }
  if (requests.empty()) {
    std::printf("no executable queries in the admission queue\n");
    return 1;
  }
  auto batched_future = service.SubmitBatch(requests);

  // The admission thread is free while the pool estimates: train the OPT
  // baseline concurrently, then collect the batch.
  const auto opt = TrainTechnique("OPT", train, FeatureMode::kEstimated);
  const auto batched = batched_future.get();

  std::vector<double> scaling_est, opt_est, oracle_est;
  double total_cpu = 0;
  for (size_t i = 0; i < queue.size(); ++i) {
    if (!batched[i].ok()) {
      std::printf("estimate %zu failed: %s\n", i,
                  EstimateStatusName(batched[i].status));
      return 1;
    }
    scaling_est.push_back(batched[i].value);
    opt_est.push_back(opt->Estimate(queue[i], Resource::kCpu));
    oracle_est.push_back(queue[i].plan.TotalActualCpu());
    total_cpu += queue[i].plan.TotalActualCpu();
  }
  const double budget = total_cpu / 8.0;  // ~8 scheduling windows
  const ServiceStats stats = service.stats();
  std::printf("served %llu estimates in %llu async batch(es) from model "
              "v%llu (%zu workers, %.0f%% cache hit rate)\n",
              static_cast<unsigned long long>(stats.requests),
              static_cast<unsigned long long>(stats.batches),
              static_cast<unsigned long long>(batched[0].model_version),
              pool.num_threads(), 100.0 * stats.CacheHitRate());
  std::printf("queue: %zu queries, CPU budget per window: %.0f ms\n\n",
              queue.size(), budget);

  std::printf("%-10s %10s %10s %12s %12s\n", "policy", "admitted", "deferred",
              "overloads", "utilization");
  const WindowStats oracle = Simulate(queue, oracle_est, budget);
  const WindowStats with_scaling = Simulate(queue, scaling_est, budget);
  const WindowStats with_opt = Simulate(queue, opt_est, budget);
  std::printf("%-10s %10d %10d %12d %11.0f%%\n", "oracle", oracle.admitted,
              oracle.deferred, oracle.overloads, 100 * oracle.utilization);
  std::printf("%-10s %10d %10d %12d %11.0f%%\n", "SCALING",
              with_scaling.admitted, with_scaling.deferred,
              with_scaling.overloads, 100 * with_scaling.utilization);
  std::printf("%-10s %10d %10d %12d %11.0f%%\n", "OPT", with_opt.admitted,
              with_opt.deferred, with_opt.overloads,
              100 * with_opt.utilization);

  std::printf("\n(SCALING should track the oracle's admissions closely; OPT "
              "misjudges query weights and either overloads windows or "
              "under-utilizes them)\n");
  return 0;
}
