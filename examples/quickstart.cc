// Quickstart: generate a database, execute a training workload, train the
// resource estimator, and estimate CPU / logical I/O for a brand-new query —
// including the per-operator breakdown and the model each operator used.
#include <cstdio>

#include "src/baselines/harness.h"
#include "src/core/estimator.h"
#include "src/workload/runner.h"
#include "src/workload/schemas.h"
#include "src/workload/tpch_queries.h"

using namespace resest;

int main() {
  std::printf("== resest quickstart ==\n\n");

  // 1. A TPC-H-shaped database: scale factor 1, Zipf skew z=1.
  std::printf("[1/4] generating TPC-H data (SF=1, z=1)...\n");
  auto db = GenerateDatabase(TpchSchema(), /*sf=*/1.0, /*skew=*/1.0, /*seed=*/42);
  for (const auto& t : db->tables()) {
    std::printf("      %-10s %8lld rows  %6lld pages\n", t->name().c_str(),
                static_cast<long long>(t->row_count()),
                static_cast<long long>(t->data_pages()));
  }

  // 2. Execute a training workload and observe resource consumption.
  std::printf("\n[2/4] executing 200 training queries...\n");
  Rng rng(7);
  const auto specs = GenerateTpchWorkload(200, &rng, db.get());
  const auto workload = RunWorkload(db.get(), specs);
  std::printf("      executed %zu queries\n", workload.size());

  // 3. Train the SCALING estimator (MART + scaling functions + selection).
  std::printf("\n[3/4] training the resource estimator...\n");
  TrainOptions options;
  options.mode = FeatureMode::kEstimated;  // deployable setting
  const ResourceEstimator estimator = ResourceEstimator::Train(workload, options);
  std::printf("      model store: %.1f KB serialized\n",
              static_cast<double>(estimator.SerializedBytes()) / 1024.0);

  // 4. Estimate a previously unseen query BEFORE executing it.
  std::printf("\n[4/4] estimating an unseen query...\n");
  Rng rng2(99);
  const QuerySpec spec = MakeTpchQuery(1, &rng2, db.get());  // a Q3 instance
  PlanBuilder builder(db.get());
  Plan plan = builder.Build(spec);

  const double cpu_est = estimator.EstimateQuery(plan, *db, Resource::kCpu);
  const double io_est = estimator.EstimateQuery(plan, *db, Resource::kIo);
  std::printf("      estimated: CPU %.1f ms, logical I/O %.0f pages\n", cpu_est,
              io_est);

  Executor exec(db.get(), 1234);
  exec.Execute(&plan);
  std::printf("      actual:    CPU %.1f ms, logical I/O %lld pages\n",
              plan.TotalActualCpu(),
              static_cast<long long>(plan.TotalActualIo()));

  std::printf("\nper-operator breakdown (model chosen by Section 6.3 "
              "selection):\n");
  std::printf("%s", plan.ToString().c_str());

  std::printf("pipelines (scheduling granularity):\n");
  const auto pipelines = estimator.EstimatePipelines(plan, *db, Resource::kCpu);
  for (size_t i = 0; i < pipelines.size(); ++i) {
    std::printf("  pipeline %zu: estimated CPU %.1f ms\n", i, pipelines[i]);
  }
  return 0;
}
