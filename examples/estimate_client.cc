// Serving walkthrough: train a small model, publish it, start the HTTP
// front end in-process, and act as a network client — health check, a
// batch estimate over the wire API, and a /metrics scrape. The same wire
// contract `resest_server` speaks; see docs/wire_api.md.
#include <cstdio>
#include <memory>

#include "src/common/thread_pool.h"
#include "src/core/estimator.h"
#include "src/serving/estimation_service.h"
#include "src/serving/model_registry.h"
#include "src/server/http_client.h"
#include "src/server/http_server.h"
#include "src/server/serving_frontend.h"
#include "src/storage/catalog.h"
#include "src/workload/runner.h"
#include "src/workload/schemas.h"
#include "src/workload/tpch_queries.h"

using namespace resest;

int main() {
  std::printf("== resest serving walkthrough ==\n\n");

  // 1. Train and publish a model, exactly as an offline pipeline would.
  std::printf("[1/4] training a demo model (SF=0.3, 40 queries)...\n");
  auto db = GenerateDatabase(TpchSchema(), /*sf=*/0.3, /*skew=*/1.0,
                             /*seed=*/42);
  Rng rng(7);
  const auto workload =
      RunWorkload(db.get(), GenerateTpchWorkload(40, &rng, db.get()));
  TrainOptions options;
  options.mart.num_trees = 20;
  ThreadPool pool(2);
  ModelRegistry registry;
  const uint64_t version = registry.Publish(
      "demo", std::make_shared<const ResourceEstimator>(
                  ResourceEstimator::Train(workload, options)));
  std::printf("      published model v%llu\n",
              static_cast<unsigned long long>(version));

  // 2. Bring up the serving front end on an ephemeral loopback port.
  std::printf("\n[2/4] starting the HTTP front end...\n");
  ServiceOptions service_options;
  service_options.model_name = "demo";
  EstimationService service(&registry, &pool, service_options);
  ServingFrontend frontend(&service, &registry, "demo");
  HttpServer server(&pool, [&frontend](const HttpRequest& request) {
    return frontend.Handle(request);
  });
  std::string error;
  if (!server.Start(&error)) {
    std::printf("      failed to start: %s\n", error.c_str());
    return 1;
  }
  std::printf("      listening on 127.0.0.1:%u\n", server.port());

  // 3. Speak the wire API as a client would.
  HttpClient client;
  HttpClientResponse response;
  if (!client.Connect("127.0.0.1", server.port(), &error)) {
    std::printf("      connect failed: %s\n", error.c_str());
    return 1;
  }

  client.Get("/healthz", &response, &error);
  std::printf("\n[3/4] GET /healthz -> %d\n      %s\n", response.status,
              response.body.c_str());

  // An urgent two-operator batch with a 50 ms deadline. Features are the
  // kNumFeatures operator-level inputs (cardinalities, widths, ...); any
  // omitted trailing features default to 0.
  const std::string body =
      "{\"priority\":\"urgent\",\"deadline_ms\":50,\"requests\":["
      "{\"op\":\"TableScan\",\"resource\":\"CPU\",\"features\":[120000,8]},"
      "{\"op\":\"HashJoin\",\"resource\":\"IO\",\"features\":[40000,20000]}"
      "]}";
  client.Post("/v1/estimate", body, &response, &error);
  std::printf("\n      POST /v1/estimate -> %d\n      %s\n", response.status,
              response.body.c_str());

  // 4. Scrape the Prometheus endpoint; show the request-level series.
  client.Get("/metrics", &response, &error);
  std::printf("\n[4/4] GET /metrics -> %d (%zu bytes); selected series:\n",
              response.status, response.body.size());
  size_t pos = 0;
  while (pos < response.body.size()) {
    size_t eol = response.body.find('\n', pos);
    if (eol == std::string::npos) eol = response.body.size();
    const std::string line = response.body.substr(pos, eol - pos);
    if (line.compare(0, 21, "resest_requests_total") == 0 ||
        line.compare(0, 23, "resest_cache_hits_total") == 0 ||
        line.compare(0, 20, "resest_model_version") == 0 ||
        line.compare(0, 26, "resest_http_requests_total") == 0) {
      std::printf("      %s\n", line.c_str());
    }
    pos = eol + 1;
  }

  client.Close();
  server.Stop();
  std::printf("\ndone: server drained cleanly.\n");
  return 0;
}
