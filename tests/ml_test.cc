// Unit and property tests for the ML library: regression trees, MART,
// linear regression with feature selection, SVR, REGTREE, serialization.
#include <cmath>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "gtest/gtest.h"
#include "src/common/stats.h"
#include "src/ml/dataset.h"
#include "src/ml/linear_model.h"
#include "src/ml/mart.h"
#include "src/ml/regression_tree.h"
#include "src/ml/svr.h"

namespace resest {
namespace {

// y = 3*x0 + noise; x1 irrelevant.
Dataset MakeLinearData(size_t n, uint64_t seed, double noise = 0.5) {
  Rng rng(seed);
  Dataset d;
  for (size_t i = 0; i < n; ++i) {
    const double x0 = rng.Uniform(0, 100);
    const double x1 = rng.Uniform(0, 100);
    d.Add({x0, x1}, 3.0 * x0 + rng.Gaussian(0.0, noise));
  }
  return d;
}

// y = x0 * log2(x0) + 5*x1 (non-linear, two relevant features).
Dataset MakeNlognData(size_t n, uint64_t seed, double x0_max = 1000.0) {
  Rng rng(seed);
  Dataset d;
  for (size_t i = 0; i < n; ++i) {
    const double x0 = rng.Uniform(2, x0_max);
    const double x1 = rng.Uniform(0, 50);
    d.Add({x0, x1}, x0 * std::log2(x0) + 5.0 * x1 + rng.Gaussian(0.0, 1.0));
  }
  return d;
}

double Rmse(const Regressor& model, const Dataset& data) {
  double sse = 0.0;
  for (size_t i = 0; i < data.NumRows(); ++i) {
    const double e = model.Predict(data.x[i]) - data.y[i];
    sse += e * e;
  }
  return std::sqrt(sse / static_cast<double>(data.NumRows()));
}

double TargetStd(const Dataset& d) { return StdDev(d.y); }

TEST(DatasetTest, SplitPartitionsRows) {
  Dataset d = MakeLinearData(100, 1);
  Rng rng(2);
  auto [train, test] = d.Split(0.8, &rng);
  EXPECT_EQ(train.NumRows(), 80u);
  EXPECT_EQ(test.NumRows(), 20u);
}

TEST(DatasetTest, StandardizerZeroMeanUnitVariance) {
  Dataset d = MakeLinearData(500, 3);
  Standardizer s;
  s.Fit(d);
  const Dataset t = s.TransformAll(d);
  std::vector<double> col0;
  for (const auto& row : t.x) col0.push_back(row[0]);
  EXPECT_NEAR(Mean(col0), 0.0, 1e-9);
  EXPECT_NEAR(StdDev(col0), 1.0, 0.01);
}

TEST(FeatureBinnerTest, BinsAreMonotonic) {
  Dataset d = MakeLinearData(1000, 5);
  FeatureBinner binner;
  binner.Fit(d, 32);
  int prev = -1;
  for (double v = 0; v <= 100; v += 1.0) {
    const int b = binner.Bin(0, v);
    EXPECT_GE(b, prev);
    prev = b;
    EXPECT_LT(b, binner.NumBins(0));
  }
}

TEST(RegressionTreeTest, FitsPiecewiseConstantSignal) {
  // y = step function on x0.
  Rng rng(7);
  Dataset d;
  for (int i = 0; i < 2000; ++i) {
    const double x = rng.Uniform(0, 10);
    d.Add({x}, x < 5 ? 1.0 : 9.0);
  }
  FeatureBinner binner;
  binner.Fit(d, 32);
  std::vector<size_t> rows(d.NumRows());
  std::iota(rows.begin(), rows.end(), 0u);
  RegressionTree tree;
  tree.Fit(d, d.y, rows, binner, TreeParams{});
  EXPECT_NEAR(tree.Predict({2.0}), 1.0, 0.1);
  EXPECT_NEAR(tree.Predict({8.0}), 9.0, 0.1);
}

TEST(RegressionTreeTest, RespectsMaxLeaves) {
  Dataset d = MakeNlognData(3000, 9);
  FeatureBinner binner;
  binner.Fit(d, 32);
  std::vector<size_t> rows(d.NumRows());
  std::iota(rows.begin(), rows.end(), 0u);
  for (int max_leaves : {2, 5, 10}) {
    TreeParams p;
    p.max_leaves = max_leaves;
    RegressionTree tree;
    tree.Fit(d, d.y, rows, binner, p);
    EXPECT_LE(tree.NumLeaves(), max_leaves);
    EXPECT_GE(tree.NumLeaves(), 2);
  }
}

TEST(MartTest, FitsNonlinearFunctionWell) {
  Dataset train = MakeNlognData(4000, 11);
  Dataset test = MakeNlognData(500, 12);
  Mart mart(MartParams{});
  mart.Fit(train);
  EXPECT_LT(Rmse(mart, test), 0.1 * TargetStd(test));
}

TEST(MartTest, DoesNotExtrapolateBeyondTraining) {
  // The paper's Figure 3 phenomenon: a tree model caps its output at the
  // training range, so test points far outside are underestimated.
  Dataset train = MakeNlognData(3000, 13, /*x0_max=*/1000.0);
  Mart mart(MartParams{});
  mart.Fit(train);
  const double big = 8000.0;
  const double truth = big * std::log2(big);
  EXPECT_LT(mart.Predict({big, 25.0}), 0.35 * truth);
}

TEST(MartTest, MoreTreesImproveFit) {
  Dataset train = MakeNlognData(3000, 15);
  Dataset test = MakeNlognData(500, 16);
  MartParams few;
  few.num_trees = 20;
  MartParams many;
  many.num_trees = 300;
  Mart m1(few), m2(many);
  m1.Fit(train);
  m2.Fit(train);
  EXPECT_LT(Rmse(m2, test), Rmse(m1, test));
}

TEST(MartTest, SerializationRoundTrips) {
  Dataset train = MakeNlognData(2000, 17);
  Mart mart(MartParams{});
  mart.Fit(train);
  const auto bytes = mart.Serialize();
  Mart restored;
  ASSERT_TRUE(restored.Deserialize(bytes));
  for (int i = 0; i < 50; ++i) {
    const auto& x = train.x[static_cast<size_t>(i * 7 % 2000)];
    EXPECT_NEAR(mart.Predict(x), restored.Predict(x), 1e-4);
  }
}

TEST(MartTest, SerializedSizeMatchesPaperBallpark) {
  // Paper Section 7.3: one <=10-leaf tree encodes in ~130 bytes; 1K trees in
  // ~127KB. Our per-tree encoding is 10 bytes/node * <=19 nodes ~= 190 B.
  Dataset train = MakeNlognData(2000, 19);
  MartParams p;
  p.num_trees = 1000;
  Mart mart(p);
  mart.Fit(train);
  const auto bytes = mart.Serialize();
  EXPECT_LT(bytes.size(), 300u * 1024u);
  EXPECT_GT(bytes.size(), 20u * 1024u);
}

TEST(MartTest, DeserializeRejectsCorruptData) {
  Dataset train = MakeNlognData(500, 21);
  Mart mart(MartParams{});
  mart.Fit(train);
  auto bytes = mart.Serialize();
  bytes.resize(bytes.size() / 2);
  Mart restored;
  EXPECT_FALSE(restored.Deserialize(bytes));
}

namespace {
template <typename T>
void AppendPod(std::vector<uint8_t>* out, const T& v) {
  const uint8_t* p = reinterpret_cast<const uint8_t*>(&v);
  out->insert(out->end(), p, p + sizeof(T));
}
}  // namespace

TEST(MartTest, DeserializeRejectsOversizedTree) {
  // A tree past kMaxTreeNodes would truncate its int16_t child links;
  // Deserialize must reject it outright.
  std::vector<uint8_t> bytes;
  AppendPod(&bytes, 0.0);                          // f0
  AppendPod(&bytes, 0.1);                          // learning rate
  AppendPod(&bytes, static_cast<uint32_t>(1));     // num_trees
  AppendPod(&bytes, static_cast<uint8_t>(0));      // linear_leaves
  AppendPod(&bytes, static_cast<uint16_t>(40000));  // num_nodes > 32767
  Mart restored;
  EXPECT_FALSE(restored.Deserialize(bytes));
}

TEST(MartTest, DeserializeRejectsOutOfBoundsChildLink) {
  // One internal node whose left child points past the node array.
  std::vector<uint8_t> bytes;
  AppendPod(&bytes, 0.0);
  AppendPod(&bytes, 0.1);
  AppendPod(&bytes, static_cast<uint32_t>(1));
  AppendPod(&bytes, static_cast<uint8_t>(0));
  AppendPod(&bytes, static_cast<uint16_t>(1));  // one node...
  AppendPod(&bytes, static_cast<int16_t>(7));   // ...with children at 7/8
  AppendPod(&bytes, static_cast<int16_t>(0));   // split feature 0
  AppendPod(&bytes, 1.0f);                      // threshold
  AppendPod(&bytes, 0.0f);                      // value
  Mart restored;
  EXPECT_FALSE(restored.Deserialize(bytes));
}

TEST(RegressionTreeTest, FitThrowsPastNodeLimit) {
  // 33k rows on a distinct (x0, x1) bin grid, min_leaf 1 and an effectively
  // unbounded leaf budget: best-first growth would fully isolate every row,
  // crossing kMaxTreeNodes (32767 nodes = 16384 leaves) long before running
  // out of gain. Fit must fail loudly instead of truncating int16_t links.
  const int kRows = 33000;
  const int kGrid = 181;  // 181^2 > kRows distinct cells
  Dataset d;
  Rng rng(43);
  for (int i = 0; i < kRows; ++i) {
    const double x0 = static_cast<double>(i % kGrid);
    const double x1 = static_cast<double>(i / kGrid);
    d.Add({x0, x1}, x0 * 1000.0 + x1 + rng.Uniform(0.0, 0.1));
  }
  FeatureBinner binner;
  binner.Fit(d, kGrid + 1);
  std::vector<size_t> rows(d.NumRows());
  std::iota(rows.begin(), rows.end(), 0u);
  TreeParams params;
  params.max_leaves = 1 << 20;
  params.min_leaf = 1;
  RegressionTree tree;
  EXPECT_THROW(tree.Fit(d, d.y, rows, binner, params), std::length_error);
}

TEST(RegTreeTest, LinearLeavesExtrapolateLocally) {
  // REGTREE (linear leaves) should beat constant-leaf MART slightly outside
  // the training range of a linear function.
  Dataset train = MakeLinearData(3000, 23);
  MartParams constant;
  MartParams linear;
  linear.linear_leaves = true;
  Mart m_const(constant), m_lin(linear);
  m_const.Fit(train);
  m_lin.Fit(train);
  const double x_out = 130.0;  // training range is [0, 100]
  const double truth = 3.0 * x_out;
  EXPECT_LT(std::fabs(m_lin.Predict({x_out, 50.0}) - truth),
            std::fabs(m_const.Predict({x_out, 50.0}) - truth));
}

TEST(LinearModelTest, RecoversLinearSignal) {
  Dataset train = MakeLinearData(2000, 25);
  LinearModel lm;
  lm.Fit(train);
  EXPECT_NEAR(lm.Predict({50.0, 10.0}), 150.0, 2.0);
}

TEST(LinearModelTest, FeatureSelectionDropsIrrelevantFeature) {
  Dataset train = MakeLinearData(2000, 27);
  LinearModel lm;
  lm.Fit(train);
  // Only x0 matters; selection should keep exactly it.
  ASSERT_EQ(lm.selected_features().size(), 1u);
  EXPECT_EQ(lm.selected_features()[0], 0u);
}

TEST(LinearModelTest, ExtrapolatesLinearly) {
  Dataset train = MakeLinearData(2000, 29);
  LinearModel lm;
  lm.Fit(train);
  EXPECT_NEAR(lm.Predict({1000.0, 0.0}), 3000.0, 30.0);  // 10x beyond training
}

TEST(LinearModelTest, PoorFitOnNonlinearData) {
  Dataset train = MakeNlognData(2000, 31);
  Dataset test = MakeNlognData(300, 32);
  LinearModel lm;
  lm.Fit(train);
  Mart mart(MartParams{});
  mart.Fit(train);
  EXPECT_GT(Rmse(lm, test), 2.0 * Rmse(mart, test));
}

TEST(SvrTest, FitsLinearData) {
  Dataset train = MakeLinearData(800, 33);
  Dataset test = MakeLinearData(100, 34);
  Svr svr(SvrParams{});
  svr.Fit(train);
  EXPECT_LT(Rmse(svr, test), 0.1 * TargetStd(test));
}

TEST(SvrTest, AllKernelsTrainAndPredictFinite) {
  Dataset train = MakeNlognData(500, 35);
  for (KernelType kt : {KernelType::kPoly, KernelType::kNormalizedPoly,
                        KernelType::kRbf, KernelType::kPuk}) {
    SvrParams p;
    p.kernel = kt;
    Svr svr(p);
    svr.Fit(train);
    const double pred = svr.Predict(train.x[0]);
    EXPECT_TRUE(std::isfinite(pred)) << KernelName(kt);
    EXPECT_GT(svr.NumSupportVectors(), 0u) << KernelName(kt);
  }
}

TEST(SvrTest, RbfInterpolatesNonlinearData) {
  Dataset train = MakeNlognData(800, 37);
  Dataset test = MakeNlognData(150, 38);
  SvrParams p;
  p.kernel = KernelType::kRbf;
  Svr svr(p);
  svr.Fit(train);
  EXPECT_LT(Rmse(svr, test), 0.25 * TargetStd(test));
}

TEST(SvrTest, SubsamplesLargeTrainingSets) {
  Dataset train = MakeLinearData(5000, 39);
  SvrParams p;
  p.max_train_rows = 500;
  Svr svr(p);
  svr.Fit(train);
  EXPECT_LE(svr.NumSupportVectors(), 500u);
  EXPECT_NEAR(svr.Predict({50.0, 10.0}), 150.0, 10.0);
}

TEST(MlPropertyTest, MartBeatsLinearOnDiscontinuousData) {
  // Multi-pass sort style discontinuity: cost jumps at a threshold.
  Rng rng(41);
  Dataset train, test;
  for (int i = 0; i < 3000; ++i) {
    const double x = rng.Uniform(0, 100);
    const double y = x + (x > 60 ? 500.0 : 0.0) + rng.Gaussian(0, 1);
    (i % 10 == 0 ? test : train).Add({x}, y);
  }
  Mart mart(MartParams{});
  LinearModel lm;
  mart.Fit(train);
  lm.Fit(train);
  EXPECT_LT(Rmse(mart, test), 0.25 * Rmse(lm, test));
}

}  // namespace
}  // namespace resest
