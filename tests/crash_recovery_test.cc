// The headline durability proof: real subprocesses are SIGKILLed at
// injected crash points — mid-append (a genuinely torn record on disk),
// mid-seal, mid-checkpoint, mid-publish — and recovery must be
// *byte-identical* to a never-crashed oracle trainer fed the same durable
// prefix of the append stream.
//
// Mechanics: fork() (no exec — the child runs the same address space,
// single-threaded, pool-free), the child appends a deterministic synthetic
// row stream through a WAL whose fault hook raises SIGKILL at the chosen
// point, the parent waitpid()s for the SIGKILL, replays the directory into
// a fresh trainer, and compares a forced full refit (model bytes and log
// state) against the oracle. Small window/reservoir bounds ensure the
// eviction + reservoir-sampling paths are exercised and reproduced by
// replay, not just straight appends.
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/serving/model_registry.h"
#include "src/storage/recovery.h"
#include "src/storage/wal.h"
#include "src/training/incremental_trainer.h"

namespace resest {
namespace {

constexpr uint64_t kChildRows = 400;
constexpr char kLogName[] = "crash";

std::string FreshDir(const std::string& name) {
  const auto dir = std::filesystem::temp_directory_path() / name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

// The synthetic append stream: slot, features and label are all pure
// functions of the global row index, so the oracle can regenerate exactly
// the prefix the WAL preserved.
OpType OpAt(uint64_t i) {
  return static_cast<OpType>((i * 7) % kNumOpTypes);
}
Resource ResourceAt(uint64_t i) {
  return static_cast<Resource>(i % kNumResources);
}
FeatureVector RowAt(uint64_t i) {
  FeatureVector f{};
  f[0] = static_cast<double>(i % 97);
  f[1] = static_cast<double>((i * 31) % 251);
  f[2] = static_cast<double>(i) * 0.5;
  f[3] = static_cast<double>(i % 5);
  return f;
}
double LabelAt(uint64_t i) {
  return static_cast<double>(i % 13) * 1.25 + static_cast<double>(i) * 0.001;
}

TrainOptions TinyOptions() {
  TrainOptions options;
  options.mart.num_trees = 5;
  options.min_rows_per_operator = 4;
  return options;
}

// Small bounds: with 400 rows over 24 slots, windows overflow and the
// reservoir sampler runs — replay must reproduce those decisions exactly.
LogBounds TightBounds() {
  LogBounds bounds;
  bounds.window_rows = 8;
  bounds.reservoir_rows = 6;
  return bounds;
}

// Gives a trainer a blank baseline (every later RefitAll is then a forced
// full fit from the logs — the same path SeedAndTrain pins to from-scratch
// training).
void SeedBlankBaseline(IncrementalTrainer* trainer) {
  const std::vector<ExecutedQuery> empty;
  trainer->SeedAndTrain(empty);
}

void AppendRow(IncrementalTrainer* trainer, uint64_t i) {
  trainer->Append(OpAt(i), ResourceAt(i), RowAt(i), LabelAt(i));
}

// Forks; the child runs `body` (which is expected to die by SIGKILL from
// the fault hook) and _exit(42)s if it survives. The parent asserts the
// child really was killed at an injected point.
void RunChildExpectingSigkill(const std::function<void()>& body) {
  const pid_t pid = fork();
  ASSERT_GE(pid, 0) << "fork failed";
  if (pid == 0) {
    body();
    _exit(42);  // crash point never reached — the parent fails on this
  }
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status))
      << "child exited normally with status "
      << (WIFEXITED(status) ? WEXITSTATUS(status) : -1)
      << " instead of being SIGKILLed at the injected crash point";
  ASSERT_EQ(WTERMSIG(status), SIGKILL);
}

// Replays `dir` into a fresh trainer and proves it byte-identical to a
// never-crashed oracle fed the recovered prefix: same forced-refit model
// bytes, same per-slot log state. Returns rows recovered.
uint64_t VerifyRecoveryMatchesOracle(const std::string& dir) {
  IncrementalTrainer recovered(TinyOptions(), RefitPolicy{}, nullptr, TightBounds());
  SeedBlankBaseline(&recovered);
  RecoveryStats stats;
  EXPECT_TRUE(recovered.EnableDurability(dir, kLogName, {}, &stats));
  const uint64_t rows = stats.rows_recovered;

  IncrementalTrainer oracle(TinyOptions(), RefitPolicy{}, nullptr, TightBounds());
  SeedBlankBaseline(&oracle);
  for (uint64_t i = 0; i < rows; ++i) AppendRow(&oracle, i);

  if (rows == 0) return 0;
  const auto refit_recovered = recovered.RefitAll();
  const auto refit_oracle = oracle.RefitAll();
  EXPECT_TRUE(refit_recovered);
  EXPECT_TRUE(refit_oracle);
  if (refit_recovered && refit_oracle) {
    EXPECT_EQ(refit_recovered.estimator->Serialize(),
              refit_oracle.estimator->Serialize())
        << "recovered refit diverged from the never-crashed oracle at "
        << rows << " rows";
  }
  for (int op = 0; op < kNumOpTypes; ++op) {
    for (int r = 0; r < kNumResources; ++r) {
      const OpType o = static_cast<OpType>(op);
      const Resource res = static_cast<Resource>(r);
      const auto a = recovered.LogStats(o, res);
      const auto b = oracle.LogStats(o, res);
      EXPECT_EQ(a.rows, b.rows) << OpTypeName(o) << "/" << ResourceName(res);
      EXPECT_EQ(a.window, b.window)
          << OpTypeName(o) << "/" << ResourceName(res);
      EXPECT_EQ(a.reservoir, b.reservoir)
          << OpTypeName(o) << "/" << ResourceName(res);
    }
  }
  return rows;
}

// Child body: appends the full stream through a WAL with `hook` installed.
// Small segments force seals along the way.
void AppendStreamWithHook(const std::string& dir, WalFaultHook hook) {
  IncrementalTrainer trainer(TinyOptions(), RefitPolicy{}, nullptr, TightBounds());
  SeedBlankBaseline(&trainer);
  WalOptions options;
  options.segment_bytes = 16 * 1024;
  options.fault_hook = std::move(hook);
  if (!trainer.EnableDurability(dir, kLogName, options)) _exit(43);
  for (uint64_t i = 0; i < kChildRows; ++i) AppendRow(&trainer, i);
}

TEST(CrashRecoveryTest, SigkillMidAppendRecoversTheDurablePrefix) {
  const std::string dir = FreshDir("resest_crash_mid_append");
  RunChildExpectingSigkill([&]() {
    AppendStreamWithHook(dir, [](const WalFaultContext& ctx) {
      // Torn record: half the frame reaches the file, then the process
      // dies. call_index 310 lands mid-stream, past several seals.
      if (ctx.op == WalFaultOp::kWrite && !ctx.is_header &&
          ctx.call_index == 310) {
        return WalFaultAction::kShortWriteThenCrash;
      }
      return WalFaultAction::kProceed;
    });
  });
  const uint64_t rows = VerifyRecoveryMatchesOracle(dir);
  // Exactly the pre-crash appends survive: the torn record is dropped.
  EXPECT_GT(rows, 0u);
  EXPECT_LT(rows, kChildRows);
}

TEST(CrashRecoveryTest, SigkillAtSealRenameLosesNothing) {
  const std::string dir = FreshDir("resest_crash_mid_seal");
  RunChildExpectingSigkill([&]() {
    AppendStreamWithHook(dir, [](const WalFaultContext& ctx) {
      return ctx.op == WalFaultOp::kSealRename && ctx.call_index == 2
                 ? WalFaultAction::kCrash
                 : WalFaultAction::kProceed;
    });
  });
  // Dying at the rename itself is harmless: the file exists under exactly
  // one name (old or new), fully synced either way.
  const uint64_t rows = VerifyRecoveryMatchesOracle(dir);
  EXPECT_GT(rows, 0u);
  EXPECT_LT(rows, kChildRows);
}

TEST(CrashRecoveryTest, SigkillOnFreshHeaderAfterSealLosesNothing) {
  const std::string dir = FreshDir("resest_crash_post_seal");
  RunChildExpectingSigkill([&]() {
    // call_index counts every kWrite (headers and records share the
    // counter), so count header writes separately: #1 is the initial Open,
    // #2 is the fresh active file created right after the first seal — die
    // before it hits the disk.
    auto headers = std::make_shared<int>(0);
    AppendStreamWithHook(dir, [headers](const WalFaultContext& ctx) {
      if (ctx.op == WalFaultOp::kWrite && ctx.is_header &&
          ++*headers == 2) {
        return WalFaultAction::kCrash;
      }
      return WalFaultAction::kProceed;
    });
  });
  const uint64_t rows = VerifyRecoveryMatchesOracle(dir);
  EXPECT_GT(rows, 0u);
  EXPECT_LT(rows, kChildRows);
}

TEST(CrashRecoveryTest, SigkillDuringCheckpointKeepsEveryRow) {
  const std::string dir = FreshDir("resest_crash_mid_checkpoint");
  RunChildExpectingSigkill([&]() {
    IncrementalTrainer trainer(TinyOptions(), RefitPolicy{}, nullptr, TightBounds());
    SeedBlankBaseline(&trainer);
    WalOptions options;
    options.segment_bytes = 16 * 1024;
    auto armed = std::make_shared<bool>(false);
    options.fault_hook = [armed](const WalFaultContext& ctx) {
      return *armed && ctx.op == WalFaultOp::kWrite
                 ? WalFaultAction::kShortWriteThenCrash
                 : WalFaultAction::kProceed;
    };
    if (!trainer.EnableDurability(dir, kLogName, options)) _exit(43);
    for (uint64_t i = 0; i < kChildRows; ++i) AppendRow(&trainer, i);
    ModelRegistry registry;
    if (trainer.PublishBaseline(&registry, kLogName) == 0) _exit(44);
    *armed = true;  // the next WAL write is the checkpoint marker
    trainer.Checkpoint(registry, kLogName, dir);
  });
  // The torn checkpoint marker is dropped; every observation row — all
  // appended before Checkpoint was called — must survive.
  const uint64_t rows = VerifyRecoveryMatchesOracle(dir);
  EXPECT_EQ(rows, kChildRows);
}

TEST(CrashRecoveryTest, SigkillDuringPublishKeepsEveryRow) {
  const std::string dir = FreshDir("resest_crash_mid_publish");
  RunChildExpectingSigkill([&]() {
    // min_new_rows = 1: with 400 rows over 24 slots the default 64-row
    // threshold never crosses and RefitAndPublish would be a no-op — the
    // test needs the post-publish marker appends to actually happen.
    RefitPolicy eager;
    eager.min_new_rows = 1;
    IncrementalTrainer trainer(TinyOptions(), eager, nullptr, TightBounds());
    SeedBlankBaseline(&trainer);
    WalOptions options;
    options.segment_bytes = 16 * 1024;
    auto armed = std::make_shared<bool>(false);
    options.fault_hook = [armed](const WalFaultContext& ctx) {
      return *armed && ctx.op == WalFaultOp::kWrite
                 ? WalFaultAction::kShortWriteThenCrash
                 : WalFaultAction::kProceed;
    };
    if (!trainer.EnableDurability(dir, kLogName, options)) _exit(43);
    for (uint64_t i = 0; i < kChildRows; ++i) AppendRow(&trainer, i);
    ModelRegistry registry;
    if (trainer.PublishBaseline(&registry, kLogName) == 0) _exit(44);
    *armed = true;  // die on the first post-refit marker append
    trainer.RefitAndPublish(&registry, kLogName);
  });
  // Publish markers are coverage metadata, not data: losing them mid-write
  // costs a redundant (deterministic) re-refit after restart, never rows.
  const uint64_t rows = VerifyRecoveryMatchesOracle(dir);
  EXPECT_EQ(rows, kChildRows);
}

TEST(CrashRecoveryTest, RecoveredTrainerResumesAppendingDurably) {
  const std::string dir = FreshDir("resest_crash_resume");
  RunChildExpectingSigkill([&]() {
    AppendStreamWithHook(dir, [](const WalFaultContext& ctx) {
      if (ctx.op == WalFaultOp::kWrite && !ctx.is_header &&
          ctx.call_index == 200) {
        return WalFaultAction::kShortWriteThenCrash;
      }
      return WalFaultAction::kProceed;
    });
  });
  // First recovery: resume the stream where the WAL left off, as a
  // restarted server would.
  uint64_t resumed_from = 0;
  {
    IncrementalTrainer trainer(TinyOptions(), RefitPolicy{}, nullptr, TightBounds());
    SeedBlankBaseline(&trainer);
    RecoveryStats stats;
    ASSERT_TRUE(trainer.EnableDurability(dir, kLogName, {}, &stats));
    resumed_from = stats.rows_recovered;
    ASSERT_GT(resumed_from, 0u);
    for (uint64_t i = resumed_from; i < kChildRows; ++i) {
      AppendRow(&trainer, i);
    }
    ASSERT_TRUE(trainer.DrainWal());
  }
  // Second recovery sees the full stream — and matches the oracle on it.
  const uint64_t rows = VerifyRecoveryMatchesOracle(dir);
  EXPECT_EQ(rows, kChildRows);
}

}  // namespace
}  // namespace resest
