// Parameterized property tests (TEST_P sweeps) across operators, scale
// factors, skews and resources: invariants that must hold for any
// configuration, not just the fixtures the unit tests pin down.
#include <cmath>
#include <memory>
#include <tuple>

#include "gtest/gtest.h"
#include "src/common/stats.h"
#include "src/core/estimator.h"
#include "src/engine/executor.h"
#include "src/workload/runner.h"
#include "src/workload/schemas.h"
#include "src/workload/tpch_queries.h"

namespace resest {
namespace {

// ---------------------------------------------------------------------------
// Engine invariants over (scale factor, skew).
// ---------------------------------------------------------------------------

class EngineInvariantTest
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(EngineInvariantTest, ExecutionAccountingInvariants) {
  const auto [sf, skew] = GetParam();
  auto db = GenerateDatabase(TpchSchema(), sf, skew, 42);
  Rng rng(11);
  const auto queries = GenerateTpchWorkload(17, &rng, db.get());
  const auto executed = RunWorkload(db.get(), queries);
  ASSERT_FALSE(executed.empty());
  for (const auto& eq : executed) {
    eq.plan.root->Visit([&](const PlanNode* n) {
      // Every operator executed, with non-negative resources.
      EXPECT_TRUE(n->actual.executed);
      EXPECT_GE(n->actual.cpu, 0.0);
      EXPECT_GE(n->actual.logical_io, 0);
      EXPECT_GE(n->actual.rows_out, 0);
      // Output bytes are rows x width: zero rows means zero bytes.
      if (n->actual.rows_out == 0) EXPECT_DOUBLE_EQ(n->actual.bytes_out, 0.0);
      // Filters and Tops never increase cardinality.
      if (n->type == OpType::kFilter || n->type == OpType::kTop) {
        EXPECT_LE(n->actual.rows_out, n->actual.rows_in[0]);
      }
      // Sorts and scalar computations preserve cardinality.
      if (n->type == OpType::kSort) {
        EXPECT_EQ(n->actual.rows_out, n->actual.rows_in[0]);
      }
    });
  }
}

TEST_P(EngineInvariantTest, ExecutionIsDeterministicUpToNoiseSeed) {
  const auto [sf, skew] = GetParam();
  auto db = GenerateDatabase(TpchSchema(), sf, skew, 42);
  Rng rng(11);
  const auto queries = GenerateTpchWorkload(5, &rng, db.get());
  const auto a = RunWorkload(db.get(), queries, 7);
  const auto b = RunWorkload(db.get(), queries, 7);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].plan.TotalActualCpu(), b[i].plan.TotalActualCpu());
    EXPECT_EQ(a[i].plan.TotalActualIo(), b[i].plan.TotalActualIo());
    EXPECT_EQ(a[i].plan.root->actual.rows_out, b[i].plan.root->actual.rows_out);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ScaleAndSkew, EngineInvariantTest,
    ::testing::Combine(::testing::Values(0.5, 1.0, 2.0),
                       ::testing::Values(0.0, 1.0, 2.0)));

// ---------------------------------------------------------------------------
// Feature-extraction invariants per operator type.
// ---------------------------------------------------------------------------

class FeatureInvariantTest : public ::testing::TestWithParam<int> {
 protected:
  static void SetUpTestSuite() {
    db_ = GenerateDatabase(TpchSchema(), 1.0, 1.0, 42).release();
    Rng rng(7);
    const auto queries = GenerateTpchWorkload(80, &rng, db_);
    workload_ = new std::vector<ExecutedQuery>(RunWorkload(db_, queries));
  }
  static void TearDownTestSuite() {
    delete workload_;
    delete db_;
    workload_ = nullptr;
    db_ = nullptr;
  }
  static Database* db_;
  static std::vector<ExecutedQuery>* workload_;
};

Database* FeatureInvariantTest::db_ = nullptr;
std::vector<ExecutedQuery>* FeatureInvariantTest::workload_ = nullptr;

TEST_P(FeatureInvariantTest, ExtractedFeaturesAreConsistent) {
  const OpType op = static_cast<OpType>(GetParam());
  int seen = 0;
  for (const auto& eq : *workload_) {
    eq.plan.root->Visit([&](const PlanNode* n) {
      if (n->type != op) return;
      ++seen;
      for (const FeatureMode mode :
           {FeatureMode::kExact, FeatureMode::kEstimated}) {
        const FeatureVector v = ExtractFeatures(*n, nullptr, *db_, mode);
        for (int f = 0; f < kNumFeatures; ++f) {
          EXPECT_TRUE(std::isfinite(v[static_cast<size_t>(f)]))
              << OpTypeName(op) << " " << FeatureName(static_cast<FeatureId>(f));
        }
        // SOUTTOT == COUT x SOUTAVG (within rounding).
        const double cout = v[static_cast<size_t>(FeatureId::kCOut)];
        const double avg = v[static_cast<size_t>(FeatureId::kSOutAvg)];
        const double tot = v[static_cast<size_t>(FeatureId::kSOutTot)];
        EXPECT_NEAR(cout * avg, tot, 1e-6 * std::max(1.0, tot));
        // No negative counts or widths.
        EXPECT_GE(cout, 0.0);
        EXPECT_GE(avg, 0.0);
      }
    });
  }
  if (seen == 0) GTEST_SKIP() << OpTypeName(op) << " not present in workload";
}

TEST_P(FeatureInvariantTest, OperatorFeatureListNonEmptyAndUnique) {
  const OpType op = static_cast<OpType>(GetParam());
  const auto& feats = OperatorFeatures(op);
  EXPECT_GE(feats.size(), 4u);
  for (size_t i = 0; i < feats.size(); ++i) {
    for (size_t j = i + 1; j < feats.size(); ++j) {
      EXPECT_NE(feats[i], feats[j]) << OpTypeName(op);
    }
  }
  // Scalable candidates are a subset of the operator's features.
  for (Resource r : {Resource::kCpu, Resource::kIo}) {
    for (FeatureId f : ScalableFeatures(op, r)) {
      EXPECT_NE(std::find(feats.begin(), feats.end(), f), feats.end());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllOperators, FeatureInvariantTest,
                         ::testing::Range(0, kNumOpTypes));

// ---------------------------------------------------------------------------
// Scaling-function properties.
// ---------------------------------------------------------------------------

class ScalingFnPropertyTest : public ::testing::TestWithParam<ScalingFn> {};

TEST_P(ScalingFnPropertyTest, MonotoneNondecreasingInFirstArg) {
  const ScalingFn fn = GetParam();
  double prev = 0.0;
  for (double a = 1; a <= 1e7; a *= 3) {
    const double g = EvalScaling(fn, a, 50.0);
    EXPECT_TRUE(std::isfinite(g));
    EXPECT_GE(g, prev) << ScalingFnName(fn) << " at a=" << a;
    prev = g;
  }
}

TEST_P(ScalingFnPropertyTest, PositiveAndFiniteOnDegenerateInputs) {
  const ScalingFn fn = GetParam();
  for (double a : {0.0, 0.5, 1.0, 1e-9}) {
    const double g = EvalScaling(fn, a, 0.0);
    EXPECT_TRUE(std::isfinite(g)) << ScalingFnName(fn);
    EXPECT_GE(g, 0.0) << ScalingFnName(fn);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllForms, ScalingFnPropertyTest,
    ::testing::Values(ScalingFn::kLinear, ScalingFn::kLog2, ScalingFn::kNLogN,
                      ScalingFn::kSqrt, ScalingFn::kPower15,
                      ScalingFn::kQuadratic, ScalingFn::kCubic, ScalingFn::kSum,
                      ScalingFn::kProduct, ScalingFn::kALogB));

// ---------------------------------------------------------------------------
// Combined-model properties per resource.
// ---------------------------------------------------------------------------

class EstimatorPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(EstimatorPropertyTest, EstimatesNonNegativeAndFinite) {
  const Resource resource = static_cast<Resource>(GetParam());
  auto db = GenerateDatabase(TpchSchema(), 1.0, 1.5, 42);
  Rng rng(7);
  const auto train =
      RunWorkload(db.get(), GenerateTpchWorkload(100, &rng, db.get()));
  TrainOptions options;
  options.mart.num_trees = 60;
  const ResourceEstimator est = ResourceEstimator::Train(train, options);
  const auto test =
      RunWorkload(db.get(), GenerateTpchWorkload(30, &rng, db.get()), 99);
  for (const auto& eq : test) {
    const double v = est.EstimateQuery(eq.plan, *db, resource);
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_GE(v, 0.0);
    // Pipeline estimates sum to the query estimate.
    double pipeline_sum = 0;
    for (double p : est.EstimatePipelines(eq.plan, *db, resource)) {
      pipeline_sum += p;
    }
    EXPECT_NEAR(v, pipeline_sum, 1e-6 * std::max(1.0, v));
  }
}

INSTANTIATE_TEST_SUITE_P(BothResources, EstimatorPropertyTest,
                         ::testing::Values(0, 1));

}  // namespace
}  // namespace resest
