// Edge-case and failure-injection tests: degenerate inputs, empty results,
// malformed plans, extreme parameter values.
#include <memory>

#include "gtest/gtest.h"
#include "src/core/estimator.h"
#include "src/engine/executor.h"
#include "src/ml/linear_model.h"
#include "src/ml/mart.h"
#include "src/ml/svr.h"
#include "src/optimizer/plan_builder.h"
#include "src/workload/runner.h"
#include "src/workload/schemas.h"
#include "src/workload/tpch_queries.h"

namespace resest {
namespace {

class EdgeCaseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = GenerateDatabase(TpchSchema(), 0.3, 1.0, 42);
  }
  std::unique_ptr<Database> db_;
};

TEST_F(EdgeCaseTest, ScanWithImpossiblePredicateYieldsEmptyResult) {
  auto scan = std::make_unique<PlanNode>();
  scan->type = OpType::kTableScan;
  scan->table = "orders";
  scan->predicates = {Predicate{"o_orderdate", Predicate::Op::kBetween, 900, 100}};
  Executor exec(db_.get(), 1);
  const Relation r = exec.ExecuteNode(scan.get());
  EXPECT_EQ(r.rows(), 0);
  EXPECT_DOUBLE_EQ(scan->actual.bytes_out, 0.0);
  // The scan still pays for reading the table.
  EXPECT_GT(scan->actual.cpu, 0.0);
  EXPECT_GT(scan->actual.logical_io, 0);
}

TEST_F(EdgeCaseTest, SeekOutsideDomainYieldsEmptyResultCheaply) {
  auto seek = std::make_unique<PlanNode>();
  seek->type = OpType::kIndexSeek;
  seek->table = "orders";
  seek->seek_column = "o_orderkey";
  seek->predicates = {
      Predicate{"o_orderkey", Predicate::Op::kBetween, 10000000, 20000000}};
  Executor exec(db_.get(), 1);
  const Relation r = exec.ExecuteNode(seek.get());
  EXPECT_EQ(r.rows(), 0);
  EXPECT_LE(seek->actual.logical_io, 4);  // root-to-leaf only
}

TEST_F(EdgeCaseTest, ExecutorThrowsOnUnknownTable) {
  auto scan = std::make_unique<PlanNode>();
  scan->type = OpType::kTableScan;
  scan->table = "no_such_table";
  Executor exec(db_.get(), 1);
  EXPECT_THROW(exec.ExecuteNode(scan.get()), std::runtime_error);
}

TEST_F(EdgeCaseTest, ExecutorThrowsOnUnknownColumn) {
  auto scan = std::make_unique<PlanNode>();
  scan->type = OpType::kTableScan;
  scan->table = "orders";
  scan->predicates = {Predicate{"no_such_col", Predicate::Op::kEq, 1, 1}};
  Executor exec(db_.get(), 1);
  EXPECT_THROW(exec.ExecuteNode(scan.get()), std::runtime_error);
}

TEST_F(EdgeCaseTest, ExecutorThrowsOnSeekWithoutIndex) {
  auto seek = std::make_unique<PlanNode>();
  seek->type = OpType::kIndexSeek;
  seek->table = "orders";
  seek->seek_column = "o_totalprice";  // not indexed
  Executor exec(db_.get(), 1);
  EXPECT_THROW(exec.ExecuteNode(seek.get()), std::runtime_error);
}

TEST_F(EdgeCaseTest, JoinWithEmptySideProducesEmptyOutput) {
  auto empty_scan = std::make_unique<PlanNode>();
  empty_scan->type = OpType::kTableScan;
  empty_scan->table = "customer";
  empty_scan->output_columns = {"c_custkey"};
  empty_scan->predicates = {
      Predicate{"c_custkey", Predicate::Op::kGe, 100000000, 0}};
  auto full_scan = std::make_unique<PlanNode>();
  full_scan->type = OpType::kTableScan;
  full_scan->table = "orders";
  full_scan->output_columns = {"o_custkey", "o_totalprice"};

  auto join = std::make_unique<PlanNode>();
  join->type = OpType::kHashJoin;
  join->left_key = "orders.o_custkey";
  join->right_key = "customer.c_custkey";
  join->children.push_back(std::move(full_scan));
  join->children.push_back(std::move(empty_scan));
  Executor exec(db_.get(), 1);
  const Relation r = exec.ExecuteNode(join.get());
  EXPECT_EQ(r.rows(), 0);
  EXPECT_TRUE(join->actual.executed);
}

TEST_F(EdgeCaseTest, PlanBuilderRejectsEmptyQuery) {
  PlanBuilder builder(db_.get());
  EXPECT_THROW(builder.Build(QuerySpec{}), std::runtime_error);
}

TEST_F(EdgeCaseTest, PlanBuilderRejectsDisconnectedJoinGraph) {
  QuerySpec q;
  q.tables.push_back(TableRef{"orders", {}, {"o_orderkey"}});
  q.tables.push_back(TableRef{"customer", {}, {"c_custkey"}});
  // No join edge between them.
  PlanBuilder builder(db_.get());
  EXPECT_THROW(builder.Build(q), std::runtime_error);
}

TEST_F(EdgeCaseTest, TopLargerThanInputKeepsAllRows) {
  auto scan = std::make_unique<PlanNode>();
  scan->type = OpType::kTableScan;
  scan->table = "nation";
  auto top = std::make_unique<PlanNode>();
  top->type = OpType::kTop;
  top->limit = 1000000;
  top->children.push_back(std::move(scan));
  Executor exec(db_.get(), 1);
  const Relation r = exec.ExecuteNode(top.get());
  EXPECT_EQ(r.rows(), db_->FindTable("nation")->row_count());
}

TEST_F(EdgeCaseTest, SortOnEmptyInput) {
  auto scan = std::make_unique<PlanNode>();
  scan->type = OpType::kTableScan;
  scan->table = "orders";
  scan->predicates = {Predicate{"o_orderkey", Predicate::Op::kGe, 100000000, 0}};
  auto sort = std::make_unique<PlanNode>();
  sort->type = OpType::kSort;
  sort->sort_columns = {"orders.o_orderkey"};
  sort->children.push_back(std::move(scan));
  Executor exec(db_.get(), 1);
  const Relation r = exec.ExecuteNode(sort.get());
  EXPECT_EQ(r.rows(), 0);
}

TEST_F(EdgeCaseTest, AggregateWithoutGroupColumnsYieldsOneRow) {
  auto scan = std::make_unique<PlanNode>();
  scan->type = OpType::kTableScan;
  scan->table = "orders";
  scan->output_columns = {"o_totalprice"};
  auto agg = std::make_unique<PlanNode>();
  agg->type = OpType::kHashAggregate;
  agg->num_aggregates = 2;
  agg->children.push_back(std::move(scan));
  Executor exec(db_.get(), 1);
  const Relation r = exec.ExecuteNode(agg.get());
  EXPECT_EQ(r.rows(), 1);
}

// --- ML models on degenerate training data ---------------------------------

TEST(MlEdgeCaseTest, ModelsHandleEmptyTrainingData) {
  const Dataset empty;
  Mart mart;
  mart.Fit(empty);
  EXPECT_DOUBLE_EQ(mart.Predict({1.0, 2.0}), 0.0);
  LinearModel lm;
  lm.Fit(empty);
  EXPECT_DOUBLE_EQ(lm.Predict({1.0, 2.0}), 0.0);
  Svr svr;
  svr.Fit(empty);
  EXPECT_DOUBLE_EQ(svr.Predict({1.0, 2.0}), 0.0);
}

TEST(MlEdgeCaseTest, ModelsHandleConstantTargets) {
  Dataset d;
  Rng rng(3);
  for (int i = 0; i < 100; ++i) d.Add({rng.Uniform(0, 10)}, 5.0);
  Mart mart;
  mart.Fit(d);
  EXPECT_NEAR(mart.Predict({3.0}), 5.0, 1e-6);
  LinearModel lm;
  lm.Fit(d);
  EXPECT_NEAR(lm.Predict({3.0}), 5.0, 1e-6);
  Svr svr;
  svr.Fit(d);
  EXPECT_NEAR(svr.Predict({3.0}), 5.0, 0.2);
}

TEST(MlEdgeCaseTest, ModelsHandleConstantFeatures) {
  Dataset d;
  Rng rng(5);
  for (int i = 0; i < 200; ++i) d.Add({7.0, 7.0}, rng.Uniform(0, 10));
  Mart mart;
  mart.Fit(d);
  EXPECT_TRUE(std::isfinite(mart.Predict({7.0, 7.0})));
  LinearModel lm;
  lm.Fit(d);
  EXPECT_TRUE(std::isfinite(lm.Predict({7.0, 7.0})));
}

TEST(MlEdgeCaseTest, MartSingleRowTraining) {
  Dataset d;
  d.Add({1.0}, 42.0);
  MartParams p;
  p.min_leaf = 1;
  Mart mart(p);
  mart.Fit(d);
  EXPECT_NEAR(mart.Predict({1.0}), 42.0, 1.0);
}

// --- Estimator with sparse training -----------------------------------------

TEST(EstimatorEdgeCaseTest, FallsBackGracefullyWithTinyWorkload) {
  auto db = GenerateDatabase(TpchSchema(), 0.3, 1.0, 42);
  Rng rng(7);
  const auto workload =
      RunWorkload(db.get(), GenerateTpchWorkload(3, &rng, db.get()));
  TrainOptions options;
  options.mart.num_trees = 10;
  const ResourceEstimator est = ResourceEstimator::Train(workload, options);
  // Some operators lack models; estimates must still be finite/non-negative.
  for (const auto& eq : workload) {
    const double v = est.EstimateQuery(eq.plan, *db, Resource::kCpu);
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_GE(v, 0.0);
  }
}

TEST(EstimatorEdgeCaseTest, EmptyWorkloadTrainsEmptyEstimator) {
  TrainOptions options;
  const ResourceEstimator est = ResourceEstimator::Train({}, options);
  EXPECT_EQ(est.SerializedBytes(), 0u);
  auto db = GenerateDatabase(TpchSchema(), 0.3, 1.0, 42);
  PlanBuilder builder(db.get());
  QuerySpec q;
  q.tables.push_back(TableRef{"nation", {}, {"n_nationkey"}});
  const Plan plan = builder.Build(q);
  EXPECT_DOUBLE_EQ(est.EstimateQuery(plan, *db, Resource::kCpu), 0.0);
}

}  // namespace
}  // namespace resest
