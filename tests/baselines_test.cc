// Tests for src/baselines: each competing technique trains, produces finite
// positive estimates, and the harness reproduces the paper's qualitative
// ordering in-distribution.
#include <memory>

#include "gtest/gtest.h"
#include "src/baselines/harness.h"
#include "src/workload/runner.h"
#include "src/workload/schemas.h"
#include "src/workload/tpch_queries.h"

namespace resest {
namespace {

class BaselinesTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = GenerateDatabase(TpchSchema(), 1.0, 1.5, 42).release();
    Rng rng(7);
    auto queries = GenerateTpchWorkload(160, &rng, db_);
    auto all = RunWorkload(db_, queries);
    train_ = new std::vector<ExecutedQuery>();
    test_ = new std::vector<ExecutedQuery>();
    for (size_t i = 0; i < all.size(); ++i) {
      ((i % 5 == 0) ? test_ : train_)->push_back(std::move(all[i]));
    }
  }
  static void TearDownTestSuite() {
    delete train_;
    delete test_;
    delete db_;
    train_ = nullptr;
    test_ = nullptr;
    db_ = nullptr;
  }

  static Database* db_;
  static std::vector<ExecutedQuery>* train_;
  static std::vector<ExecutedQuery>* test_;
};

Database* BaselinesTest::db_ = nullptr;
std::vector<ExecutedQuery>* BaselinesTest::train_ = nullptr;
std::vector<ExecutedQuery>* BaselinesTest::test_ = nullptr;

TEST_F(BaselinesTest, AllTechniquesTrainAndEstimateFinite) {
  for (const std::string name :
       {"OPT", "[8]", "LINEAR", "MART", "REGTREE", "SVM(PK)", "SVM(RBF)",
        "SCALING", "SCALING-nonorm", "SCALING-1f"}) {
    const auto est = TrainTechnique(name, *train_, FeatureMode::kExact);
    ASSERT_NE(est, nullptr) << name;
    for (const auto& eq : *test_) {
      for (Resource r : {Resource::kCpu, Resource::kIo}) {
        const double v = est->Estimate(eq, r);
        EXPECT_TRUE(std::isfinite(v)) << name;
        EXPECT_GE(v, 0.0) << name;
      }
    }
  }
}

TEST_F(BaselinesTest, OptAlphaMapsCostToResourceScale) {
  const auto opt = OptBaseline::Train(*train_);
  // Total estimated CPU across the test set should be the right order of
  // magnitude (alpha is a least-squares fit, Figure 1's regression line).
  double est_sum = 0, act_sum = 0;
  for (const auto& eq : *test_) {
    est_sum += opt->Estimate(eq, Resource::kCpu);
    act_sum += ActualUsage(eq, Resource::kCpu);
  }
  EXPECT_GT(est_sum, 0.2 * act_sum);
  EXPECT_LT(est_sum, 5.0 * act_sum);
}

TEST_F(BaselinesTest, ScalingBeatsOptInDistribution) {
  const auto scores = EvaluateTechniques({"OPT", "SCALING"}, *train_, *test_,
                                         Resource::kCpu, FeatureMode::kEstimated);
  ASSERT_EQ(scores.size(), 2u);
  EXPECT_LT(scores[1].l1_error, scores[0].l1_error);
  EXPECT_GT(scores[1].buckets.le_1_5, scores[0].buckets.le_1_5);
}

TEST_F(BaselinesTest, ScalingStrongInDistributionExactFeatures) {
  const auto scores = EvaluateTechniques({"SCALING"}, *train_, *test_,
                                         Resource::kCpu, FeatureMode::kExact);
  ASSERT_EQ(scores.size(), 1u);
  // Paper Table 4 shape: low L1, most queries within ratio 1.5.
  EXPECT_LT(scores[0].l1_error, 0.5);
  EXPECT_GT(scores[0].buckets.le_1_5, 0.7);
}

TEST_F(BaselinesTest, AkderePropagatesCumulativeEstimates) {
  const auto akdere = AkdereEstimator::Train(*train_, FeatureMode::kExact);
  // Estimates grow with plan size: a root estimate includes its subtree.
  for (const auto& eq : *test_) {
    const double v = akdere->Estimate(eq, Resource::kCpu);
    EXPECT_GE(v, 0.0);
  }
  const auto score = ScoreEstimator(*akdere, *test_, Resource::kCpu);
  EXPECT_LT(score.l1_error, 10.0);  // sane, not necessarily great
}

TEST_F(BaselinesTest, ScoreEstimatorMatchesManualComputation) {
  const auto opt = OptBaseline::Train(*train_);
  const auto score = ScoreEstimator(*opt, *test_, Resource::kCpu);
  std::vector<double> est, act;
  for (const auto& eq : *test_) {
    est.push_back(std::max(0.01, opt->Estimate(eq, Resource::kCpu)));
    act.push_back(ActualUsage(eq, Resource::kCpu));
  }
  EXPECT_DOUBLE_EQ(score.l1_error, L1RelativeError(est, act));
}

}  // namespace
}  // namespace resest
