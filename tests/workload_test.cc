// Tests for src/workload: template generation, the four workload families,
// and the end-to-end runner over multiple scale factors.
#include <set>

#include "gtest/gtest.h"
#include "src/common/stats.h"
#include "src/workload/real_queries.h"
#include "src/workload/runner.h"
#include "src/workload/schemas.h"
#include "src/workload/tpcds_queries.h"
#include "src/workload/tpch_queries.h"

namespace resest {
namespace {

TEST(TpchWorkloadTest, TemplatesProduceDistinctParameters) {
  auto db = GenerateDatabase(TpchSchema(), 0.5, 1.0, 42);
  Rng rng(3);
  const QuerySpec a = MakeTpchQuery(1, &rng, db.get());
  const QuerySpec b = MakeTpchQuery(1, &rng, db.get());
  ASSERT_EQ(a.name, b.name);
  // Same template, different parameter draws.
  ASSERT_FALSE(a.tables[1].predicates.empty());
  EXPECT_TRUE(a.tables[1].predicates[0].lo != b.tables[1].predicates[0].lo ||
              a.tables[1].predicates[0].hi != b.tables[1].predicates[0].hi);
}

TEST(TpchWorkloadTest, WorkloadCyclesAllTemplates) {
  auto db = GenerateDatabase(TpchSchema(), 0.5, 1.0, 42);
  Rng rng(3);
  const auto ws = GenerateTpchWorkload(2 * NumTpchTemplates(), &rng, db.get());
  std::set<std::string> names;
  for (const auto& q : ws) names.insert(q.name);
  EXPECT_EQ(static_cast<int>(names.size()), NumTpchTemplates());
}

TEST(TpchWorkloadTest, AllTemplatesRunOnTpch) {
  auto db = GenerateDatabase(TpchSchema(), 0.5, 1.0, 42);
  Rng rng(5);
  const auto ws = GenerateTpchWorkload(NumTpchTemplates(), &rng, db.get());
  const auto executed = RunWorkload(db.get(), ws);
  EXPECT_EQ(executed.size(), ws.size()) << "every template should execute";
}

TEST(TpcdsWorkloadTest, AllTemplatesRunOnTpcds) {
  auto db = GenerateDatabase(TpcdsSchema(), 0.5, 1.0, 42);
  Rng rng(5);
  const auto ws = GenerateTpcdsWorkload(NumTpcdsTemplates(), &rng, db.get());
  const auto executed = RunWorkload(db.get(), ws);
  EXPECT_EQ(executed.size(), ws.size());
}

TEST(RealWorkloadTest, Real1QueriesJoinFiveToEightTables) {
  Rng rng(5);
  const auto ws = GenerateReal1Workload(50, &rng);
  ASSERT_EQ(ws.size(), 50u);
  for (const auto& q : ws) {
    EXPECT_GE(q.tables.size(), 5u) << q.name;
    EXPECT_LE(q.tables.size(), 8u) << q.name;
    // Connected join graph: #edges >= #tables - 1.
    EXPECT_GE(q.joins.size() + 1, q.tables.size()) << q.name;
  }
}

TEST(RealWorkloadTest, Real2QueriesAreDeep) {
  Rng rng(5);
  const auto ws = GenerateReal2Workload(100, &rng);
  double total_tables = 0;
  size_t max_tables = 0;
  for (const auto& q : ws) {
    total_tables += static_cast<double>(q.tables.size());
    max_tables = std::max(max_tables, q.tables.size());
    // No table joined twice (the executor would see ambiguous columns).
    std::set<std::string> names;
    for (const auto& t : q.tables) EXPECT_TRUE(names.insert(t.table).second) << q.name;
  }
  EXPECT_GT(total_tables / 100.0, 6.0);
  EXPECT_GE(max_tables, 10u);
}

TEST(RealWorkloadTest, RealWorkloadsExecute) {
  auto db1 = GenerateDatabase(Real1Schema(), 0.3, 1.0, 42);
  auto db2 = GenerateDatabase(Real2Schema(), 0.3, 1.0, 42);
  Rng rng(5);
  const auto w1 = GenerateReal1Workload(30, &rng);
  const auto w2 = GenerateReal2Workload(30, &rng);
  EXPECT_EQ(RunWorkload(db1.get(), w1).size(), w1.size());
  EXPECT_EQ(RunWorkload(db2.get(), w2).size(), w2.size());
}

TEST(RunnerTest, ResourceVarianceAcrossParametersIsLarge) {
  // Under skew, instances of the same template differ strongly in resource
  // use (the property the paper's TPC-H workload is designed to have).
  auto db = GenerateDatabase(TpchSchema(), 1.0, 2.0, 42);
  Rng rng(5);
  std::vector<QuerySpec> qs;
  for (int i = 0; i < 12; ++i) qs.push_back(MakeTpchQuery(4, &rng, db.get()));  // Q6
  const auto executed = RunWorkload(db.get(), qs);
  std::vector<double> cpus;
  for (const auto& eq : executed) cpus.push_back(eq.plan.TotalActualCpu());
  ASSERT_GT(cpus.size(), 6u);
  EXPECT_GT(Max(cpus) / std::max(1e-9, Min(cpus)), 1.5);
}

TEST(RunnerTest, CpuGrowsWithScaleFactor) {
  Rng rng(5);
  auto small = GenerateDatabase(TpchSchema(), 1.0, 1.0, 42);
  auto large = GenerateDatabase(TpchSchema(), 4.0, 1.0, 42);
  std::vector<QuerySpec> qs = {MakeTpchQuery(0, &rng, small.get())};  // Q1
  const auto es = RunWorkload(small.get(), qs);
  const auto el = RunWorkload(large.get(), qs);
  ASSERT_EQ(es.size(), 1u);
  ASSERT_EQ(el.size(), 1u);
  EXPECT_GT(el[0].plan.TotalActualCpu(), 2.0 * es[0].plan.TotalActualCpu());
  EXPECT_GT(el[0].plan.TotalActualIo(), 2 * es[0].plan.TotalActualIo());
}

}  // namespace
}  // namespace resest
