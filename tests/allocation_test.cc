// Proves the zero-allocation claim of the batched serving pipeline with an
// operator-new hook: once the per-worker arenas are warm, estimating a 4x
// larger batch must not perform more heap allocations than the smaller one —
// i.e. the steady-state cost per additional request/chunk is zero heap
// traffic. (Per-batch setup — the request copy, the result vector, the
// identity-dedup scan, one pool task per helper — allocates a small constant
// number of blocks; per-request and per-chunk scratch all comes from the
// thread-local arenas, which Reset() without freeing.)
//
// The hook replaces the global operator new/delete for this test binary
// only. Under ASan/TSan the sanitizer runtime interposes allocation itself,
// so the hook is compiled out and the test reports itself skipped.
#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "gtest/gtest.h"
#include "src/serving/estimation_service.h"
#include "src/serving/model_registry.h"
#include "src/training/incremental_trainer.h"
#include "src/workload/runner.h"
#include "src/workload/schemas.h"
#include "src/workload/tpch_queries.h"

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define RESEST_ALLOC_HOOK_DISABLED 1
#endif
#if !defined(RESEST_ALLOC_HOOK_DISABLED) && defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define RESEST_ALLOC_HOOK_DISABLED 1
#endif
#endif

namespace {

std::atomic<bool> g_counting{false};
std::atomic<uint64_t> g_allocations{0};

void* CountedAllocate(std::size_t size) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
  }
  return std::malloc(size != 0 ? size : 1);
}

}  // namespace

#if !defined(RESEST_ALLOC_HOOK_DISABLED)
void* operator new(std::size_t size) {
  if (void* p = CountedAllocate(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  if (void* p = CountedAllocate(size)) return p;
  throw std::bad_alloc();
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return CountedAllocate(size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return CountedAllocate(size);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
#endif  // !RESEST_ALLOC_HOOK_DISABLED

namespace resest {
namespace {

template <typename Fn>
uint64_t CountAllocations(Fn&& fn) {
  g_allocations.store(0, std::memory_order_relaxed);
  g_counting.store(true, std::memory_order_relaxed);
  fn();
  g_counting.store(false, std::memory_order_relaxed);
  return g_allocations.load(std::memory_order_relaxed);
}

TEST(AllocationTest, SteadyStateBatchAllocationsIndependentOfBatchSize) {
#if defined(RESEST_ALLOC_HOOK_DISABLED)
  GTEST_SKIP() << "operator-new hook disabled under sanitizers";
#else
  auto db = GenerateDatabase(TpchSchema(), 0.3, 1.0, 42);
  Rng rng(7);
  const auto train =
      RunWorkload(db.get(), GenerateTpchWorkload(60, &rng, db.get()));
  ThreadPool pool(2);
  TrainOptions options;
  RefitPolicy policy;
  IncrementalTrainer trainer(options, policy, &pool);
  const auto estimator = trainer.SeedAndTrain(train);

  // A trained (op, cpu) slot so the requests run real model sweeps, not
  // the constant fallback.
  OpType op = OpType::kTableScan;
  bool found = false;
  for (int candidate = 0; candidate < kNumOpTypes && !found; ++candidate) {
    if (estimator->ModelsFor(static_cast<OpType>(candidate), Resource::kCpu) !=
        nullptr) {
      op = static_cast<OpType>(candidate);
      found = true;
    }
  }
  ASSERT_TRUE(found) << "training produced no model sets";

  ModelRegistry registry;
  trainer.PublishBaseline(&registry, "default");
  ServiceOptions service_options;
  service_options.enable_cache = false;  // every term takes the sweep path
  service_options.max_batch_size = 1 << 20;
  EstimationService service(&registry, &pool, service_options);

  // Distinct operator-payload requests: identity dedup cannot collapse any
  // of them, so chunking and the grouped sweeps cover the full batch.
  Rng feature_rng(99);
  const size_t kLarge = 1024;
  std::vector<EstimateRequest> large;
  for (size_t i = 0; i < kLarge; ++i) {
    FeatureVector features{};
    for (auto& f : features) f = feature_rng.Uniform(1.0, 5000.0);
    large.push_back(
        EstimateRequest::ForOperator(op, features, Resource::kCpu));
  }
  const std::vector<EstimateRequest> small(large.begin(),
                                           large.begin() + kLarge / 4);

  // Warm-up: grows every worker's thread-local arena (and the submitter's)
  // to steady-state capacity and settles lazy pool/service state.
  for (int pass = 0; pass < 2; ++pass) {
    const auto warm = service.EstimateBatch(large);
    ASSERT_EQ(warm.size(), large.size());
    ASSERT_TRUE(warm.front().ok());
    (void)service.EstimateBatch(small);
  }

  const uint64_t small_allocs =
      CountAllocations([&] { (void)service.EstimateBatch(small); });
  const uint64_t large_allocs =
      CountAllocations([&] { (void)service.EstimateBatch(large); });

  // 4x the requests (and 4x the chunks) must not add heap traffic: the
  // per-chunk pipeline is arena-backed. The slack absorbs the per-batch
  // constant (vectors, promise state, one pool task per helper) varying a
  // little between runs; what it must never absorb is a per-request or
  // per-chunk allocation (which would add hundreds here).
  EXPECT_LE(large_allocs, small_allocs + 32)
      << "small batch: " << small_allocs
      << " allocations, large batch: " << large_allocs;
#endif
}

}  // namespace
}  // namespace resest
