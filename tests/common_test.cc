// Unit tests for src/common: PRNG, Zipf sampling, statistics, least squares.
#include <cmath>
#include <vector>

#include "gtest/gtest.h"
#include "src/common/matrix.h"
#include "src/common/rng.h"
#include "src/common/stats.h"

namespace resest {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 5);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.UniformInt(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    saw_lo |= (v == 3);
    saw_hi |= (v == 7);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(11);
  std::vector<double> xs;
  for (int i = 0; i < 50000; ++i) xs.push_back(rng.Gaussian());
  EXPECT_NEAR(Mean(xs), 0.0, 0.02);
  EXPECT_NEAR(StdDev(xs), 1.0, 0.02);
}

TEST(RngTest, LogNormalFactorMedianNearOne) {
  Rng rng(13);
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) xs.push_back(rng.LogNormalFactor(0.1));
  EXPECT_NEAR(Median(xs), 1.0, 0.01);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(5);
  Rng child = a.Fork();
  // Child stream differs from parent's continued stream.
  EXPECT_NE(child.Next(), a.Next());
}

TEST(ZipfTest, UniformWhenZZero) {
  ZipfSampler z(100, 0.0);
  Rng rng(3);
  std::vector<int> counts(101, 0);
  for (int i = 0; i < 100000; ++i) counts[static_cast<size_t>(z.Sample(&rng))]++;
  // Each value ~1000 expected; allow generous tolerance.
  for (int v = 1; v <= 100; ++v) EXPECT_GT(counts[static_cast<size_t>(v)], 500);
}

TEST(ZipfTest, SkewConcentratesMassOnSmallValues) {
  ZipfSampler z(1000, 1.5);
  Rng rng(3);
  int head = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) head += (z.Sample(&rng) <= 10);
  // With z=1.5 the top-10 values take the vast majority of the mass.
  EXPECT_GT(head, n / 2);
}

TEST(ZipfTest, SamplesStayInDomain) {
  for (double z : {0.0, 0.5, 1.0, 2.0}) {
    ZipfSampler s(50, z);
    Rng rng(17);
    for (int i = 0; i < 5000; ++i) {
      const int64_t v = s.Sample(&rng);
      EXPECT_GE(v, 1);
      EXPECT_LE(v, 50);
    }
  }
}

TEST(StatsTest, MeanMedianMinMax) {
  std::vector<double> v{5, 1, 4, 2, 3};
  EXPECT_DOUBLE_EQ(Mean(v), 3.0);
  EXPECT_DOUBLE_EQ(Median(v), 3.0);
  EXPECT_DOUBLE_EQ(Min(v), 1.0);
  EXPECT_DOUBLE_EQ(Max(v), 5.0);
}

TEST(StatsTest, VarianceOfConstantIsZero) {
  std::vector<double> v{2, 2, 2, 2};
  EXPECT_DOUBLE_EQ(Variance(v), 0.0);
}

TEST(StatsTest, QuantileInterpolates) {
  std::vector<double> v{0, 10};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0), 10.0);
}

TEST(StatsTest, CorrelationSignAndMagnitude) {
  std::vector<double> a{1, 2, 3, 4, 5};
  std::vector<double> b{2, 4, 6, 8, 10};
  EXPECT_NEAR(Correlation(a, b), 1.0, 1e-12);
  std::vector<double> c{10, 8, 6, 4, 2};
  EXPECT_NEAR(Correlation(a, c), -1.0, 1e-12);
}

TEST(StatsTest, L1RelativeErrorMatchesPaperDefinition) {
  // |est - actual| / est, averaged.
  std::vector<double> est{10, 20};
  std::vector<double> act{5, 30};
  // |10-5|/10 = 0.5 ; |20-30|/20 = 0.5 -> mean 0.5
  EXPECT_NEAR(L1RelativeError(est, act), 0.5, 1e-12);
}

TEST(StatsTest, RatioErrorSymmetric) {
  EXPECT_DOUBLE_EQ(RatioError(10, 5), 2.0);
  EXPECT_DOUBLE_EQ(RatioError(5, 10), 2.0);
  EXPECT_DOUBLE_EQ(RatioError(7, 7), 1.0);
}

TEST(StatsTest, RatioBucketsPartition) {
  std::vector<double> est{10, 10, 10};
  std::vector<double> act{10, 17, 30};  // ratios 1.0, 1.7, 3.0
  const RatioBuckets b = ComputeRatioBuckets(est, act);
  EXPECT_NEAR(b.le_1_5, 1.0 / 3, 1e-12);
  EXPECT_NEAR(b.in_1_5_2, 1.0 / 3, 1e-12);
  EXPECT_NEAR(b.gt_2, 1.0 / 3, 1e-12);
  EXPECT_NEAR(b.le_1_5 + b.in_1_5_2 + b.gt_2, 1.0, 1e-12);
}

TEST(WelfordTest, MatchesBatchStatistics) {
  Rng rng(23);
  Welford w;
  std::vector<double> xs;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.Uniform(0, 10);
    xs.push_back(x);
    w.Add(x);
  }
  EXPECT_NEAR(w.mean(), Mean(xs), 1e-9);
  EXPECT_NEAR(w.variance(), Variance(xs), 1e-9);
}

TEST(MatrixTest, LeastSquaresRecoversCoefficients) {
  // y = 3 x0 - 2 x1 + 1 (with an intercept column of ones).
  Rng rng(31);
  Matrix x(200, 3);
  std::vector<double> y(200);
  for (size_t i = 0; i < 200; ++i) {
    const double a = rng.Uniform(-5, 5), b = rng.Uniform(-5, 5);
    x.at(i, 0) = a;
    x.at(i, 1) = b;
    x.at(i, 2) = 1.0;
    y[i] = 3 * a - 2 * b + 1;
  }
  std::vector<double> beta;
  ASSERT_TRUE(LeastSquares(x, y, &beta));
  EXPECT_NEAR(beta[0], 3.0, 1e-6);
  EXPECT_NEAR(beta[1], -2.0, 1e-6);
  EXPECT_NEAR(beta[2], 1.0, 1e-6);
}

TEST(MatrixTest, CholeskyRejectsIndefinite) {
  Matrix a(2, 2);
  a.at(0, 0) = 0.0;
  a.at(1, 1) = -1.0;
  std::vector<double> x;
  EXPECT_FALSE(CholeskySolve(a, {1.0, 1.0}, 0.0, &x));
}

TEST(MatrixTest, FitScaleExact) {
  std::vector<double> g{1, 2, 3};
  std::vector<double> y{2, 4, 6};
  EXPECT_NEAR(FitScale(g, y), 2.0, 1e-12);
}

TEST(MatrixTest, GramAndTransposeTimes) {
  Matrix x(2, 2);
  x.at(0, 0) = 1;
  x.at(0, 1) = 2;
  x.at(1, 0) = 3;
  x.at(1, 1) = 4;
  const Matrix g = x.Gram();
  EXPECT_DOUBLE_EQ(g.at(0, 0), 10);  // 1+9
  EXPECT_DOUBLE_EQ(g.at(0, 1), 14);  // 2+12
  EXPECT_DOUBLE_EQ(g.at(1, 1), 20);  // 4+16
  const auto xty = x.TransposeTimes({1.0, 1.0});
  EXPECT_DOUBLE_EQ(xty[0], 4);
  EXPECT_DOUBLE_EQ(xty[1], 6);
}

}  // namespace
}  // namespace resest
