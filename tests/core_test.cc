// Tests for src/core: feature extraction, dependencies, scaling functions,
// sweep-based scaling selection, combined models, out_ratio selection, and
// the end-to-end estimator including the paper's headline robustness
// property (Figures 3 and 6).
#include <cmath>
#include <memory>

#include "gtest/gtest.h"
#include "src/common/stats.h"
#include "src/core/estimator.h"
#include "src/core/scaling_lab.h"
#include "src/workload/runner.h"
#include "src/workload/schemas.h"
#include "src/workload/tpch_queries.h"

namespace resest {
namespace {

class CoreTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = GenerateDatabase(TpchSchema(), 1.0, 1.0, 42).release();
    Rng rng(7);
    auto queries = GenerateTpchWorkload(120, &rng, db_);
    workload_ = new std::vector<ExecutedQuery>(RunWorkload(db_, queries));
  }
  static void TearDownTestSuite() {
    delete workload_;
    workload_ = nullptr;
    delete db_;
    db_ = nullptr;
  }

  static Database* db_;
  static std::vector<ExecutedQuery>* workload_;
};

Database* CoreTest::db_ = nullptr;
std::vector<ExecutedQuery>* CoreTest::workload_ = nullptr;

TEST_F(CoreTest, FeatureExtractionScanBasics) {
  // Find a table scan in some executed plan and check Table 1/2 features.
  const PlanNode* scan = nullptr;
  const Database* db = nullptr;
  for (const auto& eq : *workload_) {
    eq.plan.root->Visit([&](const PlanNode* n) {
      if (n->type == OpType::kTableScan && scan == nullptr) {
        scan = n;
        db = eq.database;
      }
    });
    if (scan != nullptr) break;
  }
  ASSERT_NE(scan, nullptr);
  const FeatureVector v = ExtractFeatures(*scan, nullptr, *db, FeatureMode::kExact);
  const Table* t = db->FindTable(scan->table);
  EXPECT_DOUBLE_EQ(v[static_cast<size_t>(FeatureId::kTSize)],
                   static_cast<double>(t->row_count()));
  EXPECT_DOUBLE_EQ(v[static_cast<size_t>(FeatureId::kPages)],
                   static_cast<double>(t->data_pages()));
  EXPECT_DOUBLE_EQ(v[static_cast<size_t>(FeatureId::kCOut)],
                   static_cast<double>(scan->actual.rows_out));
  EXPECT_EQ(v[static_cast<size_t>(FeatureId::kOutputUsage)], -1.0);
}

TEST_F(CoreTest, FeatureModesDiffer) {
  // Exact and estimated features must diverge somewhere (cardinality errors).
  int differing = 0, total = 0;
  for (const auto& eq : *workload_) {
    eq.plan.root->Visit([&](const PlanNode* n) {
      const FeatureVector e =
          ExtractFeatures(*n, nullptr, *eq.database, FeatureMode::kExact);
      const FeatureVector o =
          ExtractFeatures(*n, nullptr, *eq.database, FeatureMode::kEstimated);
      ++total;
      const double ce = e[static_cast<size_t>(FeatureId::kCOut)];
      const double co = o[static_cast<size_t>(FeatureId::kCOut)];
      if (std::fabs(ce - co) > 0.5) ++differing;
    });
  }
  EXPECT_GT(differing, total / 10);
}

TEST_F(CoreTest, DependencyTableIsConsistent) {
  // Derived features are dependents of their inputs.
  auto has = [](const std::vector<FeatureId>& v, FeatureId f) {
    return std::find(v.begin(), v.end(), f) != v.end();
  };
  EXPECT_TRUE(has(Dependents(FeatureId::kCIn0), FeatureId::kSInTot0));
  EXPECT_TRUE(has(Dependents(FeatureId::kSInAvg0), FeatureId::kSInTot0));
  EXPECT_TRUE(has(Dependents(FeatureId::kCOut), FeatureId::kSOutTot));
  EXPECT_TRUE(has(Dependents(FeatureId::kTSize), FeatureId::kPages));
  // Independent pairs stay independent (paper: CIN vs SINAVG).
  EXPECT_FALSE(has(Dependents(FeatureId::kCIn0), FeatureId::kSInAvg0));
}

TEST_F(CoreTest, OperatorFeatureListsExcludeIrrelevant) {
  const auto& scan = OperatorFeatures(OpType::kTableScan);
  EXPECT_EQ(std::count(scan.begin(), scan.end(), FeatureId::kMinComp), 0);
  const auto& sort = OperatorFeatures(OpType::kSort);
  EXPECT_EQ(std::count(sort.begin(), sort.end(), FeatureId::kMinComp), 1);
  EXPECT_EQ(std::count(sort.begin(), sort.end(), FeatureId::kIndexDepth), 0);
}

TEST_F(CoreTest, NonScalingFeaturesExcludedForIo) {
  const auto cpu = ScalableFeatures(OpType::kHashAggregate, Resource::kCpu);
  const auto io = ScalableFeatures(OpType::kHashAggregate, Resource::kIo);
  auto has = [](const std::vector<FeatureId>& v, FeatureId f) {
    return std::find(v.begin(), v.end(), f) != v.end();
  };
  EXPECT_TRUE(has(cpu, FeatureId::kHashOpTot));
  EXPECT_FALSE(has(io, FeatureId::kHashOpTot));
  // Categorical features are never candidates.
  EXPECT_FALSE(has(cpu, FeatureId::kOutputUsage));
}

TEST(ScalingFnTest, EvaluationsMatchDefinitions) {
  EXPECT_DOUBLE_EQ(EvalScaling(ScalingFn::kLinear, 8), 8.0);
  EXPECT_DOUBLE_EQ(EvalScaling(ScalingFn::kLog2, 8), 3.0);
  EXPECT_DOUBLE_EQ(EvalScaling(ScalingFn::kNLogN, 8), 24.0);
  EXPECT_DOUBLE_EQ(EvalScaling(ScalingFn::kQuadratic, 8), 64.0);
  EXPECT_DOUBLE_EQ(EvalScaling(ScalingFn::kSum, 3, 4), 7.0);
  EXPECT_DOUBLE_EQ(EvalScaling(ScalingFn::kProduct, 3, 4), 12.0);
  EXPECT_DOUBLE_EQ(EvalScaling(ScalingFn::kALogB, 3, 8), 9.0);
}

TEST(ScalingFnTest, SelectionRecoversGeneratingForm) {
  // Synthetic sweeps where the true law is known.
  Rng rng(5);
  std::vector<SweepPoint> nlogn_sweep;
  for (int i = 1; i <= 60; ++i) {
    const double n = 500.0 * i;
    nlogn_sweep.push_back(
        {n, 0.0, 0.7 * n * std::log2(n) * rng.LogNormalFactor(0.02)});
  }
  auto fits = SelectScalingFn(nlogn_sweep, false);
  EXPECT_EQ(fits.front().fn, ScalingFn::kNLogN);

  std::vector<SweepPoint> quad_sweep;
  for (int i = 1; i <= 60; ++i) {
    const double n = 100.0 * i;
    quad_sweep.push_back({n, 0.0, 0.01 * n * n * rng.LogNormalFactor(0.02)});
  }
  fits = SelectScalingFn(quad_sweep, false);
  EXPECT_EQ(fits.front().fn, ScalingFn::kQuadratic);
}

TEST_F(CoreTest, SortSweepSelectsNLogN) {
  // Paper Figure 7: the sort CPU sweep is fit best by n log n.
  const auto sweep = SweepSortCpu(*db_, 25);
  ASSERT_GE(sweep.size(), 20u);
  const auto fits = SelectScalingFn(sweep, false);
  EXPECT_TRUE(fits.front().fn == ScalingFn::kNLogN ||
              fits.front().fn == ScalingFn::kLinear)
      << ScalingFnName(fits.front().fn);
  // n log n must beat quadratic by a clear margin (the paper's comparison).
  double nlogn_err = 0, quad_err = 0;
  for (const auto& f : fits) {
    if (f.fn == ScalingFn::kNLogN) nlogn_err = f.l2_error;
    if (f.fn == ScalingFn::kQuadratic) quad_err = f.l2_error;
  }
  EXPECT_LT(nlogn_err, quad_err);
}

TEST_F(CoreTest, FilterSweepSelectsLinear) {
  const auto sweep = SweepFilterCpu(*db_, 25);
  const auto fits = SelectScalingFn(sweep, false);
  EXPECT_EQ(fits.front().fn, ScalingFn::kLinear)
      << ScalingFnName(fits.front().fn);
}

TEST_F(CoreTest, CombinedModelPredictsReasonably) {
  // Train a sort-CPU combined model on small inputs, test on larger ones.
  std::vector<FeatureVector> rows;
  std::vector<double> targets;
  for (const auto& eq : *workload_) {
    eq.plan.root->Visit([&](const PlanNode* n) {
      if (n->type != OpType::kSort) return;
      rows.push_back(ExtractFeatures(*n, nullptr, *eq.database, FeatureMode::kExact));
      targets.push_back(n->actual.cpu);
    });
  }
  ASSERT_GT(rows.size(), 30u);
  OperatorModelSet::TrainOptions options;
  options.mart.num_trees = 100;
  const auto set = OperatorModelSet::Train(OpType::kSort, Resource::kCpu, rows,
                                           targets, options);
  EXPECT_GT(set.NumModels(), 3u);
  // In-range prediction should land within 2x for most non-trivial sorts
  // (tiny sorts of a few rows have meaningless relative errors).
  std::vector<double> est, act;
  for (size_t i = 0; i < rows.size(); ++i) {
    if (targets[i] < 0.1) continue;
    est.push_back(std::max(0.01, set.Predict(rows[i])));
    act.push_back(targets[i]);
  }
  ASSERT_GT(est.size(), 5u);
  const RatioBuckets b = ComputeRatioBuckets(est, act);
  EXPECT_GT(b.le_1_5 + b.in_1_5_2, 0.6);
}

TEST_F(CoreTest, OutRatioZeroInsideEnvelopeAndGrowsOutside) {
  std::vector<FeatureVector> rows;
  std::vector<double> targets;
  for (const auto& eq : *workload_) {
    eq.plan.root->Visit([&](const PlanNode* n) {
      if (n->type != OpType::kFilter) return;
      rows.push_back(ExtractFeatures(*n, nullptr, *eq.database, FeatureMode::kExact));
      targets.push_back(n->actual.cpu);
    });
  }
  if (rows.size() < 20u) GTEST_SKIP() << "not enough filters in workload";
  OperatorModelSet::TrainOptions options;
  options.mart.num_trees = 50;
  const auto set = OperatorModelSet::Train(OpType::kFilter, Resource::kCpu, rows,
                                           targets, options);
  // A training row is inside every model's envelope.
  const auto in_ratios = set.model(0).OutRatios(rows[0]);
  EXPECT_DOUBLE_EQ(in_ratios[0], 0.0);
  // Blow up CIN far beyond training (starting from the LARGEST training
  // filter so the inflated value is guaranteed out of range).
  size_t biggest = 0;
  for (size_t i = 1; i < rows.size(); ++i) {
    if (rows[i][static_cast<size_t>(FeatureId::kCIn0)] >
        rows[biggest][static_cast<size_t>(FeatureId::kCIn0)]) {
      biggest = i;
    }
  }
  FeatureVector big = rows[biggest];
  big[static_cast<size_t>(FeatureId::kCIn0)] *= 1000.0;
  big[static_cast<size_t>(FeatureId::kSInTot0)] *= 1000.0;
  big[static_cast<size_t>(FeatureId::kCOut)] *= 1000.0;
  big[static_cast<size_t>(FeatureId::kSOutTot)] *= 1000.0;
  const auto out_ratios = set.model(0).OutRatios(big);
  EXPECT_GT(out_ratios[0], 0.0);
  // Selection must switch away from a model that is out of range when a
  // scaled alternative brings the features back in range.
  const CombinedModel* chosen = set.Select(big);
  ASSERT_NE(chosen, nullptr);
  EXPECT_GT(chosen->NumScaleFeatures(), 0);
}

TEST_F(CoreTest, SelectionPrefersDefaultInRange) {
  std::vector<FeatureVector> rows;
  std::vector<double> targets;
  for (const auto& eq : *workload_) {
    eq.plan.root->Visit([&](const PlanNode* n) {
      if (n->type != OpType::kHashJoin) return;
      rows.push_back(ExtractFeatures(*n, nullptr, *eq.database, FeatureMode::kExact));
      targets.push_back(n->actual.cpu);
    });
  }
  if (rows.size() < 20u) GTEST_SKIP() << "not enough hash joins";
  OperatorModelSet::TrainOptions options;
  options.mart.num_trees = 50;
  const auto set = OperatorModelSet::Train(OpType::kHashJoin, Resource::kCpu,
                                           rows, targets, options);
  const CombinedModel* chosen = set.Select(rows[rows.size() / 2]);
  EXPECT_EQ(chosen, &set.default_model());
}

TEST_F(CoreTest, EstimatorQueryEqualsOperatorSum) {
  TrainOptions options;
  options.mart.num_trees = 60;
  const ResourceEstimator est = ResourceEstimator::Train(*workload_, options);
  const auto& eq = (*workload_)[3];
  const double query_est =
      est.EstimateQuery(eq.plan, *eq.database, Resource::kCpu);
  const auto pipeline_est =
      est.EstimatePipelines(eq.plan, *eq.database, Resource::kCpu);
  double pipeline_sum = 0;
  for (double p : pipeline_est) pipeline_sum += p;
  EXPECT_NEAR(query_est, pipeline_sum, 1e-6 * std::max(1.0, query_est));
}

TEST_F(CoreTest, EstimatorAccurateInDistribution) {
  Rng rng(99);
  auto test_queries = GenerateTpchWorkload(40, &rng, db_);
  const auto test = RunWorkload(db_, test_queries, /*noise_seed=*/1234);

  TrainOptions options;
  const ResourceEstimator est = ResourceEstimator::Train(*workload_, options);
  std::vector<double> preds, acts;
  for (const auto& eq : test) {
    preds.push_back(
        std::max(0.01, est.EstimateQuery(eq.plan, *eq.database, Resource::kCpu)));
    acts.push_back(eq.plan.TotalActualCpu());
  }
  EXPECT_LT(L1RelativeError(preds, acts), 0.45);
  const RatioBuckets b = ComputeRatioBuckets(preds, acts);
  EXPECT_GT(b.le_1_5, 0.6);
}

TEST_F(CoreTest, ScalingGeneralizesAcrossDataSizesMartDoesNot) {
  // The Figure 3 / Figure 6 experiment in miniature: train scans on SF<=1,
  // test on SF 4. Plain MART underestimates systematically; SCALING tracks.
  auto big_db = GenerateDatabase(TpchSchema(), 4.0, 1.0, 43);
  Rng rng(31);
  auto big_queries = GenerateTpchWorkload(30, &rng, big_db.get());
  const auto big = RunWorkload(big_db.get(), big_queries, 77);

  TrainOptions scaled;
  const ResourceEstimator with_scaling =
      ResourceEstimator::Train(*workload_, scaled);
  TrainOptions unscaled;
  unscaled.enable_scaling = false;
  const ResourceEstimator without_scaling =
      ResourceEstimator::Train(*workload_, unscaled);

  double mart_sum = 0, scaling_sum = 0, actual_sum = 0;
  for (const auto& eq : big) {
    mart_sum += without_scaling.EstimateQuery(eq.plan, *eq.database, Resource::kCpu);
    scaling_sum += with_scaling.EstimateQuery(eq.plan, *eq.database, Resource::kCpu);
    actual_sum += eq.plan.TotalActualCpu();
  }
  ASSERT_GT(actual_sum, 0.0);
  // MART saturates at the training envelope: big underestimate in total.
  EXPECT_LT(mart_sum, 0.75 * actual_sum);
  // SCALING must recover a large part of that gap.
  EXPECT_GT(scaling_sum, mart_sum * 1.15);
  EXPECT_GT(scaling_sum, 0.55 * actual_sum);
}

TEST_F(CoreTest, SerializedModelSizeIsModest) {
  TrainOptions options;
  options.mart.num_trees = 150;
  const ResourceEstimator est = ResourceEstimator::Train(*workload_, options);
  // Paper Section 7.3: all models fit in a few megabytes.
  EXPECT_LT(est.SerializedBytes(), 32u * 1024u * 1024u);
  EXPECT_GT(est.SerializedBytes(), 10u * 1024u);
}

}  // namespace
}  // namespace resest
