// Tests for the model store: full-estimator serialization round-trips,
// file persistence, corruption rejection, the explain facility, and
// crash-recovery of the incremental retraining pipeline (persisted
// observation logs + delta lineage replay byte-identically).
#include <cstdio>
#include <filesystem>

#include "gtest/gtest.h"
#include "src/common/serial.h"
#include "src/core/estimator.h"
#include "src/serving/model_registry.h"
#include "src/training/incremental_trainer.h"
#include "src/workload/runner.h"
#include "src/workload/schemas.h"
#include "src/workload/tpch_queries.h"

namespace resest {
namespace {

class PersistenceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = GenerateDatabase(TpchSchema(), 1.0, 1.0, 42).release();
    Rng rng(7);
    const auto queries = GenerateTpchWorkload(100, &rng, db_);
    workload_ = new std::vector<ExecutedQuery>(RunWorkload(db_, queries));
    TrainOptions options;
    options.mart.num_trees = 60;
    estimator_ = new ResourceEstimator(
        ResourceEstimator::Train(*workload_, options));
  }
  static void TearDownTestSuite() {
    delete estimator_;
    delete workload_;
    delete db_;
    estimator_ = nullptr;
    workload_ = nullptr;
    db_ = nullptr;
  }

  static Database* db_;
  static std::vector<ExecutedQuery>* workload_;
  static ResourceEstimator* estimator_;
};

Database* PersistenceTest::db_ = nullptr;
std::vector<ExecutedQuery>* PersistenceTest::workload_ = nullptr;
ResourceEstimator* PersistenceTest::estimator_ = nullptr;

TEST(ByteIoTest, PodRoundTrip) {
  std::vector<uint8_t> buf;
  ByteWriter w(&buf);
  w.U32(42);
  w.F64(3.25);
  w.String("hello");
  w.PodVector(std::vector<int32_t>{1, -2, 3});
  ByteReader r(buf);
  uint32_t u = 0;
  double d = 0;
  std::string s;
  std::vector<int32_t> v;
  ASSERT_TRUE(r.U32(&u));
  ASSERT_TRUE(r.F64(&d));
  ASSERT_TRUE(r.String(&s));
  ASSERT_TRUE(r.PodVector(&v));
  EXPECT_EQ(u, 42u);
  EXPECT_DOUBLE_EQ(d, 3.25);
  EXPECT_EQ(s, "hello");
  EXPECT_EQ(v, (std::vector<int32_t>{1, -2, 3}));
  EXPECT_TRUE(r.AtEnd());
}

TEST(ByteIoTest, ReaderRejectsTruncation) {
  std::vector<uint8_t> buf;
  ByteWriter w(&buf);
  w.F64(1.0);
  buf.resize(4);
  ByteReader r(buf);
  double d = 0;
  EXPECT_FALSE(r.F64(&d));
}

TEST_F(PersistenceTest, SerializeRoundTripPreservesPredictions) {
  const auto bytes = estimator_->Serialize();
  ASSERT_GT(bytes.size(), 1000u);
  ResourceEstimator restored;
  ASSERT_TRUE(restored.Deserialize(bytes));
  for (size_t i = 0; i < workload_->size(); i += 7) {
    const auto& eq = (*workload_)[i];
    for (Resource r : {Resource::kCpu, Resource::kIo}) {
      EXPECT_NEAR(estimator_->EstimateQuery(eq.plan, *db_, r),
                  restored.EstimateQuery(eq.plan, *db_, r), 1e-6)
          << eq.spec.name;
    }
  }
}

TEST_F(PersistenceTest, FileRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "resest_model_store.bin").string();
  ASSERT_TRUE(estimator_->SaveToFile(path));
  ResourceEstimator restored;
  ASSERT_TRUE(restored.LoadFromFile(path));
  const auto& eq = (*workload_)[0];
  EXPECT_NEAR(estimator_->EstimateQuery(eq.plan, *db_, Resource::kCpu),
              restored.EstimateQuery(eq.plan, *db_, Resource::kCpu), 1e-6);
  std::remove(path.c_str());
}

TEST_F(PersistenceTest, DeserializeRejectsCorruptData) {
  auto bytes = estimator_->Serialize();
  ResourceEstimator restored;
  // Bad magic.
  auto bad = bytes;
  bad[0] ^= 0xFF;
  EXPECT_FALSE(restored.Deserialize(bad));
  // Truncated.
  bytes.resize(bytes.size() / 3);
  EXPECT_FALSE(restored.Deserialize(bytes));
  // Empty.
  EXPECT_FALSE(restored.Deserialize({}));
}

TEST_F(PersistenceTest, LoadFromMissingFileFails) {
  ResourceEstimator restored;
  EXPECT_FALSE(restored.LoadFromFile("/nonexistent/path/model.bin"));
}

TEST_F(PersistenceTest, ExplainNamesChosenModelAndFeatures) {
  const auto& eq = (*workload_)[1];
  const std::string report =
      estimator_->ExplainQuery(eq.plan, *db_, Resource::kCpu);
  // Every operator of the plan appears with a model and its features.
  eq.plan.root->Visit([&](const PlanNode* n) {
    EXPECT_NE(report.find(OpTypeName(n->type)), std::string::npos);
  });
  EXPECT_NE(report.find("estimate"), std::string::npos);
  EXPECT_NE(report.find("COUT="), std::string::npos);
  EXPECT_NE(report.find("out_ratio"), std::string::npos);
}

TEST_F(PersistenceTest, SerializeRoundTripIsByteStable) {
  // Serialize(Deserialize(bytes)) == bytes — the property the crash
  // recovery below leans on: a delta built over a *reloaded* base must
  // serialize its untouched slots identically to one built over the
  // original in-memory base.
  const auto bytes = estimator_->Serialize();
  ResourceEstimator restored;
  ASSERT_TRUE(restored.Deserialize(bytes));
  EXPECT_EQ(restored.Serialize(), bytes);
}

TEST_F(PersistenceTest, CrashBetweenLogAppendAndDeltaPublishRecovers) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "resest_crash_recovery";
  std::filesystem::remove_all(dir);

  TrainOptions options;
  options.mart.num_trees = 20;
  RefitPolicy policy;
  policy.min_new_rows = 1;
  policy.drift_threshold = 0.0;

  Rng rng(21);
  auto extra_queries = GenerateTpchWorkload(20, &rng, db_);
  const auto extra = RunWorkload(db_, extra_queries, 17);
  ASSERT_FALSE(extra.empty());

  // Uninterrupted run: seed, publish, observe, refit — the golden bytes.
  IncrementalTrainer uninterrupted(options, policy);
  uninterrupted.SeedAndTrain(*workload_);
  ModelRegistry registry_a;
  ASSERT_GT(uninterrupted.PublishBaseline(&registry_a, "m"), 0u);
  uninterrupted.ObserveAll(extra);
  const auto golden = uninterrupted.RefitAndPublish(&registry_a, "m");
  ASSERT_TRUE(golden);
  const auto golden_bytes = golden.estimator->Serialize();

  // Interrupted run: identical up to the log append, checkpointed, then
  // "killed" before the delta publish (trainer and registry abandoned).
  const uint64_t v1 = [&]() {
    IncrementalTrainer doomed(options, policy);
    doomed.SeedAndTrain(*workload_);
    ModelRegistry registry_b;
    const uint64_t version = doomed.PublishBaseline(&registry_b, "m");
    EXPECT_GT(version, 0u);
    doomed.ObserveAll(extra);
    EXPECT_TRUE(doomed.Checkpoint(registry_b, "m", dir.string()));
    return version;  // crash: no refit, no delta publish
  }();

  // Restart: a fresh registry and trainer resume from disk. The log
  // replays (the appended rows are still pending) and the refit completes
  // exactly as the uninterrupted run's did.
  ModelRegistry restarted;
  IncrementalTrainer resumed(options, policy);
  const uint64_t v = resumed.Restore(&restarted, "m", dir.string());
  ASSERT_GT(v, 0u);
  EXPECT_GE(v, v1);
  EXPECT_EQ(restarted.Get("m").version, v);
  EXPECT_GT(resumed.TotalPendingRows(), 0u) << "pending rows must replay";

  const auto recovered = resumed.RefitAndPublish(&restarted, "m");
  ASSERT_TRUE(recovered);
  EXPECT_GT(recovered.version, v);
  EXPECT_EQ(recovered.estimator->Serialize(), golden_bytes)
      << "recovered refit must match the uninterrupted run byte-for-byte";
  EXPECT_EQ(restarted.Get("m").version, recovered.version);

  // Missing or corrupt state fails cleanly without touching the registry.
  ModelRegistry untouched;
  IncrementalTrainer fresh(options, policy);
  EXPECT_EQ(fresh.Restore(&untouched, "absent", dir.string()), 0u);
  EXPECT_TRUE(untouched.Names().empty());
  std::filesystem::remove_all(dir);
}

TEST_F(PersistenceTest, SerializedSizeMatchesAccounting) {
  // The full store is larger than the sum of raw tree bytes (specs,
  // envelopes) but within a small factor.
  const auto bytes = estimator_->Serialize();
  EXPECT_GE(bytes.size(), estimator_->SerializedBytes());
  EXPECT_LE(bytes.size(), 2 * estimator_->SerializedBytes() + 4096);
}

}  // namespace
}  // namespace resest
